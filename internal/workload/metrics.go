package workload

import (
	"fmt"
	"math/bits"

	"sparcs/internal/arbiter"
)

// WaitBuckets is the number of log2 wait-histogram buckets: bucket 0
// counts zero-wait service, bucket k counts waits in [2^(k-1), 2^k),
// and the last bucket absorbs everything longer.
const WaitBuckets = 17

// TaskMetrics aggregates one task's experience over a run.
type TaskMetrics struct {
	// Grants is the number of cycles the task held the resource.
	Grants int64
	// Services is the number of distinct grant episodes the task won
	// (each preceded by one measured wait, possibly zero).
	Services int64
	// TotalWait sums the request-to-first-grant waits over all services.
	TotalWait int64
	// MaxWait is the longest single wait in cycles, including a wait
	// still in progress when the run ends — a task starved for the
	// whole run reports the full run length, not zero. (Censored waits
	// are excluded from Services/TotalWait/WaitHist, which cover
	// completed services only.)
	MaxWait int
	// WorstEpisodes is the most grant episodes to other tasks the task
	// sat through while requesting continuously (the paper's Section
	// 4.1 measure; round-robin bounds it at N-1).
	WorstEpisodes int
}

// MeanWait is the task's average wait per service in cycles.
func (t TaskMetrics) MeanWait() float64 {
	if t.Services == 0 {
		return 0
	}
	return float64(t.TotalWait) / float64(t.Services)
}

// Metrics is the outcome of driving one policy under one workload.
type Metrics struct {
	// Policy and Workload are the names reported by the driven pair.
	Policy   string
	Workload string
	// N is the number of request lines, Cycles the run length.
	N      int
	Cycles int
	// Tasks holds per-task aggregates.
	Tasks []TaskMetrics
	// GrantedCycles counts cycles with a grant, DemandCycles cycles
	// with at least one request.
	GrantedCycles int64
	DemandCycles  int64
	// WaitHist is the run-wide log2 histogram of service waits.
	WaitHist [WaitBuckets]int64
	// Violation records the first online safety-check failure (mutual
	// exclusion, grant-implies-request, work conservation); empty for a
	// correct arbiter.
	Violation string
}

// violate records the first online safety-check failure. Named rather
// than a closure so the hot loop's call is statically resolvable.
func (m *Metrics) violate(cycle int, kind string) {
	if m.Violation == "" {
		//sparcs:ignore hotpath first-violation formatting runs at most once per Drive, and only for a broken arbiter
		m.Violation = fmt.Sprintf("cycle %d: %s", cycle, kind)
	}
}

// Utilization is the fraction of all cycles the resource was granted.
func (m *Metrics) Utilization() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.GrantedCycles) / float64(m.Cycles)
}

// Demand is the fraction of cycles with at least one request — the
// offered load. For a work-conserving arbiter Utilization == Demand.
func (m *Metrics) Demand() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.DemandCycles) / float64(m.Cycles)
}

// Jain is Jain's fairness index over per-task grant counts:
// (Σx)²/(n·Σx²), 1.0 for perfectly equal shares, 1/n when one task
// monopolizes. An all-idle run reports 1.
func (m *Metrics) Jain() float64 {
	var sum, sq float64
	for _, t := range m.Tasks {
		x := float64(t.Grants)
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(m.Tasks)) * sq)
}

// MeanWait is the run-wide average wait per service in cycles.
func (m *Metrics) MeanWait() float64 {
	var wait, services int64
	for _, t := range m.Tasks {
		wait += t.TotalWait
		services += t.Services
	}
	if services == 0 {
		return 0
	}
	return float64(wait) / float64(services)
}

// MaxWait is the longest single wait any task experienced, in cycles.
func (m *Metrics) MaxWait() int {
	worst := 0
	for _, t := range m.Tasks {
		if t.MaxWait > worst {
			worst = t.MaxWait
		}
	}
	return worst
}

// WorstEpisodes is the worst per-task grant-episode wait — directly
// comparable to the round-robin N-1 bound.
func (m *Metrics) WorstEpisodes() int {
	worst := 0
	for _, t := range m.Tasks {
		if t.WorstEpisodes > worst {
			worst = t.WorstEpisodes
		}
	}
	return worst
}

// PercentileWait returns an upper bound in cycles on the q-quantile of
// the service-wait distribution (q in (0,1], e.g. 0.50 or 0.99),
// derived from the log2 WaitHist buckets: the smallest bucket whose
// cumulative count reaches ceil(q·services) is located, and its upper
// edge is reported — 0 for the zero-wait bucket, 2^k−1 for bucket k.
// Because the last bucket absorbs everything from 2^(WaitBuckets−2) up,
// a quantile landing there reports that bucket's lower edge (the bound
// "at least this much"). A run with no completed services reports 0.
func (m *Metrics) PercentileWait(q float64) int {
	return percentile(m.WaitHist, q)
}

// percentile is the shared log2-bucket quantile estimator behind
// Metrics.PercentileWait and Hist.Percentile.
func percentile(hist [WaitBuckets]int64, q float64) int {
	if q <= 0 || q > 1 {
		return 0
	}
	var total int64
	for _, c := range hist {
		total += c
	}
	if total == 0 {
		return 0
	}
	// ceil(q*total) without float edge-cases at the top: the target
	// rank is in [1, total].
	target := int64(q * float64(total))
	if float64(target) < q*float64(total) {
		target++
	}
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum int64
	for b := 0; b < WaitBuckets; b++ {
		cum += hist[b]
		if cum >= target {
			return bucketEdge(b)
		}
	}
	return bucketEdge(WaitBuckets - 1)
}

// bucketEdge is the reported wait for a quantile landing in bucket b:
// the inclusive upper edge 2^b−1, except the open-ended last bucket,
// which reports its lower edge 2^(WaitBuckets−2).
func bucketEdge(b int) int {
	switch {
	case b == 0:
		return 0
	case b == WaitBuckets-1:
		return 1 << (WaitBuckets - 2)
	default:
		return 1<<b - 1
	}
}

// histBucket maps a wait in cycles to its log2 histogram bucket.
func histBucket(wait int) int {
	b := bits.Len(uint(wait))
	if b >= WaitBuckets {
		b = WaitBuckets - 1
	}
	return b
}

// Drive runs generator g against policy p for the given number of
// cycles and returns the aggregated metrics. The hot loop is
// allocation-free and runs on single request/grant words: the generator
// produces one BitVec per cycle (directly for BitGenerators, through
// setup-allocated scratch otherwise), the policy steps through the
// word-level BitStepper fast path, the online safety checks are single
// word operations (mutual exclusion = popcount ≤ 1, grant ⊆ request =
// grant &^ req == 0, work conservation = grant presence matches request
// presence), and every metric (wait histogram, episode counters,
// fairness inputs) updates incrementally — no trace is recorded, so
// multi-million-cycle runs cost O(N) memory.
func Drive(p arbiter.Policy, g Generator, cycles int) (*Metrics, error) {
	n := p.N()
	if g.N() != n {
		return nil, fmt.Errorf("workload: generator %s has %d lines, policy %s has %d", g.Name(), g.N(), p.Name(), n)
	}
	if n > arbiter.MaxN {
		return nil, fmt.Errorf("workload: policy %s has %d lines; the bitset engine supports at most %d", p.Name(), n, arbiter.MaxN)
	}
	if cycles < 1 {
		return nil, fmt.Errorf("workload: cycles must be positive, got %d", cycles)
	}
	m := &Metrics{
		Policy:   p.Name(),
		Workload: g.Name(),
		N:        n,
		Cycles:   cycles,
		Tasks:    make([]TaskMetrics, n),
	}
	stepper := arbiter.AsBitStepper(p)
	bg, bitGen := g.(BitGenerator)
	var reqBuf, grantBuf []bool
	if !bitGen {
		reqBuf = make([]bool, n)
		grantBuf = make([]bool, n)
	}
	var req, grant arbiter.BitVec
	waiting := make([]bool, n)
	waitStart := make([]int, n)
	episodes := make([]int, n)
	prevHolder := -1

	//sparcs:hotpath
	for cycle := 0; cycle < cycles; cycle++ {
		// grant still holds last cycle's decision — the closed-loop
		// feedback the generators react to.
		if bitGen {
			req = bg.NextBits(grant)
		} else {
			req.WriteBools(reqBuf)
			grant.WriteBools(grantBuf)
			g.Next(reqBuf, grantBuf)
			req = arbiter.PackBools(reqBuf)
		}
		grant = stepper.StepBits(req)

		granted := grant.Count()
		holder := grant.FirstSet()
		if granted > 1 {
			m.violate(cycle, "mutual-exclusion")
		}
		if grant&^req != 0 {
			m.violate(cycle, "grant-implies-request")
		}
		if (req != 0) != (holder >= 0) {
			m.violate(cycle, "work-conservation")
		}
		if req != 0 {
			m.DemandCycles++
		}
		if holder >= 0 {
			m.GrantedCycles++
		}
		newEpisode := holder >= 0 && holder != prevHolder

		for i := 0; i < n; i++ {
			t := &m.Tasks[i]
			bit := arbiter.BitVec(1) << uint(i)
			switch {
			case grant&bit != 0:
				t.Grants++
				if i != prevHolder {
					wait := 0
					if waiting[i] {
						wait = cycle - waitStart[i]
					}
					t.Services++
					t.TotalWait += int64(wait)
					if wait > t.MaxWait {
						t.MaxWait = wait
					}
					m.WaitHist[histBucket(wait)]++
				}
				waiting[i] = false
				episodes[i] = 0
			case req&bit != 0:
				if !waiting[i] {
					waiting[i] = true
					waitStart[i] = cycle
					episodes[i] = 0
				}
				if newEpisode {
					episodes[i]++
					if episodes[i] > t.WorstEpisodes {
						t.WorstEpisodes = episodes[i]
					}
				}
			default:
				waiting[i] = false
				episodes[i] = 0
			}
		}
		prevHolder = holder
	}
	// Flush censored waits: a task still waiting at run end (possibly
	// starved for the entire run) reports its in-progress wait, so
	// starvation surfaces as the worst MaxWait instead of no wait at
	// all.
	for i := 0; i < n; i++ {
		if waiting[i] {
			if w := cycles - waitStart[i]; w > m.Tasks[i].MaxWait {
				m.Tasks[i].MaxWait = w
			}
		}
	}
	return m, nil
}
