// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see EXPERIMENTS.md for the paper-vs-measured record):
//
//	BenchmarkFigure6ArbiterArea   — Figure 6, arbiter CLBs vs N
//	BenchmarkFigure7ArbiterClock  — Figure 7, arbiter MHz vs N
//	BenchmarkTable1SharedChannel  — Table 1 / Figure 3 channel sharing
//	BenchmarkSection5FFT          — Section 5 FFT case study timings
//	BenchmarkProtocolOverhead     — Section 4.3 two-cycle access protocol
//	BenchmarkAblationPolicies     — Section 4 policy comparison
//	BenchmarkAblationEncodings    — Section 4.2 encoding comparison
//	BenchmarkAblationElision      — Section 5 dependency-elision proposal
//	BenchmarkBoundedWait          — Section 4.1 N-1 wait bound
//
// Run with: go test -bench=. -benchmem
package sparcs_test

import (
	"fmt"
	"math/rand"
	"testing"

	"sparcs"
	"sparcs/internal/arbinsert"
	"sparcs/internal/arbiter"
	"sparcs/internal/behav"
	"sparcs/internal/core"
	"sparcs/internal/fft"
	"sparcs/internal/fsm"
	"sparcs/internal/partition"
	"sparcs/internal/rc"
	"sparcs/internal/sim"
	"sparcs/internal/synth"
	"sparcs/internal/workload"
)

var figureSizes = []int{2, 3, 4, 5, 6, 7, 8, 9, 10}

// BenchmarkFigure6ArbiterArea regenerates Figure 6: synthesized arbiter
// area in XC4000E CLBs for N in [2,10] under the three tool/encoding
// variants the paper plots.
func BenchmarkFigure6ArbiterArea(b *testing.B) {
	for _, v := range synth.Figure67Variants {
		for _, n := range figureSizes {
			m, err := arbiter.Machine(n)
			if err != nil {
				b.Fatal(err)
			}
			name := fmt.Sprintf("%s/%s/N=%d", v.Tool.Name, v.Enc, n)
			b.Run(name, func(b *testing.B) {
				var clbs int
				for i := 0; i < b.N; i++ {
					r, _, err := synth.Run(m, v.Enc, v.Tool)
					if err != nil {
						b.Fatal(err)
					}
					clbs = r.CLBs
				}
				b.ReportMetric(float64(clbs), "CLBs")
			})
		}
	}
}

// BenchmarkFigure7ArbiterClock regenerates Figure 7: maximum arbiter clock
// in MHz under the same sweep.
func BenchmarkFigure7ArbiterClock(b *testing.B) {
	for _, v := range synth.Figure67Variants {
		for _, n := range figureSizes {
			m, err := arbiter.Machine(n)
			if err != nil {
				b.Fatal(err)
			}
			name := fmt.Sprintf("%s/%s/N=%d", v.Tool.Name, v.Enc, n)
			b.Run(name, func(b *testing.B) {
				var mhz float64
				for i := 0; i < b.N; i++ {
					r, _, err := synth.Run(m, v.Enc, v.Tool)
					if err != nil {
						b.Fatal(err)
					}
					mhz = r.MaxMHz
				}
				b.ReportMetric(mhz, "MHz")
			})
		}
	}
}

// BenchmarkTable1SharedChannel regenerates the Table 1 scenario: two
// logical channels merged onto one physical channel; the receive register
// must preserve the early transfer for the late reader.
func BenchmarkTable1SharedChannel(b *testing.B) {
	g := table1Graph()
	programs := table1Programs()
	board := rc.Generic(2, wildforceDevice(), 32*1024, 36, 36)
	var cycles int
	for i := 0; i < b.N; i++ {
		d, err := core.Compile(g, board, programs, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		mem := sim.NewMemory()
		res, err := core.Simulate(d, mem, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if mem.Read("OUT", 0) != 10 || mem.Read("OUT", 1) != 102 {
			b.Fatalf("shared channel corrupted values: c1=%d c4=%d",
				mem.Read("OUT", 0), mem.Read("OUT", 1))
		}
		if len(res.Violations()) != 0 {
			b.Fatalf("violations: %v", res.Violations())
		}
		cycles = res.TotalCycles
	}
	b.ReportMetric(float64(cycles), "cycles")
}

// BenchmarkSection5FFT regenerates the Section 5 case study: the 4x4 2-D
// FFT on the Wildforce model, reporting hardware seconds (512x512 image at
// 6 MHz), the Pentium-150 software model, and the speedup. Paper: HW 4.4 s,
// SW 6.8 s, speedup ~1.55x.
func BenchmarkSection5FFT(b *testing.B) {
	var cs *sparcs.FFTCaseStudy
	for i := 0; i < b.N; i++ {
		var err error
		cs, err = sparcs.RunFFTCaseStudy(6)
		if err != nil {
			b.Fatal(err)
		}
		if !cs.OutputOK {
			b.Fatal("hardware output does not match the FFT reference")
		}
		if len(cs.Result.Violations()) != 0 {
			b.Fatalf("violations: %v", cs.Result.Violations())
		}
	}
	b.ReportMetric(cs.HWSeconds, "hw_s")
	b.ReportMetric(cs.SWSeconds, "sw_s")
	b.ReportMetric(cs.Speedup, "speedup")
	b.ReportMetric(cs.CyclesPerTile, "cycles/tile")
}

// BenchmarkProtocolOverhead measures the Section 4.3 claim: with an
// immediate grant, an arbitrated access group costs exactly two extra
// cycles over the bare accesses.
func BenchmarkProtocolOverhead(b *testing.B) {
	g := twoTaskGraph()
	bare := map[string]behav.Program{
		"A": {Body: []behav.Instr{behav.WriteImm("S", 0, 1), behav.WriteImm("S", 1, 2)}, Repeat: 50},
	}
	wrapped := map[string]behav.Program{
		"A": {Body: []behav.Instr{
			behav.Req("bank"), behav.WaitGrant("bank"),
			behav.WriteImm("S", 0, 1), behav.WriteImm("S", 1, 2),
			behav.Release("bank"),
		}, Repeat: 50},
	}
	spec := partition.ArbiterSpec{Resource: "bank", Members: []string{"A", "B"}}
	var overhead float64
	for i := 0; i < b.N; i++ {
		sBare, err := sim.Run(sim.Config{Graph: g, Tasks: []string{"A"}, Programs: bare})
		if err != nil {
			b.Fatal(err)
		}
		sWrap, err := sim.Run(sim.Config{
			Graph: g, Tasks: []string{"A"}, Programs: wrapped,
			Arbiters:          []partition.ArbiterSpec{spec},
			ResourceOfSegment: map[string]string{"S": "bank"},
		})
		if err != nil {
			b.Fatal(err)
		}
		overhead = float64(sWrap.Cycles-sBare.Cycles) / 50
	}
	b.ReportMetric(overhead, "extra_cycles/group")
}

// BenchmarkAblationPolicies compares the four arbitration policies the
// paper examined under sustained M=2 contention: grant spread and
// worst-case wait episodes.
func BenchmarkAblationPolicies(b *testing.B) {
	const n = 6
	for _, name := range []string{"round-robin", "fifo", "priority", "random"} {
		b.Run(name, func(b *testing.B) {
			var worst, minG, maxG float64
			for i := 0; i < b.N; i++ {
				pol, err := arbiter.NewPolicy(name, n)
				if err != nil {
					b.Fatal(err)
				}
				worst, minG, maxG = contentionRun(pol, n, 4000)
			}
			b.ReportMetric(worst, "worst_wait_episodes")
			b.ReportMetric(minG, "min_grants")
			b.ReportMetric(maxG, "max_grants")
		})
	}
}

// BenchmarkAblationEncodings compares FSM encodings through the same
// pipeline at N=6 (FPGA Express model, which honors the request).
func BenchmarkAblationEncodings(b *testing.B) {
	m, err := arbiter.Machine(6)
	if err != nil {
		b.Fatal(err)
	}
	for _, enc := range []fsm.Encoding{fsm.OneHot, fsm.Compact, fsm.Gray} {
		b.Run(enc.String(), func(b *testing.B) {
			var clbs int
			var mhz float64
			for i := 0; i < b.N; i++ {
				r, _, err := synth.Run(m, enc, synth.Express)
				if err != nil {
					b.Fatal(err)
				}
				clbs, mhz = r.CLBs, r.MaxMHz
			}
			b.ReportMetric(float64(clbs), "CLBs")
			b.ReportMetric(mhz, "MHz")
		})
	}
}

// BenchmarkAblationElision compares dependency-aware insertion (the
// paper's Section 5 proposal, our default) with the conservative mode on
// the FFT design: total arbiter request lines and total cycles.
func BenchmarkAblationElision(b *testing.B) {
	for _, mode := range []struct {
		name         string
		conservative bool
	}{{"dep-aware", false}, {"conservative", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var lines, cycles float64
			for i := 0; i < b.N; i++ {
				tiles := 4
				opts := core.Options{
					Partition: partition.Options{FixedStages: fft.PaperStages()},
					Insert:    arbinsert.Options{Conservative: mode.conservative},
				}
				g := fft.Taskgraph()
				d, err := core.Compile(g, rc.Wildforce(), fft.Programs(tiles), opts)
				if err != nil {
					b.Fatal(err)
				}
				mem := sim.NewMemory()
				in := fft.LoadInput(mem, tiles, 1)
				res, err := core.Simulate(d, mem, opts)
				if err != nil {
					b.Fatal(err)
				}
				if err := fft.CheckOutput(mem, in); err != nil {
					b.Fatal(err)
				}
				l := 0
				for _, sp := range d.Stages {
					for _, a := range sp.Inserted.Arbiters {
						l += a.N()
					}
				}
				lines, cycles = float64(l), float64(res.TotalCycles)
			}
			b.ReportMetric(lines, "arb_lines")
			b.ReportMetric(cycles, "cycles")
		})
	}
}

// BenchmarkBoundedWait verifies the Section 4.1 bound empirically: the
// worst wait under adversarial traffic never exceeds N-1 grant episodes.
func BenchmarkBoundedWait(b *testing.B) {
	for _, n := range []int{2, 4, 6, 8, 10} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				worst, _, _ = contentionRun(arbiter.NewRoundRobin(n), n, 4000)
				if int(worst) > n-1 {
					b.Fatalf("worst wait %d exceeds bound %d", int(worst), n-1)
				}
			}
			b.ReportMetric(worst, "worst_wait_episodes")
			b.ReportMetric(float64(n-1), "bound")
		})
	}
}

// contentionRun drives a policy with persistent requesters following the
// M=2 protocol and returns (worst wait episodes, min grants, max grants).
func contentionRun(pol arbiter.Policy, n, cycles int) (worst, minG, maxG float64) {
	r := rand.New(rand.NewSource(int64(n)))
	req := make([]bool, n)
	held := make([]int, n)
	grants := make([]int, n)
	var trace []arbiter.TraceStep
	for c := 0; c < cycles; c++ {
		for i := range req {
			if held[i] >= 2 {
				req[i] = false
				held[i] = 0
			} else if !req[i] {
				req[i] = r.Intn(4) != 0
			}
		}
		g := pol.Step(req)
		for i := range g {
			if g[i] {
				grants[i]++
				held[i]++
			}
		}
		trace = append(trace, arbiter.TraceStep{
			Req:   append([]bool(nil), req...),
			Grant: append([]bool(nil), g...),
		})
	}
	w := 0
	for _, e := range arbiter.MaxWaitEpisodes(n, trace) {
		if e > w {
			w = e
		}
	}
	lo, hi := grants[0], grants[0]
	for _, g := range grants[1:] {
		if g < lo {
			lo = g
		}
		if g > hi {
			hi = g
		}
	}
	return float64(w), float64(lo), float64(hi)
}

// BenchmarkSimFFTStage measures raw simulator cycle throughput on the
// contended first temporal partition of the Section 5 FFT case study
// (6-input and 2-input arbiters active). This is the hot-loop benchmark
// tracked in BENCH_sim.json; CI smokes it with -bench=BenchmarkSim.
func BenchmarkSimFFTStage(b *testing.B) {
	tiles := 6
	g := fft.Taskgraph()
	opts := core.Options{Partition: partition.Options{FixedStages: fft.PaperStages()}}
	d, err := core.Compile(g, rc.Wildforce(), fft.Programs(tiles), opts)
	if err != nil {
		b.Fatal(err)
	}
	sp := d.Stages[0]
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		mem := sim.NewMemory()
		fft.LoadInput(mem, tiles, 42)
		b.StartTimer()
		stats, err := sim.Run(sim.Config{
			Graph:             g,
			Tasks:             sp.Stage.Tasks,
			Programs:          sp.Inserted.Programs,
			Arbiters:          sp.Inserted.Arbiters,
			ResourceOfSegment: sp.Inserted.ResourceOfSegment,
			ResourceOfChannel: sp.Inserted.ResourceOfChannel,
			Memory:            mem,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(stats.Violations) != 0 {
			b.Fatalf("violations: %v", stats.Violations)
		}
		cycles += int64(stats.Cycles)
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/sec")
}

// BenchmarkSimSweep measures the parallel sweep runner: GOMAXPROCS
// workers fanning independent full FFT simulations (all three temporal
// partitions each), the shape of every paper-table sweep above.
func BenchmarkSimSweep(b *testing.B) {
	tiles := 4
	opts := core.Options{Partition: partition.Options{FixedStages: fft.PaperStages()}}
	g := fft.Taskgraph()
	d, err := core.Compile(g, rc.Wildforce(), fft.Programs(tiles), opts)
	if err != nil {
		b.Fatal(err)
	}
	const points = 16
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sweep := make([]core.SweepPoint, points)
		for p := range sweep {
			mem := sim.NewMemory()
			fft.LoadInput(mem, tiles, int64(p))
			sweep[p] = core.SweepPoint{Design: d, Memory: mem, Options: opts}
		}
		b.StartTimer()
		results, err := core.SimulateSweep(sweep)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if len(r.Violations()) != 0 {
				b.Fatalf("violations: %v", r.Violations())
			}
			cycles += int64(r.TotalCycles)
		}
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/sec")
}

// BenchmarkAblationM sweeps the M parameter (accesses per grant,
// Figure 8): larger M amortizes the two-cycle protocol over more accesses
// but lengthens each hold.
func BenchmarkAblationM(b *testing.B) {
	for _, m := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				tiles := 4
				opts := core.Options{
					Partition: partition.Options{FixedStages: fft.PaperStages()},
					Insert:    arbinsert.Options{M: m},
				}
				g := fft.Taskgraph()
				d, err := core.Compile(g, rc.Wildforce(), fft.Programs(tiles), opts)
				if err != nil {
					b.Fatal(err)
				}
				mem := sim.NewMemory()
				in := fft.LoadInput(mem, tiles, 2)
				res, err := core.Simulate(d, mem, opts)
				if err != nil {
					b.Fatal(err)
				}
				if err := fft.CheckOutput(mem, in); err != nil {
					b.Fatal(err)
				}
				cycles = float64(res.TotalCycles) / float64(tiles)
			}
			b.ReportMetric(cycles, "cycles/tile")
		})
	}
}

// BenchmarkAblationHoldThrough compares the Figure 8 rewrite with the
// paper's suggested alternative task-modification scheme (grants held
// through short computations) on the FFT design.
func BenchmarkAblationHoldThrough(b *testing.B) {
	for _, hold := range []int{0, 2} {
		b.Run(fmt.Sprintf("hold=%d", hold), func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				tiles := 4
				opts := core.Options{
					Partition: partition.Options{FixedStages: fft.PaperStages()},
					Insert:    arbinsert.Options{HoldThrough: hold},
				}
				g := fft.Taskgraph()
				d, err := core.Compile(g, rc.Wildforce(), fft.Programs(tiles), opts)
				if err != nil {
					b.Fatal(err)
				}
				mem := sim.NewMemory()
				in := fft.LoadInput(mem, tiles, 2)
				res, err := core.Simulate(d, mem, opts)
				if err != nil {
					b.Fatal(err)
				}
				if err := fft.CheckOutput(mem, in); err != nil {
					b.Fatal(err)
				}
				cycles = float64(res.TotalCycles) / float64(tiles)
			}
			b.ReportMetric(cycles, "cycles/tile")
		})
	}
}

// BenchmarkPreemption exercises the paper's future-work extension: the
// preemptive round-robin bounds a hog's hold time while preserving all
// safety properties.
func BenchmarkPreemption(b *testing.B) {
	const n = 4
	for _, mode := range []string{"plain", "preemptive"} {
		b.Run(mode, func(b *testing.B) {
			var starvedCycles float64
			for i := 0; i < b.N; i++ {
				var pol arbiter.Policy
				if mode == "plain" {
					pol = arbiter.NewRoundRobin(n)
				} else {
					p, err := arbiter.NewPreemptiveRoundRobin(n, 4)
					if err != nil {
						b.Fatal(err)
					}
					pol = p
				}
				// Task 1 never releases; tasks 2..4 wait politely.
				req := []bool{true, true, true, true}
				waiting := 0
				for c := 0; c < 1000; c++ {
					g := pol.Step(req)
					if !g[1] && !g[2] && !g[3] {
						waiting++
					}
				}
				starvedCycles = float64(waiting)
			}
			b.ReportMetric(starvedCycles, "cycles_others_starved")
		})
	}
}

// BenchmarkPolicyWorkload measures the contention-workload engine's
// aggregate arbitration throughput: a 16-cell grid of cheap behavioral
// policies under four traffic shapes at N=6 (the FFT case study's
// contended arbiter size), fanned across GOMAXPROCS workers by
// workload.RunGrid. The reported cycles/sec metric is total
// arbitrated cycles across all cells divided by wall-clock time
// (tracked in BENCH_sim.json; the acceptance floor is 10M cycles/sec).
func BenchmarkPolicyWorkload(b *testing.B) {
	policies := []string{"rr", "priority", "wrr:2", "hier:2"}
	workloads := []string{"bernoulli:0.30", "hotspot:0.90", "hog", "trace"}
	cells := len(policies) * len(workloads)
	b.ReportAllocs()
	ms, err := workload.RunGrid(policies, workloads, workload.GridOptions{N: 6, Cycles: max(b.N, 1), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range ms {
		if m.Violation != "" {
			b.Fatalf("%s × %s: %s", m.Policy, m.Workload, m.Violation)
		}
	}
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cycles/sec")
}

// BenchmarkPolicyWorkloadWide measures the bitset kernel at width: the
// full behavioral policy set (every kind the uint64 kernel serves —
// fsm/netlist excluded, they stop at MaxSynthN) under four traffic
// shapes, at the pre-bitset cap N=16 and the full request word N=64.
// Tracked in BENCH_sim.json next to the N=6 grid; allocs/op must stay 0
// at both widths.
func BenchmarkPolicyWorkloadWide(b *testing.B) {
	policies := []string{"rr", "fifo", "priority", "random:1", "preemptive:4", "wrr:2", "hier:2"}
	workloads := []string{"bernoulli:0.30", "hotspot:0.90", "hog", "trace"}
	cells := len(policies) * len(workloads)
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			ms, err := workload.RunGrid(policies, workloads, workload.GridOptions{N: n, Cycles: max(b.N, 1), Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			for _, m := range ms {
				if m.Violation != "" {
					b.Fatalf("%s × %s: %s", m.Policy, m.Workload, m.Violation)
				}
			}
			b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cycles/sec")
		})
	}
}

// BenchmarkScenarioChurn measures the online dynamic-reconfiguration
// engine end to end: eight FFT jobs arriving through a bursty process
// onto a two-resident fabric, placed by the strip allocator, their
// reconfigurations hidden behind execution by the hybrid prefetcher.
// The metric is simulated scenario cycles per wall-clock second —
// the per-cycle hot loop (engine.stepCycle) plus the staged sim runs.
// Tracked in BENCH_sim.json; CI smokes it with -bench=BenchmarkScenarioChurn.
func BenchmarkScenarioChurn(b *testing.B) {
	sys, err := sparcs.FFTSystem(2)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sparcs.ScenarioConfig{
		Entries:         []sparcs.ScenarioEntry{{System: sys}},
		Arrivals:        "bursty/256",
		Jobs:            8,
		Seed:            1,
		Prefetch:        sparcs.PrefetchHybrid,
		FabricCols:      192,
		FabricRows:      24,
		CompactionDelay: 64,
	}
	var cycles int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sparcs.RunScenario(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycles += int64(res.Makespan)
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/sec")
}
