// Quickstart: build a 4-input round-robin arbiter, watch it arbitrate a
// burst of conflicting requests, generate its VHDL, and characterize its
// cost on the XC4000E — the core loop of the paper in ~60 lines.
package main

import (
	"fmt"
	"log"
	"strings"

	"sparcs"
)

func main() {
	const n = 4
	arb, err := sparcs.NewArbiter(n)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== cycle-by-cycle arbitration (R = request, G = grant) ==")
	// Tasks 1..4 all request; each holds for two accesses then releases
	// (the paper's M=2 protocol), then re-requests.
	req := []bool{true, true, true, true}
	held := make([]int, n)
	for cycle := 0; cycle < 12; cycle++ {
		grants := arb.Step(req)
		fmt.Printf("cycle %2d  R=%s  G=%s  state=%s\n",
			cycle, bits(req), bits(grants), arb.State())
		for i := range req {
			if grants[i] {
				held[i]++
			}
			if held[i] >= 2 {
				req[i] = false
				held[i] = 0
			} else {
				req[i] = true
			}
		}
	}

	fmt.Println("\n== generated VHDL (first lines) ==")
	vhdl, err := sparcs.ArbiterVHDL(n, "one-hot")
	if err != nil {
		log.Fatal(err)
	}
	lines := strings.SplitN(vhdl, "\n", 12)
	fmt.Println(strings.Join(lines[:11], "\n"))
	fmt.Println("  ...")

	fmt.Println("\n== XC4000E characterization ==")
	for _, tool := range []string{"synplify", "fpga-express"} {
		r, err := sparcs.CharacterizeArbiter(n, tool, "one-hot")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %3d CLBs  %5.1f MHz\n", r.Label(), r.CLBs, r.MaxMHz)
	}

	// Compile-once / experiment-many: build the Section 5 FFT system one
	// time, then run independent experiments against the same compiled
	// design. A never-releasing background hog starves the non-preemptive
	// round-robin forever (the watchdog cuts it off); the preemptive
	// variant revokes the hog and the design completes.
	fmt.Println("\n== system experiments (compile once, run many) ==")
	sys, err := sparcs.FFTSystem(2)
	if err != nil {
		log.Fatal(err)
	}
	for _, run := range []struct {
		label string
		opts  []sparcs.RunOption
	}{
		{"round-robin,  quiet", nil},
		{"round-robin,  M1 hog", []sparcs.RunOption{
			sparcs.WithContention("M1=hog/1"), sparcs.WithMaxCycles(100_000)}},
		{"preemptive:4, M1 hog", []sparcs.RunOption{
			sparcs.WithPolicy("preemptive:4"),
			sparcs.WithContention("M1=hog/1"), sparcs.WithMaxCycles(100_000)}},
	} {
		res, err := sys.Run(run.opts...)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "completed"
		if len(res.Violations()) > 0 {
			verdict = "STARVED (watchdog)"
		}
		fmt.Printf("%-22s %6d cycles, %s\n", run.label, res.TotalCycles, verdict)
	}
}

func bits(v []bool) string {
	var b strings.Builder
	for _, x := range v {
		if x {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}
