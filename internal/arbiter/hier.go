package arbiter

import "fmt"

// Hierarchical arbitrates with a two-level tree of round-robin
// pointers, the structure high-speed parallel round-robin arbiters use
// to shorten the priority-propagation critical path: the request lines
// are split into clusters, a top-level pointer rotates over clusters
// and a per-cluster pointer rotates over members. Each grant advances
// both the winning cluster's member pointer and the top-level cluster
// pointer, so clusters take strict turns and members take strict turns
// within their cluster.
//
// Like the flat round-robin it is non-preemptive (a holder keeps the
// resource while it keeps requesting) and work conserving. For balanced
// trees (NewHierarchical: `groups` equal clusters of consecutive lines)
// the worst-case wait of a continuously requesting task is
// (N/groups-1) turns of its own cluster plus (groups-1) foreign-cluster
// episodes between consecutive turns — exactly the flat arbiter's N-1
// grant-episode bound. With groups=1 or groups=N the tree degenerates
// to the flat round-robin and produces identical grant sequences.
//
// NewHierarchicalWidened builds the ragged variant the simulator uses
// when background contention widens an arbiter: the member lines keep
// the balanced layout they would have WITHOUT contention and the
// appended phantom/shared lanes form one extra cluster, so the members'
// tree shape — and therefore their grant stream whenever the extra
// lanes stay quiet — is independent of the widening.
type Hierarchical struct {
	n      int
	name   string
	mask   BitVec
	holder int      // line holding the resource, or -1
	top    int      // next group the cluster scan starts at
	base   []int    // per-group first line
	size   []int    // per-group line count
	gmask  []BitVec // per-group request window (low size[g] bits)
	leaf   []int    // per-group member offset the intra-cluster scan starts at
	grants []bool
}

// NewHierarchical returns a tree-of-round-robins arbiter over `groups`
// equal clusters of consecutive lines; groups must divide n.
func NewHierarchical(n, groups int) (*Hierarchical, error) {
	return NewHierarchicalWidened(n, n, groups)
}

// NewHierarchicalWidened returns the tree arbiter for an arbiter
// widened from `members` real lines to `n` total lines: the first
// `members` lines are split into `groups` equal clusters exactly as
// NewHierarchical(members, groups) would, and lines [members, n) — the
// appended background lanes — form one additional cluster at the end of
// the rotation instead of rebalancing the member clusters. groups must
// divide members. With n == members the tree is the balanced one.
//
// Because an always-idle cluster is transparent to the cluster
// rotation, the member lines' grant stream is byte-identical to the
// unwidened arbiter's whenever the appended lanes never request.
func NewHierarchicalWidened(members, n, groups int) (*Hierarchical, error) {
	if n < MinN || n > MaxN {
		return nil, RangeError(n)
	}
	if members < MinN || members > n {
		return nil, fmt.Errorf("arbiter: hier member count must be in [%d,%d], got %d", MinN, n, members)
	}
	if groups < 1 || groups > members {
		return nil, fmt.Errorf("arbiter: hier group count must be in [1,%d], got %d", members, groups)
	}
	if members%groups != 0 {
		return nil, fmt.Errorf("arbiter: hier needs a balanced member tree: %d groups do not divide %d tasks", groups, members)
	}
	size := members / groups
	p := &Hierarchical{
		n:      n,
		name:   fmt.Sprintf("hierarchical-%dx%d", groups, size),
		mask:   Mask(n),
		holder: -1,
		grants: make([]bool, n),
	}
	for g := 0; g < groups; g++ {
		p.addGroup(g*size, size)
	}
	if extra := n - members; extra > 0 {
		p.name = fmt.Sprintf("hierarchical-%dx%d+%d", groups, size, extra)
		p.addGroup(members, extra)
	}
	return p, nil
}

// addGroup appends one cluster of `size` consecutive lines at `base`.
func (p *Hierarchical) addGroup(base, size int) {
	p.base = append(p.base, base)
	p.size = append(p.size, size)
	p.gmask = append(p.gmask, Mask(size))
	p.leaf = append(p.leaf, 0)
}

// Name implements Policy ("hierarchical-<groups>x<size>", with a
// "+<extra>" suffix for the widened ragged form).
func (p *Hierarchical) Name() string { return p.name }

// N implements Policy.
func (p *Hierarchical) N() int { return p.n }

// Reset implements Policy.
func (p *Hierarchical) Reset() {
	p.holder = -1
	p.top = 0
	for g := range p.leaf {
		p.leaf[g] = 0
	}
}

// Step implements Policy.
func (p *Hierarchical) Step(req []bool) []bool {
	p.StepInto(req, p.grants)
	return p.grants
}

// StepInto implements InPlaceStepper with the same semantics as
// StepBits.
//
//sparcs:hotpath
func (p *Hierarchical) StepInto(req, grant []bool) {
	checkLanes(req, grant, p.n)
	p.StepBits(PackBools(req)).WriteBools(grant)
}

// StepBits implements BitStepper: grant a still-requesting holder,
// otherwise scan clusters cyclically from the top pointer — each
// cluster's request window extracted as a size-bit word and scanned
// with the same rotate / isolate-lowest-set kernel as the flat arbiter
// — advancing both pointers past the grantee.
//
//sparcs:hotpath
func (p *Hierarchical) StepBits(req BitVec) BitVec {
	req &= p.mask
	if p.holder >= 0 && req.Bit(p.holder) {
		return 1 << uint(p.holder)
	}
	groups := len(p.size)
	for gi := 0; gi < groups; gi++ {
		g := p.top + gi
		if g >= groups {
			g -= groups
		}
		w := req >> uint(p.base[g]) & p.gmask[g]
		if w == 0 {
			continue
		}
		size := p.size[g]
		m := p.leaf[g] + w.rotr(p.leaf[g], size).FirstSet()
		if m >= size {
			m -= size
		}
		t := p.base[g] + m
		p.holder = t
		p.leaf[g] = m + 1
		if p.leaf[g] == size {
			p.leaf[g] = 0
		}
		p.top = g + 1
		if p.top == groups {
			p.top = 0
		}
		return 1 << uint(t)
	}
	p.holder = -1
	return 0
}
