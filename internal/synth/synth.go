// Package synth drives the full synthesis pipeline — FSM encoding, logic
// minimization, gate construction, 4-LUT mapping, XC4000E CLB packing, and
// static timing — and models the two commercial tools the paper compared:
//
//   - Synplify 5.1.4: always re-encodes FSMs one-hot regardless of the
//     VHDL's requested encoding (the paper notes "Synplify used one-hot
//     encoding regardless of what the VHDL files specified"), with strong
//     logic optimization.
//   - FPGA Express 2.1: honors the requested encoding attribute, with a
//     faster but weaker optimization pass.
//
// The pipeline differences are behavioral stand-ins for the real tools'
// internals, chosen so the structural causes of the paper's Figure 6/7
// trends (flip-flop count vs next-state logic size, priority-chain depth)
// act on the results the same way.
package synth

import (
	"fmt"

	"sparcs/internal/fsm"
	"sparcs/internal/logic"
	"sparcs/internal/lutmap"
	"sparcs/internal/netlist"
	"sparcs/internal/xc4000"
)

// Tool models one synthesis tool's behavior.
type Tool struct {
	Name string
	// ForceOneHot re-encodes every FSM one-hot, ignoring the request.
	ForceOneHot bool
	// FullEffort selects exact two-level minimization (Quine-McCluskey
	// with don't-cares); false selects the fast merge-only pass.
	FullEffort bool
	// AreaMap selects area-oriented LUT mapping (shared logic implemented
	// once); false selects depth-oriented mapping (faster, larger).
	AreaMap bool
	// FactorOr enables the stronger algebraic pass (single-variant cube
	// merging through shared OR products).
	FactorOr bool
}

// The two tools of the paper's Figures 6 and 7.
var (
	Synplify = Tool{Name: "synplify", ForceOneHot: true, FullEffort: true, AreaMap: true, FactorOr: true}
	Express  = Tool{Name: "fpga-express", ForceOneHot: false, FullEffort: false, AreaMap: false, FactorOr: true}
)

// ParseTool resolves a command-line tool name.
func ParseTool(s string) (Tool, error) {
	switch s {
	case "synplify":
		return Synplify, nil
	case "fpga-express", "express":
		return Express, nil
	}
	return Tool{}, fmt.Errorf("synth: unknown tool %q (want synplify or fpga-express)", s)
}

// Result is one synthesis run's report, in the paper's units.
type Result struct {
	Tool       string
	Encoding   fsm.Encoding // effective encoding (after tool policy)
	Requested  fsm.Encoding
	CLBs       int
	MaxMHz     float64
	CriticalNs float64
	LUTs       int
	FFs        int
	Depth      int // LUT levels
	HMerges    int
}

// Label names the tool/encoding combination as the paper's figure legends
// do, e.g. "FPGA_express One-Hot".
func (r Result) Label() string {
	tool := map[string]string{"synplify": "Synplify", "fpga-express": "FPGA_express"}[r.Tool]
	enc := map[fsm.Encoding]string{fsm.OneHot: "One-Hot", fsm.Compact: "Compact", fsm.Gray: "Gray"}[r.Encoding]
	return tool + " " + enc
}

// Run synthesizes the machine with the tool's policies and returns the
// area/timing report plus the mapped netlist for further analysis.
func Run(m *fsm.Machine, requested fsm.Encoding, tool Tool) (Result, *netlist.Netlist, error) {
	enc := requested
	if tool.ForceOneHot {
		enc = fsm.OneHot
	}
	opt := fsm.Options{FactorOr: tool.FactorOr}
	if !tool.FullEffort {
		opt.Minimize = func(on, dc *logic.Cover) *logic.Cover { return logic.Simplify(on) }
	}
	nl, _, err := fsm.SynthesizeOpts(m, enc, opt)
	if err != nil {
		return Result{}, nil, fmt.Errorf("synth %s: %w", tool.Name, err)
	}
	mode := lutmap.DepthMode
	if tool.AreaMap {
		mode = lutmap.AreaMode
	}
	mapping, err := lutmap.MapMode(nl, 4, mode)
	if err != nil {
		return Result{}, nil, fmt.Errorf("synth %s: %w", tool.Name, err)
	}
	pack := xc4000.Pack(mapping)
	timing := xc4000.Timing(mapping)
	return Result{
		Tool:       tool.Name,
		Encoding:   enc,
		Requested:  requested,
		CLBs:       pack.CLBs,
		MaxMHz:     timing.MaxClockMHz,
		CriticalNs: timing.CriticalPathNs,
		LUTs:       mapping.NumLUTs(),
		FFs:        mapping.NumFFs,
		Depth:      mapping.Depth,
		HMerges:    pack.HMerges,
	}, nl, nil
}

// Variant is one curve of the paper's Figures 6 and 7.
type Variant struct {
	Tool Tool
	Enc  fsm.Encoding
}

// Figure67Variants are the three tool/encoding combinations plotted in the
// paper: FPGA Express one-hot, FPGA Express compact, Synplify one-hot.
var Figure67Variants = []Variant{
	{Tool: Express, Enc: fsm.OneHot},
	{Tool: Express, Enc: fsm.Compact},
	{Tool: Synplify, Enc: fsm.OneHot},
}

// Sweep synthesizes one machine generator over a range of sizes for each
// variant. gen(n) must produce the machine for size n.
func Sweep(gen func(n int) (*fsm.Machine, error), sizes []int, variants []Variant) ([][]Result, error) {
	out := make([][]Result, len(variants))
	for vi, v := range variants {
		for _, n := range sizes {
			m, err := gen(n)
			if err != nil {
				return nil, err
			}
			r, _, err := Run(m, v.Enc, v.Tool)
			if err != nil {
				return nil, err
			}
			out[vi] = append(out[vi], r)
		}
	}
	return out, nil
}
