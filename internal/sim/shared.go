package sim

import (
	"fmt"

	"sparcs/internal/arbiter"
)

// BitSharedRequester is the optional word-level fast path of
// SharedRequester: NextBits rewrites req[r] (resource r's lane word,
// bit j = lane j) in place after observing prevGrant[r], the grants
// those lanes received last cycle. It is structurally identical to the
// workload package's shared-source word surface, so correlated
// generators take the fast path without an import cycle. NextBits must
// advance the same state as Next.
type BitSharedRequester interface {
	NextBits(req, prevGrant []arbiter.BitVec)
}

// SharedRequester is a closed-loop background traffic source whose single
// generator drives request lines on SEVERAL arbiters at once — the
// correlated multi-resource pattern a per-arbiter Requester cannot
// express ("hold bank A while waiting on channel B"). It is structurally
// identical to workload.SharedSource, so the workload package's
// correlated generators attach to a Config without an import cycle.
//
// The source claims Lanes() request lines on each of its Resources(): one
// line per (lane, resource) pair, where lane j's lines across all
// resources belong to one logical job that acquires the resources in
// Resources() order, holding everything already granted while waiting for
// the next — the hold-and-wait discipline behind deadlock-adjacent
// sharing patterns.
//
// Next is called once per cycle before any arbiter steps, observing the
// previous cycle's grants on every resource coherently. Implementations
// must be deterministic and allocation-free in Next; Run passes
// setup-allocated scratch buffers (or BitVec words, for
// BitSharedRequesters) and copies the results into the arbiters'
// request words.
type SharedRequester interface {
	// Name identifies the source ("corr:0.10").
	Name() string
	// Resources lists the arbitrated resource names the source spans, in
	// acquisition order. It must have at least two distinct entries.
	Resources() []string
	// Lanes returns the number of independent jobs the source runs; each
	// lane claims one request line on every resource.
	Lanes() int
	// Next fills req[r][j] (resource r's line for lane j) for the coming
	// cycle after observing prevGrant, the grants those lines received
	// last cycle. len(req) == len(Resources()); len(req[r]) == Lanes().
	Next(req, prevGrant [][]bool)
	// Reset returns the source to its initial state. Run calls it once at
	// setup so a source replays identically across runs.
	Reset()
}

// SharedSource attaches one multi-resource background requester to the
// arbiters guarding its resources. On each resource, the source's lanes
// are appended after the member tasks' request lines and any
// single-resource ContentionSource lines (in Config.Shared order), the
// arbitration policy is constructed over the widened count, and the
// grants each lane wins feed back into the source's closed loop.
//
// Sources are stateful: each Config needs its own instances.
type SharedSource struct {
	// Gen produces the correlated phantom request lines.
	Gen SharedRequester
}

// SharedStats aggregates one shared source's cross-resource experience
// over a run. Per-line grant/wait counts additionally land in
// Stats.Contention under each spanned resource, exactly like
// single-resource phantom lines.
type SharedStats struct {
	// Name is the source's Name(), Resources its spanned resources in
	// acquisition order.
	Name      string
	Resources []string
	// Grants[r] counts granted line-cycles on resource r (summed over
	// lanes); Waits[r] counts line-cycles requesting without a grant.
	Grants []int
	Waits  []int
	// HoldWait counts lane-cycles in the hold-and-wait overlap: a lane
	// holding (granted) at least one resource while requesting another
	// without holding it — the deadlock-adjacent state the correlated
	// source exists to exercise.
	HoldWait int
	// AllHeld counts lane-cycles with every spanned resource granted
	// simultaneously — the lane's critical section.
	AllHeld int
}

// sharedInst is one wired shared source: per resource, the lane window
// [offs[r], offs[r]+lanes) in arbs[r]'s request/grant words, plus
// reusable per-resource scratch — BitVec words for BitSharedRequesters,
// owned [][]bool buffers for sources with only the slice surface.
type sharedInst struct {
	gen       SharedRequester
	bits      BitSharedRequester // non-nil: the word-level fast path
	arbs      []*arbInst
	offs      []int
	lanes     int
	laneMask  arbiter.BitVec   // low `lanes` bits
	reqW      []arbiter.BitVec // per-resource lane-word scratch
	prevW     []arbiter.BitVec
	reqView   [][]bool // []bool scratch for slice-only sources
	grantView [][]bool
	stats     *SharedStats
}

// next refreshes the source's lane windows on every spanned resource
// from one coherent snapshot of last cycle's grants.
//
//sparcs:hotpath
func (inst *sharedInst) next() {
	for r, ai := range inst.arbs {
		off := uint(inst.offs[r])
		inst.reqW[r] = ai.req >> off & inst.laneMask
		inst.prevW[r] = ai.grant >> off & inst.laneMask
	}
	if inst.bits != nil {
		inst.bits.NextBits(inst.reqW, inst.prevW)
	} else {
		for r := range inst.arbs {
			inst.reqW[r].WriteBools(inst.reqView[r])
			inst.prevW[r].WriteBools(inst.grantView[r])
		}
		inst.gen.Next(inst.reqView, inst.grantView)
		for r := range inst.arbs {
			inst.reqW[r] = arbiter.PackBools(inst.reqView[r])
		}
	}
	for r, ai := range inst.arbs {
		off := uint(inst.offs[r])
		ai.req = ai.req&^(inst.laneMask<<off) | (inst.reqW[r]&inst.laneMask)<<off
	}
}

// wireShared validates the configured shared sources and appends their
// lanes to the named arbiters. Called after wireContention (shared lanes
// sit after single-resource phantom lines) and before policy
// construction, so policies are sized over the fully widened counts.
func wireShared(sources []SharedSource, arbs map[string]*arbInst) ([]*sharedInst, error) {
	var insts []*sharedInst
	for i, src := range sources {
		if src.Gen == nil {
			return nil, fmt.Errorf("sim: shared source %d has no generator", i)
		}
		resources := src.Gen.Resources()
		if len(resources) < 2 {
			return nil, fmt.Errorf("sim: shared source %d (%s) spans %d resource(s); need at least 2 (use a ContentionSource for one)",
				i, src.Gen.Name(), len(resources))
		}
		seen := map[string]bool{}
		for _, r := range resources {
			if seen[r] {
				return nil, fmt.Errorf("sim: shared source %d (%s) names resource %s twice", i, src.Gen.Name(), r)
			}
			seen[r] = true
			if arbs[r] == nil {
				return nil, fmt.Errorf("sim: shared source %d (%s) spans %s, but no arbiter guards it", i, src.Gen.Name(), r)
			}
		}
		lanes := src.Gen.Lanes()
		if lanes < 1 {
			return nil, fmt.Errorf("sim: shared source %d (%s) claims %d lanes", i, src.Gen.Name(), lanes)
		}
		if s, ok := src.Gen.(StaticallySilent); ok && s.Silent() {
			continue // statically silent sources are elided, like ContentionSources
		}
		for _, r := range resources {
			if ai := arbs[r]; ai.width+lanes > arbiter.MaxN {
				return nil, fmt.Errorf("sim: shared source %d (%s) widens the arbiter on %s to %d request lines; the bitset kernel supports at most %d",
					i, src.Gen.Name(), r, ai.width+lanes, arbiter.MaxN)
			}
		}
		src.Gen.Reset()
		inst := &sharedInst{
			gen:      src.Gen,
			lanes:    lanes,
			laneMask: arbiter.Mask(lanes),
			reqW:     make([]arbiter.BitVec, len(resources)),
			prevW:    make([]arbiter.BitVec, len(resources)),
			stats: &SharedStats{
				Name:      src.Gen.Name(),
				Resources: append([]string(nil), resources...),
				Grants:    make([]int, len(resources)),
				Waits:     make([]int, len(resources)),
			},
		}
		if b, ok := src.Gen.(BitSharedRequester); ok {
			inst.bits = b
		} else {
			inst.reqView = make([][]bool, len(resources))
			inst.grantView = make([][]bool, len(resources))
			for r := range resources {
				inst.reqView[r] = make([]bool, lanes)
				inst.grantView[r] = make([]bool, lanes)
			}
		}
		for _, r := range resources {
			ai := arbs[r]
			inst.arbs = append(inst.arbs, ai)
			inst.offs = append(inst.offs, ai.width)
			ai.width += lanes
		}
		insts = append(insts, inst)
	}
	return insts, nil
}

// observe accumulates this cycle's cross-resource statistics from the
// freshly issued grants. For lane j: every granted line counts toward its
// resource's Grants, every requesting-but-ungranted line toward Waits;
// a lane holding at least one resource while waiting on another is in
// hold-and-wait; a lane holding all of them is in its critical section.
//
//sparcs:hotpath
func (inst *sharedInst) observe() {
	for j := 0; j < inst.lanes; j++ {
		held, want, all := false, false, true
		for r, ai := range inst.arbs {
			//sparcs:ignore bitwidth offs[r]+j < width <= MaxN by wiring-time validation
			bit := arbiter.BitVec(1) << uint(inst.offs[r]+j)
			switch {
			case ai.grant&bit != 0:
				held = true
				inst.stats.Grants[r]++
			case ai.req&bit != 0:
				want = true
				inst.stats.Waits[r]++
				all = false
			default:
				all = false
			}
		}
		if held && want {
			inst.stats.HoldWait++
		}
		if held && all {
			inst.stats.AllHeld++
		}
	}
}
