// Seeded violations for the determinism analyzer, in a stub package
// carrying one of the gated import paths.
package sim

import (
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"
)

// Bad gathers every nondeterminism source the analyzer must flag.
func Bad(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map range iteration order is nondeterministic`
		total += v
	}
	start := time.Now()            // want `time.Now reads the wall clock`
	_ = time.Since(start)          // want `time.Since reads the wall clock`
	total += rand.Intn(10)         // want `global rand.Intn is shared nondeterministic state`
	go func() { total++ }()        // want `goroutine spawn outside sim.ParallelFor`
	time.Sleep(time.Millisecond)   // want `time.Sleep couples simulated cycles to wall-clock scheduling`
	if os.Getenv("SPARCS") != "" { // want `os.Getenv makes behavior depend on the host environment`
		total++
	}
	if runtime.NumCPU() > 4 { // want `runtime.NumCPU makes results depend on the host CPU count`
		total++
	}
	total += runtime.GOMAXPROCS(0) // want `runtime.GOMAXPROCS makes results depend on the host CPU count`
	return total
}

// Good shows each blessed alternative: sorted key collection, seeded
// generator instances, and no stray goroutines.
func Good(m map[string]int) int {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rng := rand.New(rand.NewSource(1))
	total := rng.Intn(10)
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// ParallelFor is the one function allowed to spawn goroutines.
func ParallelFor(n int, f func(int)) {
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(i int) {
			f(i)
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}
