package estimate

import (
	"testing"

	"sparcs/internal/fsm"
	"sparcs/internal/synth"
)

func TestCharacterizeCachesAndGrows(t *testing.T) {
	tab := NewTable(synth.Synplify, fsm.OneHot)
	e2, err := tab.Characterize(2)
	if err != nil {
		t.Fatal(err)
	}
	e6, err := tab.Characterize(6)
	if err != nil {
		t.Fatal(err)
	}
	if e6.CLBs <= e2.CLBs {
		t.Fatalf("area should grow: N=2 %d, N=6 %d", e2.CLBs, e6.CLBs)
	}
	if e6.MaxMHz >= e2.MaxMHz {
		t.Fatalf("clock should fall: N=2 %.1f, N=6 %.1f", e2.MaxMHz, e6.MaxMHz)
	}
	// Cached: a second call returns the identical entry.
	again, err := tab.Characterize(6)
	if err != nil {
		t.Fatal(err)
	}
	if again != e6 {
		t.Fatal("cache miss on repeated characterization")
	}
	if e6.String() == "" {
		t.Fatal("empty String")
	}
}

func TestAreaFnBounds(t *testing.T) {
	tab := NewTable(synth.Synplify, fsm.OneHot)
	fn := tab.AreaFn()
	if fn(1) != 0 {
		t.Error("N=1 has no arbiter")
	}
	if fn(4) <= 0 {
		t.Error("N=4 should have positive area")
	}
	if fn(20) <= fn(10) {
		t.Error("extrapolation beyond the knee should grow")
	}
}

// TestAreaFnKnee pins the extrapolation knee to the synthesizable width
// cap: behavioral policies run to arbiter.MaxN, but area still comes
// from synthesizing a MaxSynthN machine and scaling linearly. A knee
// accidentally raised to MaxN would make every n>16 estimate silently 0
// (Characterize(64) cannot synthesize).
func TestAreaFnKnee(t *testing.T) {
	if estimateKneeN != 16 {
		t.Fatalf("estimateKneeN = %d, want 16 (arbiter.MaxSynthN)", estimateKneeN)
	}
	tab := NewTable(synth.Synplify, fsm.OneHot)
	fn := tab.AreaFn()
	knee := fn(estimateKneeN)
	if knee <= 0 {
		t.Fatalf("area at the knee = %d, want positive", knee)
	}
	if got := fn(2 * estimateKneeN); got != 2*knee {
		t.Errorf("fn(%d) = %d, want exactly 2*knee = %d", 2*estimateKneeN, got, 2*knee)
	}
	if got := fn(64); got <= 0 {
		t.Errorf("fn(64) = %d, want positive (behavioral sizes must not estimate to 0)", got)
	}
}

func TestProtocolOverhead(t *testing.T) {
	// Figure 8 with M=2: 2 accesses -> one group -> 2 extra cycles.
	if got := ProtocolOverhead(2, 2); got != 2 {
		t.Fatalf("overhead(2,2) = %d, want 2", got)
	}
	if got := ProtocolOverhead(3, 2); got != 4 {
		t.Fatalf("overhead(3,2) = %d, want 4 (two groups)", got)
	}
	if got := ProtocolOverhead(4, 1); got != 8 {
		t.Fatalf("overhead(4,1) = %d, want 8", got)
	}
	if got := ProtocolOverhead(0, 2); got != 0 {
		t.Fatalf("overhead(0,2) = %d, want 0", got)
	}
}

func TestSlowerThanDesign(t *testing.T) {
	// Paper Section 4.2: the 10-input arbiter clocks above the 6 MHz FFT
	// design, so arbitration does not limit the system clock.
	tab := NewTable(synth.Synplify, fsm.OneHot)
	slower, err := tab.SlowerThanDesign(10, 6.0)
	if err != nil {
		t.Fatal(err)
	}
	if slower {
		t.Fatal("the 10-input arbiter must not limit a 6 MHz design")
	}
	faster, err := tab.SlowerThanDesign(10, 500.0)
	if err != nil {
		t.Fatal(err)
	}
	if !faster {
		t.Fatal("a 500 MHz design would be limited by the arbiter")
	}
}
