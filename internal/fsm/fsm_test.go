package fsm

import (
	"math/rand"
	"testing"

	"sparcs/internal/logic"
	"sparcs/internal/netlist"
)

// twoBitCounter is a 4-state counter with an enable input; output "carry"
// pulses on the 11->00 transition.
func twoBitCounter() *Machine {
	g := func(s string) logic.Cube { return logic.MustCube(s) }
	next := func(i int) int { return (i + 1) % 4 }
	m := &Machine{
		Name:    "count2",
		Inputs:  []string{"en"},
		Outputs: []string{"carry"},
		States:  []string{"S0", "S1", "S2", "S3"},
		Reset:   0,
	}
	for i := 0; i < 4; i++ {
		carry := i == 3
		m.Trans = append(m.Trans, []Transition{
			{Guard: g("1"), Next: next(i), Outputs: []bool{carry}},
			{Guard: g("0"), Next: i, Outputs: []bool{false}},
		})
	}
	return m
}

func TestValidateOK(t *testing.T) {
	if err := twoBitCounter().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateOverlappingGuards(t *testing.T) {
	m := twoBitCounter()
	m.Trans[0][1].Guard = logic.MustCube("-") // overlaps with "1"
	if err := m.Validate(); err == nil {
		t.Fatal("expected overlap error")
	}
}

func TestValidateIncompleteGuards(t *testing.T) {
	m := twoBitCounter()
	m.Trans[0] = m.Trans[0][:1] // only covers en=1
	if err := m.Validate(); err == nil {
		t.Fatal("expected exhaustiveness error")
	}
}

func TestValidateBadTarget(t *testing.T) {
	m := twoBitCounter()
	m.Trans[0][0].Next = 99
	if err := m.Validate(); err == nil {
		t.Fatal("expected target range error")
	}
}

func TestValidateBadOutputArity(t *testing.T) {
	m := twoBitCounter()
	m.Trans[0][0].Outputs = []bool{true, false}
	if err := m.Validate(); err == nil {
		t.Fatal("expected output arity error")
	}
}

func TestReferenceCounts(t *testing.T) {
	m := twoBitCounter()
	r := NewReference(m)
	carries := 0
	for i := 0; i < 8; i++ {
		out, err := r.Step([]bool{true})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] {
			carries++
		}
	}
	if carries != 2 {
		t.Fatalf("carries = %d, want 2 in 8 enabled cycles", carries)
	}
	if r.State() != 0 {
		t.Fatalf("state = %d, want wraparound to 0", r.State())
	}
}

func TestReferenceHoldsWhenDisabled(t *testing.T) {
	r := NewReference(twoBitCounter())
	r.Step([]bool{true})
	s := r.State()
	r.Step([]bool{false})
	if r.State() != s {
		t.Fatal("disabled counter should hold state")
	}
}

func TestStateCodesOneHot(t *testing.T) {
	codes, bits := StateCodes(5, OneHot)
	if bits != 5 {
		t.Fatalf("one-hot bits = %d, want 5", bits)
	}
	for i, code := range codes {
		ones := 0
		for b, v := range code {
			if v {
				ones++
				if b != i {
					t.Fatalf("state %d hot bit at %d", i, b)
				}
			}
		}
		if ones != 1 {
			t.Fatalf("state %d has %d hot bits", i, ones)
		}
	}
}

func TestStateCodesCompact(t *testing.T) {
	codes, bits := StateCodes(5, Compact)
	if bits != 3 {
		t.Fatalf("compact bits = %d, want 3", bits)
	}
	seen := map[string]bool{}
	for _, code := range codes {
		k := ""
		for _, v := range code {
			if v {
				k += "1"
			} else {
				k += "0"
			}
		}
		if seen[k] {
			t.Fatalf("duplicate code %s", k)
		}
		seen[k] = true
	}
}

func TestStateCodesGrayAdjacent(t *testing.T) {
	codes, _ := StateCodes(8, Gray)
	for i := 1; i < len(codes); i++ {
		diff := 0
		for b := range codes[i] {
			if codes[i][b] != codes[i-1][b] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("gray codes %d and %d differ in %d bits", i-1, i, diff)
		}
	}
}

func TestParseEncoding(t *testing.T) {
	for _, tc := range []struct {
		s    string
		want Encoding
	}{{"one-hot", OneHot}, {"onehot", OneHot}, {"compact", Compact}, {"binary", Compact}, {"gray", Gray}} {
		got, err := ParseEncoding(tc.s)
		if err != nil || got != tc.want {
			t.Errorf("ParseEncoding(%q) = %v, %v", tc.s, got, err)
		}
	}
	if _, err := ParseEncoding("johnson"); err == nil {
		t.Error("expected error for unknown encoding")
	}
}

// coSimulate drives the synthesized netlist and the reference interpreter
// with the same random input stream and requires identical outputs.
func coSimulate(t *testing.T, m *Machine, enc Encoding, cycles int, seed int64) {
	t.Helper()
	nl, info, err := Synthesize(m, enc)
	if err != nil {
		t.Fatalf("%v synth: %v", enc, err)
	}
	if info.StateBits <= 0 {
		t.Fatalf("%v: bad state bits %d", enc, info.StateBits)
	}
	sim, err := netlist.NewSimulator(nl)
	if err != nil {
		t.Fatalf("%v sim: %v", enc, err)
	}
	ref := NewReference(m)
	r := rand.New(rand.NewSource(seed))
	in := make([]bool, len(m.Inputs))
	for c := 0; c < cycles; c++ {
		for i := range in {
			in[i] = r.Intn(2) == 1
		}
		want, err := ref.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sim.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		for o := range want {
			if got[o] != want[o] {
				t.Fatalf("%v cycle %d: output %s = %v, reference %v (state %s)",
					enc, c, m.Outputs[o], got[o], want[o], ref.StateName())
			}
		}
	}
}

func TestSynthesizeCounterAllEncodings(t *testing.T) {
	for _, enc := range []Encoding{OneHot, Compact, Gray} {
		coSimulate(t, twoBitCounter(), enc, 300, 42)
	}
}

// randomMachine builds a random but valid machine: per state, guards are
// the minterms of the inputs, so disjoint and complete by construction.
func randomMachine(r *rand.Rand, states, inputs, outputs int) *Machine {
	m := &Machine{
		Name:   "rand",
		Reset:  0,
		Inputs: make([]string, inputs),
	}
	for i := range m.Inputs {
		m.Inputs[i] = string(rune('a' + i))
	}
	for o := 0; o < outputs; o++ {
		m.Outputs = append(m.Outputs, string(rune('x'+o)))
	}
	for s := 0; s < states; s++ {
		m.States = append(m.States, string(rune('A'+s)))
	}
	for s := 0; s < states; s++ {
		var ts []Transition
		for a := 0; a < 1<<uint(inputs); a++ {
			g := logic.NewCube(inputs)
			for b := 0; b < inputs; b++ {
				if a&(1<<uint(b)) != 0 {
					g = g.WithLit(b, logic.Pos)
				} else {
					g = g.WithLit(b, logic.Neg)
				}
			}
			outs := make([]bool, outputs)
			for o := range outs {
				outs[o] = r.Intn(2) == 1
			}
			ts = append(ts, Transition{Guard: g, Next: r.Intn(states), Outputs: outs})
		}
		m.Trans = append(m.Trans, ts)
	}
	return m
}

// Property: synthesized netlists match reference semantics for random
// machines under every encoding.
func TestSynthesizeRandomMachinesProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		states := 2 + r.Intn(6)
		inputs := 1 + r.Intn(3)
		outputs := 1 + r.Intn(3)
		m := randomMachine(r, states, inputs, outputs)
		for _, enc := range []Encoding{OneHot, Compact, Gray} {
			coSimulate(t, m, enc, 200, int64(trial))
		}
	}
}

func TestSynthesizeRejectsInvalid(t *testing.T) {
	m := twoBitCounter()
	m.Trans[0] = m.Trans[0][:1]
	if _, _, err := Synthesize(m, OneHot); err == nil {
		t.Fatal("Synthesize should reject invalid machines")
	}
}

func TestSynthInfoShape(t *testing.T) {
	m := twoBitCounter()
	_, info, err := Synthesize(m, Compact)
	if err != nil {
		t.Fatal(err)
	}
	if info.StateBits != 2 {
		t.Fatalf("compact state bits = %d, want 2", info.StateBits)
	}
	if len(info.NextCovers) != 2 || len(info.OutCovers) != 1 {
		t.Fatalf("covers = %d next, %d out", len(info.NextCovers), len(info.OutCovers))
	}
	_, info, err = Synthesize(m, OneHot)
	if err != nil {
		t.Fatal(err)
	}
	if info.StateBits != 4 {
		t.Fatalf("one-hot state bits = %d, want 4", info.StateBits)
	}
}

func TestMachineStepErrors(t *testing.T) {
	m := twoBitCounter()
	if _, _, err := m.Step(-1, []bool{true}); err == nil {
		t.Error("expected state range error")
	}
	if _, _, err := m.Step(0, []bool{true, false}); err == nil {
		t.Error("expected input arity error")
	}
}
