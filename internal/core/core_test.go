package core

import (
	"strings"
	"testing"

	"sparcs/internal/arbinsert"
	"sparcs/internal/arbiter"
	"sparcs/internal/fft"
	"sparcs/internal/fsm"
	"sparcs/internal/partition"
	"sparcs/internal/rc"
	"sparcs/internal/sim"
	"sparcs/internal/xc4000"
)

func compileFFT(t *testing.T, tiles int, opts Options) (*Design, *sim.Memory, [][]int64) {
	t.Helper()
	g := fft.Taskgraph()
	d, err := Compile(g, rc.Wildforce(), fft.Programs(tiles), opts)
	if err != nil {
		t.Fatal(err)
	}
	mem := sim.NewMemory()
	in := fft.LoadInput(mem, tiles, 42)
	return d, mem, in
}

func paperOpts() Options {
	return Options{Partition: partition.Options{FixedStages: fft.PaperStages()}}
}

// TestFFTCaseStudyStructure reproduces the paper's Section 5 result: three
// temporal partitions; partition #0 holds a 6-input and a 2-input arbiter,
// partition #1 a 4-input arbiter, partition #2 none.
func TestFFTCaseStudyStructure(t *testing.T) {
	d, _, _ := compileFFT(t, 2, paperOpts())
	if len(d.Stages) != 3 {
		t.Fatalf("stages = %d, want 3", len(d.Stages))
	}
	sizes := func(sp *StagePlan) []int {
		var out []int
		for _, a := range sp.Inserted.Arbiters {
			out = append(out, a.N())
		}
		return out
	}
	s0 := sizes(d.Stages[0])
	if len(s0) != 2 || !((s0[0] == 6 && s0[1] == 2) || (s0[0] == 2 && s0[1] == 6)) {
		t.Fatalf("stage 0 arbiters = %v, want {6, 2}", s0)
	}
	s1 := sizes(d.Stages[1])
	if len(s1) != 1 || s1[0] != 4 {
		t.Fatalf("stage 1 arbiters = %v, want {4}", s1)
	}
	if s2 := sizes(d.Stages[2]); len(s2) != 0 {
		t.Fatalf("stage 2 arbiters = %v, want none", s2)
	}
	// The 6-input arbiter guards the bank holding all four ML segments.
	var arb6 *partition.ArbiterSpec
	for i := range d.Stages[0].Inserted.Arbiters {
		if d.Stages[0].Inserted.Arbiters[i].N() == 6 {
			arb6 = &d.Stages[0].Inserted.Arbiters[i]
		}
	}
	bankIdx := -1
	for bi, bank := range d.Board.Banks {
		if bank.Name == arb6.Resource {
			bankIdx = bi
		}
	}
	segs := d.Stages[0].Stage.Banks[bankIdx]
	if len(segs) != 4 || !strings.HasPrefix(segs[0], "ML") {
		t.Fatalf("Arb6 bank holds %v, want the four ML segments", segs)
	}
}

// TestFFTCaseStudyExecution runs all three partitions and checks the
// hardware memory image against the fixed-point 2-D FFT reference.
func TestFFTCaseStudyExecution(t *testing.T) {
	tiles := 4
	opts := paperOpts()
	g := fft.Taskgraph()
	d, err := Compile(g, rc.Wildforce(), fft.Programs(tiles), opts)
	if err != nil {
		t.Fatal(err)
	}
	mem := sim.NewMemory()
	in := fft.LoadInput(mem, tiles, 7)
	res, err := Simulate(d, mem, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations()) != 0 {
		t.Fatalf("violations: %v", res.Violations())
	}
	if err := fft.CheckOutput(mem, in); err != nil {
		t.Fatal(err)
	}
	// Every stage's arbiter traces satisfy the fairness properties.
	for si, ss := range res.Stages {
		for resName, trace := range ss.Stats.ArbiterTraces {
			n := 0
			for _, a := range ss.Stage.Inserted.Arbiters {
				if a.Resource == resName {
					n = a.N()
				}
			}
			if err := arbiter.CheckMutualExclusion(trace); err != nil {
				t.Fatalf("stage %d %s: %v", si, resName, err)
			}
			if err := arbiter.CheckBoundedWait(n, trace); err != nil {
				t.Fatalf("stage %d %s: %v", si, resName, err)
			}
		}
	}
}

// TestFFTSpeedupShape: hardware (6 MHz, tiled) beats the Pentium-150
// software model by roughly the paper's margin (4.4 s vs 6.8 s -> ~1.5x).
func TestFFTSpeedupShape(t *testing.T) {
	tiles := 6
	opts := paperOpts()
	g := fft.Taskgraph()
	d, err := Compile(g, rc.Wildforce(), fft.Programs(tiles), opts)
	if err != nil {
		t.Fatal(err)
	}
	mem := sim.NewMemory()
	fft.LoadInput(mem, tiles, 3)
	res, err := Simulate(d, mem, opts)
	if err != nil {
		t.Fatal(err)
	}
	cyclesPerTile := float64(res.TotalCycles) / float64(tiles)
	hw := fft.HardwareSeconds(cyclesPerTile, 512)
	sw := fft.SoftwareSeconds(512)
	if hw >= sw {
		t.Fatalf("hardware (%.2f s) should beat software (%.2f s)", hw, sw)
	}
	speedup := sw / hw
	if speedup < 1.2 || speedup > 2.2 {
		t.Fatalf("speedup = %.2fx, want roughly the paper's 1.5x", speedup)
	}
}

// TestConservativeInsertionCostsMore: the dependency-aware mode (the
// paper's Section 5 improvement) needs fewer arbiter lines and finishes no
// later than the conservative mode.
func TestConservativeInsertionCostsMore(t *testing.T) {
	tiles := 3
	run := func(conservative bool) (int, int) {
		opts := paperOpts()
		opts.Insert = arbinsert.Options{Conservative: conservative}
		g := fft.Taskgraph()
		d, err := Compile(g, rc.Wildforce(), fft.Programs(tiles), opts)
		if err != nil {
			t.Fatal(err)
		}
		mem := sim.NewMemory()
		in := fft.LoadInput(mem, tiles, 5)
		res, err := Simulate(d, mem, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := fft.CheckOutput(mem, in); err != nil {
			t.Fatalf("conservative=%v: %v", conservative, err)
		}
		lines := 0
		for _, sp := range d.Stages {
			for _, a := range sp.Inserted.Arbiters {
				lines += a.N()
			}
		}
		return lines, res.TotalCycles
	}
	depLines, depCycles := run(false)
	conLines, conCycles := run(true)
	if depLines >= conLines {
		t.Fatalf("dep-aware lines %d should be fewer than conservative %d", depLines, conLines)
	}
	if depCycles > conCycles {
		t.Fatalf("dep-aware cycles %d should not exceed conservative %d", depCycles, conCycles)
	}
}

// TestAutomaticPartitioningAlsoWorks: without the paper's stage
// constraints, the greedy partitioner finds a denser (2-stage) but equally
// correct solution.
func TestAutomaticPartitioningAlsoWorks(t *testing.T) {
	tiles := 3
	opts := Options{}
	g := fft.Taskgraph()
	d, err := Compile(g, rc.Wildforce(), fft.Programs(tiles), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Stages) >= 4 {
		t.Fatalf("automatic partitioning produced %d stages", len(d.Stages))
	}
	mem := sim.NewMemory()
	in := fft.LoadInput(mem, tiles, 9)
	res, err := Simulate(d, mem, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations()) != 0 {
		t.Fatalf("violations: %v", res.Violations())
	}
	if err := fft.CheckOutput(mem, in); err != nil {
		t.Fatal(err)
	}
}

// TestGateLevelArbitersEndToEnd runs the whole case study with the
// synthesized gate-level arbiters doing the arbitration.
func TestGateLevelArbitersEndToEnd(t *testing.T) {
	tiles := 2
	opts := paperOpts()
	opts.NewPolicy = func(n int) arbiter.Policy {
		p, err := arbiter.NewNetlistPolicy(n, fsm.OneHot)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	g := fft.Taskgraph()
	d, err := Compile(g, rc.Wildforce(), fft.Programs(tiles), opts)
	if err != nil {
		t.Fatal(err)
	}
	mem := sim.NewMemory()
	in := fft.LoadInput(mem, tiles, 11)
	res, err := Simulate(d, mem, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations()) != 0 {
		t.Fatalf("violations: %v", res.Violations())
	}
	if err := fft.CheckOutput(mem, in); err != nil {
		t.Fatal(err)
	}
}

func TestReportMentionsArbiters(t *testing.T) {
	d, _, _ := compileFFT(t, 1, paperOpts())
	rep := d.Report()
	for _, want := range []string{"3 temporal partition", "Arb6", "Arb4", "no arbitration required"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestArbitersSummary(t *testing.T) {
	d, _, _ := compileFFT(t, 1, paperOpts())
	arbs := d.Arbiters()
	if len(arbs) != 3 {
		t.Fatalf("arbiters = %v, want 3 entries", arbs)
	}
}

// TestPortabilityAcrossBoards verifies the paper's conclusion claim: "FFT
// can be synthesized for different architectures using the same set of
// partitioning/synthesis tools" with no taskgraph changes. The same
// Figure 10 graph compiles and runs correctly on boards with different PE
// counts, bank sizes, and pin budgets; only the arbitration structure
// adapts.
func TestPortabilityAcrossBoards(t *testing.T) {
	tiles := 2
	boards := []*rc.Board{
		rc.Wildforce(),
		rc.Generic(6, xc4000.XC4013E, 32*1024, 36, 36),
		rc.Generic(3, xc4000.XC4013E, 64*1024, 48, 48),
	}
	for _, board := range boards {
		g := fft.Taskgraph()
		opts := Options{} // automatic partitioning: the flow adapts itself
		d, err := Compile(g, board, fft.Programs(tiles), opts)
		if err != nil {
			t.Fatalf("board %s: %v", board.Name, err)
		}
		mem := sim.NewMemory()
		in := fft.LoadInput(mem, tiles, 21)
		res, err := Simulate(d, mem, opts)
		if err != nil {
			t.Fatalf("board %s: %v", board.Name, err)
		}
		if len(res.Violations()) != 0 {
			t.Fatalf("board %s: violations %v", board.Name, res.Violations())
		}
		if err := fft.CheckOutput(mem, in); err != nil {
			t.Fatalf("board %s: %v", board.Name, err)
		}
	}
}

// TestSimulateSweepMatchesSequential fans the FFT design across the
// parallel sweep runner at several tile counts and requires each point
// to reproduce the sequential Simulate bit for bit (total cycles,
// violations, and verified memory output).
func TestSimulateSweepMatchesSequential(t *testing.T) {
	tileCounts := []int{1, 2, 3, 4}
	var points []SweepPoint
	var inputs [][][]int64
	for _, tiles := range tileCounts {
		opts := paperOpts()
		g := fft.Taskgraph()
		d, err := Compile(g, rc.Wildforce(), fft.Programs(tiles), opts)
		if err != nil {
			t.Fatal(err)
		}
		mem := sim.NewMemory()
		inputs = append(inputs, fft.LoadInput(mem, tiles, int64(tiles)))
		points = append(points, SweepPoint{Design: d, Memory: mem, Options: opts})
	}
	results, err := SimulateSweep(points)
	if err != nil {
		t.Fatal(err)
	}
	for i, tiles := range tileCounts {
		if len(results[i].Violations()) != 0 {
			t.Fatalf("tiles=%d: violations %v", tiles, results[i].Violations())
		}
		if err := fft.CheckOutput(points[i].Memory, inputs[i]); err != nil {
			t.Fatalf("tiles=%d: %v", tiles, err)
		}
		// Cross-check against a sequential rerun of the same point.
		opts := paperOpts()
		g := fft.Taskgraph()
		d, err := Compile(g, rc.Wildforce(), fft.Programs(tiles), opts)
		if err != nil {
			t.Fatal(err)
		}
		mem := sim.NewMemory()
		fft.LoadInput(mem, tiles, int64(tiles))
		seq, err := Simulate(d, mem, opts)
		if err != nil {
			t.Fatal(err)
		}
		if seq.TotalCycles != results[i].TotalCycles {
			t.Fatalf("tiles=%d: sweep %d cycles, sequential %d", tiles, results[i].TotalCycles, seq.TotalCycles)
		}
	}
}

// TestSimulateSweepEmpty: a zero-length sweep is a no-op.
func TestSimulateSweepEmpty(t *testing.T) {
	res, err := SimulateSweep(nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}
