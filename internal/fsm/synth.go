package fsm

import (
	"fmt"

	"sparcs/internal/logic"
	"sparcs/internal/netlist"
)

// SynthInfo reports what Synthesize produced, for area/timing models and
// for debugging encodings.
type SynthInfo struct {
	Encoding   Encoding
	StateBits  int
	Codes      [][]bool       // per-state code words
	NextCovers []*logic.Cover // per state bit, over [state bits ++ inputs]
	OutCovers  []*logic.Cover // per output, over [state bits ++ inputs]
}

// Options tunes Synthesize. The zero value requests full-effort
// minimization with multi-level extraction.
type Options struct {
	// Minimize reduces each next-state/output cover; nil means
	// logic.Minimize (full Quine-McCluskey effort). Weaker synthesis tools
	// are modeled by substituting logic.Simplify here.
	Minimize func(on, dc *logic.Cover) *logic.Cover
	// DisableExtract skips the shared-product extraction pass, leaving
	// pure two-level logic per cover (much larger networks).
	DisableExtract bool
	// FactorOr additionally merges single-variant cubes through shared OR
	// products before AND extraction (the stronger algebraic pass).
	FactorOr bool
}

// Synthesize lowers the machine to a gate-level netlist under the given
// state encoding with default options.
func Synthesize(m *Machine, enc Encoding) (*netlist.Netlist, *SynthInfo, error) {
	return SynthesizeOpts(m, enc, Options{})
}

// SynthesizeOpts lowers the machine to a gate-level netlist under the
// given state encoding.
//
// Cover variables are ordered state bits first, then inputs. One-hot
// next-state logic tests only the active state's own flip-flop (the
// standard FPGA idiom, and the reason one-hot machines are shallow);
// encoded machines test the full code word and receive the unused code
// space as don't-cares for minimization.
func SynthesizeOpts(m *Machine, enc Encoding, opt Options) (*netlist.Netlist, *SynthInfo, error) {
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	minimize := opt.Minimize
	if minimize == nil {
		minimize = logic.Minimize
	}
	codes, stateBits := StateCodes(m.NumStates(), enc)
	ni := len(m.Inputs)
	width := stateBits + ni

	// stateCube returns the cube activating state si over the combined
	// variable space.
	stateCube := func(si int) logic.Cube {
		c := logic.NewCube(width)
		if enc == OneHot {
			return c.WithLit(si, logic.Pos)
		}
		for b := 0; b < stateBits; b++ {
			if codes[si][b] {
				c = c.WithLit(b, logic.Pos)
			} else {
				c = c.WithLit(b, logic.Neg)
			}
		}
		return c
	}
	// liftGuard widens an input-space guard cube into the combined space.
	liftGuard := func(g logic.Cube) logic.Cube {
		c := logic.NewCube(width)
		for i := 0; i < ni; i++ {
			c = c.WithLit(stateBits+i, g.Lit(i))
		}
		return c
	}
	// combine ANDs a state cube and a lifted guard (disjoint supports).
	combine := func(sc, gc logic.Cube) logic.Cube {
		c := logic.NewCube(width)
		for v := 0; v < width; v++ {
			if sc.Lit(v) != logic.DontCare {
				c = c.WithLit(v, sc.Lit(v))
			} else if gc.Lit(v) != logic.DontCare {
				c = c.WithLit(v, gc.Lit(v))
			}
		}
		return c
	}

	nextCovers := make([]*logic.Cover, stateBits)
	for b := range nextCovers {
		nextCovers[b] = logic.NewCover(width)
	}
	outCovers := make([]*logic.Cover, len(m.Outputs))
	for o := range outCovers {
		outCovers[o] = logic.NewCover(width)
	}
	for si := range m.States {
		sc := stateCube(si)
		for _, tr := range m.Trans[si] {
			cube := combine(sc, liftGuard(tr.Guard))
			for b := 0; b < stateBits; b++ {
				if codes[tr.Next][b] {
					nextCovers[b].Add(cube)
				}
			}
			for o, asserted := range tr.Outputs {
				if asserted {
					outCovers[o].Add(cube)
				}
			}
		}
	}

	// Unused code words become don't-cares for encoded machines.
	var dc *logic.Cover
	if enc != OneHot && (1<<uint(stateBits)) > m.NumStates() {
		dc = logic.NewCover(width)
		used := map[uint]bool{}
		for _, code := range codes {
			v := uint(0)
			for b, bit := range code {
				if bit {
					v |= 1 << uint(b)
				}
			}
			used[v] = true
		}
		for v := uint(0); v < 1<<uint(stateBits); v++ {
			if used[v] {
				continue
			}
			c := logic.NewCube(width)
			for b := 0; b < stateBits; b++ {
				if v&(1<<uint(b)) != 0 {
					c = c.WithLit(b, logic.Pos)
				} else {
					c = c.WithLit(b, logic.Neg)
				}
			}
			dc.Add(c)
		}
	}

	for b := range nextCovers {
		nextCovers[b] = minimize(nextCovers[b], dc)
	}
	for o := range outCovers {
		outCovers[o] = minimize(outCovers[o], dc)
	}

	// Multi-level factoring: extract shared 2-literal products across all
	// covers jointly (next-state and outputs), as commercial tools do.
	// With extraction disabled, a threshold above any possible pair count
	// leaves the covers two-level.
	allCovers := make([]*logic.Cover, 0, stateBits+len(m.Outputs))
	allCovers = append(allCovers, nextCovers...)
	allCovers = append(allCovers, outCovers...)
	minOcc := 2
	if opt.DisableExtract {
		minOcc = 1 << 30
	}
	ex := logic.Factor(allCovers, logic.FactorOptions{
		PairMinOcc: minOcc,
		MergeOr:    opt.FactorOr && !opt.DisableExtract,
	})

	// Build the netlist: inputs, state register, factored covers with
	// structural hash-consing (identical trees share gates; in particular
	// the arbiter's next-state-Cj cover equals its Gj cover).
	n := netlist.New()
	inNets := make([]netlist.NetID, ni)
	for i, name := range m.Inputs {
		inNets[i] = n.AddInput(name)
	}
	coverIns := make([]netlist.NetID, width)
	// Next-state nets are not known until covers are built, but covers
	// read Q nets, which exist before D logic: allocate DFFs with
	// placeholder D nets, then wire.
	dNets := make([]netlist.NetID, stateBits)
	qNets := make([]netlist.NetID, stateBits)
	for b := 0; b < stateBits; b++ {
		dNets[b] = n.AddNet(fmt.Sprintf("d%d", b))
		qNets[b] = n.AddDFF(dNets[b], codes[m.Reset][b], fmt.Sprintf("s%d", b))
	}
	for b := 0; b < stateBits; b++ {
		coverIns[b] = qNets[b]
	}
	for i := 0; i < ni; i++ {
		coverIns[stateBits+i] = inNets[i]
	}

	h := netlist.NewHasher(n)
	prodNets := map[int]netlist.NetID{}
	var litNet func(l logic.Lit) netlist.NetID
	litNet = func(l logic.Lit) netlist.NetID {
		v := l.Var()
		var base netlist.NetID
		if v < width {
			base = coverIns[v]
		} else {
			base = prodNets[v]
		}
		if l.Neg() {
			return h.Not(base)
		}
		return base
	}
	for _, p := range ex.Products {
		kind := netlist.And
		if p.Or {
			kind = netlist.Or
		}
		prodNets[p.Var] = h.Gate(kind, litNet(p.A), litNet(p.B))
	}
	coverNet := func(idx int) netlist.NetID {
		cubes := ex.Covers[idx]
		if len(cubes) == 0 {
			return n.Const(false)
		}
		var terms []netlist.NetID
		for _, lits := range cubes {
			if len(lits) == 0 {
				return n.Const(true)
			}
			nets := make([]netlist.NetID, len(lits))
			for i, l := range lits {
				nets[i] = litNet(l)
			}
			terms = append(terms, h.Tree(netlist.And, nets))
		}
		return h.Tree(netlist.Or, terms)
	}
	for b := 0; b < stateBits; b++ {
		n.AddGateOut(netlist.Buf, dNets[b], coverNet(b))
	}
	for o, name := range m.Outputs {
		n.AddOutput(name, coverNet(stateBits+o))
	}

	info := &SynthInfo{
		Encoding:   enc,
		StateBits:  stateBits,
		Codes:      codes,
		NextCovers: nextCovers,
		OutCovers:  outCovers,
	}
	return n, info, nil
}
