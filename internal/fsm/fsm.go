// Package fsm models finite state machines symbolically and synthesizes
// them to gate-level netlists under selectable state encodings.
//
// The round-robin arbiter of internal/arbiter is expressed as a Machine
// whose transition table is the paper's Figure 5; internal/synth drives
// Synthesize with different encodings to reproduce the paper's Figure 6/7
// synthesis-tool comparison.
//
// Machines are Mealy: outputs are a function of the current state and the
// current inputs, asserted during the cycle in which the guard holds.
package fsm

import (
	"fmt"
	"math/bits"

	"sparcs/internal/logic"
)

// Encoding selects the state-assignment style used during synthesis.
type Encoding uint8

const (
	// OneHot uses one flip-flop per state; next-state logic tests a single
	// state bit, which is why FPGA tools favor it.
	OneHot Encoding = iota
	// Compact uses ceil(log2(S)) flip-flops with binary codes.
	Compact
	// Gray uses ceil(log2(S)) flip-flops with a binary-reflected Gray
	// sequence, reducing multi-bit toggles along the cyclic state order.
	Gray
)

func (e Encoding) String() string {
	switch e {
	case OneHot:
		return "one-hot"
	case Compact:
		return "compact"
	case Gray:
		return "gray"
	default:
		return fmt.Sprintf("Encoding(%d)", int(e))
	}
}

// ParseEncoding converts a command-line name to an Encoding.
func ParseEncoding(s string) (Encoding, error) {
	switch s {
	case "one-hot", "onehot":
		return OneHot, nil
	case "compact", "binary":
		return Compact, nil
	case "gray":
		return Gray, nil
	}
	return 0, fmt.Errorf("fsm: unknown encoding %q (want one-hot, compact, or gray)", s)
}

// Transition is one guarded edge out of a state. Guards are cubes over the
// machine's inputs. Within a state the guards must be pairwise disjoint and
// jointly exhaustive (Validate checks both), so priority order is
// irrelevant and synthesis may OR them freely.
type Transition struct {
	Guard   logic.Cube
	Next    int
	Outputs []bool // asserted outputs during this transition; len = len(Machine.Outputs)
}

// Machine is a symbolic Mealy FSM.
type Machine struct {
	Name    string
	Inputs  []string
	Outputs []string
	States  []string
	Reset   int
	Trans   [][]Transition // indexed by state
}

// NumStates returns the state count.
func (m *Machine) NumStates() int { return len(m.States) }

// Validate checks structural sanity plus guard disjointness and
// exhaustiveness for every state. Exhaustive checking enumerates all input
// assignments and therefore requires len(Inputs) <= 16.
func (m *Machine) Validate() error {
	if len(m.States) == 0 {
		return fmt.Errorf("fsm %s: no states", m.Name)
	}
	if m.Reset < 0 || m.Reset >= len(m.States) {
		return fmt.Errorf("fsm %s: reset state %d out of range", m.Name, m.Reset)
	}
	if len(m.Trans) != len(m.States) {
		return fmt.Errorf("fsm %s: %d transition lists for %d states", m.Name, len(m.Trans), len(m.States))
	}
	ni := len(m.Inputs)
	for si, ts := range m.Trans {
		if len(ts) == 0 {
			return fmt.Errorf("fsm %s: state %s has no transitions", m.Name, m.States[si])
		}
		for ti, tr := range ts {
			if tr.Guard.Width() != ni {
				return fmt.Errorf("fsm %s: state %s transition %d guard width %d != %d inputs",
					m.Name, m.States[si], ti, tr.Guard.Width(), ni)
			}
			if tr.Next < 0 || tr.Next >= len(m.States) {
				return fmt.Errorf("fsm %s: state %s transition %d target %d out of range",
					m.Name, m.States[si], ti, tr.Next)
			}
			if len(tr.Outputs) != len(m.Outputs) {
				return fmt.Errorf("fsm %s: state %s transition %d has %d outputs, want %d",
					m.Name, m.States[si], ti, len(tr.Outputs), len(m.Outputs))
			}
		}
		// Disjointness.
		for i := 0; i < len(ts); i++ {
			for j := i + 1; j < len(ts); j++ {
				if ts[i].Guard.Intersects(ts[j].Guard) {
					return fmt.Errorf("fsm %s: state %s guards %d and %d overlap (%s vs %s)",
						m.Name, m.States[si], i, j, ts[i].Guard, ts[j].Guard)
				}
			}
		}
		// Exhaustiveness.
		if ni > 16 {
			return fmt.Errorf("fsm %s: exhaustiveness check limited to 16 inputs, have %d", m.Name, ni)
		}
		in := make([]bool, ni)
		for a := 0; a < 1<<uint(ni); a++ {
			for b := 0; b < ni; b++ {
				in[b] = a&(1<<uint(b)) != 0
			}
			match := 0
			for _, tr := range ts {
				if tr.Guard.Eval(in) {
					match++
				}
			}
			if match != 1 {
				return fmt.Errorf("fsm %s: state %s input %v matches %d guards, want 1",
					m.Name, m.States[si], in, match)
			}
		}
	}
	return nil
}

// Step evaluates the machine's reference semantics from the given state:
// the unique matching transition determines the next state and outputs.
func (m *Machine) Step(state int, in []bool) (next int, out []bool, err error) {
	if state < 0 || state >= len(m.States) {
		//sparcs:ignore hotpath cold error path on an out-of-range state
		return 0, nil, fmt.Errorf("fsm %s: state %d out of range", m.Name, state)
	}
	if len(in) != len(m.Inputs) {
		//sparcs:ignore hotpath cold error path on a width mismatch
		return 0, nil, fmt.Errorf("fsm %s: got %d inputs, want %d", m.Name, len(in), len(m.Inputs))
	}
	for _, tr := range m.Trans[state] {
		if tr.Guard.Eval(in) {
			return tr.Next, tr.Outputs, nil
		}
	}
	//sparcs:ignore hotpath cold error path; Validate guarantees a unique match
	return 0, nil, fmt.Errorf("fsm %s: no transition matches in state %s (run Validate)", m.Name, m.States[state])
}

// Reference is a stateful interpreter over a Machine, used as the golden
// model when co-simulating synthesized netlists.
type Reference struct {
	m     *Machine
	state int
}

// NewReference returns an interpreter positioned at the reset state.
func NewReference(m *Machine) *Reference {
	return &Reference{m: m, state: m.Reset}
}

// State returns the current symbolic state index.
func (r *Reference) State() int { return r.state }

// StateName returns the current symbolic state name.
func (r *Reference) StateName() string { return r.m.States[r.state] }

// Reset returns the interpreter to the reset state.
func (r *Reference) Reset() { r.state = r.m.Reset }

// Step consumes one input vector, returns the Mealy outputs, and advances
// the state.
func (r *Reference) Step(in []bool) ([]bool, error) {
	next, out, err := r.m.Step(r.state, in)
	if err != nil {
		return nil, err
	}
	r.state = next
	return out, nil
}

// StateCodes returns the per-state code words for an encoding, each of
// width StateBits.
func StateCodes(numStates int, enc Encoding) ([][]bool, int) {
	switch enc {
	case OneHot:
		codes := make([][]bool, numStates)
		for i := range codes {
			codes[i] = make([]bool, numStates)
			codes[i][i] = true
		}
		return codes, numStates
	case Gray:
		b := clog2(numStates)
		codes := make([][]bool, numStates)
		for i := range codes {
			g := uint(i) ^ (uint(i) >> 1)
			codes[i] = codeBits(g, b)
		}
		return codes, b
	default: // Compact
		b := clog2(numStates)
		codes := make([][]bool, numStates)
		for i := range codes {
			codes[i] = codeBits(uint(i), b)
		}
		return codes, b
	}
}

func clog2(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

func codeBits(v uint, width int) []bool {
	out := make([]bool, width)
	for i := 0; i < width; i++ {
		out[i] = v&(1<<uint(i)) != 0
	}
	return out
}
