// Command sparcsd is arbitration-as-a-service: a long-running HTTP/JSON
// server over the sparcs compile-once/experiment-many API
// (internal/service). Repeat designs hit a content-addressed System
// cache and skip compilation; concurrent experiments are admitted
// through a weighted-round-robin arbiter over per-class bounded queues.
//
// Modes:
//
//	sparcsd                         serve (default) on -addr
//	sparcsd -mode once ...          run one experiment offline, print the
//	                                canonical body a server would serve
//	sparcsd -mode loadtest -url U   drive a running server, report
//	                                throughput/latency/cache/rejections
//
// Serving handles SIGINT/SIGTERM gracefully: new experiments get 503
// while queued and in-flight ones finish (bounded by -drain-timeout),
// then the listener shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sparcs/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sparcsd: ")

	mode := flag.String("mode", "serve", "serve, once, or loadtest")
	addr := flag.String("addr", ":8077", "serve: listen address")
	workers := flag.Int("workers", 0, "serve: max concurrent experiments (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "serve: per-class admission queue bound (0 = 64)")
	classes := flag.String("classes", "", "serve: admission classes as name=weight,... (default interactive=4,batch=1)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "serve: max wait for in-flight experiments on shutdown")
	cacheCLBs := flag.Int("cache-clbs", 0, "serve: compiled-System cache budget in CLB footprint, LRU-evicted (0 = unbounded)")

	design := flag.String("design", "fft", "once/loadtest: design name")
	tiles := flag.Int("tiles", 2, "once/loadtest: fft tile count")
	policy := flag.String("policy", "", "once: arbitration policy spec (empty = round-robin)")
	contention := flag.String("contention", "", "once: background contention spec")
	seed := flag.Uint64("seed", 0, "once: contention seed")
	maxCycles := flag.Int("max-cycles", 0, "once: per-stage cycle bound")

	url := flag.String("url", "http://127.0.0.1:8077", "loadtest: server base URL")
	n := flag.Int("n", 2000, "loadtest: total requests")
	c := flag.Int("c", 128, "loadtest: concurrent clients")
	class := flag.String("class", "", "once/loadtest: admission class")
	flag.Parse()

	var err error
	switch *mode {
	case "serve":
		err = runServe(*addr, *workers, *queueDepth, *classes, *drainTimeout, *cacheCLBs)
	case "once":
		err = runOnce(service.ExperimentRequest{
			Design: *design,
			Tiles:  *tiles,
			Class:  *class,
			Run: service.RunSpec{
				Policy:     *policy,
				Contention: *contention,
				Seed:       *seed,
				MaxCycles:  *maxCycles,
			},
		})
	case "loadtest":
		err = runLoadtest(service.LoadTestOptions{
			URL:         *url,
			Requests:    *n,
			Concurrency: *c,
			Design:      *design,
			Tiles:       *tiles,
			Class:       *class,
		})
	default:
		err = fmt.Errorf("unknown mode %q (serve, once, loadtest)", *mode)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// parseClasses parses "interactive=4,batch=1" into admission classes;
// empty input returns nil for the service defaults.
func parseClasses(s string) ([]service.Class, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []service.Class
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		name, weight, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("class entry %q is not name=weight", entry)
		}
		w, err := strconv.Atoi(weight)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("class %s: weight %q must be a positive integer", name, weight)
		}
		out = append(out, service.Class{Name: name, Weight: w})
	}
	return out, nil
}

func runServe(addr string, workers, queueDepth int, classSpec string, drainTimeout time.Duration, cacheCLBs int) error {
	cls, err := parseClasses(classSpec)
	if err != nil {
		return err
	}
	s, err := service.New(service.Config{Workers: workers, QueueDepth: queueDepth, Classes: cls, CacheBudgetCLBs: cacheCLBs})
	if err != nil {
		return err
	}
	srv := &http.Server{Addr: addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	log.Printf("serving on %s", addr)

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal behavior: a second signal kills hard

	log.Printf("draining (timeout %v)", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		return err
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("shut down cleanly")
	return nil
}

func runOnce(req service.ExperimentRequest) error {
	body, hash, err := service.OfflineResult(req)
	if err != nil {
		return err
	}
	log.Printf("design hash %s", hash) // stderr: stdout stays diffable
	_, err = os.Stdout.Write(body)
	return err
}

func runLoadtest(opt service.LoadTestOptions) error {
	rep, err := service.LoadTest(opt)
	if err != nil {
		return err
	}
	fmt.Print(rep)
	return nil
}
