// Package service is arbitration-as-a-service: a long-running HTTP/JSON
// server over the sparcs compile-once/experiment-many API. Designs are
// compiled at most once per content hash (sparcs.DesignHash) into a
// shared System cache; experiments fan out concurrently through
// System.Run/System.Sweep; and admission control is itself an arbiter —
// the repo's weighted-round-robin kernel steps over per-class bounded
// queues, so the same policy machinery the paper puts in front of
// memory banks sits in front of the server's compute.
//
// Endpoints:
//
//	POST /v1/experiments  one experiment        -> canonical ResultJSON
//	POST /v1/sweeps       experiment fan-out    -> SweepResponse
//	GET  /v1/stats        live counters         -> Stats
//	GET  /healthz         liveness              -> "ok"
//
// Experiment responses are byte-identical to EncodeResult applied to an
// offline System.Run with the same options: cache and hash metadata
// travel in X-Sparcsd-* headers, never in the body, so the body can be
// diffed directly against an offline run (cmd/sparcsd -mode once).
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"sparcs"
	"sparcs/internal/fft"
	"sparcs/internal/rc"
	"sparcs/internal/taskgraph"
)

// Config parameterizes New. The zero value serves: GOMAXPROCS execution
// slots, 64-deep queues, and the default interactive(4)/batch(1)
// classes.
type Config struct {
	// Workers bounds concurrently executing experiments (compile + run);
	// <= 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds each class's admission queue; <= 0 means 64.
	QueueDepth int
	// Classes are the admission classes; nil means
	// {interactive: weight 4, batch: weight 1}. The first class is the
	// default for requests that name none.
	Classes []Class
	// CacheBudgetCLBs bounds the compiled-System cache by total CLB
	// footprint (LRU eviction; a later request for an evicted design
	// recompiles once). <= 0 means unbounded — the historical behavior.
	CacheBudgetCLBs int
}

// Server is one service instance. Create with New, mount Handler, and
// Drain before shutdown.
type Server struct {
	cfg    Config
	cache  *systemCache
	adm    *admission
	slo    *sloTracker
	mux    *http.ServeMux
	served atomic.Int64
}

// New validates the config and returns a ready Server.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Classes == nil {
		cfg.Classes = []Class{{Name: "interactive", Weight: 4}, {Name: "batch", Weight: 1}}
	}
	adm, err := newAdmission(cfg.Classes, cfg.Workers, cfg.QueueDepth)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, cache: newSystemCache(cfg.CacheBudgetCLBs), adm: adm, slo: newSLOTracker(cfg.Classes)}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/experiments", s.handleExperiment)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s, nil
}

// Handler returns the HTTP handler serving the endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops admitting new experiments (they get 503) and blocks until
// every queued and in-flight experiment completes or ctx expires —
// call before http.Server.Shutdown for a graceful SIGTERM.
func (s *Server) Drain(ctx context.Context) error { return s.adm.drain(ctx) }

// BuildSpec is the declarative subset of BuildOptions a request may
// set. An empty ExpectedContention means "unset" on the wire (the
// in-process API's explicit empty-string opt-out is not reachable
// remotely; it is also the default).
type BuildSpec struct {
	AccessesPerGrant   int    `json:"accessesPerGrant,omitempty"`
	Conservative       bool   `json:"conservative,omitempty"`
	ExpectedContention string `json:"expectedContention,omitempty"`
}

// RunSpec is one experiment's per-run options — the WithPolicy /
// WithContention / WithSeed / WithMaxCycles surface of System.Run.
type RunSpec struct {
	Policy     string `json:"policy,omitempty"`
	Contention string `json:"contention,omitempty"`
	Seed       uint64 `json:"seed,omitempty"`
	MaxCycles  int    `json:"maxCycles,omitempty"`
}

// ExperimentRequest is the POST /v1/experiments body.
type ExperimentRequest struct {
	// Design names a registered design; currently "fft" (the Section 5
	// case study).
	Design string `json:"design"`
	// Tiles parameterizes the fft design; <= 0 means 6.
	Tiles int       `json:"tiles,omitempty"`
	Build BuildSpec `json:"build,omitempty"`
	Run   RunSpec   `json:"run,omitempty"`
	// Class picks the admission class; empty means the first configured
	// class.
	Class string `json:"class,omitempty"`
}

// SweepRequest is the POST /v1/sweeps body: one design, many
// experiments, fanned through System.Sweep under ONE admission slot
// (the sweep parallelizes internally over GOMAXPROCS).
type SweepRequest struct {
	Design      string    `json:"design"`
	Tiles       int       `json:"tiles,omitempty"`
	Build       BuildSpec `json:"build,omitempty"`
	Experiments []RunSpec `json:"experiments"`
	Class       string    `json:"class,omitempty"`
}

// SweepResponse carries every completed experiment's canonical
// encoding in input order (null for failed slots) plus the typed
// partial-failure report, mirroring System.Sweep's contract.
type SweepResponse struct {
	Results []json.RawMessage `json:"results"`
	Error   *SweepErrorJSON   `json:"error,omitempty"`
}

// SweepErrorJSON is the wire form of *sparcs.SweepError.
type SweepErrorJSON struct {
	Index   int    `json:"index"`
	Message string `json:"message"`
}

// Stats is the GET /v1/stats body.
type Stats struct {
	Served            int64               `json:"served"`
	CacheHits         int64               `json:"cacheHits"`
	CacheMisses       int64               `json:"cacheMisses"`
	Compiles          int64               `json:"compiles"`
	CacheEvictions    int64               `json:"cacheEvictions"`
	CacheResidentCLBs int                 `json:"cacheResidentCLBs"`
	CacheEntries      int                 `json:"cacheEntries"`
	RejectedFull      int64               `json:"rejectedFull"`
	RejectedDraining  int64               `json:"rejectedDraining"`
	Inflight          int                 `json:"inflight"`
	Queued            map[string]int      `json:"queued"`
	Draining          bool                `json:"draining"`
	Classes           map[string]ClassSLO `json:"classes"`
}

// ErrorJSON is the body of every non-2xx response.
type ErrorJSON struct {
	Kind  string `json:"kind"`
	Error string `json:"error"`
	Class string `json:"class,omitempty"`
}

// UnknownDesignError rejects requests naming an unregistered design.
type UnknownDesignError struct {
	Design string
}

func (e *UnknownDesignError) Error() string {
	return fmt.Sprintf("service: unknown design %q (registered: fft)", e.Design)
}

// designInputs resolves a request's design reference to the Build
// inputs. Every call returns fresh values; equality across calls is
// exactly what DesignHash certifies.
func designInputs(design string, tiles int, b BuildSpec) (*taskgraph.Graph, *rc.Board, map[string]sparcs.Program, []sparcs.BuildOption, error) {
	switch design {
	case "fft":
		if tiles <= 0 {
			tiles = 6
		}
		opts := []sparcs.BuildOption{sparcs.WithStages(fft.PaperStages())}
		if b.AccessesPerGrant > 0 {
			opts = append(opts, sparcs.WithAccessesPerGrant(b.AccessesPerGrant))
		}
		if b.Conservative {
			opts = append(opts, sparcs.WithConservativeArbitration())
		}
		if b.ExpectedContention != "" {
			opts = append(opts, sparcs.WithExpectedContention(b.ExpectedContention))
		}
		return fft.Taskgraph(), rc.Wildforce(), fft.Programs(tiles), opts, nil
	default:
		return nil, nil, nil, nil, &UnknownDesignError{Design: design}
	}
}

// runOptions converts a RunSpec to System.Run options. Option parsing
// errors surface from Run itself.
func runOptions(r RunSpec) []sparcs.RunOption {
	var opts []sparcs.RunOption
	if r.Policy != "" {
		opts = append(opts, sparcs.WithPolicy(r.Policy))
	}
	if r.Contention != "" {
		opts = append(opts, sparcs.WithContention(r.Contention))
	}
	if r.Seed != 0 {
		opts = append(opts, sparcs.WithSeed(r.Seed))
	}
	if r.MaxCycles != 0 {
		opts = append(opts, sparcs.WithMaxCycles(r.MaxCycles))
	}
	return opts
}

// system resolves the design, hashes it, and returns the cached
// compiled System — compiling at most once per hash across every
// concurrent request.
func (s *Server) system(design string, tiles int, b BuildSpec) (sys *sparcs.System, hash string, hit bool, err error) {
	g, board, programs, bopts, err := designInputs(design, tiles, b)
	if err != nil {
		return nil, "", false, err
	}
	hash, err = sparcs.DesignHash(g, board, programs, bopts...)
	if err != nil {
		return nil, "", false, err
	}
	sys, hit, err = s.cache.get(hash, func() (*sparcs.System, error) {
		return sparcs.Build(g, board, programs, bopts...)
	})
	return sys, hash, hit, err
}

// OfflineResult runs one experiment request in-process with no server,
// cache, or admission in the path — fresh Build, one Run — and returns
// the canonical response body plus the design hash. A server's
// /v1/experiments response for the same request is byte-identical to
// the body (the differential tests and the CI smoke diff the two),
// which is the service's correctness contract: serving adds routing and
// caching, never different results.
func OfflineResult(req ExperimentRequest) (body []byte, hash string, err error) {
	g, board, programs, bopts, err := designInputs(req.Design, req.Tiles, req.Build)
	if err != nil {
		return nil, "", err
	}
	hash, err = sparcs.DesignHash(g, board, programs, bopts...)
	if err != nil {
		return nil, "", err
	}
	sys, err := sparcs.Build(g, board, programs, bopts...)
	if err != nil {
		return nil, "", err
	}
	res, err := sys.Run(runOptions(req.Run)...)
	if err != nil {
		return nil, "", err
	}
	body, err = EncodeResult(res)
	if err != nil {
		return nil, "", err
	}
	return body, hash, nil
}

func (s *Server) class(name string) string {
	if name == "" {
		return s.cfg.Classes[0].Name
	}
	return name
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	var req ExperimentRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", err)
		return
	}
	class := s.class(req.Class)
	t0 := time.Now()
	if err := s.adm.acquire(r.Context(), class); err != nil {
		s.writeAdmissionError(w, err)
		return
	}
	waitMs := int(time.Since(t0).Milliseconds())
	start := time.Now()
	defer s.adm.release()
	defer func() {
		s.slo.observe(class, waitMs, int(time.Since(start).Milliseconds()))
	}()
	sys, hash, hit, err := s.system(req.Design, req.Tiles, req.Build)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad-design", err)
		return
	}
	res, err := sys.Run(runOptions(req.Run)...)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "bad-experiment", err)
		return
	}
	body, err := EncodeResult(res)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encode", err)
		return
	}
	s.served.Add(1)
	writeResult(w, hash, hit, body)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", err)
		return
	}
	if len(req.Experiments) == 0 {
		writeError(w, http.StatusBadRequest, "bad-request", errors.New("service: sweep needs at least one experiment"))
		return
	}
	class := s.class(req.Class)
	t0 := time.Now()
	if err := s.adm.acquire(r.Context(), class); err != nil {
		s.writeAdmissionError(w, err)
		return
	}
	waitMs := int(time.Since(t0).Milliseconds())
	start := time.Now()
	defer s.adm.release()
	defer func() {
		s.slo.observe(class, waitMs, int(time.Since(start).Milliseconds()))
	}()
	sys, hash, hit, err := s.system(req.Design, req.Tiles, req.Build)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad-design", err)
		return
	}
	experiments := make([][]sparcs.RunOption, len(req.Experiments))
	for i, rs := range req.Experiments {
		experiments[i] = runOptions(rs)
	}
	results, err := sys.Sweep(experiments...)
	resp := SweepResponse{Results: make([]json.RawMessage, len(results))}
	for i, res := range results {
		if res == nil {
			resp.Results[i] = json.RawMessage("null")
			continue
		}
		body, encErr := EncodeResult(res)
		if encErr != nil {
			writeError(w, http.StatusInternalServerError, "encode", encErr)
			return
		}
		resp.Results[i] = json.RawMessage(body[:len(body)-1]) // body is newline-terminated
	}
	if err != nil {
		var sw *sparcs.SweepError
		if !errors.As(err, &sw) {
			writeError(w, http.StatusUnprocessableEntity, "bad-experiment", err)
			return
		}
		resp.Error = &SweepErrorJSON{Index: sw.Index, Message: sw.Error()}
	}
	s.served.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Sparcsd-Design-Hash", hash)
	w.Header().Set("X-Sparcsd-Cache", cacheHeader(hit))
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		return // headers already sent; nothing more to do
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	inflight, queued, draining := s.adm.snapshot()
	residentCLBs, entries := s.cache.snapshot()
	st := Stats{
		Served:            s.served.Load(),
		CacheHits:         s.cache.hits.Load(),
		CacheMisses:       s.cache.misses.Load(),
		Compiles:          s.cache.compiles.Load(),
		CacheEvictions:    s.cache.evictions.Load(),
		CacheResidentCLBs: residentCLBs,
		CacheEntries:      entries,
		RejectedFull:      s.adm.rejectedFull.Load(),
		RejectedDraining:  s.adm.rejectedDraining.Load(),
		Inflight:          inflight,
		Queued:            queued,
		Draining:          draining,
		Classes:           s.slo.snapshot(),
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(st); err != nil {
		return
	}
}

// writeAdmissionError maps the admission controller's typed failures to
// status codes: bounded-queue backpressure is 429, draining is 503, an
// unknown class is the client's fault (400), and a gone client gets the
// nominal 503 nobody will read.
func (s *Server) writeAdmissionError(w http.ResponseWriter, err error) {
	var full *QueueFullError
	var unknown *UnknownClassError
	switch {
	case errors.As(err, &full):
		writeErrorJSON(w, http.StatusTooManyRequests, ErrorJSON{Kind: "queue-full", Error: err.Error(), Class: full.Class})
	case errors.Is(err, ErrDraining):
		writeErrorJSON(w, http.StatusServiceUnavailable, ErrorJSON{Kind: "draining", Error: err.Error()})
	case errors.As(err, &unknown):
		writeErrorJSON(w, http.StatusBadRequest, ErrorJSON{Kind: "unknown-class", Error: err.Error(), Class: unknown.Class})
	default:
		writeErrorJSON(w, http.StatusServiceUnavailable, ErrorJSON{Kind: "cancelled", Error: err.Error()})
	}
}

func writeError(w http.ResponseWriter, status int, kind string, err error) {
	writeErrorJSON(w, status, ErrorJSON{Kind: kind, Error: err.Error()})
}

func writeErrorJSON(w http.ResponseWriter, status int, body ErrorJSON) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(body); err != nil {
		return
	}
}

func writeResult(w http.ResponseWriter, hash string, hit bool, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Sparcsd-Design-Hash", hash)
	w.Header().Set("X-Sparcsd-Cache", cacheHeader(hit))
	if _, err := w.Write(body); err != nil {
		return
	}
}

func cacheHeader(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}
