// Package rc models reconfigurable-computer board architectures: FPGA
// processing elements, memory banks, fixed inter-PE links, and a
// programmable crossbar (paper Sections 1 and 5). The partitioning and
// arbitration tools consume only this abstract description, which is
// exactly the architecture-independence the paper argues for.
package rc

import (
	"fmt"

	"sparcs/internal/xc4000"
)

// PE is one FPGA processing element.
type PE struct {
	Name   string
	Device xc4000.Device
}

// Bank is one physical memory bank, attached to a PE's local bus.
type Bank struct {
	Name      string
	PE        int // index of the PE the bank is local to
	SizeBytes int
	WidthBits int
}

// Link is a fixed set of pins between two neighboring PEs.
type Link struct {
	A, B int
	Pins int
}

// Board is a complete reconfigurable computer description.
type Board struct {
	Name  string
	PEs   []PE
	Banks []Bank
	Links []Link
	// XbarPins is the per-PE pin budget into the programmable crossbar
	// (0 means the board has no crossbar).
	XbarPins int
}

// Wildforce returns the Annapolis MicroSystems Wildforce board used in the
// paper's Section 5 case study: four XC4013E PEs, a 32-KByte local memory
// per PE, 36 fixed pins between neighbors, and a 36-pin-per-PE
// programmable crossbar.
func Wildforce() *Board {
	b := &Board{Name: "wildforce", XbarPins: 36}
	for i := 0; i < 4; i++ {
		b.PEs = append(b.PEs, PE{Name: fmt.Sprintf("PE%d", i+1), Device: xc4000.XC4013E})
		b.Banks = append(b.Banks, Bank{
			Name:      fmt.Sprintf("M%d", i+1),
			PE:        i,
			SizeBytes: 32 * 1024,
			WidthBits: 32,
		})
	}
	for i := 0; i < 3; i++ {
		b.Links = append(b.Links, Link{A: i, B: i + 1, Pins: 36})
	}
	return b
}

// Generic returns a configurable board for portability experiments:
// n PEs of the given device, one local bank each, neighbor links, and a
// crossbar.
func Generic(n int, device xc4000.Device, bankBytes, linkPins, xbarPins int) *Board {
	b := &Board{Name: fmt.Sprintf("generic-%d", n), XbarPins: xbarPins}
	for i := 0; i < n; i++ {
		b.PEs = append(b.PEs, PE{Name: fmt.Sprintf("PE%d", i+1), Device: device})
		b.Banks = append(b.Banks, Bank{
			Name:      fmt.Sprintf("M%d", i+1),
			PE:        i,
			SizeBytes: bankBytes,
			WidthBits: 32,
		})
	}
	for i := 0; i < n-1; i++ {
		b.Links = append(b.Links, Link{A: i, B: i + 1, Pins: linkPins})
	}
	return b
}

// Validate checks structural sanity.
func (b *Board) Validate() error {
	if len(b.PEs) == 0 {
		return fmt.Errorf("rc %s: no processing elements", b.Name)
	}
	for _, bank := range b.Banks {
		if bank.PE < 0 || bank.PE >= len(b.PEs) {
			return fmt.Errorf("rc %s: bank %s attached to invalid PE %d", b.Name, bank.Name, bank.PE)
		}
		if bank.SizeBytes <= 0 {
			return fmt.Errorf("rc %s: bank %s has non-positive size", b.Name, bank.Name)
		}
	}
	for _, l := range b.Links {
		if l.A < 0 || l.A >= len(b.PEs) || l.B < 0 || l.B >= len(b.PEs) || l.A == l.B {
			return fmt.Errorf("rc %s: invalid link %d-%d", b.Name, l.A, l.B)
		}
		if l.Pins <= 0 {
			return fmt.Errorf("rc %s: link %d-%d has no pins", b.Name, l.A, l.B)
		}
	}
	return nil
}

// LinkBetween returns the direct link between two PEs, if any.
func (b *Board) LinkBetween(a, c int) (Link, bool) {
	for _, l := range b.Links {
		if (l.A == a && l.B == c) || (l.A == c && l.B == a) {
			return l, true
		}
	}
	return Link{}, false
}

// BanksOnPE returns indices into Banks for banks local to the PE.
func (b *Board) BanksOnPE(pe int) []int {
	var out []int
	for i, bank := range b.Banks {
		if bank.PE == pe {
			out = append(out, i)
		}
	}
	return out
}

// FabricDims flattens the board's PEs into one rectangular CLB fabric
// for dynamic-reconfiguration scenarios: devices sit side by side
// column-wise (cols sums the square array edges), and rows is the
// shortest device edge, so every column offers at least rows CLBs. The
// Wildforce reads as a 96x24 strip.
func (b *Board) FabricDims() (cols, rows int) {
	for _, pe := range b.PEs {
		d := pe.Device.Dim()
		cols += d
		if rows == 0 || d < rows {
			rows = d
		}
	}
	return cols, rows
}

// TotalCLBs sums PE logic capacity.
func (b *Board) TotalCLBs() int {
	sum := 0
	for _, pe := range b.PEs {
		sum += pe.Device.CLBs
	}
	return sum
}

// TotalBankBytes sums memory capacity.
func (b *Board) TotalBankBytes() int {
	sum := 0
	for _, bank := range b.Banks {
		sum += bank.SizeBytes
	}
	return sum
}
