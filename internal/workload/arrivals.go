package workload

import (
	"fmt"
	"strconv"
	"strings"

	"sparcs/internal/arbiter"
)

// Arrivals adapts a one-line closed-loop generator into an arrival
// process for online scenarios: each Tick polls the generator (every
// stride cycles) and reports a rising edge of its request line — the
// instant a new job spawns. The spec grammar is the generator grammar
// plus an optional sampling stride: "shape[:param][/stride]", e.g.
// "bernoulli:0.02", "bursty/64", "markov:0.4/128". Stride thins the
// process without changing the shape's internal dynamics: a bursty
// source sampled every 64 cycles still clusters its arrivals.
//
// Arrivals are open-loop with respect to the consumer: the generator's
// grant feedback is wired to its own previous request, so the request
// line toggles at the shape's natural job cadence regardless of how the
// scenario disposes of each arrival.
type Arrivals struct {
	bits   BitGenerator
	gen    Generator
	name   string
	stride int
	phase  int
	prev   arbiter.BitVec
}

// NewArrivals parses the "shape[:param][/stride]" spec and builds the
// underlying one-line generator with the given seed.
func NewArrivals(spec string, seed uint64) (*Arrivals, error) {
	shape, stride := spec, 1
	if i := strings.LastIndexByte(spec, '/'); i >= 0 {
		v, err := strconv.Atoi(spec[i+1:])
		if err != nil || v < 1 {
			return nil, fmt.Errorf("workload: arrival stride %q must be a positive integer", spec[i+1:])
		}
		shape, stride = spec[:i], v
	}
	g, err := NewGenerator(shape, 1, seed)
	if err != nil {
		return nil, err
	}
	bg, ok := g.(BitGenerator)
	if !ok {
		return nil, fmt.Errorf("workload: generator %s lacks the word-level path required for arrivals", g.Name())
	}
	name := g.Name()
	if stride > 1 {
		name = fmt.Sprintf("%s/%d", name, stride)
	}
	return &Arrivals{bits: bg, gen: g, name: name, stride: stride}, nil
}

// Name identifies the process with its parameters ("bursty/64").
func (a *Arrivals) Name() string { return a.name }

// Tick advances one scenario cycle and reports whether a job arrives on
// this cycle. Allocation-free.
//
//sparcs:hotpath
func (a *Arrivals) Tick() bool {
	a.phase++
	if a.phase < a.stride {
		return false
	}
	a.phase = 0
	req := a.bits.NextBits(a.prev) & 1
	rising := req == 1 && a.prev == 0
	a.prev = req
	return rising
}

// Reset returns the process to its initial state, including the random
// stream.
func (a *Arrivals) Reset() {
	a.gen.Reset()
	a.phase = 0
	a.prev = 0
}
