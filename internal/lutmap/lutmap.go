// Package lutmap performs K-input LUT technology mapping (K=4 for the
// Xilinx XC4000E function generators) over gate-level netlists.
//
// The mapper decomposes gates into a 2-input network, enumerates priority
// cuts per node (depth-oriented, FlowMap-style objective), and selects a
// LUT cover for every root (flip-flop D input, primary output, tristate
// data/enable). Each selected LUT carries its truth table so mapped
// networks can be re-simulated and checked against the original gates.
package lutmap

import (
	"fmt"
	"sort"

	"sparcs/internal/netlist"
)

// MaxK is the largest supported LUT input count (truth tables are uint16).
const MaxK = 4

// LUT is one mapped lookup table. Truth bit i gives the output for the
// input assignment where Inputs[j] = bit j of i.
type LUT struct {
	Inputs []netlist.NetID
	Out    netlist.NetID
	Truth  uint16
	Level  int
}

// Mapping is the result of technology mapping.
type Mapping struct {
	LUTs  []LUT
	Depth int // LUT levels on the longest source-to-root path
	K     int

	// Aliases maps root nets that required no LUT (pass-through buffers,
	// constants, direct input connections) to the net carrying their value.
	Aliases map[netlist.NetID]netlist.NetID

	// NumFFs and NumTBufs pass through from the netlist; they occupy CLB
	// flip-flops and tristate resources rather than function generators.
	NumFFs   int
	NumTBufs int
}

// nodeOp is the internal 2-input network operator set.
type nodeOp uint8

const (
	opLeaf nodeOp = iota
	opAnd
	opOr
	opXor
	opNot
)

type node struct {
	op   nodeOp
	fan  [2]int // node indices; fan[1] unused for opNot
	nfan int
	net  netlist.NetID // original net this node drives, or Invalid
}

// Mode selects the mapping objective.
type Mode uint8

const (
	// DepthMode minimizes LUT levels, duplicating shared logic into cones
	// when that shortens paths (the classic FlowMap objective).
	DepthMode Mode = iota
	// AreaMode keeps multi-fanout nodes as LUT roots so shared logic is
	// implemented once, trading depth for area.
	AreaMode
)

// Map covers the combinational logic of n with K-input LUTs using
// DepthMode.
func Map(n *netlist.Netlist, k int) (*Mapping, error) {
	return MapMode(n, k, DepthMode)
}

// MapMode covers the combinational logic of n with K-input LUTs under the
// given objective.
func MapMode(n *netlist.Netlist, k int, mode Mode) (*Mapping, error) {
	if k < 2 || k > MaxK {
		return nil, fmt.Errorf("lutmap: K must be in [2,%d], got %d", MaxK, k)
	}
	order, err := n.Levelize()
	if err != nil {
		return nil, err
	}

	// Sources: primary inputs, DFF Q nets, constants, tristate nets.
	sources := map[netlist.NetID]bool{
		n.Const(false): true,
		n.Const(true):  true,
	}
	for _, id := range n.Inputs() {
		sources[id] = true
	}
	for _, d := range n.DFFs() {
		sources[d.Q] = true
	}
	for _, tb := range n.TBufs() {
		sources[tb.Out] = true
	}

	b := &builder{nl: n, byNet: map[netlist.NetID]int{}}
	srcList := make([]netlist.NetID, 0, len(sources))
	for net := range sources {
		srcList = append(srcList, net)
	}
	sort.Slice(srcList, func(i, j int) bool { return srcList[i] < srcList[j] })
	for _, net := range srcList {
		b.leaf(net)
	}
	for _, gi := range order {
		g := n.Gates()[gi]
		fanins := make([]int, len(g.In))
		for i, in := range g.In {
			ni, ok := b.byNet[in]
			if !ok {
				return nil, fmt.Errorf("lutmap: gate %d input net %q has no driver and is not a source", gi, n.NetName(in))
			}
			fanins[i] = ni
		}
		var out int
		switch g.Kind {
		case netlist.And:
			out = b.tree(opAnd, fanins)
		case netlist.Or:
			out = b.tree(opOr, fanins)
		case netlist.Xor:
			out = b.tree(opXor, fanins)
		case netlist.Nand:
			out = b.not(b.tree(opAnd, fanins))
		case netlist.Nor:
			out = b.not(b.tree(opOr, fanins))
		case netlist.Not:
			out = b.not(fanins[0])
		case netlist.Buf:
			out = fanins[0] // alias through buffers
		default:
			return nil, fmt.Errorf("lutmap: unsupported gate kind %v", g.Kind)
		}
		if b.nodes[out].net == netlist.Invalid {
			b.nodes[out].net = g.Out
		}
		b.byNet[g.Out] = out
	}

	// Root nets: D inputs, primary outputs, tristate data/enable nets.
	rootNets := map[netlist.NetID]bool{}
	for _, d := range n.DFFs() {
		rootNets[d.D] = true
	}
	for _, o := range n.Outputs() {
		rootNets[o] = true
	}
	for _, tb := range n.TBufs() {
		rootNets[tb.In] = true
		rootNets[tb.En] = true
	}

	cuts := b.enumerateCuts(k, mode)

	m := &Mapping{K: k, NumFFs: len(n.DFFs()), NumTBufs: len(n.TBufs()), Aliases: map[netlist.NetID]netlist.NetID{}}
	level := map[int]int{} // node -> LUT network level (0 = source)
	done := map[int]bool{}
	var selectNode func(ni int)
	selectNode = func(ni int) {
		if done[ni] {
			return
		}
		done[ni] = true
		nd := b.nodes[ni]
		if nd.op == opLeaf {
			return
		}
		best := cuts[ni].best
		lv := 0
		ins := make([]netlist.NetID, 0, len(best.leaves))
		for _, leaf := range best.leaves {
			selectNode(leaf)
			if level[leaf] > lv {
				lv = level[leaf]
			}
			ins = append(ins, b.netOf(leaf))
		}
		m.LUTs = append(m.LUTs, LUT{Inputs: ins, Out: b.netOf(ni), Truth: b.truth(ni, best.leaves), Level: lv + 1})
		level[ni] = lv + 1
		if lv+1 > m.Depth {
			m.Depth = lv + 1
		}
	}
	roots := make([]netlist.NetID, 0, len(rootNets))
	for r := range rootNets {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, r := range roots {
		ni, ok := b.byNet[r]
		if !ok {
			return nil, fmt.Errorf("lutmap: root net %q is undriven", n.NetName(r))
		}
		selectNode(ni)
		if got := b.netOf(ni); got != r {
			m.Aliases[r] = got
		}
	}
	mergeUnderfull(m, rootNets)
	return m, nil
}

// mergeUnderfull is the area-recovery pass: a LUT feeding exactly one
// other LUT is absorbed into its consumer when the combined input set
// still fits K inputs. Truth tables are composed; root LUTs are kept.
func mergeUnderfull(m *Mapping, rootNets map[netlist.NetID]bool) {
	changed := true
	for changed {
		changed = false
		fanout := map[netlist.NetID]int{}
		consumer := map[netlist.NetID]int{}
		for li, l := range m.LUTs {
			for _, in := range l.Inputs {
				fanout[in]++
				consumer[in] = li
			}
		}
		for ai := range m.LUTs {
			a := m.LUTs[ai]
			if rootNets[a.Out] || fanout[a.Out] != 1 {
				continue
			}
			bi := consumer[a.Out]
			b := m.LUTs[bi]
			// Combined inputs: b's inputs minus a.Out, plus a's inputs.
			var ins []netlist.NetID
			seen := map[netlist.NetID]bool{}
			add := func(id netlist.NetID) {
				if !seen[id] {
					seen[id] = true
					ins = append(ins, id)
				}
			}
			for _, in := range b.Inputs {
				if in != a.Out {
					add(in)
				}
			}
			for _, in := range a.Inputs {
				add(in)
			}
			if len(ins) > m.K {
				continue
			}
			// Compose truth tables over the merged input order.
			var truth uint16
			for asg := 0; asg < 1<<uint(len(ins)); asg++ {
				val := func(id netlist.NetID) bool {
					for i, in := range ins {
						if in == id {
							return asg&(1<<uint(i)) != 0
						}
					}
					return false
				}
				aIdx := 0
				for i, in := range a.Inputs {
					if val(in) {
						aIdx |= 1 << uint(i)
					}
				}
				aOut := a.Truth&(1<<uint(aIdx)) != 0
				bIdx := 0
				for i, in := range b.Inputs {
					bit := val(in)
					if in == a.Out {
						bit = aOut
					}
					if bit {
						bIdx |= 1 << uint(i)
					}
				}
				if b.Truth&(1<<uint(bIdx)) != 0 {
					truth |= 1 << uint(asg)
				}
			}
			m.LUTs[bi] = LUT{Inputs: ins, Out: b.Out, Truth: truth, Level: b.Level}
			m.LUTs = append(m.LUTs[:ai], m.LUTs[ai+1:]...)
			changed = true
			break
		}
	}
	// Recompute levels and depth after merging.
	level := map[netlist.NetID]int{}
	m.Depth = 0
	for li := range m.LUTs {
		lv := 0
		for _, in := range m.LUTs[li].Inputs {
			if l, ok := level[in]; ok && l > lv {
				lv = l
			}
		}
		m.LUTs[li].Level = lv + 1
		level[m.LUTs[li].Out] = lv + 1
		if lv+1 > m.Depth {
			m.Depth = lv + 1
		}
	}
}

type builder struct {
	nl    *netlist.Netlist
	nodes []node
	byNet map[netlist.NetID]int
}

func (b *builder) leaf(net netlist.NetID) int {
	if ni, ok := b.byNet[net]; ok {
		return ni
	}
	ni := len(b.nodes)
	b.nodes = append(b.nodes, node{op: opLeaf, net: net})
	b.byNet[net] = ni
	return ni
}

func (b *builder) mk(op nodeOp, a, c int) int {
	ni := len(b.nodes)
	b.nodes = append(b.nodes, node{op: op, fan: [2]int{a, c}, nfan: 2, net: netlist.Invalid})
	return ni
}

func (b *builder) not(a int) int {
	ni := len(b.nodes)
	b.nodes = append(b.nodes, node{op: opNot, fan: [2]int{a, 0}, nfan: 1, net: netlist.Invalid})
	return ni
}

// tree builds a balanced 2-input tree over the fanins.
func (b *builder) tree(op nodeOp, fanins []int) int {
	if len(fanins) == 1 {
		return fanins[0]
	}
	cur := append([]int(nil), fanins...)
	for len(cur) > 1 {
		var next []int
		for i := 0; i+1 < len(cur); i += 2 {
			next = append(next, b.mk(op, cur[i], cur[i+1]))
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	return cur[0]
}

// netOf returns the original net a node drives, allocating a synthetic net
// for intermediate decomposition nodes that became LUT boundaries.
func (b *builder) netOf(ni int) netlist.NetID {
	if b.nodes[ni].net == netlist.Invalid {
		b.nodes[ni].net = b.nl.AddNet(fmt.Sprintf("map#%d", ni))
	}
	return b.nodes[ni].net
}

// cut.depth is the maximum LUT depth over the cut's leaves (0 for
// sources), i.e. the depth a LUT rooted above this cut would sit on.
type cut struct {
	leaves []int
	depth  int
}

type nodeCuts struct {
	best cut
	all  []cut
}

const priorityCuts = 8

// enumerateCuts computes priority cuts bottom-up. Node indices are already
// topologically ordered by construction (fanins precede users). In
// AreaMode, nodes referenced by more than one user expose only their
// trivial cut, so shared logic is never duplicated into parent cones.
func (b *builder) enumerateCuts(k int, mode Mode) []nodeCuts {
	fanout := make([]int, len(b.nodes))
	for _, nd := range b.nodes {
		if nd.op == opLeaf {
			continue
		}
		fanout[nd.fan[0]]++
		if nd.nfan == 2 {
			fanout[nd.fan[1]]++
		}
	}
	out := make([]nodeCuts, len(b.nodes))
	lutDepth := make([]int, len(b.nodes)) // depth of a LUT rooted at node
	for ni, nd := range b.nodes {
		if nd.op == opLeaf {
			trivial := cut{leaves: []int{ni}, depth: 0}
			out[ni] = nodeCuts{best: trivial, all: []cut{trivial}}
			continue
		}
		var cand []cut
		if nd.nfan == 1 {
			for _, c := range out[nd.fan[0]].all {
				cand = append(cand, c)
			}
		} else {
			for _, ca := range out[nd.fan[0]].all {
				for _, cb := range out[nd.fan[1]].all {
					merged := mergeLeaves(ca.leaves, cb.leaves, k)
					if merged == nil {
						continue
					}
					d := ca.depth
					if cb.depth > d {
						d = cb.depth
					}
					cand = append(cand, cut{leaves: merged, depth: d})
				}
			}
		}
		sort.Slice(cand, func(i, j int) bool {
			if cand[i].depth != cand[j].depth {
				return cand[i].depth < cand[j].depth
			}
			return len(cand[i].leaves) < len(cand[j].leaves)
		})
		cand = dedupeCuts(cand)
		if len(cand) > priorityCuts {
			cand = cand[:priorityCuts]
		}
		best := cand[0]
		lutDepth[ni] = best.depth + 1
		// Cuts exposed to parents keep their max-leaf-depth; the trivial
		// self cut carries this node's own LUT depth.
		var all []cut
		if mode == AreaMode && fanout[ni] > 1 {
			all = []cut{{leaves: []int{ni}, depth: lutDepth[ni]}}
		} else {
			all = append(append([]cut(nil), cand...), cut{leaves: []int{ni}, depth: lutDepth[ni]})
		}
		out[ni] = nodeCuts{best: best, all: all}
	}
	return out
}

func mergeLeaves(a, b []int, k int) []int {
	merged := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			merged = append(merged, a[i])
			i++
			j++
		case a[i] < b[j]:
			merged = append(merged, a[i])
			i++
		default:
			merged = append(merged, b[j])
			j++
		}
		if len(merged) > k {
			return nil
		}
	}
	for ; i < len(a); i++ {
		merged = append(merged, a[i])
		if len(merged) > k {
			return nil
		}
	}
	for ; j < len(b); j++ {
		merged = append(merged, b[j])
		if len(merged) > k {
			return nil
		}
	}
	return merged
}

func dedupeCuts(cs []cut) []cut {
	seen := map[string]bool{}
	out := cs[:0]
	for _, c := range cs {
		key := fmt.Sprint(c.leaves)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, c)
	}
	return out
}

// truth evaluates the cone rooted at ni over the given leaves and returns
// its truth table. Cut leaves bound the cone, so cones are small by
// construction (<= 2^K evaluations of a few nodes each).
func (b *builder) truth(ni int, leaves []int) uint16 {
	leafIdx := map[int]int{}
	for i, l := range leaves {
		leafIdx[l] = i
	}
	var tt uint16
	for a := 0; a < 1<<uint(len(leaves)); a++ {
		memo := map[int]bool{}
		var eval func(x int) bool
		eval = func(x int) bool {
			if li, ok := leafIdx[x]; ok {
				return a&(1<<uint(li)) != 0
			}
			if v, ok := memo[x]; ok {
				return v
			}
			nd := b.nodes[x]
			var v bool
			switch nd.op {
			case opAnd:
				v = eval(nd.fan[0]) && eval(nd.fan[1])
			case opOr:
				v = eval(nd.fan[0]) || eval(nd.fan[1])
			case opXor:
				v = eval(nd.fan[0]) != eval(nd.fan[1])
			case opNot:
				v = !eval(nd.fan[0])
			default:
				panic("lutmap: cone reached a leaf not in the cut")
			}
			memo[x] = v
			return v
		}
		if eval(ni) {
			tt |= 1 << uint(a)
		}
	}
	return tt
}

// Eval computes all LUT outputs given values for the source nets (primary
// inputs, DFF Qs, constants, tristate nets). It returns a map with source,
// alias, and LUT-output net values, enabling equivalence checks against
// gate-level simulation.
func (m *Mapping) Eval(sourceVals map[netlist.NetID]bool) map[netlist.NetID]bool {
	vals := make(map[netlist.NetID]bool, len(sourceVals)+len(m.LUTs))
	for k, v := range sourceVals {
		vals[k] = v
	}
	// LUTs were appended leaves-before-roots by construction.
	for _, l := range m.LUTs {
		idx := 0
		for i, in := range l.Inputs {
			if vals[in] {
				idx |= 1 << uint(i)
			}
		}
		vals[l.Out] = l.Truth&(1<<uint(idx)) != 0
	}
	for root, src := range m.Aliases {
		vals[root] = vals[src]
	}
	return vals
}

// NumLUTs returns the LUT count.
func (m *Mapping) NumLUTs() int { return len(m.LUTs) }
