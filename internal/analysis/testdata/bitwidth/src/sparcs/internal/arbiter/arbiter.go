// Seeded violations for the bitwidth analyzer, in a stub of the real
// kernel package (the analyzer keys on the BitVec type at this import
// path).
package arbiter

// BitVec mirrors the real kernel's request word.
type BitVec uint64

const (
	// MaxN and MaxSynthN mirror the real bounds; constant declarations
	// and constant-vs-constant comparisons are never flagged.
	MaxN      = 64
	MaxSynthN = 16
)

var sink BitVec

// Shifts exercises the shift-count rules.
func Shifts(v BitVec, s uint, a, b int) BitVec {
	w := v << 64        // want `shift count 64 always clears a 64-bit BitVec word`
	w |= v << s         // a plain bounded variable is accepted
	w |= v << uint(a+b) // want `shift count computed by arithmetic can reach 64`
	w <<= uint(a * 2)   // want `shift count computed by arithmetic can reach 64`
	w |= v << 3         // small constant: fine
	u := uint64(1) << s // not a BitVec word: out of scope
	return w | BitVec(u)
}

// Check exercises the magic-literal rules.
func Check(n int) bool {
	if n > 64 { // want `magic width literal 64 in a bound comparison; use arbiter.MaxN`
		return false
	}
	if n >= 16 { // want `magic width literal 16 in a bound comparison; use arbiter.MaxSynthN`
		return false
	}
	if 64 < n { // want `magic width literal 64 in a bound comparison; use arbiter.MaxN`
		return false
	}
	if n > MaxN { // the named constant is the fix
		return false
	}
	return MaxN > MaxSynthN
}

// HotScratch builds []bool vectors inside a hot region: flagged, even
// through a same-package static call.
//
//sparcs:hotpath
func HotScratch(n int) int {
	buf := make([]bool, n) // want `\[\]bool request vector built on the cycle path`
	lit := []bool{true}    // want `\[\]bool request vector built on the cycle path`
	grow(n)
	if len(lit) > 0 {
		sink = 1
	}
	return len(buf)
}

func grow(n int) {
	scratch := make([]bool, n) // want `\[\]bool request vector built on the cycle path`
	_ = scratch
}

// ColdScratch is setup-time code: []bool construction is fine here.
func ColdScratch(n int) []bool {
	return make([]bool, n)
}
