// The paper's Section 5 case study end to end, on the compile-once /
// experiment-many System API: the 4x4-pixel 2-D FFT taskgraph is
// partitioned onto the Wildforce board ONCE, then three experiments run
// against the same compiled design — the paper's baseline, a policy
// swap, and a correlated hold-M1-while-waiting-on-M3 background source —
// without recompiling anything.
package main

import (
	"fmt"
	"log"

	"sparcs"
)

func main() {
	const tiles = 8
	sys, err := sparcs.FFTSystem(tiles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sys.Report())

	// Experiment 1: the paper's baseline (behavioral round-robin).
	mem := sparcs.NewMemory()
	in := sparcs.LoadFFTInput(mem, tiles, 42)
	base, err := sys.Run(sparcs.WithMemory(mem))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== baseline (round-robin) ==")
	for si, ss := range base.Stages {
		fmt.Printf("temporal partition #%d: %d cycles, %d grants, violations: %d\n",
			si, ss.Stats.Cycles, totalGrants(ss.Stats.GrantsByRes), len(ss.Stats.Violations))
	}
	if sparcs.CheckFFTOutput(mem, in) == nil {
		fmt.Println("output check: PASS — hardware memory image equals the 2-D FFT reference")
	} else {
		fmt.Println("output check: FAIL")
	}

	// Experiment 2: same silicon, different arbitration policy.
	prio, err := sys.Run(sparcs.WithPolicy("priority"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== policy swap ==\nstatic priority: %d cycles (baseline %d)\n",
		prio.TotalCycles, base.TotalCycles)

	// Experiment 3: correlated background load — one source holds the
	// contended M1 bank while it waits for M3, the hold-and-wait pattern
	// a per-resource phantom cannot express.
	corr, err := sys.Run(sparcs.WithContention("M1+M3=corr:0.25/1"), sparcs.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== correlated contention (M1+M3=corr:0.25/1) ==\n")
	fmt.Printf("total cycles: %d (baseline %d)\n", corr.TotalCycles, base.TotalCycles)
	for _, sh := range corr.SharedStats() {
		fmt.Printf("source %s over %v: grants %v, waits %v, hold-and-wait %d, all-held %d\n",
			sh.Name, sh.Resources, sh.Grants, sh.Waits, sh.HoldWait, sh.AllHeld)
	}

	cpt := float64(base.TotalCycles) / float64(tiles)
	hw, sw := sparcs.FFTHardwareSeconds(cpt, 512), sparcs.FFTSoftwareSeconds(512)
	fmt.Println("\n== 512x512 image timing (paper: HW 4.4 s, SW 6.8 s) ==")
	fmt.Printf("cycles/tile (3 partitions):  %8.1f\n", cpt)
	fmt.Printf("hardware @ 6 MHz:            %8.2f s\n", hw)
	fmt.Printf("software (Pentium-150 model):%8.2f s\n", sw)
	fmt.Printf("hardware speedup:            %8.2fx\n", sw/hw)
}

func totalGrants(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
