// Package behav defines the behavioral task programs executed by the
// system simulator (internal/sim): a small instruction set covering
// computation delay, memory and channel accesses, data transformation, and
// the Request/Grant arbitration protocol of the paper's Figure 8.
//
// Programs stand in for the register-transfer designs SPARCS' high-level
// synthesis produced: each instruction models the cycle cost of the
// corresponding datapath activity, and data genuinely moves through the
// simulated memories and channels so routing and arbitration errors are
// observable as corrupted values.
package behav

import "fmt"

// Op enumerates task program instructions.
type Op uint8

const (
	// OpCompute busy-waits N cycles (datapath computation).
	OpCompute Op = iota
	// OpRead loads mem[Res][Addr] and pushes it onto the task buffer
	// (1 cycle).
	OpRead
	// OpWrite pops the task buffer and stores to mem[Res][Addr]
	// (1 cycle). An empty buffer stores Val instead.
	OpWrite
	// OpSend pops the task buffer into the logical channel Res (1 cycle).
	// An empty buffer sends Val.
	OpSend
	// OpRecv blocks until channel Res holds a value, then pushes it
	// (1 cycle once available). The receive register retains its value,
	// so later receives of the same transfer do not block (Table 1).
	OpRecv
	// OpReq asserts this task's request line on arbiter Res (1 cycle) —
	// "Req := 1" in Figure 8.
	OpReq
	// OpWaitGrant blocks until arbiter Res grants this task (0 extra
	// cycles when the grant is immediate) — "Wait for (Grant == 1)".
	OpWaitGrant
	// OpRelease deasserts the request line (1 cycle) — "Req := 0".
	OpRelease
	// OpTransform pops N values, applies Fn, and pushes the results
	// (Cycles cycles of latency).
	OpTransform
)

func (o Op) String() string {
	switch o {
	case OpCompute:
		return "compute"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	case OpReq:
		return "req"
	case OpWaitGrant:
		return "wait-grant"
	case OpRelease:
		return "release"
	case OpTransform:
		return "transform"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Instr is one task program instruction.
type Instr struct {
	Op     Op
	Res    string // segment, channel, or arbitrated resource name
	Addr   int    // memory address within the segment (word index)
	Stride int    // per-iteration address stride (streaming workloads)
	N      int    // cycles (OpCompute) or pop count (OpTransform)
	Cycles int    // latency of OpTransform
	Val    int64  // immediate for OpWrite/OpSend with an empty buffer
	// Fn transforms the popped values for OpTransform. It must be pure.
	Fn func(in []int64) []int64
}

// EffAddr returns the effective address for iteration iter.
func (in Instr) EffAddr(iter int) int { return in.Addr + iter*in.Stride }

// Program is a task's behavior: Body executed Repeat times (Repeat <= 0
// means once). The repeat models streaming workloads (e.g. one FFT tile
// per iteration) without unrolling the full stream.
type Program struct {
	Body   []Instr
	Repeat int
}

// Iterations returns the effective repeat count.
func (p Program) Iterations() int {
	if p.Repeat <= 0 {
		return 1
	}
	return p.Repeat
}

// Compute returns a computation-delay instruction.
func Compute(cycles int) Instr { return Instr{Op: OpCompute, N: cycles} }

// Read returns a segment load instruction.
func Read(segment string, addr int) Instr { return Instr{Op: OpRead, Res: segment, Addr: addr} }

// ReadStride returns a segment load whose address advances by stride each
// program iteration.
func ReadStride(segment string, addr, stride int) Instr {
	return Instr{Op: OpRead, Res: segment, Addr: addr, Stride: stride}
}

// Write returns a segment store instruction (value from the task buffer).
func Write(segment string, addr int) Instr { return Instr{Op: OpWrite, Res: segment, Addr: addr} }

// WriteStride returns a segment store whose address advances by stride
// each program iteration.
func WriteStride(segment string, addr, stride int) Instr {
	return Instr{Op: OpWrite, Res: segment, Addr: addr, Stride: stride}
}

// WriteImm returns a segment store of an immediate value.
func WriteImm(segment string, addr int, v int64) Instr {
	return Instr{Op: OpWrite, Res: segment, Addr: addr, Val: v}
}

// Send returns a channel send (value from the task buffer).
func Send(channel string) Instr { return Instr{Op: OpSend, Res: channel} }

// SendImm returns a channel send of an immediate value.
func SendImm(channel string, v int64) Instr { return Instr{Op: OpSend, Res: channel, Val: v} }

// Recv returns a blocking channel receive.
func Recv(channel string) Instr { return Instr{Op: OpRecv, Res: channel} }

// Req returns a request assertion on an arbitrated resource.
func Req(resource string) Instr { return Instr{Op: OpReq, Res: resource} }

// WaitGrant returns a grant wait on an arbitrated resource.
func WaitGrant(resource string) Instr { return Instr{Op: OpWaitGrant, Res: resource} }

// Release returns a request deassertion.
func Release(resource string) Instr { return Instr{Op: OpRelease, Res: resource} }

// Transform returns a buffer transformation instruction popping n values.
func Transform(n, cycles int, fn func([]int64) []int64) Instr {
	return Instr{Op: OpTransform, N: n, Fn: fn, Cycles: cycles}
}
