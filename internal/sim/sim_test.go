package sim

import (
	"testing"

	"sparcs/internal/arbiter"
	"sparcs/internal/behav"
	"sparcs/internal/fsm"
	"sparcs/internal/partition"
	"sparcs/internal/taskgraph"
)

// simpleGraph builds a two-writer graph over segment S.
func simpleGraph() *taskgraph.Graph {
	g := &taskgraph.Graph{
		Name: "simple",
		Segments: []*taskgraph.Segment{
			{Name: "S", SizeBytes: 1024, WidthBits: 32},
		},
		Tasks: []*taskgraph.Task{
			{Name: "A", AreaCLBs: 10, Accesses: []taskgraph.Access{{Segment: "S", Kind: taskgraph.Write}}},
			{Name: "B", AreaCLBs: 10, Accesses: []taskgraph.Access{{Segment: "S", Kind: taskgraph.Write}}},
		},
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}

func arbSpec(res string, members ...string) partition.ArbiterSpec {
	return partition.ArbiterSpec{Resource: res, Members: members}
}

func TestComputeTiming(t *testing.T) {
	g := simpleGraph()
	stats, err := Run(Config{
		Graph: g,
		Tasks: []string{"A"},
		Programs: map[string]behav.Program{
			"A": {Body: []behav.Instr{behav.Compute(10)}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Done || stats.Cycles != 10 {
		t.Fatalf("cycles = %d done=%v, want 10 done", stats.Cycles, stats.Done)
	}
}

func TestMemoryDataFlow(t *testing.T) {
	g := simpleGraph()
	mem := NewMemory()
	_, err := Run(Config{
		Graph: g,
		Tasks: []string{"A"},
		Programs: map[string]behav.Program{
			"A": {Body: []behav.Instr{
				behav.WriteImm("S", 3, 42),
				behav.Read("S", 3),
				behav.Write("S", 4), // copies the read value
			}},
		},
		Memory: mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := mem.Read("S", 4); got != 42 {
		t.Fatalf("copied value = %d, want 42", got)
	}
}

func TestStridedAddressing(t *testing.T) {
	g := simpleGraph()
	mem := NewMemory()
	_, err := Run(Config{
		Graph: g,
		Tasks: []string{"A"},
		Programs: map[string]behav.Program{
			"A": {Body: []behav.Instr{
				{Op: behav.OpWrite, Res: "S", Addr: 0, Stride: 4, Val: 7},
			}, Repeat: 3},
		},
		Memory: mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range []int{0, 4, 8} {
		if mem.Read("S", addr) != 7 {
			t.Fatalf("addr %d not written", addr)
		}
	}
}

func TestArbitratedAccessOverheadIsTwoCycles(t *testing.T) {
	// Paper Section 4.3: with an immediate grant, each arbitrated access
	// group costs exactly two extra cycles (Req and Release).
	g := simpleGraph()
	bare := map[string]behav.Program{
		"A": {Body: []behav.Instr{behav.WriteImm("S", 0, 1), behav.WriteImm("S", 1, 2)}},
	}
	wrapped := map[string]behav.Program{
		"A": {Body: []behav.Instr{
			behav.Req("bankS"), behav.WaitGrant("bankS"),
			behav.WriteImm("S", 0, 1), behav.WriteImm("S", 1, 2),
			behav.Release("bankS"),
		}},
	}
	sBare, err := Run(Config{Graph: g, Tasks: []string{"A"}, Programs: bare})
	if err != nil {
		t.Fatal(err)
	}
	sWrapped, err := Run(Config{
		Graph:             g,
		Tasks:             []string{"A"},
		Programs:          wrapped,
		Arbiters:          []partition.ArbiterSpec{arbSpec("bankS", "A", "B")},
		ResourceOfSegment: map[string]string{"S": "bankS"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sWrapped.Cycles-sBare.Cycles != 2 {
		t.Fatalf("overhead = %d cycles, want exactly 2 (bare %d, wrapped %d)",
			sWrapped.Cycles-sBare.Cycles, sBare.Cycles, sWrapped.Cycles)
	}
}

func TestContentionSerializesWithoutViolations(t *testing.T) {
	g := simpleGraph()
	prog := func(base int) behav.Program {
		return behav.Program{Body: []behav.Instr{
			behav.Req("bankS"), behav.WaitGrant("bankS"),
			behav.WriteImm("S", base, int64(base)), behav.WriteImm("S", base+1, int64(base+1)),
			behav.Release("bankS"),
		}, Repeat: 20}
	}
	mem := NewMemory()
	stats, err := Run(Config{
		Graph:             g,
		Tasks:             []string{"A", "B"},
		Programs:          map[string]behav.Program{"A": prog(0), "B": prog(100)},
		Arbiters:          []partition.ArbiterSpec{arbSpec("bankS", "A", "B")},
		ResourceOfSegment: map[string]string{"S": "bankS"},
		Memory:            mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Done {
		t.Fatal("deadlock under contention")
	}
	if len(stats.Violations) != 0 {
		t.Fatalf("violations = %v", stats.Violations)
	}
	if mem.Read("S", 0) != 0 || mem.Read("S", 100) != 100 {
		t.Fatal("data corrupted under contention")
	}
	// The arbiter trace itself must satisfy all fairness properties.
	trace := stats.ArbiterTraces["bankS"]
	if err := arbiter.CheckAll(2, trace); err != nil {
		t.Fatal(err)
	}
}

func TestUnarbitratedSharingDetected(t *testing.T) {
	// Ablation: remove the protocol and the simulator must flag
	// port conflicts.
	g := simpleGraph()
	prog := func(base int) behav.Program {
		return behav.Program{Body: []behav.Instr{
			behav.WriteImm("S", base, 1),
		}, Repeat: 10}
	}
	stats, err := Run(Config{
		Graph:             g,
		Tasks:             []string{"A", "B"},
		Programs:          map[string]behav.Program{"A": prog(0), "B": prog(100)},
		ResourceOfSegment: map[string]string{"S": "bankS"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Violations) == 0 {
		t.Fatal("expected port-conflict violations without arbitration")
	}
	if stats.Violations[0].Kind != "port-conflict" {
		t.Fatalf("violation kind = %s", stats.Violations[0].Kind)
	}
}

func TestNoGrantAccessDetected(t *testing.T) {
	g := simpleGraph()
	stats, err := Run(Config{
		Graph: g,
		Tasks: []string{"A"},
		Programs: map[string]behav.Program{
			"A": {Body: []behav.Instr{behav.WriteImm("S", 0, 1)}}, // member but no Req
		},
		Arbiters:          []partition.ArbiterSpec{arbSpec("bankS", "A", "B")},
		ResourceOfSegment: map[string]string{"S": "bankS"},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range stats.Violations {
		if v.Kind == "no-grant" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected no-grant violation, got %v", stats.Violations)
	}
}

func TestControlDependencyHoldsTask(t *testing.T) {
	g := &taskgraph.Graph{
		Name:     "dep",
		Segments: []*taskgraph.Segment{{Name: "S", SizeBytes: 64, WidthBits: 32}},
		Tasks: []*taskgraph.Task{
			{Name: "P", AreaCLBs: 1, Accesses: []taskgraph.Access{{Segment: "S", Kind: taskgraph.Write}}},
			{Name: "C", AreaCLBs: 1, Deps: []string{"P"}, Accesses: []taskgraph.Access{{Segment: "S", Kind: taskgraph.Read}}},
		},
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	mem := NewMemory()
	stats, err := Run(Config{
		Graph: g,
		Tasks: []string{"P", "C"},
		Programs: map[string]behav.Program{
			"P": {Body: []behav.Instr{behav.Compute(50), behav.WriteImm("S", 0, 99)}},
			"C": {Body: []behav.Instr{behav.Read("S", 0), behav.Write("S", 1)}},
		},
		Memory: mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Done {
		t.Fatal("did not finish")
	}
	// C must observe P's value, proving it started after P completed.
	if got := mem.Read("S", 1); got != 99 {
		t.Fatalf("consumer read %d, want 99", got)
	}
	if stats.TaskFinish["C"] <= stats.TaskFinish["P"] {
		t.Fatal("consumer finished before producer")
	}
}

func TestChannelRegisterSemantics(t *testing.T) {
	// Table 1: the receive register holds the value indefinitely, so a
	// late receiver still sees it even after the channel was reused by a
	// different logical transfer.
	g := &taskgraph.Graph{
		Name:     "chan",
		Segments: []*taskgraph.Segment{{Name: "S", SizeBytes: 64, WidthBits: 32}},
		Channels: []*taskgraph.Channel{
			{Name: "c1", From: "T1", To: "T2", WidthBits: 16},
			{Name: "c4", From: "T4", To: "T3", WidthBits: 16},
		},
		Tasks: []*taskgraph.Task{
			{Name: "T1", AreaCLBs: 1},
			{Name: "T2", AreaCLBs: 1},
			{Name: "T3", AreaCLBs: 1},
			{Name: "T4", AreaCLBs: 1},
		},
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	mem := NewMemory()
	stats, err := Run(Config{
		Graph: g,
		Tasks: []string{"T1", "T2", "T3", "T4"},
		Programs: map[string]behav.Program{
			// T1 sends 10 on c1 at time 1.
			"T1": {Body: []behav.Instr{behav.SendImm("c1", 10)}},
			// T4 sends 102 on c4 (sharing the same physical channel in
			// the Table 1 scenario) soon after.
			"T4": {Body: []behav.Instr{behav.Compute(2), behav.SendImm("c4", 102)}},
			// T2 reads c1 late — after T4's transfer — and must still see 10.
			"T2": {Body: []behav.Instr{behav.Compute(10), behav.Recv("c1"), behav.Write("S", 0)}},
			"T3": {Body: []behav.Instr{behav.Recv("c4"), behav.Write("S", 1)}},
		},
		Memory: mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Done {
		t.Fatal("did not finish")
	}
	if got := mem.Read("S", 0); got != 10 {
		t.Fatalf("T2 received %d, want 10 (register must hold the value)", got)
	}
	if got := mem.Read("S", 1); got != 102 {
		t.Fatalf("T3 received %d, want 102", got)
	}
}

func TestRecvBlocksUntilSend(t *testing.T) {
	g := &taskgraph.Graph{
		Name:     "block",
		Segments: []*taskgraph.Segment{{Name: "S", SizeBytes: 64, WidthBits: 32}},
		Channels: []*taskgraph.Channel{{Name: "c", From: "P", To: "C", WidthBits: 8}},
		Tasks: []*taskgraph.Task{
			{Name: "P", AreaCLBs: 1},
			{Name: "C", AreaCLBs: 1},
		},
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	stats, err := Run(Config{
		Graph: g,
		Tasks: []string{"P", "C"},
		Programs: map[string]behav.Program{
			"P": {Body: []behav.Instr{behav.Compute(30), behav.SendImm("c", 5)}},
			"C": {Body: []behav.Instr{behav.Recv("c")}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Done {
		t.Fatal("did not finish")
	}
	if stats.TaskFinish["C"] < 30 {
		t.Fatalf("receiver finished at %d, before the send", stats.TaskFinish["C"])
	}
}

func TestDeadlockWatchdog(t *testing.T) {
	g := &taskgraph.Graph{
		Name:     "dead",
		Segments: []*taskgraph.Segment{{Name: "S", SizeBytes: 64, WidthBits: 32}},
		Channels: []*taskgraph.Channel{{Name: "c", From: "A", To: "B", WidthBits: 8}},
		Tasks:    []*taskgraph.Task{{Name: "A", AreaCLBs: 1}, {Name: "B", AreaCLBs: 1}},
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	stats, err := Run(Config{
		Graph: g,
		Tasks: []string{"B"},
		Programs: map[string]behav.Program{
			"B": {Body: []behav.Instr{behav.Recv("c")}}, // nobody sends
		},
		MaxCycles: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Done {
		t.Fatal("should not finish")
	}
	last := stats.Violations[len(stats.Violations)-1]
	if last.Kind != "deadlock-or-timeout" {
		t.Fatalf("violation = %+v", last)
	}
}

// TestPolicySubstitution runs the same contention scenario under the
// behavioral, FSM-reference, and gate-level arbiter implementations and
// requires identical schedules.
func TestPolicySubstitution(t *testing.T) {
	g := simpleGraph()
	mkProg := func(base int) behav.Program {
		return behav.Program{Body: []behav.Instr{
			behav.Req("bankS"), behav.WaitGrant("bankS"),
			behav.WriteImm("S", base, 1), behav.WriteImm("S", base+1, 2),
			behav.Release("bankS"),
			behav.Compute(3),
		}, Repeat: 15}
	}
	run := func(newPolicy func(n int) arbiter.Policy) *Stats {
		stats, err := Run(Config{
			Graph:             g,
			Tasks:             []string{"A", "B"},
			Programs:          map[string]behav.Program{"A": mkProg(0), "B": mkProg(50)},
			Arbiters:          []partition.ArbiterSpec{arbSpec("bankS", "A", "B")},
			ResourceOfSegment: map[string]string{"S": "bankS"},
			NewPolicy:         newPolicy,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	behavioral := run(nil)
	fsmBacked := run(func(n int) arbiter.Policy {
		p, err := arbiter.NewFSMPolicy(n)
		if err != nil {
			t.Fatal(err)
		}
		return p
	})
	gateBacked := run(func(n int) arbiter.Policy {
		p, err := arbiter.NewNetlistPolicy(n, fsm.OneHot)
		if err != nil {
			t.Fatal(err)
		}
		return p
	})
	if behavioral.Cycles != fsmBacked.Cycles || behavioral.Cycles != gateBacked.Cycles {
		t.Fatalf("cycle counts diverge: behavioral %d, fsm %d, gates %d",
			behavioral.Cycles, fsmBacked.Cycles, gateBacked.Cycles)
	}
	for _, s := range []*Stats{behavioral, fsmBacked, gateBacked} {
		if len(s.Violations) != 0 {
			t.Fatalf("violations: %v", s.Violations)
		}
	}
}

func TestMemorySnapshotAndPersistence(t *testing.T) {
	mem := NewMemory()
	mem.Write("S", 1, 5)
	snap := mem.Snapshot("S")
	if snap[1] != 5 {
		t.Fatal("snapshot missing value")
	}
	mem.Write("S", 1, 6)
	if snap[1] != 5 {
		t.Fatal("snapshot should be a copy")
	}
}

func TestMemoryDenseAndSparse(t *testing.T) {
	mem := NewMemory()
	// Dense path: small addresses, including an explicit zero write that
	// must still appear in the snapshot.
	mem.Write("S", 0, 0)
	mem.Write("S", 7, 70)
	// Sparse fallbacks: negative and beyond the dense page cap.
	mem.Write("S", -3, -30)
	mem.Write("S", densePageCap+5, 99)
	if got := mem.Read("S", 7); got != 70 {
		t.Fatalf("dense read = %d", got)
	}
	if got := mem.Read("S", -3); got != -30 {
		t.Fatalf("sparse read = %d", got)
	}
	if got := mem.Read("S", densePageCap+5); got != 99 {
		t.Fatalf("sparse read = %d", got)
	}
	if got := mem.Read("S", 512); got != 0 {
		t.Fatalf("unwritten dense read = %d, want 0", got)
	}
	if got := mem.Read("missing", 0); got != 0 {
		t.Fatalf("unknown segment read = %d, want 0", got)
	}
	snap := mem.Snapshot("S")
	want := map[int]int64{0: 0, 7: 70, -3: -30, densePageCap + 5: 99}
	if len(snap) != len(want) {
		t.Fatalf("snapshot = %v, want %v", snap, want)
	}
	for a, v := range want {
		if got, ok := snap[a]; !ok || got != v {
			t.Fatalf("snapshot[%d] = %d,%v want %d", a, got, ok, v)
		}
	}
	if got := mem.Snapshot("missing"); len(got) != 0 {
		t.Fatalf("unknown segment snapshot = %v", got)
	}
}

func TestMemoryIDFastPath(t *testing.T) {
	mem := NewMemory()
	id := mem.SegID("S")
	if id2 := mem.SegID("S"); id2 != id {
		t.Fatalf("interning not stable: %d vs %d", id, id2)
	}
	mem.WriteID(id, 3, 33)
	if got := mem.ReadID(id, 3); got != 33 {
		t.Fatalf("ReadID = %d", got)
	}
	if got := mem.Read("S", 3); got != 33 {
		t.Fatal("string and ID views must alias the same storage")
	}
}
