package core

import (
	"reflect"
	"strings"
	"testing"

	"sparcs/internal/arbinsert"
	"sparcs/internal/partition"
)

func TestParseSharedContentionGrammar(t *testing.T) {
	specs, err := ParseSharedContention("M1+M3=corr:0.25/2, M1+M2+M3=corr")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("parsed %d specs", len(specs))
	}
	if !reflect.DeepEqual(specs[0].Resources, []string{"M1", "M3"}) || specs[0].Workload != "corr:0.25" || specs[0].Lanes != 2 {
		t.Fatalf("spec 0 = %+v", specs[0])
	}
	if got := specs[0].String(); got != "M1+M3=corr:0.25/2" {
		t.Fatalf("String() = %q", got)
	}
	if len(specs[1].Resources) != 3 || specs[1].Lanes != 1 {
		t.Fatalf("spec 1 = %+v", specs[1])
	}
	if out, err := ParseSharedContention("   "); err != nil || out != nil {
		t.Fatalf("blank spec: %v %v", out, err)
	}
	for _, bad := range []string{
		"M1+M3",             // no '='
		"M1+M3=",            // no workload
		"=corr",             // no resources
		"M1+M3=corr/0",      // bad lane count
		"M1+M3=corr/x",      // bad lane count
		"M1+M3=bursty",      // not a shared shape
		"M1=corr",           // one resource (ParseSharedContention path)
		"M1+M1=corr",        // duplicate resource
		"M1+M3=corr:oops",   // bad rate
		"M1+M3=corr:0.5:no", // bad hold
	} {
		if _, err := ParseSharedContention(bad); err == nil {
			t.Errorf("spec %q should error", bad)
		}
	}
}

func TestParseMixedContention(t *testing.T) {
	single, shared, err := ParseMixedContention("M1=hog/2, M1+M3=corr:0.30/1, M3=bernoulli:0.50")
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != 2 || single[0].Resource != "M1" || single[0].Workload != "hog" || single[0].Lines != 2 {
		t.Fatalf("single = %+v", single)
	}
	if len(shared) != 1 || !reflect.DeepEqual(shared[0].Resources, []string{"M1", "M3"}) {
		t.Fatalf("shared = %+v", shared)
	}
	if s, sh, err := ParseMixedContention(""); err != nil || s != nil || sh != nil {
		t.Fatalf("blank: %v %v %v", s, sh, err)
	}
	for _, bad := range []string{"M1+M3=nope", "M1=notashape", "M1+M3"} {
		if _, _, err := ParseMixedContention(bad); err == nil {
			t.Errorf("spec %q should error", bad)
		}
	}
}

func TestSharedLinesAndExpected(t *testing.T) {
	shared, err := ParseSharedContention("M1+M3=corr:0.25/2")
	if err != nil {
		t.Fatal(err)
	}
	single, err := ParseContention("M1=hog/1,M2=silent/3")
	if err != nil {
		t.Fatal(err)
	}
	extra := expectedLines(Options{Contention: single, Shared: shared})
	// hog adds 1 on M1, silent is elided, corr adds 2 lanes to M1 and M3.
	want := map[string]int{"M1": 3, "M3": 2}
	if !reflect.DeepEqual(extra, want) {
		t.Fatalf("expectedLines = %v, want %v", extra, want)
	}
}

// fakeDesign builds a Design skeleton with the given per-stage arbiter
// resource lists, enough for validateShared/StageWidths.
func fakeDesign(stages ...[]string) *Design {
	d := &Design{}
	for _, resources := range stages {
		ins := &arbinsert.Result{}
		for _, r := range resources {
			ins.Arbiters = append(ins.Arbiters, partition.ArbiterSpec{
				Resource: r, Members: []string{"a", "b", "c"},
			})
		}
		d.Stages = append(d.Stages, &StagePlan{Inserted: ins})
	}
	return d
}

func TestValidateSharedRequiresCoArbitration(t *testing.T) {
	// M1 and M3 are each arbitrated somewhere, but never in one stage: a
	// correlated source spanning them is meaningless and must be
	// rejected, not silently skipped.
	d := fakeDesign([]string{"M1"}, []string{"M3"})
	specs, err := ParseSharedContention("M1+M3=corr")
	if err != nil {
		t.Fatal(err)
	}
	err = validateShared(d, specs)
	if err == nil {
		t.Fatal("want an error for never-co-arbitrated resources")
	}
	if !strings.Contains(err.Error(), "no single stage") {
		t.Fatalf("unhelpful error: %v", err)
	}
	// Together in stage 0: fine.
	if err := validateShared(fakeDesign([]string{"M1", "M3"}, []string{"M3"}), specs); err != nil {
		t.Fatal(err)
	}
}

func TestStageWidths(t *testing.T) {
	d := fakeDesign([]string{"M1", "M3"}, []string{"M3"})
	single, shared, err := ParseMixedContention("M1=hog/2,M1+M3=corr:0.30/1")
	if err != nil {
		t.Fatal(err)
	}
	widths := StageWidths(d, Options{Contention: single, Shared: shared})
	// Stage 0: M1 = 3 members + 2 hog + 1 corr lane; M3 = 3 members + 1
	// corr lane. Stage 1 hosts no corr source (M1 missing): M3 = 3
	// members only... but the hog spec attaches wherever M1 is
	// arbitrated, which stage 1 doesn't.
	want := []map[string]int{
		{"M1": 6, "M3": 4},
		{"M3": 3},
	}
	if !reflect.DeepEqual(widths, want) {
		t.Fatalf("StageWidths = %v, want %v", widths, want)
	}
}

// TestSharedContentionFFTEndToEnd runs the full FFT under a correlated
// M1+M3 source: the source must wire into stage 0 only (the one stage
// arbitrating both), report coherent cross-resource stats, and leave the
// design's output intact.
func TestSharedContentionFFTEndToEnd(t *testing.T) {
	opts := paperOpts()
	var err error
	if opts.Contention, opts.Shared, err = ParseMixedContention("M1+M3=corr:0.30/1"); err != nil {
		t.Fatal(err)
	}
	opts.ContentionSeed = 11
	stats, _ := runFFT(t, opts)
	if len(stats) != 3 {
		t.Fatalf("stages = %d", len(stats))
	}
	if len(stats[0].Shared) != 1 {
		t.Fatalf("stage 0 shared sources = %d, want 1", len(stats[0].Shared))
	}
	if len(stats[1].Shared) != 0 || len(stats[2].Shared) != 0 {
		t.Fatal("correlated source leaked into a stage that does not arbitrate both resources")
	}
	sh := stats[0].Shared[0]
	if !reflect.DeepEqual(sh.Resources, []string{"M1", "M3"}) {
		t.Fatalf("resources = %v", sh.Resources)
	}
	if sh.Grants[0] == 0 || sh.Grants[1] == 0 {
		t.Fatalf("correlated source never granted: %+v", sh)
	}
	if sh.AllHeld == 0 {
		t.Fatal("correlated source never completed a critical section")
	}
	// AllHeld counts cycles with BOTH granted, bounded by each
	// resource's grant count.
	if sh.AllHeld > sh.Grants[0] || sh.AllHeld > sh.Grants[1] {
		t.Fatalf("AllHeld %d exceeds a per-resource grant count %v", sh.AllHeld, sh.Grants)
	}
	// Per-line phantom stats land in Stats.Contention for both spanned
	// resources and must agree with the shared view.
	for i, res := range sh.Resources {
		cs := stats[0].Contention[res]
		if cs == nil {
			t.Fatalf("no Stats.Contention entry for %s", res)
		}
		if got := sum(cs.Grants); got != sh.Grants[i] {
			t.Fatalf("%s: contention grants %d != shared grants %d", res, got, sh.Grants[i])
		}
		if got := sum(cs.Waits); got != sh.Waits[i] {
			t.Fatalf("%s: contention waits %d != shared waits %d", res, got, sh.Waits[i])
		}
	}
	// No member violations: the background load delays but never breaks
	// the access protocol.
	for si, st := range stats {
		if len(st.Violations) > 0 {
			t.Fatalf("stage %d violations: %v", si, st.Violations)
		}
	}
}

// TestSharedContentionDeterministic: identical options replay the
// identical stats, and a different seed produces a different experience.
func TestSharedContentionDeterministic(t *testing.T) {
	opts := paperOpts()
	var err error
	if _, opts.Shared, err = ParseMixedContention("M1+M3=corr:0.30/2"); err != nil {
		t.Fatal(err)
	}
	// Two lanes widen M1 past PE1's CLB budget under the derived
	// contention-aware pricing; this test is about simulation
	// determinism, so opt the mapper out explicitly.
	opts.Partition.ExpectedContention = map[string]int{}
	opts.ContentionSeed = 3
	a, _ := runFFT(t, opts)
	b, _ := runFFT(t, opts)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical shared-contention runs diverged")
	}
	opts.ContentionSeed = 4
	c, _ := runFFT(t, opts)
	if reflect.DeepEqual(a[0].Shared, c[0].Shared) {
		t.Fatal("different seeds produced identical shared stats (suspicious)")
	}
}

// TestSharedContentionDeadlockAdjacent wires two correlated sources over
// the same two resources in OPPOSITE acquisition orders — the circular
// hold-and-wait. Under the non-preemptive round-robin (grants persist
// while requested) the two phantoms eventually interlock, the member
// tasks starve behind them, and the watchdog must report the deadlock.
func TestSharedContentionDeadlockAdjacent(t *testing.T) {
	opts := paperOpts()
	var err error
	if _, opts.Shared, err = ParseMixedContention("M1+M3=corr:0.90:64/1,M3+M1=corr:0.90:64/1"); err != nil {
		t.Fatal(err)
	}
	// The two extra M1 lanes overflow PE1 under contention-aware area
	// pricing; this experiment is about the interlock, not board fit.
	opts.Partition.ExpectedContention = map[string]int{}
	// The circular acquisition order is the whole point here, so opt out
	// of the build-time ordered-acquisition gate and let the watchdog do
	// the detecting (the pre-checker behavior this test predates).
	opts.UnsafeProtocols = true
	opts.ContentionSeed = 1
	opts.MaxCyclesPerStage = 20_000
	d, mem, _ := compileFFT(t, 2, opts)
	res, err := Simulate(d, mem, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stages[0].Stats
	if st.Done {
		t.Fatal("expected the circular hold-and-wait to starve stage 0 into the watchdog")
	}
	dead := false
	for _, v := range st.Violations {
		if v.Kind == "deadlock-or-timeout" {
			dead = true
		}
	}
	if !dead {
		t.Fatalf("no deadlock-or-timeout violation; got %v", st.Violations)
	}
	// Both sources must be stuck in hold-and-wait at the end — huge
	// overlap counts, near-zero critical sections after lock-up.
	if len(st.Shared) != 2 {
		t.Fatalf("shared sources = %d", len(st.Shared))
	}
	for _, sh := range st.Shared {
		if sh.HoldWait == 0 {
			t.Fatalf("source %s never reached hold-and-wait: %+v", sh.Name, sh)
		}
	}
}

// TestSharedContentionSilentElision: a statically silent shared source
// must not exist — the corr grammar has no zero rate — but wiring an
// explicitly silent generator through sim directly is elided; here we
// pin the cheaper core-level guarantee that empty Shared changes
// nothing.
func TestSharedContentionEmptyIsNoOp(t *testing.T) {
	base, segsA := runFFT(t, paperOpts())
	opts := paperOpts()
	opts.Shared = nil
	opts.ContentionSeed = 99 // irrelevant without sources
	with, segsB := runFFT(t, opts)
	if !reflect.DeepEqual(base, with) || !reflect.DeepEqual(segsA, segsB) {
		t.Fatal("empty shared contention perturbed the run")
	}
}

func sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
