package workload

// Differential oracle for the bitset arbitration kernel: the pre-bitset
// []bool policy implementations are frozen here verbatim (modulo
// unexported naming) and driven closed-loop against the live policies
// through the word-level BitStepper path, under every default workload
// shape. Any grant-stream divergence — a single bit on a single cycle —
// fails with the full cycle context. Because the generators are
// closed-loop (requests react to last cycle's grants), matching grants
// every cycle inductively proves matching requests too, so the test
// pins the entire request/grant trajectory, not just the arbiter in
// isolation.

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"sparcs/internal/arbiter"
)

// legacyStepper is the frozen pre-refactor arbitration surface: one
// in-place []bool step per cycle.
type legacyStepper interface {
	step(req, grant []bool)
}

// legacyRR is the seed's RoundRobin.StepInto: linear cyclic scan from
// the holder (or the priority pointer), modulo arithmetic throughout.
type legacyRR struct {
	n        int
	holder   int
	priority int
}

func newLegacyRR(n int) *legacyRR { return &legacyRR{n: n, holder: -1} }

func (a *legacyRR) step(req, grant []bool) {
	for i := range grant {
		grant[i] = false
	}
	start := a.priority
	if a.holder >= 0 {
		start = a.holder
	}
	granted := -1
	for k := 0; k < a.n; k++ {
		t := (start + k) % a.n
		if req[t] {
			granted = t
			break
		}
	}
	if granted < 0 {
		if a.holder >= 0 {
			a.priority = (a.holder + 1) % a.n
		}
		a.holder = -1
		return
	}
	a.holder = granted
	grant[granted] = true
}

// legacyFIFO is the seed's FIFO.StepInto: rising-edge enqueue in index
// order, head-indexed queue over a 2N backing array.
type legacyFIFO struct {
	n      int
	queue  []int
	head   int
	queued []bool
	prev   []bool
}

func newLegacyFIFO(n int) *legacyFIFO {
	return &legacyFIFO{
		n:      n,
		queue:  make([]int, 0, 2*n),
		queued: make([]bool, n),
		prev:   make([]bool, n),
	}
}

func (a *legacyFIFO) step(req, grant []bool) {
	for t := 0; t < a.n; t++ {
		if req[t] && !a.prev[t] && !a.queued[t] {
			a.queue = append(a.queue, t)
			a.queued[t] = true
		}
		a.prev[t] = req[t]
	}
	for a.head < len(a.queue) && !req[a.queue[a.head]] {
		a.queued[a.queue[a.head]] = false
		a.head++
	}
	if a.head == len(a.queue) {
		a.queue = a.queue[:0]
		a.head = 0
	} else if a.head >= a.n {
		a.queue = a.queue[:copy(a.queue, a.queue[a.head:])]
		a.head = 0
	}
	for i := range grant {
		grant[i] = false
	}
	if a.head < len(a.queue) {
		grant[a.queue[a.head]] = true
	}
}

// legacyPriority is the seed's Priority.StepInto: holder-sticky, else
// lowest-indexed requester.
type legacyPriority struct {
	n      int
	holder int
}

func newLegacyPriority(n int) *legacyPriority { return &legacyPriority{n: n, holder: -1} }

func (a *legacyPriority) step(req, grant []bool) {
	for i := range grant {
		grant[i] = false
	}
	if a.holder >= 0 && req[a.holder] {
		grant[a.holder] = true
		return
	}
	a.holder = -1
	for t := 0; t < a.n; t++ {
		if req[t] {
			a.holder = t
			grant[t] = true
			break
		}
	}
}

// legacyRandom is the seed's Random.StepInto: Galois LFSR (taps
// 0xB400), k-th requester by linear index scan.
type legacyRandom struct {
	n      int
	lfsr   uint16
	holder int
}

func newLegacyRandom(n int, seed uint16) *legacyRandom {
	if seed == 0 {
		seed = 1
	}
	return &legacyRandom{n: n, lfsr: seed, holder: -1}
}

func (a *legacyRandom) step(req, grant []bool) {
	for i := range grant {
		grant[i] = false
	}
	if a.holder >= 0 && req[a.holder] {
		grant[a.holder] = true
		return
	}
	a.holder = -1
	requesters := 0
	for t := 0; t < a.n; t++ {
		if req[t] {
			requesters++
		}
	}
	if requesters == 0 {
		return
	}
	lsb := a.lfsr & 1
	a.lfsr >>= 1
	if lsb != 0 {
		a.lfsr ^= 0xB400
	}
	k := int(a.lfsr) % requesters
	for t := 0; t < a.n; t++ {
		if req[t] {
			if k == 0 {
				a.holder = t
				grant[t] = true
				return
			}
			k--
		}
	}
}

// legacyWeighted is the seed's WeightedRoundRobin.StepInto (and, with
// uniform weights, its PreemptiveRoundRobin — the seed's own
// TestWRRMatchesPreemptiveUniform pins that equivalence): revoke a
// quantum-exhausted holder by masking its request for one scan.
type legacyWeighted struct {
	n       int
	weights []int
	inner   *legacyRR
	heldFor int
	masked  []bool
}

func newLegacyWeighted(n int, weights []int) *legacyWeighted {
	return &legacyWeighted{n: n, weights: weights, inner: newLegacyRR(n), masked: make([]bool, n)}
}

func (p *legacyWeighted) step(req, grant []bool) {
	holder := p.inner.holder
	othersWaiting := false
	for t, r := range req {
		if r && t != holder {
			othersWaiting = true
			break
		}
	}
	if holder >= 0 && req[holder] && othersWaiting && p.heldFor >= p.weights[holder] {
		copy(p.masked, req)
		p.masked[holder] = false
		p.inner.step(p.masked, grant)
		p.heldFor = legacyCurrentHold(grant)
		return
	}
	p.inner.step(req, grant)
	if newHolder := p.inner.holder; newHolder == holder && holder >= 0 && grant[holder] {
		p.heldFor++
	} else {
		p.heldFor = legacyCurrentHold(grant)
	}
}

func legacyCurrentHold(grants []bool) int {
	for _, g := range grants {
		if g {
			return 1
		}
	}
	return 0
}

// legacyHier is the seed's Hierarchical.StepInto: nested modulo scans
// over the cluster pointer and per-cluster member pointers.
type legacyHier struct {
	n      int
	groups int
	size   int
	holder int
	top    int
	leaf   []int
}

func newLegacyHier(n, groups int) *legacyHier {
	return &legacyHier{n: n, groups: groups, size: n / groups, holder: -1, leaf: make([]int, groups)}
}

func (p *legacyHier) step(req, grant []bool) {
	for i := range grant {
		grant[i] = false
	}
	if p.holder >= 0 && req[p.holder] {
		grant[p.holder] = true
		return
	}
	for gi := 0; gi < p.groups; gi++ {
		g := (p.top + gi) % p.groups
		base := g * p.size
		for mi := 0; mi < p.size; mi++ {
			m := (p.leaf[g] + mi) % p.size
			t := base + m
			if req[t] {
				grant[t] = true
				p.holder = t
				p.leaf[g] = (m + 1) % p.size
				p.top = (g + 1) % p.groups
				return
			}
		}
	}
	p.holder = -1
}

// newLegacy builds the frozen implementation for a policy spec, using
// the same kind:param grammar as arbiter.ParsePolicySpec.
func newLegacy(spec string, n int) (legacyStepper, error) {
	kind, param := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		kind, param = spec[:i], spec[i+1:]
	}
	switch kind {
	case "rr":
		return newLegacyRR(n), nil
	case "fifo":
		return newLegacyFIFO(n), nil
	case "priority":
		return newLegacyPriority(n), nil
	case "random":
		seed, err := strconv.ParseUint(param, 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad random seed %q: %v", param, err)
		}
		return newLegacyRandom(n, uint16(seed)), nil
	case "preemptive":
		k, err := strconv.Atoi(param)
		if err != nil {
			return nil, fmt.Errorf("bad preemptive maxHold %q: %v", param, err)
		}
		weights := make([]int, n)
		for i := range weights {
			weights[i] = k
		}
		return newLegacyWeighted(n, weights), nil
	case "wrr":
		parts := strings.Split(param, ",")
		weights := make([]int, n)
		if len(parts) == 1 {
			w, err := strconv.Atoi(parts[0])
			if err != nil {
				return nil, fmt.Errorf("bad wrr weight %q: %v", parts[0], err)
			}
			for i := range weights {
				weights[i] = w
			}
		} else {
			if len(parts) != n {
				return nil, fmt.Errorf("wrr weight list %q has %d entries for n=%d", param, len(parts), n)
			}
			for i, s := range parts {
				w, err := strconv.Atoi(s)
				if err != nil {
					return nil, fmt.Errorf("bad wrr weight %q: %v", s, err)
				}
				weights[i] = w
			}
		}
		return newLegacyWeighted(n, weights), nil
	case "hier":
		g, err := strconv.Atoi(param)
		if err != nil {
			return nil, fmt.Errorf("bad hier groups %q: %v", param, err)
		}
		return newLegacyHier(n, g), nil
	}
	return nil, fmt.Errorf("no legacy implementation for %q", kind)
}

// diffPolicySpecs are the behavioral policy specs the differential test
// covers — every refactored kind, with both uniform and per-task wrr
// weights. fsm and netlist were not rewritten (they still run the
// synthesized machines) and are pinned against the behavioral
// round-robin by TestRoundRobinFamilyIdentical in internal/arbiter.
func diffPolicySpecs(n int) []string {
	weights := make([]string, n)
	for i := range weights {
		weights[i] = strconv.Itoa(1 + i%3)
	}
	return []string{
		"rr", "fifo", "priority", "random:1", "random:777",
		"preemptive:1", "preemptive:4",
		"wrr:2", "wrr:" + strings.Join(weights, ","),
		"hier:2",
	}
}

// TestBitsetMatchesLegacyGrantStreams drives every behavioral policy
// spec against its frozen pre-bitset implementation under every default
// workload shape at N ∈ {2, 4, 16}, through the exact word-level path
// Drive and the simulator use (BitGenerator.NextBits feeding
// BitStepper.StepBits), and requires bit-identical request and grant
// words on every cycle.
func TestBitsetMatchesLegacyGrantStreams(t *testing.T) {
	const cycles = 4096
	workloads := append(DefaultWorkloads(), "silent")
	for _, n := range []int{2, 4, 16} {
		for _, pspec := range diffPolicySpecs(n) {
			for _, wspec := range workloads {
				legacy, err := newLegacy(pspec, n)
				if err != nil {
					t.Fatalf("N=%d %s: %v", n, pspec, err)
				}
				p, err := arbiter.NewPolicy(pspec, n)
				if err != nil {
					t.Fatalf("N=%d %s: %v", n, pspec, err)
				}
				stepper := arbiter.AsBitStepper(p)
				gL, err := NewGenerator(wspec, n, 1)
				if err != nil {
					t.Fatalf("N=%d %s: %v", n, wspec, err)
				}
				gB, err := NewGenerator(wspec, n, 1)
				if err != nil {
					t.Fatalf("N=%d %s: %v", n, wspec, err)
				}
				bg, ok := gB.(BitGenerator)
				if !ok {
					t.Fatalf("N=%d %s: generator does not implement BitGenerator", n, wspec)
				}

				reqL := make([]bool, n)
				grantL := make([]bool, n)
				var req, grant arbiter.BitVec
				for c := 0; c < cycles; c++ {
					// Both loops are closed: the generators react to
					// their own side's previous grant, so a divergence
					// cannot silently re-converge.
					gL.Next(reqL, grantL)
					legacy.step(reqL, grantL)
					req = bg.NextBits(grant)
					grant = stepper.StepBits(req)
					if wantReq := arbiter.PackBools(reqL); req != wantReq {
						t.Fatalf("N=%d %s under %s cycle %d: bitset req %064b, legacy %064b",
							n, pspec, wspec, c, req, wantReq)
					}
					if wantGrant := arbiter.PackBools(grantL); grant != wantGrant {
						t.Fatalf("N=%d %s under %s cycle %d: req %064b, bitset grant %064b, legacy %064b",
							n, pspec, wspec, c, req, grant, wantGrant)
					}
				}
			}
		}
	}
}
