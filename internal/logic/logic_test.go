package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCubeFromString(t *testing.T) {
	c, err := CubeFromString("1-0")
	if err != nil {
		t.Fatalf("CubeFromString: %v", err)
	}
	if c.Width() != 3 {
		t.Fatalf("width = %d, want 3", c.Width())
	}
	if c.Lit(0) != Pos || c.Lit(1) != DontCare || c.Lit(2) != Neg {
		t.Fatalf("lits = %v %v %v", c.Lit(0), c.Lit(1), c.Lit(2))
	}
	if got := c.String(); got != "1-0" {
		t.Fatalf("String = %q, want 1-0", got)
	}
}

func TestCubeFromStringInvalid(t *testing.T) {
	if _, err := CubeFromString("1x0"); err == nil {
		t.Fatal("expected error for invalid char")
	}
}

func TestCubeEval(t *testing.T) {
	c := MustCube("1-0")
	cases := []struct {
		in   []bool
		want bool
	}{
		{[]bool{true, false, false}, true},
		{[]bool{true, true, false}, true},
		{[]bool{true, true, true}, false},
		{[]bool{false, true, false}, false},
	}
	for _, tc := range cases {
		if got := c.Eval(tc.in); got != tc.want {
			t.Errorf("Eval(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestCubeNumLiterals(t *testing.T) {
	if got := MustCube("1-0").NumLiterals(); got != 2 {
		t.Fatalf("NumLiterals = %d, want 2", got)
	}
	if got := MustCube("---").NumLiterals(); got != 0 {
		t.Fatalf("universal NumLiterals = %d, want 0", got)
	}
}

func TestCubeContains(t *testing.T) {
	big := MustCube("1--")
	small := MustCube("1-0")
	if !big.Contains(small) {
		t.Error("1-- should contain 1-0")
	}
	if small.Contains(big) {
		t.Error("1-0 should not contain 1--")
	}
	if !big.Contains(big) {
		t.Error("cube should contain itself")
	}
	if big.Contains(MustCube("1-")) {
		t.Error("different widths should not contain")
	}
}

func TestCubeIntersects(t *testing.T) {
	if !MustCube("1--").Intersects(MustCube("-0-")) {
		t.Error("1-- and -0- intersect at 10x")
	}
	if MustCube("1--").Intersects(MustCube("0--")) {
		t.Error("1-- and 0-- are disjoint")
	}
}

func TestCubeMerge(t *testing.T) {
	a := MustCube("101")
	b := MustCube("100")
	m, ok := a.merge(b)
	if !ok {
		t.Fatal("101 and 100 should merge")
	}
	if m.String() != "10-" {
		t.Fatalf("merge = %q, want 10-", m.String())
	}
	if _, ok := MustCube("101").merge(MustCube("010")); ok {
		t.Error("cubes differing in >1 var should not merge")
	}
	if _, ok := MustCube("1-1").merge(MustCube("101")); ok {
		t.Error("don't-care mismatch should not merge")
	}
	if _, ok := MustCube("101").merge(MustCube("101")); ok {
		t.Error("identical cubes should not merge")
	}
}

func TestCoverAddContainment(t *testing.T) {
	cv := NewCover(3)
	cv.Add(MustCube("1--"))
	cv.Add(MustCube("1-0")) // contained, should be dropped
	if cv.Len() != 1 {
		t.Fatalf("Len = %d, want 1", cv.Len())
	}
}

func TestCoverEval(t *testing.T) {
	cv := MustCover(2, "1-", "-1")
	// OR of two variables.
	if cv.Eval([]bool{false, false}) {
		t.Error("00 should be false")
	}
	for _, in := range [][]bool{{true, false}, {false, true}, {true, true}} {
		if !cv.Eval(in) {
			t.Errorf("%v should be true", in)
		}
	}
}

func TestCoverMinterms(t *testing.T) {
	cv := MustCover(2, "11")
	ms := cv.Minterms()
	if len(ms) != 1 || ms[0] != 3 {
		t.Fatalf("Minterms = %v, want [3]", ms)
	}
	cv = MustCover(2, "--")
	if got := len(cv.Minterms()); got != 4 {
		t.Fatalf("universal cover minterms = %d, want 4", got)
	}
}

func TestEquivalent(t *testing.T) {
	a := MustCover(3, "11-", "1-1")
	b := MustCover(3, "1-1", "11-")
	if !Equivalent(a, b) {
		t.Error("reordered covers should be equivalent")
	}
	c := MustCover(3, "11-")
	if Equivalent(a, c) {
		t.Error("different functions should not be equivalent")
	}
}

func TestMinimizeXorStaysTwoCubes(t *testing.T) {
	// XOR has no adjacent minterms; QM must keep both cubes.
	on := MustCover(2, "10", "01")
	min := Minimize(on, nil)
	if !Equivalent(on, min) {
		t.Fatal("minimized XOR not equivalent")
	}
	if min.Len() != 2 {
		t.Fatalf("XOR cover size = %d, want 2", min.Len())
	}
}

func TestMinimizeCollapsesFullCube(t *testing.T) {
	// All four minterms of two variables collapse to the universal cube.
	on := MustCover(2, "00", "01", "10", "11")
	min := Minimize(on, nil)
	if min.Len() != 1 || min.Cubes()[0].NumLiterals() != 0 {
		t.Fatalf("full on-set should minimize to universal cube, got %v", min)
	}
}

func TestMinimizeWithDontCares(t *testing.T) {
	// on = {11}, dc = {10}: minimizer may use dc to produce "1-".
	on := MustCover(2, "11")
	dc := MustCover(2, "10")
	min := Minimize(on, dc)
	if min.Len() != 1 {
		t.Fatalf("cover size = %d, want 1", min.Len())
	}
	if min.Cubes()[0].String() != "1-" {
		t.Fatalf("cube = %q, want 1-", min.Cubes()[0].String())
	}
}

func TestMinimizeEmpty(t *testing.T) {
	min := Minimize(NewCover(3), nil)
	if min.Len() != 0 {
		t.Fatalf("empty cover should stay empty, got %d cubes", min.Len())
	}
}

func TestMinimizeClassic(t *testing.T) {
	// f = sum of minterms 0,1,2,5,6,7 over 3 vars (classic QM example);
	// minimal SOP has 3 cubes.
	on := MustCover(3, "000", "100", "010", "101", "011", "111")
	min := Minimize(on, nil)
	if !Equivalent(on, min) {
		t.Fatal("not equivalent after minimize")
	}
	if min.Len() > 3 {
		t.Fatalf("cover size = %d, want <= 3", min.Len())
	}
}

func randomCover(r *rand.Rand, width, cubes int) *Cover {
	cv := NewCover(width)
	for i := 0; i < cubes; i++ {
		c := NewCube(width)
		for v := 0; v < width; v++ {
			switch r.Intn(3) {
			case 0:
				c = c.WithLit(v, Pos)
			case 1:
				c = c.WithLit(v, Neg)
			}
		}
		cv.Add(c)
	}
	return cv
}

// Property: Minimize never changes the function and never grows the cover.
func TestMinimizeEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		width := 2 + r.Intn(5) // 2..6
		on := randomCover(r, width, 1+r.Intn(6))
		min := Minimize(on, nil)
		if !Equivalent(on, min) {
			t.Fatalf("trial %d: minimized cover not equivalent\non:\n%s\nmin:\n%s", trial, on, min)
		}
		if min.Len() > on.Len() {
			t.Fatalf("trial %d: cover grew from %d to %d cubes", trial, on.Len(), min.Len())
		}
	}
}

// Property: simplify (wide-width fallback) preserves the function.
func TestSimplifyEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		width := 2 + r.Intn(5)
		on := randomCover(r, width, 1+r.Intn(8))
		simp := simplify(on)
		if !Equivalent(on, simp) {
			t.Fatalf("trial %d: simplify changed function", trial)
		}
	}
}

// Property (testing/quick): cube containment implies eval implication.
func TestContainsImpliesEvalQuick(t *testing.T) {
	f := func(aBits, bBits uint16, inBits uint8) bool {
		const width = 4
		mk := func(bits uint16) Cube {
			c := NewCube(width)
			for i := 0; i < width; i++ {
				switch (bits >> (2 * uint(i))) & 3 {
				case 1:
					c = c.WithLit(i, Pos)
				case 2:
					c = c.WithLit(i, Neg)
				}
			}
			return c
		}
		a, b := mk(aBits), mk(bBits)
		in := make([]bool, width)
		for i := 0; i < width; i++ {
			in[i] = inBits&(1<<uint(i)) != 0
		}
		if a.Contains(b) && b.Eval(in) && !a.Eval(in) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): merge result covers exactly the union.
func TestMergeCoversUnionQuick(t *testing.T) {
	f := func(aBits, bBits uint16, inBits uint8) bool {
		const width = 4
		mk := func(bits uint16) Cube {
			c := NewCube(width)
			for i := 0; i < width; i++ {
				switch (bits >> (2 * uint(i))) & 3 {
				case 1:
					c = c.WithLit(i, Pos)
				case 2:
					c = c.WithLit(i, Neg)
				}
			}
			return c
		}
		a, b := mk(aBits), mk(bBits)
		m, ok := a.merge(b)
		if !ok {
			return true
		}
		in := make([]bool, width)
		for i := 0; i < width; i++ {
			in[i] = inBits&(1<<uint(i)) != 0
		}
		return m.Eval(in) == (a.Eval(in) || b.Eval(in))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverClone(t *testing.T) {
	cv := MustCover(3, "1-0", "01-")
	cl := cv.Clone()
	if !Equivalent(cv, cl) {
		t.Fatal("clone not equivalent")
	}
	cl.Add(MustCube("111"))
	if cv.Len() == cl.Len() {
		t.Fatal("mutating clone affected original")
	}
}

func TestNumLiteralsCover(t *testing.T) {
	cv := MustCover(3, "1-0", "01-")
	if got := cv.NumLiterals(); got != 4 {
		t.Fatalf("NumLiterals = %d, want 4", got)
	}
}
