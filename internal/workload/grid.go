package workload

import (
	"fmt"
	"strings"

	"sparcs/internal/arbiter"
	"sparcs/internal/sim"
)

// GridOptions parameterizes a policy×workload evaluation grid.
type GridOptions struct {
	// N is the arbiter size (default 6, the FFT case study's contended
	// arbiter).
	N int
	// Cycles is the run length per cell (default 200000).
	Cycles int
	// Seed derives every workload column's random stream (default 1).
	// The same seed gives every policy in a column the identical
	// arrival process, so rows are directly comparable.
	Seed uint64
}

func (o GridOptions) withDefaults() GridOptions {
	if o.N == 0 {
		o.N = 6
	}
	if o.Cycles == 0 {
		o.Cycles = 200_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// RunGrid drives every policy spec under every workload spec and
// returns one Metrics per cell in row-major order (policies × workloads,
// workloads fastest). A nil policies or workloads slice evaluates the
// full default list (DefaultPolicies / DefaultWorkloads). It is the
// spec-string front end of RunGridColumns.
func RunGrid(policies, workloads []string, opt GridOptions) ([]*Metrics, error) {
	if workloads == nil {
		workloads = DefaultWorkloads()
	}
	cols := make([]Column, len(workloads))
	for i, ws := range workloads {
		cols[i] = SpecColumn(ws)
	}
	return RunGridColumns(policies, cols, opt)
}

// RunGridColumns drives every policy spec under every workload column —
// textual specs via SpecColumn, measured request streams via
// FromArbiterTrace/TraceColumn — returning one Metrics per cell in
// row-major order (policies × columns, columns fastest). A nil policies
// slice evaluates DefaultPolicies. Cells are independent — each
// constructs its own policy and generator from the column recipe — and
// fan out across GOMAXPROCS workers via sim.ParallelFor; results and
// their order are fully deterministic.
//
// Policies and columns are validated up front (including size-dependent
// constraints like hier group divisibility and trace widths) so a bad
// entry fails fast instead of erroring from inside a worker.
func RunGridColumns(policies []string, cols []Column, opt GridOptions) ([]*Metrics, error) {
	if policies == nil {
		policies = DefaultPolicies()
	}
	if len(policies) == 0 || len(cols) == 0 {
		return nil, fmt.Errorf("workload: grid needs at least one policy and one workload")
	}
	opt = opt.withDefaults()
	specs := make([]*arbiter.PolicySpec, len(policies))
	for i, ps := range policies {
		sp, err := arbiter.ParsePolicySpec(ps)
		if err != nil {
			return nil, err
		}
		if _, err := sp.New(opt.N); err != nil {
			return nil, fmt.Errorf("workload: policy %q at N=%d: %w", ps, opt.N, err)
		}
		specs[i] = sp
	}
	for _, col := range cols {
		if col.New == nil {
			return nil, fmt.Errorf("workload: column %q has no generator factory", col.Name)
		}
		if _, err := col.New(opt.N, opt.Seed); err != nil {
			return nil, err
		}
	}

	cells := len(policies) * len(cols)
	out := make([]*Metrics, cells)
	errs := make([]error, cells)
	sim.ParallelFor(cells, func(idx int) {
		pi, wi := idx/len(cols), idx%len(cols)
		p, err := specs[pi].New(opt.N)
		if err != nil {
			errs[idx] = err
			return
		}
		// Column seed depends only on the workload, so every policy in
		// a column faces the same arrival process.
		g, err := cols[wi].New(opt.N, opt.Seed+uint64(wi)*0x9e3779b97f4a7c15)
		if err != nil {
			errs[idx] = err
			return
		}
		out[idx], errs[idx] = Drive(p, g, opt.Cycles)
	})
	for idx, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("workload: grid cell %s × %s: %w",
				policies[idx/len(cols)], cols[idx%len(cols)].Name, err)
		}
	}
	return out, nil
}

// FormatTable renders grid results as an aligned fairness/wait/
// utilization table, one row per cell in input order. The p50/p99
// columns are percentile wait upper bounds derived from the log2
// WaitHist buckets (see Metrics.PercentileWait).
func FormatTable(cells []*Metrics) string {
	var b strings.Builder
	pw, ww := len("policy"), len("workload")
	for _, m := range cells {
		if len(m.Policy) > pw {
			pw = len(m.Policy)
		}
		if len(m.Workload) > ww {
			ww = len(m.Workload)
		}
	}
	fmt.Fprintf(&b, "%-*s  %-*s  %6s  %6s  %5s  %9s  %5s  %5s  %8s  %8s  %s\n",
		pw, "policy", ww, "workload", "util", "demand", "jain",
		"mean_wait", "p50", "p99", "max_wait", "worst_ep", "violation")
	for _, m := range cells {
		viol := m.Violation
		if viol == "" {
			viol = "-"
		}
		fmt.Fprintf(&b, "%-*s  %-*s  %6.3f  %6.3f  %5.3f  %9.2f  %5d  %5d  %8d  %8d  %s\n",
			pw, m.Policy, ww, m.Workload,
			m.Utilization(), m.Demand(), m.Jain(),
			m.MeanWait(), m.PercentileWait(0.50), m.PercentileWait(0.99),
			m.MaxWait(), m.WorstEpisodes(), viol)
	}
	return b.String()
}
