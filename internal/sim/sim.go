// Package sim is the cycle-accurate multi-PE system simulator: it executes
// behavioral task programs against simulated memory banks, shared
// channels with receive-side registers, and arbiters, enforcing the
// paper's access protocol and detecting every class of sharing violation
// (simultaneous bank accesses, accesses without a grant, starvation,
// deadlock).
//
// Data genuinely moves: reads and writes hit per-segment storage, sends
// land in per-logical-channel registers, and OpTransform applies real
// functions, so arbitration bugs surface as corrupted values in addition
// to violation records.
package sim

import (
	"fmt"
	"sort"

	"sparcs/internal/arbiter"
	"sparcs/internal/behav"
	"sparcs/internal/partition"
	"sparcs/internal/taskgraph"
)

// Config describes one stage's simulation.
type Config struct {
	Graph *taskgraph.Graph
	// Tasks in this stage.
	Tasks []string
	// Programs holds each task's (already rewritten) program.
	Programs map[string]behav.Program
	// Arbiters lists the stage's arbiter instances.
	Arbiters []partition.ArbiterSpec
	// ResourceOfSegment maps segments to their bank resource name; absent
	// segments are private (never conflict-checked).
	ResourceOfSegment map[string]string
	// ResourceOfChannel maps logical channels to physical channel
	// resources ("" or absent = on-chip, conflict-free).
	ResourceOfChannel map[string]string
	// NewPolicy constructs the arbiter implementation for n request
	// lines; nil uses the behavioral round-robin. Substituting
	// arbiter.NewFSMPolicy or a netlist-backed policy simulates the
	// actual generated hardware.
	NewPolicy func(n int) arbiter.Policy
	// MaxCycles bounds the run (deadlock watchdog). 0 means 10 million.
	MaxCycles int
	// Memory carries segment contents across stages; nil starts blank.
	Memory *Memory
}

// Memory is the persistent segment storage shared across temporal
// partitions (physical banks retain data over reconfiguration).
type Memory struct {
	segs map[string]map[int]int64
}

// NewMemory returns empty storage.
func NewMemory() *Memory { return &Memory{segs: map[string]map[int]int64{}} }

// Read returns mem[segment][addr] (0 when unwritten).
func (m *Memory) Read(segment string, addr int) int64 {
	if s, ok := m.segs[segment]; ok {
		return s[addr]
	}
	return 0
}

// Write stores mem[segment][addr] = v.
func (m *Memory) Write(segment string, addr int, v int64) {
	s, ok := m.segs[segment]
	if !ok {
		s = map[int]int64{}
		m.segs[segment] = s
	}
	s[addr] = v
}

// Snapshot returns a sorted dump of one segment for assertions.
func (m *Memory) Snapshot(segment string) map[int]int64 {
	out := map[int]int64{}
	for k, v := range m.segs[segment] {
		out[k] = v
	}
	return out
}

// Violation records one sharing error.
type Violation struct {
	Cycle    int
	Resource string
	Tasks    []string
	Kind     string // "port-conflict", "no-grant", "starvation"
}

func (v Violation) String() string {
	return fmt.Sprintf("cycle %d: %s on %s by %v", v.Cycle, v.Kind, v.Resource, v.Tasks)
}

// Stats is the outcome of one stage simulation.
type Stats struct {
	Cycles          int
	Done            bool
	TaskFinish      map[string]int
	WaitCycles      map[string]int
	GrantsByRes     map[string]int
	MemReads        int
	MemWrites       int
	ChannelSends    int
	Violations      []Violation
	ArbiterTraces   map[string][]arbiter.TraceStep
	PerTaskOverhead map[string]int
}

type taskState struct {
	name    string
	prog    behav.Program
	iter    int
	pc      int
	wait    int // remaining compute cycles
	buf     []int64
	done    bool
	finish  int // cycle the task completed in (valid when done)
	started bool
}

type chanReg struct {
	valid bool
	value int64
}

// Run simulates one stage to completion (or MaxCycles).
func Run(cfg Config) (*Stats, error) {
	maxCycles := cfg.MaxCycles
	if maxCycles <= 0 {
		maxCycles = 10_000_000
	}
	mem := cfg.Memory
	if mem == nil {
		mem = NewMemory()
	}
	newPolicy := cfg.NewPolicy
	if newPolicy == nil {
		newPolicy = func(n int) arbiter.Policy { return arbiter.NewRoundRobin(n) }
	}

	// Arbiter instances and request-line plumbing.
	type arbInst struct {
		spec    partition.ArbiterSpec
		policy  arbiter.Policy
		index   map[string]int // task -> line
		req     []bool
		granted map[string]bool
		trace   []arbiter.TraceStep
	}
	arbs := map[string]*arbInst{}
	for _, spec := range cfg.Arbiters {
		pol := newPolicy(spec.N())
		ai := &arbInst{
			spec:    spec,
			policy:  pol,
			index:   map[string]int{},
			req:     make([]bool, spec.N()),
			granted: map[string]bool{},
		}
		for i, t := range spec.Members {
			ai.index[t] = i
		}
		arbs[spec.Resource] = ai
	}

	tasks := make([]*taskState, 0, len(cfg.Tasks))
	byName := map[string]*taskState{}
	for _, name := range cfg.Tasks {
		prog, ok := cfg.Programs[name]
		if !ok {
			return nil, fmt.Errorf("sim: no program for task %s", name)
		}
		ts := &taskState{name: name, prog: prog}
		tasks = append(tasks, ts)
		byName[name] = ts
	}

	// depsDone reports whether all in-stage dependencies completed in a
	// strictly earlier cycle — a task must not overlap its predecessor's
	// final access.
	depsDone := func(ts *taskState, cycle int) bool {
		for _, d := range cfg.Graph.TaskByName(ts.name).Deps {
			if dep, inStage := byName[d]; inStage && (!dep.done || dep.finish >= cycle) {
				return false
			}
		}
		return true
	}

	chans := map[string]*chanReg{}
	for _, c := range cfg.Graph.Channels {
		chans[c.Name] = &chanReg{}
	}

	stats := &Stats{
		TaskFinish:      map[string]int{},
		WaitCycles:      map[string]int{},
		GrantsByRes:     map[string]int{},
		ArbiterTraces:   map[string][]arbiter.TraceStep{},
		PerTaskOverhead: map[string]int{},
	}

	type pendingSend struct {
		channel string
		value   int64
	}

	cycle := 0
	for ; cycle < maxCycles; cycle++ {
		allDone := true
		for _, ts := range tasks {
			if !ts.done {
				allDone = false
				break
			}
		}
		if allDone {
			stats.Done = true
			break
		}

		// Phase 1: arbiters sample request lines (set by earlier cycles)
		// and issue grants for this cycle.
		resNames := make([]string, 0, len(arbs))
		for r := range arbs {
			resNames = append(resNames, r)
		}
		sort.Strings(resNames)
		for _, r := range resNames {
			ai := arbs[r]
			grants := ai.policy.Step(ai.req)
			for t := range ai.granted {
				delete(ai.granted, t)
			}
			for i, gr := range grants {
				if gr {
					ai.granted[ai.spec.Members[i]] = true
					stats.GrantsByRes[r]++
				}
			}
			ai.trace = append(ai.trace, arbiter.TraceStep{
				Req:   append([]bool(nil), ai.req...),
				Grant: append([]bool(nil), grants...),
			})
		}

		// Phase 2: tasks execute one cycle each.
		bankAccess := map[string][]string{} // resource -> tasks touching it this cycle
		var sends []pendingSend
		for _, ts := range tasks {
			if ts.done {
				continue
			}
			if !ts.started {
				if !depsDone(ts, cycle) {
					continue
				}
				ts.started = true
			}
			// Skip zero-time instructions (satisfied grant waits).
			for {
				in, ok := current(ts)
				if !ok {
					ts.done = true
					ts.finish = cycle
					stats.TaskFinish[ts.name] = cycle
					break
				}
				if in.Op == behav.OpWaitGrant {
					ai := arbs[in.Res]
					if ai != nil && ai.granted[ts.name] {
						advance(ts)
						continue
					}
					if ai == nil {
						// Resource not arbitrated this stage; wait is void.
						advance(ts)
						continue
					}
					stats.WaitCycles[ts.name]++
					break // blocked this cycle
				}
				break
			}
			if ts.done {
				continue
			}
			in, ok := current(ts)
			if !ok || in.Op == behav.OpWaitGrant {
				continue
			}

			switch in.Op {
			case behav.OpCompute:
				if ts.wait == 0 {
					ts.wait = in.N
				}
				ts.wait--
				if ts.wait == 0 {
					advance(ts)
				}
			case behav.OpTransform:
				if ts.wait == 0 {
					ts.wait = in.Cycles
					if ts.wait == 0 {
						ts.wait = 1
					}
				}
				ts.wait--
				if ts.wait == 0 {
					n := in.N
					if n > len(ts.buf) {
						n = len(ts.buf)
					}
					args := append([]int64(nil), ts.buf[:n]...)
					ts.buf = append([]int64(nil), ts.buf[n:]...)
					if in.Fn != nil {
						ts.buf = append(ts.buf, in.Fn(args)...)
					}
					advance(ts)
				}
			case behav.OpRead, behav.OpWrite:
				res := cfg.ResourceOfSegment[in.Res]
				if res != "" {
					bankAccess[res] = append(bankAccess[res], ts.name)
					if ai := arbs[res]; ai != nil {
						if _, isMember := ai.index[ts.name]; isMember && !ai.granted[ts.name] {
							stats.Violations = append(stats.Violations, Violation{
								Cycle: cycle, Resource: res, Tasks: []string{ts.name}, Kind: "no-grant",
							})
						}
					}
				}
				if in.Op == behav.OpRead {
					ts.buf = append(ts.buf, mem.Read(in.Res, in.EffAddr(ts.iter)))
					stats.MemReads++
				} else {
					v := in.Val
					if len(ts.buf) > 0 {
						v = ts.buf[0]
						ts.buf = append([]int64(nil), ts.buf[1:]...)
					}
					mem.Write(in.Res, in.EffAddr(ts.iter), v)
					stats.MemWrites++
				}
				advance(ts)
			case behav.OpSend:
				res := cfg.ResourceOfChannel[in.Res]
				if res != "" {
					bankAccess[res] = append(bankAccess[res], ts.name)
					if ai := arbs[res]; ai != nil {
						if _, isMember := ai.index[ts.name]; isMember && !ai.granted[ts.name] {
							stats.Violations = append(stats.Violations, Violation{
								Cycle: cycle, Resource: res, Tasks: []string{ts.name}, Kind: "no-grant",
							})
						}
					}
				}
				v := in.Val
				if len(ts.buf) > 0 {
					v = ts.buf[0]
					ts.buf = append([]int64(nil), ts.buf[1:]...)
				}
				sends = append(sends, pendingSend{channel: in.Res, value: v})
				stats.ChannelSends++
				advance(ts)
			case behav.OpRecv:
				reg := chans[in.Res]
				if reg == nil {
					return nil, fmt.Errorf("sim: task %s receives on unknown channel %s", ts.name, in.Res)
				}
				if reg.valid {
					ts.buf = append(ts.buf, reg.value)
					advance(ts)
				}
				// Not valid yet: block (consume the cycle).
			case behav.OpReq:
				if ai := arbs[in.Res]; ai != nil {
					if idx, isMember := ai.index[ts.name]; isMember {
						ai.req[idx] = true
					}
				}
				advance(ts)
			case behav.OpRelease:
				if ai := arbs[in.Res]; ai != nil {
					if idx, isMember := ai.index[ts.name]; isMember {
						ai.req[idx] = false
					}
				}
				advance(ts)
			default:
				return nil, fmt.Errorf("sim: task %s: unsupported op %v", ts.name, in.Op)
			}
			if _, stillRunning := current(ts); !stillRunning {
				ts.done = true
				ts.finish = cycle
				stats.TaskFinish[ts.name] = cycle
			}
		}

		// Phase 3: port-conflict detection and channel register updates.
		for res, users := range bankAccess {
			if len(users) > 1 {
				stats.Violations = append(stats.Violations, Violation{
					Cycle: cycle, Resource: res, Tasks: users, Kind: "port-conflict",
				})
			}
		}
		for _, s := range sends {
			reg := chans[s.channel]
			reg.valid = true
			reg.value = s.value
		}
	}
	stats.Cycles = cycle
	for r, ai := range arbs {
		stats.ArbiterTraces[r] = ai.trace
	}
	if !stats.Done {
		stats.Violations = append(stats.Violations, Violation{
			Cycle: cycle, Resource: "", Kind: "deadlock-or-timeout",
		})
	}
	return stats, nil
}

// current returns the instruction at the task's pc, accounting for body
// repetition; ok=false when the program is complete.
func current(ts *taskState) (behav.Instr, bool) {
	if len(ts.prog.Body) == 0 || ts.iter >= ts.prog.Iterations() {
		return behav.Instr{}, false
	}
	return ts.prog.Body[ts.pc], true
}

// advance moves to the next instruction, wrapping iterations.
func advance(ts *taskState) {
	ts.pc++
	if ts.pc >= len(ts.prog.Body) {
		ts.pc = 0
		ts.iter++
	}
}
