package analysis_test

import (
	"testing"

	"sparcs/internal/analysis"
)

// TestSelfApplication runs the full suite over the real module and
// requires a clean bill: every finding is either fixed or carries a
// reasoned //sparcs:ignore. This is the same check CI's sparcsvet step
// performs, enforced from the tier-1 test suite so it cannot rot.
func TestSelfApplication(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	m, err := analysis.LoadPackages("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	all := analysis.All()
	diags := analysis.ApplyIgnores(m, all, analysis.RunAnalyzers(m, all), true)
	for _, d := range diags {
		t.Errorf("%s: %s [%s]", m.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
}
