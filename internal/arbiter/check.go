package arbiter

import "fmt"

// TraceStep records one arbitration cycle for property checking.
type TraceStep struct {
	Req   []bool
	Grant []bool
}

// CheckMutualExclusion verifies that no cycle grants more than one task
// (paper Section 4.1: "each state acknowledges at most one request").
func CheckMutualExclusion(steps []TraceStep) error {
	for c, s := range steps {
		granted := 0
		for _, g := range s.Grant {
			if g {
				granted++
			}
		}
		if granted > 1 {
			return fmt.Errorf("arbiter: cycle %d grants %d tasks, violating mutual exclusion", c, granted)
		}
	}
	return nil
}

// CheckGrantImpliesRequest verifies that grants only go to requesters.
func CheckGrantImpliesRequest(steps []TraceStep) error {
	for c, s := range steps {
		for t, g := range s.Grant {
			if g && !s.Req[t] {
				return fmt.Errorf("arbiter: cycle %d grants idle task %d", c, t+1)
			}
		}
	}
	return nil
}

// CheckWorkConserving verifies that every cycle with at least one request
// issues exactly one grant — the round-robin FSM's deadlock-freedom
// argument: the resource is never idle while wanted.
func CheckWorkConserving(steps []TraceStep) error {
	for c, s := range steps {
		anyReq, anyGrant := false, false
		for _, r := range s.Req {
			anyReq = anyReq || r
		}
		for _, g := range s.Grant {
			anyGrant = anyGrant || g
		}
		if anyReq && !anyGrant {
			return fmt.Errorf("arbiter: cycle %d has pending requests but no grant", c)
		}
		if !anyReq && anyGrant {
			return fmt.Errorf("arbiter: cycle %d grants with no requests", c)
		}
	}
	return nil
}

// MaxWaitEpisodes measures, for each task, the worst number of distinct
// grant episodes to other tasks that elapse while the task requests
// continuously before being served. A grant episode is a maximal run of
// cycles granted to one task.
//
// The paper's round-robin bound (Section 4.1) is N-1 episodes: a requester
// waits for at most all other tasks to be served once.
func MaxWaitEpisodes(n int, steps []TraceStep) []int {
	worst := make([]int, n)
	waiting := make([]bool, n)
	episodes := make([]int, n)
	prevHolder := -1
	for _, s := range steps {
		holder := -1
		for t, g := range s.Grant {
			if g {
				holder = t
			}
		}
		newEpisode := holder >= 0 && holder != prevHolder
		for t := 0; t < n; t++ {
			switch {
			case s.Grant[t]:
				if episodes[t] > worst[t] {
					worst[t] = episodes[t]
				}
				waiting[t] = false
				episodes[t] = 0
			case s.Req[t]:
				if !waiting[t] {
					waiting[t] = true
					episodes[t] = 0
				}
				if newEpisode {
					episodes[t]++
				}
			default:
				waiting[t] = false
				episodes[t] = 0
			}
		}
		prevHolder = holder
	}
	// Unserved tasks at trace end still report their accumulated wait.
	for t := 0; t < n; t++ {
		if waiting[t] && episodes[t] > worst[t] {
			worst[t] = episodes[t]
		}
	}
	return worst
}

// CheckBoundedWait verifies the round-robin bound: no continuously
// requesting task waits through more than N-1 grant episodes to others.
func CheckBoundedWait(n int, steps []TraceStep) error {
	for t, w := range MaxWaitEpisodes(n, steps) {
		if w > n-1 {
			return fmt.Errorf("arbiter: task %d waited %d grant episodes, bound is %d", t+1, w, n-1)
		}
	}
	return nil
}

// CheckAll runs every safety and fairness check appropriate to the
// round-robin arbiter.
func CheckAll(n int, steps []TraceStep) error {
	if err := CheckMutualExclusion(steps); err != nil {
		return err
	}
	if err := CheckGrantImpliesRequest(steps); err != nil {
		return err
	}
	if err := CheckWorkConserving(steps); err != nil {
		return err
	}
	return CheckBoundedWait(n, steps)
}
