package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewTypesInfo returns a types.Info with every map the analyzers
// consult populated — for callers (the vet-mode driver) that run their
// own type check.
func NewTypesInfo() *types.Info { return typesInfo() }

// NewUnitModule wraps one externally type-checked package as a
// single-root Module — the `go vet -vettool` unit mode, where the
// driver sees one compilation unit at a time. src maps file names (as
// registered in fset) to source bytes.
func NewUnitModule(fset *token.FileSet, path string, files []*ast.File, pkg *types.Package, info *types.Info, src map[string][]byte) *Module {
	p := &Package{
		Path:  path,
		Root:  true,
		Files: files,
		Pkg:   pkg,
		Info:  info,
		Src:   src,
		Funcs: map[*types.Func]*ast.FuncDecl{},
		fset:  fset,
	}
	indexFuncs(p)
	return &Module{Fset: fset, Pkgs: map[string]*Package{path: p}}
}
