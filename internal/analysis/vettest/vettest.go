// Package vettest runs internal/analysis analyzers over seeded
// testdata trees and checks their diagnostics against `// want`
// expectations, in the manner of golang.org/x/tools/go/analysis/
// analysistest (re-implemented on the standard library, like the
// framework it tests).
//
// Testdata layout is GOPATH-style: <testdata>/src/<importpath>/*.go.
// An expectation is a trailing comment on the offending line:
//
//	x := make([]int, n) // want `make allocates`
//
// with one or more backquoted regexps; every diagnostic on a line must
// match one of that line's regexps and every regexp must match at least
// one diagnostic. //sparcs:ignore suppression (and the driver's
// malformed/unused-ignore reporting) is applied before matching, so
// ignore semantics are testable with the same machinery.
package vettest

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"sparcs/internal/analysis"
)

var wantRE = regexp.MustCompile("`([^`]*)`")

// Run loads the named packages from testdata/src, applies the analyzer
// (plus ignore processing), and reports expectation mismatches on t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	m, err := analysis.LoadTree(filepath.Join(testdata, "src"), paths...)
	if err != nil {
		t.Fatalf("loading %s: %v", testdata, err)
	}
	active := []*analysis.Analyzer{a}
	diags := analysis.ApplyIgnores(m, active, analysis.RunAnalyzers(m, active), true)

	type lineKey struct {
		file string
		line int
	}
	type expectation struct {
		re      *regexp.Regexp
		pos     string
		matched bool
	}
	wants := map[lineKey][]*expectation{}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					// The expectation either is the whole comment or follows a
					// nested "//" (so it can share a line with //sparcs:ignore,
					// which a single //-comment would otherwise swallow).
					var wantPart string
					if trimmed := strings.TrimSpace(text); strings.HasPrefix(trimmed, "want ") {
						wantPart = trimmed
					} else if j := strings.Index(text, "// want "); j >= 0 {
						wantPart = text[j+3:]
					} else {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					groups := wantRE.FindAllStringSubmatch(wantPart, -1)
					if len(groups) == 0 {
						t.Errorf("%s: `want` comment without a backquoted regexp", pos)
						continue
					}
					for _, g := range groups {
						re, err := regexp.Compile(g[1])
						if err != nil {
							t.Errorf("%s: bad want regexp %q: %v", pos, g[1], err)
							continue
						}
						k := lineKey{pos.Filename, pos.Line}
						wants[k] = append(wants[k], &expectation{re: re, pos: pos.String()})
					}
				}
			}
		}
	}

	for _, d := range diags {
		pos := m.Fset.Position(d.Pos)
		k := lineKey{pos.Filename, pos.Line}
		matched := false
		for _, w := range wants[k] {
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", pos, d.Message, d.Analyzer)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", w.pos, w.re)
			}
		}
	}
}
