package behav

import "testing"

func TestHelpers(t *testing.T) {
	if in := Compute(5); in.Op != OpCompute || in.N != 5 {
		t.Fatalf("Compute = %+v", in)
	}
	if in := Read("S", 3); in.Op != OpRead || in.Res != "S" || in.Addr != 3 {
		t.Fatalf("Read = %+v", in)
	}
	if in := ReadStride("S", 3, 4); in.Stride != 4 {
		t.Fatalf("ReadStride = %+v", in)
	}
	if in := Write("S", 1); in.Op != OpWrite {
		t.Fatalf("Write = %+v", in)
	}
	if in := WriteImm("S", 1, 9); in.Val != 9 {
		t.Fatalf("WriteImm = %+v", in)
	}
	if in := SendImm("c", 7); in.Op != OpSend || in.Val != 7 {
		t.Fatalf("SendImm = %+v", in)
	}
	if in := Recv("c"); in.Op != OpRecv {
		t.Fatalf("Recv = %+v", in)
	}
	if in := Req("r"); in.Op != OpReq {
		t.Fatalf("Req = %+v", in)
	}
	if in := WaitGrant("r"); in.Op != OpWaitGrant {
		t.Fatalf("WaitGrant = %+v", in)
	}
	if in := Release("r"); in.Op != OpRelease {
		t.Fatalf("Release = %+v", in)
	}
}

func TestEffAddr(t *testing.T) {
	in := ReadStride("S", 2, 4)
	if got := in.EffAddr(0); got != 2 {
		t.Fatalf("EffAddr(0) = %d", got)
	}
	if got := in.EffAddr(3); got != 14 {
		t.Fatalf("EffAddr(3) = %d", got)
	}
	if got := Read("S", 2).EffAddr(10); got != 2 {
		t.Fatalf("strideless EffAddr = %d", got)
	}
}

func TestProgramIterations(t *testing.T) {
	if (Program{}).Iterations() != 1 {
		t.Fatal("empty Repeat should mean one iteration")
	}
	if (Program{Repeat: 5}).Iterations() != 5 {
		t.Fatal("Repeat should pass through")
	}
}

func TestTransform(t *testing.T) {
	fn := func(in []int64) []int64 { return []int64{in[0] + in[1]} }
	in := Transform(2, 7, fn)
	if in.Op != OpTransform || in.N != 2 || in.Cycles != 7 {
		t.Fatalf("Transform = %+v", in)
	}
	if got := in.Fn([]int64{3, 4}); len(got) != 1 || got[0] != 7 {
		t.Fatalf("Fn = %v", got)
	}
}

func TestOpStrings(t *testing.T) {
	ops := []Op{OpCompute, OpRead, OpWrite, OpSend, OpRecv, OpReq, OpWaitGrant, OpRelease, OpTransform}
	seen := map[string]bool{}
	for _, op := range ops {
		s := op.String()
		if s == "" || seen[s] {
			t.Fatalf("op %d has bad or duplicate name %q", int(op), s)
		}
		seen[s] = true
	}
}
