// Package fft implements the paper's Section 5 case study application:
// the 4x4-pixel two-dimensional FFT, as reference floating-point math, as
// fixed-point transforms executed by the hardware simulation, and as the
// USM taskgraph of Figure 10 with the Wildforce mapping.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT computes the in-order radix-2 decimation-in-time FFT of x, whose
// length must be a power of two. The input is not modified.
func FFT(x []complex128) ([]complex128, error) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: length %d is not a power of two", n)
	}
	out := make([]complex128, n)
	copy(out, x)
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			out[i], out[j] = out[j], out[i]
		}
		mask := n >> 1
		for ; j&mask != 0; mask >>= 1 {
			j &^= mask
		}
		j |= mask
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := -2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := cmplx.Exp(complex(0, step*float64(k)))
				a := out[start+k]
				b := out[start+k+half] * w
				out[start+k] = a + b
				out[start+k+half] = a - b
			}
		}
	}
	return out, nil
}

// DFT computes the discrete Fourier transform directly (O(n^2)), the
// golden model for FFT tests.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

// FFT2D computes the two-dimensional FFT of a square image (rows then
// columns). The image must be n x n with n a power of two.
func FFT2D(img [][]complex128) ([][]complex128, error) {
	n := len(img)
	out := make([][]complex128, n)
	for r := 0; r < n; r++ {
		if len(img[r]) != n {
			return nil, fmt.Errorf("fft: image is not square")
		}
		row, err := FFT(img[r])
		if err != nil {
			return nil, err
		}
		out[r] = row
	}
	col := make([]complex128, n)
	for c := 0; c < n; c++ {
		for r := 0; r < n; r++ {
			col[r] = out[r][c]
		}
		f, err := FFT(col)
		if err != nil {
			return nil, err
		}
		for r := 0; r < n; r++ {
			out[r][c] = f[r]
		}
	}
	return out, nil
}
