// Package core ties the reproduction together into the SPARCS-like flow
// of the paper's Figure 9: taskgraph in, temporal partitioning, spatial
// partitioning, memory mapping, channel routing, automatic resource
// arbitration, and cycle-accurate simulation out.
package core

import (
	"fmt"
	"sort"
	"strings"

	"sparcs/internal/arbinsert"
	"sparcs/internal/arbiter"
	"sparcs/internal/behav"
	"sparcs/internal/partition"
	"sparcs/internal/rc"
	"sparcs/internal/sim"
	"sparcs/internal/taskgraph"
)

// Options configures the flow.
type Options struct {
	// Partition options (fixed stages, pin budgets, arbiter area model).
	Partition partition.Options
	// Insert options (M accesses per grant, conservative mode).
	Insert arbinsert.Options
	// NewPolicy picks the arbiter implementation for simulation; nil uses
	// the behavioral round-robin.
	NewPolicy func(n int) arbiter.Policy
	// NewPolicyWidened, when non-nil, constructs policies for arbiters
	// widened by background contention (see sim.Config.NewPolicyWidened):
	// it receives the member line count alongside the total simulated
	// width so layout-sensitive policies (the hierarchical tree) can keep
	// their member-line structure stable under widening. Nil widens via
	// NewPolicy(width).
	NewPolicyWidened func(members, width int) arbiter.Policy
	// MaxCyclesPerStage bounds each stage simulation.
	MaxCyclesPerStage int
	// DisableTraces skips per-cycle arbiter trace recording — the one
	// part of simulation whose memory cost grows with cycle count.
	// Sweeps that only need cycle/violation/grant statistics set this.
	DisableTraces bool
	// Contention injects background phantom requesters alongside the
	// compiled tasks: each spec attaches a workload generator to the
	// named arbiter in every stage where the resource is arbitrated.
	// NewPolicy then receives the widened line count (members plus
	// phantom lines) for those arbiters.
	Contention []ContentionSpec
	// Shared injects correlated multi-resource background sources: one
	// generator spans several arbiters with hold-A-while-waiting-on-B
	// semantics, wired into every stage that arbitrates ALL its
	// resources (see SharedContentionSpec). Cross-resource overlap and
	// wait statistics land in each stage's sim.Stats.Shared.
	Shared []SharedContentionSpec
	// ContentionSeed seeds the background generators' random streams
	// (0 means 1). Runs are deterministic for a given seed.
	ContentionSeed uint64
	// UnsafeProtocols skips the acquisition-order deadlock check on the
	// Shared specs (CheckProtocols): cyclic hold-and-wait protocols run
	// anyway, guarded only by the MaxCyclesPerStage watchdog. This is
	// the deadlock experiments' escape hatch; leave it false everywhere
	// else.
	UnsafeProtocols bool
	// CaptureOnly restricts per-cycle arbiter trace recording to the
	// named resources when non-nil (DisableTraces false): a run that
	// only needs one resource's request stream pays for one. Nil keeps
	// the historical record-everything default.
	CaptureOnly []string
}

// StagePlan is one compiled temporal partition.
type StagePlan struct {
	Stage    *partition.Stage
	Routes   []partition.PhysChannel
	Inserted *arbinsert.Result
}

// Design is a fully compiled system ready for simulation.
type Design struct {
	Graph  *taskgraph.Graph
	Board  *rc.Board
	Stages []*StagePlan
}

// Compile runs partitioning, channel routing, and arbiter insertion.
// programs supplies the raw (unarbitrated) behavior of every task.
func Compile(g *taskgraph.Graph, board *rc.Board, programs map[string]behav.Program, opts Options) (*Design, error) {
	// Refuse deadlock-prone acquisition orders at build time: a design
	// compiled against a cyclic hold-and-wait protocol would only ever
	// "work" by timing out its watchdog.
	if !opts.UnsafeProtocols {
		if err := CheckProtocols(opts.Shared); err != nil {
			return nil, err
		}
	}
	// Contention-aware partitioning: unless the caller set an explicit
	// estimate, price each arbiter at the width it will be SIMULATED at
	// (members + phantom lines + shared lanes), not its member width, so
	// the memory mapper's area model matches the widened hardware.
	if opts.Partition.ExpectedContention == nil {
		if extra := expectedLines(opts); len(extra) > 0 {
			opts.Partition.ExpectedContention = extra
		}
	}
	stages, err := partition.Temporal(g, board, opts.Partition)
	if err != nil {
		return nil, err
	}
	d := &Design{Graph: g, Board: board}
	for _, st := range stages {
		routes, err := partition.RouteChannels(g, board, st)
		if err != nil {
			return nil, err
		}
		ins, err := arbinsert.Insert(g, board, st, routes, programs, opts.Insert)
		if err != nil {
			return nil, err
		}
		d.Stages = append(d.Stages, &StagePlan{Stage: st, Routes: routes, Inserted: ins})
	}
	return d, nil
}

// StageAreas returns each stage's resident CLB footprint under the given
// partition options' area model (tasks plus contention-widened arbiters;
// see partition.StageArea).
func (d *Design) StageAreas(opts partition.Options) []int {
	areas := make([]int, len(d.Stages))
	for i, sp := range d.Stages {
		areas[i] = partition.StageArea(d.Graph, sp.Stage, opts)
	}
	return areas
}

// FootprintCLBs is the design's peak per-stage CLB footprint — the fabric
// region a dynamic scheduler must reserve to host the design through all
// its reconfiguration stages.
func (d *Design) FootprintCLBs(opts partition.Options) int {
	max := 0
	for _, a := range d.StageAreas(opts) {
		if a > max {
			max = a
		}
	}
	return max
}

// StageStats pairs a stage with its simulation outcome.
type StageStats struct {
	Stage *StagePlan
	Stats *sim.Stats
}

// RunResult is the outcome of simulating every stage in sequence over a
// shared memory image.
type RunResult struct {
	Stages      []StageStats
	TotalCycles int
	Memory      *sim.Memory
}

// Violations flattens all stages' violations.
func (r *RunResult) Violations() []sim.Violation {
	var out []sim.Violation
	for _, s := range r.Stages {
		out = append(out, s.Stats.Violations...)
	}
	return out
}

// Arbiters lists every arbiter instantiated across stages as
// "stage:resource:N" strings, for compact assertions and reports.
func (d *Design) Arbiters() []string {
	var out []string
	for si, sp := range d.Stages {
		for _, a := range sp.Inserted.Arbiters {
			out = append(out, fmt.Sprintf("%d:%s:%d", si, a.Resource, a.N()))
		}
	}
	sort.Strings(out)
	return out
}

// Simulate runs every stage in order, carrying memory contents across
// reconfigurations (physical banks retain data; the host restages
// streaming windows).
func Simulate(d *Design, mem *sim.Memory, opts Options) (*RunResult, error) {
	if mem == nil {
		mem = sim.NewMemory()
	}
	if err := validateContention(d, opts.Contention); err != nil {
		return nil, err
	}
	if err := validateShared(d, opts.Shared); err != nil {
		return nil, err
	}
	// Experiments compose contention per run, after Compile has already
	// vetted the build-time specs — so the acquisition-order check runs
	// here too, against whatever protocol this run actually injects.
	if !opts.UnsafeProtocols {
		if err := CheckProtocols(opts.Shared); err != nil {
			return nil, err
		}
	}
	res := &RunResult{Memory: mem}
	for _, sp := range d.Stages {
		stats, err := simulateStage(d, sp, mem, opts)
		if err != nil {
			return nil, err
		}
		res.Stages = append(res.Stages, StageStats{Stage: sp, Stats: stats})
		res.TotalCycles += stats.Cycles
	}
	return res, nil
}

// SimulateStage runs one temporal partition of a compiled design over the
// given memory image, with exactly the option composition Simulate uses
// for that stage (same contention/shared seed derivation, same config).
// This is the entry point for schedulers that interleave stages of many
// designs on one fabric (internal/scenario): a design's stage i executed
// here is cycle-identical to its execution inside Simulate.
func SimulateStage(d *Design, si int, mem *sim.Memory, opts Options) (*sim.Stats, error) {
	if si < 0 || si >= len(d.Stages) {
		return nil, fmt.Errorf("core: stage index %d out of range (design has %d)", si, len(d.Stages))
	}
	if mem == nil {
		mem = sim.NewMemory()
	}
	if err := validateContention(d, opts.Contention); err != nil {
		return nil, err
	}
	if err := validateShared(d, opts.Shared); err != nil {
		return nil, err
	}
	if !opts.UnsafeProtocols {
		if err := CheckProtocols(opts.Shared); err != nil {
			return nil, err
		}
	}
	return simulateStage(d, d.Stages[si], mem, opts)
}

// simulateStage is the shared per-stage body of Simulate and
// SimulateStage: compose this stage's contention and shared-resource
// specs from the run options and execute the sim hot loop.
func simulateStage(d *Design, sp *StagePlan, mem *sim.Memory, opts Options) (*sim.Stats, error) {
	contention, err := stageContention(sp, opts.Contention, opts.ContentionSeed)
	if err != nil {
		return nil, err
	}
	shared, err := stageShared(sp, opts.Shared, opts.ContentionSeed, len(opts.Contention))
	if err != nil {
		return nil, err
	}
	cfg := sim.Config{
		Graph:             d.Graph,
		Tasks:             sp.Stage.Tasks,
		Programs:          sp.Inserted.Programs,
		Arbiters:          sp.Inserted.Arbiters,
		ResourceOfSegment: sp.Inserted.ResourceOfSegment,
		ResourceOfChannel: sp.Inserted.ResourceOfChannel,
		NewPolicy:         opts.NewPolicy,
		NewPolicyWidened:  opts.NewPolicyWidened,
		MaxCycles:         opts.MaxCyclesPerStage,
		Memory:            mem,
		DisableTraces:     opts.DisableTraces,
		CaptureOnly:       opts.CaptureOnly,
		Contention:        contention,
		Shared:            shared,
	}
	return sim.Run(cfg)
}

// SweepPoint is one independent simulation of a compiled design in a
// sweep: the design, the memory image it runs over, and its options.
// Points must not share Memory instances — each runs concurrently.
type SweepPoint struct {
	Design  *Design
	Memory  *sim.Memory
	Options Options
}

// SimulateSweep runs independent design simulations concurrently across
// GOMAXPROCS workers, returning per-point results in input order. Within
// a point, stages still run sequentially (memory carries across
// reconfigurations); the parallelism is across points, which is how the
// paper-table sweeps (policy ablations, M sweeps, tile scaling) are
// shaped. The first error (by input order) is returned.
func SimulateSweep(points []SweepPoint) ([]*RunResult, error) {
	out := make([]*RunResult, len(points))
	errs := make([]error, len(points))
	sim.ParallelFor(len(points), func(i int) {
		out[i], errs[i] = Simulate(points[i].Design, points[i].Memory, points[i].Options)
	})
	for i, err := range errs {
		if err != nil {
			return out, fmt.Errorf("core: sweep point %d: %w", i, err)
		}
	}
	return out, nil
}

// Report renders a human-readable compilation summary resembling the
// paper's Figure 11 description.
func (d *Design) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "design %s on board %s: %d temporal partition(s)\n",
		d.Graph.Name, d.Board.Name, len(d.Stages))
	for si, sp := range d.Stages {
		fmt.Fprintf(&b, "temporal partition #%d: tasks %s\n", si, strings.Join(sp.Stage.Tasks, ", "))
		for pe := range d.Board.PEs {
			var on []string
			for _, t := range sp.Stage.Tasks {
				if sp.Stage.TaskPE[t] == pe {
					on = append(on, t)
				}
			}
			if len(on) > 0 {
				fmt.Fprintf(&b, "  %s: %s\n", d.Board.PEs[pe].Name, strings.Join(on, ", "))
			}
		}
		for bi, segs := range sp.Stage.Banks {
			if len(segs) > 0 {
				fmt.Fprintf(&b, "  bank %s: %s\n", d.Board.Banks[bi].Name, strings.Join(segs, ", "))
			}
		}
		if len(sp.Inserted.Arbiters) == 0 {
			fmt.Fprintf(&b, "  no arbitration required\n")
		}
		for _, a := range sp.Inserted.Arbiters {
			line := fmt.Sprintf("  Arb%d on %s: tasks %s", a.N(), a.Resource, strings.Join(a.Members, ", "))
			if len(a.Elided) > 0 {
				line += fmt.Sprintf(" (elided by dependencies: %s)", strings.Join(a.Elided, ", "))
			}
			fmt.Fprintln(&b, line)
		}
	}
	return b.String()
}
