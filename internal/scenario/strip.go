package scenario

import (
	"fmt"
	"sort"
)

// strip is a shelf-based strip-packing allocator over the fabric's CLB
// grid (arXiv:1001.4493's level technique): the fabric is a strip cols
// wide and rows tall, shelves stack bottom-up, and each resident design
// occupies one rectangle on one shelf. Departures leave gaps inside
// shelves; gaps are reused left-to-right, and topmost empty shelves are
// popped so the strip height shrinks back. When fragmentation blocks a
// placement that total free area could serve, the engine schedules a
// delayed compaction (full FFDH repack) rather than moving residents
// eagerly.
type strip struct {
	cols, rows int
	bestFit    bool
	shelves    []shelf
}

type shelf struct {
	y, height int
	spans     []span // sorted by x
}

type span struct {
	id      int
	x, w, h int
}

func newStrip(cols, rows int, bestFit bool) *strip {
	return &strip{cols: cols, rows: rows, bestFit: bestFit}
}

// top is the first unused row above the highest shelf.
func (s *strip) top() int {
	if len(s.shelves) == 0 {
		return 0
	}
	last := &s.shelves[len(s.shelves)-1]
	return last.y + last.height
}

// free is the total unoccupied CLB area (including fragmented gaps a
// single placement may not be able to use).
func (s *strip) free() int {
	used := 0
	for i := range s.shelves {
		for _, sp := range s.shelves[i].spans {
			used += sp.w * sp.h
		}
	}
	return s.cols*s.rows - used
}

// gapAt returns the leftmost x where a width-w gap exists in the shelf,
// or -1. Spans are kept sorted by x.
func (sh *shelf) gapAt(w, cols int) int {
	x := 0
	for _, sp := range sh.spans {
		if sp.x-x >= w {
			return x
		}
		x = sp.x + sp.w
	}
	if cols-x >= w {
		return x
	}
	return -1
}

func (sh *shelf) insert(sp span) {
	i := sort.Search(len(sh.spans), func(i int) bool { return sh.spans[i].x > sp.x })
	sh.spans = append(sh.spans, span{})
	copy(sh.spans[i+1:], sh.spans[i:])
	sh.spans[i] = sp
}

// place allocates a w×h rectangle for id, returning its position.
// First-fit scans shelves bottom-up and takes the first shelf tall
// enough with a wide-enough gap; best-fit takes the shelf wasting the
// least height (tie: least leftover gap width, then lowest shelf).
// Either mode opens a new shelf of height h on top when no existing
// shelf fits and headroom remains.
func (s *strip) place(id, w, h int) (x, y int, ok bool) {
	if w > s.cols || h > s.rows {
		return 0, 0, false
	}
	best, bestX, bestWaste, bestSlack := -1, 0, 0, 0
	for i := range s.shelves {
		sh := &s.shelves[i]
		if sh.height < h {
			continue
		}
		gx := sh.gapAt(w, s.cols)
		if gx < 0 {
			continue
		}
		if !s.bestFit {
			best, bestX = i, gx
			break
		}
		waste := sh.height - h
		slack := gapSlack(sh, gx, s.cols) - w
		if best < 0 || waste < bestWaste || (waste == bestWaste && slack < bestSlack) {
			best, bestX, bestWaste, bestSlack = i, gx, waste, slack
		}
	}
	if best >= 0 {
		s.shelves[best].insert(span{id: id, x: bestX, w: w, h: h})
		return bestX, s.shelves[best].y, true
	}
	if s.rows-s.top() < h {
		return 0, 0, false
	}
	y = s.top()
	s.shelves = append(s.shelves, shelf{y: y, height: h, spans: []span{{id: id, x: 0, w: w, h: h}}})
	return 0, y, true
}

// gapSlack is the full width of the gap starting at gx.
func gapSlack(sh *shelf, gx, cols int) int {
	end := cols
	for _, sp := range sh.spans {
		if sp.x >= gx {
			end = sp.x
			break
		}
	}
	return end - gx
}

// remove frees id's rectangle and pops topmost empty shelves.
func (s *strip) remove(id int) bool {
	for i := range s.shelves {
		sh := &s.shelves[i]
		for j, sp := range sh.spans {
			if sp.id == id {
				sh.spans = append(sh.spans[:j], sh.spans[j+1:]...)
				for len(s.shelves) > 0 && len(s.shelves[len(s.shelves)-1].spans) == 0 {
					s.shelves = s.shelves[:len(s.shelves)-1]
				}
				return true
			}
		}
	}
	return false
}

// compact repacks every resident with first-fit decreasing height
// (FFDH: tallest first, id tie-break for determinism) and returns the
// ids whose position changed. If the repack somehow fails to re-place a
// resident, the original layout is restored and nil is returned.
func (s *strip) compact() []int {
	var all []span
	before := map[int][2]int{}
	for i := range s.shelves {
		for _, sp := range s.shelves[i].spans {
			all = append(all, sp)
			before[sp.id] = [2]int{sp.x, s.shelves[i].y}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].h != all[j].h {
			return all[i].h > all[j].h
		}
		return all[i].id < all[j].id
	})
	snapshot := s.shelves
	s.shelves = nil
	wasBest := s.bestFit
	s.bestFit = false // FFDH is defined on first-fit
	var moved []int
	for _, sp := range all {
		x, y, ok := s.place(sp.id, sp.w, sp.h)
		if !ok {
			s.shelves = snapshot
			s.bestFit = wasBest
			return nil
		}
		if b := before[sp.id]; b[0] != x || b[1] != y {
			moved = append(moved, sp.id)
		}
	}
	s.bestFit = wasBest
	sort.Ints(moved)
	return moved
}

// rectOf reports id's current rectangle.
func (s *strip) rectOf(id int) (x, y, w, h int, ok bool) {
	for i := range s.shelves {
		for _, sp := range s.shelves[i].spans {
			if sp.id == id {
				return sp.x, s.shelves[i].y, sp.w, sp.h, true
			}
		}
	}
	return 0, 0, 0, 0, false
}

// check verifies the packing invariants — every span inside the fabric
// and inside its shelf's height, no two spans overlapping (within a
// shelf by x-interval, across shelves by construction of disjoint y
// bands). Tests sweep this after every engine event.
func (s *strip) check() error {
	y := 0
	for i := range s.shelves {
		sh := &s.shelves[i]
		if sh.y != y {
			return fmt.Errorf("strip: shelf %d at y=%d, expected %d", i, sh.y, y)
		}
		y += sh.height
		if y > s.rows {
			return fmt.Errorf("strip: shelf %d exceeds fabric height (%d > %d)", i, y, s.rows)
		}
		prevEnd := 0
		for j, sp := range sh.spans {
			if j > 0 && sp.x < prevEnd {
				return fmt.Errorf("strip: shelf %d spans overlap at x=%d", i, sp.x)
			}
			if sp.x < 0 || sp.x+sp.w > s.cols {
				return fmt.Errorf("strip: span %d outside fabric width", sp.id)
			}
			if sp.h > sh.height {
				return fmt.Errorf("strip: span %d taller than its shelf", sp.id)
			}
			prevEnd = sp.x + sp.w
		}
	}
	return nil
}
