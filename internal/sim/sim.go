// Package sim is the cycle-accurate multi-PE system simulator: it executes
// behavioral task programs against simulated memory banks, shared
// channels with receive-side registers, and arbiters, enforcing the
// paper's access protocol and detecting every class of sharing violation
// (simultaneous bank accesses, accesses without a grant, starvation,
// deadlock).
//
// Data genuinely moves: reads and writes hit per-segment storage, sends
// land in per-logical-channel registers, and OpTransform applies real
// functions, so arbitration bugs surface as corrupted values in addition
// to violation records.
//
// Background contention can be injected alongside the compiled tasks:
// Config.Contention attaches closed-loop phantom requesters (any
// workload.Generator) to named arbiters, widening their request vectors
// and policies so synthetic traffic competes for grants exactly like a
// real task — see ContentionSource.
//
// The per-cycle path is allocation-free: programs are precompiled so
// every resource/segment/channel name resolves to a pointer or dense
// index once at setup, request and grant vectors are single
// arbiter.BitVec words stepped through the policies' word-level
// BitStepper surface, and memory accesses index interned dense pages
// (see Memory). Only trace recording and violation capture allocate,
// amortized through chunked arenas.
package sim

import (
	"fmt"
	"sort"

	"sparcs/internal/arbiter"
	"sparcs/internal/behav"
	"sparcs/internal/partition"
	"sparcs/internal/taskgraph"
)

// Config describes one stage's simulation.
type Config struct {
	Graph *taskgraph.Graph
	// Tasks in this stage.
	Tasks []string
	// Programs holds each task's (already rewritten) program.
	Programs map[string]behav.Program
	// Arbiters lists the stage's arbiter instances.
	Arbiters []partition.ArbiterSpec
	// ResourceOfSegment maps segments to their bank resource name; absent
	// segments are private (never conflict-checked).
	ResourceOfSegment map[string]string
	// ResourceOfChannel maps logical channels to physical channel
	// resources ("" or absent = on-chip, conflict-free).
	ResourceOfChannel map[string]string
	// NewPolicy constructs the arbiter implementation for n request
	// lines; nil uses the behavioral round-robin. Substituting
	// arbiter.NewFSMPolicy or a netlist-backed policy simulates the
	// actual generated hardware.
	NewPolicy func(n int) arbiter.Policy
	// NewPolicyWidened, when non-nil, constructs the policy for arbiters
	// whose request vectors background sources widened: members is the
	// member-task line count and width the total (members + phantom +
	// shared lanes). Policies whose internal structure depends on how
	// lines are grouped (the hierarchical tree) use it to keep the
	// member-line layout identical to the unwidened arbiter's —
	// arbiter.PolicySpec.NewWidened is the canonical implementation.
	// Unwidened arbiters always use NewPolicy; nil falls back to
	// NewPolicy(width) for widened ones too.
	NewPolicyWidened func(members, width int) arbiter.Policy
	// MaxCycles bounds the run (deadlock watchdog). 0 means 10 million.
	MaxCycles int
	// Memory carries segment contents across stages; nil starts blank.
	Memory *Memory
	// DisableTraces skips per-cycle arbiter trace recording — the one
	// part of Stats whose cost grows with cycle count. Sweeps that only
	// need cycle/violation/grant statistics set this; Stats.ArbiterTraces
	// then maps each resource to nil.
	DisableTraces bool
	// Contention attaches background phantom requesters to named
	// arbiters: each source's lines are appended after the member
	// tasks' request lines, the policy is constructed over the widened
	// count, and grants won by phantoms are fed back into their closed
	// loops. Statically silent sources (StaticallySilent) are elided
	// entirely, so zero-rate contention is a byte-identical no-op.
	Contention []ContentionSource
	// Shared attaches correlated multi-resource background sources: one
	// generator drives request lines on several arbiters at once, with
	// hold-A-while-waiting-on-B semantics (see SharedRequester). Lanes
	// append after member lines and Contention lines; cross-resource
	// overlap/wait statistics land in Stats.Shared, per-line counts in
	// Stats.Contention.
	Shared []SharedSource
	// CaptureOnly restricts trace recording to the named resources when
	// non-nil (and DisableTraces is false): unlisted arbiters skip
	// per-cycle recording entirely and report a nil trace, so a run that
	// only needs one resource's stream pays for one. Nil records every
	// arbiter, preserving the historical default.
	CaptureOnly []string
}

// Violation records one sharing error.
type Violation struct {
	Cycle    int
	Resource string
	Tasks    []string
	Kind     string // "port-conflict", "no-grant", "starvation"
}

func (v Violation) String() string {
	return fmt.Sprintf("cycle %d: %s on %s by %v", v.Cycle, v.Kind, v.Resource, v.Tasks)
}

// Stats is the outcome of one stage simulation.
type Stats struct {
	Cycles          int
	Done            bool
	TaskFinish      map[string]int
	WaitCycles      map[string]int
	GrantsByRes     map[string]int
	MemReads        int
	MemWrites       int
	ChannelSends    int
	Violations      []Violation
	ArbiterTraces   map[string][]arbiter.TraceStep
	PerTaskOverhead map[string]int
	// Contention maps each resource with active (non-elided) background
	// sources to its phantom-line statistics; nil when the run had no
	// active contention, so uninstrumented Stats stay byte-identical.
	Contention map[string]*ContentionStats
	// Shared holds one entry per active (non-elided) shared source, in
	// Config.Shared order: the cross-resource hold-and-wait overlap and
	// per-resource grant/wait totals no single-resource view can report.
	// Nil when the run had no active shared sources.
	Shared []*SharedStats
}

// arbInst is one arbiter instance with its request/grant state packed
// into single BitVec words (bit i = request line i) and its trace arena.
// With contention attached, the low memberN bits are the member tasks'
// lines followed by the phantom sources' line windows up to width, and
// traces record the full widened width.
type arbInst struct {
	res        string
	spec       partition.ArbiterSpec
	policy     arbiter.Policy
	stepper    arbiter.BitStepper // word-level fast path of policy
	index      map[string]int     // task -> line (setup only)
	memberN    int                // request lines belonging to member tasks
	width      int                // total request lines (members + phantoms)
	memberMask arbiter.BitVec     // low memberN bits
	req        arbiter.BitVec
	grant      arbiter.BitVec
	grants     int  // member grants, flushed to Stats.GrantsByRes after the run
	capture    bool // record per-cycle traces for this arbiter
	trace      []arbiter.TraceStep
	arena      []bool       // chunked backing for trace req/grant copies
	sources    []contSource // background phantom requesters
	phGrants   []int        // per phantom line, flushed to Stats.Contention
	phWaits    []int
}

// record appends this cycle's request/grant words to the trace, unpacked
// into []bool copies carved out of a chunked arena — the TraceStep
// surface (and its byte layout) is unchanged from the slice-based
// simulator.
func (ai *arbInst) record() {
	n := ai.width
	if len(ai.arena) < 2*n {
		ai.arena = make([]bool, 2*n*1024) //sparcs:ignore hotpath,bitwidth trace arena chunk, amortized over 1024 recorded cycles; TraceStep keeps the []bool surface
	}
	rq := ai.arena[0:n:n]
	gr := ai.arena[n : 2*n : 2*n]
	ai.arena = ai.arena[2*n:]
	ai.req.WriteBools(rq)
	ai.grant.WriteBools(gr)
	ai.trace = append(ai.trace, arbiter.TraceStep{Req: rq, Grant: gr}) //sparcs:ignore hotpath trace capture is opt-in and amortized; disable traces for allocation-free runs
}

// cinstr is one precompiled instruction: every map lookup the
// interpreter would otherwise repeat per cycle — arbiter by resource
// name, request-line index by task name, bank resource by segment,
// channel register by channel name, memory segment by name — is
// resolved once at setup.
type cinstr struct {
	op      behav.Op
	res     string         // resolved resource name (violations) or channel name (errors)
	ai      *arbInst       // arbiter guarding the op's resource; nil = unarbitrated
	line    int            // this task's request line on ai; -1 = not a member
	lineBit arbiter.BitVec // 1<<line, or 0 when not a member
	conf    int            // conflict-resource index; -1 = private / conflict-free
	seg     int            // interned memory segment ID (OpRead/OpWrite)
	ch      *chanReg       // channel register (OpSend/OpRecv); nil = unknown channel

	addr   int
	stride int
	n      int
	cycles int
	val    int64
	fn     func(in []int64) []int64
}

type taskState struct {
	name    string
	code    []cinstr
	iters   int          // prog.Iterations(), hoisted
	deps    []*taskState // in-stage dependencies, resolved once
	iter    int
	pc      int
	wait    int // remaining compute cycles
	buf     []int64
	head    int // buf[head:] is live — pops advance head instead of copying
	scratch []int64
	waits   int // flushed to Stats.WaitCycles after the run
	done    bool
	finish  int // cycle the task completed in (valid when done)
	started bool
}

// popFront removes and returns the oldest buffered value.
func (ts *taskState) popFront() int64 {
	v := ts.buf[ts.head]
	ts.head++
	ts.compact()
	return v
}

// compact reclaims buf's dead prefix: immediately when the buffer
// drains, or by shifting the live tail down once the dead prefix
// dominates — so a task that never fully drains (streaming one value of
// slack per iteration) still runs in O(live depth) memory instead of
// growing buf for the whole run.
func (ts *taskState) compact() {
	if ts.head == len(ts.buf) {
		ts.buf = ts.buf[:0]
		ts.head = 0
		return
	}
	if ts.head >= 32 && ts.head*2 >= len(ts.buf) {
		n := copy(ts.buf, ts.buf[ts.head:])
		ts.buf = ts.buf[:n]
		ts.head = 0
	}
}

func (ts *taskState) bufLen() int { return len(ts.buf) - ts.head }

type chanReg struct {
	valid bool
	value int64
}

type pendingSend struct {
	ch    *chanReg
	value int64
}

// Run simulates one stage to completion (or MaxCycles).
func Run(cfg Config) (*Stats, error) {
	maxCycles := cfg.MaxCycles
	if maxCycles <= 0 {
		maxCycles = 10_000_000
	}
	mem := cfg.Memory
	if mem == nil {
		mem = NewMemory()
	}
	newPolicy := cfg.NewPolicy
	if newPolicy == nil {
		newPolicy = func(n int) arbiter.Policy { return arbiter.NewRoundRobin(n) }
	}

	// Arbiter instances and request-line plumbing, stepped each cycle in
	// sorted resource order (hoisted out of the loop).
	arbs := map[string]*arbInst{}
	for _, spec := range cfg.Arbiters {
		if spec.N() > arbiter.MaxN {
			return nil, fmt.Errorf("sim: arbiter on %s has %d request lines; the bitset kernel supports at most %d",
				spec.Resource, spec.N(), arbiter.MaxN)
		}
		ai := &arbInst{
			res:        spec.Resource,
			spec:       spec,
			index:      map[string]int{},
			memberN:    spec.N(),
			width:      spec.N(),
			memberMask: arbiter.Mask(spec.N()),
		}
		for i, t := range spec.Members {
			ai.index[t] = i
		}
		arbs[spec.Resource] = ai
	}
	// Phantom lines widen the request words before the policies are
	// sized: single-resource sources first, then shared multi-resource
	// lanes.
	if err := wireContention(cfg.Contention, arbs); err != nil {
		return nil, err
	}
	shared, err := wireShared(cfg.Shared, arbs)
	if err != nil {
		return nil, err
	}
	sizePhantoms(arbs)
	// Per-resource trace taps: nil CaptureOnly records everything.
	captureSet := map[string]bool{}
	for _, r := range cfg.CaptureOnly {
		captureSet[r] = true
	}
	//sparcs:ignore determinism each instance flag is set independently; iteration order cannot change the result
	for _, ai := range arbs {
		ai.capture = !cfg.DisableTraces && (cfg.CaptureOnly == nil || captureSet[ai.res])
	}
	// Construct policies in cfg.Arbiters order (not map order), so a
	// stateful NewPolicy closure sees a deterministic call sequence. Each
	// policy is stepped through its word-level surface: natively for
	// BitSteppers, via a setup-allocated []bool adapter otherwise.
	for _, spec := range cfg.Arbiters {
		ai := arbs[spec.Resource]
		if ai.width > ai.memberN && cfg.NewPolicyWidened != nil {
			ai.policy = cfg.NewPolicyWidened(ai.memberN, ai.width)
		} else {
			ai.policy = newPolicy(ai.width)
		}
		ai.stepper = arbiter.AsBitStepper(ai.policy)
	}
	arbList := make([]*arbInst, 0, len(arbs))
	//sparcs:ignore determinism values are collected then sorted by resource name on the next line
	for _, ai := range arbs {
		arbList = append(arbList, ai)
	}
	sort.Slice(arbList, func(i, j int) bool { return arbList[i].res < arbList[j].res })

	chans := map[string]*chanReg{}
	for _, c := range cfg.Graph.Channels {
		chans[c.Name] = &chanReg{}
	}

	// Conflict resources (banks and physical channels) interned to dense
	// indices for per-cycle multi-writer detection.
	confIdx := map[string]int{}
	var confNames []string
	internConf := func(res string) int {
		if i, ok := confIdx[res]; ok {
			return i
		}
		i := len(confNames)
		confIdx[res] = i
		confNames = append(confNames, res)
		return i
	}

	// Compile every task's program once.
	tasks := make([]*taskState, 0, len(cfg.Tasks))
	byName := map[string]*taskState{}
	for _, name := range cfg.Tasks {
		prog, ok := cfg.Programs[name]
		if !ok {
			return nil, fmt.Errorf("sim: no program for task %s", name)
		}
		ts := &taskState{name: name, iters: prog.Iterations()}
		ts.code = make([]cinstr, len(prog.Body))
		for i, in := range prog.Body {
			ci := cinstr{
				op: in.Op, res: in.Res, ai: nil, line: -1, conf: -1, seg: -1,
				addr: in.Addr, stride: in.Stride, n: in.N, cycles: in.Cycles,
				val: in.Val, fn: in.Fn,
			}
			switch in.Op {
			case behav.OpRead, behav.OpWrite:
				ci.seg = mem.SegID(in.Res)
				ci.res = cfg.ResourceOfSegment[in.Res]
				if ci.res != "" {
					ci.conf = internConf(ci.res)
					if ai := arbs[ci.res]; ai != nil {
						ci.ai = ai
						if line, isMember := ai.index[name]; isMember {
							ci.line = line
						}
					}
				}
			case behav.OpSend:
				ci.ch = chans[in.Res]
				ci.res = cfg.ResourceOfChannel[in.Res]
				if ci.res != "" {
					ci.conf = internConf(ci.res)
					if ai := arbs[ci.res]; ai != nil {
						ci.ai = ai
						if line, isMember := ai.index[name]; isMember {
							ci.line = line
						}
					}
				}
			case behav.OpRecv:
				ci.ch = chans[in.Res]
			case behav.OpReq, behav.OpRelease, behav.OpWaitGrant:
				if ai := arbs[in.Res]; ai != nil {
					ci.ai = ai
					if line, isMember := ai.index[name]; isMember {
						ci.line = line
					}
				}
			}
			if ci.line >= 0 {
				ci.lineBit = 1 << uint(ci.line)
			}
			ts.code[i] = ci
		}
		tasks = append(tasks, ts)
		byName[name] = ts
	}
	// Resolve in-stage dependencies to direct pointers: a task must not
	// overlap its predecessor's final access, so it starts only when every
	// in-stage dep completed in a strictly earlier cycle.
	for _, ts := range tasks {
		for _, d := range cfg.Graph.TaskByName(ts.name).Deps {
			if dep, inStage := byName[d]; inStage {
				ts.deps = append(ts.deps, dep)
			}
		}
	}

	stats := &Stats{
		TaskFinish:      map[string]int{},
		WaitCycles:      map[string]int{},
		GrantsByRes:     map[string]int{},
		ArbiterTraces:   map[string][]arbiter.TraceStep{},
		PerTaskOverhead: map[string]int{},
	}

	// Per-cycle scratch state, allocated once and reset in place.
	confUsers := make([][]string, len(confNames))
	var touched []int
	var sends []pendingSend
	remaining := len(tasks)

	cycle := 0
	//sparcs:hotpath
	for ; cycle < maxCycles; cycle++ {
		if remaining == 0 {
			stats.Done = true
			break
		}

		// Phase 1: arbiters sample request lines (set by earlier cycles)
		// and issue grants for this cycle. Phantom sources refresh their
		// lines first, observing last cycle's grants — the closed loop.
		// Shared sources refresh before ANY arbiter steps, so a source
		// spanning several resources sees one coherent grant snapshot
		// instead of a mix of old and new decisions.
		for _, inst := range shared {
			inst.next()
		}
		for _, ai := range arbList {
			for i := range ai.sources {
				cs := &ai.sources[i]
				off := uint(cs.off)
				out := cs.next(ai.req>>off&cs.mask, ai.grant>>off&cs.mask)
				ai.req = ai.req&^(cs.mask<<off) | (out&cs.mask)<<off
			}
			ai.grant = ai.stepper.StepBits(ai.req)
			ai.grants += (ai.grant & ai.memberMask).Count()
			if ai.phGrants != nil {
				for i := range ai.phGrants {
					//sparcs:ignore bitwidth memberN+i < width <= MaxN by wiring-time checkLanes validation
					bit := arbiter.BitVec(1) << uint(ai.memberN+i)
					switch {
					case ai.grant&bit != 0:
						ai.phGrants[i]++
					case ai.req&bit != 0:
						ai.phWaits[i]++
					}
				}
			}
			if ai.capture {
				ai.record()
			}
		}
		// Cross-resource overlap stats read this cycle's grants on every
		// spanned resource, after all arbiters have stepped.
		for _, inst := range shared {
			inst.observe()
		}

		// Phase 2: tasks execute one cycle each.
		touched = touched[:0]
		sends = sends[:0]
		for _, ts := range tasks {
			if ts.done {
				continue
			}
			if !ts.started {
				ready := true
				for _, dep := range ts.deps {
					if !dep.done || dep.finish >= cycle {
						ready = false
						break
					}
				}
				if !ready {
					continue
				}
				ts.started = true
			}
			// Skip zero-time instructions (satisfied grant waits).
			for {
				if len(ts.code) == 0 || ts.iter >= ts.iters {
					ts.done = true
					ts.finish = cycle
					stats.TaskFinish[ts.name] = cycle //sparcs:ignore hotpath written once per task, at termination
					remaining--
					break
				}
				in := &ts.code[ts.pc]
				if in.op == behav.OpWaitGrant {
					if in.ai != nil {
						if in.ai.grant&in.lineBit != 0 {
							advance(ts)
							continue
						}
						ts.waits++
						break // blocked this cycle
					}
					// Resource not arbitrated this stage; wait is void.
					advance(ts)
					continue
				}
				break
			}
			if ts.done {
				continue
			}
			in := &ts.code[ts.pc]
			if in.op == behav.OpWaitGrant {
				continue
			}

			switch in.op {
			case behav.OpCompute:
				if ts.wait == 0 {
					ts.wait = in.n
				}
				ts.wait--
				if ts.wait == 0 {
					advance(ts)
				}
			case behav.OpTransform:
				if ts.wait == 0 {
					ts.wait = in.cycles
					if ts.wait == 0 {
						ts.wait = 1
					}
				}
				ts.wait--
				if ts.wait == 0 {
					n := in.n
					if n > ts.bufLen() {
						n = ts.bufLen()
					}
					ts.scratch = append(ts.scratch[:0], ts.buf[ts.head:ts.head+n]...) //sparcs:ignore hotpath reuses the scratch backing; grows only to the transfer size
					ts.head += n
					ts.compact()
					if in.fn != nil {
						ts.buf = append(ts.buf, in.fn(ts.scratch)...) //sparcs:ignore hotpath task data buffer; growth is the workload, not overhead
					}
					advance(ts)
				}
			case behav.OpRead, behav.OpWrite:
				if in.conf >= 0 {
					if len(confUsers[in.conf]) == 0 {
						touched = append(touched, in.conf) //sparcs:ignore hotpath reaches steady-state backing after the first cycles; reset in place
					}
					confUsers[in.conf] = append(confUsers[in.conf], ts.name) //sparcs:ignore hotpath reaches steady-state backing after the first cycles; reset in place
					if in.ai != nil && in.line >= 0 && in.ai.grant&in.lineBit == 0 {
						//sparcs:ignore hotpath violations are exceptional diagnostics, not steady-state work
						stats.Violations = append(stats.Violations, Violation{
							Cycle: cycle, Resource: in.res, Tasks: []string{ts.name}, Kind: "no-grant", //sparcs:ignore hotpath violations are exceptional diagnostics, not steady-state work
						})
					}
				}
				addr := in.addr + ts.iter*in.stride
				if in.op == behav.OpRead {
					ts.buf = append(ts.buf, mem.ReadID(in.seg, addr)) //sparcs:ignore hotpath task data buffer; growth is the workload, not overhead
					stats.MemReads++
				} else {
					v := in.val
					if ts.bufLen() > 0 {
						v = ts.popFront()
					}
					mem.WriteID(in.seg, addr, v)
					stats.MemWrites++
				}
				advance(ts)
			case behav.OpSend:
				if in.conf >= 0 {
					if len(confUsers[in.conf]) == 0 {
						touched = append(touched, in.conf) //sparcs:ignore hotpath reaches steady-state backing after the first cycles; reset in place
					}
					confUsers[in.conf] = append(confUsers[in.conf], ts.name) //sparcs:ignore hotpath reaches steady-state backing after the first cycles; reset in place
					if in.ai != nil && in.line >= 0 && in.ai.grant&in.lineBit == 0 {
						//sparcs:ignore hotpath violations are exceptional diagnostics, not steady-state work
						stats.Violations = append(stats.Violations, Violation{
							Cycle: cycle, Resource: in.res, Tasks: []string{ts.name}, Kind: "no-grant", //sparcs:ignore hotpath violations are exceptional diagnostics, not steady-state work
						})
					}
				}
				v := in.val
				if ts.bufLen() > 0 {
					v = ts.popFront()
				}
				sends = append(sends, pendingSend{ch: in.ch, value: v}) //sparcs:ignore hotpath reaches steady-state backing after the first cycles; reset in place
				stats.ChannelSends++
				advance(ts)
			case behav.OpRecv:
				if in.ch == nil {
					//sparcs:ignore hotpath cold error path; aborts the run
					return nil, fmt.Errorf("sim: task %s receives on unknown channel %s", ts.name, in.res)
				}
				if in.ch.valid {
					ts.buf = append(ts.buf, in.ch.value) //sparcs:ignore hotpath task data buffer; growth is the workload, not overhead
					advance(ts)
				}
				// Not valid yet: block (consume the cycle).
			case behav.OpReq:
				if in.ai != nil {
					in.ai.req |= in.lineBit
				}
				advance(ts)
			case behav.OpRelease:
				if in.ai != nil {
					in.ai.req &^= in.lineBit
				}
				advance(ts)
			default:
				//sparcs:ignore hotpath cold error path; aborts the run
				return nil, fmt.Errorf("sim: task %s: unsupported op %v", ts.name, in.op)
			}
			if ts.iter >= ts.iters {
				ts.done = true
				ts.finish = cycle
				stats.TaskFinish[ts.name] = cycle //sparcs:ignore hotpath written once per task, at termination
				remaining--
			}
		}

		// Phase 3: port-conflict detection and channel register updates,
		// in first-touch order (deterministic, unlike map iteration).
		for _, ci := range touched {
			users := confUsers[ci]
			if len(users) > 1 {
				//sparcs:ignore hotpath violations are exceptional diagnostics, not steady-state work
				stats.Violations = append(stats.Violations, Violation{
					Cycle: cycle, Resource: confNames[ci],
					Tasks: append([]string(nil), users...), Kind: "port-conflict", //sparcs:ignore hotpath violations are exceptional diagnostics, not steady-state work
				})
			}
			confUsers[ci] = users[:0]
		}
		for _, s := range sends {
			s.ch.valid = true
			s.ch.value = s.value
		}
	}
	stats.Cycles = cycle
	for _, ts := range tasks {
		if ts.waits > 0 {
			stats.WaitCycles[ts.name] = ts.waits
		}
	}
	for _, ai := range arbList {
		stats.ArbiterTraces[ai.res] = ai.trace
		if ai.grants > 0 {
			stats.GrantsByRes[ai.res] = ai.grants
		}
		if ai.phGrants != nil {
			if stats.Contention == nil {
				stats.Contention = map[string]*ContentionStats{}
			}
			stats.Contention[ai.res] = &ContentionStats{Grants: ai.phGrants, Waits: ai.phWaits}
		}
	}
	for _, inst := range shared {
		stats.Shared = append(stats.Shared, inst.stats)
	}
	if !stats.Done {
		stats.Violations = append(stats.Violations, Violation{
			Cycle: cycle, Resource: "", Kind: "deadlock-or-timeout",
		})
	}
	return stats, nil
}

// advance moves to the next instruction, wrapping iterations.
func advance(ts *taskState) {
	ts.pc++
	if ts.pc >= len(ts.code) {
		ts.pc = 0
		ts.iter++
	}
}
