// Channel sharing (paper Section 2.2, Figure 3, Table 1): two logical
// channels with different source tasks merge onto one physical inter-FPGA
// channel. Receive-side registers keep early transfers alive for late
// readers, and a 2-input arbiter serializes the writers.
package main

import (
	"fmt"
	"log"

	"sparcs"
	"sparcs/internal/behav"
	"sparcs/internal/rc"
	"sparcs/internal/taskgraph"
	"sparcs/internal/xc4000"
)

func main() {
	// Table 1's scenario: Task1 writes c1 at step 1, Task4 writes c4 at
	// step 2, Task2 reads c1 at step 3 — after the shared channel has
	// been reused — and must still see Task1's value.
	g := &taskgraph.Graph{
		Name: "table1",
		Segments: []*taskgraph.Segment{
			{Name: "OUT", SizeBytes: 64, WidthBits: 32},
		},
		Channels: []*taskgraph.Channel{
			{Name: "c1", From: "Task1", To: "Task2", WidthBits: 16},
			{Name: "c4", From: "Task4", To: "Task3", WidthBits: 8},
		},
		Tasks: []*taskgraph.Task{
			{Name: "Task1", AreaCLBs: 200},
			{Name: "Task2", AreaCLBs: 200, Accesses: []taskgraph.Access{{Segment: "OUT", Kind: taskgraph.Write}}},
			{Name: "Task3", AreaCLBs: 200, Accesses: []taskgraph.Access{{Segment: "OUT", Kind: taskgraph.Write}}},
			{Name: "Task4", AreaCLBs: 200},
		},
	}
	programs := map[string]behav.Program{
		"Task1": {Body: []behav.Instr{behav.SendImm("c1", 10)}},
		"Task4": {Body: []behav.Instr{behav.Compute(1), behav.SendImm("c4", 102)}},
		"Task2": {Body: []behav.Instr{behav.Compute(6), behav.Recv("c1"), behav.Write("OUT", 0)}},
		"Task3": {Body: []behav.Instr{behav.Recv("c4"), behav.Write("OUT", 1)}},
	}

	// A two-FPGA board forces both logical channels onto the single
	// PE1-PE2 physical connection, triggering the merge. Build compiles
	// once and returns the System handle experiments run against.
	board := rc.Generic(2, xc4000.XC4013E, 32*1024, 36, 36)
	sys, err := sparcs.Build(g, board, programs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sys.Report())

	stage := sys.Design().Stages[0]
	for _, pc := range stage.Routes {
		fmt.Printf("physical channel %s: %d pins, carries %v", pc.Name, pc.Pins, pc.Logical)
		if pc.Arbiter != nil {
			fmt.Printf(", arbitrated (%d sources)", pc.Arbiter.N())
		}
		fmt.Println()
	}

	mem := sparcs.NewMemory()
	res, err := sys.Run(sparcs.WithMemory(mem))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated %d cycles, violations: %d\n", res.TotalCycles, len(res.Violations()))
	fmt.Printf("Task2 received c1 value: %d (want 10 — register held it)\n", mem.Read("OUT", 0))
	fmt.Printf("Task3 received c4 value: %d (want 102)\n", mem.Read("OUT", 1))
}
