package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// ParallelFor runs fn(0..n-1) across min(GOMAXPROCS, n) workers and
// blocks until every call returns. It is the shared fan-out primitive
// behind RunBatch and core.SimulateSweep; fn must be safe to call
// concurrently for distinct indices.
func ParallelFor(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0) //sparcs:ignore determinism worker count only partitions the index space; fn(i) writes per-index results, so the fan-in is identical for any worker count
	if workers > n {
		workers = n
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// RunBatch simulates independent stage configurations concurrently,
// fanning them across GOMAXPROCS workers, and returns per-config Stats
// in input order. Each config must be self-contained: configs sharing a
// Memory (or any mutable Graph/Program state) race, so sweep builders
// give every entry its own Memory. A nil cfg.Memory gets a private blank
// one, as in Run.
//
// The first error (by input order) is returned; entries that simulated
// cleanly before an erroring sibling still carry their Stats.
func RunBatch(cfgs []Config) ([]*Stats, error) {
	out := make([]*Stats, len(cfgs))
	errs := make([]error, len(cfgs))
	ParallelFor(len(cfgs), func(i int) {
		out[i], errs[i] = Run(cfgs[i])
	})
	for i, err := range errs {
		if err != nil {
			return out, fmt.Errorf("sim: batch entry %d: %w", i, err)
		}
	}
	return out, nil
}
