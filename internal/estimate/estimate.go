// Package estimate provides the pre-characterization the paper's Section
// 4.3 describes: "arbiters are pre-characterized for the number of inputs
// and outputs, their area, and their delay, [so] a precise estimation can
// be performed by the partitioners."
//
// Characterize runs the real synthesis pipeline once per arbiter size and
// caches the results; the partitioners then query the table instead of
// re-synthesizing, exactly as SPARCS' estimator did.
package estimate

import (
	"fmt"
	"sync"

	"sparcs/internal/arbiter"
	"sparcs/internal/fsm"
	"sparcs/internal/synth"
)

// Entry is one pre-characterized arbiter.
type Entry struct {
	N      int
	CLBs   int
	MaxMHz float64
}

// Table caches arbiter characterization for one tool/encoding pair.
type Table struct {
	Tool synth.Tool
	Enc  fsm.Encoding

	mu      sync.Mutex
	entries map[int]Entry
}

// NewTable returns an empty table for the tool/encoding pair.
func NewTable(tool synth.Tool, enc fsm.Encoding) *Table {
	return &Table{Tool: tool, Enc: enc, entries: map[int]Entry{}}
}

// Characterize returns the entry for an n-input arbiter, synthesizing it
// on first use.
func (t *Table) Characterize(n int) (Entry, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.entries[n]; ok {
		return e, nil
	}
	m, err := arbiter.Machine(n)
	if err != nil {
		return Entry{}, err
	}
	r, _, err := synth.Run(m, t.Enc, t.Tool)
	if err != nil {
		return Entry{}, err
	}
	e := Entry{N: n, CLBs: r.CLBs, MaxMHz: r.MaxMHz}
	t.entries[n] = e
	return e, nil
}

// estimateKneeN is the largest arbiter the synthesis flow can
// characterize directly — arbiter.MaxSynthN, the FSM/netlist width cap.
// The behavioral bitset policies scale to arbiter.MaxN, but area numbers
// come from synthesizing the Figure 5 machine, so AreaFn extrapolates
// linearly beyond this knee instead of raising it with MaxN.
const estimateKneeN = arbiter.MaxSynthN

// AreaFn adapts the table to the partitioner's arbiter-area callback.
// Sizes beyond the synthesizable knee (estimateKneeN) fall back to
// linear extrapolation from the knee entry.
func (t *Table) AreaFn() func(n int) int {
	return func(n int) int {
		if n < arbiter.MinN {
			return 0
		}
		capped := n
		if capped > estimateKneeN {
			capped = estimateKneeN
		}
		e, err := t.Characterize(capped)
		if err != nil {
			return 0
		}
		if n > estimateKneeN {
			return e.CLBs * n / estimateKneeN
		}
		return e.CLBs
	}
}

// ProtocolOverhead models the paper's fixed protocol cost: each group of
// up to M arbitrated accesses pays two extra cycles (request assertion and
// release), assuming immediate grants.
func ProtocolOverhead(accesses, m int) int {
	if accesses <= 0 {
		return 0
	}
	if m < 1 {
		m = 1
	}
	groups := (accesses + m - 1) / m
	return 2 * groups
}

// SlowerThanDesign reports whether an arbiter of size n would limit a
// design clocked at designMHz — the paper's Section 4.2 argument that
// arbiters "did not introduce any overhead on the clock speed" because
// even the 10-input arbiter clocks above typical design speeds.
func (t *Table) SlowerThanDesign(n int, designMHz float64) (bool, error) {
	e, err := t.Characterize(n)
	if err != nil {
		return false, err
	}
	return e.MaxMHz < designMHz, nil
}

// String renders the table contents.
func (e Entry) String() string {
	return fmt.Sprintf("N=%d: %d CLBs, %.1f MHz", e.N, e.CLBs, e.MaxMHz)
}
