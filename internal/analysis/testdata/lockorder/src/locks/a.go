// Seeded violations for the lockorder analyzer: acquisition-order
// cycles (direct and through calls), self-deadlocks, blocking while a
// lock is held, cond.Wait semantics, and the clean patterns that must
// stay silent.
package locks

import (
	"sync"
	"time"
)

type a struct{ mu sync.Mutex }

type b struct{ mu sync.Mutex }

var (
	A  a
	B  b
	ch = make(chan int)
)

// LockAB and LockBA take the two locks in opposite orders: both
// acquisition sites lie on the cycle and both are reported.

func LockAB() {
	A.mu.Lock()
	B.mu.Lock() // want `acquiring locks.b.mu while locks.a.mu is held creates an acquisition-order cycle: locks.a.mu -> locks.b.mu -> locks.a.mu`
	B.mu.Unlock()
	A.mu.Unlock()
}

func LockBA() {
	B.mu.Lock()
	A.mu.Lock() // want `acquiring locks.a.mu while locks.b.mu is held creates an acquisition-order cycle: locks.b.mu -> locks.a.mu -> locks.b.mu`
	A.mu.Unlock()
	B.mu.Unlock()
}

// Relock self-deadlocks directly.
func Relock() {
	A.mu.Lock()
	A.mu.Lock() // want `locks.a.mu acquired while already held: self-deadlock on a non-reentrant lock`
	A.mu.Unlock()
	A.mu.Unlock()
}

func lockA() {
	A.mu.Lock()
	A.mu.Unlock()
}

// RelockViaCall self-deadlocks one call deep.
func RelockViaCall() {
	A.mu.Lock()
	lockA() // want `call to locks.lockA acquires locks.a.mu, which is already held: self-deadlock on a non-reentrant lock`
	A.mu.Unlock()
}

// Blocking operations while a lock is held.

func SendLocked() {
	A.mu.Lock()
	ch <- 1 // want `potential deadlock: channel send while locks.a.mu is held`
	A.mu.Unlock()
}

func SleepLocked() {
	A.mu.Lock()
	time.Sleep(time.Millisecond) // want `potential deadlock: time.Sleep while locks.a.mu is held`
	A.mu.Unlock()
}

func SelectLocked(c1, c2 chan int) {
	A.mu.Lock()
	select { // want `potential deadlock: select with no default case while locks.a.mu is held`
	case <-c1:
	case <-c2:
	}
	A.mu.Unlock()
}

func blockInner() {
	<-ch
}

// CallBlockLocked blocks one call deep: the summary carries the
// callee's channel receive to this call site.
func CallBlockLocked() {
	B.mu.Lock()
	blockInner() // want `potential deadlock: call to locks.blockInner may block \(channel receive\) while locks.b.mu is held`
	B.mu.Unlock()
}

// DynLocked invokes a function value under a lock: no callee set, so
// deadlock-freedom is unprovable.
func DynLocked(f func()) {
	B.mu.Lock()
	f() // want `dynamic call through a function value while locks.b.mu is held cannot be proven deadlock-free`
	B.mu.Unlock()
}

// Interprocedural ordering: DThenE contributes its edge through the
// lockE summary, completing a cycle with EThenD.

type d struct{ mu sync.Mutex }

type e struct{ mu sync.Mutex }

var (
	D d
	E e
)

func lockE() {
	E.mu.Lock()
	E.mu.Unlock()
}

func DThenE() {
	D.mu.Lock()
	lockE() // want `acquiring locks.e.mu while locks.d.mu is held \(through call to locks.lockE\) creates an acquisition-order cycle: locks.d.mu -> locks.e.mu -> locks.d.mu`
	D.mu.Unlock()
}

func EThenD() {
	E.mu.Lock()
	D.mu.Lock() // want `acquiring locks.d.mu while locks.e.mu is held creates an acquisition-order cycle: locks.e.mu -> locks.d.mu -> locks.e.mu`
	D.mu.Unlock()
	E.mu.Unlock()
}

// Cond.Wait releases its own lock: clean with only that lock held,
// flagged when another lock stays pinned across the sleep.

type q struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

func newQ() *q {
	x := &q{}
	x.cond = sync.NewCond(&x.mu)
	return x
}

func (x *q) waitOK() {
	x.mu.Lock()
	for x.n == 0 {
		x.cond.Wait()
	}
	x.mu.Unlock()
}

func (x *q) waitHoldingOther() {
	A.mu.Lock()
	x.mu.Lock()
	x.cond.Wait() // want `sync.Cond.Wait releases only its own lock; still holding locks.a.mu while waiting can deadlock`
	x.mu.Unlock()
	A.mu.Unlock()
}

// Clean patterns: consistent nesting order, deferred unlock, poll
// selects, and goroutines (which start with an empty lock context).

type c struct{ mu sync.Mutex }

var C c

func NestedConsistent() {
	A.mu.Lock()
	C.mu.Lock()
	C.mu.Unlock()
	A.mu.Unlock()
}

func DeferredUnlock() int {
	C.mu.Lock()
	defer C.mu.Unlock()
	return 1
}

func PollLocked(c1 chan int) {
	C.mu.Lock()
	select {
	case <-c1:
	default:
	}
	C.mu.Unlock()
}

func SpawnLocked() {
	C.mu.Lock()
	go func() {
		// The spawned goroutine holds nothing: locking A here is not an
		// edge from C.
		A.mu.Lock()
		A.mu.Unlock()
	}()
	C.mu.Unlock()
}
