// Memory mapping with L > P (paper Section 1.1): six logical segments
// packed onto a two-bank board. The arbitration-aware mapper groups
// segments so that ordered producer/consumer pairs share banks for free
// (dependency elision) while parallel accessors get an automatically
// inserted arbiter — and an ablation shows what goes wrong without one.
package main

import (
	"fmt"
	"log"

	"sparcs"
	"sparcs/internal/behav"
	"sparcs/internal/rc"
	"sparcs/internal/taskgraph"
	"sparcs/internal/xc4000"
)

func buildGraph() *taskgraph.Graph {
	// Stage pipeline: two parallel producers write IN1/IN2; two parallel
	// workers read them and write their own scratch + result segments.
	g := &taskgraph.Graph{
		Name: "lgtp",
		Segments: []*taskgraph.Segment{
			{Name: "IN1", SizeBytes: 4 * 1024, WidthBits: 32},
			{Name: "IN2", SizeBytes: 4 * 1024, WidthBits: 32},
			{Name: "SCR1", SizeBytes: 4 * 1024, WidthBits: 32},
			{Name: "SCR2", SizeBytes: 4 * 1024, WidthBits: 32},
			{Name: "RES1", SizeBytes: 4 * 1024, WidthBits: 32},
			{Name: "RES2", SizeBytes: 4 * 1024, WidthBits: 32},
			// Shared coefficient table read by both parallel workers —
			// the contended resource that needs an arbiter.
			{Name: "TBL", SizeBytes: 4 * 1024, WidthBits: 32},
		},
		Tasks: []*taskgraph.Task{
			{Name: "Prod1", AreaCLBs: 150, Accesses: []taskgraph.Access{{Segment: "IN1", Kind: taskgraph.Write}}},
			{Name: "Prod2", AreaCLBs: 150, Accesses: []taskgraph.Access{{Segment: "IN2", Kind: taskgraph.Write}}},
			{Name: "Work1", AreaCLBs: 150, Deps: []string{"Prod1"}, Accesses: []taskgraph.Access{
				{Segment: "IN1", Kind: taskgraph.Read},
				{Segment: "TBL", Kind: taskgraph.Read},
				{Segment: "SCR1", Kind: taskgraph.Write},
				{Segment: "RES1", Kind: taskgraph.Write},
			}},
			{Name: "Work2", AreaCLBs: 150, Deps: []string{"Prod2"}, Accesses: []taskgraph.Access{
				{Segment: "IN2", Kind: taskgraph.Read},
				{Segment: "TBL", Kind: taskgraph.Read},
				{Segment: "SCR2", Kind: taskgraph.Write},
				{Segment: "RES2", Kind: taskgraph.Write},
			}},
		},
	}
	return g
}

func programs() map[string]behav.Program {
	prod := func(seg string) behav.Program {
		return behav.Program{Body: []behav.Instr{
			behav.WriteImm(seg, 0, 100), behav.WriteImm(seg, 1, 200),
		}, Repeat: 8}
	}
	work := func(in, scr, res string) behav.Program {
		return behav.Program{Body: []behav.Instr{
			behav.Read(in, 0),
			behav.Read("TBL", 0), behav.Read("TBL", 1),
			behav.Write(scr, 0),
			behav.Read(scr, 0),
			behav.Write(res, 0),
		}, Repeat: 8}
	}
	return map[string]behav.Program{
		"Prod1": prod("IN1"),
		"Prod2": prod("IN2"),
		"Work1": work("IN1", "SCR1", "RES1"),
		"Work2": work("IN2", "SCR2", "RES2"),
	}
}

func main() {
	// Two PEs, one 16KB bank each: 6 logical segments > 2 physical banks.
	board := rc.Generic(2, xc4000.XC4013E, 16*1024, 36, 36)
	g := buildGraph()

	sys, err := sparcs.Build(g, board, programs())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sys.Report())

	res, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith automatic arbitration: %d cycles, %d violations\n",
		res.TotalCycles, len(res.Violations()))

	// Ablation: strip the arbiters by building conservatively, then
	// deleting the inserted protocol from the compiled design — the
	// simulator flags every simultaneous bank access.
	sys2, err := sparcs.Build(g, board, programs(), sparcs.WithConservativeArbitration())
	if err != nil {
		log.Fatal(err)
	}
	for _, sp := range sys2.Design().Stages {
		for name := range sp.Inserted.Programs {
			sp.Inserted.Programs[name] = stripProtocol(sp.Inserted.Programs[name])
		}
		sp.Inserted.Arbiters = nil
	}
	res2, err := sys2.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without arbitration (ablation): %d cycles, %d violations (bank port conflicts!)\n",
		res2.TotalCycles, len(res2.Violations()))
}

func stripProtocol(p behav.Program) behav.Program {
	var body []behav.Instr
	for _, in := range p.Body {
		switch in.Op {
		case behav.OpReq, behav.OpWaitGrant, behav.OpRelease:
		default:
			body = append(body, in)
		}
	}
	return behav.Program{Body: body, Repeat: p.Repeat}
}
