package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ErrSentinel enforces the module's error-matching discipline: sentinel
// errors (package-level error values like arbiter.ErrOutOfRange, and
// typed errors like SynthRangeError) are wrapped with %w so they
// survive fmt.Errorf chains, and matched with errors.Is/errors.As —
// never with ==, type assertions, or err.Error() string matching, all
// of which break the moment a wrapping layer is inserted.
var ErrSentinel = &Analyzer{
	Name: "errsentinel",
	Doc:  "require %w wrapping and errors.Is/errors.As matching for sentinel errors; forbid == and string comparison",
	Run:  runErrSentinel,
}

func runErrSentinel(pass *Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkSentinelCompare(pass, info, n)
					checkErrorStringCompare(pass, info, n)
				}
			case *ast.TypeAssertExpr:
				if implementsError(info.TypeOf(n.X)) {
					pass.Reportf(n.Pos(), "type assertion on an error misses wrapped errors; use errors.As")
				}
			case *ast.CallExpr:
				checkErrorfWrap(pass, info, n)
				checkStringsMatch(pass, info, n)
			}
			return true
		})
	}
	return nil
}

// checkSentinelCompare flags `err == ErrX` / `err != ErrX` where ErrX
// is a package-level error value.
func checkSentinelCompare(pass *Pass, info *types.Info, cmp *ast.BinaryExpr) {
	if sentinelName(info, cmp.X) != "" || sentinelName(info, cmp.Y) != "" {
		name := sentinelName(info, cmp.X)
		if name == "" {
			name = sentinelName(info, cmp.Y)
		}
		pass.Reportf(cmp.Pos(), "%s comparison with %s misses wrapped errors; use errors.Is", cmp.Op, name)
	}
}

// sentinelName returns the name of a package-level error variable
// referenced by e, or "".
func sentinelName(info *types.Info, e ast.Expr) string {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	default:
		return ""
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return ""
	}
	if !implementsError(v.Type()) {
		return ""
	}
	return v.Name()
}

// checkErrorStringCompare flags `err.Error() == "..."` comparisons.
func checkErrorStringCompare(pass *Pass, info *types.Info, cmp *ast.BinaryExpr) {
	if isErrorCall(info, cmp.X) || isErrorCall(info, cmp.Y) {
		pass.Reportf(cmp.Pos(), "matching errors by Error() string breaks under wrapping and rewording; use errors.Is")
	}
}

// checkStringsMatch flags err.Error() fed into strings matching
// functions (Contains, HasPrefix, ...).
func checkStringsMatch(pass *Pass, info *types.Info, call *ast.CallExpr) {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "strings" {
		return
	}
	switch fn.Name() {
	case "Contains", "HasPrefix", "HasSuffix", "EqualFold", "Index", "Count":
	default:
		return
	}
	for _, arg := range call.Args {
		if isErrorCall(info, arg) {
			pass.Reportf(call.Pos(), "matching errors by Error() string breaks under wrapping and rewording; use errors.Is")
			return
		}
	}
}

// checkErrorfWrap flags fmt.Errorf calls that interpolate an error
// without %w: the sentinel becomes unreachable for errors.Is.
func checkErrorfWrap(pass *Pass, info *types.Info, call *ast.CallExpr) {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if implementsError(info.TypeOf(arg)) {
			pass.Reportf(arg.Pos(), "error formatted without %%w is invisible to errors.Is; wrap it with %%w")
		}
	}
}

// isErrorCall reports whether e is a call of the Error() string method
// on an error value.
func isErrorCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	return implementsError(info.TypeOf(sel.X))
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return types.Implements(t, errorIface)
}
