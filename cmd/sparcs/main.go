// Command sparcs runs the integrated partitioning/synthesis/arbitration
// flow (paper Figure 9) on a built-in design and reports the temporal
// partitions, memory maps, inserted arbiters, and cycle-accurate
// simulation results.
//
// Usage:
//
//	sparcs -design fft                  # the paper's Section 5 case study
//	sparcs -design fft -conservative    # without dependency elision
//	sparcs -design fft -auto            # automatic temporal partitioning
//	sparcs -design fft -policy fifo     # swap the arbitration policy
package main

import (
	"flag"
	"fmt"
	"log"

	"sparcs/internal/arbinsert"
	"sparcs/internal/arbiter"
	"sparcs/internal/core"
	"sparcs/internal/fft"
	"sparcs/internal/rc"
	"sparcs/internal/sim"
)

func main() {
	design := flag.String("design", "fft", "built-in design: fft")
	tiles := flag.Int("tiles", 8, "tiles to simulate per temporal partition")
	auto := flag.Bool("auto", false, "use automatic temporal partitioning instead of the paper's 3-stage split")
	conservative := flag.Bool("conservative", false, "disable dependency-based arbiter elision")
	policy := flag.String("policy", "round-robin", "arbitration policy: round-robin, fifo, priority, random")
	m := flag.Int("m", 2, "accesses per grant before the request is released (Figure 8)")
	flag.Parse()

	if *design != "fft" {
		log.Fatalf("unknown design %q (only fft is built in)", *design)
	}

	g := fft.Taskgraph()
	board := rc.Wildforce()
	opts := core.Options{
		Insert: arbinsert.Options{M: *m, Conservative: *conservative},
	}
	if !*auto {
		opts.Partition.FixedStages = fft.PaperStages()
	}
	if *policy != "round-robin" {
		name := *policy
		opts.NewPolicy = func(n int) arbiter.Policy {
			p, err := arbiter.NewPolicy(name, n)
			if err != nil {
				log.Fatal(err)
			}
			return p
		}
	}

	d, err := core.Compile(g, board, fft.Programs(*tiles), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(d.Report())

	mem := sim.NewMemory()
	in := fft.LoadInput(mem, *tiles, 42)
	res, err := core.Simulate(d, mem, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== simulation ==")
	for si, ss := range res.Stages {
		fmt.Printf("temporal partition #%d: %d cycles", si, ss.Stats.Cycles)
		if w := totalWait(ss.Stats.WaitCycles); w > 0 {
			fmt.Printf(", %d grant-wait cycles", w)
		}
		if len(ss.Stats.Violations) > 0 {
			fmt.Printf(", VIOLATIONS: %d", len(ss.Stats.Violations))
		}
		fmt.Println()
	}
	if err := fft.CheckOutput(mem, in); err != nil {
		fmt.Println("output check: FAIL:", err)
	} else {
		fmt.Println("output check: PASS (hardware memory image == fixed-point 2-D FFT)")
	}

	cpt := float64(res.TotalCycles) / float64(*tiles)
	fmt.Printf("\n== 512x512 image timing (paper: HW 4.4 s, SW 6.8 s) ==\n")
	fmt.Printf("cycles/tile: %.1f\n", cpt)
	fmt.Printf("hardware @ %.0f MHz: %.2f s\n", fft.ClockMHz, fft.HardwareSeconds(cpt, 512))
	fmt.Printf("software (Pentium-150 model): %.2f s\n", fft.SoftwareSeconds(512))
	fmt.Printf("speedup: %.2fx\n", fft.SoftwareSeconds(512)/fft.HardwareSeconds(cpt, 512))
}

func totalWait(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
