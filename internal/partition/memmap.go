package partition

import (
	"fmt"
	"sort"

	"sparcs/internal/rc"
	"sparcs/internal/taskgraph"
)

// mapSegments packs the stage's segments into the board's physical banks,
// minimizing
//
//	10 * (total arbiter request lines) + (remote bus pin cost)
//
// by greedy placement followed by move/swap local improvement. Arbiter
// request lines are counted with dependency elision: only tasks with an
// unordered peer on the same bank need lines, so co-locating segments
// whose accessors are strictly ordered (e.g. an F task's input with a g
// task's output) is free — the packing structure behind the paper's
// Figure 11.
func mapSegments(g *taskgraph.Graph, board *rc.Board, st *Stage, opts Options) error {
	inStage := map[string]bool{}
	for _, t := range st.Tasks {
		inStage[t] = true
	}
	// Segments accessed in this stage, with their stage-local accessors.
	// Cohort members (segments the host streams as one block) fuse into a
	// single placement unit.
	type segInfo struct {
		name      string // segment or cohort name
		members   []string
		size      int
		accessors []string
	}
	var segs []segInfo
	cohortIdx := map[string]int{}
	seen := map[string]bool{}
	for _, tname := range st.Tasks {
		for _, s := range g.TaskByName(tname).Segments() {
			if seen[s] {
				continue
			}
			seen[s] = true
			var acc []string
			for _, a := range g.Accessors(s) {
				if inStage[a] {
					acc = append(acc, a)
				}
			}
			sd := g.SegmentByName(s)
			if sd.Cohort != "" {
				if ci, ok := cohortIdx[sd.Cohort]; ok {
					segs[ci].members = append(segs[ci].members, s)
					segs[ci].size += sd.SizeBytes
					segs[ci].accessors = mergeNames(segs[ci].accessors, acc)
					continue
				}
				cohortIdx[sd.Cohort] = len(segs)
				segs = append(segs, segInfo{name: "cohort:" + sd.Cohort, members: []string{s}, size: sd.SizeBytes, accessors: acc})
				continue
			}
			segs = append(segs, segInfo{name: s, members: []string{s}, size: sd.SizeBytes, accessors: acc})
		}
	}
	sort.SliceStable(segs, func(i, j int) bool { return segs[i].size > segs[j].size })

	nBanks := len(board.Banks)
	bankSegs := make([][]string, nBanks)
	bankUsed := make([]int, nBanks)
	assign := map[string]int{}
	accessorsOf := map[string][]string{}
	for _, s := range segs {
		accessorsOf[s.name] = s.accessors
	}

	// bankCost computes the arbitration + pin cost of one bank's grouping.
	bankCost := func(bi int, members []string) int {
		if len(members) == 0 {
			return 0
		}
		accSet := map[string]bool{}
		var accList []string
		for _, s := range members {
			for _, a := range accessorsOf[s] {
				if !accSet[a] {
					accSet[a] = true
					accList = append(accList, a)
				}
			}
		}
		arbMembers := g.UnorderedMembers(accList)
		cost := 0
		if len(arbMembers) >= 2 {
			cost += 10 * len(arbMembers)
		}
		// Remote bus cost: one bus per remote PE with accessors.
		remotePEs := map[int]bool{}
		for _, a := range accList {
			if pe := st.TaskPE[a]; pe != board.Banks[bi].PE {
				remotePEs[pe] = true
			}
		}
		cost += len(remotePEs) * opts.busPins() / 5
		return cost
	}

	// Greedy placement.
	for _, s := range segs {
		best, bestDelta := -1, 0
		for bi := range board.Banks {
			if bankUsed[bi]+s.size > board.Banks[bi].SizeBytes {
				continue
			}
			delta := bankCost(bi, append(append([]string(nil), bankSegs[bi]...), s.name)) - bankCost(bi, bankSegs[bi])
			// Affinity tie-break: prefer banks sharing accessors.
			if best < 0 || delta < bestDelta {
				best, bestDelta = bi, delta
			}
		}
		if best < 0 {
			return fmt.Errorf("segment %s (%d bytes) does not fit any bank", s.name, s.size)
		}
		bankSegs[best] = append(bankSegs[best], s.name)
		bankUsed[best] += s.size
		assign[s.name] = best
	}

	// Local improvement: single-segment moves and pairwise swaps.
	totalCost := func() int {
		c := 0
		for bi := range board.Banks {
			c += bankCost(bi, bankSegs[bi])
		}
		return c
	}
	remove := func(bi int, name string) {
		for i, s := range bankSegs[bi] {
			if s == name {
				bankSegs[bi] = append(bankSegs[bi][:i], bankSegs[bi][i+1:]...)
				return
			}
		}
	}
	unitSize := map[string]int{}
	for _, s := range segs {
		unitSize[s.name] = s.size
	}
	sizeOf := func(name string) int { return unitSize[name] }
	improved := true
	for iter := 0; improved && iter < 50; iter++ {
		improved = false
		base := totalCost()
		// Moves.
		for _, s := range segs {
			from := assign[s.name]
			for to := range board.Banks {
				if to == from || bankUsed[to]+s.size > board.Banks[to].SizeBytes {
					continue
				}
				remove(from, s.name)
				bankSegs[to] = append(bankSegs[to], s.name)
				bankUsed[from] -= s.size
				bankUsed[to] += s.size
				assign[s.name] = to
				if totalCost() < base {
					improved = true
					base = totalCost()
				} else {
					remove(to, s.name)
					bankSegs[from] = append(bankSegs[from], s.name)
					bankUsed[to] -= s.size
					bankUsed[from] += s.size
					assign[s.name] = from
				}
			}
		}
		// Swaps.
		for i := 0; i < len(segs); i++ {
			for j := i + 1; j < len(segs); j++ {
				a, b := segs[i].name, segs[j].name
				ba, bb := assign[a], assign[b]
				if ba == bb {
					continue
				}
				if bankUsed[ba]-sizeOf(a)+sizeOf(b) > board.Banks[ba].SizeBytes ||
					bankUsed[bb]-sizeOf(b)+sizeOf(a) > board.Banks[bb].SizeBytes {
					continue
				}
				swap := func() {
					remove(ba, a)
					remove(bb, b)
					bankSegs[ba] = append(bankSegs[ba], b)
					bankSegs[bb] = append(bankSegs[bb], a)
					bankUsed[ba] += sizeOf(b) - sizeOf(a)
					bankUsed[bb] += sizeOf(a) - sizeOf(b)
					assign[a], assign[b] = bb, ba
					ba, bb = bb, ba
				}
				swap()
				if totalCost() < base {
					improved = true
					base = totalCost()
				} else {
					swap()
				}
			}
		}
	}

	// Expand placement units back into real segments.
	memberOf := map[string][]string{}
	for _, s := range segs {
		memberOf[s.name] = s.members
	}
	st.SegBank = map[string]int{}
	st.Banks = make([][]string, nBanks)
	for unit, bi := range assign {
		for _, seg := range memberOf[unit] {
			st.SegBank[seg] = bi
			st.Banks[bi] = append(st.Banks[bi], seg)
		}
	}
	for bi := range st.Banks {
		sort.Strings(st.Banks[bi])
	}
	st.Arbiters = deriveArbiters(g, board, st, inStage)
	return nil
}

// mergeNames unions two name lists preserving first-seen order.
func mergeNames(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, lst := range [][]string{a, b} {
		for _, n := range lst {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}

// deriveArbiters computes the arbiter specs for each bank with contending
// accessors.
func deriveArbiters(g *taskgraph.Graph, board *rc.Board, st *Stage, inStage map[string]bool) []ArbiterSpec {
	var out []ArbiterSpec
	for bi, segs := range st.Banks {
		if len(segs) == 0 {
			continue
		}
		accSet := map[string]bool{}
		var accList []string
		for _, s := range segs {
			for _, a := range g.Accessors(s) {
				if inStage[a] && !accSet[a] {
					accSet[a] = true
					accList = append(accList, a)
				}
			}
		}
		sort.Strings(accList)
		members := g.UnorderedMembers(accList)
		if len(members) < 2 {
			continue
		}
		var elided []string
		memberSet := map[string]bool{}
		for _, m := range members {
			memberSet[m] = true
		}
		for _, a := range accList {
			if !memberSet[a] {
				elided = append(elided, a)
			}
		}
		out = append(out, ArbiterSpec{
			Resource: board.Banks[bi].Name,
			Members:  members,
			Elided:   elided,
		})
	}
	return out
}

// checkAreaWithArbiters verifies per-PE CLB capacity including the
// arbiters hosted on each bank's PE.
func checkAreaWithArbiters(g *taskgraph.Graph, board *rc.Board, st *Stage, opts Options) error {
	load := make([]int, len(board.PEs))
	for t, pe := range st.TaskPE {
		load[pe] += g.TaskByName(t).AreaCLBs
	}
	bankPE := map[string]int{}
	for bi, b := range board.Banks {
		bankPE[b.Name] = board.Banks[bi].PE
	}
	for _, arb := range st.Arbiters {
		if pe, ok := bankPE[arb.Resource]; ok {
			// Price the arbiter at its simulated width: expected
			// background phantom lines widen the policy at run time and
			// its hardware footprint with it.
			load[pe] += opts.arbArea(arb.N() + opts.ExpectedContention[arb.Resource])
		}
	}
	for pe, l := range load {
		if l > board.PEs[pe].Device.CLBs {
			return fmt.Errorf("PE %s over capacity: %d > %d CLBs (incl. arbiters)",
				board.PEs[pe].Name, l, board.PEs[pe].Device.CLBs)
		}
	}
	return nil
}

// checkPins verifies per-PE pin budgets: every PE needs one bus
// (opts.BusPins wide) per distinct remote bank its tasks access, plus two
// pins (request+grant) per arbitrated task with a remote arbiter. Buses
// ride a direct link when one exists, otherwise the crossbar.
func checkPins(g *taskgraph.Graph, board *rc.Board, st *Stage, opts Options) error {
	arbMembers := map[string]map[string]bool{} // bank -> member tasks
	for _, a := range st.Arbiters {
		m := map[string]bool{}
		for _, t := range a.Members {
			m[t] = true
		}
		arbMembers[a.Resource] = m
	}
	xbarUse := make([]int, len(board.PEs))
	linkUse := map[[2]int]int{}
	st.PinUse = make([]int, len(board.PEs))

	for pe := range board.PEs {
		// Distinct remote banks accessed from this PE.
		remote := map[int][]string{} // bank index -> accessing tasks on pe
		for t, tpe := range st.TaskPE {
			if tpe != pe {
				continue
			}
			for _, s := range g.TaskByName(t).Segments() {
				bi, ok := st.SegBank[s]
				if !ok || board.Banks[bi].PE == pe {
					continue
				}
				remote[bi] = append(remote[bi], t)
			}
		}
		for bi, tasks := range remote {
			pins := opts.busPins()
			seenTask := map[string]bool{}
			for _, t := range tasks {
				if seenTask[t] {
					continue
				}
				seenTask[t] = true
				if arbMembers[board.Banks[bi].Name][t] {
					pins += 2 // request + grant across the fabric
				}
			}
			target := board.Banks[bi].PE
			if link, ok := board.LinkBetween(pe, target); ok {
				key := [2]int{min(pe, target), max(pe, target)}
				linkUse[key] += pins
				if linkUse[key] > link.Pins {
					// Spill to the crossbar instead.
					linkUse[key] -= pins
					xbarUse[pe] += pins
				}
			} else {
				xbarUse[pe] += pins
			}
			st.PinUse[pe] += pins
		}
	}
	for pe, use := range xbarUse {
		if use > board.XbarPins {
			return fmt.Errorf("PE %s crossbar pins over budget: %d > %d",
				board.PEs[pe].Name, use, board.XbarPins)
		}
	}
	return nil
}
