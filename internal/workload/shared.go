// Correlated multi-resource sources: one generator driving request
// lines on several arbiters with hold-A-while-waiting-on-B semantics —
// the deadlock-adjacent sharing pattern (a task holds bank A while it
// waits for channel B) that no per-arbiter generator can express, and
// the ROADMAP's multi-resource workload item.

package workload

import (
	"fmt"
	"strconv"
	"strings"

	"sparcs/internal/arbiter"
)

// SharedSource is a closed-loop generator spanning several arbitrated
// resources; it implements sim.SharedRequester. It runs Lanes()
// independent jobs, each claiming one request line on every resource.
//
// A lane's lifecycle is the classic hold-and-wait protocol:
//
//  1. Idle. Each cycle an arrival fires with probability p (one rng
//     draw per lane per cycle, consumed unconditionally, so the arrival
//     process is identical no matter which policies serve it).
//  2. Acquire the resources strictly in Resources() order: request
//     resource k while KEEPING the request lines of resources 0..k-1
//     asserted — under the paper's non-preemptive protocol an asserted
//     request retains its grant, so the lane holds everything it has
//     acquired while it waits.
//  3. Once every resource has been acquired, hold them all for `hold`
//     cycles counted while all grants are simultaneously observed (a
//     preemptive policy can revoke a grant mid-hold; such cycles do not
//     count), then release every line at once and go idle.
//
// Two SharedSources spanning the same resources in opposite orders
// create a circular hold-and-wait — genuinely deadlock-adjacent load the
// simulator's watchdog must catch.
type SharedSource struct {
	name      string
	resources []string
	lanes     int
	seed      uint64
	p         float64
	hold      int
	streams   []rng
	// Per lane: number of resources acquired so far, -1 when idle. A
	// resource counts as acquired once its grant has been observed; the
	// line stays asserted from first request through release.
	stage []int
	// Per lane: all-held cycles accumulated toward the hold time.
	heldFor []int
	// Per-resource lane-word scratch for the []bool Next adapter.
	reqW, prevW []arbiter.BitVec
}

// NewShared returns a correlated source over the named resources in
// acquisition order. Each of the lanes runs an independent job stream
// (independent rng streams derived from seed); p is the per-cycle
// arrival probability of an idle lane and hold the number of all-held
// cycles before release.
func NewShared(resources []string, lanes int, p float64, hold int, seed uint64) (*SharedSource, error) {
	if len(resources) < 2 {
		return nil, fmt.Errorf("workload: shared source needs at least 2 resources, got %v", resources)
	}
	seen := map[string]bool{}
	for _, r := range resources {
		if r == "" {
			return nil, fmt.Errorf("workload: shared source has an empty resource name in %v", resources)
		}
		if seen[r] {
			return nil, fmt.Errorf("workload: shared source names resource %s twice", r)
		}
		seen[r] = true
	}
	if lanes < 1 {
		return nil, fmt.Errorf("workload: shared source lanes must be positive, got %d", lanes)
	}
	if lanes > arbiter.MaxN {
		return nil, fmt.Errorf("workload: shared source lanes must be at most %d (one request word), got %d", arbiter.MaxN, lanes)
	}
	if err := checkRate("corr", p); err != nil {
		return nil, err
	}
	if hold < 1 {
		return nil, fmt.Errorf("workload: shared source hold must be positive, got %d", hold)
	}
	s := &SharedSource{
		name:      fmt.Sprintf("corr:%.2f:%d", p, hold),
		resources: append([]string(nil), resources...),
		lanes:     lanes,
		seed:      seed,
		p:         p,
		hold:      hold,
		stage:     make([]int, lanes),
		heldFor:   make([]int, lanes),
		reqW:      make([]arbiter.BitVec, len(resources)),
		prevW:     make([]arbiter.BitVec, len(resources)),
	}
	s.Reset()
	return s, nil
}

// Name identifies the source shape with its parameters.
func (s *SharedSource) Name() string { return s.name }

// Resources lists the spanned resources in acquisition order.
func (s *SharedSource) Resources() []string { return s.resources }

// Lanes returns the number of independent jobs.
func (s *SharedSource) Lanes() int { return s.lanes }

// Reset returns every lane to idle and rewinds the arrival streams.
func (s *SharedSource) Reset() {
	s.streams = taskStreams(s.seed, s.lanes)
	for j := range s.stage {
		s.stage[j] = -1
		s.heldFor[j] = 0
	}
}

// Next advances every lane one cycle: consume last cycle's grants, then
// fill req[r][j] for resource r, lane j. Allocation-free.
func (s *SharedSource) Next(req, prevGrant [][]bool) {
	for r := range s.resources {
		s.prevW[r] = arbiter.PackBools(prevGrant[r])
	}
	s.NextBits(s.reqW, s.prevW)
	for r := range s.resources {
		s.reqW[r].WriteBools(req[r])
	}
}

// NextBits is the word-level core of Next (bit j of each word = lane j);
// it implements sim.BitSharedRequester, rewriting req[r] in place. The
// draw order matches the slice surface exactly.
//
//sparcs:hotpath
func (s *SharedSource) NextBits(req, prevGrant []arbiter.BitVec) {
	k := len(s.resources)
	for r := 0; r < k; r++ {
		req[r] = 0
	}
	for j := 0; j < s.lanes; j++ {
		bit := arbiter.BitVec(1) << uint(j)
		// One draw per lane per cycle regardless of state, so arrivals
		// are policy-independent.
		arrive := s.streams[j].chance(s.p)
		switch {
		case s.stage[j] < 0:
			if arrive {
				s.stage[j] = 0
			}
		case s.stage[j] < k:
			// Waiting on resource stage[j]: advance when its grant lands.
			// Several may land in back-to-back cycles; latch one per cycle
			// (the request for the next resource only went up last cycle).
			if prevGrant[s.stage[j]]&bit != 0 {
				s.stage[j]++
			}
		}
		if s.stage[j] == k {
			// All acquired: count cycles where every grant is held
			// simultaneously (preemption can take one away mid-hold).
			all := true
			for r := 0; r < k; r++ {
				if prevGrant[r]&bit == 0 {
					all = false
					break
				}
			}
			if all {
				s.heldFor[j]++
			}
			if s.heldFor[j] >= s.hold {
				s.stage[j] = -1
				s.heldFor[j] = 0
			}
		}
		// Request lines: everything acquired so far plus the one being
		// waited on; idle lanes release everything.
		if s.stage[j] >= 0 {
			top := s.stage[j]
			if top >= k {
				top = k - 1
			}
			for r := 0; r <= top; r++ {
				req[r] |= bit
			}
		}
	}
}

// NewSharedGenerator constructs a correlated source from the textual
// grammar used by contention specs:
//
//	corr[:p[:hold]]
//
// p is the per-lane arrival probability when idle (default 0.10) and
// hold the all-held cycles before release (default 2; the separator is
// ':' because contention spec lists are comma-separated). The resource
// list, lane count, and seed come from the surrounding spec
// ("M1+M3=corr:0.25/2" spans M1 and M3 with 2 lanes).
func NewSharedGenerator(spec string, resources []string, lanes int, seed uint64) (*SharedSource, error) {
	shape, param := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		shape, param = spec[:i], spec[i+1:]
	}
	if shape != "corr" {
		return nil, fmt.Errorf("workload: unknown shared workload %q (only \"corr[:p[:hold]]\" spans resources)", spec)
	}
	p, hold := 0.10, 2
	if param != "" {
		ps, hs, hasHold := param, "", false
		if i := strings.IndexByte(param, ':'); i >= 0 {
			ps, hs, hasHold = param[:i], param[i+1:], true
		}
		v, err := strconv.ParseFloat(ps, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: corr rate %q is not a number", ps)
		}
		p = v
		if hasHold {
			h, err := strconv.Atoi(hs)
			if err != nil || h < 1 {
				return nil, fmt.Errorf("workload: corr hold %q must be a positive integer", hs)
			}
			hold = h
		}
	}
	return NewShared(resources, lanes, p, hold, seed)
}
