package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockorder proves the module's locking discipline deadlock-free, the
// static mirror of the runtime acquisition-order checker in
// core.CheckProtocols. It runs the lock dataflow over every function
// and function literal in the module, building the global acquisition
// graph: an edge A -> B for every program point that takes B while
// holding A, with interprocedural edges contributed through call-graph
// summaries (a call made under a lock inherits every lock its callee
// set can transitively acquire). It reports:
//
//   - acquisition-order cycles: two sites whose combined edges form a
//     cycle in the global graph — the classic hold-and-wait inversion;
//   - self-deadlocks: re-acquiring a held, non-reentrant lock, directly
//     or through a call;
//   - blocking under a lock: channel sends/receives, defaultless
//     selects, WaitGroup.Wait, time.Sleep, or calls that can
//     transitively block, reached while a lock is held.
//     sync.Cond.Wait is exempt for the one lock its Cond wraps (Wait
//     releases it while sleeping) but flagged for any other held lock;
//   - dynamic calls under a lock: a function value invoked while
//     holding a lock has no callee set, so the hold-and-wait graph
//     cannot be proven acyclic through it.
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc:  "build the module-wide lock acquisition graph and report ordering cycles, self-deadlocks, and blocking operations reached while a lock is held",
	Run:  runLockorder,
}

func runLockorder(pass *Pass) error {
	for _, d := range pass.Module.lockAnalysis().byPkg[pass.Package.Path] {
		pass.Reportf(d.pos, "%s", d.msg)
	}
	return nil
}

// lockReport is the module-wide result of the lock dataflow, computed
// once and cached: lockorder findings keyed by package path, plus the
// per-function blocking/acquisition summaries goroleak reuses.
type lockReport struct {
	byPkg map[string][]lockDiag
	sums  map[*types.Func]*lockSummary
	facts *lockFacts
}

type lockDiag struct {
	pos token.Pos
	msg string
}

// A lockSummary is the transitive effect of calling one function: every
// lock it may acquire and every way it may block, each with the witness
// position of the original operation.
type lockSummary struct {
	acquires map[*types.Var]token.Pos
	blocking map[string]token.Pos
	// goCalls marks call expressions that are `go` statements: the spawn
	// returns immediately, so callee effects must not propagate to the
	// spawning function.
	goCalls map[*ast.CallExpr]bool
}

// lockAnalysis computes (once) the module's lock report.
func (m *Module) lockAnalysis() *lockReport {
	if m.locks != nil {
		return m.locks
	}
	rep := &lockReport{
		byPkg: map[string][]lockDiag{},
		sums:  map[*types.Func]*lockSummary{},
		facts: newLockFacts(m),
	}
	m.locks = rep

	cg := m.CallGraph()
	nodes := cg.Functions()

	// Phase 1: intraprocedural summaries, then a fixed point over the
	// call graph. Monotone over two finite sets, so it terminates.
	for _, n := range nodes {
		rep.sums[n.Fn] = intraSummary(rep.facts, n.Pkg, n.Decl.Body)
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			s := rep.sums[n.Fn]
			for _, site := range n.Sites {
				if s.goCalls[site.Call] {
					continue
				}
				for _, callee := range site.Callees {
					if cs := rep.sums[callee]; cs != nil && s.absorb(cs) {
						changed = true
					}
				}
			}
		}
	}

	// Phase 2: flow walk every function body (and, transitively, every
	// function literal, each with an empty entry held-set — a literal
	// runs in whatever goroutine invokes it, not at its creation site),
	// collecting acquisition edges and held-context findings.
	var edges []lockEdge
	seenLit := map[*ast.FuncLit]bool{}
	for _, n := range nodes {
		var queue []*ast.FuncLit
		w := rep.flowFor(n.Pkg, funcDisplay(n.Fn), &edges, func(lit *ast.FuncLit) {
			if !seenLit[lit] {
				seenLit[lit] = true
				queue = append(queue, lit)
			}
		})
		w.walk(n.Decl.Body)
		for len(queue) > 0 {
			lit := queue[0]
			queue = queue[1:]
			w.walk(lit.Body)
		}
	}

	rep.reportCycles(m, edges)
	return rep
}

// absorb merges a callee summary into s, reporting whether s grew.
func (s *lockSummary) absorb(callee *lockSummary) bool {
	grew := false
	for lk, pos := range callee.acquires {
		if _, ok := s.acquires[lk]; !ok {
			s.acquires[lk] = pos
			grew = true
		}
	}
	for desc, pos := range callee.blocking {
		if _, ok := s.blocking[desc]; !ok {
			s.blocking[desc] = pos
			grew = true
		}
	}
	return grew
}

// intraSummary scans one body for its direct lock acquisitions and
// blocking operations. Function literal bodies are excluded — they
// execute elsewhere and are summarized through their own flow walk —
// and so are the communication clauses of a select that has a default
// case (a non-blocking poll).
func intraSummary(lf *lockFacts, p *Package, body ast.Node) *lockSummary {
	s := &lockSummary{
		acquires: map[*types.Var]token.Pos{},
		blocking: map[string]token.Pos{},
		goCalls:  map[*ast.CallExpr]bool{},
	}
	record := func(desc string, pos token.Pos) {
		if _, ok := s.blocking[desc]; !ok {
			s.blocking[desc] = pos
		}
	}
	var scan func(n ast.Node)
	scan = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.GoStmt:
				s.goCalls[n.Call] = true
				for _, arg := range n.Call.Args {
					scan(arg)
				}
				return false
			case *ast.SelectStmt:
				hasDefault := false
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					record("select with no default case", n.Pos())
				}
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						for _, st := range cc.Body {
							scan(st)
						}
					}
				}
				return false
			case *ast.SendStmt:
				record("channel send", n.Pos())
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					record("channel receive", n.Pos())
				}
			case *ast.RangeStmt:
				if _, isChan := p.Info.TypeOf(n.X).Underlying().(*types.Chan); isChan {
					record("channel receive (range)", n.Pos())
				}
			case *ast.CallExpr:
				kind, lock, desc := lf.classifyLockCall(p, n)
				switch kind {
				case opAcquire:
					if lock != nil {
						if _, ok := s.acquires[lock]; !ok {
							s.acquires[lock] = n.Pos()
						}
					}
				case opCondWait:
					record("sync.Cond.Wait", n.Pos())
				case opBlocking:
					record(desc, n.Pos())
				}
			}
			return true
		})
	}
	scan(body)
	return s
}

// A lockEdge records one witness of "to acquired while from was held".
type lockEdge struct {
	from, to *types.Var
	pos      token.Pos
	pkg      string
	via      string // callee name for interprocedural edges, "" for direct
}

// flowFor builds the lockFlow whose hooks feed rep for one function.
func (rep *lockReport) flowFor(p *Package, fnName string, edges *[]lockEdge, onLit func(*ast.FuncLit)) *lockFlow {
	lf := rep.facts
	report := func(pos token.Pos, format string, args ...any) {
		rep.byPkg[p.Path] = append(rep.byPkg[p.Path], lockDiag{pos, fmt.Sprintf(format, args...)})
	}
	heldNames := func(held heldSet) string {
		var names []string
		for _, v := range lf.sorted(held) {
			names = append(names, lf.name(v))
		}
		return strings.Join(names, ", ")
	}
	return &lockFlow{
		facts: lf,
		pkg:   p,
		hooks: flowHooks{
			acquire: func(held heldSet, lock *types.Var, pos token.Pos) {
				if held[lock] {
					report(pos, "%s acquired while already held: self-deadlock on a non-reentrant lock", lf.name(lock))
					return
				}
				for _, h := range lf.sorted(held) {
					*edges = append(*edges, lockEdge{from: h, to: lock, pos: pos, pkg: p.Path})
				}
			},
			blocking: func(held heldSet, desc string, condLock *types.Var, pos token.Pos) {
				if len(held) == 0 {
					return
				}
				if desc == "sync.Cond.Wait" {
					// Wait releases its own lock while sleeping; only OTHER
					// held locks stay pinned across the sleep.
					others := held.clone()
					if condLock != nil {
						delete(others, condLock)
					}
					if len(others) > 0 {
						report(pos, "sync.Cond.Wait releases only its own lock; still holding %s while waiting can deadlock", heldNames(others))
					} else if condLock == nil {
						report(pos, "sync.Cond.Wait on a cond whose lock cannot be resolved while %s is held", heldNames(held))
					}
					return
				}
				report(pos, "potential deadlock: %s while %s is held", desc, heldNames(held))
			},
			call: func(held heldSet, site CallSite, pos token.Pos) {
				if len(held) == 0 {
					return
				}
				if site.Kind == CallDynamic {
					report(pos, "dynamic call through a function value while %s is held cannot be proven deadlock-free", heldNames(held))
					return
				}
				for _, callee := range site.Callees {
					cs := rep.sums[callee]
					if cs == nil {
						continue
					}
					name := funcDisplay(callee)
					for _, lk := range lf.sortedAcquires(cs) {
						if held[lk] {
							report(pos, "call to %s acquires %s, which is already held: self-deadlock on a non-reentrant lock", name, lf.name(lk))
							continue
						}
						for _, h := range lf.sorted(held) {
							*edges = append(*edges, lockEdge{from: h, to: lk, pos: pos, pkg: p.Path, via: name})
						}
					}
					for _, desc := range sortedKeys(cs.blocking) {
						report(pos, "potential deadlock: call to %s may block (%s) while %s is held", name, desc, heldNames(held))
					}
				}
			},
			funcLit: func(lit *ast.FuncLit) { onLit(lit) },
			goStmt: func(held heldSet, g *ast.GoStmt) {
				// The spawned goroutine starts with its own (empty) lock
				// context; only queue its literal body for a separate walk.
				if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
					onLit(lit)
				}
			},
		},
	}
}

// sortedAcquires orders a summary's acquired locks by display name.
func (lf *lockFacts) sortedAcquires(s *lockSummary) []*types.Var {
	out := make([]*types.Var, 0, len(s.acquires))
	for v := range s.acquires {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return lf.name(out[i]) < lf.name(out[j]) })
	return out
}

func sortedKeys(m map[string]token.Pos) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// funcDisplay renders a function for diagnostics: pkg.Name for
// functions, pkg.Type.Name for methods.
func funcDisplay(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if tn := ownerTypeName(sig.Recv().Type()); tn != "" {
			name = tn + "." + name
		}
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

// reportCycles finds acquisition-order cycles in the global edge set
// and reports every witness edge that lies on one.
func (rep *lockReport) reportCycles(m *Module, edges []lockEdge) {
	adj := map[*types.Var]map[*types.Var]bool{}
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = map[*types.Var]bool{}
		}
		adj[e.from][e.to] = true
	}
	next := func(v *types.Var) []*types.Var {
		out := make([]*types.Var, 0, len(adj[v]))
		for w := range adj[v] {
			out = append(out, w)
		}
		sort.Slice(out, func(i, j int) bool { return rep.facts.name(out[i]) < rep.facts.name(out[j]) })
		return out
	}
	// path finds a lock path from src to dst, depth-first over the
	// name-sorted adjacency for determinism.
	var path func(src, dst *types.Var, seen map[*types.Var]bool) []*types.Var
	path = func(src, dst *types.Var, seen map[*types.Var]bool) []*types.Var {
		if src == dst {
			return []*types.Var{src}
		}
		seen[src] = true
		for _, w := range next(src) {
			if seen[w] {
				continue
			}
			if p := path(w, dst, seen); p != nil {
				return append([]*types.Var{src}, p...)
			}
		}
		return nil
	}
	seenWitness := map[string]bool{}
	for _, e := range edges {
		back := path(e.to, e.from, map[*types.Var]bool{})
		if back == nil {
			continue
		}
		key := fmt.Sprintf("%v|%v|%v", e.pos, rep.facts.name(e.from), rep.facts.name(e.to))
		if seenWitness[key] {
			continue
		}
		seenWitness[key] = true
		// back runs to -> ... -> from, so prefixing from yields the full
		// cycle from the held lock's point of view.
		names := []string{rep.facts.name(e.from)}
		for _, v := range back {
			names = append(names, rep.facts.name(v))
		}
		full := strings.Join(names, " -> ")
		via := ""
		if e.via != "" {
			via = fmt.Sprintf(" (through call to %s)", e.via)
		}
		rep.byPkg[e.pkg] = append(rep.byPkg[e.pkg], lockDiag{e.pos,
			fmt.Sprintf("acquiring %s while %s is held%s creates an acquisition-order cycle: %s",
				rep.facts.name(e.to), rep.facts.name(e.from), via, full)})
	}
}
