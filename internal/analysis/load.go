package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// rawPkg is one package discovered for loading but not yet parsed or
// type-checked.
type rawPkg struct {
	path    string
	dir     string
	goFiles []string // absolute paths, non-test files only
	root    bool
}

// listedPkg is the subset of `go list -json` output the loaders use.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
}

// goList runs `go list -deps -export -json` in dir and decodes the
// package stream.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Name,Dir,Export,GoFiles,Standard,DepOnly,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadPackages loads the packages matching patterns (and their
// module-local dependencies) from source in module mode, resolving
// external dependencies through the build cache's export data. dir is
// the directory to resolve patterns from (the module root, typically
// ".").
func LoadPackages(dir string, patterns ...string) (*Module, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	modPath := ""
	raw := map[string]*rawPkg{}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Module != nil && !p.Standard {
			if modPath == "" {
				modPath = p.Module.Path
			}
			files := make([]string, 0, len(p.GoFiles))
			for _, f := range p.GoFiles {
				files = append(files, filepath.Join(p.Dir, f))
			}
			raw[p.ImportPath] = &rawPkg{path: p.ImportPath, dir: p.Dir, goFiles: files, root: !p.DepOnly}
		} else if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("go list %s: no module-local packages matched", strings.Join(patterns, " "))
	}
	return check(modPath, raw, exports)
}

// LoadTree loads paths from a GOPATH-style source tree rooted at
// srcdir (testdata/src layout): each path's package directory is
// srcdir/<path>, local imports resolve within srcdir, and anything else
// resolves as a standard-library import. The named paths become the
// analysis roots.
func LoadTree(srcdir string, paths ...string) (*Module, error) {
	raw := map[string]*rawPkg{}
	external := map[string]bool{}
	var discover func(path string, root bool) error
	discover = func(path string, root bool) error {
		if p, ok := raw[path]; ok {
			p.root = p.root || root
			return nil
		}
		pkgDir := filepath.Join(srcdir, filepath.FromSlash(path))
		entries, err := os.ReadDir(pkgDir)
		if err != nil {
			return fmt.Errorf("loading testdata package %s: %w", path, err)
		}
		rp := &rawPkg{path: path, dir: pkgDir, root: root}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			rp.goFiles = append(rp.goFiles, filepath.Join(pkgDir, e.Name()))
		}
		if len(rp.goFiles) == 0 {
			return fmt.Errorf("testdata package %s has no Go files", path)
		}
		raw[path] = rp
		// Scan imports to pull in local dependencies.
		fset := token.NewFileSet()
		for _, f := range rp.goFiles {
			parsed, err := parser.ParseFile(fset, f, nil, parser.ImportsOnly)
			if err != nil || parsed == nil {
				// A file that does not parse is recorded by the full load;
				// dependency discovery just does without its imports.
				continue
			}
			for _, imp := range parsed.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if st, err := os.Stat(filepath.Join(srcdir, filepath.FromSlash(ip))); err == nil && st.IsDir() {
					if err := discover(ip, false); err != nil {
						return err
					}
				} else {
					external[ip] = true
				}
			}
		}
		return nil
	}
	for _, p := range paths {
		if err := discover(p, true); err != nil {
			return nil, err
		}
	}
	exports := map[string]string{}
	if len(external) > 0 {
		var ext []string
		for p := range external {
			if p != "unsafe" {
				ext = append(ext, p)
			}
		}
		sort.Strings(ext)
		if len(ext) > 0 {
			listed, err := goList(srcdir, ext)
			if err != nil {
				return nil, err
			}
			for _, p := range listed {
				if p.Export != "" {
					exports[p.ImportPath] = p.Export
				}
			}
		}
	}
	// Module path "" marks GOPATH-style loads: every loaded package is
	// module-local for cross-package analysis purposes.
	return check("", raw, exports)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// check parses and type-checks every raw package in dependency order,
// sharing one FileSet, and assembles the Module. Parse and type-check
// failures do NOT abort the load: the broken package is kept (flagged
// Broken, excluded from analysis) and its failure lands in
// Module.Errors, so a package that stops compiling fails the sparcsvet
// run loudly instead of silently dropping out of the analyzed set.
func check(modPath string, raw map[string]*rawPkg, exports map[string]string) (*Module, error) {
	fset := token.NewFileSet()
	m := &Module{Path: modPath, Fset: fset, Pkgs: map[string]*Package{}}

	loadErr := func(pos token.Pos, format string, args ...any) {
		m.Errors = append(m.Errors, Diagnostic{Pos: pos, Analyzer: Driver, Message: fmt.Sprintf(format, args...)})
	}

	// Parse everything first so the import graph is known.
	type parsed struct {
		*rawPkg
		files  []*ast.File
		src    map[string][]byte
		broken bool
	}
	pp := map[string]*parsed{}
	for path, rp := range raw {
		p := &parsed{rawPkg: rp, src: map[string][]byte{}}
		for _, f := range rp.goFiles {
			data, err := os.ReadFile(f)
			if err != nil {
				return nil, err
			}
			file, err := parser.ParseFile(fset, f, data, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				p.broken = true
				for _, pe := range parseErrors(fset, err) {
					m.Errors = append(m.Errors, pe)
				}
			}
			if file != nil {
				p.files = append(p.files, file)
				p.src[f] = data
			}
		}
		pp[path] = p
	}

	gcImporter := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var ensure func(path string) (*types.Package, error)
	resolve := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if _, ok := pp[path]; ok {
			return ensure(path)
		}
		return gcImporter.Import(path)
	})

	checking := map[string]bool{}
	ensure = func(path string) (*types.Package, error) {
		if done, ok := m.Pkgs[path]; ok {
			if done.Broken {
				return nil, fmt.Errorf("package %s is broken", path)
			}
			return done.Pkg, nil
		}
		if checking[path] {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		checking[path] = true
		defer delete(checking, path)
		p := pp[path]

		// keep registers the (possibly broken) package so the parsed
		// source stays reachable for comment-level processing.
		keep := func(tpkg *types.Package, info *types.Info, broken bool) *Package {
			pkg := &Package{
				Path:   path,
				Dir:    p.dir,
				Root:   p.root,
				Broken: broken,
				Files:  p.files,
				Pkg:    tpkg,
				Info:   info,
				Src:    p.src,
				Funcs:  map[*types.Func]*ast.FuncDecl{},
				fset:   fset,
			}
			if !broken {
				indexFuncs(pkg)
			}
			m.Pkgs[path] = pkg
			return pkg
		}

		if p.broken { // parse failure already recorded
			keep(nil, nil, true)
			return nil, fmt.Errorf("package %s failed to parse", path)
		}

		// Check local imports first for deterministic error attribution.
		// A broken dependency breaks this package too, with one pointed
		// diagnostic at the import site rather than a cascade of
		// resolution errors.
		deps := map[string][]token.Pos{}
		for _, f := range p.files {
			for _, imp := range f.Imports {
				if ip, err := strconv.Unquote(imp.Path.Value); err == nil {
					deps[ip] = append(deps[ip], imp.Pos())
				}
			}
		}
		var order []string
		for d := range deps {
			if _, ok := pp[d]; ok {
				order = append(order, d)
			}
		}
		sort.Strings(order)
		for _, d := range order {
			if _, err := ensure(d); err != nil {
				loadErr(deps[d][0], "package %s not analyzed: it imports broken package %s", path, d)
				keep(nil, nil, true)
				return nil, fmt.Errorf("package %s depends on broken package %s", path, d)
			}
		}

		info := typesInfo()
		var typeErrs []types.Error
		conf := types.Config{
			Importer: resolve,
			Error: func(err error) {
				var te types.Error
				if errors.As(err, &te) {
					typeErrs = append(typeErrs, te)
				}
			},
		}
		tpkg, err := conf.Check(path, fset, p.files, info)
		if len(typeErrs) > 0 || err != nil {
			if len(typeErrs) == 0 {
				loadErr(token.NoPos, "type-checking %s: %v", path, err)
			}
			for _, te := range typeErrs {
				loadErr(te.Pos, "package %s does not type-check: %s", path, te.Msg)
			}
			keep(tpkg, info, true)
			return nil, fmt.Errorf("type-checking %s failed", path)
		}
		keep(tpkg, info, false)
		return tpkg, nil
	}

	var order []string
	for path := range pp {
		order = append(order, path)
	}
	sort.Strings(order)
	for _, path := range order {
		// Failures are already recorded in m.Errors; later packages
		// still load and analyze.
		_, _ = ensure(path)
	}
	sortDiagnostics(fset, m.Errors)
	return m, nil
}

// parseErrors converts a parser failure into position-carrying driver
// diagnostics (one per scanner error, or a single package-level one for
// failures without positions).
func parseErrors(fset *token.FileSet, err error) []Diagnostic {
	var list scanner.ErrorList
	if errors.As(err, &list) && len(list) > 0 {
		out := make([]Diagnostic, 0, len(list))
		for _, e := range list {
			out = append(out, Diagnostic{Pos: posAt(fset, e.Pos), Analyzer: Driver, Message: "parse error: " + e.Msg})
		}
		return out
	}
	return []Diagnostic{{Pos: token.NoPos, Analyzer: Driver, Message: "parse error: " + err.Error()}}
}

// posAt maps a resolved Position back to a token.Pos in fset (the
// scanner reports Positions; Diagnostic carries Pos).
func posAt(fset *token.FileSet, pos token.Position) token.Pos {
	var found token.Pos
	fset.Iterate(func(f *token.File) bool {
		if f.Name() != pos.Filename {
			return true
		}
		off := pos.Offset
		if off > f.Size() {
			off = f.Size()
		}
		found = f.Pos(off)
		return false
	})
	return found
}

// indexFuncs fills pkg.Funcs with every declared function and method.
func indexFuncs(pkg *Package) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					pkg.Funcs[fn] = fd
				}
			}
		}
	}
}
