package service

import (
	"context"
	"testing"
)

// benchAdmission builds a multi-class controller so the wrr stepper is
// wired in — the fast path must stay allocation-free even when the
// contended path would exercise the arbiter.
func benchAdmission(tb testing.TB) *admission {
	tb.Helper()
	classes := []Class{
		{Name: "interactive", Weight: 4},
		{Name: "batch", Weight: 1},
	}
	a, err := newAdmission(classes, 4, 8)
	if err != nil {
		tb.Fatal(err)
	}
	return a
}

// TestAdmissionFastPathAllocs pins the uncontended grant/release cycle
// at zero heap allocations: an idle server must admit and release an
// experiment without touching the heap, matching the //sparcs:hotpath
// marks on tryFastGrantLocked and release.
func TestAdmissionFastPathAllocs(t *testing.T) {
	a := benchAdmission(t)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		if err := a.acquire(ctx, "interactive"); err != nil {
			t.Fatalf("acquire: %v", err)
		}
		a.release()
	})
	if allocs != 0 {
		t.Fatalf("admission fast path allocates: %.1f allocs per grant/release cycle, want 0", allocs)
	}
}

// BenchmarkAdmissionGrantRelease measures the uncontended admission
// fast path — the fixed per-request overhead the controller adds in
// front of every experiment.
func BenchmarkAdmissionGrantRelease(b *testing.B) {
	a := benchAdmission(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.acquire(ctx, "interactive"); err != nil {
			b.Fatal(err)
		}
		a.release()
	}
}
