package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"sparcs/internal/sim"
	"sparcs/internal/workload"
)

// SharedContentionSpec asks Simulate to inject one correlated
// multi-resource background source: a single workload.SharedSource
// claiming Lanes request lines on EACH of the named arbiters, with
// hold-A-while-waiting-on-B acquisition in Resources order. The textual
// grammar (ParseSharedContention) is
//
//	res1+res2[+...]=workload[/lanes]
//
// comma-separated, e.g. "M1+M3=corr:0.25/2" — the workload half is a
// workload.NewSharedGenerator spec ("corr[:p[:hold]]").
type SharedContentionSpec struct {
	// Resources names the arbitrated resources in acquisition order; at
	// least two, all distinct.
	Resources []string
	// Workload is the shared generator spec ("corr:0.10", ...).
	Workload string
	// Lanes is the number of independent correlated jobs; 0 means 1.
	Lanes int
}

// String renders the canonical textual form of the spec.
func (s SharedContentionSpec) String() string {
	return fmt.Sprintf("%s=%s/%d", strings.Join(s.Resources, "+"), s.Workload, s.lanes())
}

func (s SharedContentionSpec) lanes() int {
	if s.Lanes == 0 {
		return 1
	}
	return s.Lanes
}

// newGen constructs a fresh generator for the spec (each stage and each
// run needs its own stateful instance).
func (s SharedContentionSpec) newGen(seed uint64) (*workload.SharedSource, error) {
	return workload.NewSharedGenerator(s.Workload, s.Resources, s.lanes(), seed)
}

// ParseSharedContention parses a comma-separated list of shared
// contention specs of the grammar documented on SharedContentionSpec.
func ParseSharedContention(s string) ([]SharedContentionSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []SharedContentionSpec
	for _, entry := range strings.Split(s, ",") {
		cs, err := parseSharedEntry(strings.TrimSpace(entry))
		if err != nil {
			return nil, err
		}
		out = append(out, cs)
	}
	return out, nil
}

// parseSharedEntry parses one res1+res2=workload[/lanes] entry,
// validating the workload half immediately.
func parseSharedEntry(entry string) (SharedContentionSpec, error) {
	eq := strings.IndexByte(entry, '=')
	if eq <= 0 || eq == len(entry)-1 {
		return SharedContentionSpec{}, fmt.Errorf("core: shared contention entry %q is not res1+res2=workload[/lanes]", entry)
	}
	cs := SharedContentionSpec{Resources: strings.Split(entry[:eq], "+"), Workload: entry[eq+1:], Lanes: 1}
	seen := make(map[string]bool, len(cs.Resources))
	for _, r := range cs.Resources {
		if seen[r] {
			return SharedContentionSpec{}, fmt.Errorf("core: shared contention entry %q: %w", entry, &DuplicateResourceError{Resource: r})
		}
		seen[r] = true
	}
	if sl := strings.LastIndexByte(cs.Workload, '/'); sl >= 0 {
		v, err := strconv.Atoi(cs.Workload[sl+1:])
		if err != nil || v < 1 {
			return SharedContentionSpec{}, fmt.Errorf("core: shared contention entry %q: lane count %q must be a positive integer", entry, cs.Workload[sl+1:])
		}
		cs.Lanes = v
		cs.Workload = cs.Workload[:sl]
	}
	if _, err := cs.newGen(1); err != nil {
		return SharedContentionSpec{}, fmt.Errorf("core: shared contention entry %q: %w", entry, err)
	}
	return cs, nil
}

// ParseMixedContention parses a comma-separated contention list mixing
// both grammars: entries whose resource half contains '+' become
// correlated SharedContentionSpecs, the rest single-resource
// ContentionSpecs. This is the one-flag front end cmd/sparcs and the
// System API expose ("M1=hog/2,M1+M3=corr:0.25"). Duplicate
// single-resource entries are rejected with a *DuplicateResourceError,
// same as ParseContention; a resource may still appear in both a
// single-resource and a shared entry (independent plus correlated
// load compose).
func ParseMixedContention(s string) ([]ContentionSpec, []SharedContentionSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil, nil
	}
	var single []ContentionSpec
	var shared []SharedContentionSpec
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		eq := strings.IndexByte(entry, '=')
		if eq > 0 && strings.ContainsRune(entry[:eq], '+') {
			cs, err := parseSharedEntry(entry)
			if err != nil {
				return nil, nil, err
			}
			shared = append(shared, cs)
			continue
		}
		cs, err := ParseContention(entry)
		if err != nil {
			return nil, nil, err
		}
		single = append(single, cs...)
	}
	if err := checkDuplicateResources(single); err != nil {
		return nil, nil, err
	}
	return single, shared, nil
}

// SharedLines sums the correlated phantom lines the specs add per
// resource, the shared-source counterpart of PhantomLines.
func SharedLines(specs []SharedContentionSpec) map[string]int {
	extra := map[string]int{}
	for _, cs := range specs {
		for _, r := range cs.Resources {
			extra[r] += cs.lanes()
		}
	}
	return extra
}

// expectedLines merges PhantomLines and SharedLines: the per-resource
// extra request lines the options' background load adds on top of the
// member counts, which is what the partitioner's arbiter-area model
// should price.
func expectedLines(opts Options) map[string]int {
	extra := PhantomLines(opts.Contention)
	//sparcs:ignore determinism commutative per-key accumulation; iteration order cannot change the result
	for r, n := range SharedLines(opts.Shared) {
		extra[r] += n
	}
	return extra
}

// stageArbitrated returns the set of resources the stage arbitrates —
// the predicate every contention/wiring/width decision keys on.
func stageArbitrated(sp *StagePlan) map[string]bool {
	arbitrated := map[string]bool{}
	for _, a := range sp.Inserted.Arbiters {
		arbitrated[a.Resource] = true
	}
	return arbitrated
}

// hostsAll reports whether the set covers every listed resource.
func hostsAll(arbitrated map[string]bool, resources []string) bool {
	for _, r := range resources {
		if !arbitrated[r] {
			return false
		}
	}
	return true
}

// stageShared builds the sim shared sources for one stage. A correlated
// source only means something when every resource it spans is arbitrated
// together, so it wires into exactly the stages containing ALL its
// resources. Seeds continue the contention index sequence (shifted by
// nSingle) so adding a shared source never reseeds the single-resource
// ones.
func stageShared(sp *StagePlan, specs []SharedContentionSpec, seed uint64, nSingle int) ([]sim.SharedSource, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	if seed == 0 {
		seed = 1
	}
	arbitrated := stageArbitrated(sp)
	var out []sim.SharedSource
	for i, cs := range specs {
		if !hostsAll(arbitrated, cs.Resources) {
			continue
		}
		gen, err := cs.newGen(seed + uint64(nSingle+i+1)*0x9e3779b97f4a7c15)
		if err != nil {
			return nil, fmt.Errorf("core: shared contention %s: %w", cs, err)
		}
		out = append(out, sim.SharedSource{Gen: gen})
	}
	return out, nil
}

// validateShared rejects specs spanning resources that are never
// arbitrated together: a correlated source that no stage can host would
// silently report a contention-free run.
func validateShared(d *Design, specs []SharedContentionSpec) error {
	for _, cs := range specs {
		if len(cs.Resources) < 2 {
			return fmt.Errorf("core: shared contention %s spans %d resource(s); need at least 2", cs, len(cs.Resources))
		}
		hosted := false
		for _, sp := range d.Stages {
			if hostsAll(stageArbitrated(sp), cs.Resources) {
				hosted = true
				break
			}
		}
		if !hosted {
			var stages []string
			for si, sp := range d.Stages {
				var res []string
				for _, a := range sp.Inserted.Arbiters {
					res = append(res, a.Resource)
				}
				sort.Strings(res)
				stages = append(stages, fmt.Sprintf("#%d:{%s}", si, strings.Join(res, ",")))
			}
			return fmt.Errorf("core: shared contention %s spans resources no single stage arbitrates together (stages: %s)",
				cs, strings.Join(stages, " "))
		}
	}
	return nil
}

// StageWidths reports, per stage, the request-line width every arbiter
// will be simulated at under the options' contention — member lines plus
// single-resource phantom lines plus the shared lanes of every source
// the stage hosts. This is what Options.NewPolicy will be called with;
// callers use it to validate size-dependent policies before running.
func StageWidths(d *Design, opts Options) []map[string]int {
	phantom := PhantomLines(opts.Contention)
	out := make([]map[string]int, len(d.Stages))
	for si, sp := range d.Stages {
		widths := map[string]int{}
		arbitrated := stageArbitrated(sp)
		for _, a := range sp.Inserted.Arbiters {
			widths[a.Resource] = a.N() + phantom[a.Resource]
		}
		for _, cs := range opts.Shared {
			if !hostsAll(arbitrated, cs.Resources) {
				continue
			}
			for _, r := range cs.Resources {
				widths[r] += cs.lanes()
			}
		}
		out[si] = widths
	}
	return out
}
