package arbiter

import (
	"fmt"

	"sparcs/internal/fsm"
	"sparcs/internal/netlist"
)

// FSMPolicy adapts the Figure 5 symbolic machine to the Policy interface,
// so the system simulator arbitrates with the exact transition table that
// gets synthesized.
type FSMPolicy struct {
	n   int
	ref *fsm.Reference
}

// NewFSMPolicy builds the N-task round-robin machine and wraps its
// reference interpreter.
func NewFSMPolicy(n int) (*FSMPolicy, error) {
	m, err := Machine(n)
	if err != nil {
		return nil, err
	}
	return &FSMPolicy{n: n, ref: fsm.NewReference(m)}, nil
}

// Name implements Policy.
func (p *FSMPolicy) Name() string { return "round-robin-fsm" }

// N implements Policy.
func (p *FSMPolicy) N() int { return p.n }

// Reset implements Policy.
func (p *FSMPolicy) Reset() { p.ref.Reset() }

// Step implements Policy.
func (p *FSMPolicy) Step(req []bool) []bool {
	out, err := p.ref.Step(req)
	if err != nil {
		//sparcs:ignore hotpath cold panic path; the reference machine is validated at construction
		panic(fmt.Sprintf("arbiter: FSM policy: %v", err))
	}
	return out
}

// StepInto implements InPlaceStepper. The reference interpreter returns
// the transition table's precomputed output row, so the copy is the only
// per-cycle work.
//
//sparcs:hotpath
func (p *FSMPolicy) StepInto(req, grant []bool) {
	copy(grant, p.Step(req))
}

// NetlistPolicy drives a synthesized gate-level arbiter netlist as the
// Policy implementation — the strongest fidelity level: the system
// simulation is arbitrated by the very gates the synthesis pipeline
// produced.
type NetlistPolicy struct {
	n      int
	name   string
	sim    *netlist.Simulator
	grants []bool
}

// NewNetlistPolicy synthesizes the N-task round-robin arbiter under the
// given encoding and wraps its gate-level simulator.
func NewNetlistPolicy(n int, enc fsm.Encoding) (*NetlistPolicy, error) {
	m, err := Machine(n)
	if err != nil {
		return nil, err
	}
	nl, _, err := fsm.Synthesize(m, enc)
	if err != nil {
		return nil, err
	}
	s, err := netlist.NewSimulator(nl)
	if err != nil {
		return nil, err
	}
	return &NetlistPolicy{n: n, name: fmt.Sprintf("round-robin-gates-%s", enc), sim: s, grants: make([]bool, n)}, nil
}

// Name implements Policy.
func (p *NetlistPolicy) Name() string { return p.name }

// N implements Policy.
func (p *NetlistPolicy) N() int { return p.n }

// Reset implements Policy.
func (p *NetlistPolicy) Reset() { p.sim.Reset() }

// Step implements Policy, returning the policy-internal grant slice
// like every other implementation in the package — the Step adapter
// contract ("never a new grant slice") forbids allocating a fresh
// result each cycle, which p.sim.Step would do.
func (p *NetlistPolicy) Step(req []bool) []bool {
	p.StepInto(req, p.grants)
	return p.grants
}

// StepInto implements InPlaceStepper via the gate-level simulator's
// allocation-free StepInto.
//
//sparcs:hotpath
func (p *NetlistPolicy) StepInto(req, grant []bool) {
	if err := p.sim.StepInto(req, grant); err != nil {
		//sparcs:ignore hotpath cold panic path; widths are validated at construction
		panic(fmt.Sprintf("arbiter: netlist policy: %v", err))
	}
}
