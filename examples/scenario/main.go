// Online dynamic reconfiguration: FFT jobs arrive over simulated time
// on one large CLB fabric, are strip-packed into place, and pay a
// per-area reconfiguration latency through a single configuration port.
// The run compares no-prefetch against the hybrid prefetch scheduler
// (which loads a resident's next stage behind its current execution)
// and reports both against the offline full-knowledge oracle bound.
package main

import (
	"fmt"
	"log"

	"sparcs"
)

func main() {
	sys, err := sparcs.FFTSystem(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fft job footprint: %d CLBs on a 384x24 fabric\n\n", sys.FootprintCLBs())

	base := sparcs.ScenarioConfig{
		Entries:    []sparcs.ScenarioEntry{{Name: "fft", System: sys}},
		Arrivals:   "bursty/256",
		Jobs:       6,
		Seed:       1,
		FabricCols: 384,
		FabricRows: 24,
	}

	for _, prefetch := range []string{sparcs.PrefetchNone, sparcs.PrefetchHybrid} {
		cfg := base
		cfg.Prefetch = prefetch
		res, err := sparcs.RunScenario(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("prefetch %-6s: makespan %d (oracle %d, ratio %.2f), stall %.1f%%, port busy %.1f%%\n",
			prefetch, res.Makespan, res.OracleMakespan,
			float64(res.Makespan)/float64(res.OracleMakespan),
			100*res.StallFraction, 100*res.PortBusyFraction)
	}
}
