// Package fine is healthy and must still be analyzed even though
// sibling packages in the same run are broken.
package fine

var sink []int

//sparcs:hotpath
func Hot(n int) {
	sink = append(sink, n) // want `append may grow its backing array`
}
