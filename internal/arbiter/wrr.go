package arbiter

import "fmt"

// WeightedRoundRobin generalizes the preemptive round-robin with
// per-task service quanta: a holder keeps the resource while it keeps
// requesting, but once it has held for weights[holder] consecutive
// granted cycles while another task waits, its grant is revoked and the
// cyclic scan resumes at the next task. Under saturation every task's
// long-run grant share is proportional to its weight, while the
// round-robin scan order preserves the N-1 grant-episode wait bound
// (each competitor is served at most one episode per rotation). With no
// competing requests the holder keeps the resource indefinitely, so
// work conservation is preserved.
type WeightedRoundRobin struct {
	n       int
	weights []int
	inner   *RoundRobin
	heldFor int
	grants  []bool
}

// NewWeightedRoundRobin returns a weighted round-robin arbiter; weights
// must hold one positive quantum per task.
func NewWeightedRoundRobin(n int, weights []int) (*WeightedRoundRobin, error) {
	if n < MinN || n > MaxN {
		return nil, RangeError(n)
	}
	if len(weights) != n {
		return nil, fmt.Errorf("arbiter: got %d weights for %d tasks", len(weights), n)
	}
	for i, w := range weights {
		if w < 1 {
			return nil, fmt.Errorf("arbiter: weight for task %d must be >= 1, got %d", i+1, w)
		}
	}
	return &WeightedRoundRobin{
		n:       n,
		weights: append([]int(nil), weights...),
		inner:   NewRoundRobin(n),
		grants:  make([]bool, n),
	}, nil
}

// Name implements Policy.
func (p *WeightedRoundRobin) Name() string { return "weighted-round-robin" }

// N implements Policy.
func (p *WeightedRoundRobin) N() int { return p.n }

// Reset implements Policy.
func (p *WeightedRoundRobin) Reset() {
	p.inner.Reset()
	p.heldFor = 0
}

// Step implements Policy.
func (p *WeightedRoundRobin) Step(req []bool) []bool {
	p.StepInto(req, p.grants)
	return p.grants
}

// StepInto implements InPlaceStepper with the same semantics as Step.
//
//sparcs:hotpath
func (p *WeightedRoundRobin) StepInto(req, grant []bool) {
	checkLanes(req, grant, p.n)
	p.StepBits(PackBools(req)).WriteBools(grant)
}

// StepBits implements BitStepper: the inner round-robin scan, with the
// holder's request bit masked out for one step once its quantum is
// exhausted while another task waits.
//
//sparcs:hotpath
func (p *WeightedRoundRobin) StepBits(req BitVec) BitVec {
	req &= p.inner.mask
	holder := p.inner.holder
	var holderBit BitVec
	if holder >= 0 {
		holderBit = 1 << uint(holder)
	}
	if holder >= 0 && req&holderBit != 0 && req&^holderBit != 0 && p.heldFor >= p.weights[holder] {
		// Quantum exhausted: mask the holder's request for this
		// arbitration step so the scan passes it by; it re-enters
		// contention from the next cycle on.
		g := p.inner.StepBits(req &^ holderBit)
		p.heldFor = grantHold(g)
		return g
	}
	g := p.inner.StepBits(req)
	if p.inner.holder == holder && holder >= 0 && g&holderBit != 0 {
		p.heldFor++
	} else {
		p.heldFor = grantHold(g)
	}
	return g
}

// grantHold returns the hold count to restart from after a holder
// change: 1 if some task was just granted, 0 on an idle cycle.
func grantHold(grant BitVec) int {
	if grant != 0 {
		return 1
	}
	return 0
}
