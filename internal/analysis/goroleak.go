package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// goroleakPkgs are the packages whose goroutines face untrusted,
// cancellable clients: every spawn must have a provable exit.
var goroleakPkgs = map[string]bool{
	"sparcs/internal/service": true,
}

// Goroleak enforces the service layer's goroutine hygiene:
//
//   - every goroutine spawned in internal/service must either select on
//     ctx.Done() (a cancellation escape) or restrict its potentially
//     blocking operations to sends on provably buffered channels — a
//     goroutine that can block forever on a condition its spawner no
//     longer waits for is a leak per request;
//   - an admission-style slot acquire (a module-local method `acquire`
//     whose receiver also has `release`) must be paired with a deferred
//     release in the same function, so every early return path gives
//     the slot back.
//
// Blocking behavior is judged transitively through the call-graph
// summaries shared with lockorder, so a goroutine that blocks three
// calls deep is still caught.
var Goroleak = &Analyzer{
	Name: "goroleak",
	Doc:  "service goroutines must select on ctx.Done() or block only on buffered channel sends; slot acquires need a deferred release",
	Run:  runGoroleak,
}

func runGoroleak(pass *Pass) error {
	if !goroleakPkgs[pass.Package.Path] {
		return nil
	}
	rep := pass.Module.lockAnalysis()
	p := pass.Package
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			bounded := boundedChans(p, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					checkGoStmt(pass, rep, p, g, bounded)
				}
				return true
			})
			checkAcquireRelease(pass, rep, p, fd)
		}
	}
	return nil
}

// checkGoStmt verifies one goroutine spawn has a provable exit.
func checkGoStmt(pass *Pass, rep *lockReport, p *Package, g *ast.GoStmt, bounded map[*types.Var]bool) {
	var blocks []goBlock
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if hasCtxDone(p, fun.Body) {
			return
		}
		blocks = goroutineBlocks(rep, p, fun.Body, bounded)
	default:
		site := pass.Module.resolveCall(p, g.Call)
		if site.Kind == CallDynamic {
			pass.Reportf(g.Pos(), "goroutine runs a dynamic function value; its exit cannot be proven — spawn a named function or a literal that selects on ctx.Done()")
			return
		}
		for _, callee := range site.Callees {
			cp, decl := pass.Module.Decl(callee)
			if decl == nil || decl.Body == nil {
				continue
			}
			if hasCtxDone(cp, decl.Body) {
				continue
			}
			// The callee runs in a fresh function scope: channels made by
			// the SPAWNER are arguments here, and boundedness of its own
			// channels is judged in its own body.
			blocks = append(blocks, goroutineBlocks(rep, cp, decl.Body, boundedChans(cp, decl.Body))...)
		}
	}
	if len(blocks) == 0 {
		return
	}
	sort.Slice(blocks, func(i, j int) bool {
		if blocks[i].pos != blocks[j].pos {
			return blocks[i].pos < blocks[j].pos
		}
		return blocks[i].desc < blocks[j].desc
	})
	pass.Reportf(g.Pos(), "goroutine may leak: it can block forever (%s) and neither selects on ctx.Done() nor limits blocking to buffered-channel sends", blocks[0].desc)
}

// A goBlock is one unbounded blocking operation in a goroutine body.
type goBlock struct {
	desc string
	pos  token.Pos
}

// goroutineBlocks collects the potentially forever-blocking operations
// in body that the bounded-channel allowance does not cover. Nested
// function literals and goroutines are excluded: nested spawns are
// checked at their own go statements.
func goroutineBlocks(rep *lockReport, p *Package, body ast.Node, bounded map[*types.Var]bool) []goBlock {
	var out []goBlock
	add := func(desc string, pos token.Pos) { out = append(out, goBlock{desc, pos}) }
	var scan func(n ast.Node)
	scan = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.GoStmt:
				for _, arg := range n.Call.Args {
					scan(arg)
				}
				return false
			case *ast.SelectStmt:
				hasDefault := false
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					add("select with no default case", n.Pos())
				}
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						for _, st := range cc.Body {
							scan(st)
						}
					}
				}
				return false
			case *ast.SendStmt:
				if v := rep.facts.refVar(p, n.Chan); v == nil || !bounded[v] {
					add("channel send on an unbuffered or unresolved channel", n.Pos())
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					add("channel receive", n.Pos())
				}
			case *ast.RangeStmt:
				if _, isChan := p.Info.TypeOf(n.X).Underlying().(*types.Chan); isChan {
					add("channel receive (range)", n.Pos())
				}
			case *ast.CallExpr:
				kind, _, desc := rep.facts.classifyLockCall(p, n)
				switch kind {
				case opCondWait:
					add("sync.Cond.Wait", n.Pos())
					return true
				case opBlocking:
					add(desc, n.Pos())
					return true
				case opAcquire, opRelease:
					return true
				}
				site := rep.facts.mod.resolveCall(p, n)
				for _, callee := range site.Callees {
					if cs := rep.sums[callee]; cs != nil {
						for _, desc := range sortedKeys(cs.blocking) {
							add("call to "+funcDisplay(callee)+": "+desc, n.Pos())
						}
					}
				}
			}
			return true
		})
	}
	scan(body)
	return out
}

// hasCtxDone reports whether body receives from a context's Done
// channel anywhere — the cancellation escape hatch.
func hasCtxDone(p *Package, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if named, ok := p.Info.TypeOf(sel.X).(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
				found = true
			}
		}
		return !found
	})
	return found
}

// boundedChans maps channel variables in body to "provably buffered":
// assigned from make(chan T, n) with a constant n > 0. The allowance is
// deliberately narrow — one make, constant capacity — matching the
// result-handoff idiom `ch := make(chan T, 1); go func() { ch <- v }()`.
func boundedChans(p *Package, body ast.Node) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		v, ok := p.Info.Defs[id].(*types.Var)
		if !ok {
			if v, ok = p.Info.Uses[id].(*types.Var); !ok {
				return
			}
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return
		}
		if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok {
			return
		} else if b, ok := p.Info.Uses[fn].(*types.Builtin); !ok || b.Name() != "make" {
			return
		}
		if _, isChan := p.Info.TypeOf(call).Underlying().(*types.Chan); !isChan {
			return
		}
		tv := p.Info.Types[call.Args[1]]
		if tv.Value != nil && constant.Sign(tv.Value) > 0 {
			out[v] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Names) == len(vs.Values) {
						for i := range vs.Names {
							record(vs.Names[i], vs.Values[i])
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// checkAcquireRelease enforces deferred slot release: a call to a
// module-local method named acquire, on a receiver type that also has a
// release method, must be paired with `defer <same object>.release()`
// in the same enclosing function.
func checkAcquireRelease(pass *Pass, rep *lockReport, p *Package, fd *ast.FuncDecl) {
	var acquires []*ast.CallExpr
	deferred := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if sel, ok := ast.Unparen(n.Call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "release" {
				if v := rep.facts.refVar(p, sel.X); v != nil {
					deferred[v] = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "acquire" {
				if isSlotAcquire(pass, p, sel) && !sameReceiverType(pass, p, fd, sel) {
					acquires = append(acquires, n)
				}
			}
		}
		return true
	})
	for _, call := range acquires {
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		v := rep.facts.refVar(p, sel.X)
		if v == nil || !deferred[v] {
			pass.Reportf(call.Pos(), "slot acquired without a deferred release on the same object; an early return path leaks the slot")
		}
	}
}

// isSlotAcquire reports whether sel names a module-local acquire method
// whose receiver type also has a release method.
func isSlotAcquire(pass *Pass, p *Package, sel *ast.SelectorExpr) bool {
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if _, decl := pass.Module.Decl(fn); decl == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	ms := types.NewMethodSet(types.NewPointer(recv))
	return ms.Lookup(fn.Pkg(), "release") != nil
}

// sameReceiverType exempts the slot type's own methods: admission's
// acquire legitimately calls release on explicit paths.
func sameReceiverType(pass *Pass, p *Package, fd *ast.FuncDecl, sel *ast.SelectorExpr) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	return ownerTypeName(p.Info.TypeOf(fd.Recv.List[0].Type)) == ownerTypeName(sig.Recv().Type())
}
