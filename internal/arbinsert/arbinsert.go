// Package arbinsert implements the paper's automatic arbiter-insertion
// pass (Sections 4.3 and 5): given a partitioned stage, it decides which
// shared resources need arbiters, sizes them, and rewrites each affected
// task's program with the Request/Grant access protocol of Figure 8.
//
// Two modes reproduce the paper's discussion:
//
//   - Conservative: every resource with two or more accessor tasks gets an
//     arbiter wired to all of them ("the arbiter insertion assumed that
//     all 6 tasks were executing in parallel").
//   - Dependency-aware (default): tasks ordered by control dependencies
//     against every other accessor are elided — they access the resource
//     bare, only driving the shared lines to defaults when idle — which is
//     the improvement Section 5 proposes.
package arbinsert

import (
	"fmt"
	"sort"

	"sparcs/internal/behav"
	"sparcs/internal/partition"
	"sparcs/internal/rc"
	"sparcs/internal/taskgraph"
)

// Options tunes insertion.
type Options struct {
	// M is the maximum number of accesses performed per grant before the
	// request must be released (Figure 8 uses M=2). Values < 1 default
	// to 2.
	M int
	// Conservative disables dependency-based elision.
	Conservative bool
	// HoldThrough implements the alternative task-modification scheme the
	// paper's conclusion suggests ("different task modification schemes
	// ... to decrease the number of clock cycles due to arbiter
	// insertion"): up to HoldThrough consecutive non-access instructions
	// may sit inside a grant window when another access to the same
	// resource follows, avoiding a release/re-request round trip. 0 (the
	// default) reproduces Figure 8 exactly.
	HoldThrough int
}

func (o Options) m() int {
	if o.M < 1 {
		return 2
	}
	return o.M
}

// Result is a stage's complete arbitration configuration: the rewritten
// programs plus everything the simulator needs to wire arbiters.
type Result struct {
	// Programs maps task name to its rewritten program.
	Programs map[string]behav.Program
	// Arbiters lists the arbiter instances (banks and channels).
	Arbiters []partition.ArbiterSpec
	// ResourceOfSegment maps segment name to its arbitrated resource
	// (bank) name.
	ResourceOfSegment map[string]string
	// ResourceOfChannel maps logical channel name to the physical channel
	// resource name ("" when the channel stays on-chip).
	ResourceOfChannel map[string]string
	// ExtraCyclesPerTask estimates the protocol overhead inserted into
	// each task per program iteration (instructions added).
	ExtraCyclesPerTask map[string]int
}

// Insert computes the arbitration configuration for one stage and
// rewrites the given raw task programs.
func Insert(g *taskgraph.Graph, board *rc.Board, st *partition.Stage,
	routes []partition.PhysChannel, programs map[string]behav.Program, opts Options) (*Result, error) {

	res := &Result{
		Programs:           map[string]behav.Program{},
		ResourceOfSegment:  map[string]string{},
		ResourceOfChannel:  map[string]string{},
		ExtraCyclesPerTask: map[string]int{},
	}
	for seg, bi := range st.SegBank {
		res.ResourceOfSegment[seg] = board.Banks[bi].Name
	}
	for _, pc := range routes {
		for _, lc := range pc.Logical {
			res.ResourceOfChannel[lc] = pc.Name
		}
	}

	// Arbiter specs: dependency-aware specs come from the partitioner and
	// channel router; conservative mode re-derives them without elision.
	var specs []partition.ArbiterSpec
	if opts.Conservative {
		specs = conservativeSpecs(g, board, st, routes)
	} else {
		specs = append(specs, st.Arbiters...)
		for _, pc := range routes {
			if pc.Arbiter != nil {
				specs = append(specs, *pc.Arbiter)
			}
		}
	}
	res.Arbiters = specs

	// memberOf[resource][task] = task holds request/grant lines there.
	memberOf := map[string]map[string]bool{}
	for _, spec := range specs {
		if spec.N() < 2 {
			return nil, fmt.Errorf("arbinsert: arbiter on %s has %d members", spec.Resource, spec.N())
		}
		m := map[string]bool{}
		for _, t := range spec.Members {
			m[t] = true
		}
		memberOf[spec.Resource] = m
	}

	for _, tname := range st.Tasks {
		prog, ok := programs[tname]
		if !ok {
			return nil, fmt.Errorf("arbinsert: no program for task %s", tname)
		}
		rewritten, added := rewrite(tname, prog, res, memberOf, opts.m(), opts.HoldThrough)
		res.Programs[tname] = rewritten
		res.ExtraCyclesPerTask[tname] = added
	}
	return res, nil
}

// conservativeSpecs sizes every multi-accessor resource for all its
// accessors, ignoring control dependencies.
func conservativeSpecs(g *taskgraph.Graph, board *rc.Board, st *partition.Stage, routes []partition.PhysChannel) []partition.ArbiterSpec {
	inStage := map[string]bool{}
	for _, t := range st.Tasks {
		inStage[t] = true
	}
	var specs []partition.ArbiterSpec
	for bi, segs := range st.Banks {
		if len(segs) == 0 {
			continue
		}
		accSet := map[string]bool{}
		var acc []string
		for _, s := range segs {
			for _, a := range g.Accessors(s) {
				if inStage[a] && !accSet[a] {
					accSet[a] = true
					acc = append(acc, a)
				}
			}
		}
		sort.Strings(acc)
		if len(acc) >= 2 {
			specs = append(specs, partition.ArbiterSpec{Resource: board.Banks[bi].Name, Members: acc})
		}
	}
	for _, pc := range routes {
		if len(pc.SrcTasks) >= 2 {
			src := append([]string(nil), pc.SrcTasks...)
			sort.Strings(src)
			specs = append(specs, partition.ArbiterSpec{Resource: pc.Name, Members: src})
		}
	}
	return specs
}

// rewrite applies the Figure 8 task-modification process: every maximal
// run of accesses to one arbitrated resource is chunked into groups of at
// most M accesses, each wrapped in Req / WaitGrant ... Release. With
// holdThrough > 0, short non-access stretches may ride inside a grant
// window when another same-resource access follows.
func rewrite(task string, prog behav.Program, res *Result, memberOf map[string]map[string]bool, m, holdThrough int) (behav.Program, int) {
	resourceOf := func(in behav.Instr) string {
		switch in.Op {
		case behav.OpRead, behav.OpWrite:
			r := res.ResourceOfSegment[in.Res]
			if memberOf[r][task] {
				return r
			}
		case behav.OpSend:
			r := res.ResourceOfChannel[in.Res]
			if r != "" && memberOf[r][task] {
				return r
			}
		}
		return ""
	}

	var out []behav.Instr
	added := 0
	body := prog.Body
	for i := 0; i < len(body); {
		r := resourceOf(body[i])
		if r == "" {
			out = append(out, body[i])
			i++
			continue
		}
		// Collect one grant window: up to m accesses to r, optionally
		// holding through short neutral stretches.
		var region []behav.Instr
		accesses := 0
		k := i
		for k < len(body) {
			rr := resourceOf(body[k])
			if rr == r {
				if accesses == m {
					break
				}
				region = append(region, body[k])
				accesses++
				k++
				continue
			}
			if rr == "" && holdThrough > 0 && accesses < m {
				gapEnd := k
				for gapEnd < len(body) && gapEnd-k < holdThrough && resourceOf(body[gapEnd]) == "" {
					gapEnd++
				}
				if gapEnd < len(body) && resourceOf(body[gapEnd]) == r {
					region = append(region, body[k:gapEnd]...)
					k = gapEnd
					continue
				}
			}
			break
		}
		out = append(out, behav.Req(r), behav.WaitGrant(r))
		out = append(out, region...)
		out = append(out, behav.Release(r))
		added += 2 // Req and Release consume a cycle; WaitGrant is free when immediate
		i = k
	}
	return behav.Program{Body: out, Repeat: prog.Repeat}, added
}
