package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// LoadTestOptions parameterizes LoadTest. The zero value (plus URL)
// drives 2000 requests from 128 concurrent clients at the fft design.
type LoadTestOptions struct {
	// URL is the server base URL ("http://127.0.0.1:8077").
	URL string
	// Requests is the total experiment count; <= 0 means 2000.
	Requests int
	// Concurrency is the number of concurrent clients; <= 0 means 128.
	Concurrency int
	// Design and Tiles pick the design; defaults "fft", 2.
	Design string
	Tiles  int
	// Policies round-robins per-request WithPolicy specs; nil means
	// {"", "priority", "wrr:2"} ("" is the rr baseline).
	Policies []string
	// Class is the admission class for every request; empty uses the
	// server default.
	Class string
	// Seeds is the number of distinct contention seeds to cycle
	// through; <= 0 means 8.
	Seeds int
}

// LoadTestReport aggregates a LoadTest run: client-observed outcome
// counts and latency percentiles, plus the server's stats delta
// (cache behavior, admission rejections) over the run.
type LoadTestReport struct {
	Requests         int
	OK               int
	RejectedFull     int
	RejectedDraining int
	Failed           int
	Duration         time.Duration
	Throughput       float64 // completed (OK) experiments per second
	P50, P99         time.Duration
	CacheHits        int64
	CacheMisses      int64
	Compiles         int64
}

// String renders the report as an aligned block for the CLI.
func (r *LoadTestReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests     %d (%d ok, %d rejected-429, %d rejected-503, %d failed)\n",
		r.Requests, r.OK, r.RejectedFull, r.RejectedDraining, r.Failed)
	fmt.Fprintf(&b, "duration     %v\n", r.Duration.Round(time.Millisecond))
	fmt.Fprintf(&b, "throughput   %.1f experiments/s\n", r.Throughput)
	fmt.Fprintf(&b, "latency      p50 %v  p99 %v\n", r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond))
	fmt.Fprintf(&b, "cache        %d hits, %d misses, %d compiles\n", r.CacheHits, r.CacheMisses, r.Compiles)
	return b.String()
}

// LoadTest drives the server with concurrent experiment requests —
// one design, varying policies and seeds, so the first request compiles
// and every other hits the System cache — and reports throughput,
// latency percentiles, cache behavior, and admission rejections.
func LoadTest(opt LoadTestOptions) (*LoadTestReport, error) {
	if opt.Requests <= 0 {
		opt.Requests = 2000
	}
	if opt.Concurrency <= 0 {
		opt.Concurrency = 128
	}
	if opt.Design == "" {
		opt.Design = "fft"
	}
	if opt.Tiles <= 0 {
		opt.Tiles = 2
	}
	if opt.Policies == nil {
		opt.Policies = []string{"", "priority", "wrr:2"}
	}
	if opt.Seeds <= 0 {
		opt.Seeds = 8
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        opt.Concurrency,
		MaxIdleConnsPerHost: opt.Concurrency,
	}}

	before, err := fetchStats(client, opt.URL)
	if err != nil {
		return nil, fmt.Errorf("service: loadtest stats probe: %w", err)
	}

	latencies := make([]time.Duration, opt.Requests)
	outcomes := make([]int32, opt.Requests) // 0 ok, 1 full, 2 draining, 3 failed
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < opt.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= opt.Requests {
					return
				}
				req := ExperimentRequest{
					Design: opt.Design,
					Tiles:  opt.Tiles,
					Class:  opt.Class,
					Run: RunSpec{
						Policy: opt.Policies[i%len(opt.Policies)],
						Seed:   uint64(i%opt.Seeds) + 1,
					},
				}
				body, _ := json.Marshal(req)
				t0 := time.Now()
				resp, err := client.Post(opt.URL+"/v1/experiments", "application/json", bytes.NewReader(body))
				latencies[i] = time.Since(t0)
				if err != nil {
					outcomes[i] = 3
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					outcomes[i] = 0
				case http.StatusTooManyRequests:
					outcomes[i] = 1
				case http.StatusServiceUnavailable:
					outcomes[i] = 2
				default:
					outcomes[i] = 3
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := fetchStats(client, opt.URL)
	if err != nil {
		return nil, fmt.Errorf("service: loadtest stats probe: %w", err)
	}

	rep := &LoadTestReport{
		Requests:    opt.Requests,
		Duration:    elapsed,
		CacheHits:   after.CacheHits - before.CacheHits,
		CacheMisses: after.CacheMisses - before.CacheMisses,
		Compiles:    after.Compiles - before.Compiles,
	}
	var okLat []time.Duration
	for i, o := range outcomes {
		switch o {
		case 0:
			rep.OK++
			okLat = append(okLat, latencies[i])
		case 1:
			rep.RejectedFull++
		case 2:
			rep.RejectedDraining++
		default:
			rep.Failed++
		}
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.OK) / elapsed.Seconds()
	}
	if len(okLat) > 0 {
		sort.Slice(okLat, func(i, j int) bool { return okLat[i] < okLat[j] })
		rep.P50 = okLat[len(okLat)*50/100]
		rep.P99 = okLat[len(okLat)*99/100]
	}
	return rep, nil
}

func fetchStats(client *http.Client, base string) (*Stats, error) {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("service: stats endpoint returned %s", resp.Status)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}
