// Package sparcs reproduces "Efficient Resource Arbitration in
// Reconfigurable Computing Environments" (Ouaiss & Vemuri, DATE 2000) as a
// production-quality Go library.
//
// # The experiment API
//
// The package is organized around the paper's compile-once /
// experiment-many flow. Build compiles a taskgraph onto a board — the
// SPARCS-like pipeline of temporal/spatial partitioning,
// arbitration-aware memory mapping, channel merging, and automatic
// arbiter insertion — and returns a System; each System.Run then
// composes one experiment from functional options:
//
//	sys, _ := sparcs.FFTSystem(8)                    // compile once (Section 5 case study)
//	base, _ := sys.Run()                             // the paper's round-robin baseline
//	hot, _ := sys.Run(                               // same silicon, hostile load
//	    sparcs.WithPolicy("preemptive:4"),
//	    sparcs.WithContention("M1=hog/1"),
//	    sparcs.WithSeed(7))
//	corr, _ := sys.Run(                              // correlated multi-resource source:
//	    sparcs.WithContention("M1+M3=corr:0.25/1"))  // holds M1 while waiting on M3
//	cap, _ := sys.Run(sparcs.WithCapture("M1"))      // per-run trace tap
//	col, _ := cap.Column("M1")                       // measured traffic as a grid column
//
// WithPolicy swaps the arbitration policy (validated against every
// arbiter's simulated width up front), WithContention injects
// single-resource phantom requesters and correlated hold-A-while-
// waiting-on-B sources (cross-resource overlap/wait stats in
// Result.SharedStats), WithCapture taps per-cycle request/grant traces
// for capture→replay experiments, and WithSeed/WithMaxCycles/WithMemory
// pin determinism, watchdogs, and memory images. Runs are independent
// and safe to issue concurrently; System.Sweep fans a slice of
// experiment option-sets over GOMAXPROCS workers.
//
// # Policy sizes
//
// Arbitration steps on a bitset kernel (arbiter.BitVec): request and
// grant vectors are single uint64 words from workload generator through
// policy scan to the online safety checks. The behavioral policies —
// rr, fifo, priority, random, preemptive, wrr, hier — therefore accept
// 2 to 64 request lines (arbiter.MaxN, one word) with allocation-free
// stepping. The synthesized kinds, fsm and netlist:*, interpret the
// paper's actual Figure 5 machine and its gate-level netlists and stop
// at 16 lines (arbiter.MaxSynthN); arbiter.PolicySpec.MaxN reports the
// bound for a parsed spec, and out-of-range sizes fail with errors
// wrapping arbiter.ErrOutOfRange.
//
// # Under the facade
//
//   - Round-robin arbiters (Figure 5): behavioral models, synthesizable
//     FSMs, VHDL generation, fairness checkers (internal/arbiter).
//   - A from-scratch synthesis pipeline — two-level minimization,
//     algebraic factoring, 4-LUT mapping, XC4000E CLB packing, and -3
//     speed-grade timing — modeling the paper's two synthesis tools
//     (internal/logic, fsm, netlist, lutmap, xc4000, synth).
//   - The SPARCS-like system flow and cycle-accurate multi-FPGA
//     simulator (internal/partition, arbinsert, sim, core).
//   - A standalone contention-workload engine driving any policy under
//     synthetic and measured traffic shapes (internal/workload), fronted
//     by EvaluatePolicies/EvaluatePolicyColumns.
//   - The Section 5 case study: the 4x4 2-D FFT on the Annapolis
//     Wildforce board (internal/fft, rc).
//
// The pre-System facade (Compile, Simulate and the flat core.Options
// bag) remains as deprecated wrappers with identical outputs, proven by
// the differential tests in system_test.go.
//
// See the runnable programs under examples/, README.md for a quickstart
// and the old→new migration table, and the benchmark harness in
// bench_test.go, which regenerates every figure and table of the paper's
// evaluation (documented in EXPERIMENTS.md).
package sparcs

import (
	"sparcs/internal/arbiter"
	"sparcs/internal/behav"
	"sparcs/internal/core"
	"sparcs/internal/fft"
	"sparcs/internal/fsm"
	"sparcs/internal/rc"
	"sparcs/internal/sim"
	"sparcs/internal/synth"
	"sparcs/internal/taskgraph"
	"sparcs/internal/workload"
)

// NewArbiter returns the behavioral N-input round-robin arbiter
// (Figure 5 semantics): call Step with the request vector each cycle and
// receive the grant vector.
func NewArbiter(n int) (*arbiter.RoundRobin, error) {
	if n < arbiter.MinN || n > arbiter.MaxN {
		return nil, arbiter.RangeError(n)
	}
	return arbiter.NewRoundRobin(n), nil
}

// NewPolicy constructs an arbitration policy by name. Every policy the
// repo implements is reachable, with parameters via the "kind:param"
// grammar of arbiter.ParsePolicySpec: "round-robin" (alias "rr"),
// "fifo", "priority", "random:<seed>", "fsm", "netlist:<encoding>",
// "preemptive:<maxHold>", "wrr:<weights>", and "hier:<groups>".
func NewPolicy(name string, n int) (arbiter.Policy, error) {
	return arbiter.NewPolicy(name, n)
}

// PolicyMetrics aggregates the outcome of driving one arbitration
// policy under one synthetic contention workload: per-task wait
// statistics and histograms, Jain's fairness index, utilization, and
// the worst grant-episode wait (comparable to round-robin's N-1 bound).
type PolicyMetrics = workload.Metrics

// EvaluateOptions parameterizes EvaluatePolicies (arbiter size, cycles
// per cell, workload seed).
type EvaluateOptions = workload.GridOptions

// EvaluatePolicies drives every named policy under every named
// contention workload and returns one PolicyMetrics per cell in
// row-major order (workloads fastest), fanned across GOMAXPROCS
// workers. Nil slices evaluate the full default grid: every policy
// implementation against every traffic shape (uniform Bernoulli,
// bursty, hotspot, Markov-modulated, adversarial hog, trace replay).
// Results are deterministic for a given options Seed.
func EvaluatePolicies(policies, workloads []string, opt EvaluateOptions) ([]*PolicyMetrics, error) {
	return workload.RunGrid(policies, workloads, opt)
}

// FormatPolicyTable renders EvaluatePolicies results as an aligned
// fairness/wait/utilization table (including p50/p99 percentile waits
// derived from the wait histograms).
func FormatPolicyTable(cells []*PolicyMetrics) string {
	return workload.FormatTable(cells)
}

// WorkloadColumn is one workload column of an evaluation grid: a named
// generator factory. Textual specs become columns via
// workload.SpecColumn; measured request streams captured from
// full-system simulations become columns via CaptureColumn.
type WorkloadColumn = workload.Column

// EvaluatePolicyColumns generalizes EvaluatePolicies to arbitrary
// workload columns, letting measured traffic captured from a
// full-system run stand next to the synthetic shapes in one grid.
func EvaluatePolicyColumns(policies []string, cols []WorkloadColumn, opt EvaluateOptions) ([]*PolicyMetrics, error) {
	return workload.RunGridColumns(policies, cols, opt)
}

// SpecWorkloadColumn wraps a textual workload spec ("bernoulli:0.30",
// "hog", ...) as a grid column for EvaluatePolicyColumns.
func SpecWorkloadColumn(spec string) WorkloadColumn {
	return workload.SpecColumn(spec)
}

// CaptureColumn converts a request stream recorded by the simulator —
// one resource's entry in sim.Stats.ArbiterTraces — into a replayable
// workload column: the measured per-cycle request vectors replay
// cyclically (open loop) through workload.NewTrace, so the arbitration
// traffic of a real run becomes a first-class grid column.
func CaptureColumn(name string, steps []arbiter.TraceStep) (WorkloadColumn, error) {
	return workload.FromArbiterTrace(name, steps)
}

// FFTMeasuredColumn runs the Section 5 FFT case study under the named
// arbitration policy (with trace recording on), captures the request
// stream of the first arbiter with n request lines — n=6 selects the
// paper's contended Arb6 bank — and returns it as a replayable grid
// column named "fft:<resource>". The request stream is closed-loop
// traffic shaped by the capture policy, so the policy spec is part of
// the measurement; "round-robin" reproduces the paper's setup.
//
// Deprecated: thin wrapper over the System API — FFTSystem, then
// Run(WithPolicy(policy), WithCapture()) and Result.ColumnByWidth; keep
// the System to capture several resources or policies without
// recompiling.
func FFTMeasuredColumn(tiles, n int, policy string) (WorkloadColumn, error) {
	if tiles <= 0 {
		tiles = 6
	}
	sys, err := FFTSystem(tiles)
	if err != nil {
		return WorkloadColumn{}, err
	}
	mem := NewMemory()
	LoadFFTInput(mem, tiles, 42)
	res, err := sys.Run(WithPolicy(policy), WithCapture(), WithMemory(mem))
	if err != nil {
		return WorkloadColumn{}, err
	}
	return res.ColumnByWidth("fft", n)
}

// ContentionSpec asks a run to inject one background phantom requester
// alongside the compiled tasks (see core.ContentionSpec and the
// "resource=workload[/lines]" grammar of ParseContention).
type ContentionSpec = core.ContentionSpec

// SharedContentionSpec asks a run to inject one correlated
// multi-resource background source: a single generator spanning several
// arbiters with hold-A-while-waiting-on-B acquisition (see
// core.SharedContentionSpec and the "res1+res2=workload[/lanes]" grammar
// of ParseSharedContention).
type SharedContentionSpec = core.SharedContentionSpec

// ParseContention parses a comma-separated contention spec list, e.g.
// "M1=hog/2,M3=bernoulli:0.50", for core.Options.Contention.
func ParseContention(s string) ([]ContentionSpec, error) {
	return core.ParseContention(s)
}

// ParseSharedContention parses a comma-separated correlated contention
// spec list, e.g. "M1+M3=corr:0.25/2", for core.Options.Shared.
func ParseSharedContention(s string) ([]SharedContentionSpec, error) {
	return core.ParseSharedContention(s)
}

// ArbiterVHDL renders the N-input round-robin arbiter as synthesizable
// VHDL, mirroring the paper's arbiter generator. Encoding is "one-hot",
// "compact", or "gray".
func ArbiterVHDL(n int, encoding string) (string, error) {
	enc, err := fsm.ParseEncoding(encoding)
	if err != nil {
		return "", err
	}
	return arbiter.VHDL(n, enc, true)
}

// CharacterizeArbiter synthesizes the N-input arbiter with the named tool
// model ("synplify" or "fpga-express") and encoding, returning area (CLBs)
// and maximum clock (MHz) in the paper's units.
func CharacterizeArbiter(n int, tool, encoding string) (synth.Result, error) {
	tl, err := synth.ParseTool(tool)
	if err != nil {
		return synth.Result{}, err
	}
	enc, err := fsm.ParseEncoding(encoding)
	if err != nil {
		return synth.Result{}, err
	}
	m, err := arbiter.Machine(n)
	if err != nil {
		return synth.Result{}, err
	}
	r, _, err := synth.Run(m, enc, tl)
	return r, err
}

// Wildforce returns the paper's target board model.
func Wildforce() *rc.Board { return rc.Wildforce() }

// FFTCaseStudy holds the Section 5 reproduction outputs.
type FFTCaseStudy struct {
	Design        *core.Design
	Result        *core.RunResult
	Report        string
	CyclesPerTile float64
	HWSeconds     float64 // 512x512 image at 6 MHz
	SWSeconds     float64 // Pentium-150 model
	Speedup       float64
	OutputOK      bool
}

// RunFFTCaseStudy compiles and simulates the paper's 4x4 2-D FFT on the
// Wildforce model with the paper's three-stage temporal partitioning,
// verifying the hardware memory image against the fixed-point reference
// and extrapolating full-image timings.
//
// Deprecated: thin wrapper over the System API — FFTSystem once, then
// Run per experiment; keep the System to vary policies or contention
// without recompiling.
func RunFFTCaseStudy(tiles int) (*FFTCaseStudy, error) {
	if tiles <= 0 {
		tiles = 6
	}
	sys, err := FFTSystem(tiles)
	if err != nil {
		return nil, err
	}
	mem := NewMemory()
	in := LoadFFTInput(mem, tiles, 42)
	res, err := sys.Run(WithCapture(), WithMemory(mem))
	if err != nil {
		return nil, err
	}
	cpt := float64(res.TotalCycles) / float64(tiles)
	cs := &FFTCaseStudy{
		Design:        sys.Design(),
		Result:        res.RunResult,
		Report:        sys.Report(),
		CyclesPerTile: cpt,
		HWSeconds:     fft.HardwareSeconds(cpt, 512),
		SWSeconds:     fft.SoftwareSeconds(512),
		OutputOK:      CheckFFTOutput(mem, in) == nil,
	}
	cs.Speedup = cs.SWSeconds / cs.HWSeconds
	return cs, nil
}

// Compile runs the full SPARCS-like flow on an arbitrary taskgraph.
//
// Deprecated: use Build, which returns a System handle that composes
// per-run options instead of threading one core.Options bag through
// Compile and Simulate.
func Compile(g *taskgraph.Graph, board *rc.Board, programs map[string]Program, opts core.Options) (*core.Design, error) {
	return core.Compile(g, board, programs, opts)
}

// Simulate executes a compiled design stage by stage.
//
// Deprecated: use System.Run with functional options (WithPolicy,
// WithContention, WithCapture, WithSeed) composed per experiment.
func Simulate(d *core.Design, mem *sim.Memory, opts core.Options) (*core.RunResult, error) {
	return core.Simulate(d, mem, opts)
}

// SweepPoint aliases one independent simulation in a parallel sweep.
type SweepPoint = core.SweepPoint

// SimulateSweep runs independent design simulations concurrently across
// GOMAXPROCS workers. Points must not share Memory instances. Results
// come back in input order.
//
// Deprecated: use System.Sweep, which fans out composable RunOption
// sets over one compiled System instead of threading explicit
// (design, memory, options) triples.
func SimulateSweep(points []SweepPoint) ([]*core.RunResult, error) {
	return core.SimulateSweep(points)
}

// Program aliases the behavioral task program type used by Compile.
type Program = behav.Program
