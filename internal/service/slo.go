package service

import (
	"sync"

	"sparcs/internal/workload"
)

// ClassSLO is one admission class's latency service-level report:
// percentile upper bounds (workload.Hist log2-bucket semantics) over
// admission wait — request arrival to slot acquisition — and service
// time — acquisition to response — in milliseconds.
type ClassSLO struct {
	Count        int64 `json:"count"`
	WaitP50Ms    int   `json:"waitP50Ms"`
	WaitP99Ms    int   `json:"waitP99Ms"`
	ServiceP50Ms int   `json:"serviceP50Ms"`
	ServiceP99Ms int   `json:"serviceP99Ms"`
}

// sloTracker aggregates per-class latency histograms, reusing the
// workload package's wait-percentile buckets so the service reports
// quantiles with the same estimator the arbitration metrics use.
type sloTracker struct {
	mu      sync.Mutex
	classes map[string]*classHists
}

type classHists struct {
	wait    workload.Hist
	service workload.Hist
}

func newSLOTracker(classes []Class) *sloTracker {
	t := &sloTracker{classes: map[string]*classHists{}}
	for _, c := range classes {
		t.classes[c.Name] = &classHists{}
	}
	return t
}

// observe records one admitted request's wait and service times.
func (t *sloTracker) observe(class string, waitMs, serviceMs int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ch, ok := t.classes[class]
	if !ok {
		ch = &classHists{}
		t.classes[class] = ch
	}
	ch.wait.Observe(waitMs)
	ch.service.Observe(serviceMs)
}

// snapshot renders the per-class SLO report for /v1/stats.
func (t *sloTracker) snapshot() map[string]ClassSLO {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]ClassSLO, len(t.classes))
	for name, ch := range t.classes {
		out[name] = ClassSLO{
			Count:        ch.wait.Count,
			WaitP50Ms:    ch.wait.Percentile(0.50),
			WaitP99Ms:    ch.wait.Percentile(0.99),
			ServiceP50Ms: ch.service.Percentile(0.50),
			ServiceP99Ms: ch.service.Percentile(0.99),
		}
	}
	return out
}
