package analysis_test

import (
	"sort"
	"testing"

	"sparcs/internal/analysis"
)

// TestCallGraph pins the three resolution classes on the cg fixture:
// a concrete method call resolves to exactly one static callee, an
// interface call devirtualizes to every module-local implementation,
// and a call through a function value is recorded dynamic with no
// callees. Builtins are classified out of the way.
func TestCallGraph(t *testing.T) {
	m, err := analysis.LoadTree("testdata/callgraph/src", "cg")
	if err != nil {
		t.Fatal(err)
	}
	g := m.CallGraph()

	nodes := map[string]*analysis.CallNode{}
	for _, n := range g.Functions() {
		nodes[n.Fn.Name()] = n
	}
	node := func(name string) *analysis.CallNode {
		t.Helper()
		n, ok := nodes[name]
		if !ok {
			t.Fatalf("no call-graph node for %s", name)
		}
		return n
	}
	calleeNames := func(s analysis.CallSite) []string {
		var out []string
		for _, fn := range s.Callees {
			out = append(out, fn.FullName())
		}
		sort.Strings(out)
		return out
	}
	sitesOf := func(name string, kind analysis.CallKind) []analysis.CallSite {
		var out []analysis.CallSite
		for _, s := range node(name).Sites {
			if s.Kind == kind {
				out = append(out, s)
			}
		}
		return out
	}

	// Run: one interface site, devirtualized to both Step implementations.
	ifaceSites := sitesOf("Run", analysis.CallInterface)
	if len(ifaceSites) != 1 {
		t.Fatalf("Run: %d interface sites, want 1", len(ifaceSites))
	}
	got := calleeNames(ifaceSites[0])
	want := []string{"(cg.Doubler).Step", "(*cg.Tripler).Step"}
	sort.Strings(want)
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Run devirtualizes to %v, want %v", got, want)
	}

	// Direct: a concrete method call is static with exactly one callee.
	staticSites := sitesOf("Direct", analysis.CallStatic)
	if len(staticSites) != 1 || len(staticSites[0].Callees) != 1 ||
		staticSites[0].Callees[0].FullName() != "(cg.Doubler).Step" {
		t.Errorf("Direct: static sites %+v, want one call to (cg.Doubler).Step", staticSites)
	}

	// Apply: function-value call is dynamic with no callees.
	dynSites := sitesOf("Apply", analysis.CallDynamic)
	if len(dynSites) != 1 || len(dynSites[0].Callees) != 0 {
		t.Errorf("Apply: dynamic sites %+v, want exactly one with no callees", dynSites)
	}
	if n := len(node("Apply").Sites); n != 1 {
		t.Errorf("Apply has %d sites total, want 1", n)
	}

	// Mixed: make/len are builtins, Direct is static.
	if n := len(sitesOf("Mixed", analysis.CallBuiltin)); n != 2 {
		t.Errorf("Mixed: %d builtin sites, want 2 (make, len)", n)
	}
	st := sitesOf("Mixed", analysis.CallStatic)
	if len(st) != 1 || len(st[0].Callees) != 1 || st[0].Callees[0].FullName() != "cg.Direct" {
		t.Errorf("Mixed: static sites %+v, want one call to cg.Direct", st)
	}
}
