// Package brokendep does not type-check: the load must keep going,
// surface the failure as a driver diagnostic, and exclude the package
// from analysis instead of aborting the whole run.
package brokendep

func Bad() int {
	return "not an int" // want `package brokendep does not type-check`
}
