// Package uses imports a broken package: it gets one pointed
// diagnostic at the import site, not a cascade of resolution errors.
package uses

import "brokendep" // want `package uses not analyzed: it imports broken package brokendep`

var _ = brokendep.Bad
