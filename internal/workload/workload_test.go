package workload

import (
	"reflect"
	"strings"
	"testing"

	"sparcs/internal/arbiter"
)

// TestGeneratorsDeterministic: every shape replays the identical
// experiment for the same seed, and Reset restores the initial state.
func TestGeneratorsDeterministic(t *testing.T) {
	const n = 6
	for _, spec := range DefaultWorkloads() {
		run := func(g Generator) *Metrics {
			p := arbiter.NewRoundRobin(n)
			m, err := Drive(p, g, 20000)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
		g1, err := NewGenerator(spec, n, 42)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		g2, err := NewGenerator(spec, n, 42)
		if err != nil {
			t.Fatal(err)
		}
		a, b := run(g1), run(g2)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different metrics", spec)
		}
		g1.Reset()
		if c := run(g1); !reflect.DeepEqual(a, c) {
			t.Errorf("%s: Reset did not restore the initial state", spec)
		}
		g3, err := NewGenerator(spec, n, 43)
		if err != nil {
			t.Fatal(err)
		}
		if spec != "trace" && reflect.DeepEqual(a, run(g3)) {
			t.Errorf("%s: different seeds produced identical metrics", spec)
		}
	}
}

// TestGeneratorShapes: each shape produces its advertised traffic
// pattern when arbitrated by round-robin.
func TestGeneratorShapes(t *testing.T) {
	const n, cycles = 6, 50000
	drive := func(spec string) *Metrics {
		g, err := NewGenerator(spec, n, 7)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Drive(arbiter.NewRoundRobin(n), g, cycles)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	// Hog: task 1 requests every cycle, grabs the resource once, and
	// never lets go — full utilization, minimal fairness.
	m := drive("hog")
	if m.Tasks[0].Grants < int64(cycles)-10 {
		t.Errorf("hog: task 1 held %d of %d cycles", m.Tasks[0].Grants, cycles)
	}
	if j := m.Jain(); j > 1.0/float64(n)+0.01 {
		t.Errorf("hog under round-robin: Jain %.3f, want ~%.3f (monopoly)", j, 1.0/float64(n))
	}

	// Hotspot: task 1 dominates but others still get served.
	m = drive("hotspot:0.90")
	var others int64
	for _, tm := range m.Tasks[1:] {
		others += tm.Grants
	}
	if m.Tasks[0].Grants < 2*others/int64(n-1) {
		t.Errorf("hotspot: task 1 got %d grants vs mean other %d — not hot enough",
			m.Tasks[0].Grants, others/int64(n-1))
	}
	if others == 0 {
		t.Error("hotspot: cold tasks starved under round-robin")
	}

	// Bernoulli at 0.30 with hold 2 saturates a 6-task arbiter.
	m = drive("bernoulli:0.30")
	if u := m.Utilization(); u < 0.95 {
		t.Errorf("bernoulli:0.30: utilization %.3f, want near 1", u)
	}
	if j := m.Jain(); j < 0.95 {
		t.Errorf("bernoulli under round-robin: Jain %.3f, want ~1", j)
	}

	// Bursty and markov alternate between load and silence: utilization
	// strictly between idle and saturated.
	for _, spec := range []string{"bursty", "markov"} {
		m = drive(spec)
		if u := m.Utilization(); u < 0.1 || u > 0.99 {
			t.Errorf("%s: utilization %.3f, want intermediate", spec, u)
		}
	}

	// The built-in trace is open-loop and fully deterministic: demand
	// equals the pattern's duty cycle regardless of policy.
	a := drive("trace")
	g, err := NewGenerator("trace", n, 999)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Drive(arbiter.NewPriority(n), g, cycles)
	if err != nil {
		t.Fatal(err)
	}
	if a.DemandCycles != b.DemandCycles {
		t.Errorf("trace demand depends on policy/seed: %d vs %d", a.DemandCycles, b.DemandCycles)
	}
}

// TestDriveHandComputed pins every metric on a 4-cycle trace computed
// by hand: task 1 is served instantly and holds two cycles, task 2
// waits one cycle behind it, then the system drains.
func TestDriveHandComputed(t *testing.T) {
	g, err := NewTrace("hand", 2, [][]bool{
		{true, false},
		{true, true},
		{false, true},
		{false, false},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Drive(arbiter.NewRoundRobin(2), g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.GrantedCycles != 3 || m.DemandCycles != 3 {
		t.Errorf("granted/demand = %d/%d, want 3/3", m.GrantedCycles, m.DemandCycles)
	}
	if u := m.Utilization(); u != 0.75 {
		t.Errorf("utilization %.3f, want 0.75", u)
	}
	if m.Tasks[0].Grants != 2 || m.Tasks[1].Grants != 1 {
		t.Errorf("grants %d/%d, want 2/1", m.Tasks[0].Grants, m.Tasks[1].Grants)
	}
	if m.Tasks[0].MaxWait != 0 || m.Tasks[1].MaxWait != 1 {
		t.Errorf("max waits %d/%d, want 0/1", m.Tasks[0].MaxWait, m.Tasks[1].MaxWait)
	}
	if m.Tasks[0].Services != 1 || m.Tasks[1].Services != 1 {
		t.Errorf("services %d/%d, want 1/1", m.Tasks[0].Services, m.Tasks[1].Services)
	}
	// Jain over grants (2,1): (3²)/(2·5) = 0.9.
	if j := m.Jain(); j < 0.899 || j > 0.901 {
		t.Errorf("Jain %.4f, want 0.9", j)
	}
	if m.WaitHist[0] != 1 || m.WaitHist[1] != 1 {
		t.Errorf("wait histogram %v: want one zero-wait and one 1-cycle wait", m.WaitHist)
	}
	if m.Violation != "" {
		t.Errorf("unexpected violation %q", m.Violation)
	}
}

// TestDriveErrors: mismatched sizes and empty runs fail cleanly.
func TestDriveErrors(t *testing.T) {
	g, err := NewGenerator("bernoulli", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Drive(arbiter.NewRoundRobin(6), g, 100); err == nil {
		t.Error("size mismatch should error")
	}
	if _, err := Drive(arbiter.NewRoundRobin(4), g, 0); err == nil {
		t.Error("zero cycles should error")
	}
}

// TestNewGeneratorErrors: the workload grammar rejects malformed specs.
func TestNewGeneratorErrors(t *testing.T) {
	for _, spec := range []string{
		"", "tsunami", "bernoulli:0", "bernoulli:1.5", "bernoulli:x",
		"hotspot:-1", "bursty:3", "markov:0.5", "hog:1", "trace:foo",
	} {
		if _, err := NewGenerator(spec, 4, 1); err == nil {
			t.Errorf("NewGenerator(%q) should error", spec)
		}
	}
	if _, err := NewTrace("empty", 2, nil); err == nil {
		t.Error("empty trace should error")
	}
	if _, err := NewTrace("ragged", 2, [][]bool{{true}}); err == nil {
		t.Error("ragged trace should error")
	}
}

// TestEveryPolicyEveryWorkloadProperties is the full-grid property
// sweep the issue asks for: every reachable policy under every traffic
// shape upholds mutual exclusion, grant-implies-request, and work
// conservation (checked online by Drive), and the round-robin family
// additionally upholds the N-1 grant-episode bound under every shape.
func TestEveryPolicyEveryWorkloadProperties(t *testing.T) {
	const n, cycles = 6, 8000
	bounded := map[string]bool{
		"rr": true, "fsm": true, "netlist:one-hot": true,
		"preemptive:4": true, "wrr:2": true, "hier:2": true,
	}
	for _, pspec := range DefaultPolicies() {
		for _, wspec := range DefaultWorkloads() {
			p, err := arbiter.NewPolicy(pspec, n)
			if err != nil {
				t.Fatal(err)
			}
			g, err := NewGenerator(wspec, n, 11)
			if err != nil {
				t.Fatal(err)
			}
			m, err := Drive(p, g, cycles)
			if err != nil {
				t.Fatal(err)
			}
			if m.Violation != "" {
				t.Errorf("%s × %s: %s", pspec, wspec, m.Violation)
			}
			if bounded[pspec] {
				if w := m.WorstEpisodes(); w > n-1 {
					t.Errorf("%s × %s: worst wait %d episodes, bound %d", pspec, wspec, w, n-1)
				}
			}
		}
	}
}

// TestNewPoliciesCheckAllUnderEveryWorkload replays the two new
// policies through the trace-based check.go property suite under every
// workload shape — the explicit CheckAll coverage the issue asks for.
func TestNewPoliciesCheckAllUnderEveryWorkload(t *testing.T) {
	const n, cycles = 6, 4000
	for _, pspec := range []string{"wrr:2", "wrr:1,2,3,1,2,3", "hier:2", "hier:3"} {
		for _, wspec := range DefaultWorkloads() {
			p, err := arbiter.NewPolicy(pspec, n)
			if err != nil {
				t.Fatal(err)
			}
			g, err := NewGenerator(wspec, n, 23)
			if err != nil {
				t.Fatal(err)
			}
			req := make([]bool, n)
			grant := make([]bool, n)
			steps := make([]arbiter.TraceStep, 0, cycles)
			for c := 0; c < cycles; c++ {
				g.Next(req, grant)
				arbiter.StepInto(p, req, grant)
				steps = append(steps, arbiter.TraceStep{
					Req:   append([]bool(nil), req...),
					Grant: append([]bool(nil), grant...),
				})
			}
			if err := arbiter.CheckAll(n, steps); err != nil {
				t.Errorf("%s × %s: %v", pspec, wspec, err)
			}
		}
	}
}

// TestRunGridDeterministicAndOrdered: the grid returns one cell per
// policy×workload pair in row-major order and is reproducible.
func TestRunGridDeterministicAndOrdered(t *testing.T) {
	policies := []string{"rr", "priority", "wrr:2"}
	workloads := []string{"bernoulli:0.30", "hog"}
	opt := GridOptions{N: 4, Cycles: 3000, Seed: 9}
	a, err := RunGrid(policies, workloads, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(policies)*len(workloads) {
		t.Fatalf("got %d cells, want %d", len(a), len(policies)*len(workloads))
	}
	for pi, ps := range policies {
		for wi, ws := range workloads {
			m := a[pi*len(workloads)+wi]
			wantW := strings.SplitN(ws, ":", 2)[0]
			if !strings.HasPrefix(m.Workload, wantW) {
				t.Errorf("cell (%s,%s) reports workload %q", ps, ws, m.Workload)
			}
		}
	}
	b, err := RunGrid(policies, workloads, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("grid is not deterministic")
	}
	// Same workload column, same seed: every policy faced the same
	// offered process; the open-loop demand of hog's pinned task is
	// bitwise equal across rows.
	if a[0].Tasks[0].Grants == 0 {
		t.Error("rr × bernoulli: task 1 never granted")
	}
}

// TestRunGridValidatesUpfront: bad specs fail before any cell runs.
func TestRunGridValidatesUpfront(t *testing.T) {
	if _, err := RunGrid([]string{"lottery"}, []string{"hog"}, GridOptions{N: 4, Cycles: 10}); err == nil {
		t.Error("unknown policy should error")
	}
	if _, err := RunGrid([]string{"hier:3"}, []string{"hog"}, GridOptions{N: 4, Cycles: 10}); err == nil {
		t.Error("indivisible hier grouping should error at grid setup")
	}
	if _, err := RunGrid([]string{"rr"}, []string{"tsunami"}, GridOptions{N: 4, Cycles: 10}); err == nil {
		t.Error("unknown workload should error")
	}
	if _, err := RunGrid([]string{}, []string{"hog"}, GridOptions{}); err == nil {
		t.Error("empty (non-nil) policy list should error")
	}
	// nil means the full default list.
	ms, err := RunGrid(nil, []string{"hog"}, GridOptions{N: 4, Cycles: 500})
	if err != nil {
		t.Fatalf("nil policies should evaluate the defaults: %v", err)
	}
	if len(ms) != len(DefaultPolicies()) {
		t.Errorf("nil policies ran %d cells, want %d", len(ms), len(DefaultPolicies()))
	}
}

// TestFormatTable: the rendering is aligned, complete, and flags
// violations.
func TestFormatTable(t *testing.T) {
	ms, err := RunGrid([]string{"rr", "fifo"}, []string{"hog", "trace"}, GridOptions{N: 4, Cycles: 2000})
	if err != nil {
		t.Fatal(err)
	}
	table := FormatTable(ms)
	for _, want := range []string{"policy", "workload", "jain", "worst_ep", "round-robin", "fifo", "hog", "trace"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	lines := strings.Split(strings.TrimRight(table, "\n"), "\n")
	if len(lines) != 1+len(ms) {
		t.Errorf("table has %d lines, want %d", len(lines), 1+len(ms))
	}
}

// BenchmarkDrive measures the single-cell hot loop: behavioral
// round-robin under Bernoulli traffic.
func BenchmarkDrive(b *testing.B) {
	const n = 8
	p := arbiter.NewRoundRobin(n)
	g, err := NewGenerator("bernoulli:0.30", n, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	m, err := Drive(p, g, max(b.N, 1))
	if err != nil {
		b.Fatal(err)
	}
	if m.Violation != "" {
		b.Fatal(m.Violation)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/sec")
}
