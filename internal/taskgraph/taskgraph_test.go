package taskgraph

import "testing"

func diamond() *Graph {
	// A -> B, A -> C, B/C -> D; B and C are parallel.
	return &Graph{
		Name: "diamond",
		Segments: []*Segment{
			{Name: "S", SizeBytes: 1024, WidthBits: 32},
			{Name: "T", SizeBytes: 1024, WidthBits: 32},
		},
		Tasks: []*Task{
			{Name: "A", AreaCLBs: 10, Accesses: []Access{{Segment: "S", Kind: Write}}},
			{Name: "B", AreaCLBs: 10, Deps: []string{"A"}, Accesses: []Access{{Segment: "S", Kind: Read}, {Segment: "T", Kind: Write}}},
			{Name: "C", AreaCLBs: 10, Deps: []string{"A"}, Accesses: []Access{{Segment: "S", Kind: Read}}},
			{Name: "D", AreaCLBs: 10, Deps: []string{"B", "C"}, Accesses: []Access{{Segment: "T", Kind: Read}}},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := diamond().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateUnknownDep(t *testing.T) {
	g := diamond()
	g.Tasks[1].Deps = []string{"Z"}
	if err := g.Validate(); err == nil {
		t.Fatal("expected unknown-dep error")
	}
}

func TestValidateUnknownSegment(t *testing.T) {
	g := diamond()
	g.Tasks[0].Accesses = []Access{{Segment: "Z"}}
	if err := g.Validate(); err == nil {
		t.Fatal("expected unknown-segment error")
	}
}

func TestValidateCycle(t *testing.T) {
	g := diamond()
	g.Tasks[0].Deps = []string{"D"}
	if err := g.Validate(); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestValidateDuplicateTask(t *testing.T) {
	g := diamond()
	g.Tasks = append(g.Tasks, &Task{Name: "A", AreaCLBs: 1})
	if err := g.Validate(); err == nil {
		t.Fatal("expected duplicate-name error")
	}
}

func TestValidateNonPositiveArea(t *testing.T) {
	g := diamond()
	g.Tasks[0].AreaCLBs = 0
	if err := g.Validate(); err == nil {
		t.Fatal("expected area error")
	}
}

func TestValidateChannelEndpoints(t *testing.T) {
	g := diamond()
	g.Channels = []*Channel{{Name: "c", From: "A", To: "Z", WidthBits: 8}}
	if err := g.Validate(); err == nil {
		t.Fatal("expected channel endpoint error")
	}
	g.Channels = []*Channel{{Name: "c", From: "A", To: "A", WidthBits: 8}}
	if err := g.Validate(); err == nil {
		t.Fatal("expected self-loop error")
	}
}

func TestTopoOrderRespectsDeps(t *testing.T) {
	g := diamond()
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if pos["A"] > pos["B"] || pos["A"] > pos["C"] || pos["B"] > pos["D"] || pos["C"] > pos["D"] {
		t.Fatalf("order %v violates dependencies", order)
	}
}

func TestPrecedesTransitive(t *testing.T) {
	g := diamond()
	if !g.Precedes("A", "D") {
		t.Error("A should precede D transitively")
	}
	if g.Precedes("D", "A") {
		t.Error("D should not precede A")
	}
	if g.Precedes("B", "C") || g.Precedes("C", "B") {
		t.Error("B and C are parallel")
	}
}

func TestOrderedSymmetric(t *testing.T) {
	g := diamond()
	if !g.Ordered("A", "D") || !g.Ordered("D", "A") {
		t.Error("Ordered should be symmetric over A,D")
	}
	if g.Ordered("B", "C") {
		t.Error("B and C are unordered")
	}
	if g.Ordered("A", "A") {
		t.Error("a task is not ordered against itself")
	}
}

func TestUnorderedMembers(t *testing.T) {
	g := diamond()
	// Accessors of S: A, B, C. B and C are parallel; A is ordered against
	// both, so only B and C need arbitration.
	members := g.UnorderedMembers([]string{"A", "B", "C"})
	if len(members) != 2 || members[0] != "B" || members[1] != "C" {
		t.Fatalf("members = %v, want [B C]", members)
	}
	// A fully ordered chain needs no arbitration at all.
	if got := g.UnorderedMembers([]string{"A", "D"}); len(got) != 0 {
		t.Fatalf("ordered pair should have no members, got %v", got)
	}
}

func TestAccessors(t *testing.T) {
	g := diamond()
	acc := g.Accessors("S")
	if len(acc) != 3 || acc[0] != "A" || acc[1] != "B" || acc[2] != "C" {
		t.Fatalf("Accessors(S) = %v", acc)
	}
}

func TestReadsWrites(t *testing.T) {
	g := diamond()
	b := g.TaskByName("B")
	if r := b.Reads(); len(r) != 1 || r[0] != "S" {
		t.Fatalf("Reads = %v", r)
	}
	if w := b.Writes(); len(w) != 1 || w[0] != "T" {
		t.Fatalf("Writes = %v", w)
	}
	if s := b.Segments(); len(s) != 2 {
		t.Fatalf("Segments = %v", s)
	}
}

func TestTotals(t *testing.T) {
	g := diamond()
	if g.TotalArea() != 40 {
		t.Fatalf("TotalArea = %d", g.TotalArea())
	}
	if g.TotalSegmentBytes() != 2048 {
		t.Fatalf("TotalSegmentBytes = %d", g.TotalSegmentBytes())
	}
}
