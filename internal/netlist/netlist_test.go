package netlist

import (
	"math/rand"
	"testing"

	"sparcs/internal/logic"
)

func TestGateEvalBasics(t *testing.T) {
	n := New()
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.AddOutput("and", n.AddGate(And, a, b))
	n.AddOutput("or", n.AddGate(Or, a, b))
	n.AddOutput("xor", n.AddGate(Xor, a, b))
	n.AddOutput("nand", n.AddGate(Nand, a, b))
	n.AddOutput("nor", n.AddGate(Nor, a, b))
	n.AddOutput("nota", n.AddGate(Not, a))

	s, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		a, b bool
		want [6]bool // and or xor nand nor nota
	}{
		{false, false, [6]bool{false, false, false, true, true, true}},
		{true, false, [6]bool{false, true, true, true, false, false}},
		{false, true, [6]bool{false, true, true, true, false, true}},
		{true, true, [6]bool{true, true, false, false, false, false}},
	} {
		out, err := s.Step([]bool{tc.a, tc.b})
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range tc.want {
			if out[i] != want {
				t.Errorf("a=%v b=%v out[%d] = %v, want %v", tc.a, tc.b, i, out[i], want)
			}
		}
	}
}

func TestDFFHoldsState(t *testing.T) {
	// Toggle flip-flop: D = NOT Q.
	n := New()
	d := n.AddNet("d")
	q := n.AddDFF(d, false, "q")
	n.AddGateOut(Not, d, q)
	n.AddOutput("q", q)

	s, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	want := false
	for i := 0; i < 8; i++ {
		out, err := s.Step(nil)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != want {
			t.Fatalf("cycle %d: q = %v, want %v", i, out[0], want)
		}
		want = !want
	}
}

func TestDFFInitValue(t *testing.T) {
	n := New()
	q := n.AddDFF(n.Const(true), true, "q")
	n.AddOutput("q", q)
	s, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := s.Step(nil)
	if !out[0] {
		t.Fatal("DFF with Init=true should present true on first cycle")
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	n := New()
	a := n.AddNet("a")
	b := n.AddGate(Not, a)
	n.AddGateOut(Buf, a, b) // a = BUF(NOT(a)): cycle
	if _, err := NewSimulator(n); err == nil {
		t.Fatal("expected combinational cycle error")
	}
}

func TestDoubleDriverDetected(t *testing.T) {
	n := New()
	a := n.AddInput("a")
	out := n.AddGate(Not, a)
	n.AddGateOut(Buf, out, a) // second driver on the same net
	if _, err := NewSimulator(n); err == nil {
		t.Fatal("expected double-driver error")
	}
}

func TestTristateResolution(t *testing.T) {
	// Two drivers on a shared bus line, like two tasks sharing a memory
	// data line (paper Figure 4a).
	n := New()
	d1 := n.AddInput("d1")
	e1 := n.AddInput("e1")
	d2 := n.AddInput("d2")
	e2 := n.AddInput("e2")
	bus := n.AddNet("bus")
	n.AddTBuf(d1, e1, bus)
	n.AddTBuf(d2, e2, bus)
	n.AddOutput("bus", bus)

	s, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	// Single driver 1.
	out, _ := s.Step([]bool{true, true, false, false})
	if !out[0] {
		t.Fatal("bus should carry d1")
	}
	if v, z := s.Value(bus); !v || z {
		t.Fatalf("Value(bus) = %v hiZ=%v", v, z)
	}
	// No drivers: high-Z.
	s.Step([]bool{true, false, true, false})
	if _, z := s.Value(bus); !z {
		t.Fatal("bus should be high-impedance with no drivers")
	}
	if len(s.Conflicts()) != 0 {
		t.Fatalf("no conflict expected yet, got %v", s.Conflicts())
	}
	// Both drivers: conflict recorded.
	s.Step([]bool{true, true, false, true})
	if len(s.Conflicts()) != 1 {
		t.Fatalf("conflicts = %v, want exactly 1", s.Conflicts())
	}
	c := s.Conflicts()[0]
	if c.Net != bus || c.Drivers != 2 {
		t.Fatalf("conflict = %+v", c)
	}
}

func TestTristateFeedsGate(t *testing.T) {
	// Tristate net consumed by downstream logic must evaluate in order.
	n := New()
	d1 := n.AddInput("d1")
	e1 := n.AddInput("e1")
	bus := n.AddNet("bus")
	n.AddTBuf(d1, e1, bus)
	n.AddOutput("notbus", n.AddGate(Not, bus))

	s, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := s.Step([]bool{true, true})
	if out[0] {
		t.Fatal("NOT(bus) should be false when bus carries 1")
	}
}

func TestGateFeedsTristateEnable(t *testing.T) {
	n := New()
	a := n.AddInput("a")
	b := n.AddInput("b")
	en := n.AddGate(And, a, b)
	bus := n.AddNet("bus")
	n.AddTBuf(n.Const(true), en, bus)
	n.AddOutput("bus", bus)

	s, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := s.Step([]bool{true, true})
	if !out[0] {
		t.Fatal("bus should be driven when AND enables")
	}
	s.Step([]bool{true, false})
	if _, z := s.Value(bus); !z {
		t.Fatal("bus should be high-Z when AND disables")
	}
}

func TestStepNamed(t *testing.T) {
	n := New()
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.AddOutput("y", n.AddGate(And, a, b))
	s, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.StepNamed(map[string]bool{"a": true, "b": true})
	if err != nil {
		t.Fatal(err)
	}
	if !out["y"] {
		t.Fatal("y should be true")
	}
	out, _ = s.StepNamed(map[string]bool{"a": true}) // b defaults false
	if out["y"] {
		t.Fatal("y should be false with missing b")
	}
}

func TestStepInputCountMismatch(t *testing.T) {
	n := New()
	n.AddInput("a")
	s, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step([]bool{true, false}); err == nil {
		t.Fatal("expected input-count error")
	}
}

func TestStats(t *testing.T) {
	n := New()
	a := n.AddInput("a")
	b := n.AddInput("b")
	x := n.AddGate(And, a, b)
	y := n.AddGate(Or, x, a)
	n.AddDFF(y, false, "q")
	n.AddOutput("y", y)
	st, err := n.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Gates != 2 || st.DFFs != 1 || st.Depth != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ByKind[And] != 1 || st.ByKind[Or] != 1 {
		t.Fatalf("byKind = %v", st.ByKind)
	}
}

func TestAddCoverMatchesCoverEval(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		width := 2 + r.Intn(4)
		cv := logic.NewCover(width)
		for c := 0; c < 1+r.Intn(5); c++ {
			cube := logic.NewCube(width)
			for v := 0; v < width; v++ {
				switch r.Intn(3) {
				case 0:
					cube = cube.WithLit(v, logic.Pos)
				case 1:
					cube = cube.WithLit(v, logic.Neg)
				}
			}
			cv.Add(cube)
		}
		n := New()
		ins := make([]NetID, width)
		for i := range ins {
			ins[i] = n.AddInput("in")
		}
		n.AddOutput("f", n.AddCover(cv, ins))
		s, err := NewSimulator(n)
		if err != nil {
			t.Fatal(err)
		}
		inVec := make([]bool, width)
		for m := 0; m < 1<<uint(width); m++ {
			for i := 0; i < width; i++ {
				inVec[i] = m&(1<<uint(i)) != 0
			}
			out, err := s.Step(inVec)
			if err != nil {
				t.Fatal(err)
			}
			if out[0] != cv.Eval(inVec) {
				t.Fatalf("trial %d: netlist(%v) = %v, cover = %v\ncover:\n%s",
					trial, inVec, out[0], cv.Eval(inVec), cv)
			}
		}
	}
}

func TestAddCoverEmptyAndUniversal(t *testing.T) {
	n := New()
	a := n.AddInput("a")
	empty := n.AddCover(logic.NewCover(1), []NetID{a})
	if empty != n.Const(false) {
		t.Fatal("empty cover should be const 0")
	}
	uni := logic.NewCover(1)
	uni.Add(logic.NewCube(1))
	one := n.AddCover(uni, []NetID{a})
	if one != n.Const(true) {
		t.Fatal("universal cover should be const 1")
	}
}

func TestResetClearsState(t *testing.T) {
	n := New()
	d := n.AddNet("d")
	q := n.AddDFF(d, false, "q")
	n.AddGateOut(Not, d, q)
	n.AddOutput("q", q)
	s, _ := NewSimulator(n)
	s.Step(nil)
	s.Step(nil)
	s.Reset()
	if s.Cycle() != 0 {
		t.Fatal("Reset should zero the cycle counter")
	}
	out, _ := s.Step(nil)
	if out[0] != false {
		t.Fatal("Reset should restore DFF init value")
	}
}
