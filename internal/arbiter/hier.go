package arbiter

import "fmt"

// Hierarchical arbitrates with a two-level tree of round-robin
// pointers, the structure high-speed parallel round-robin arbiters use
// to shorten the priority-propagation critical path: the N tasks are
// split into `groups` equal clusters, a top-level pointer rotates over
// clusters and a per-cluster pointer rotates over members. Each grant
// advances both the winning cluster's member pointer and the top-level
// cluster pointer, so clusters take strict turns and members take
// strict turns within their cluster.
//
// Like the flat round-robin it is non-preemptive (a holder keeps the
// resource while it keeps requesting) and work conserving. For balanced
// trees (groups divides N, enforced by the constructor) the worst-case
// wait of a continuously requesting task is (N/groups-1) turns of its
// own cluster plus (groups-1) foreign-cluster episodes between
// consecutive turns — exactly the flat arbiter's N-1 grant-episode
// bound. With groups=1 or groups=N the tree degenerates to the flat
// round-robin and produces identical grant sequences.
type Hierarchical struct {
	n      int
	groups int
	size   int // tasks per group
	name   string
	holder int   // task holding the resource, or -1
	top    int   // next group the cluster scan starts at
	leaf   []int // per-group member offset the intra-cluster scan starts at
	grants []bool
}

// NewHierarchical returns a tree-of-round-robins arbiter over `groups`
// equal clusters of consecutive tasks; groups must divide n.
func NewHierarchical(n, groups int) (*Hierarchical, error) {
	if n < MinN || n > MaxN {
		return nil, RangeError(n)
	}
	if groups < 1 || groups > n {
		return nil, fmt.Errorf("arbiter: hier group count must be in [1,%d], got %d", n, groups)
	}
	if n%groups != 0 {
		return nil, fmt.Errorf("arbiter: hier needs a balanced tree: %d groups do not divide %d tasks", groups, n)
	}
	return &Hierarchical{
		n:      n,
		groups: groups,
		size:   n / groups,
		name:   fmt.Sprintf("hierarchical-%dx%d", groups, n/groups),
		holder: -1,
		leaf:   make([]int, groups),
		grants: make([]bool, n),
	}, nil
}

// Name implements Policy ("hierarchical-<groups>x<size>").
func (p *Hierarchical) Name() string { return p.name }

// N implements Policy.
func (p *Hierarchical) N() int { return p.n }

// Reset implements Policy.
func (p *Hierarchical) Reset() {
	p.holder = -1
	p.top = 0
	for g := range p.leaf {
		p.leaf[g] = 0
	}
}

// Step implements Policy.
func (p *Hierarchical) Step(req []bool) []bool {
	p.StepInto(req, p.grants)
	return p.grants
}

// StepInto implements InPlaceStepper: grant a still-requesting holder,
// otherwise scan clusters cyclically from the top pointer and members
// cyclically from the winning cluster's leaf pointer, advancing both
// pointers past the grantee.
func (p *Hierarchical) StepInto(req, grant []bool) {
	if len(req) != p.n || len(grant) != p.n {
		panic(fmt.Sprintf("arbiter: got %d requests / %d grants, want %d", len(req), len(grant), p.n))
	}
	for i := range grant {
		grant[i] = false
	}
	if p.holder >= 0 && req[p.holder] {
		grant[p.holder] = true
		return
	}
	for gi := 0; gi < p.groups; gi++ {
		g := (p.top + gi) % p.groups
		base := g * p.size
		for mi := 0; mi < p.size; mi++ {
			m := (p.leaf[g] + mi) % p.size
			t := base + m
			if req[t] {
				grant[t] = true
				p.holder = t
				p.leaf[g] = (m + 1) % p.size
				p.top = (g + 1) % p.groups
				return
			}
		}
	}
	p.holder = -1
}
