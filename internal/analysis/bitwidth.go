package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// bitwidthPkgs are the cycle-rate packages where request vectors live
// on single BitVec words and the MinN/MaxN/MaxSynthN bounds apply.
var bitwidthPkgs = map[string]bool{
	"sparcs/internal/arbiter":  true,
	"sparcs/internal/sim":      true,
	"sparcs/internal/workload": true,
}

// arbiterPkg is where BitVec and the width constants are declared.
const arbiterPkg = "sparcs/internal/arbiter"

// Bitwidth enforces the PR 6 bitset kernel's word discipline in the
// cycle-rate packages: shifts on a BitVec word must provably stay below
// 64 (a shift count that is constant ≥ 64 or derived by untyped
// arithmetic silently clears the word, Go masks nothing for typed
// shifts), []bool request vectors must not be constructed on hot paths
// (the PackBools/WriteBools adapters exist for the boundary), and the
// literals 16 and 64 must not stand in for MaxSynthN/MaxN in bound
// comparisons.
var Bitwidth = &Analyzer{
	Name: "bitwidth",
	Doc:  "flag BitVec shifts that can reach 64, hot-path []bool construction, and magic 16/64 width bounds",
	Run:  runBitwidth,
}

func runBitwidth(pass *Pass) error {
	if !bitwidthPkgs[pass.Package.Path] {
		return nil
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.SHL, token.SHR:
					if isBitVec(info.TypeOf(n.X)) && info.Types[n].Value == nil {
						checkShiftCount(pass, info, n.Y)
					}
				case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
					checkMagicBound(pass, info, n.X, n.Y)
					checkMagicBound(pass, info, n.Y, n.X)
				}
			case *ast.AssignStmt:
				if (n.Tok == token.SHL_ASSIGN || n.Tok == token.SHR_ASSIGN) && len(n.Lhs) == 1 && len(n.Rhs) == 1 {
					if isBitVec(info.TypeOf(n.Lhs[0])) {
						checkShiftCount(pass, info, n.Rhs[0])
					}
				}
			}
			return true
		})
	}
	checkHotBoolVectors(pass)
	return nil
}

// checkShiftCount inspects the count expression of a BitVec shift. A
// constant count ≥ 64 always clears the word; a count computed with
// +,-,* arithmetic has no syntactic bound and can reach 64 (Go does not
// mask shift counts), so it must be guarded or rewritten — a plain
// bounded variable is accepted.
func checkShiftCount(pass *Pass, info *types.Info, count ast.Expr) {
	if tv, ok := info.Types[count]; ok && tv.Value != nil {
		if v, exact := constantInt(tv); exact && v >= 64 {
			pass.Reportf(count.Pos(), "shift count %d always clears a 64-bit BitVec word", v)
		}
		return
	}
	var arith ast.Expr
	ast.Inspect(count, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && arith == nil {
			switch b.Op {
			case token.ADD, token.SUB, token.MUL:
				if tv, ok := info.Types[b]; !ok || tv.Value == nil {
					arith = b
				}
			}
		}
		return arith == nil
	})
	if arith != nil {
		pass.Reportf(count.Pos(), "shift count computed by arithmetic can reach 64 and clear the BitVec word; bound it explicitly")
	}
}

// checkMagicBound flags a bare 16 or 64 literal compared against a
// non-constant value — the width bounds have names (MaxSynthN, MaxN).
func checkMagicBound(pass *Pass, info *types.Info, lit, other ast.Expr) {
	bl, ok := ast.Unparen(lit).(*ast.BasicLit)
	if !ok || bl.Kind != token.INT {
		return
	}
	var name string
	switch bl.Value {
	case "16":
		name = "MaxSynthN"
	case "64":
		name = "MaxN"
	default:
		return
	}
	if tv, ok := info.Types[other]; ok && tv.Value != nil {
		return // constant-vs-constant comparisons are not bound checks
	}
	if !isIntegerType(info.TypeOf(other)) {
		return
	}
	pass.Reportf(bl.Pos(), "magic width literal %s in a bound comparison; use arbiter.%s", bl.Value, name)
}

// checkHotBoolVectors walks the package's //sparcs:hotpath regions
// (following same-package static calls) and flags []bool construction:
// request vectors on the cycle path live on BitVec words, with
// PackBools/WriteBools at the boundary.
func checkHotBoolVectors(pass *Pass) {
	info := pass.TypesInfo
	visited := map[*types.Func]bool{}
	var walk func(region ast.Node)
	walk = func(region ast.Node) {
		ast.Inspect(region, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				if cl, ok := n.(*ast.CompositeLit); ok && isBoolSlice(info.TypeOf(cl)) {
					pass.Reportf(cl.Pos(), "[]bool request vector built on the cycle path; keep requests on a BitVec and convert with PackBools/WriteBools")
				}
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "make" && len(call.Args) >= 1 {
					if tv, ok := info.Types[call.Args[0]]; ok && tv.IsType() && isBoolSlice(tv.Type) {
						pass.Reportf(call.Pos(), "[]bool request vector built on the cycle path; keep requests on a BitVec and convert with PackBools/WriteBools")
					}
					return true
				}
			}
			if fn := staticCallee(info, call); fn != nil && !visited[fn] {
				visited[fn] = true
				if decl := pass.Package.Funcs[fn]; decl != nil && decl.Body != nil {
					walk(decl.Body)
				}
			}
			return true
		})
	}
	for _, mark := range pass.Package.HotMarks() {
		if fd, ok := mark.(*ast.FuncDecl); ok {
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				visited[fn] = true
			}
			if fd.Body != nil {
				walk(fd.Body)
			}
			continue
		}
		walk(mark)
	}
}

// isBitVec reports whether t is (or aliases) arbiter.BitVec.
func isBitVec(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "BitVec" && obj.Pkg() != nil && obj.Pkg().Path() == arbiterPkg
}

func isBoolSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// constantInt extracts an exact integer from a constant TypeAndValue.
func constantInt(tv types.TypeAndValue) (int64, bool) {
	if tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
