package partition

import (
	"testing"

	"sparcs/internal/rc"
	"sparcs/internal/taskgraph"
	"sparcs/internal/xc4000"
)

// pipelineGraph: P writes S; Q and R (parallel) read S and write their
// own outputs; deps P -> {Q,R}.
func pipelineGraph() *taskgraph.Graph {
	return &taskgraph.Graph{
		Name: "pipe",
		Segments: []*taskgraph.Segment{
			{Name: "S", SizeBytes: 4096, WidthBits: 32},
			{Name: "OQ", SizeBytes: 4096, WidthBits: 32},
			{Name: "OR", SizeBytes: 4096, WidthBits: 32},
		},
		Tasks: []*taskgraph.Task{
			{Name: "P", AreaCLBs: 100, Accesses: []taskgraph.Access{{Segment: "S", Kind: taskgraph.Write}}},
			{Name: "Q", AreaCLBs: 100, Deps: []string{"P"},
				Accesses: []taskgraph.Access{{Segment: "S", Kind: taskgraph.Read}, {Segment: "OQ", Kind: taskgraph.Write}}},
			{Name: "R", AreaCLBs: 100, Deps: []string{"P"},
				Accesses: []taskgraph.Access{{Segment: "S", Kind: taskgraph.Read}, {Segment: "OR", Kind: taskgraph.Write}}},
		},
	}
}

func TestTemporalSingleStage(t *testing.T) {
	stages, err := Temporal(pipelineGraph(), rc.Wildforce(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 1 {
		t.Fatalf("stages = %d, want 1 (everything fits)", len(stages))
	}
	st := stages[0]
	if len(st.Tasks) != 3 {
		t.Fatalf("stage tasks = %v", st.Tasks)
	}
	// S is read by parallel Q and R: exactly one 2-input arbiter, with P
	// elided (ordered against both).
	if len(st.Arbiters) != 1 {
		t.Fatalf("arbiters = %+v, want 1", st.Arbiters)
	}
	a := st.Arbiters[0]
	if a.N() != 2 {
		t.Fatalf("arbiter size = %d, want 2", a.N())
	}
	for _, m := range a.Members {
		if m == "P" {
			t.Fatal("P is ordered against Q and R and must be elided")
		}
	}
}

func TestTemporalSplitsWhenTooBig(t *testing.T) {
	g := pipelineGraph()
	for _, task := range g.Tasks {
		task.AreaCLBs = 500 // two tasks exceed one PE; four PEs still fit all three
	}
	// Shrink the board to one PE so only one task fits per stage.
	board := rc.Generic(1, xc4000.XC4013E, 32*1024, 36, 36)
	stages, err := Temporal(g, board, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 3 {
		t.Fatalf("stages = %d, want 3 on a single-PE board", len(stages))
	}
}

func TestTemporalImpossibleTask(t *testing.T) {
	g := pipelineGraph()
	g.Tasks[0].AreaCLBs = 10_000
	if _, err := Temporal(g, rc.Wildforce(), Options{}); err == nil {
		t.Fatal("expected oversized-task error")
	}
}

func TestFixedStagesValidation(t *testing.T) {
	g := pipelineGraph()
	board := rc.Wildforce()
	// Unknown task.
	if _, err := Temporal(g, board, Options{FixedStages: [][]string{{"P", "Z"}, {"Q", "R"}}}); err == nil {
		t.Error("unknown task should fail")
	}
	// Missing coverage.
	if _, err := Temporal(g, board, Options{FixedStages: [][]string{{"P", "Q"}}}); err == nil {
		t.Error("uncovered task should fail")
	}
	// Dependency pointing forward.
	if _, err := Temporal(g, board, Options{FixedStages: [][]string{{"Q", "R"}, {"P"}}}); err == nil {
		t.Error("forward dependency should fail")
	}
	// Valid split.
	stages, err := Temporal(g, board, Options{FixedStages: [][]string{{"P"}, {"Q", "R"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 2 {
		t.Fatalf("stages = %d", len(stages))
	}
}

func TestSpatialSpreadsParallelTasks(t *testing.T) {
	stages, err := Temporal(pipelineGraph(), rc.Wildforce(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := stages[0]
	if st.TaskPE["Q"] == st.TaskPE["R"] {
		t.Fatal("parallel tasks Q and R should spread across PEs")
	}
}

func TestMemoryMapperElidesOrderedSharing(t *testing.T) {
	// Producer/consumer pair sharing a bank must not create an arbiter.
	g := &taskgraph.Graph{
		Name: "ordered",
		Segments: []*taskgraph.Segment{
			{Name: "A", SizeBytes: 1024, WidthBits: 32},
			{Name: "B", SizeBytes: 1024, WidthBits: 32},
		},
		Tasks: []*taskgraph.Task{
			{Name: "T1", AreaCLBs: 50, Accesses: []taskgraph.Access{{Segment: "A", Kind: taskgraph.Write}}},
			{Name: "T2", AreaCLBs: 50, Deps: []string{"T1"},
				Accesses: []taskgraph.Access{{Segment: "A", Kind: taskgraph.Read}, {Segment: "B", Kind: taskgraph.Write}}},
		},
	}
	stages, err := Temporal(g, rc.Wildforce(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(stages[0].Arbiters) != 0 {
		t.Fatalf("ordered tasks need no arbiter, got %+v", stages[0].Arbiters)
	}
}

func TestCohortSegmentsShareBank(t *testing.T) {
	g := pipelineGraph()
	g.Segments[0].Cohort = "blk"
	g.Segments[1].Cohort = "blk"
	stages, err := Temporal(g, rc.Wildforce(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := stages[0]
	if st.SegBank["S"] != st.SegBank["OQ"] {
		t.Fatalf("cohort segments mapped to banks %d and %d", st.SegBank["S"], st.SegBank["OQ"])
	}
}

func TestSegmentTooLargeForBank(t *testing.T) {
	g := pipelineGraph()
	g.Segments[0].SizeBytes = 64 * 1024 // exceeds any 32KB Wildforce bank
	if _, err := Temporal(g, rc.Wildforce(), Options{}); err == nil {
		t.Fatal("expected segment-too-large error")
	}
}

// TestExpectedContentionPricesSimulatedWidth pins contention-aware
// partitioning: the arbiter-area model must be consulted at member
// width plus the expected background lines, and the widened price must
// be able to push a stage over CLB capacity.
func TestExpectedContentionPricesSimulatedWidth(t *testing.T) {
	g := pipelineGraph()
	var widths []int
	opts := Options{
		ArbArea: func(n int) int {
			widths = append(widths, n)
			return 0
		},
		ExpectedContention: map[string]int{"M1": 3},
	}
	// pipelineGraph produces one 2-input arbiter; the Wildforce's first
	// bank is M1, where the mapper places S (largest-first), so the area
	// model must see 2 members + 3 expected phantoms = 5.
	stages, err := Temporal(g, rc.Wildforce(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 1 || len(stages[0].Arbiters) != 1 {
		t.Fatalf("unexpected structure: %+v", stages)
	}
	res := stages[0].Arbiters[0].Resource
	want := 2 + opts.ExpectedContention[res]
	saw := false
	for _, w := range widths {
		if w == want {
			saw = true
		}
		if w == 2 && opts.ExpectedContention[res] > 0 {
			t.Fatalf("area model consulted at member width 2 despite %d expected phantom lines", opts.ExpectedContention[res])
		}
	}
	if !saw {
		t.Fatalf("area model never consulted at simulated width %d (saw %v)", want, widths)
	}

	// The widened price must count against CLB capacity: a model whose
	// widened arbiter is enormous fits at member width in one stage, but
	// under expected contention the temporal partitioner must re-plan
	// around the unaffordable arbiter (serializing Q and R into separate
	// stages so no arbiter is needed at all).
	blowUp := Options{
		ArbArea: func(n int) int {
			if n > 2 {
				return 1_000_000
			}
			return 1
		},
	}
	one, err := Temporal(g, rc.Wildforce(), blowUp)
	if err != nil {
		t.Fatalf("member-width pricing should fit: %v", err)
	}
	if len(one) != 1 || len(one[0].Arbiters) != 1 {
		t.Fatalf("member-width pricing: %d stages, %+v arbiters", len(one), one[0].Arbiters)
	}
	blowUp.ExpectedContention = map[string]int{res: 1}
	replanned, err := Temporal(g, rc.Wildforce(), blowUp)
	if err != nil {
		t.Fatalf("widened pricing should re-plan, not fail: %v", err)
	}
	arbiters := 0
	for _, st := range replanned {
		arbiters += len(st.Arbiters)
	}
	if len(replanned) == 1 && arbiters > 0 {
		t.Fatalf("widened pricing kept the unaffordable single-stage arbiter plan (%d stages, %d arbiters)",
			len(replanned), arbiters)
	}
}

func TestArbAreaDefaultTable(t *testing.T) {
	o := Options{}
	if o.arbArea(1) != 0 {
		t.Error("size-1 arbiter has no area")
	}
	if o.arbArea(2) <= 0 || o.arbArea(10) <= o.arbArea(2) {
		t.Error("arbiter area should grow with N")
	}
	if o.arbArea(12) <= o.arbArea(10) {
		t.Error("extrapolation should grow beyond the table")
	}
}

func TestRouteChannelsMergesPerPEPair(t *testing.T) {
	g := pipelineGraph()
	g.Channels = []*taskgraph.Channel{
		{Name: "c1", From: "Q", To: "R", WidthBits: 16},
		{Name: "c2", From: "P", To: "R", WidthBits: 8},
	}
	stages, err := Temporal(g, rc.Wildforce(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := stages[0]
	// Force interesting placement: move all three to distinct PEs.
	routes, err := RouteChannels(g, rc.Wildforce(), st)
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range routes {
		if pc.Pins <= 0 {
			t.Fatalf("physical channel with no pins: %+v", pc)
		}
		// Width must cover the widest merged logical channel.
		for _, lc := range pc.Logical {
			for _, c := range g.Channels {
				if c.Name == lc && c.WidthBits > pc.Pins {
					t.Fatalf("channel %s wider than its physical carrier", lc)
				}
			}
		}
	}
}

func TestRouteChannelsArbiterOnlyForUnorderedSources(t *testing.T) {
	g := pipelineGraph()
	g.Channels = []*taskgraph.Channel{
		{Name: "cq", From: "Q", To: "P", WidthBits: 8},
		{Name: "cr", From: "R", To: "P", WidthBits: 8},
	}
	stages, err := Temporal(g, rc.Wildforce(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := stages[0]
	// Place Q and R's channels onto the same PE pair by forcing PEs.
	st.TaskPE["P"] = 0
	st.TaskPE["Q"] = 1
	st.TaskPE["R"] = 1
	routes, err := RouteChannels(g, rc.Wildforce(), st)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 1 {
		t.Fatalf("routes = %d, want 1 merged channel", len(routes))
	}
	if routes[0].Arbiter == nil {
		t.Fatal("unordered sources Q,R sharing a channel need an arbiter")
	}
	if routes[0].Arbiter.N() != 2 {
		t.Fatalf("channel arbiter size = %d, want 2", routes[0].Arbiter.N())
	}
}

func TestStagePinUseRecorded(t *testing.T) {
	stages, err := Temporal(pipelineGraph(), rc.Wildforce(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stages[0].PinUse == nil {
		t.Fatal("PinUse should be recorded")
	}
}
