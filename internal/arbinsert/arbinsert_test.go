package arbinsert

import (
	"testing"

	"sparcs/internal/behav"
	"sparcs/internal/partition"
	"sparcs/internal/rc"
	"sparcs/internal/taskgraph"
)

// twoWriters: tasks W1 and W2 (parallel) both write segment S; reader R
// depends on both.
func twoWriters() *taskgraph.Graph {
	return &taskgraph.Graph{
		Name: "two-writers",
		Segments: []*taskgraph.Segment{
			{Name: "S", SizeBytes: 1024, WidthBits: 32},
		},
		Tasks: []*taskgraph.Task{
			{Name: "W1", AreaCLBs: 50, Accesses: []taskgraph.Access{{Segment: "S", Kind: taskgraph.Write}}},
			{Name: "W2", AreaCLBs: 50, Accesses: []taskgraph.Access{{Segment: "S", Kind: taskgraph.Write}}},
			{Name: "R", AreaCLBs: 50, Deps: []string{"W1", "W2"}, Accesses: []taskgraph.Access{{Segment: "S", Kind: taskgraph.Read}}},
		},
	}
}

func compile(t *testing.T, g *taskgraph.Graph, opts Options) (*partition.Stage, *Result) {
	t.Helper()
	board := rc.Wildforce()
	stages, err := partition.Temporal(g, board, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 1 {
		t.Fatalf("stages = %d, want 1", len(stages))
	}
	progs := map[string]behav.Program{
		"W1": {Body: []behav.Instr{behav.WriteImm("S", 0, 11), behav.WriteImm("S", 1, 12), behav.WriteImm("S", 2, 13)}},
		"W2": {Body: []behav.Instr{behav.WriteImm("S", 8, 21)}},
		"R":  {Body: []behav.Instr{behav.Read("S", 0), behav.Read("S", 8)}},
	}
	routes, err := partition.RouteChannels(g, board, stages[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := Insert(g, board, stages[0], routes, progs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return stages[0], res
}

func countOps(p behav.Program, op behav.Op) int {
	n := 0
	for _, in := range p.Body {
		if in.Op == op {
			n++
		}
	}
	return n
}

func TestInsertWrapsMembers(t *testing.T) {
	_, res := compile(t, twoWriters(), Options{})
	// W1 has 3 consecutive accesses, M=2: two groups -> 2 Req/Release pairs.
	w1 := res.Programs["W1"]
	if got := countOps(w1, behav.OpReq); got != 2 {
		t.Fatalf("W1 Req count = %d, want 2 (3 accesses, M=2)", got)
	}
	if got := countOps(w1, behav.OpRelease); got != 2 {
		t.Fatalf("W1 Release count = %d, want 2", got)
	}
	if got := countOps(w1, behav.OpWaitGrant); got != 2 {
		t.Fatalf("W1 WaitGrant count = %d, want 2", got)
	}
	// W2: single access, one group.
	if got := countOps(res.Programs["W2"], behav.OpReq); got != 1 {
		t.Fatalf("W2 Req count = %d, want 1", got)
	}
}

func TestInsertElidesOrderedReader(t *testing.T) {
	_, res := compile(t, twoWriters(), Options{})
	// R is ordered after both writers: dependency-aware mode gives it no
	// protocol at all.
	r := res.Programs["R"]
	if got := countOps(r, behav.OpReq); got != 0 {
		t.Fatalf("R Req count = %d, want 0 (elided)", got)
	}
	if len(res.Arbiters) != 1 || res.Arbiters[0].N() != 2 {
		t.Fatalf("arbiters = %+v, want one Arb2", res.Arbiters)
	}
}

func TestConservativeModeWrapsEveryone(t *testing.T) {
	_, res := compile(t, twoWriters(), Options{Conservative: true})
	if len(res.Arbiters) != 1 || res.Arbiters[0].N() != 3 {
		t.Fatalf("conservative arbiters = %+v, want one Arb3", res.Arbiters)
	}
	if got := countOps(res.Programs["R"], behav.OpReq); got != 1 {
		t.Fatalf("conservative R Req count = %d, want 1", got)
	}
}

func TestMParameterControlsGrouping(t *testing.T) {
	_, res1 := compile(t, twoWriters(), Options{M: 1})
	if got := countOps(res1.Programs["W1"], behav.OpReq); got != 3 {
		t.Fatalf("M=1: W1 Req count = %d, want 3", got)
	}
	_, res4 := compile(t, twoWriters(), Options{M: 4})
	if got := countOps(res4.Programs["W1"], behav.OpReq); got != 1 {
		t.Fatalf("M=4: W1 Req count = %d, want 1", got)
	}
}

func TestExtraCyclesAccounting(t *testing.T) {
	_, res := compile(t, twoWriters(), Options{})
	// W1: two groups -> 4 extra cycles (Req+Release each).
	if got := res.ExtraCyclesPerTask["W1"]; got != 4 {
		t.Fatalf("W1 extra cycles = %d, want 4", got)
	}
	if got := res.ExtraCyclesPerTask["R"]; got != 0 {
		t.Fatalf("R extra cycles = %d, want 0", got)
	}
}

func TestRewritePreservesOrderAndPayload(t *testing.T) {
	_, res := compile(t, twoWriters(), Options{})
	w1 := res.Programs["W1"]
	// Strip protocol; the access sequence must be untouched.
	var accesses []behav.Instr
	for _, in := range w1.Body {
		if in.Op == behav.OpWrite {
			accesses = append(accesses, in)
		}
	}
	if len(accesses) != 3 || accesses[0].Val != 11 || accesses[1].Val != 12 || accesses[2].Val != 13 {
		t.Fatalf("rewritten accesses corrupted: %+v", accesses)
	}
}

func TestMissingProgramRejected(t *testing.T) {
	g := twoWriters()
	board := rc.Wildforce()
	stages, err := partition.Temporal(g, board, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Insert(g, board, stages[0], nil, map[string]behav.Program{}, Options{})
	if err == nil {
		t.Fatal("expected missing-program error")
	}
}

func TestFigure8Shape(t *testing.T) {
	// The canonical Figure 8 rewrite: compute, then two accesses, becomes
	// compute, Req, WaitGrant, access, access, Release.
	g := twoWriters()
	board := rc.Wildforce()
	stages, err := partition.Temporal(g, board, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	progs := map[string]behav.Program{
		"W1": {Body: []behav.Instr{behav.Compute(13), behav.WriteImm("S", 1, 1), behav.WriteImm("S", 2, 2)}},
		"W2": {Body: []behav.Instr{behav.WriteImm("S", 8, 8)}},
		"R":  {Body: []behav.Instr{behav.Read("S", 1)}},
	}
	res, err := Insert(g, board, stages[0], nil, progs, Options{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Programs["W1"].Body
	wantOps := []behav.Op{behav.OpCompute, behav.OpReq, behav.OpWaitGrant, behav.OpWrite, behav.OpWrite, behav.OpRelease}
	if len(got) != len(wantOps) {
		t.Fatalf("rewritten length = %d, want %d: %+v", len(got), len(wantOps), got)
	}
	for i, op := range wantOps {
		if got[i].Op != op {
			t.Fatalf("instr %d = %v, want %v", i, got[i].Op, op)
		}
	}
}

func TestHoldThroughReducesProtocol(t *testing.T) {
	// Access, short compute, access: Figure 8 mode pays two groups; the
	// hold-through extension keeps the grant across the compute.
	g := twoWriters()
	board := rc.Wildforce()
	stages, err := partition.Temporal(g, board, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	progs := map[string]behav.Program{
		"W1": {Body: []behav.Instr{
			behav.WriteImm("S", 0, 1),
			behav.Compute(2),
			behav.WriteImm("S", 1, 2),
		}},
		"W2": {Body: []behav.Instr{behav.WriteImm("S", 8, 8)}},
		"R":  {Body: []behav.Instr{behav.Read("S", 0)}},
	}
	plain, err := Insert(g, board, stages[0], nil, progs, Options{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	held, err := Insert(g, board, stages[0], nil, progs, Options{M: 2, HoldThrough: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := countOps(plain.Programs["W1"], behav.OpReq); got != 2 {
		t.Fatalf("plain Req count = %d, want 2", got)
	}
	if got := countOps(held.Programs["W1"], behav.OpReq); got != 1 {
		t.Fatalf("hold-through Req count = %d, want 1", got)
	}
	// The compute instruction must sit inside the grant window.
	body := held.Programs["W1"].Body
	sawCompute := false
	inWindow := false
	for _, in := range body {
		switch in.Op {
		case behav.OpReq:
			inWindow = true
		case behav.OpRelease:
			inWindow = false
		case behav.OpCompute:
			sawCompute = inWindow
		}
	}
	if !sawCompute {
		t.Fatal("compute should ride inside the grant window")
	}
	if held.ExtraCyclesPerTask["W1"] >= plain.ExtraCyclesPerTask["W1"] {
		t.Fatal("hold-through should reduce protocol overhead")
	}
}

func TestHoldThroughRespectsM(t *testing.T) {
	// Even with hold-through, at most M accesses per grant.
	g := twoWriters()
	board := rc.Wildforce()
	stages, err := partition.Temporal(g, board, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	progs := map[string]behav.Program{
		"W1": {Body: []behav.Instr{
			behav.WriteImm("S", 0, 1), behav.Compute(1),
			behav.WriteImm("S", 1, 2), behav.Compute(1),
			behav.WriteImm("S", 2, 3),
		}},
		"W2": {Body: []behav.Instr{behav.WriteImm("S", 8, 8)}},
		"R":  {Body: []behav.Instr{behav.Read("S", 0)}},
	}
	res, err := Insert(g, board, stages[0], nil, progs, Options{M: 2, HoldThrough: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := countOps(res.Programs["W1"], behav.OpReq); got != 2 {
		t.Fatalf("Req count = %d, want 2 (M=2 caps the window at 2 accesses)", got)
	}
}
