package service

import (
	"net/http"
	"testing"
)

// TestStatsClassSLO pins the per-class latency SLO report on /v1/stats:
// every configured class appears (zero-count when idle), served
// requests are attributed to their admission class, an unset class maps
// to the default (first configured), and the percentile fields are
// sane (p50 <= p99, non-negative).
func TestStatsClassSLO(t *testing.T) {
	s := newServer(t, Config{})

	st := statsOf(t, s)
	for _, name := range []string{"interactive", "batch"} {
		slo, ok := st.Classes[name]
		if !ok {
			t.Fatalf("idle stats missing configured class %q", name)
		}
		if slo.Count != 0 {
			t.Fatalf("idle class %q count = %d, want 0", name, slo.Count)
		}
	}

	req := ExperimentRequest{Design: "fft", Tiles: 2}
	for i := 0; i < 3; i++ { // class unset -> default class "interactive"
		if rec := post(t, s.Handler(), "/v1/experiments", req); rec.Code != http.StatusOK {
			t.Fatalf("experiment: status %d: %s", rec.Code, rec.Body.String())
		}
	}
	req.Class = "batch"
	if rec := post(t, s.Handler(), "/v1/experiments", req); rec.Code != http.StatusOK {
		t.Fatalf("batch experiment: status %d: %s", rec.Code, rec.Body.String())
	}

	st = statsOf(t, s)
	if got := st.Classes["interactive"].Count; got != 3 {
		t.Fatalf("interactive count = %d, want 3 (unset class maps to default)", got)
	}
	if got := st.Classes["batch"].Count; got != 1 {
		t.Fatalf("batch count = %d, want 1", got)
	}
	for name, slo := range st.Classes {
		if slo.WaitP50Ms < 0 || slo.WaitP99Ms < slo.WaitP50Ms {
			t.Fatalf("class %q wait percentiles out of order: p50=%d p99=%d", name, slo.WaitP50Ms, slo.WaitP99Ms)
		}
		if slo.ServiceP50Ms < 0 || slo.ServiceP99Ms < slo.ServiceP50Ms {
			t.Fatalf("class %q service percentiles out of order: p50=%d p99=%d", name, slo.ServiceP50Ms, slo.ServiceP99Ms)
		}
	}

	// Cache accounting rides along: one design compiled, resident, never
	// evicted under the default unbounded budget.
	if st.CacheEntries != 1 || st.CacheEvictions != 0 {
		t.Fatalf("cache entries=%d evictions=%d, want 1 and 0", st.CacheEntries, st.CacheEvictions)
	}
	if st.CacheResidentCLBs <= 0 {
		t.Fatalf("cacheResidentCLBs = %d, want > 0", st.CacheResidentCLBs)
	}
}
