// Exercises the //sparcs:ignore machinery (run under the hotpath
// analyzer): trailing and standalone placement, per-analyzer scoping,
// and the driver's malformed/unused reporting.
package ign

var sink []int

// Marked suppresses a real finding with a trailing ignore.
//
//sparcs:hotpath
func Marked(n int) {
	sink = append(sink, n) //sparcs:ignore hotpath backing array reaches steady state after warmup
	grow(n)
}

// grow suppresses with a standalone ignore on the line above.
func grow(n int) {
	//sparcs:ignore hotpath backing array reaches steady state after warmup
	sink = append(sink, n+1)
}

// Wrong names a different analyzer, so the hotpath finding survives.
//
//sparcs:hotpath
func Wrong(n int) {
	sink = append(sink, n+2) //sparcs:ignore determinism wrong analyzer does not suppress // want `append may grow its backing array`
}

// Unused sits on a clean line: the driver reports it.
//
//sparcs:hotpath
func Unused(n int) {
	sink[0] = n //sparcs:ignore hotpath nothing to suppress // want `unused //sparcs:ignore for hotpath`
}

// Malformed variants: the driver reports each.
func malformed(n int) {
	_ = n //sparcs:ignore // want `needs an analyzer name and a reason`
	_ = n //sparcs:ignore hotpath // want `needs an analyzer name and a reason`
	_ = n //sparcs:ignore bogus not a real analyzer // want `names unknown analyzer "bogus"`
}
