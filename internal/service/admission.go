package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"sparcs/internal/arbiter"
)

// Class is one admission class: a named request lane with a weighted
// round-robin service quantum. Weight is the QoS knob — a class with
// weight 4 drains up to 4 queued experiments for every 1 a weight-1
// class gets while both have work queued (arbiter wrr semantics).
type Class struct {
	Name   string
	Weight int
}

// ErrDraining rejects new experiments while the server drains for
// shutdown: queued and in-flight experiments run to completion, new
// arrivals get 503.
var ErrDraining = errors.New("service: draining; new experiments rejected")

// QueueFullError rejects an experiment whose admission class already
// has a full queue — the bounded-queue backpressure signal (429).
type QueueFullError struct {
	Class string
	Depth int
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("service: admission queue for class %s is full (%d queued)", e.Class, e.Depth)
}

// UnknownClassError rejects an experiment naming a class the server
// was not configured with.
type UnknownClassError struct {
	Class string
}

func (e *UnknownClassError) Error() string {
	return fmt.Sprintf("service: unknown admission class %q", e.Class)
}

// waiter is one queued request: granted is set (under the admission
// mutex) before ch closes, so a cancelled waiter can tell whether it
// was handed a slot in the race window and must give it back.
type waiter struct {
	ch      chan struct{}
	granted bool
}

// admission is the in-process arbitration policy in front of the
// experiment executor: per-class bounded FIFO queues drained into a
// bounded set of execution slots, with the next class picked by the
// repo's own weighted-round-robin arbiter stepping over the "class has
// queued work" request word. The same kernel that arbitrates memory
// banks inside the simulator arbitrates the server's compute.
type admission struct {
	classes []Class
	index   map[string]int
	slots   int // max concurrently executing experiments
	depth   int // per-class queue bound

	// stepper picks the next class to dispatch; nil (single class)
	// degenerates to FIFO.
	stepper arbiter.BitStepper

	mu         sync.Mutex
	cond       *sync.Cond
	queues     [][]*waiter
	inflight   int
	draining   bool
	drainAbort bool // set when drain's ctx expires, so its watcher exits

	rejectedFull     atomic.Int64
	rejectedDraining atomic.Int64
}

func newAdmission(classes []Class, slots, depth int) (*admission, error) {
	if len(classes) == 0 {
		return nil, errors.New("service: need at least one admission class")
	}
	a := &admission{
		classes: classes,
		index:   make(map[string]int, len(classes)),
		slots:   slots,
		depth:   depth,
		queues:  make([][]*waiter, len(classes)),
	}
	a.cond = sync.NewCond(&a.mu)
	weights := make([]int, len(classes))
	for i, c := range classes {
		if c.Name == "" {
			return nil, fmt.Errorf("service: admission class %d has no name", i)
		}
		if c.Weight < 1 {
			return nil, fmt.Errorf("service: admission class %s has weight %d; need >= 1", c.Name, c.Weight)
		}
		if _, dup := a.index[c.Name]; dup {
			return nil, fmt.Errorf("service: duplicate admission class %s", c.Name)
		}
		a.index[c.Name] = i
		weights[i] = c.Weight
	}
	if len(classes) >= arbiter.MinN {
		p, err := arbiter.NewWeightedRoundRobin(len(classes), weights)
		if err != nil {
			return nil, err
		}
		a.stepper = arbiter.AsBitStepper(p)
	}
	return a, nil
}

// acquire blocks until the request holds an execution slot, or fails
// typed: *UnknownClassError (bad class), ErrDraining (shutdown),
// *QueueFullError (backpressure), or ctx.Err() (client gone). A nil
// return must be paired with release().
func (a *admission) acquire(ctx context.Context, class string) error {
	ci, ok := a.index[class]
	if !ok {
		return &UnknownClassError{Class: class}
	}
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		a.rejectedDraining.Add(1)
		return ErrDraining
	}
	if a.tryFastGrantLocked() {
		a.mu.Unlock()
		return nil
	}
	if len(a.queues[ci]) >= a.depth {
		a.mu.Unlock()
		a.rejectedFull.Add(1)
		return &QueueFullError{Class: class, Depth: a.depth}
	}
	w := &waiter{ch: make(chan struct{})}
	a.queues[ci] = append(a.queues[ci], w)
	a.mu.Unlock()

	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// Dispatch won the race: the slot is ours, give it back.
			a.mu.Unlock()
			a.release()
			return ctx.Err()
		}
		q := a.queues[ci]
		for i, x := range q {
			if x == w {
				a.queues[ci] = append(q[:i], q[i+1:]...)
				break
			}
		}
		a.cond.Broadcast()
		a.mu.Unlock()
		return ctx.Err()
	}
}

// tryFastGrantLocked admits immediately when a slot is free and no
// waiter is queued — wrr only matters under contention, so an idle
// server grants without touching the stepper or the heap. This is the
// per-request fast path: it must stay allocation-free
// (TestAdmissionFastPathAllocs pins it at zero).
//
//sparcs:hotpath
func (a *admission) tryFastGrantLocked() bool {
	if a.inflight < a.slots && a.queuedLocked() == 0 {
		a.inflight++
		return true
	}
	return false
}

// release returns an execution slot and dispatches queued waiters. Like
// the grant fast path, the uncontended release (empty queues) is on
// every request's critical path and must not allocate.
//
//sparcs:hotpath
func (a *admission) release() {
	a.mu.Lock()
	a.inflight--
	a.dispatchLocked()
	a.cond.Broadcast()
	a.mu.Unlock()
}

// dispatchLocked hands free slots to queued waiters, one wrr step per
// slot: the request word has bit c set when class c has queued work,
// and the stepper's grant picks the class to dequeue from.
func (a *admission) dispatchLocked() {
	for a.inflight < a.slots {
		var req arbiter.BitVec
		for ci, q := range a.queues {
			if len(q) > 0 {
				req |= arbiter.BitVec(1) << uint(ci)
			}
		}
		if req == 0 {
			return
		}
		ci := req.FirstSet()
		if a.stepper != nil {
			if g := a.stepper.StepBits(req); g != 0 {
				ci = g.FirstSet()
			}
		}
		w := a.queues[ci][0]
		a.queues[ci] = a.queues[ci][1:]
		w.granted = true
		a.inflight++
		close(w.ch)
	}
}

func (a *admission) queuedLocked() int {
	n := 0
	for _, q := range a.queues {
		n += len(q)
	}
	return n
}

// drain flips the server into draining mode — new acquires fail with
// ErrDraining — and blocks until every queued and in-flight experiment
// has completed, or ctx expires.
func (a *admission) drain(ctx context.Context) error {
	a.mu.Lock()
	a.draining = true
	a.drainAbort = false
	a.mu.Unlock()
	done := make(chan struct{})
	// The watcher cannot select on ctx.Done() inside cond.Wait; instead
	// the ctx branch below sets drainAbort under the mutex and
	// Broadcasts, so the Wait provably wakes and the goroutine exits.
	//sparcs:ignore goroleak ctx expiry sets drainAbort under mu and Broadcasts, waking this cond.Wait; the watcher cannot outlive drain by more than one wakeup
	go func() {
		a.mu.Lock()
		for !a.drainAbort && (a.inflight > 0 || a.queuedLocked() > 0) {
			a.cond.Wait()
		}
		a.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		a.drainAbort = true
		a.cond.Broadcast()
		a.mu.Unlock()
		return ctx.Err()
	}
}

// snapshot reports the controller's live state for /v1/stats.
func (a *admission) snapshot() (inflight int, queued map[string]int, draining bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	queued = make(map[string]int, len(a.classes))
	for ci, c := range a.classes {
		queued[c.Name] = len(a.queues[ci])
	}
	return a.inflight, queued, a.draining
}
