// Command sparcs runs the integrated partitioning/synthesis/arbitration
// flow (paper Figure 9) on a built-in design and reports the temporal
// partitions, memory maps, inserted arbiters, and cycle-accurate
// simulation results — or, in arbbench mode, benchmarks every
// arbitration policy against synthetic contention workloads.
//
// Usage:
//
//	sparcs -design fft                  # the paper's Section 5 case study
//	sparcs -design fft -conservative    # without dependency elision
//	sparcs -design fft -auto            # automatic temporal partitioning
//	sparcs -design fft -policy fifo     # swap the arbitration policy
//	sparcs -policy preemptive:8         # parameterized policy specs
//
//	sparcs -mode arbbench               # full policy×workload grid
//	sparcs -mode arbbench -n 8 -cycles 1000000 -policies rr,wrr:3 -workloads hog
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"sparcs/internal/arbinsert"
	"sparcs/internal/arbiter"
	"sparcs/internal/core"
	"sparcs/internal/fft"
	"sparcs/internal/rc"
	"sparcs/internal/sim"
	"sparcs/internal/workload"
)

func main() {
	mode := flag.String("mode", "flow", "flow (compile+simulate a design) or arbbench (policy×workload contention grid)")
	design := flag.String("design", "fft", "built-in design: fft")
	tiles := flag.Int("tiles", 8, "tiles to simulate per temporal partition")
	auto := flag.Bool("auto", false, "use automatic temporal partitioning instead of the paper's 3-stage split")
	conservative := flag.Bool("conservative", false, "disable dependency-based arbiter elision")
	policy := flag.String("policy", "round-robin", "arbitration policy spec (rr, fifo, priority, random:<seed>, fsm, netlist:<encoding>, preemptive:<maxHold>, wrr:<weights>, hier:<groups>)")
	m := flag.Int("m", 2, "accesses per grant before the request is released (Figure 8)")
	n := flag.Int("n", 6, "arbbench: request lines per arbiter")
	cycles := flag.Int("cycles", 200_000, "arbbench: cycles per grid cell")
	seed := flag.Uint64("seed", 1, "arbbench: workload random seed")
	policies := flag.String("policies", "", "arbbench: comma-separated policy specs (empty = all)")
	workloads := flag.String("workloads", "", "arbbench: comma-separated workload specs (empty = all)")
	flag.Parse()

	var err error
	switch *mode {
	case "flow":
		err = runFlow(*design, *tiles, *auto, *conservative, *policy, *m)
	case "arbbench":
		err = runArbbench(*n, *cycles, *seed, splitList(*policies), splitList(*workloads))
	default:
		err = fmt.Errorf("unknown mode %q (flow or arbbench)", *mode)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// splitList parses a comma-separated flag; empty means "use defaults"
// (signalled as nil).
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// runArbbench prints the deterministic policy×workload grid of
// fairness, wait, and utilization metrics.
func runArbbench(n, cycles int, seed uint64, policies, workloads []string) error {
	// Reject out-of-range values instead of letting the engine's
	// zero-means-default substitution contradict the printed header.
	if n < arbiter.MinN || n > arbiter.MaxN {
		return fmt.Errorf("arbbench: -n must be in [%d,%d], got %d", arbiter.MinN, arbiter.MaxN, n)
	}
	if cycles < 1 {
		return fmt.Errorf("arbbench: -cycles must be positive, got %d", cycles)
	}
	if seed == 0 {
		return fmt.Errorf("arbbench: -seed must be nonzero")
	}
	cells, err := workload.RunGrid(policies, workloads, workload.GridOptions{N: n, Cycles: cycles, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("== arbitration bench: N=%d, %d cycles/cell, seed %d ==\n", n, cycles, seed)
	fmt.Print(workload.FormatTable(cells))
	return nil
}

func runFlow(design string, tiles int, auto, conservative bool, policy string, m int) error {
	if design != "fft" {
		return fmt.Errorf("unknown design %q (only fft is built in)", design)
	}
	// Validate the policy spec up front, before any compilation starts,
	// so a bad name is a normal error instead of a log.Fatal from
	// library code mid-flow.
	spec, err := arbiter.ParsePolicySpec(policy)
	if err != nil {
		return err
	}

	g := fft.Taskgraph()
	board := rc.Wildforce()
	opts := core.Options{
		Insert: arbinsert.Options{M: m, Conservative: conservative},
	}
	if !auto {
		opts.Partition.FixedStages = fft.PaperStages()
	}

	d, err := core.Compile(g, board, fft.Programs(tiles), opts)
	if err != nil {
		return err
	}
	// The compiled design fixes every arbiter's size; check the spec
	// against each of them so size-dependent constraints (wrr weight
	// counts, hier group divisibility) also fail cleanly before
	// simulation.
	for _, sp := range d.Stages {
		for _, a := range sp.Inserted.Arbiters {
			if _, err := spec.New(a.N()); err != nil {
				return fmt.Errorf("policy %s unusable for the %d-task arbiter on %s: %w", spec, a.N(), a.Resource, err)
			}
		}
	}
	opts.NewPolicy = func(n int) arbiter.Policy {
		p, err := spec.New(n)
		if err != nil {
			// Unreachable: every arbiter size was validated above.
			panic(fmt.Sprintf("policy %s at N=%d: %v", spec, n, err))
		}
		return p
	}
	fmt.Print(d.Report())

	mem := sim.NewMemory()
	in := fft.LoadInput(mem, tiles, 42)
	res, err := core.Simulate(d, mem, opts)
	if err != nil {
		return err
	}
	fmt.Println("== simulation ==")
	for si, ss := range res.Stages {
		fmt.Printf("temporal partition #%d: %d cycles", si, ss.Stats.Cycles)
		if w := totalWait(ss.Stats.WaitCycles); w > 0 {
			fmt.Printf(", %d grant-wait cycles", w)
		}
		if len(ss.Stats.Violations) > 0 {
			fmt.Printf(", VIOLATIONS: %d", len(ss.Stats.Violations))
		}
		fmt.Println()
	}
	if err := fft.CheckOutput(mem, in); err != nil {
		fmt.Println("output check: FAIL:", err)
	} else {
		fmt.Println("output check: PASS (hardware memory image == fixed-point 2-D FFT)")
	}

	cpt := float64(res.TotalCycles) / float64(tiles)
	fmt.Printf("\n== 512x512 image timing (paper: HW 4.4 s, SW 6.8 s) ==\n")
	fmt.Printf("cycles/tile: %.1f\n", cpt)
	fmt.Printf("hardware @ %.0f MHz: %.2f s\n", fft.ClockMHz, fft.HardwareSeconds(cpt, 512))
	fmt.Printf("software (Pentium-150 model): %.2f s\n", fft.SoftwareSeconds(512))
	fmt.Printf("speedup: %.2fx\n", fft.SoftwareSeconds(512)/fft.HardwareSeconds(cpt, 512))
	return nil
}

func totalWait(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
