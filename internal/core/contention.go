package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"sparcs/internal/sim"
	"sparcs/internal/workload"
)

// ContentionSpec asks Simulate to inject one background phantom
// requester: a workload generator claiming Lines extra request lines on
// the arbiter guarding Resource, in every stage where that resource is
// arbitrated. The textual grammar (ParseContention) is
//
//	resource=workload[/lines]
//
// comma-separated, e.g. "M1=hog/2,M3=bernoulli:0.50" — the workload
// half is any workload.NewGenerator spec. Each resource may appear in
// at most one entry of a list: naming it twice is rejected with a
// *DuplicateResourceError instead of silently merging the sources
// (scale a source with /lines instead).
type ContentionSpec struct {
	// Resource names the arbitrated bank or physical channel ("M1").
	Resource string
	// Workload is the generator spec ("bursty", "bernoulli:0.30", ...).
	Workload string
	// Lines is the number of phantom request lines; 0 means 1.
	Lines int
}

// String renders the canonical textual form of the spec.
func (c ContentionSpec) String() string {
	lines := c.Lines
	if lines == 0 {
		lines = 1
	}
	return fmt.Sprintf("%s=%s/%d", c.Resource, c.Workload, lines)
}

// DuplicateResourceError reports a contention spec list naming one
// resource more than once. The parsers reject duplicates up front:
// before this guard a repeated resource silently combined into one
// widened arbiter, so a typo'd list ("M1=hog,M1=bursty" for
// "M1=hog,M3=bursty") mis-reported which background load a run faced.
type DuplicateResourceError struct {
	// Resource is the resource named more than once.
	Resource string
}

func (e *DuplicateResourceError) Error() string {
	return fmt.Sprintf("core: contention resource %s appears more than once (each resource takes at most one spec; scale a source with /lines or /lanes)", e.Resource)
}

// checkDuplicateResources rejects a single-resource spec list naming
// the same resource twice.
func checkDuplicateResources(specs []ContentionSpec) error {
	seen := make(map[string]bool, len(specs))
	for _, cs := range specs {
		if seen[cs.Resource] {
			return &DuplicateResourceError{Resource: cs.Resource}
		}
		seen[cs.Resource] = true
	}
	return nil
}

// ParseContention parses a comma-separated list of contention specs of
// the grammar documented on ContentionSpec. Workload names are
// validated immediately (against a placeholder size) and duplicate
// resources rejected (*DuplicateResourceError); resource names can only
// be checked against a compiled design, which Simulate does.
func ParseContention(s string) ([]ContentionSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []ContentionSpec
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		eq := strings.IndexByte(entry, '=')
		if eq <= 0 || eq == len(entry)-1 {
			return nil, fmt.Errorf("core: contention entry %q is not resource=workload[/lines]", entry)
		}
		cs := ContentionSpec{Resource: entry[:eq], Workload: entry[eq+1:], Lines: 1}
		if sl := strings.LastIndexByte(cs.Workload, '/'); sl >= 0 {
			v, err := strconv.Atoi(cs.Workload[sl+1:])
			if err != nil || v < 1 {
				return nil, fmt.Errorf("core: contention entry %q: line count %q must be a positive integer", entry, cs.Workload[sl+1:])
			}
			cs.Lines = v
			cs.Workload = cs.Workload[:sl]
		}
		if _, err := workload.NewGenerator(cs.Workload, cs.Lines, 1); err != nil {
			return nil, fmt.Errorf("core: contention entry %q: %w", entry, err)
		}
		out = append(out, cs)
	}
	if err := checkDuplicateResources(out); err != nil {
		return nil, err
	}
	return out, nil
}

// PhantomLines sums the phantom request lines the options add per
// resource — what arbiter policies must be sized for on top of each
// ArbiterSpec's member count. Statically silent workloads ("silent")
// are excluded, mirroring the simulator's elision.
func PhantomLines(specs []ContentionSpec) map[string]int {
	extra := map[string]int{}
	for _, cs := range specs {
		gen, err := workload.NewGenerator(cs.Workload, lines(cs), 1)
		if err != nil {
			continue // Simulate will surface the error with context
		}
		if s, ok := gen.(sim.StaticallySilent); ok && s.Silent() {
			continue
		}
		extra[cs.Resource] += lines(cs)
	}
	return extra
}

func lines(cs ContentionSpec) int {
	if cs.Lines == 0 {
		return 1
	}
	return cs.Lines
}

// stageContention builds the sim sources for one stage: one fresh
// generator per spec whose resource is arbitrated in the stage. Seeds
// are derived from the spec's index so every source has an independent
// stream, and from the options seed only — not the stage — so a
// resource arbitrated in several stages faces the same background
// process in each (each stage constructs fresh generator state).
func stageContention(sp *StagePlan, specs []ContentionSpec, seed uint64) ([]sim.ContentionSource, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	if seed == 0 {
		seed = 1
	}
	arbitrated := stageArbitrated(sp)
	var out []sim.ContentionSource
	for i, cs := range specs {
		if !arbitrated[cs.Resource] {
			continue
		}
		gen, err := workload.NewGenerator(cs.Workload, lines(cs), seed+uint64(i+1)*0x9e3779b97f4a7c15)
		if err != nil {
			return nil, fmt.Errorf("core: contention %s: %w", cs, err)
		}
		out = append(out, sim.ContentionSource{Resource: cs.Resource, Gen: gen})
	}
	return out, nil
}

// validateContention rejects specs naming resources no stage
// arbitrates — a typo guard: silently ignoring "M9=hog" would report a
// contention-free run as if the background load had been applied.
func validateContention(d *Design, specs []ContentionSpec) error {
	if len(specs) == 0 {
		return nil
	}
	arbitrated := map[string]bool{}
	for _, sp := range d.Stages {
		//sparcs:ignore determinism commutative set union; iteration order cannot change the result
		for r := range stageArbitrated(sp) {
			arbitrated[r] = true
		}
	}
	for _, cs := range specs {
		if !arbitrated[cs.Resource] {
			var have []string
			for r := range arbitrated {
				have = append(have, r)
			}
			sort.Strings(have)
			return fmt.Errorf("core: contention resource %s is not arbitrated in any stage (arbitrated: %s)",
				cs.Resource, strings.Join(have, ", "))
		}
	}
	return nil
}
