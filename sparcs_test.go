package sparcs_test

import (
	"strings"
	"testing"

	"sparcs"
)

func TestNewArbiterPublicAPI(t *testing.T) {
	arb, err := sparcs.NewArbiter(3)
	if err != nil {
		t.Fatal(err)
	}
	g := arb.Step([]bool{false, true, true})
	if !g[1] {
		t.Fatalf("grant = %v, want task 2 first", g)
	}
	if _, err := sparcs.NewArbiter(1); err == nil {
		t.Fatal("N=1 should be rejected")
	}
}

func TestNewPolicyPublicAPI(t *testing.T) {
	for _, name := range []string{"round-robin", "fifo", "priority", "random"} {
		p, err := sparcs.NewPolicy(name, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.N() != 4 {
			t.Fatalf("%s: N = %d", name, p.N())
		}
	}
}

func TestArbiterVHDLPublicAPI(t *testing.T) {
	text, err := sparcs.ArbiterVHDL(5, "compact")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "entity rr_arbiter_5") {
		t.Fatal("VHDL missing entity")
	}
	if _, err := sparcs.ArbiterVHDL(5, "johnson"); err == nil {
		t.Fatal("bad encoding should error")
	}
}

func TestCharacterizeArbiterPublicAPI(t *testing.T) {
	r, err := sparcs.CharacterizeArbiter(4, "synplify", "one-hot")
	if err != nil {
		t.Fatal(err)
	}
	if r.CLBs <= 0 || r.MaxMHz <= 0 {
		t.Fatalf("degenerate result %+v", r)
	}
	if _, err := sparcs.CharacterizeArbiter(4, "xst", "one-hot"); err == nil {
		t.Fatal("bad tool should error")
	}
}

func TestWildforcePublicAPI(t *testing.T) {
	b := sparcs.Wildforce()
	if len(b.PEs) != 4 {
		t.Fatalf("PEs = %d", len(b.PEs))
	}
}

// TestRunFFTCaseStudyPublicAPI is the headline integration test through
// the public facade: structure, correctness, and timing shape all at once.
func TestRunFFTCaseStudyPublicAPI(t *testing.T) {
	cs, err := sparcs.RunFFTCaseStudy(4)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.OutputOK {
		t.Fatal("output check failed")
	}
	if len(cs.Design.Stages) != 3 {
		t.Fatalf("stages = %d, want 3", len(cs.Design.Stages))
	}
	if cs.Speedup <= 1 {
		t.Fatalf("speedup = %.2f, hardware should win", cs.Speedup)
	}
	if !strings.Contains(cs.Report, "Arb6") {
		t.Fatal("report missing the 6-input arbiter")
	}
}
