// Command sparcs runs the integrated partitioning/synthesis/arbitration
// flow (paper Figure 9) on a built-in design and reports the temporal
// partitions, memory maps, inserted arbiters, and cycle-accurate
// simulation results — or, in arbbench mode, benchmarks every
// arbitration policy against synthetic contention workloads.
//
// Usage:
//
//	sparcs -design fft                  # the paper's Section 5 case study
//	sparcs -design fft -conservative    # without dependency elision
//	sparcs -design fft -auto            # automatic temporal partitioning
//	sparcs -design fft -policy fifo     # swap the arbitration policy
//	sparcs -policy preemptive:8         # parameterized policy specs
//
//	sparcs -mode arbbench               # full policy×workload grid
//	sparcs -mode arbbench -n 8 -cycles 1000000 -policies rr,wrr:3 -workloads hog
//
//	sparcs -contend M1=bursty/1              # FFT under background contention
//	sparcs -contend M1+M3=corr:0.25/1        # correlated hold-M1-wait-M3 source
//	sparcs -mode arbbench -fft-column        # measured FFT traffic as a grid column
//
//	sparcs -mode scenario               # online arrive/depart grid
//	sparcs -mode scenario -scn-jobs 12 -scn-arrivals bursty/256 -tiles 2
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"sparcs"
	"sparcs/internal/arbiter"
	"sparcs/internal/fft"
	"sparcs/internal/sim"
	"sparcs/internal/workload"
)

func main() {
	mode := flag.String("mode", "flow", "flow (compile+simulate a design) or arbbench (policy×workload contention grid)")
	design := flag.String("design", "fft", "built-in design: fft")
	tiles := flag.Int("tiles", 8, "tiles to simulate per temporal partition")
	auto := flag.Bool("auto", false, "use automatic temporal partitioning instead of the paper's 3-stage split")
	conservative := flag.Bool("conservative", false, "disable dependency-based arbiter elision")
	policy := flag.String("policy", "round-robin", "arbitration policy spec (rr, fifo, priority, random:<seed>, fsm, netlist:<encoding>, preemptive:<maxHold>, wrr:<weights>, hier:<groups>)")
	m := flag.Int("m", 2, "accesses per grant before the request is released (Figure 8)")
	contend := flag.String("contend", "", "flow: background contention specs, comma-separated: resource=workload[/lines] (e.g. M1=bursty/1) or correlated res1+res2=workload[/lanes] (e.g. M1+M3=corr:0.25/1)")
	contendSeed := flag.Uint64("contend-seed", 1, "flow: random seed for the background generators")
	maxCycles := flag.Int("max-cycles", 0, "flow: per-stage cycle watchdog (0 = 10M, or 1M when -contend is set)")
	n := flag.Int("n", 6, "arbbench: request lines per arbiter")
	cycles := flag.Int("cycles", 200_000, "arbbench: cycles per grid cell")
	seed := flag.Uint64("seed", 1, "arbbench: workload random seed")
	policies := flag.String("policies", "", "arbbench: comma-separated policy specs (empty = all)")
	workloads := flag.String("workloads", "", "arbbench: comma-separated workload specs (empty = all)")
	fftColumn := flag.Bool("fft-column", false, "arbbench: capture the FFT case study's measured request stream (its -n line arbiter, under -policy) and add it as a grid column")
	scnJobs := flag.Int("scn-jobs", 8, "scenario: number of arriving jobs")
	scnArrivals := flag.String("scn-arrivals", "", "scenario: comma-separated arrival specs, shape[:param][/stride] (empty = defaults)")
	scnPlacements := flag.String("scn-placements", "", "scenario: comma-separated placement modes, firstfit/bestfit (empty = both)")
	scnPrefetch := flag.String("scn-prefetch", "", "scenario: comma-separated prefetch modes, none/hybrid (empty = both)")
	scnCols := flag.Int("scn-cols", 0, "scenario: fabric CLB columns (0 = 384, four Wildforce boards side by side)")
	scnRows := flag.Int("scn-rows", 0, "scenario: fabric CLB rows (0 = 24)")
	scnCLB := flag.Int("scn-clb-cycles", 1, "scenario: reconfiguration cycles per CLB")
	scnCompact := flag.Int("scn-compact", 64, "scenario: delayed-compaction trigger in cycles (negative disables)")
	scnCross := flag.String("scn-cross", "", "scenario: cross-resident contention workload spec (empty = none)")
	flag.Parse()

	var err error
	switch *mode {
	case "flow":
		err = runFlow(flowOptions{
			design: *design, tiles: *tiles, auto: *auto, conservative: *conservative,
			policy: *policy, m: *m,
			contend: *contend, contendSeed: *contendSeed, maxCycles: *maxCycles,
		})
	case "arbbench":
		err = runArbbench(arbbenchOptions{
			n: *n, cycles: *cycles, seed: *seed,
			policies: splitList(*policies), workloads: splitList(*workloads),
			fftColumn: *fftColumn, fftTiles: *tiles, fftPolicy: *policy,
		})
	case "scenario":
		err = runScenario(scenarioOptions{
			tiles: *tiles, policy: *policy, jobs: *scnJobs, seed: *seed,
			arrivals:   splitList(*scnArrivals),
			placements: splitList(*scnPlacements),
			prefetches: splitList(*scnPrefetch),
			cols:       *scnCols, rows: *scnRows,
			perCLB: *scnCLB, compactDelay: *scnCompact, cross: *scnCross,
		})
	default:
		err = fmt.Errorf("unknown mode %q (flow, arbbench, or scenario)", *mode)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// splitList parses a comma-separated flag; empty means "use defaults"
// (signalled as nil).
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

type arbbenchOptions struct {
	n, cycles           int
	seed                uint64
	policies, workloads []string
	fftColumn           bool
	fftTiles            int
	fftPolicy           string
}

// runArbbench prints the deterministic policy×workload grid of
// fairness, wait, and utilization metrics. With -fft-column, the FFT
// case study's measured request stream joins the synthetic columns.
func runArbbench(o arbbenchOptions) error {
	// Reject out-of-range values instead of letting the engine's
	// zero-means-default substitution contradict the printed header.
	if o.n < arbiter.MinN || o.n > arbiter.MaxN {
		return fmt.Errorf("arbbench: -n must be in [%d,%d], got %d", arbiter.MinN, arbiter.MaxN, o.n)
	}
	// Per-policy bounds differ: synthesized kinds (fsm, netlist) stop at
	// arbiter.MaxSynthN while the behavioral bitset kernel runs to MaxN.
	// Name the offending policy and its own bound instead of failing one
	// grid cell deep.
	policies := o.policies
	if policies == nil {
		policies = workload.DefaultPolicies()
	}
	for _, ps := range policies {
		sp, err := arbiter.ParsePolicySpec(ps)
		if err != nil {
			return fmt.Errorf("arbbench: %w", err)
		}
		if max := sp.MaxN(); o.n > max {
			return fmt.Errorf("arbbench: policy %s supports at most %d request lines, got -n %d (drop it from -policies to bench the wider kinds)",
				ps, max, o.n)
		}
	}
	if o.cycles < 1 {
		return fmt.Errorf("arbbench: -cycles must be positive, got %d", o.cycles)
	}
	if o.seed == 0 {
		return fmt.Errorf("arbbench: -seed must be nonzero")
	}
	specs := o.workloads
	if specs == nil {
		specs = workload.DefaultWorkloads()
	}
	cols := make([]workload.Column, len(specs))
	for i, ws := range specs {
		cols[i] = workload.SpecColumn(ws)
	}
	if o.fftColumn {
		col, err := sparcs.FFTMeasuredColumn(o.fftTiles, o.n, o.fftPolicy)
		if err != nil {
			return err
		}
		cols = append(cols, col)
	}
	cells, err := workload.RunGridColumns(o.policies, cols, workload.GridOptions{N: o.n, Cycles: o.cycles, Seed: o.seed})
	if err != nil {
		return err
	}
	fmt.Printf("== arbitration bench: N=%d, %d cycles/cell, seed %d ==\n", o.n, o.cycles, o.seed)
	fmt.Print(workload.FormatTable(cells))
	return nil
}

type flowOptions struct {
	design             string
	tiles              int
	auto, conservative bool
	policy             string
	m                  int
	contend            string
	contendSeed        uint64
	maxCycles          int
}

func runFlow(o flowOptions) error {
	if o.design != "fft" {
		return fmt.Errorf("unknown design %q (only fft is built in)", o.design)
	}
	// Validate the policy spec up front: WithPolicy only checks it at
	// Run time, after the compilation report has already printed. The
	// contention spec needs no guard — WithExpectedContention parses it
	// inside Build, before any output.
	if _, err := arbiter.ParsePolicySpec(o.policy); err != nil {
		return err
	}

	// Build once: the compiled design is fixed, and the expected
	// background load prices every arbiter at its simulated width in the
	// memory mapper's area model (contention-aware partitioning).
	build := []sparcs.BuildOption{
		sparcs.WithAccessesPerGrant(o.m),
		sparcs.WithExpectedContention(o.contend),
	}
	if o.conservative {
		build = append(build, sparcs.WithConservativeArbitration())
	}
	var sys *sparcs.System
	var err error
	if o.auto {
		sys, err = sparcs.Build(fft.Taskgraph(), sparcs.Wildforce(), fft.Programs(o.tiles), build...)
	} else {
		sys, err = sparcs.FFTSystem(o.tiles, build...)
	}
	if err != nil {
		return err
	}
	fmt.Print(sys.Report())

	maxCycles := o.maxCycles
	if maxCycles == 0 && strings.TrimSpace(o.contend) != "" {
		// Background hogs can starve the design forever; bound the
		// watchdog so a starved run reports quickly instead of spinning
		// ten million cycles.
		maxCycles = 1_000_000
	}
	mem := sparcs.NewMemory()
	in := sparcs.LoadFFTInput(mem, o.tiles, 42)
	res, err := sys.Run(
		sparcs.WithPolicy(o.policy),
		sparcs.WithContention(o.contend),
		sparcs.WithSeed(o.contendSeed),
		sparcs.WithMaxCycles(maxCycles),
		sparcs.WithMemory(mem),
	)
	if err != nil {
		return err
	}
	tiles := o.tiles
	fmt.Println("== simulation ==")
	for si, ss := range res.Stages {
		fmt.Printf("temporal partition #%d: %d cycles", si, ss.Stats.Cycles)
		if w := totalWait(ss.Stats.WaitCycles); w > 0 {
			fmt.Printf(", %d grant-wait cycles", w)
		}
		if len(ss.Stats.Violations) > 0 {
			fmt.Printf(", VIOLATIONS: %d", len(ss.Stats.Violations))
		}
		fmt.Println()
		printContention(ss.Stats)
	}
	if err := sparcs.CheckFFTOutput(mem, in); err != nil {
		fmt.Println("output check: FAIL:", err)
	} else {
		fmt.Println("output check: PASS (hardware memory image == fixed-point 2-D FFT)")
	}

	cpt := float64(res.TotalCycles) / float64(tiles)
	fmt.Printf("\n== 512x512 image timing (paper: HW 4.4 s, SW 6.8 s) ==\n")
	fmt.Printf("cycles/tile: %.1f\n", cpt)
	fmt.Printf("hardware @ %.0f MHz: %.2f s\n", fft.ClockMHz, fft.HardwareSeconds(cpt, 512))
	fmt.Printf("software (Pentium-150 model): %.2f s\n", fft.SoftwareSeconds(512))
	fmt.Printf("speedup: %.2fx\n", fft.SoftwareSeconds(512)/fft.HardwareSeconds(cpt, 512))
	return nil
}

type scenarioOptions struct {
	tiles, jobs                      int
	seed                             uint64
	policy                           string
	arrivals, placements, prefetches []string
	cols, rows                       int
	perCLB, compactDelay             int
	cross                            string
}

// runScenario prints the online arrive/depart grid: for each arrival
// process, every placement × prefetch combination's makespan against
// the offline oracle bound, with reconfiguration-stall and queueing
// statistics. The same compiled FFT System templates every job.
func runScenario(o scenarioOptions) error {
	if o.jobs < 1 {
		return fmt.Errorf("scenario: -scn-jobs must be positive, got %d", o.jobs)
	}
	arrivals := o.arrivals
	if arrivals == nil {
		arrivals = []string{"bernoulli:0.001", "bursty/256", "markov/256"}
	}
	placements := o.placements
	if placements == nil {
		placements = []string{sparcs.PlaceFirstFit, sparcs.PlaceBestFit}
	}
	prefetches := o.prefetches
	if prefetches == nil {
		prefetches = []string{sparcs.PrefetchNone, sparcs.PrefetchHybrid}
	}
	cols, rows := o.cols, o.rows
	if cols == 0 {
		cols = 384
	}
	if rows == 0 {
		rows = 24
	}
	sys, err := sparcs.FFTSystem(o.tiles)
	if err != nil {
		return err
	}
	entry := sparcs.ScenarioEntry{
		Name:    "fft",
		System:  sys,
		Options: []sparcs.RunOption{sparcs.WithPolicy(o.policy)},
	}
	fmt.Printf("== scenario: %d fft jobs (tiles %d, footprint %d CLBs) on a %dx%d fabric, %d cycle(s)/CLB, seed %d ==\n",
		o.jobs, o.tiles, sys.FootprintCLBs(), cols, rows, o.perCLB, o.seed)
	for _, arr := range arrivals {
		fmt.Printf("\n-- arrivals %s --\n", arr)
		fmt.Printf("%-9s %-7s %9s %9s %6s %7s %6s %8s %7s\n",
			"placement", "prefetch", "makespan", "oracle", "ratio", "stall%", "port%", "p99wait", "compact")
		for _, pl := range placements {
			for _, pf := range prefetches {
				res, err := sparcs.RunScenario(sparcs.ScenarioConfig{
					Entries:              []sparcs.ScenarioEntry{entry},
					Arrivals:             arr,
					Jobs:                 o.jobs,
					Seed:                 o.seed,
					Placement:            pl,
					Prefetch:             pf,
					ReconfigCyclesPerCLB: o.perCLB,
					CompactionDelay:      o.compactDelay,
					FabricCols:           cols,
					FabricRows:           rows,
					CrossContention:      o.cross,
				})
				if err != nil {
					return err
				}
				fmt.Printf("%-9s %-7s %9d %9d %6.2f %6.1f%% %5.1f%% %8d %7d\n",
					pl, pf, res.Makespan, res.OracleMakespan,
					float64(res.Makespan)/float64(res.OracleMakespan),
					100*res.StallFraction, 100*res.PortBusyFraction,
					res.QueueWaitP99, res.Compactions)
			}
		}
	}
	return nil
}

// printContention reports the background phantom lines' grants and
// waits for one stage, in sorted resource order, followed by every
// correlated source's cross-resource hold-and-wait statistics.
func printContention(st *sim.Stats) {
	if len(st.Contention) > 0 {
		resources := make([]string, 0, len(st.Contention))
		for r := range st.Contention {
			resources = append(resources, r)
		}
		sort.Strings(resources)
		for _, r := range resources {
			cs := st.Contention[r]
			fmt.Printf("  background on %s: grants %v, wait cycles %v\n", r, cs.Grants, cs.Waits)
		}
	}
	for _, sh := range st.Shared {
		fmt.Printf("  correlated %s over %s: grants %v, waits %v, hold-and-wait %d, all-held %d\n",
			sh.Name, strings.Join(sh.Resources, "+"), sh.Grants, sh.Waits, sh.HoldWait, sh.AllHeld)
	}
}

func totalWait(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
