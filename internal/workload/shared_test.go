package workload

import (
	"reflect"
	"testing"
)

// step drives one Next cycle against scripted previous grants.
func step(t *testing.T, s *SharedSource, prevGrant [][]bool) [][]bool {
	t.Helper()
	req := make([][]bool, len(s.Resources()))
	for r := range req {
		req[r] = make([]bool, s.Lanes())
	}
	s.Next(req, prevGrant)
	return req
}

// TestSharedHoldAndWaitProtocol walks one lane through the full
// lifecycle against a scripted arbiter: acquire A, hold A while B is
// withheld, acquire B, hold both for the hold time, release.
func TestSharedHoldAndWaitProtocol(t *testing.T) {
	s, err := NewShared([]string{"A", "B"}, 1, 1.0, 2, 7) // p=1: arrives immediately
	if err != nil {
		t.Fatal(err)
	}
	none := [][]bool{{false}, {false}}
	grantA := [][]bool{{true}, {false}}
	grantAB := [][]bool{{true}, {true}}

	// Cycle 0: idle -> arrival. Must request A only: B is NEVER
	// requested before A has been acquired.
	req := step(t, s, none)
	if !req[0][0] || req[1][0] {
		t.Fatalf("after arrival want req A only, got A=%v B=%v", req[0][0], req[1][0])
	}
	// A withheld: keeps requesting A only.
	req = step(t, s, none)
	if !req[0][0] || req[1][0] {
		t.Fatalf("while waiting on A want req A only, got A=%v B=%v", req[0][0], req[1][0])
	}
	// A granted: now holds A (request stays up) and requests B.
	req = step(t, s, grantA)
	if !req[0][0] || !req[1][0] {
		t.Fatalf("after A granted want req A and B, got A=%v B=%v", req[0][0], req[1][0])
	}
	// B withheld for several cycles: the hold-and-wait state — A's
	// request must stay asserted throughout.
	for i := 0; i < 3; i++ {
		req = step(t, s, grantA)
		if !req[0][0] || !req[1][0] {
			t.Fatalf("hold-and-wait cycle %d: want A and B asserted, got A=%v B=%v", i, req[0][0], req[1][0])
		}
	}
	// B granted: first all-held cycle counts toward hold=2.
	req = step(t, s, grantAB)
	if !req[0][0] || !req[1][0] {
		t.Fatalf("critical section: want A and B asserted, got A=%v B=%v", req[0][0], req[1][0])
	}
	// Second all-held cycle reaches the hold time: everything releases.
	req = step(t, s, grantAB)
	if req[0][0] || req[1][0] {
		t.Fatalf("after hold expires want release of both, got A=%v B=%v", req[0][0], req[1][0])
	}
	// p=1: the next cycle arrives again, restarting with A only.
	req = step(t, s, none)
	if !req[0][0] || req[1][0] {
		t.Fatalf("re-arrival want req A only, got A=%v B=%v", req[0][0], req[1][0])
	}
}

// TestSharedResetReplaysIdentically drives a 3-resource, 2-lane source
// through a scripted grant pattern twice around a Reset and requires the
// identical request stream.
func TestSharedResetReplaysIdentically(t *testing.T) {
	s, err := NewShared([]string{"A", "B", "C"}, 2, 0.4, 3, 123)
	if err != nil {
		t.Fatal(err)
	}
	script := func() [][][]bool {
		var out [][][]bool
		grant := [][]bool{{false, false}, {false, false}, {false, false}}
		for c := 0; c < 200; c++ {
			req := make([][]bool, 3)
			for r := range req {
				req[r] = make([]bool, 2)
			}
			s.Next(req, grant)
			out = append(out, req)
			// Scripted arbiter: grant whatever is requested every third
			// cycle, one resource at a time.
			for r := range grant {
				for j := range grant[r] {
					grant[r][j] = req[r][j] && (c+r+j)%3 == 0
				}
			}
		}
		return out
	}
	first := script()
	s.Reset()
	second := script()
	if !reflect.DeepEqual(first, second) {
		t.Fatal("Reset did not replay the identical request stream")
	}
}

// TestSharedLaneIndependence: lanes have independent arrival streams —
// with 2 lanes the request patterns must differ somewhere over a long
// run (identical streams would mean the seed derivation collapsed).
func TestSharedLaneIndependence(t *testing.T) {
	s, err := NewShared([]string{"A", "B"}, 2, 0.3, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	grant := [][]bool{{false, false}, {false, false}}
	differ := false
	for c := 0; c < 500 && !differ; c++ {
		req := [][]bool{make([]bool, 2), make([]bool, 2)}
		s.Next(req, grant)
		if req[0][0] != req[0][1] || req[1][0] != req[1][1] {
			differ = true
		}
		for r := range grant {
			for j := range grant[r] {
				grant[r][j] = req[r][j] // grant everything: full progress
			}
		}
	}
	if !differ {
		t.Fatal("two lanes never diverged in 500 cycles; arrival streams are not independent")
	}
}

func TestNewSharedErrors(t *testing.T) {
	cases := []struct {
		resources []string
		lanes     int
		p         float64
		hold      int
	}{
		{[]string{"A"}, 1, 0.5, 2},      // one resource
		{[]string{"A", "A"}, 1, 0.5, 2}, // duplicate
		{[]string{"A", ""}, 1, 0.5, 2},  // empty name
		{[]string{"A", "B"}, 0, 0.5, 2}, // no lanes
		{[]string{"A", "B"}, 1, 0, 2},   // zero rate
		{[]string{"A", "B"}, 1, 1.5, 2}, // rate > 1
		{[]string{"A", "B"}, 1, 0.5, 0}, // no hold
	}
	for _, c := range cases {
		if _, err := NewShared(c.resources, c.lanes, c.p, c.hold, 1); err == nil {
			t.Errorf("NewShared(%v, %d, %g, %d) should error", c.resources, c.lanes, c.p, c.hold)
		}
	}
}

func TestNewSharedGeneratorGrammar(t *testing.T) {
	res := []string{"A", "B"}
	s, err := NewSharedGenerator("corr", res, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "corr:0.10:2" {
		t.Fatalf("default name %q", s.Name())
	}
	s, err = NewSharedGenerator("corr:0.25", res, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "corr:0.25:2" || s.Lanes() != 2 {
		t.Fatalf("got %q lanes=%d", s.Name(), s.Lanes())
	}
	s, err = NewSharedGenerator("corr:0.25:5", res, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "corr:0.25:5" {
		t.Fatalf("got %q", s.Name())
	}
	for _, bad := range []string{"bursty", "corr:x", "corr:0.25:0", "corr:0.25:x", "corr:2.0"} {
		if _, err := NewSharedGenerator(bad, res, 1, 1); err == nil {
			t.Errorf("spec %q should error", bad)
		}
	}
}
