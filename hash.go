// Design hashing: the content-addressed identity of a compiled System.
// DesignHash covers exactly what Build consumes — taskgraph, board,
// programs, declarative build options — so equal hashes mean Build
// would produce structurally identical Systems. This is the cache key
// behind the arbitration service (cmd/sparcsd): repeat designs hit the
// compiled-System cache and skip core.Compile entirely.

package sparcs

import (
	"sparcs/internal/core"
	"sparcs/internal/rc"
	"sparcs/internal/taskgraph"
)

// DesignHash returns the stable content hash ("sha256:<hex>") of the
// System that Build(g, board, programs, opts...) would compile, without
// compiling it. It fails (wrapping core.ErrUnhashable) when the options
// carry function-valued knobs like WithArbiterArea, which have no
// canonical serialization. See core.Fingerprint for what the hash does
// and does not cover.
func DesignHash(g *taskgraph.Graph, board *rc.Board, programs map[string]Program, opts ...BuildOption) (string, error) {
	var c buildConfig
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&c); err != nil {
			return "", err
		}
	}
	return core.Fingerprint(g, board, programs, c.opts)
}

// Hash returns the System's design hash — identical to the DesignHash
// of the inputs it was built from.
func (s *System) Hash() (string, error) {
	return core.Fingerprint(s.graph, s.board, s.programs, s.build)
}
