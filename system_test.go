package sparcs_test

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"sparcs"
	"sparcs/internal/arbiter"
	"sparcs/internal/core"
	"sparcs/internal/fft"
	"sparcs/internal/partition"
	"sparcs/internal/rc"
	"sparcs/internal/sim"
	"sparcs/internal/workload"
)

// TestSystemFFTDifferentialEquivalence is the deprecated-wrapper
// contract: the old flat-options path (core.Compile + core.Simulate),
// the deprecated facade wrappers, and a direct System run must produce
// deeply equal per-stage stats — including traces — and identical
// memory images for the FFT case study.
func TestSystemFFTDifferentialEquivalence(t *testing.T) {
	const tiles = 3

	// Old path: the flat core.Options bag threaded through both calls.
	oldOpts := core.Options{Partition: partition.Options{FixedStages: fft.PaperStages()}}
	d, err := core.Compile(fft.Taskgraph(), rc.Wildforce(), fft.Programs(tiles), oldOpts)
	if err != nil {
		t.Fatal(err)
	}
	oldMem := sim.NewMemory()
	fft.LoadInput(oldMem, tiles, 42)
	oldRes, err := core.Simulate(d, oldMem, oldOpts)
	if err != nil {
		t.Fatal(err)
	}

	// New path: Build once, Run with per-run options.
	sys, err := sparcs.FFTSystem(tiles)
	if err != nil {
		t.Fatal(err)
	}
	newMem := sparcs.NewMemory()
	in := sparcs.LoadFFTInput(newMem, tiles, 42)
	newRes, err := sys.Run(sparcs.WithCapture(), sparcs.WithMemory(newMem))
	if err != nil {
		t.Fatal(err)
	}

	// Deprecated wrapper path.
	cs, err := sparcs.RunFFTCaseStudy(tiles)
	if err != nil {
		t.Fatal(err)
	}

	for name, got := range map[string]*core.RunResult{
		"System.Run":      newRes.RunResult,
		"RunFFTCaseStudy": cs.Result,
	} {
		if got.TotalCycles != oldRes.TotalCycles {
			t.Fatalf("%s: TotalCycles %d != old %d", name, got.TotalCycles, oldRes.TotalCycles)
		}
		if len(got.Stages) != len(oldRes.Stages) {
			t.Fatalf("%s: %d stages != %d", name, len(got.Stages), len(oldRes.Stages))
		}
		for si := range got.Stages {
			if !reflect.DeepEqual(got.Stages[si].Stats, oldRes.Stages[si].Stats) {
				t.Fatalf("%s: stage %d stats diverge from the old facade path", name, si)
			}
		}
	}
	// Memory images agree segment by segment.
	for _, s := range fft.Taskgraph().Segments {
		if !reflect.DeepEqual(oldMem.Snapshot(s.Name), newMem.Snapshot(s.Name)) {
			t.Fatalf("segment %s differs between old and new paths", s.Name)
		}
	}
	if err := sparcs.CheckFFTOutput(newMem, in); err != nil {
		t.Fatal(err)
	}
}

// TestSystemArbbenchGridEquivalence: the grid built from the deprecated
// FFTMeasuredColumn wrapper and the grid built from a System capture
// must be cell-for-cell DeepEqual — the arbbench half of the wrapper
// contract.
func TestSystemArbbenchGridEquivalence(t *testing.T) {
	const tiles = 2
	oldCol, err := sparcs.FFTMeasuredColumn(tiles, 6, "round-robin")
	if err != nil {
		t.Fatal(err)
	}

	sys, err := sparcs.FFTSystem(tiles)
	if err != nil {
		t.Fatal(err)
	}
	mem := sparcs.NewMemory()
	sparcs.LoadFFTInput(mem, tiles, 42)
	res, err := sys.Run(sparcs.WithCapture("M1"), sparcs.WithMemory(mem))
	if err != nil {
		t.Fatal(err)
	}
	newCol, err := res.ColumnByWidth("fft", 6)
	if err != nil {
		t.Fatal(err)
	}
	if oldCol.Name != newCol.Name {
		t.Fatalf("column names: old %q, new %q", oldCol.Name, newCol.Name)
	}

	policies := []string{"rr", "fifo", "priority", "preemptive:4"}
	opt := sparcs.EvaluateOptions{N: 6, Cycles: 20_000, Seed: 1}
	oldCells, err := sparcs.EvaluatePolicyColumns(policies, []sparcs.WorkloadColumn{oldCol, sparcs.SpecWorkloadColumn("hog")}, opt)
	if err != nil {
		t.Fatal(err)
	}
	newCells, err := sparcs.EvaluatePolicyColumns(policies, []sparcs.WorkloadColumn{newCol, sparcs.SpecWorkloadColumn("hog")}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldCells, newCells) {
		t.Fatal("grid cells diverge between the deprecated wrapper column and the System capture column")
	}
	// And the spec-string front end still matches the columns front end.
	oldGrid, err := sparcs.EvaluatePolicies(policies, []string{"hog", "bursty"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	colGrid, err := sparcs.EvaluatePolicyColumns(policies,
		[]sparcs.WorkloadColumn{sparcs.SpecWorkloadColumn("hog"), sparcs.SpecWorkloadColumn("bursty")}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldGrid, colGrid) {
		t.Fatal("EvaluatePolicies diverges from EvaluatePolicyColumns over the same specs")
	}
}

// TestSystemCorrelatedAcrossPolicies is the acceptance property test: a
// correlated two-resource source (holds M1 while requesting M3) runs
// through System.Run under several policies; every run must report
// coherent cross-resource overlap/wait stats and keep the design
// correct.
func TestSystemCorrelatedAcrossPolicies(t *testing.T) {
	const tiles = 2
	sys, err := sparcs.FFTSystem(tiles)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []string{"round-robin", "fifo", "priority", "random:3", "preemptive:4"} {
		t.Run(policy, func(t *testing.T) {
			mem := sparcs.NewMemory()
			in := sparcs.LoadFFTInput(mem, tiles, 42)
			res, err := sys.Run(
				sparcs.WithPolicy(policy),
				sparcs.WithContention("M1+M3=corr:0.30/1"),
				sparcs.WithSeed(11),
				sparcs.WithMaxCycles(500_000),
				sparcs.WithMemory(mem),
			)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations()) != 0 {
				t.Fatalf("violations under %s: %v", policy, res.Violations())
			}
			if err := sparcs.CheckFFTOutput(mem, in); err != nil {
				t.Fatalf("FFT output corrupted under correlated contention: %v", err)
			}
			shared := res.SharedStats()
			if len(shared) != 1 {
				t.Fatalf("shared sources = %d, want 1 (stage 0 hosts M1+M3)", len(shared))
			}
			sh := shared[0]
			if !reflect.DeepEqual(sh.Resources, []string{"M1", "M3"}) {
				t.Fatalf("resources = %v", sh.Resources)
			}
			// The source made progress on both resources and completed
			// critical sections.
			if sh.Grants[0] == 0 || sh.Grants[1] == 0 || sh.AllHeld == 0 {
				t.Fatalf("no cross-resource progress: %+v", sh)
			}
			// Overlap bounds: both banks held at most min(grants);
			// overlap states bounded by the stage length.
			if sh.AllHeld > sh.Grants[0] || sh.AllHeld > sh.Grants[1] {
				t.Fatalf("AllHeld %d exceeds a grant count %v", sh.AllHeld, sh.Grants)
			}
			st0 := res.Stages[0].Stats
			if sh.HoldWait+sh.AllHeld > st0.Cycles {
				t.Fatalf("overlap %d+%d exceeds stage cycles %d", sh.HoldWait, sh.AllHeld, st0.Cycles)
			}
			// Per-line counts land in Stats.Contention for both banks.
			for i, r := range sh.Resources {
				cs := st0.Contention[r]
				if cs == nil || len(cs.Grants) != 1 {
					t.Fatalf("no per-line contention stats on %s", r)
				}
				if cs.Grants[0] != sh.Grants[i] || cs.Waits[0] != sh.Waits[i] {
					t.Fatalf("%s: per-line (%d,%d) != shared (%d,%d)", r, cs.Grants[0], cs.Waits[0], sh.Grants[i], sh.Waits[i])
				}
			}
			// Determinism: the identical composition replays identically.
			again, err := sys.Run(
				sparcs.WithPolicy(policy),
				sparcs.WithContention("M1+M3=corr:0.30/1"),
				sparcs.WithSeed(11),
				sparcs.WithMaxCycles(500_000),
			)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(again.SharedStats(), shared) {
				t.Fatalf("identical runs diverged under %s", policy)
			}
		})
	}
}

// TestSystemRunIndependence: runs compose per-call and leave no residue
// on the System — a contended run between two quiet runs must not
// change the second quiet run's outcome.
func TestSystemRunIndependence(t *testing.T) {
	sys, err := sparcs.FFTSystem(2)
	if err != nil {
		t.Fatal(err)
	}
	first, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(sparcs.WithPolicy("priority"), sparcs.WithContention("M1=bursty/1,M1+M3=corr:0.30/1"), sparcs.WithMaxCycles(500_000)); err != nil {
		t.Fatal(err)
	}
	second, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if first.TotalCycles != second.TotalCycles || len(first.Stages) != len(second.Stages) {
		t.Fatal("a contended run left residue on the System")
	}
	for si := range first.Stages {
		if !reflect.DeepEqual(first.Stages[si].Stats, second.Stages[si].Stats) {
			t.Fatalf("stage %d stats changed across runs", si)
		}
	}
}

func TestSystemRunErrors(t *testing.T) {
	sys, err := sparcs.FFTSystem(2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts []sparcs.RunOption
		want string
	}{
		{"bad policy", []sparcs.RunOption{sparcs.WithPolicy("nope")}, "unknown policy"},
		{"policy size mismatch", []sparcs.RunOption{sparcs.WithPolicy("wrr:1,2")}, "unusable"},
		{"size mismatch from contention", []sparcs.RunOption{sparcs.WithPolicy("hier:4"), sparcs.WithContention("M1=hog/1")}, "unusable"},
		{"bad contention", []sparcs.RunOption{sparcs.WithContention("M1=notashape")}, "unknown workload"},
		{"unknown contention resource", []sparcs.RunOption{sparcs.WithContention("M9=hog")}, "not arbitrated"},
		{"unknown shared resource", []sparcs.RunOption{sparcs.WithContention("M1+M9=corr")}, "no single stage"},
		{"never co-arbitrated", []sparcs.RunOption{sparcs.WithContention("M1+M4=corr")}, "no single stage"},
		{"unknown capture", []sparcs.RunOption{sparcs.WithCapture("M9")}, "not arbitrated"},
		{"nil memory", []sparcs.RunOption{sparcs.WithMemory(nil)}, "non-nil"},
		{"negative max cycles", []sparcs.RunOption{sparcs.WithMaxCycles(-1)}, "non-negative"},
	}
	for _, c := range cases {
		_, err := sys.Run(c.opts...)
		if err == nil {
			t.Errorf("%s: Run should error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestSystemPolicyValidatedAtSimulatedWidth: hier:3 divides the 6-line
// M1 arbiter but not the 7-line one a phantom produces — the run must
// fail up front with the widened width in the message.
func TestSystemPolicyValidatedAtSimulatedWidth(t *testing.T) {
	sys, err := sparcs.FFTSystem(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(sparcs.WithPolicy("hier:3")); err != nil {
		// hier:3 serves the quiet design only if 3 | N for every arbiter
		// (6, 2, 4): 2 and 4 fail, so even the quiet run errors — use the
		// error text to confirm validation happened up front.
		if !strings.Contains(err.Error(), "unusable") {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	// wrr with exactly 6 weights works quietly (M1's arbiter is the only
	// 6-line one it reaches? no: M3 has 2 and 4 lines). Use a policy
	// valid quietly but invalid once widened: preemptive works always;
	// instead check that the same spec's error message reports the
	// widened line count.
	_, err = sys.Run(sparcs.WithPolicy("wrr:1,1,1,1,1,1"), sparcs.WithContention("M1=hog/1"))
	if err == nil {
		t.Fatal("6-weight wrr must fail against the 7-line widened arbiter")
	}
	if !strings.Contains(err.Error(), "7-line") {
		t.Fatalf("error should name the simulated width: %v", err)
	}
}

func TestArbiterRangeErrorSentinel(t *testing.T) {
	if _, err := sparcs.NewArbiter(1); !errors.Is(err, arbiter.ErrOutOfRange) {
		t.Fatalf("NewArbiter(1) error %v does not wrap arbiter.ErrOutOfRange", err)
	}
	if _, err := sparcs.NewArbiter(arbiter.MaxN + 1); !errors.Is(err, arbiter.ErrOutOfRange) {
		t.Fatal("NewArbiter above MaxN must wrap ErrOutOfRange")
	}
	if _, err := arbiter.Machine(99); !errors.Is(err, arbiter.ErrOutOfRange) {
		t.Fatal("Machine(99) must wrap ErrOutOfRange")
	}
	if _, err := sparcs.NewPolicy("wrr:2", arbiter.MaxN+1); !errors.Is(err, arbiter.ErrOutOfRange) {
		t.Fatal("spec.New out of range must wrap ErrOutOfRange")
	}
	if _, err := sparcs.NewPolicy("fsm", arbiter.MaxSynthN+1); !errors.Is(err, arbiter.ErrOutOfRange) {
		t.Fatal("synthesized spec.New above MaxSynthN must wrap ErrOutOfRange")
	}
	err := arbiter.RangeError(1)
	if got := err.Error(); got != "arbiter: N must be in [2,64], got 1" {
		t.Fatalf("message %q changed", got)
	}
	err = arbiter.SynthRangeError(17)
	if got := err.Error(); got != "arbiter: N must be in [2,16] for synthesized (fsm/netlist) arbiters, got 17" {
		t.Fatalf("synth message %q changed", got)
	}
}

// TestSystemCaptureColumnRoundTrip: a named capture tap yields a column
// whose replayed width matches the arbiter, usable in a grid.
func TestSystemCaptureColumnRoundTrip(t *testing.T) {
	sys, err := sparcs.FFTSystem(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(sparcs.WithCapture("M1"))
	if err != nil {
		t.Fatal(err)
	}
	col, err := res.Column("M1")
	if err != nil {
		t.Fatal(err)
	}
	if col.Name != "fft4x4:M1" {
		t.Fatalf("column name %q", col.Name)
	}
	gen, err := col.New(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gen.N() != 6 {
		t.Fatalf("replay width %d", gen.N())
	}
	// Un-tapped resources have no column.
	if _, err := res.Column("M3"); err == nil {
		t.Fatal("M3 was not captured; Column should error")
	}
	// And a quiet run has no columns at all.
	quiet, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := quiet.Column("M1"); err == nil {
		t.Fatal("run without WithCapture should have no columns")
	}
	// The M1 capture feeds a grid.
	cells, err := workload.RunGridColumns([]string{"rr"}, []workload.Column{col}, workload.GridOptions{N: 6, Cycles: 5_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Workload != "fft4x4:M1" {
		t.Fatalf("grid cells = %+v", cells)
	}
}

// TestSystemSweep: Sweep fans experiment option-sets over one compiled
// System and returns per-experiment results identical to calling Run
// sequentially — same composition semantics, same no-residue guarantee,
// just parallel.
func TestSystemSweep(t *testing.T) {
	sys, err := sparcs.FFTSystem(2)
	if err != nil {
		t.Fatal(err)
	}
	experiments := [][]sparcs.RunOption{
		nil,
		{sparcs.WithPolicy("fifo")},
		{sparcs.WithPolicy("priority")},
		{sparcs.WithPolicy("wrr:2"), sparcs.WithContention("M1=bursty/1"), sparcs.WithMaxCycles(500_000)},
	}
	got, err := sys.Sweep(experiments...)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(experiments) {
		t.Fatalf("Sweep returned %d results for %d experiments", len(got), len(experiments))
	}
	for i, opts := range experiments {
		want, err := sys.Run(opts...)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].TotalCycles != want.TotalCycles || len(got[i].Stages) != len(want.Stages) {
			t.Fatalf("experiment %d: sweep %d cycles / %d stages, sequential %d / %d",
				i, got[i].TotalCycles, len(got[i].Stages), want.TotalCycles, len(want.Stages))
		}
		for si := range want.Stages {
			if !reflect.DeepEqual(got[i].Stages[si].Stats, want.Stages[si].Stats) {
				t.Fatalf("experiment %d stage %d: sweep stats diverge from sequential Run", i, si)
			}
		}
	}
	// A failing experiment reports its index without discarding the
	// completed siblings (partial-failure semantics pinned in detail by
	// TestSystemSweepPartialFailure).
	_, err = sys.Sweep(nil, []sparcs.RunOption{sparcs.WithPolicy("nope")})
	if err == nil {
		t.Fatal("Sweep with a bad experiment should error")
	}
	if !strings.Contains(err.Error(), "sweep experiment 1") || !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("error %q should name the failing experiment and cause", err)
	}
}

// TestSystemSweepPartialFailure: a sweep mixing valid and invalid
// option sets must run every valid experiment to completion and return
// their results alongside a typed *sparcs.SweepError naming the first
// failing index — a bad option set must not discard (or leak the
// goroutines of) its siblings.
func TestSystemSweepPartialFailure(t *testing.T) {
	sys, err := sparcs.FFTSystem(2)
	if err != nil {
		t.Fatal(err)
	}
	experiments := [][]sparcs.RunOption{
		nil,                                   // 0: valid baseline
		{sparcs.WithPolicy("no-such-policy")}, // 1: fails at option parse
		{sparcs.WithPolicy("fifo")},           // 2: valid
		{sparcs.WithContention("M9=hog/1")},   // 3: fails validation (M9 unarbitrated)
		{sparcs.WithPolicy("priority")},       // 4: valid
	}
	got, err := sys.Sweep(experiments...)
	if err == nil {
		t.Fatal("Sweep with invalid experiments should error")
	}
	var se *sparcs.SweepError
	if !errors.As(err, &se) {
		t.Fatalf("Sweep error %T (%v) is not a *sparcs.SweepError", err, err)
	}
	if se.Index != 1 {
		t.Fatalf("SweepError.Index = %d, want 1 (first failure by input order)", se.Index)
	}
	if se.Err == nil || !strings.Contains(se.Err.Error(), "unknown policy") {
		t.Fatalf("SweepError.Err = %v, want the underlying policy-parse error", se.Err)
	}
	if len(got) != len(experiments) {
		t.Fatalf("Sweep returned %d results for %d experiments", len(got), len(experiments))
	}
	for _, i := range []int{0, 2, 4} {
		if got[i] == nil {
			t.Fatalf("experiment %d: completed sibling result discarded", i)
		}
		want, err := sys.Run(experiments[i]...)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].TotalCycles != want.TotalCycles {
			t.Fatalf("experiment %d: sweep %d cycles, sequential %d", i, got[i].TotalCycles, want.TotalCycles)
		}
	}
	for _, i := range []int{1, 3} {
		if got[i] != nil {
			t.Fatalf("experiment %d: failing slot should be nil, got a result", i)
		}
	}
}

// TestSystemRejectsDeadlockProneProtocol: the compile-once System must
// refuse a per-run contention protocol whose correlated sources acquire
// the same resources in opposite orders — the PR 5 circular
// hold-and-wait repro — with the typed *core.DeadlockProneError naming
// the cycle, while WithUnsafeProtocols restores the watchdog-only
// behavior the deadlock experiments rely on.
func TestSystemRejectsDeadlockProneProtocol(t *testing.T) {
	sys, err := sparcs.FFTSystem(2)
	if err != nil {
		t.Fatal(err)
	}
	circular := sparcs.WithContention("M1+M3=corr:0.90:64/1,M3+M1=corr:0.90:64/1")
	_, err = sys.Run(circular, sparcs.WithSeed(1), sparcs.WithMaxCycles(20_000))
	var dp *core.DeadlockProneError
	if !errors.As(err, &dp) {
		t.Fatalf("Run = %v, want *core.DeadlockProneError", err)
	}
	if len(dp.Cycle) != 3 || dp.Cycle[0] != dp.Cycle[2] {
		t.Fatalf("cycle = %v, want a closed 2-cycle", dp.Cycle)
	}

	// Watchdog-only escape hatch: the run proceeds and the interlock is
	// caught by the cycle watchdog instead.
	res, err := sys.Run(circular, sparcs.WithSeed(1), sparcs.WithMaxCycles(20_000),
		sparcs.WithUnsafeProtocols())
	if err != nil {
		t.Fatalf("WithUnsafeProtocols run failed: %v", err)
	}
	dead := false
	for _, v := range res.Violations() {
		dead = dead || v.Kind == "deadlock-or-timeout"
	}
	if !dead {
		t.Fatalf("unsafe run did not hit the watchdog: %v", res.Violations())
	}

	// Build-time declaration path: expected contention declaring the
	// cyclic protocol must fail sparcs.Build the same way.
	_, err = sparcs.FFTSystem(2, sparcs.WithExpectedContention("M1+M3=corr:0.25,M3+M1=corr:0.25"))
	if !errors.As(err, &dp) {
		t.Fatalf("Build = %v, want *core.DeadlockProneError", err)
	}
}
