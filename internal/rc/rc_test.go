package rc

import (
	"testing"

	"sparcs/internal/xc4000"
)

func TestWildforceShape(t *testing.T) {
	b := Wildforce()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.PEs) != 4 {
		t.Fatalf("PEs = %d, want 4", len(b.PEs))
	}
	for _, pe := range b.PEs {
		if pe.Device.Name != "XC4013E" {
			t.Fatalf("device = %s, want XC4013E", pe.Device.Name)
		}
	}
	if len(b.Banks) != 4 {
		t.Fatalf("banks = %d, want 4", len(b.Banks))
	}
	for _, bank := range b.Banks {
		if bank.SizeBytes != 32*1024 {
			t.Fatalf("bank size = %d, want 32KB", bank.SizeBytes)
		}
	}
	if len(b.Links) != 3 {
		t.Fatalf("links = %d, want 3 neighbor links", len(b.Links))
	}
	for _, l := range b.Links {
		if l.Pins != 36 {
			t.Fatalf("link pins = %d, want 36", l.Pins)
		}
	}
	if b.XbarPins != 36 {
		t.Fatalf("crossbar pins = %d, want 36", b.XbarPins)
	}
}

func TestLinkBetween(t *testing.T) {
	b := Wildforce()
	if _, ok := b.LinkBetween(0, 1); !ok {
		t.Error("PE1-PE2 should be linked")
	}
	if _, ok := b.LinkBetween(1, 0); !ok {
		t.Error("links are bidirectional")
	}
	if _, ok := b.LinkBetween(0, 3); ok {
		t.Error("PE1-PE4 are not neighbors on the Wildforce")
	}
}

func TestBanksOnPE(t *testing.T) {
	b := Wildforce()
	for pe := 0; pe < 4; pe++ {
		banks := b.BanksOnPE(pe)
		if len(banks) != 1 {
			t.Fatalf("PE %d has %d banks, want 1", pe, len(banks))
		}
	}
}

func TestTotals(t *testing.T) {
	b := Wildforce()
	if got := b.TotalCLBs(); got != 4*576 {
		t.Fatalf("TotalCLBs = %d", got)
	}
	if got := b.TotalBankBytes(); got != 4*32*1024 {
		t.Fatalf("TotalBankBytes = %d", got)
	}
}

func TestGenericBoard(t *testing.T) {
	b := Generic(6, xc4000.XC4010E, 16*1024, 20, 40)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.PEs) != 6 || len(b.Banks) != 6 || len(b.Links) != 5 {
		t.Fatalf("generic board shape: %d PEs %d banks %d links", len(b.PEs), len(b.Banks), len(b.Links))
	}
}

func TestValidateCatchesBadBank(t *testing.T) {
	b := Wildforce()
	b.Banks[0].PE = 99
	if err := b.Validate(); err == nil {
		t.Fatal("expected invalid bank PE error")
	}
}

func TestValidateCatchesBadLink(t *testing.T) {
	b := Wildforce()
	b.Links[0].B = b.Links[0].A
	if err := b.Validate(); err == nil {
		t.Fatal("expected self-link error")
	}
}

func TestValidateEmptyBoard(t *testing.T) {
	b := &Board{Name: "empty"}
	if err := b.Validate(); err == nil {
		t.Fatal("expected no-PE error")
	}
}
