package service

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"sparcs"
)

// compileFFT compiles the reference FFT design. The cache is keyed by a
// caller-supplied hash, so churn tests reuse one design under distinct
// hashes: every entry then has the same known footprint.
func compileFFT() (*sparcs.System, error) {
	return sparcs.FFTSystem(2)
}

func fftFootprint(t *testing.T) int {
	t.Helper()
	sys, err := compileFFT()
	if err != nil {
		t.Fatal(err)
	}
	foot := sys.FootprintCLBs()
	if foot <= 1 {
		t.Fatalf("FootprintCLBs = %d, want > 1", foot)
	}
	return foot
}

// TestCacheLRUBoundUnderChurn drives a stream of distinct hashes
// through a footprint-bounded cache and proves residency never exceeds
// the budget while the least-recently-used entries get evicted.
func TestCacheLRUBoundUnderChurn(t *testing.T) {
	foot := fftFootprint(t)
	// Budget holds exactly two compiled designs.
	budget := 2 * foot
	c := newSystemCache(budget)
	for i := 0; i < 8; i++ {
		if _, _, err := c.get(fmt.Sprintf("h%d", i), compileFFT); err != nil {
			t.Fatal(err)
		}
		resident, entries := c.snapshot()
		if resident > budget {
			t.Fatalf("after insert %d: resident %d CLBs exceeds budget %d", i, resident, budget)
		}
		if entries > 2 {
			t.Fatalf("after insert %d: %d entries resident, want <= 2", i, entries)
		}
	}
	if got := c.evictions.Load(); got != 6 {
		t.Fatalf("evictions = %d, want 6 (8 inserts, 2 resident)", got)
	}
	// The most recent entries survived; the oldest were dropped.
	if _, hit, _ := c.get("h7", compileFFT); !hit {
		t.Fatal("most recent entry h7 was evicted")
	}
	if _, hit, _ := c.get("h0", compileFFT); hit {
		t.Fatal("oldest entry h0 should have been evicted")
	}
}

// TestCacheReMissRecompilesOnce proves the singleflight contract
// survives eviction: concurrent requests for an evicted hash trigger
// exactly one recompile, and the total compile count equals the number
// of distinct misses, never more.
func TestCacheReMissRecompilesOnce(t *testing.T) {
	foot := fftFootprint(t)
	c := newSystemCache(foot) // holds exactly one design
	var compiles atomic.Int64
	counted := func() (*sparcs.System, error) {
		compiles.Add(1)
		return compileFFT()
	}
	if _, _, err := c.get("a", counted); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.get("b", counted); err != nil { // evicts "a"
		t.Fatal(err)
	}
	if _, entries := c.snapshot(); entries != 1 {
		t.Fatalf("entries = %d, want 1", entries)
	}
	// Re-miss on "a": many goroutines at once, exactly one recompile.
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.get("a", counted); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := compiles.Load(); got != 3 {
		t.Fatalf("compiles = %d, want 3 (a, b, re-missed a)", got)
	}
	if got := c.compiles.Load(); got != 3 {
		t.Fatalf("cache-counted compiles = %d, want 3", got)
	}
}

// TestCacheUnboundedKeepsEverything pins the historical default:
// budget <= 0 never evicts.
func TestCacheUnboundedKeepsEverything(t *testing.T) {
	c := newSystemCache(0)
	for i := 0; i < 6; i++ {
		if _, _, err := c.get(fmt.Sprintf("h%d", i), compileFFT); err != nil {
			t.Fatal(err)
		}
	}
	if _, entries := c.snapshot(); entries != 6 {
		t.Fatalf("entries = %d, want 6", entries)
	}
	if got := c.evictions.Load(); got != 0 {
		t.Fatalf("evictions = %d, want 0", got)
	}
}

// TestCacheNeverEvictsJustCompiled proves a design larger than the
// whole budget still serves: the entry that just weighed in is never
// its own victim, so the effective bound is max(budget, largest
// footprint).
func TestCacheNeverEvictsJustCompiled(t *testing.T) {
	c := newSystemCache(1) // smaller than any real footprint
	if _, _, err := c.get("big", compileFFT); err != nil {
		t.Fatal(err)
	}
	resident, entries := c.snapshot()
	if entries != 1 {
		t.Fatalf("entries = %d, want 1 (just-compiled entry must stay)", entries)
	}
	if resident <= 1 {
		t.Fatalf("resident = %d, want the design's real footprint", resident)
	}
	// The next insert evicts it.
	if _, _, err := c.get("next", compileFFT); err != nil {
		t.Fatal(err)
	}
	if _, hit, _ := c.get("big", compileFFT); hit {
		t.Fatal("oversized entry should have been evicted by the next insert")
	}
}
