package sparcs_test

import (
	"sparcs/internal/behav"
	"sparcs/internal/taskgraph"
	"sparcs/internal/xc4000"
)

// table1Graph builds the Table 1 / Figure 3 channel-sharing scenario: two
// logical channels with different source tasks that will merge onto one
// physical inter-FPGA channel.
func table1Graph() *taskgraph.Graph {
	return &taskgraph.Graph{
		Name: "table1",
		Segments: []*taskgraph.Segment{
			{Name: "OUT", SizeBytes: 64, WidthBits: 32},
		},
		Channels: []*taskgraph.Channel{
			{Name: "c1", From: "Task1", To: "Task2", WidthBits: 16},
			{Name: "c4", From: "Task4", To: "Task3", WidthBits: 8},
		},
		Tasks: []*taskgraph.Task{
			{Name: "Task1", AreaCLBs: 200},
			{Name: "Task2", AreaCLBs: 200, Accesses: []taskgraph.Access{{Segment: "OUT", Kind: taskgraph.Write}}},
			{Name: "Task3", AreaCLBs: 200, Accesses: []taskgraph.Access{{Segment: "OUT", Kind: taskgraph.Write}}},
			{Name: "Task4", AreaCLBs: 200},
		},
	}
}

func table1Programs() map[string]behav.Program {
	return map[string]behav.Program{
		"Task1": {Body: []behav.Instr{behav.SendImm("c1", 10)}},
		"Task4": {Body: []behav.Instr{behav.Compute(1), behav.SendImm("c4", 102)}},
		"Task2": {Body: []behav.Instr{behav.Compute(6), behav.Recv("c1"), behav.Write("OUT", 0)}},
		"Task3": {Body: []behav.Instr{behav.Recv("c4"), behav.Write("OUT", 1)}},
	}
}

func wildforceDevice() xc4000.Device { return xc4000.XC4013E }

// twoTaskGraph is a minimal graph with two tasks sharing segment S, for
// protocol-overhead measurements.
func twoTaskGraph() *taskgraph.Graph {
	g := &taskgraph.Graph{
		Name: "two",
		Segments: []*taskgraph.Segment{
			{Name: "S", SizeBytes: 1024, WidthBits: 32},
		},
		Tasks: []*taskgraph.Task{
			{Name: "A", AreaCLBs: 10, Accesses: []taskgraph.Access{{Segment: "S", Kind: taskgraph.Write}}},
			{Name: "B", AreaCLBs: 10, Accesses: []taskgraph.Access{{Segment: "S", Kind: taskgraph.Write}}},
		},
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}
