// Package workload is a deterministic synthetic request-traffic engine
// for exercising arbitration policies standalone, outside the full
// system simulator: it drives any arbiter.Policy at millions of cycles
// per second through the word-level BitStepper fast path, under traffic shapes
// the paper's single FFT case study never produces — uniform Bernoulli
// arrivals, bursty on/off sources, hotspot skew, Markov-modulated load
// regimes, an adversarial hog, and recorded-trace replay.
//
// Generators are closed-loop: each cycle they observe the previous
// cycle's grants, so a task requests persistently until its job has
// been served for its hold time and then releases — the request/release
// discipline of the paper's Figure 8 access protocol. All randomness
// comes from a seeded splitmix64 stream, so a (generator, seed, policy)
// triple always replays the identical experiment.
package workload

import (
	"fmt"
	"strconv"
	"strings"

	"sparcs/internal/arbiter"
)

// Generator produces one request vector per cycle. Next fills req for
// the coming cycle after observing prevGrant, the grants the arbiter
// issued last cycle (all false on the first call). Implementations must
// be deterministic: Reset followed by the same grant feedback replays
// the identical request stream.
type Generator interface {
	// Name identifies the shape with its parameters ("bernoulli:0.30").
	Name() string
	// N returns the number of request lines.
	N() int
	// Next fills req for one cycle; len(req) and len(prevGrant) must
	// equal N.
	Next(req, prevGrant []bool)
	// Reset returns the generator to its initial state, including the
	// random stream.
	Reset()
}

// BitGenerator is the word-level fast path of Generator: NextBits
// returns the request word for the coming cycle (bit i = line i) after
// observing prevGrant, the grants issued last cycle. It advances the
// same state as Next — the two surfaces are interchangeable
// cycle-by-cycle, and every generator in this package implements both
// (NextBits is the core; Next is a pack/unpack adapter). It is
// structurally identical to sim.BitRequester, so sources attached as
// simulator contention take the simulator's word-level path too.
type BitGenerator interface {
	NextBits(prevGrant arbiter.BitVec) arbiter.BitVec
}

// rng is a splitmix64 pseudo-random stream: tiny, allocation-free, and
// fully determined by its seed.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chance returns true with probability p.
func (r *rng) chance(p float64) bool {
	return float64(r.next()>>11)*(1.0/(1<<53)) < p
}

// taskStreams derives one independent rng stream per task from the
// generator seed. Closed-loop generators draw from task i's stream a
// fixed number of times per cycle regardless of grant feedback, so the
// arrival process (which jobs spawn at which cycles) is bitwise
// identical no matter which policy is being driven — rows of a grid
// column compare service discipline, not different traffic.
func taskStreams(seed uint64, n int) []rng {
	streams := make([]rng, n)
	for i := range streams {
		streams[i] = rng{state: seed + uint64(i+1)*0x9e3779b97f4a7c15}
	}
	return streams
}

// jobs is the shared closed-loop core: need[i] is the number of granted
// cycles task i's outstanding job still requires (0 = idle). A task
// requests while need > 0 and consumes one unit per granted cycle.
type jobs struct {
	need []int
	hold int
}

func newJobs(n, hold int) jobs { return jobs{need: make([]int, n), hold: hold} }

// serve consumes grant feedback for task i, returning true if the task
// is now idle.
func (j *jobs) serve(i int, granted bool) bool {
	if j.need[i] > 0 && granted {
		j.need[i]--
	}
	return j.need[i] == 0
}

func (j *jobs) reset() {
	for i := range j.need {
		j.need[i] = 0
	}
}

// bernoulli is the uniform/hotspot/hog family: per-task arrival
// probability when idle, with optional always-requesting (pinned)
// tasks. A job occupies the resource for hold granted cycles.
type bernoulli struct {
	name    string
	n       int
	seed    uint64
	streams []rng
	p       []float64
	pin     []bool
	jobs    jobs
}

func (b *bernoulli) Name() string { return b.name }
func (b *bernoulli) N() int       { return b.n }

func (b *bernoulli) Reset() {
	b.streams = taskStreams(b.seed, b.n)
	b.jobs.reset()
}

func (b *bernoulli) Next(req, prevGrant []bool) {
	b.NextBits(arbiter.PackBools(prevGrant)).WriteBools(req)
}

// NextBits implements BitGenerator: the same draws in the same order as
// the slice surface, assembled into one request word.
//
//sparcs:hotpath
func (b *bernoulli) NextBits(prevGrant arbiter.BitVec) arbiter.BitVec {
	var req arbiter.BitVec
	for i := 0; i < b.n; i++ {
		// One draw per task per cycle, consumed unconditionally, so the
		// arrival stream is independent of grant history.
		arrive := b.streams[i].chance(b.p[i])
		if b.pin != nil && b.pin[i] {
			req |= 1 << uint(i)
			continue
		}
		if b.jobs.serve(i, prevGrant.Bit(i)) && arrive {
			b.jobs.need[i] = b.jobs.hold
		}
		if b.jobs.need[i] > 0 {
			req |= 1 << uint(i)
		}
	}
	return req
}

// NewBernoulli returns uniform Bernoulli traffic: every idle task
// starts a hold-cycle job with probability p each cycle.
func NewBernoulli(n int, p float64, hold int, seed uint64) (Generator, error) {
	if err := checkN(n); err != nil {
		return nil, err
	}
	if err := checkRate("bernoulli", p); err != nil {
		return nil, err
	}
	ps := make([]float64, n)
	for i := range ps {
		ps[i] = p
	}
	return &bernoulli{
		name: fmt.Sprintf("bernoulli:%.2f", p),
		n:    n, seed: seed, streams: taskStreams(seed, n), p: ps, jobs: newJobs(n, hold),
	}, nil
}

// NewHotspot returns skewed traffic: task 1 arrives with probability
// pHot, every other task with pHot/8 — the single-popular-resource
// contention pattern.
func NewHotspot(n int, pHot float64, hold int, seed uint64) (Generator, error) {
	if err := checkN(n); err != nil {
		return nil, err
	}
	if err := checkRate("hotspot", pHot); err != nil {
		return nil, err
	}
	ps := make([]float64, n)
	for i := range ps {
		ps[i] = pHot / 8
	}
	ps[0] = pHot
	return &bernoulli{
		name: fmt.Sprintf("hotspot:%.2f", pHot),
		n:    n, seed: seed, streams: taskStreams(seed, n), p: ps, jobs: newJobs(n, hold),
	}, nil
}

// NewHog returns adversarial traffic: task 1 requests every cycle and
// never releases, while the remaining tasks offer moderate Bernoulli
// load. Non-preemptive policies let the hog starve everyone once
// granted; preemptive and weighted policies bound its hold.
func NewHog(n int, seed uint64) (Generator, error) {
	if err := checkN(n); err != nil {
		return nil, err
	}
	ps := make([]float64, n)
	for i := range ps {
		ps[i] = 0.25
	}
	pin := make([]bool, n)
	pin[0] = true
	return &bernoulli{
		name: "hog",
		n:    n, seed: seed, streams: taskStreams(seed, n), p: ps, pin: pin, jobs: newJobs(n, 2),
	}, nil
}

// bursty is the per-task on/off source: each task flips between an ON
// state (high arrival rate) and an OFF state (silent) with geometric
// dwell times.
type bursty struct {
	n       int
	seed    uint64
	streams []rng
	on      []bool
	pOffOn  float64 // per-cycle chance an OFF task turns ON  (mean idle 1/p)
	pOnOff  float64 // per-cycle chance an ON task turns OFF  (mean burst 1/p)
	pArrive float64 // arrival probability while ON
	jobs    jobs
}

// NewBursty returns on/off burst traffic: mean bursts of 20 cycles at
// 0.9 arrival probability separated by mean 60-cycle silences.
func NewBursty(n int, seed uint64) (Generator, error) {
	if err := checkN(n); err != nil {
		return nil, err
	}
	return &bursty{
		n: n, seed: seed, streams: taskStreams(seed, n),
		on:     make([]bool, n),
		pOffOn: 1.0 / 60, pOnOff: 1.0 / 20, pArrive: 0.9,
		jobs: newJobs(n, 2),
	}, nil
}

func (b *bursty) Name() string { return "bursty" }
func (b *bursty) N() int       { return b.n }

func (b *bursty) Reset() {
	b.streams = taskStreams(b.seed, b.n)
	for i := range b.on {
		b.on[i] = false
	}
	b.jobs.reset()
}

func (b *bursty) Next(req, prevGrant []bool) {
	b.NextBits(arbiter.PackBools(prevGrant)).WriteBools(req)
}

// NextBits implements BitGenerator.
//
//sparcs:hotpath
func (b *bursty) NextBits(prevGrant arbiter.BitVec) arbiter.BitVec {
	var req arbiter.BitVec
	for i := 0; i < b.n; i++ {
		// Two draws per task per cycle (state flip, arrival), consumed
		// unconditionally: the on/off trajectory and arrival stream are
		// independent of grant history.
		flip := b.streams[i].next()
		arrive := b.streams[i].chance(b.pArrive)
		if b.on[i] {
			if float64(flip>>11)*(1.0/(1<<53)) < b.pOnOff {
				b.on[i] = false
			}
		} else if float64(flip>>11)*(1.0/(1<<53)) < b.pOffOn {
			b.on[i] = true
		}
		if b.jobs.serve(i, prevGrant.Bit(i)) && b.on[i] && arrive {
			b.jobs.need[i] = b.jobs.hold
		}
		if b.jobs.need[i] > 0 {
			req |= 1 << uint(i)
		}
	}
	return req
}

// markov is the globally modulated source: a two-state regime chain
// (calm/storm) scales every task's arrival probability together, so the
// whole system alternates between light load and saturation.
type markov struct {
	n          int
	seed       uint64
	regime     rng
	streams    []rng
	storm      bool
	pCalmStorm float64
	pStormCalm float64
	pCalm      float64
	pStorm     float64
	jobs       jobs
}

// NewMarkov returns Markov-modulated traffic: calm regimes (arrival
// 0.05) punctuated by storms (arrival 0.85) with mean lengths 200 and
// 50 cycles.
func NewMarkov(n int, seed uint64) (Generator, error) {
	if err := checkN(n); err != nil {
		return nil, err
	}
	return &markov{
		n: n, seed: seed, regime: rng{state: seed}, streams: taskStreams(seed, n),
		pCalmStorm: 1.0 / 200, pStormCalm: 1.0 / 50,
		pCalm: 0.05, pStorm: 0.85,
		jobs: newJobs(n, 2),
	}, nil
}

func (m *markov) Name() string { return "markov" }
func (m *markov) N() int       { return m.n }

func (m *markov) Reset() {
	m.regime = rng{state: m.seed}
	m.streams = taskStreams(m.seed, m.n)
	m.storm = false
	m.jobs.reset()
}

func (m *markov) Next(req, prevGrant []bool) {
	m.NextBits(arbiter.PackBools(prevGrant)).WriteBools(req)
}

// NextBits implements BitGenerator.
//
//sparcs:hotpath
func (m *markov) NextBits(prevGrant arbiter.BitVec) arbiter.BitVec {
	// The regime chain and per-task arrival draws advance every cycle
	// regardless of grant feedback, keeping the offered traffic
	// identical across policies.
	if m.storm {
		if m.regime.chance(m.pStormCalm) {
			m.storm = false
		}
	} else if m.regime.chance(m.pCalmStorm) {
		m.storm = true
	}
	p := m.pCalm
	if m.storm {
		p = m.pStorm
	}
	var req arbiter.BitVec
	for i := 0; i < m.n; i++ {
		arrive := m.streams[i].chance(p)
		if m.jobs.serve(i, prevGrant.Bit(i)) && arrive {
			m.jobs.need[i] = m.jobs.hold
		}
		if m.jobs.need[i] > 0 {
			req |= 1 << uint(i)
		}
	}
	return req
}

// silent is the zero-rate source: it never requests. Its Silent marker
// lets sim.Run elide it entirely (the contention no-op path), so a
// simulation configured with silent background sources is byte-identical
// to an uninstrumented one under every policy.
type silent struct{ n int }

// NewSilent returns the zero-rate generator: n lines that never
// request. It implements sim.StaticallySilent.
func NewSilent(n int) (Generator, error) {
	if err := checkN(n); err != nil {
		return nil, err
	}
	return &silent{n: n}, nil
}

func (s *silent) Name() string { return "silent" }
func (s *silent) N() int       { return s.n }
func (s *silent) Reset()       {}

// Silent marks the generator as statically request-free.
func (s *silent) Silent() bool { return true }

func (s *silent) Next(req, prevGrant []bool) {
	for i := range req {
		req[i] = false
	}
}

// NextBits implements BitGenerator.
//
//sparcs:hotpath
func (s *silent) NextBits(prevGrant arbiter.BitVec) arbiter.BitVec { return 0 }

// trace replays a recorded request pattern cyclically — the open-loop
// shape: requests do not react to grants, exactly as captured. Steps
// are packed into BitVec words at construction, so replay is one word
// load per cycle.
type trace struct {
	name  string
	n     int
	steps []arbiter.BitVec
	pos   int
}

// NewTrace returns a generator replaying steps cyclically. Every step
// must have exactly n request lines.
func NewTrace(name string, n int, steps [][]bool) (Generator, error) {
	if err := checkN(n); err != nil {
		return nil, err
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("workload: trace %q has no steps", name)
	}
	packed := make([]arbiter.BitVec, len(steps))
	for c, s := range steps {
		if len(s) != n {
			return nil, fmt.Errorf("workload: trace %q step %d has %d lines, want %d", name, c, len(s), n)
		}
		packed[c] = arbiter.PackBools(s)
	}
	return &trace{name: name, n: n, steps: packed}, nil
}

func (t *trace) Name() string { return t.name }
func (t *trace) N() int       { return t.n }
func (t *trace) Reset()       { t.pos = 0 }

func (t *trace) Next(req, prevGrant []bool) {
	t.NextBits(arbiter.PackBools(prevGrant)).WriteBools(req)
}

// NextBits implements BitGenerator.
//
//sparcs:hotpath
func (t *trace) NextBits(prevGrant arbiter.BitVec) arbiter.BitVec {
	step := t.steps[t.pos]
	t.pos++
	if t.pos == len(t.steps) {
		t.pos = 0
	}
	return step
}

// builtinTrace builds the canonical recorded pattern the registry
// serves under "trace": staggered request windows (task i active for n
// cycles starting at cycle 2i), then an all-on contention burst, then
// silence — arrivals, overlap, saturation, and drain in one period.
func builtinTrace(n int) [][]bool {
	period := 4*n + 2*n + n // staggered windows, burst, silence
	steps := make([][]bool, period)
	for c := range steps {
		row := make([]bool, n)
		for i := 0; i < n; i++ {
			start := 2 * i
			switch {
			case c >= start && c < start+n:
				row[i] = true
			case c >= 4*n && c < 6*n:
				row[i] = true
			}
		}
		steps[c] = row
	}
	return steps
}

func checkRate(shape string, p float64) error {
	if p <= 0 || p > 1 {
		return fmt.Errorf("workload: %s rate must be in (0,1], got %g", shape, p)
	}
	return nil
}

// checkN bounds generator widths to one request word: the whole engine
// — generators, Drive, the simulator's contention lanes — packs request
// vectors into single BitVec words.
func checkN(n int) error {
	if n < 1 {
		return fmt.Errorf("workload: N must be positive, got %d", n)
	}
	if n > arbiter.MaxN {
		return fmt.Errorf("workload: N must be at most %d (one request word), got %d", arbiter.MaxN, n)
	}
	return nil
}

// NewGenerator constructs a workload by name with a "shape:param"
// grammar mirroring arbiter.ParsePolicySpec:
//
//	bernoulli[:p]   uniform Bernoulli arrivals (default p=0.30)
//	bursty          per-task on/off bursts
//	hotspot[:p]     task 1 hot at p (default 0.90), others at p/8
//	markov          global calm/storm regime modulation
//	hog             task 1 requests forever, others moderate load
//	trace           the built-in staggered/burst/silence replay
//	silent          zero-rate: never requests (elided as contention)
func NewGenerator(spec string, n int, seed uint64) (Generator, error) {
	if err := checkN(n); err != nil {
		return nil, err
	}
	shape, param := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		shape, param = spec[:i], spec[i+1:]
	}
	rate := func(def float64) (float64, error) {
		if param == "" {
			return def, nil
		}
		v, err := strconv.ParseFloat(param, 64)
		if err != nil {
			return 0, fmt.Errorf("workload: %s rate %q is not a number", shape, param)
		}
		return v, nil
	}
	noParam := func() error {
		if param != "" {
			return fmt.Errorf("workload: %s takes no parameter (got %q)", shape, param)
		}
		return nil
	}
	switch shape {
	case "bernoulli":
		p, err := rate(0.30)
		if err != nil {
			return nil, err
		}
		return NewBernoulli(n, p, 2, seed)
	case "hotspot":
		p, err := rate(0.90)
		if err != nil {
			return nil, err
		}
		return NewHotspot(n, p, 2, seed)
	case "bursty":
		if err := noParam(); err != nil {
			return nil, err
		}
		return NewBursty(n, seed)
	case "markov":
		if err := noParam(); err != nil {
			return nil, err
		}
		return NewMarkov(n, seed)
	case "hog":
		if err := noParam(); err != nil {
			return nil, err
		}
		return NewHog(n, seed)
	case "trace":
		if err := noParam(); err != nil {
			return nil, err
		}
		return NewTrace("trace", n, builtinTrace(n))
	case "silent":
		if err := noParam(); err != nil {
			return nil, err
		}
		return NewSilent(n)
	}
	return nil, fmt.Errorf("workload: unknown workload %q (see NewGenerator for the grammar)", spec)
}

// DefaultWorkloads lists one canonical spec per traffic shape, the
// columns of the standard policy×workload grid.
func DefaultWorkloads() []string {
	return []string{"bernoulli:0.30", "bursty", "hotspot:0.90", "markov", "hog", "trace"}
}

// DefaultPolicies lists the canonical policy specs the grid evaluates:
// every implementation in internal/arbiter, cheap parameters.
func DefaultPolicies() []string {
	return []string{
		"rr", "fifo", "priority", "random:1",
		"fsm", "netlist:one-hot", "preemptive:4", "wrr:2", "hier:2",
	}
}
