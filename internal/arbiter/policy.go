package arbiter

import "fmt"

// Policy is a cycle-level behavioral arbiter: each Step consumes the
// request vector for one clock cycle and returns the grant vector for the
// same cycle (Mealy semantics, matching the FSM).
//
// All implementations guarantee mutual exclusion (at most one grant) and
// never grant a non-requester. Fairness properties differ by policy; the
// paper selects round-robin as the only one that is both fair and cheap in
// hardware.
//
// Every behavioral policy in this package arbitrates natively on BitVec
// words (see BitStepper); Step and StepInto are thin pack/unpack adapters
// over the same state, so the two surfaces are interchangeable.
type Policy interface {
	// Name identifies the policy ("round-robin", "fifo", ...).
	Name() string
	// N returns the number of request lines.
	N() int
	// Step arbitrates one cycle. len(req) must equal N; the returned
	// slice is valid until the next Step.
	Step(req []bool) []bool
	// Reset returns the policy to its initial state.
	Reset()
}

// InPlaceStepper is the optional allocation-free fast path of Policy:
// StepInto arbitrates one cycle, writing the grant vector into the
// caller-owned slice instead of returning an internal one. len(req) and
// len(grant) must both equal N. All policies in this package implement
// it; external policies may provide only Step.
type InPlaceStepper interface {
	StepInto(req, grant []bool)
}

// StepInto arbitrates one cycle of p into grant, using the in-place fast
// path when p implements InPlaceStepper and otherwise adapting the plain
// Step (one policy-internal allocation at most, never a new grant slice).
//
//sparcs:hotpath
func StepInto(p Policy, req, grant []bool) {
	if s, ok := p.(InPlaceStepper); ok {
		s.StepInto(req, grant)
		return
	}
	copy(grant, p.Step(req))
}

// NewPolicy constructs a policy by name. Every implementation in the
// package is reachable, with parameters via the "kind:param" grammar
// documented on PolicySpec: "rr", "fifo", "priority", "random:77",
// "fsm", "netlist:gray", "preemptive:8", "wrr:1,2,4,8", "hier:2", ...
func NewPolicy(name string, n int) (Policy, error) {
	sp, err := ParsePolicySpec(name)
	if err != nil {
		return nil, err
	}
	return sp.New(n)
}

// checkLanes panics on a request/grant slice whose length does not match
// the policy width — the contract violation the []bool adapters guard.
func checkLanes(req, grant []bool, n int) {
	if len(req) != n || len(grant) != n {
		//sparcs:ignore hotpath cold panic path; taken only on a caller contract violation
		panic(fmt.Sprintf("arbiter: got %d requests / %d grants, want %d", len(req), len(grant), n))
	}
}

// RoundRobin is the behavioral reference for the Figure 5 FSM,
// implemented independently of internal/fsm so the two can cross-check.
type RoundRobin struct {
	n        int
	holder   int // task holding the resource, or -1
	priority int // task with highest scan priority when free
	mask     BitVec
	grants   []bool
}

// NewRoundRobin returns a round-robin arbiter in state F1.
func NewRoundRobin(n int) *RoundRobin {
	return &RoundRobin{n: n, holder: -1, priority: 0, mask: Mask(n), grants: make([]bool, n)}
}

// Name implements Policy.
func (a *RoundRobin) Name() string { return "round-robin" }

// N implements Policy.
func (a *RoundRobin) N() int { return a.n }

// Reset implements Policy.
func (a *RoundRobin) Reset() {
	a.holder = -1
	a.priority = 0
}

// Step implements Policy with the exact Figure 5 semantics: scan requests
// cyclically starting at the holder (if any) or the priority task; the
// first requester found is granted and becomes the holder. With no
// requests, a releasing holder passes priority to its successor.
func (a *RoundRobin) Step(req []bool) []bool {
	a.StepInto(req, a.grants)
	return a.grants
}

// StepInto implements InPlaceStepper with the same semantics as Step.
//
//sparcs:hotpath
func (a *RoundRobin) StepInto(req, grant []bool) {
	checkLanes(req, grant, a.n)
	a.StepBits(PackBools(req)).WriteBools(grant)
}

// StepBits implements BitStepper: the cyclic priority scan as a
// branchless rotate / isolate-lowest-set / rotate-back over the request
// word — the parallel round-robin arbiter datapath.
//
//sparcs:hotpath
func (a *RoundRobin) StepBits(req BitVec) BitVec {
	req &= a.mask
	start := a.priority
	if a.holder >= 0 {
		start = a.holder
	}
	rot := req.rotr(start, a.n)
	if rot == 0 {
		if a.holder >= 0 {
			a.priority = a.holder + 1 // Ci --zeroes--> F(i+1)
			if a.priority == a.n {
				a.priority = 0
			}
		}
		a.holder = -1
		return 0
	}
	t := start + rot.FirstSet()
	if t >= a.n {
		t -= a.n
	}
	a.holder = t
	return 1 << uint(t)
}

// State reports the symbolic FSM state the behavioral arbiter is in, for
// cross-checking against fsm.Reference ("C3", "F1", ...). It reflects the
// state after the most recent Step.
func (a *RoundRobin) State() string {
	if a.holder >= 0 {
		return fmt.Sprintf("C%d", a.holder+1)
	}
	return fmt.Sprintf("F%d", a.priority+1)
}

// FIFO grants in arrival order: a task joins the queue on the rising edge
// of its request and is served when it reaches the head. In hardware this
// needs an N-deep queue of log2(N)-bit entries — the complexity the paper
// cites for rejecting it.
//
// The queue is a head-indexed slice over a fixed 2N-capacity backing
// array: pops advance head instead of reslicing the front away, and the
// live tail (at most N entries, one per queued task) is shifted down
// whenever head reaches N. Steady-state stepping therefore never
// allocates, no matter how long the run streams.
type FIFO struct {
	n      int
	mask   BitVec
	queue  []int
	head   int // queue[head:] is live
	queued BitVec
	prev   BitVec
	grants []bool
}

// NewFIFO returns a FIFO arbiter with an empty queue.
func NewFIFO(n int) *FIFO {
	return &FIFO{
		n:      n,
		mask:   Mask(n),
		queue:  make([]int, 0, 2*n),
		grants: make([]bool, n),
	}
}

// Name implements Policy.
func (a *FIFO) Name() string { return "fifo" }

// N implements Policy.
func (a *FIFO) N() int { return a.n }

// Reset implements Policy, restoring the original backing array.
func (a *FIFO) Reset() {
	a.queue = a.queue[:0]
	a.head = 0
	a.queued = 0
	a.prev = 0
}

// Step implements Policy.
func (a *FIFO) Step(req []bool) []bool {
	a.StepInto(req, a.grants)
	return a.grants
}

// StepInto implements InPlaceStepper with the same semantics as Step.
//
//sparcs:hotpath
func (a *FIFO) StepInto(req, grant []bool) {
	checkLanes(req, grant, a.n)
	a.StepBits(PackBools(req)).WriteBools(grant)
}

// StepBits implements BitStepper: rising edges (req & ^prev & ^queued)
// enqueue in index order via successive lowest-set extraction, the head
// drops non-requesters, and the head entry (if any) is granted.
//
//sparcs:hotpath
func (a *FIFO) StepBits(req BitVec) BitVec {
	req &= a.mask
	// Enqueue rising edges in index order (simultaneous arrivals tie-break
	// by index, like a priority encoder feeding the queue).
	for rising := req &^ a.prev &^ a.queued; rising != 0; rising &= rising - 1 {
		t := rising.FirstSet()
		a.queue = append(a.queue, t) //sparcs:ignore hotpath stays within the 2N backing array; compacted before it can grow
		a.queued |= 1 << uint(t)
	}
	a.prev = req
	// Drop head entries that no longer request (released or withdrawn).
	for a.head < len(a.queue) && !req.Bit(a.queue[a.head]) {
		a.queued &^= 1 << uint(a.queue[a.head])
		a.head++
	}
	// Reclaim the dead prefix: immediately when the queue drains, or by
	// shifting the at-most-N live entries down once head reaches N — so
	// len(queue) never exceeds the 2N backing capacity and the slice
	// never drifts off its original array.
	if a.head == len(a.queue) {
		a.queue = a.queue[:0]
		a.head = 0
	} else if a.head >= a.n {
		a.queue = a.queue[:copy(a.queue, a.queue[a.head:])]
		a.head = 0
	}
	if a.head < len(a.queue) {
		return 1 << uint(a.queue[a.head])
	}
	return 0
}

// Priority grants the lowest-indexed requester, except that a holder is
// not preempted while it keeps requesting. Starvation-prone by design:
// high-priority tasks can lock out low-priority ones indefinitely.
type Priority struct {
	n      int
	mask   BitVec
	holder int
	grants []bool
}

// NewPriority returns a static-priority arbiter (task 1 highest).
func NewPriority(n int) *Priority {
	return &Priority{n: n, mask: Mask(n), holder: -1, grants: make([]bool, n)}
}

// Name implements Policy.
func (a *Priority) Name() string { return "priority" }

// N implements Policy.
func (a *Priority) N() int { return a.n }

// Reset implements Policy.
func (a *Priority) Reset() { a.holder = -1 }

// Step implements Policy.
func (a *Priority) Step(req []bool) []bool {
	a.StepInto(req, a.grants)
	return a.grants
}

// StepInto implements InPlaceStepper with the same semantics as Step.
//
//sparcs:hotpath
func (a *Priority) StepInto(req, grant []bool) {
	checkLanes(req, grant, a.n)
	a.StepBits(PackBools(req)).WriteBools(grant)
}

// StepBits implements BitStepper: a still-requesting holder persists,
// otherwise the lowest set request bit wins (task 1 highest priority).
//
//sparcs:hotpath
func (a *Priority) StepBits(req BitVec) BitVec {
	req &= a.mask
	if a.holder >= 0 && req.Bit(a.holder) {
		return 1 << uint(a.holder)
	}
	if req == 0 {
		a.holder = -1
		return 0
	}
	a.holder = req.FirstSet()
	return req & -req // isolate the lowest set bit
}

// Random grants a pseudo-random requester (16-bit LFSR, deterministic),
// without preempting a still-requesting holder. Fair only in expectation;
// offers no worst-case wait bound.
type Random struct {
	n      int
	mask   BitVec
	lfsr   uint16
	seed   uint16
	holder int
	grants []bool
}

// NewRandom returns a random arbiter seeded deterministically (seed must
// be nonzero; 0 is replaced by 1).
func NewRandom(n int, seed uint16) *Random {
	if seed == 0 {
		seed = 1
	}
	return &Random{n: n, mask: Mask(n), lfsr: seed, seed: seed, holder: -1, grants: make([]bool, n)}
}

// Name implements Policy.
func (a *Random) Name() string { return "random" }

// N implements Policy.
func (a *Random) N() int { return a.n }

// Reset implements Policy.
func (a *Random) Reset() {
	a.lfsr = a.seed
	a.holder = -1
}

// Step implements Policy.
func (a *Random) Step(req []bool) []bool {
	a.StepInto(req, a.grants)
	return a.grants
}

// StepInto implements InPlaceStepper with the same semantics as Step.
//
//sparcs:hotpath
func (a *Random) StepInto(req, grant []bool) {
	checkLanes(req, grant, a.n)
	a.StepBits(PackBools(req)).WriteBools(grant)
}

// StepBits implements BitStepper: a still-requesting holder persists,
// otherwise the k-th set request bit (k from the LFSR) wins.
//
//sparcs:hotpath
func (a *Random) StepBits(req BitVec) BitVec {
	req &= a.mask
	if a.holder >= 0 && req.Bit(a.holder) {
		return 1 << uint(a.holder)
	}
	a.holder = -1
	requesters := req.Count()
	if requesters == 0 {
		return 0
	}
	// Galois LFSR x^16 + x^14 + x^13 + x^11 + 1.
	lsb := a.lfsr & 1
	a.lfsr >>= 1
	if lsb != 0 {
		a.lfsr ^= 0xB400
	}
	// Pick the k-th requester in index order, matching the slice-based
	// original: clear k lowest set bits, then take the next.
	v := req
	for k := int(a.lfsr) % requesters; k > 0; k-- {
		v &= v - 1
	}
	a.holder = v.FirstSet()
	return v & -v
}
