// The bitset arbitration kernel: request and grant vectors packed into
// single uint64 words, with the branchless rotate / isolate-lowest-set
// round-robin scan high-speed parallel arbiters use in hardware. Every
// behavioral policy in the package steps natively on BitVec words; the
// []bool Step/StepInto surface remains as thin pack/unpack adapters.

package arbiter

import "math/bits"

// BitVec packs a request or grant vector into one uint64 word, bit i
// carrying line i. One word covers every supported behavioral arbiter
// size (MaxN = 64), so a whole arbitration cycle — generator, scan,
// safety checks — runs in registers instead of walking []bool lanes.
type BitVec uint64

// Mask returns the BitVec with the low n bits set — the valid-lane mask
// of an n-line arbiter. n must be in [0, 64].
func Mask(n int) BitVec {
	if n >= MaxN {
		return ^BitVec(0)
	}
	return BitVec(1)<<uint(n) - 1
}

// Bit reports whether line i is set.
func (v BitVec) Bit(i int) bool { return v>>uint(i)&1 != 0 }

// Count returns the number of set lines (popcount).
func (v BitVec) Count() int { return bits.OnesCount64(uint64(v)) }

// FirstSet returns the index of the lowest set line, or -1 when v is
// empty — the holder extraction for a one-hot grant word.
func (v BitVec) FirstSet() int {
	if v == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(v))
}

// PackBools packs b into a BitVec, bit i from b[i]. len(b) must be at
// most 64.
//
//sparcs:hotpath
func PackBools(b []bool) BitVec {
	var v BitVec
	for i, x := range b {
		if x {
			v |= 1 << uint(i)
		}
	}
	return v
}

// WriteBools unpacks the low len(dst) bits of v into dst.
//
//sparcs:hotpath
func (v BitVec) WriteBools(dst []bool) {
	for i := range dst {
		dst[i] = v&1 != 0
		v >>= 1
	}
}

// rotr rotates the low n bits of v right by s (0 <= s < n <= 64): bit s
// lands on bit 0, so a cyclic priority scan starting at line s becomes
// a find-lowest-set on the rotated word. Bits at or above n must be
// clear on entry.
func (v BitVec) rotr(s, n int) BitVec {
	//sparcs:ignore bitwidth s==0 makes n-s==64 and the << lobe intentionally zero; the >>0 lobe carries the word
	return (v>>uint(s) | v<<uint(n-s)) & Mask(n)
}

// BitStepper is the word-level fast path of Policy: StepBits arbitrates
// one cycle entirely on BitVec words. Bits at or above N() in req are
// ignored; the returned grant is one-hot (or zero) below N(). State
// advances exactly as Step — the two surfaces are interchangeable
// cycle-by-cycle, never mixed views of different decisions.
//
// Every behavioral policy in this package implements it. Gate-level
// policies (fsm, netlist) and external policies may only provide the
// []bool Step; AsBitStepper adapts those.
type BitStepper interface {
	StepBits(req BitVec) BitVec
}

// AsBitStepper returns p's word-level stepper: p itself when it
// implements BitStepper, otherwise an adapter whose []bool scratch is
// allocated once here, so per-cycle stepping stays allocation-free
// either way.
func AsBitStepper(p Policy) BitStepper {
	if s, ok := p.(BitStepper); ok {
		return s
	}
	n := p.N()
	return &boolStepper{p: p, req: make([]bool, n), grant: make([]bool, n)}
}

// boolStepper packs and unpacks around the []bool surface of a policy
// without a native word-level path.
type boolStepper struct {
	p          Policy
	req, grant []bool
}

//sparcs:hotpath
func (a *boolStepper) StepBits(req BitVec) BitVec {
	req.WriteBools(a.req)
	StepInto(a.p, a.req, a.grant)
	return PackBools(a.grant)
}
