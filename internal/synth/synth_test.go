package synth

import (
	"fmt"
	"math/rand"
	"testing"

	"sparcs/internal/arbiter"
	"sparcs/internal/fsm"
	"sparcs/internal/netlist"
)

func TestParseTool(t *testing.T) {
	for _, s := range []string{"synplify", "fpga-express", "express"} {
		if _, err := ParseTool(s); err != nil {
			t.Errorf("ParseTool(%q): %v", s, err)
		}
	}
	if _, err := ParseTool("xst"); err == nil {
		t.Error("unknown tool should error")
	}
}

func TestSynplifyForcesOneHot(t *testing.T) {
	m, err := arbiter.Machine(3)
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := Run(m, fsm.Compact, Synplify)
	if err != nil {
		t.Fatal(err)
	}
	if r.Encoding != fsm.OneHot {
		t.Fatalf("Synplify effective encoding = %v, want one-hot", r.Encoding)
	}
	if r.Requested != fsm.Compact {
		t.Fatalf("requested encoding = %v, want compact", r.Requested)
	}
	// One-hot: one FF per state (2N).
	if r.FFs != 6 {
		t.Fatalf("FFs = %d, want 6", r.FFs)
	}
}

func TestExpressHonorsEncoding(t *testing.T) {
	m, err := arbiter.Machine(3)
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := Run(m, fsm.Compact, Express)
	if err != nil {
		t.Fatal(err)
	}
	if r.Encoding != fsm.Compact {
		t.Fatalf("Express effective encoding = %v, want compact", r.Encoding)
	}
	if r.FFs != 3 { // ceil(log2(6)) = 3
		t.Fatalf("FFs = %d, want 3", r.FFs)
	}
}

func TestRunProducesPositiveMetrics(t *testing.T) {
	m, err := arbiter.Machine(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range Figure67Variants {
		r, _, err := Run(m, v.Enc, v.Tool)
		if err != nil {
			t.Fatal(err)
		}
		if r.CLBs <= 0 || r.MaxMHz <= 0 || r.LUTs <= 0 || r.Depth <= 0 {
			t.Fatalf("%s: degenerate result %+v", r.Label(), r)
		}
	}
}

// TestToolNetlistsAreEquivalent: whatever the tool policies, the
// synthesized gates must still implement the Figure 5 arbiter.
func TestToolNetlistsAreEquivalent(t *testing.T) {
	for _, n := range []int{2, 4, 5} {
		m, err := arbiter.Machine(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range Figure67Variants {
			_, nl, err := Run(m, v.Enc, v.Tool)
			if err != nil {
				t.Fatal(err)
			}
			sim, err := netlist.NewSimulator(nl)
			if err != nil {
				t.Fatal(err)
			}
			beh := arbiter.NewRoundRobin(n)
			r := rand.New(rand.NewSource(int64(n)))
			req := make([]bool, n)
			for c := 0; c < 300; c++ {
				for i := range req {
					req[i] = r.Intn(3) != 0
				}
				want := beh.Step(req)
				got, err := sim.Step(req)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("N=%d %s cycle %d: grant mismatch", n, v.Tool.Name, c)
					}
				}
			}
		}
	}
}

// TestAreaGrowsWithN: the Figure 6 trend — bigger arbiters need more CLBs
// under every tool/encoding.
func TestAreaGrowsWithN(t *testing.T) {
	results, err := Sweep(arbiter.Machine, []int{2, 6, 10}, Figure67Variants)
	if err != nil {
		t.Fatal(err)
	}
	for vi, series := range results {
		for i := 1; i < len(series); i++ {
			if series[i].CLBs <= series[i-1].CLBs {
				t.Errorf("variant %d (%s): CLBs not increasing: %d then %d",
					vi, series[i].Label(), series[i-1].CLBs, series[i].CLBs)
			}
		}
	}
}

// TestClockFallsWithN: the Figure 7 trend — bigger arbiters clock slower.
func TestClockFallsWithN(t *testing.T) {
	results, err := Sweep(arbiter.Machine, []int{2, 6, 10}, Figure67Variants)
	if err != nil {
		t.Fatal(err)
	}
	for vi, series := range results {
		for i := 1; i < len(series); i++ {
			if series[i].MaxMHz >= series[i-1].MaxMHz {
				t.Errorf("variant %d (%s): MHz not decreasing: %.1f then %.1f",
					vi, series[i].Label(), series[i-1].MaxMHz, series[i].MaxMHz)
			}
		}
	}
}

// TestSynplifyBeatsExpressOneHot: with the same one-hot encoding, the
// area-oriented tool produces no more LUTs than the depth-oriented one at
// the large sizes where sharing matters (the paper singles out N=9,10 as
// the sizes where Synplify's results remained satisfactory).
func TestSynplifyBeatsExpressOneHot(t *testing.T) {
	for _, n := range []int{9, 10} {
		m, err := arbiter.Machine(n)
		if err != nil {
			t.Fatal(err)
		}
		rs, _, err := Run(m, fsm.OneHot, Synplify)
		if err != nil {
			t.Fatal(err)
		}
		re, _, err := Run(m, fsm.OneHot, Express)
		if err != nil {
			t.Fatal(err)
		}
		if rs.LUTs > re.LUTs {
			t.Errorf("N=%d: synplify %d LUTs > express %d LUTs", n, rs.LUTs, re.LUTs)
		}
	}
}

func TestLabels(t *testing.T) {
	r := Result{Tool: "fpga-express", Encoding: fsm.OneHot}
	if r.Label() != "FPGA_express One-Hot" {
		t.Fatalf("Label = %q", r.Label())
	}
	r = Result{Tool: "synplify", Encoding: fsm.OneHot}
	if r.Label() != "Synplify One-Hot" {
		t.Fatalf("Label = %q", r.Label())
	}
}

// TestSweepShape verifies Sweep's result dimensions.
func TestSweepShape(t *testing.T) {
	sizes := []int{2, 3, 4}
	results, err := Sweep(arbiter.Machine, sizes, Figure67Variants)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Figure67Variants) {
		t.Fatalf("variants = %d", len(results))
	}
	for _, series := range results {
		if len(series) != len(sizes) {
			t.Fatalf("series length = %d", len(series))
		}
	}
}

func TestSweepPropagatesGenError(t *testing.T) {
	gen := func(n int) (*fsm.Machine, error) { return nil, fmt.Errorf("boom") }
	if _, err := Sweep(gen, []int{2}, Figure67Variants); err == nil {
		t.Fatal("expected generator error to propagate")
	}
}
