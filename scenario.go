// The online dynamic-reconfiguration surface: RunScenario feeds compiled
// Systems through internal/scenario's arrive/depart engine — strip-packed
// placement on one CLB fabric, per-area reconfiguration latency through a
// single configuration port, optional prefetch overlap — and reports
// makespan against an offline oracle bound.

package sparcs

import (
	"fmt"

	"sparcs/internal/core"
	"sparcs/internal/scenario"
	"sparcs/internal/workload"
)

// ScenarioResult aliases the scenario engine's run report.
type ScenarioResult = scenario.Result

// ScenarioJobStats aliases one job's lifecycle record.
type ScenarioJobStats = scenario.JobStats

// Placement and prefetch mode names accepted by ScenarioConfig.
const (
	PlaceFirstFit  = scenario.PlaceFirstFit
	PlaceBestFit   = scenario.PlaceBestFit
	PrefetchNone   = scenario.PrefetchNone
	PrefetchHybrid = scenario.PrefetchHybrid
)

// ScenarioEntry is one job class: a compiled System plus the RunOptions
// each of its jobs executes its stages under. WithMemory is not
// accepted — scenario jobs own their memory images, created fresh at
// placement and retained in JobStats under KeepStats.
type ScenarioEntry struct {
	// Name labels the class in reports; empty uses the graph name.
	Name string
	// System is the compiled design template.
	System *System
	// Options compose each job's run (policy, contention, seed...),
	// exactly as System.Run would.
	Options []RunOption
}

// ScenarioConfig describes one online arrive/depart scenario.
type ScenarioConfig struct {
	// Entries are the job classes; arrivals cycle round-robin over them.
	Entries []ScenarioEntry
	// Arrivals is the arrival-process spec over the workload generator
	// grammar plus an optional sampling stride: "shape[:param][/stride]"
	// ("bernoulli:0.02", "bursty/64"). Empty means all jobs arrive at
	// cycle 0.
	Arrivals string
	// Jobs is the total number of arrivals (the first is always at
	// cycle 0).
	Jobs int
	// Seed drives the arrival process and cross-contention streams.
	Seed uint64
	// Placement is PlaceFirstFit (default) or PlaceBestFit; Prefetch is
	// PrefetchNone (default) or PrefetchHybrid.
	Placement string
	Prefetch  string
	// ReconfigCyclesPerCLB prices a stage swap-in (0 means 1 cycle/CLB).
	ReconfigCyclesPerCLB int
	// CompactionDelay is the fragmentation-blocked wait before a strip
	// repack; negative disables compaction. See scenario.Config.
	CompactionDelay int
	// FabricCols/FabricRows override the fabric; both 0 derives it from
	// the first entry's board (Wildforce: 96x24).
	FabricCols, FabricRows int
	// MaxCycles is the engine watchdog (0 means 5,000,000).
	MaxCycles int
	// CrossContention, when set, injects that workload as phantom lines
	// (one per co-resident, capped at MaxCrossLines, default cap 4) on
	// every arbiter of a running stage — neighbors interfering on the
	// fabric's buses. Empty keeps each stage bit-identical to a solo
	// System.Run.
	CrossContention string
	MaxCrossLines   int
	// KeepStats retains per-stage sim.Stats and final memory images in
	// each JobStats.
	KeepStats bool
}

// RunScenario validates each entry's run composition against its design
// and executes the online scenario to completion.
func RunScenario(cfg ScenarioConfig) (*ScenarioResult, error) {
	if len(cfg.Entries) == 0 {
		return nil, fmt.Errorf("sparcs: scenario needs at least one entry")
	}
	if cfg.CrossContention != "" {
		if _, err := workload.NewGenerator(cfg.CrossContention, 1, 1); err != nil {
			return nil, fmt.Errorf("sparcs: cross-contention spec: %w", err)
		}
	}
	sc := scenario.Config{
		Arrivals:             cfg.Arrivals,
		Jobs:                 cfg.Jobs,
		Seed:                 cfg.Seed,
		Placement:            cfg.Placement,
		Prefetch:             cfg.Prefetch,
		ReconfigCyclesPerCLB: cfg.ReconfigCyclesPerCLB,
		CompactionDelay:      cfg.CompactionDelay,
		FabricCols:           cfg.FabricCols,
		FabricRows:           cfg.FabricRows,
		MaxCycles:            cfg.MaxCycles,
		CrossContention:      cfg.CrossContention,
		MaxCrossLines:        cfg.MaxCrossLines,
		KeepStats:            cfg.KeepStats,
	}
	maxCross := cfg.MaxCrossLines
	if maxCross <= 0 {
		maxCross = 4 // mirrors scenario.Config.maxCrossLines
	}
	for i, ent := range cfg.Entries {
		if ent.System == nil {
			return nil, fmt.Errorf("sparcs: scenario entry %d has no System", i)
		}
		c, err := ent.System.composeRun(ent.Options)
		if err != nil {
			return nil, fmt.Errorf("sparcs: scenario entry %d: %w", i, err)
		}
		if c.mem != nil {
			return nil, fmt.Errorf("sparcs: scenario entry %d: jobs own their memory images; WithMemory is not supported", i)
		}
		// composeRun validated the policy at this entry's own contention
		// widths; cross-contention widens every arbiter by up to maxCross
		// more lines at run time, so re-validate at the worst case now
		// rather than panicking mid-scenario.
		if cfg.CrossContention != "" && c.policy != nil {
			widths := core.StageWidths(ent.System.design, c.opts)
			for si, sp := range ent.System.design.Stages {
				for _, a := range sp.Inserted.Arbiters {
					w := widths[si][a.Resource] + maxCross
					if _, err := c.policy.NewWidened(a.N(), w); err != nil {
						return nil, fmt.Errorf("sparcs: scenario entry %d: policy %s unusable for the %d-line arbiter on %s in stage %d once cross-contention widens it: %w",
							i, c.policy, w, a.Resource, si, err)
					}
				}
			}
		}
		name := ent.Name
		if name == "" {
			name = ent.System.graph.Name
		}
		sc.Classes = append(sc.Classes, scenario.Class{
			Name:   name,
			Design: ent.System.design,
			Opts:   c.opts,
		})
	}
	return scenario.Run(sc)
}
