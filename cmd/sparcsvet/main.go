// Command sparcsvet runs the repo's static-analysis suite
// (internal/analysis): hotpath, determinism, bitwidth, errsentinel,
// lockorder, goroleak.
//
// Standalone over the module (package patterns as for go build):
//
//	go run ./cmd/sparcsvet ./...
//
// Or as a vet tool, one compilation unit at a time:
//
//	go build -o /tmp/sparcsvet ./cmd/sparcsvet
//	go vet -vettool=/tmp/sparcsvet ./...
//
// Standalone mode sees the whole module at once, so the call graph
// spans package boundaries (interprocedural hotpath, lockorder cycle
// detection) and unused //sparcs:ignore comments are reported; vet mode
// analyzes one package per invocation and skips both. CI runs the
// standalone form as the gate and the vet form as a protocol smoke.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"sparcs/internal/analysis"
)

func main() {
	vFlag := flag.String("V", "", "print version and exit (go vet protocol)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags in JSON (go vet protocol)")
	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	onlyFlag := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sparcsvet [-only a,b] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	switch {
	case *vFlag != "":
		printVersion(*vFlag)
		return
	case *flagsFlag:
		fmt.Println("[]")
		return
	case *listFlag:
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	active, err := selectAnalyzers(*onlyFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sparcsvet: %v\n", err)
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0], active))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(args, active))
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	all := analysis.All()
	if only == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var active []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		active = append(active, a)
	}
	return active, nil
}

// runStandalone loads the whole module and runs the suite with full
// cross-package context.
func runStandalone(patterns []string, active []*analysis.Analyzer) int {
	m, err := analysis.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sparcsvet: %v\n", err)
		return 2
	}
	diags := analysis.ApplyIgnores(m, active, analysis.RunAnalyzers(m, active), true)
	for _, d := range diags {
		fmt.Printf("%s: %s [%s]\n", m.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// printVersion implements the `-V=full` handshake go vet uses to
// fingerprint the tool for its action cache.
func printVersion(mode string) {
	progname := filepath.Base(os.Args[0])
	if mode != "full" {
		fmt.Printf("%s version devel\n", progname)
		return
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sparcsvet: %v\n", err)
		os.Exit(1)
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sparcsvet: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(os.Stderr, "sparcsvet: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
}

// vetConfig is the per-unit configuration go vet hands the tool (the
// x/tools unitchecker wire format; unused fields omitted).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one compilation unit under `go vet -vettool`.
func runUnit(cfgFile string, active []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sparcsvet: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "sparcsvet: parsing %s: %v\n", cfgFile, err)
		return 2
	}
	// The tool exports no facts, but vet expects the output file to exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "sparcsvet: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	m, err := loadUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "sparcsvet: %v\n", err)
		return 2
	}
	// One package per invocation: no cross-package hotpath context, so
	// unused-ignore reporting is off (an ignore may serve a walk rooted
	// in another unit).
	diags := analysis.ApplyIgnores(m, active, analysis.RunAnalyzers(m, active), false)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", m.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// loadUnit parses and type-checks the unit's files against the export
// data go vet supplies, and wraps them as a one-package Module.
func loadUnit(cfg *vetConfig) (*analysis.Module, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	src := map[string][]byte{}
	for _, name := range cfg.GoFiles {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, name, data, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		src[name] = data
	}
	compImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	resolve := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compImp.Import(path)
	})
	info := analysis.NewTypesInfo()
	var typeErr error
	conf := types.Config{
		Importer: resolve,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if typeErr != nil {
		return nil, typeErr
	}
	if err != nil {
		return nil, err
	}
	return analysis.NewUnitModule(fset, cfg.ImportPath, files, tpkg, info, src), nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
