package arbiter

import (
	"testing"

	"sparcs/internal/netlist"
)

// buildTwoDriverLine wires two (value, grant) pairs under the scheme and
// returns a simulator plus the line net.
func buildTwoDriverLine(t *testing.T, scheme LineScheme) (*netlist.Simulator, *netlist.Netlist, netlist.NetID) {
	t.Helper()
	n := netlist.New()
	v1 := n.AddInput("v1")
	g1 := n.AddInput("g1")
	v2 := n.AddInput("v2")
	g2 := n.AddInput("g2")
	line, err := BuildSharedLine(n, scheme, []netlist.NetID{v1, v2}, []netlist.NetID{g1, g2})
	if err != nil {
		t.Fatal(err)
	}
	n.AddOutput("line", line)
	s, err := netlist.NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	return s, n, line
}

func TestTristateLineFloatsWhenIdle(t *testing.T) {
	s, _, line := buildTwoDriverLine(t, Tristate)
	// Granted driver 1 drives its value.
	out, _ := s.Step([]bool{true, true, false, false})
	if !out[0] {
		t.Fatal("granted value should appear on the line")
	}
	// Nobody granted: high impedance — the hazard Figure 4a warns about.
	s.Step([]bool{true, false, true, false})
	if _, hiZ := s.Value(line); !hiZ {
		t.Fatal("idle tristate line must float")
	}
}

func TestTristateLineConflictDetected(t *testing.T) {
	s, _, _ := buildTwoDriverLine(t, Tristate)
	s.Step([]bool{true, true, false, true}) // both enabled
	if len(s.Conflicts()) == 0 {
		t.Fatal("double-driving the tristate line must be detected")
	}
}

func TestActiveHighOrIdlesLow(t *testing.T) {
	s, _, _ := buildTwoDriverLine(t, ActiveHighOr)
	// Idle: the line must read 0 (e.g. memory stays in read mode).
	out, _ := s.Step([]bool{true, false, true, false})
	if out[0] {
		t.Fatal("idle active-high line must be 0")
	}
	// Granted task drives its value.
	out, _ = s.Step([]bool{true, true, false, false})
	if !out[0] {
		t.Fatal("granted 1 should pass through")
	}
	out, _ = s.Step([]bool{false, true, true, false})
	if out[0] {
		t.Fatal("granted 0 should pass through")
	}
}

func TestActiveLowAndIdlesHigh(t *testing.T) {
	s, _, _ := buildTwoDriverLine(t, ActiveLowAnd)
	// Idle: the line must read 1 (inactive level for active-low inputs).
	out, _ := s.Step([]bool{false, false, false, false})
	if !out[0] {
		t.Fatal("idle active-low line must be 1")
	}
	// Granted task asserts 0 (active).
	out, _ = s.Step([]bool{false, true, true, false})
	if out[0] {
		t.Fatal("granted 0 should pull the line low")
	}
}

func TestBuildSharedLineValidation(t *testing.T) {
	n := netlist.New()
	a := n.AddInput("a")
	if _, err := BuildSharedLine(n, Tristate, []netlist.NetID{a}, []netlist.NetID{a}); err == nil {
		t.Fatal("single driver should be rejected")
	}
	if _, err := BuildSharedLine(n, Tristate, []netlist.NetID{a, a}, []netlist.NetID{a}); err == nil {
		t.Fatal("length mismatch should be rejected")
	}
}

func TestRecommendedScheme(t *testing.T) {
	if RecommendedScheme(false, false) != Tristate {
		t.Error("data lines use tristate")
	}
	if RecommendedScheme(true, false) != ActiveHighOr {
		t.Error("active-high controls use OR")
	}
	if RecommendedScheme(true, true) != ActiveLowAnd {
		t.Error("active-low controls use AND")
	}
}

func TestPreemptiveRevokesHog(t *testing.T) {
	p, err := NewPreemptiveRoundRobin(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Task 1 requests forever; task 2 joins and waits.
	req := []bool{true, false, false}
	for c := 0; c < 3; c++ {
		g := p.Step(req)
		if !g[0] {
			t.Fatalf("cycle %d: task 1 should hold", c)
		}
	}
	req[1] = true // task 2 now waits
	revoked := -1
	for c := 0; c < 10; c++ {
		g := p.Step(req)
		if g[1] {
			revoked = c
			break
		}
	}
	if revoked < 0 {
		t.Fatal("hog was never preempted")
	}
	// Non-preemptive round-robin starves task 2 on the same pattern.
	rr := NewRoundRobin(3)
	req = []bool{true, false, false}
	rr.Step(req)
	req[1] = true
	for c := 0; c < 10; c++ {
		g := rr.Step(req)
		if g[1] {
			t.Fatal("plain round-robin should not preempt")
		}
	}
}

func TestPreemptiveKeepsUncontestedHolder(t *testing.T) {
	p, err := NewPreemptiveRoundRobin(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	req := []bool{true, false}
	for c := 0; c < 20; c++ {
		g := p.Step(req)
		if !g[0] {
			t.Fatalf("cycle %d: uncontested holder must keep the grant", c)
		}
	}
}

func TestPreemptiveSafetyUnderRandomTraffic(t *testing.T) {
	p, err := NewPreemptiveRoundRobin(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	var steps []TraceStep
	state := uint64(99)
	req := make([]bool, 4)
	for c := 0; c < 2000; c++ {
		state = state*6364136223846793005 + 1442695040888963407
		for i := range req {
			req[i] = state&(1<<uint(i*8)) != 0
		}
		g := p.Step(req)
		steps = append(steps, TraceStep{Req: append([]bool(nil), req...), Grant: append([]bool(nil), g...)})
	}
	if err := CheckMutualExclusion(steps); err != nil {
		t.Fatal(err)
	}
	if err := CheckGrantImpliesRequest(steps); err != nil {
		t.Fatal(err)
	}
	if err := CheckWorkConserving(steps); err != nil {
		t.Fatal(err)
	}
}

func TestPreemptiveValidation(t *testing.T) {
	if _, err := NewPreemptiveRoundRobin(1, 2); err == nil {
		t.Error("N=1 rejected")
	}
	if _, err := NewPreemptiveRoundRobin(4, 0); err == nil {
		t.Error("maxHold=0 rejected")
	}
}
