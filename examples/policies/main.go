// Policy ablation (paper Section 4): round-robin vs FIFO vs static
// priority vs random under sustained contention. Round-robin is the only
// policy that both bounds worst-case waiting at N-1 grant episodes and
// stays trivially cheap in hardware — the paper's selection argument.
package main

import (
	"fmt"
	"log"

	"sparcs"
	"sparcs/internal/arbiter"
)

func main() {
	const n = 6
	const cycles = 5000

	fmt.Printf("%-12s %-14s %-14s %-12s\n", "policy", "grants/task", "worst-wait", "starved?")
	for _, name := range []string{"round-robin", "fifo", "priority", "random"} {
		pol, err := sparcs.NewPolicy(name, n)
		if err != nil {
			log.Fatal(err)
		}
		grants := make([]int, n)
		held := make([]int, n)
		req := make([]bool, n)
		for i := range req {
			req[i] = true
		}
		var trace []arbiter.TraceStep
		for c := 0; c < cycles; c++ {
			g := pol.Step(req)
			trace = append(trace, arbiter.TraceStep{
				Req:   append([]bool(nil), req...),
				Grant: append([]bool(nil), g...),
			})
			for i := range g {
				if g[i] {
					grants[i]++
					held[i]++
				}
				// M=2 protocol: release after two held cycles.
				if held[i] >= 2 {
					req[i] = false
					held[i] = 0
				} else {
					req[i] = true
				}
			}
		}
		worst := 0
		starved := false
		for t, w := range arbiter.MaxWaitEpisodes(n, trace) {
			if w > worst {
				worst = w
			}
			if grants[t] == 0 {
				starved = true
			}
		}
		fmt.Printf("%-12s %-14s %-14s %-12v\n",
			name, spread(grants), fmt.Sprintf("%d episodes", worst), starved)
	}

	fmt.Println("\nround-robin bound: worst wait <= N-1 =", n-1, "episodes (Section 4.1)")
	fmt.Println("hardware cost (Synplify one-hot):")
	for _, size := range []int{2, 6, 10} {
		r, err := sparcs.CharacterizeArbiter(size, "synplify", "one-hot")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  N=%-2d  %3d CLBs  %5.1f MHz\n", size, r.CLBs, r.MaxMHz)
	}
}

func spread(grants []int) string {
	lo, hi := grants[0], grants[0]
	for _, g := range grants[1:] {
		if g < lo {
			lo = g
		}
		if g > hi {
			hi = g
		}
	}
	return fmt.Sprintf("%d..%d", lo, hi)
}
