package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds the module-wide call graph the interprocedural
// analyzers (hotpath, lockorder, goroleak) share. Edges come from three
// resolution classes:
//
//   - static calls: plain function calls and concrete method calls,
//     resolved exactly;
//   - devirtualized interface calls: a call through an interface method
//     fans out to the corresponding method of EVERY module-local type
//     implementing the interface — a sound over-approximation of which
//     implementation runs, provided the implementations live in this
//     module (they do: the module is dependency-free, so no external
//     package can implement its interfaces against it);
//   - unresolved dynamic calls: calls through function values (fields,
//     parameters, closures). These have no callee set; the graph
//     records them per call site so analyzers can treat them with
//     whatever conservatism their invariant needs.

// CallKind classifies how a call site was resolved.
type CallKind int

const (
	// CallStatic is an exactly resolved function or method call.
	CallStatic CallKind = iota
	// CallInterface is an interface method call devirtualized to every
	// module-local implementation.
	CallInterface
	// CallDynamic is a call through a function value: no callee set.
	CallDynamic
	// CallBuiltin covers builtins and type conversions; no callees.
	CallBuiltin
)

// A CallSite is one CallExpr inside a function body, with its resolved
// callee set.
type CallSite struct {
	Call *ast.CallExpr
	Kind CallKind
	// Callees are the possible targets, deduplicated: one function for
	// CallStatic (when module-local knowledge exists — std targets are
	// included too), every module-local implementation for
	// CallInterface. Sorted by position for determinism.
	Callees []*types.Func
}

// A CallNode is one declared function or method and the call sites in
// its body.
type CallNode struct {
	Fn    *types.Func
	Decl  *ast.FuncDecl
	Pkg   *Package
	Sites []CallSite
}

// A CallGraph is the module-wide graph over every declared function of
// every source-loaded (non-broken) package.
type CallGraph struct {
	Nodes map[*types.Func]*CallNode
	mod   *Module
}

// CallGraph builds (once) and returns the module's call graph.
func (m *Module) CallGraph() *CallGraph {
	if m.cg != nil {
		return m.cg
	}
	cg := &CallGraph{Nodes: map[*types.Func]*CallNode{}, mod: m}
	for _, p := range m.Pkgs {
		if p.Broken {
			continue
		}
		for fn, decl := range p.Funcs {
			if decl.Body == nil {
				continue
			}
			node := &CallNode{Fn: fn, Decl: decl, Pkg: p}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					node.Sites = append(node.Sites, m.resolveCall(p, call))
				}
				return true
			})
			cg.Nodes[fn] = node
		}
	}
	m.cg = cg
	return cg
}

// Node returns the graph node for fn, or nil for functions without
// module-local bodies.
func (g *CallGraph) Node(fn *types.Func) *CallNode { return g.Nodes[fn] }

// Functions returns every node sorted by declaration position — the
// deterministic iteration order for fixed-point passes.
func (g *CallGraph) Functions() []*CallNode {
	out := make([]*CallNode, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// resolveCall classifies one call site and computes its callee set.
// pkg must be the package owning the call's AST (its Info binds the
// identifiers).
func (m *Module) resolveCall(pkg *Package, call *ast.CallExpr) CallSite {
	info := pkg.Info
	site := CallSite{Call: call}

	// Type conversions and builtins have no function callee.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		site.Kind = CallBuiltin
		return site
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			site.Kind = CallBuiltin
			return site
		}
	}

	if fn := staticCallee(info, call); fn != nil {
		site.Kind = CallStatic
		site.Callees = []*types.Func{fn}
		return site
	}

	// Interface method call: devirtualize over the module's type index.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal && types.IsInterface(s.Recv()) {
			if iface, ok := s.Recv().Underlying().(*types.Interface); ok {
				site.Kind = CallInterface
				site.Callees = m.implementations(iface, s.Obj().(*types.Func))
				return site
			}
		}
	}

	// Function value (parameter, field, closure): unresolved.
	site.Kind = CallDynamic
	return site
}

// implementations returns the declared method of every module-local
// concrete type that implements iface, matching the interface method
// ifn. The result is cached per (iface, method) pair and sorted by
// declaration position.
func (m *Module) implementations(iface *types.Interface, ifn *types.Func) []*types.Func {
	type implKey struct {
		iface *types.Interface
		fn    *types.Func
	}
	if m.implCache == nil {
		m.implCache = map[any][]*types.Func{}
	}
	key := implKey{iface, ifn}
	if impls, ok := m.implCache[key]; ok {
		return impls
	}
	var out []*types.Func
	seen := map[*types.Func]bool{}
	for _, T := range m.namedTypes() {
		if types.IsInterface(T) {
			continue
		}
		ptr := types.NewPointer(T)
		if !types.Implements(T, iface) && !types.Implements(ptr, iface) {
			continue
		}
		// The method set of *T contains both value and pointer methods.
		sel := types.NewMethodSet(ptr).Lookup(ifn.Pkg(), ifn.Name())
		if sel == nil {
			continue
		}
		fn, ok := sel.Obj().(*types.Func)
		if !ok || seen[fn] {
			continue
		}
		seen[fn] = true
		// Only module-local declarations matter: the walkers need bodies.
		if _, decl := m.Decl(fn); decl != nil {
			out = append(out, fn)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := m.funcPos(out[i]), m.funcPos(out[j])
		if pi != pj {
			return pi < pj
		}
		return out[i].FullName() < out[j].FullName()
	})
	m.implCache[key] = out
	return out
}

func (m *Module) funcPos(fn *types.Func) token.Pos {
	if _, decl := m.Decl(fn); decl != nil {
		return decl.Pos()
	}
	return fn.Pos()
}

// namedTypes collects (once) every named non-alias type declared in the
// module's source-loaded packages, sorted by position.
func (m *Module) namedTypes() []types.Type {
	if m.named != nil {
		return m.named
	}
	m.named = []types.Type{}
	var paths []string
	for path := range m.Pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		p := m.Pkgs[path]
		if p.Broken || p.Pkg == nil {
			continue
		}
		scope := p.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			m.named = append(m.named, tn.Type())
		}
	}
	return m.named
}
