// Package cg is the call-graph unit-test fixture: one function per
// resolution class (static, devirtualized interface, dynamic, builtin).
package cg

// Stepper mirrors the shape of arbiter.BitStepper: a small interface
// with multiple module-local implementations.
type Stepper interface {
	Step(n int) int
}

type Doubler struct{}

func (Doubler) Step(n int) int { return 2 * n }

type Tripler struct{}

func (*Tripler) Step(n int) int { return 3 * n }

// Run calls through the interface: the site must devirtualize to both
// implementations.
func Run(s Stepper, n int) int {
	return s.Step(n)
}

// Direct calls a concrete method: exactly one static callee.
func Direct(n int) int {
	return Doubler{}.Step(n)
}

// Apply calls through a function value: dynamic, no callee set.
func Apply(f func(int) int, n int) int {
	return f(n)
}

// Mixed has a builtin call and a static call to a sibling function.
func Mixed(n int) int {
	xs := make([]int, 0, n)
	return Direct(len(xs) + n)
}
