// Package taskgraph models USM-style design specifications: concurrent
// tasks, logical memory segments, logical channels, and control
// dependencies (paper Section 2). Taskgraphs are the input to the SPARCS
// flow in internal/core.
package taskgraph

import (
	"fmt"
	"sort"
	"sync"
)

// AccessKind distinguishes reads from writes for conflict analysis.
type AccessKind uint8

const (
	// Read accesses load from a segment.
	Read AccessKind = iota
	// Write accesses store to a segment.
	Write
)

func (k AccessKind) String() string {
	if k == Write {
		return "write"
	}
	return "read"
}

// Access is one task-to-segment relationship.
type Access struct {
	Segment string
	Kind    AccessKind
}

// Task is a synthesizable element of computation.
type Task struct {
	Name string
	// Deps lists tasks that must complete before this task may start
	// (control dependencies, the dashed arrows of the paper's Figure 10).
	Deps []string
	// Accesses lists the memory segments the task touches.
	Accesses []Access
	// AreaCLBs is the estimated logic area of the task's datapath and
	// controller, used by the partitioners.
	AreaCLBs int
}

// Reads returns the segment names the task reads.
func (t *Task) Reads() []string { return t.segmentsOf(Read) }

// Writes returns the segment names the task writes.
func (t *Task) Writes() []string { return t.segmentsOf(Write) }

func (t *Task) segmentsOf(k AccessKind) []string {
	var out []string
	for _, a := range t.Accesses {
		if a.Kind == k {
			out = append(out, a.Segment)
		}
	}
	return out
}

// Segments returns all segment names the task accesses, deduplicated.
func (t *Task) Segments() []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range t.Accesses {
		if !seen[a.Segment] {
			seen[a.Segment] = true
			out = append(out, a.Segment)
		}
	}
	return out
}

// Segment is a logical element of data storage.
type Segment struct {
	Name      string
	SizeBytes int
	// WidthBits is the data word width (memory data bus width needed).
	WidthBits int
	// Cohort, when non-empty, names a group of segments that must share
	// one physical bank (e.g. a block the host DMA streams as a unit).
	Cohort string
}

// Channel is a logical point-to-point connection between two tasks.
type Channel struct {
	Name      string
	From, To  string
	WidthBits int
}

// Graph is a complete design specification.
type Graph struct {
	Name     string
	Tasks    []*Task
	Segments []*Segment
	Channels []*Channel

	idxOnce sync.Once
	taskIdx map[string]*Task
	segIdx  map[string]*Segment
}

// TaskByName returns the named task, or nil. Safe for concurrent use
// once the graph is no longer being mutated (the lazy index build is
// guarded), which the parallel sweep runners rely on.
func (g *Graph) TaskByName(name string) *Task {
	g.idxOnce.Do(g.buildIndex)
	return g.taskIdx[name]
}

// SegmentByName returns the named segment, or nil.
func (g *Graph) SegmentByName(name string) *Segment {
	g.idxOnce.Do(g.buildIndex)
	return g.segIdx[name]
}

func (g *Graph) buildIndex() {
	g.taskIdx = map[string]*Task{}
	g.segIdx = map[string]*Segment{}
	for _, t := range g.Tasks {
		g.taskIdx[t.Name] = t
	}
	for _, s := range g.Segments {
		g.segIdx[s.Name] = s
	}
}

// Validate checks referential integrity and dependency acyclicity.
func (g *Graph) Validate() error {
	g.buildIndex()
	if len(g.taskIdx) != len(g.Tasks) {
		return fmt.Errorf("taskgraph %s: duplicate task names", g.Name)
	}
	if len(g.segIdx) != len(g.Segments) {
		return fmt.Errorf("taskgraph %s: duplicate segment names", g.Name)
	}
	for _, t := range g.Tasks {
		for _, d := range t.Deps {
			if g.taskIdx[d] == nil {
				return fmt.Errorf("taskgraph %s: task %s depends on unknown task %s", g.Name, t.Name, d)
			}
		}
		for _, a := range t.Accesses {
			if g.segIdx[a.Segment] == nil {
				return fmt.Errorf("taskgraph %s: task %s accesses unknown segment %s", g.Name, t.Name, a.Segment)
			}
		}
		if t.AreaCLBs <= 0 {
			return fmt.Errorf("taskgraph %s: task %s has non-positive area", g.Name, t.Name)
		}
	}
	for _, c := range g.Channels {
		if g.taskIdx[c.From] == nil || g.taskIdx[c.To] == nil {
			return fmt.Errorf("taskgraph %s: channel %s connects unknown tasks %s->%s", g.Name, c.Name, c.From, c.To)
		}
		if c.From == c.To {
			return fmt.Errorf("taskgraph %s: channel %s is a self-loop", g.Name, c.Name)
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns task names in a dependency-respecting order, or an
// error if control dependencies form a cycle. Ties preserve declaration
// order for determinism.
func (g *Graph) TopoOrder() ([]string, error) {
	g.buildIndex()
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]uint8{}
	var order []string
	var visit func(name string) error
	visit = func(name string) error {
		switch color[name] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("taskgraph %s: control dependency cycle through %s", g.Name, name)
		}
		color[name] = gray
		t := g.taskIdx[name]
		deps := append([]string(nil), t.Deps...)
		sort.Strings(deps)
		for _, d := range deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		color[name] = black
		order = append(order, name)
		return nil
	}
	for _, t := range g.Tasks {
		if err := visit(t.Name); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Ordered reports whether task a transitively precedes task b through
// control dependencies. Ordered tasks can never contend for a resource —
// the basis of the paper's Section 5 arbiter-elision observation.
func (g *Graph) Ordered(a, b string) bool {
	g.buildIndex()
	return g.reaches(a, b) || g.reaches(b, a)
}

// Precedes reports whether a transitively precedes b (a completes before b
// starts).
func (g *Graph) Precedes(a, b string) bool {
	g.buildIndex()
	return g.reaches(a, b)
}

// reaches reports whether from is an ancestor of to in the dependency DAG.
func (g *Graph) reaches(from, to string) bool {
	if from == to {
		return false
	}
	seen := map[string]bool{}
	var walk func(cur string) bool
	walk = func(cur string) bool {
		if seen[cur] {
			return false
		}
		seen[cur] = true
		t := g.taskIdx[cur]
		if t == nil {
			return false
		}
		for _, d := range t.Deps {
			if d == from || walk(d) {
				return true
			}
		}
		return false
	}
	return walk(to)
}

// Accessors returns the names of tasks accessing the segment, in
// declaration order.
func (g *Graph) Accessors(segment string) []string {
	var out []string
	for _, t := range g.Tasks {
		for _, a := range t.Accesses {
			if a.Segment == segment {
				out = append(out, t.Name)
				break
			}
		}
	}
	return out
}

// UnorderedMembers returns the subset of the given tasks that have at
// least one other task in the set they are not ordered against by control
// dependencies. These are exactly the tasks that can contend at run time
// and therefore need request/grant lines on a shared resource; tasks
// ordered against every other accessor are elidable (paper Section 5).
// The result preserves the input order.
func (g *Graph) UnorderedMembers(tasks []string) []string {
	var out []string
	for i, a := range tasks {
		for j, b := range tasks {
			if i == j {
				continue
			}
			if !g.Ordered(a, b) {
				out = append(out, a)
				break
			}
		}
	}
	return out
}

// TotalArea sums task area estimates.
func (g *Graph) TotalArea() int {
	sum := 0
	for _, t := range g.Tasks {
		sum += t.AreaCLBs
	}
	return sum
}

// TotalSegmentBytes sums segment sizes.
func (g *Graph) TotalSegmentBytes() int {
	sum := 0
	for _, s := range g.Segments {
		sum += s.SizeBytes
	}
	return sum
}
