package logic

import "sort"

// Lit is a literal over the extraction network's variable space: variable
// index v appears positive as 2v and negative as 2v+1. Variables at index
// >= the cover width are pseudo-variables naming extracted products
// (always referenced positively).
type Lit int

// MkLit builds a literal for variable v with the given polarity.
func MkLit(v int, neg bool) Lit {
	l := Lit(2 * v)
	if neg {
		l++
	}
	return l
}

// Var returns the variable index of a literal.
func (l Lit) Var() int { return int(l) / 2 }

// Neg reports whether the literal is complemented.
func (l Lit) Neg() bool { return l&1 == 1 }

// Product is one extracted 2-literal pseudo-variable definition: A op B,
// where A and B may reference earlier products. Or=false means AND.
type Product struct {
	Var  int
	A, B Lit
	Or   bool
}

// Extraction is a multi-level network produced by Factor: the original
// covers rewritten over literals that may reference shared products. It is
// the bridge from two-level covers to factored multi-level gate networks,
// standing in for the algebraic-factoring passes of commercial synthesis
// tools.
type Extraction struct {
	Width    int       // original variable count
	Products []Product // in dependency order (later may use earlier)
	Covers   [][][]Lit // per input cover: cubes as literal lists
}

// FactorOptions tunes Factor.
type FactorOptions struct {
	// PairMinOcc is the minimum number of cubes an AND literal pair must
	// co-occur in to be extracted; values < 2 default to 2. Set very high
	// to disable AND extraction.
	PairMinOcc int
	// MergeOr enables single-variant cube merging: cubes differing in one
	// literal combine through a shared OR product, e.g.
	// (sCi & chain) | (sFi & chain) -> (sCi|sFi) & chain. This is the
	// stronger algebraic pass modeled for Synplify.
	MergeOr bool
}

// ExtractPairs factors covers with AND-pair extraction only; see Factor.
func ExtractPairs(covers []*Cover, minOcc int) *Extraction {
	return Factor(covers, FactorOptions{PairMinOcc: minOcc})
}

// Factor jointly factors the given covers into a shared multi-level
// network: optional single-variant OR merging first, then greedy
// extraction of the most frequently co-occurring AND literal pairs.
// Priority-chain logic like the arbiter's scan guards collapses from O(N)
// literals per cube to chained shared products.
func Factor(covers []*Cover, opts FactorOptions) *Extraction {
	if opts.PairMinOcc < 2 {
		opts.PairMinOcc = 2
	}
	width := 0
	if len(covers) > 0 {
		width = covers[0].Width()
	}
	ex := &Extraction{Width: width}
	for _, cv := range covers {
		var cubes [][]Lit
		for _, c := range cv.Cubes() {
			var lits []Lit
			for v := 0; v < c.Width(); v++ {
				switch c.Lit(v) {
				case Pos:
					lits = append(lits, MkLit(v, false))
				case Neg:
					lits = append(lits, MkLit(v, true))
				}
			}
			sort.Slice(lits, func(i, j int) bool { return lits[i] < lits[j] })
			cubes = append(cubes, lits)
		}
		ex.Covers = append(ex.Covers, cubes)
	}
	nextVar := width
	if opts.MergeOr {
		nextVar = ex.mergeSingleVariants(nextVar)
	}
	ex.extractAndPairs(opts.PairMinOcc, nextVar)
	return ex
}

// mergeSingleVariants repeatedly merges cube pairs within each cover whose
// symmetric difference is exactly two literals: the pair is replaced by
// the common cube extended with a shared OR product of the two differing
// literals. Complementary literals of one variable cancel instead
// (A&x | A&!x = A). Returns the next unused pseudo-variable index.
func (ex *Extraction) mergeSingleVariants(nextVar int) int {
	orCache := map[[2]Lit]Lit{}
	for ci := range ex.Covers {
		changed := true
		for changed {
			changed = false
		pairs:
			for i := 0; i < len(ex.Covers[ci]); i++ {
				for j := i + 1; j < len(ex.Covers[ci]); j++ {
					a, b := ex.Covers[ci][i], ex.Covers[ci][j]
					da, db := symDiff(a, b)
					if len(da) == 0 && len(db) == 0 {
						// Duplicate cube produced by an earlier merge.
						ex.Covers[ci] = append(ex.Covers[ci][:j], ex.Covers[ci][j+1:]...)
						changed = true
						break pairs
					}
					if len(da) != 1 || len(db) != 1 {
						continue
					}
					la, lb := da[0], db[0]
					common := intersectLits(a, b)
					if la.Var() == lb.Var() {
						// Complementary pair: drop the variable.
						ex.Covers[ci][i] = common
					} else {
						key := [2]Lit{la, lb}
						if key[0] > key[1] {
							key[0], key[1] = key[1], key[0]
						}
						orLit, ok := orCache[key]
						if !ok {
							ex.Products = append(ex.Products, Product{Var: nextVar, A: key[0], B: key[1], Or: true})
							orLit = MkLit(nextVar, false)
							orCache[key] = orLit
							nextVar++
						}
						merged := append(append([]Lit(nil), common...), orLit)
						sort.Slice(merged, func(x, y int) bool { return merged[x] < merged[y] })
						ex.Covers[ci][i] = merged
					}
					ex.Covers[ci] = append(ex.Covers[ci][:j], ex.Covers[ci][j+1:]...)
					changed = true
					break pairs
				}
			}
		}
	}
	return nextVar
}

// extractAndPairs greedily extracts the most frequent AND literal pair
// across all covers until no pair occurs minOcc times.
func (ex *Extraction) extractAndPairs(minOcc, nextVar int) {
	for {
		type pair struct{ a, b Lit }
		count := map[pair]int{}
		for _, cubes := range ex.Covers {
			for _, lits := range cubes {
				for i := 0; i < len(lits); i++ {
					for j := i + 1; j < len(lits); j++ {
						count[pair{lits[i], lits[j]}]++
					}
				}
			}
		}
		best := pair{}
		bestCount := 0
		for p, c := range count {
			if c > bestCount || (c == bestCount && c > 0 && (p.a < best.a || (p.a == best.a && p.b < best.b))) {
				best, bestCount = p, c
			}
		}
		if bestCount < minOcc {
			return
		}
		prod := Product{Var: nextVar, A: best.a, B: best.b}
		nextVar++
		ex.Products = append(ex.Products, prod)
		newLit := MkLit(prod.Var, false)
		for ci, cubes := range ex.Covers {
			for qi, lits := range cubes {
				ia, ib := -1, -1
				for li, l := range lits {
					switch {
					case l == best.a && ia < 0:
						ia = li
					case l == best.b && ib < 0:
						ib = li
					}
				}
				if ia < 0 || ib < 0 {
					continue
				}
				var out []Lit
				for li, l := range lits {
					if li == ia || li == ib {
						continue
					}
					out = append(out, l)
				}
				out = append(out, newLit)
				sort.Slice(out, func(x, y int) bool { return out[x] < out[y] })
				ex.Covers[ci][qi] = out
			}
		}
	}
}

// symDiff returns the literals present only in a and only in b (both
// inputs sorted).
func symDiff(a, b []Lit) (onlyA, onlyB []Lit) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			onlyA = append(onlyA, a[i])
			i++
		default:
			onlyB = append(onlyB, b[j])
			j++
		}
	}
	onlyA = append(onlyA, a[i:]...)
	onlyB = append(onlyB, b[j:]...)
	return onlyA, onlyB
}

// intersectLits returns the common literals of two sorted lists.
func intersectLits(a, b []Lit) []Lit {
	var out []Lit
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// EvalCover evaluates one rewritten cover on an input assignment (over the
// original width variables), expanding products recursively. Used by tests
// to prove factoring preserves functions.
func (ex *Extraction) EvalCover(idx int, in []bool) bool {
	prodByVar := map[int]Product{}
	for _, p := range ex.Products {
		prodByVar[p.Var] = p
	}
	var evalLit func(l Lit) bool
	evalLit = func(l Lit) bool {
		v := l.Var()
		var val bool
		if v < ex.Width {
			val = in[v]
		} else {
			p := prodByVar[v]
			if p.Or {
				val = evalLit(p.A) || evalLit(p.B)
			} else {
				val = evalLit(p.A) && evalLit(p.B)
			}
		}
		if l.Neg() {
			return !val
		}
		return val
	}
	for _, lits := range ex.Covers[idx] {
		all := true
		for _, l := range lits {
			if !evalLit(l) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}
