package lutmap

import (
	"math/rand"
	"testing"

	"sparcs/internal/fsm"
	"sparcs/internal/logic"
	"sparcs/internal/netlist"
)

func TestMapSimpleAnd(t *testing.T) {
	n := netlist.New()
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.AddOutput("y", n.AddGate(netlist.And, a, b))
	m, err := Map(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumLUTs() != 1 || m.Depth != 1 {
		t.Fatalf("LUTs=%d depth=%d, want 1/1", m.NumLUTs(), m.Depth)
	}
}

func TestMapWideAndFitsOneLUT(t *testing.T) {
	// 4-input AND fits a single 4-LUT despite 2-input decomposition.
	n := netlist.New()
	ins := make([]netlist.NetID, 4)
	for i := range ins {
		ins[i] = n.AddInput("in")
	}
	n.AddOutput("y", n.AddGate(netlist.And, ins...))
	m, err := Map(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumLUTs() != 1 {
		t.Fatalf("4-input AND mapped to %d LUTs, want 1", m.NumLUTs())
	}
	if m.Depth != 1 {
		t.Fatalf("depth = %d, want 1", m.Depth)
	}
}

func TestMapSixInputAndNeedsTwoLevels(t *testing.T) {
	n := netlist.New()
	ins := make([]netlist.NetID, 6)
	for i := range ins {
		ins[i] = n.AddInput("in")
	}
	n.AddOutput("y", n.AddGate(netlist.And, ins...))
	m, err := Map(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Depth != 2 {
		t.Fatalf("6-input AND depth = %d, want 2", m.Depth)
	}
}

func TestMapRejectsBadK(t *testing.T) {
	n := netlist.New()
	a := n.AddInput("a")
	n.AddOutput("y", n.AddGate(netlist.Not, a))
	if _, err := Map(n, 1); err == nil {
		t.Error("K=1 should be rejected")
	}
	if _, err := Map(n, 7); err == nil {
		t.Error("K=7 should be rejected")
	}
}

func TestMapPassThroughAlias(t *testing.T) {
	// Output driven by a buffer from an input: no LUT, alias recorded.
	n := netlist.New()
	a := n.AddInput("a")
	y := n.AddGate(netlist.Buf, a)
	n.AddOutput("y", y)
	m, err := Map(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumLUTs() != 0 {
		t.Fatalf("pass-through should map to 0 LUTs, got %d", m.NumLUTs())
	}
	if m.Aliases[y] != a {
		t.Fatalf("alias of %d = %d, want %d", y, m.Aliases[y], a)
	}
	vals := m.Eval(map[netlist.NetID]bool{a: true})
	if !vals[y] {
		t.Fatal("Eval should resolve alias")
	}
}

// evalAgainstGates checks the mapped network against gate-level simulation
// on random input vectors.
func evalAgainstGates(t *testing.T, n *netlist.Netlist, vectors int, seed int64) {
	t.Helper()
	m, err := Map(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netlist.NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	ins := n.Inputs()
	inVec := make([]bool, len(ins))
	for v := 0; v < vectors; v++ {
		for i := range inVec {
			inVec[i] = r.Intn(2) == 1
		}
		outVec, err := sim.Step(inVec)
		if err != nil {
			t.Fatal(err)
		}
		src := map[netlist.NetID]bool{
			n.Const(false): false,
			n.Const(true):  true,
		}
		for i, id := range ins {
			src[id] = inVec[i]
		}
		// Combinational circuits only: no DFFs to seed.
		vals := m.Eval(src)
		for i, id := range n.Outputs() {
			got, ok := vals[id]
			if !ok {
				t.Fatalf("vector %d: output net %d missing from mapping eval", v, id)
			}
			if got != outVec[i] {
				t.Fatalf("vector %d: output %d = %v, gates say %v", v, i, got, outVec[i])
			}
		}
	}
}

func TestMapEquivalenceRandomLogic(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := netlist.New()
		width := 3 + r.Intn(4)
		ins := make([]netlist.NetID, width)
		for i := range ins {
			ins[i] = n.AddInput("in")
		}
		// Random SOP covers as outputs.
		for o := 0; o < 1+r.Intn(3); o++ {
			cv := logic.NewCover(width)
			for c := 0; c < 1+r.Intn(5); c++ {
				cube := logic.NewCube(width)
				for v := 0; v < width; v++ {
					switch r.Intn(3) {
					case 0:
						cube = cube.WithLit(v, logic.Pos)
					case 1:
						cube = cube.WithLit(v, logic.Neg)
					}
				}
				cv.Add(cube)
			}
			n.AddOutput("f", n.AddCover(cv, ins))
		}
		evalAgainstGates(t, n, 64, int64(trial))
	}
}

func TestMapXorChain(t *testing.T) {
	n := netlist.New()
	ins := make([]netlist.NetID, 8)
	for i := range ins {
		ins[i] = n.AddInput("in")
	}
	n.AddOutput("parity", n.AddGate(netlist.Xor, ins...))
	evalAgainstGates(t, n, 128, 99)
	m, _ := Map(n, 4)
	if m.Depth != 2 {
		t.Fatalf("8-input XOR depth = %d, want 2 with 4-LUTs", m.Depth)
	}
}

func TestMapNandNor(t *testing.T) {
	n := netlist.New()
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.AddOutput("nand", n.AddGate(netlist.Nand, a, b))
	n.AddOutput("nor", n.AddGate(netlist.Nor, a, b))
	evalAgainstGates(t, n, 16, 5)
}

// TestMapSynthesizedFSM maps a synthesized FSM and cross-checks one full
// sequential run: gate simulator vs LUT network stepped by hand.
func TestMapSynthesizedFSM(t *testing.T) {
	g := func(s string) logic.Cube { return logic.MustCube(s) }
	m := &fsm.Machine{
		Name:    "gray2",
		Inputs:  []string{"en"},
		Outputs: []string{"msb"},
		States:  []string{"A", "B", "C", "D"},
		Reset:   0,
	}
	for i := 0; i < 4; i++ {
		m.Trans = append(m.Trans, []fsm.Transition{
			{Guard: g("1"), Next: (i + 1) % 4, Outputs: []bool{i >= 2}},
			{Guard: g("0"), Next: i, Outputs: []bool{i >= 2}},
		})
	}
	nl, _, err := fsm.Synthesize(m, fsm.Compact)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := Map(nl, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mp.NumFFs != 2 {
		t.Fatalf("NumFFs = %d, want 2", mp.NumFFs)
	}

	sim, err := netlist.NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	// Manual sequential stepping of the LUT network.
	state := make(map[netlist.NetID]bool)
	for _, d := range nl.DFFs() {
		state[d.Q] = d.Init
	}
	r := rand.New(rand.NewSource(17))
	for c := 0; c < 200; c++ {
		en := r.Intn(2) == 1
		gateOut, err := sim.Step([]bool{en})
		if err != nil {
			t.Fatal(err)
		}
		src := map[netlist.NetID]bool{
			nl.Const(false): false,
			nl.Const(true):  true,
			nl.Inputs()[0]:  en,
		}
		for k, v := range state {
			src[k] = v
		}
		vals := mp.Eval(src)
		if vals[nl.Outputs()[0]] != gateOut[0] {
			t.Fatalf("cycle %d: LUT output %v, gates %v", c, vals[nl.Outputs()[0]], gateOut[0])
		}
		for _, d := range nl.DFFs() {
			nv, ok := vals[d.D]
			if !ok {
				t.Fatalf("cycle %d: D net %d missing from eval", c, d.D)
			}
			state[d.Q] = nv
		}
	}
}

func TestLUTLevelsMonotone(t *testing.T) {
	// Every LUT's level must exceed the levels of the LUTs feeding it.
	n := netlist.New()
	ins := make([]netlist.NetID, 9)
	for i := range ins {
		ins[i] = n.AddInput("in")
	}
	x := n.AddGate(netlist.And, ins[0], ins[1], ins[2], ins[3], ins[4])
	y := n.AddGate(netlist.Or, x, ins[5], ins[6], ins[7], ins[8])
	n.AddOutput("y", y)
	m, err := Map(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	levelOf := map[netlist.NetID]int{}
	for _, l := range m.LUTs {
		levelOf[l.Out] = l.Level
	}
	for _, l := range m.LUTs {
		for _, in := range l.Inputs {
			if lv, ok := levelOf[in]; ok && lv >= l.Level {
				t.Fatalf("LUT at level %d has input at level %d", l.Level, lv)
			}
		}
	}
}
