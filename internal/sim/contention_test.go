package sim

import (
	"reflect"
	"testing"

	"sparcs/internal/arbiter"
	"sparcs/internal/behav"
	"sparcs/internal/partition"
)

// countedRequester is a closed-loop test source: it requests on its
// single line until it has observed `want` grants through the feedback
// vector, then goes quiet forever. It proves grants really reach the
// generator: without feedback it would never stop requesting.
type countedRequester struct {
	want     int
	observed int
}

func (c *countedRequester) Name() string { return "counted" }
func (c *countedRequester) N() int       { return 1 }
func (c *countedRequester) Reset()       { c.observed = 0 }

func (c *countedRequester) Next(req, prevGrant []bool) {
	if prevGrant[0] {
		c.observed++
	}
	req[0] = c.observed < c.want
}

// quietRequester never requests but is not statically silent, so its
// lines are wired and the policy widened.
type quietRequester struct{ n int }

func (q *quietRequester) Name() string       { return "quiet" }
func (q *quietRequester) N() int             { return q.n }
func (q *quietRequester) Reset()             {}
func (q *quietRequester) Next(req, _ []bool) { clearBools(req) }
func clearBools(b []bool) {
	for i := range b {
		b[i] = false
	}
}

// silentRequester is the statically silent variant sim must elide.
type silentRequester struct{ quietRequester }

func (s *silentRequester) Silent() bool { return true }

// contendedConfig is the refsim contended scenario: two tasks looping
// Req/WaitGrant/accesses/Release on bankS.
func contendedConfig() Config {
	g := simpleGraph()
	prog := func(base int) behav.Program {
		return behav.Program{Body: []behav.Instr{
			behav.Req("bankS"), behav.WaitGrant("bankS"),
			behav.WriteImm("S", base, int64(base)), behav.Read("S", base),
			behav.Write("S", base+1),
			behav.Release("bankS"),
			behav.Compute(2),
		}, Repeat: 25}
	}
	return Config{
		Graph:             g,
		Tasks:             []string{"A", "B"},
		Programs:          map[string]behav.Program{"A": prog(0), "B": prog(100)},
		Arbiters:          []partition.ArbiterSpec{arbSpec("bankS", "A", "B")},
		ResourceOfSegment: map[string]string{"S": "bankS"},
		Memory:            NewMemory(),
	}
}

// TestContentionClosedLoop: the phantom requester observes exactly the
// grants the run attributes to it, and its request line goes quiet once
// served — grants demonstrably feed back into the generator.
func TestContentionClosedLoop(t *testing.T) {
	cfg := contendedConfig()
	src := &countedRequester{want: 5}
	cfg.Contention = []ContentionSource{{Resource: "bankS", Gen: src}}
	stats, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cs := stats.Contention["bankS"]
	if cs == nil {
		t.Fatal("no contention stats for bankS")
	}
	if len(cs.Grants) != 1 || len(cs.Waits) != 1 {
		t.Fatalf("contention stats are %d/%d lines, want 1/1", len(cs.Grants), len(cs.Waits))
	}
	if cs.Grants[0] != 5 {
		t.Fatalf("phantom won %d grants, want exactly its demand of 5", cs.Grants[0])
	}
	if src.observed != 5 {
		t.Fatalf("generator observed %d grants through feedback, stats say 5", src.observed)
	}
	// The phantom's grants must also appear in the widened trace, on
	// the phantom column, and member grant accounting must exclude them.
	phantomGrants := 0
	memberGrants := 0
	for _, step := range stats.ArbiterTraces["bankS"] {
		if len(step.Req) != 3 || len(step.Grant) != 3 {
			t.Fatalf("trace width %d, want members+phantom = 3", len(step.Req))
		}
		if step.Grant[2] {
			phantomGrants++
		}
		if step.Grant[0] || step.Grant[1] {
			memberGrants++
		}
	}
	if phantomGrants != 5 {
		t.Fatalf("trace shows %d phantom grants, want 5", phantomGrants)
	}
	if stats.GrantsByRes["bankS"] != memberGrants {
		t.Fatalf("GrantsByRes = %d, want member-only count %d", stats.GrantsByRes["bankS"], memberGrants)
	}
	if !stats.Done {
		t.Fatal("run did not complete")
	}
}

// TestContentionSilentElision: a statically silent source leaves Stats
// (traces included) deeply equal to an uninstrumented run — sim's no-op
// path, independent of any workload import.
func TestContentionSilentElision(t *testing.T) {
	plain, err := Run(contendedConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := contendedConfig()
	cfg.Contention = []ContentionSource{{Resource: "bankS", Gen: &silentRequester{quietRequester{n: 2}}}}
	quiet, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, quiet) {
		t.Fatalf("silent contention perturbed stats:\nplain: %+v\nquiet: %+v", plain, quiet)
	}
}

// TestContentionErrors: unknown resources, nil generators, and
// zero-line generators are rejected before any cycle runs.
func TestContentionErrors(t *testing.T) {
	cases := []struct {
		name string
		src  ContentionSource
	}{
		{"unknown-resource", ContentionSource{Resource: "bankZ", Gen: &quietRequester{n: 1}}},
		// Elision must not skip validation: a typo'd resource errors
		// even when the source is silent.
		{"unknown-resource-silent", ContentionSource{Resource: "bankZ", Gen: &silentRequester{quietRequester{n: 1}}}},
		{"nil-generator", ContentionSource{Resource: "bankS"}},
		{"zero-lines", ContentionSource{Resource: "bankS", Gen: &quietRequester{n: 0}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := contendedConfig()
			cfg.Contention = []ContentionSource{tc.src}
			if _, err := Run(cfg); err == nil {
				t.Fatal("expected a wiring error")
			}
		})
	}
}

// TestContentionPolicySizing: the NewPolicy callback receives the
// widened line count — members plus every attached source's lines —
// and multiple sources on one resource stack in config order.
func TestContentionPolicySizing(t *testing.T) {
	cfg := contendedConfig()
	cfg.Contention = []ContentionSource{
		{Resource: "bankS", Gen: &quietRequester{n: 2}},
		{Resource: "bankS", Gen: &quietRequester{n: 1}},
	}
	var sizes []int
	cfg.NewPolicy = func(n int) arbiter.Policy {
		sizes = append(sizes, n)
		return arbiter.NewRoundRobin(n)
	}
	stats, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 1 || sizes[0] != 5 {
		t.Fatalf("policy sized %v, want [5] (2 members + 2 + 1 phantom lines)", sizes)
	}
	cs := stats.Contention["bankS"]
	if cs == nil || len(cs.Grants) != 3 {
		t.Fatalf("contention stats %+v, want 3 phantom lines", cs)
	}
}
