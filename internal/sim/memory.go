package sim

// densePageCap bounds the dense per-segment page: addresses in
// [0, densePageCap) live in a flat []int64 (the hot path), anything
// outside falls back to a sparse map so pathological address patterns
// cannot blow up memory.
const densePageCap = 1 << 20

// memSegment is one named memory region: a dense page for small
// non-negative addresses plus a sparse overflow map. written tracks
// which dense words hold a stored value, preserving the original
// map-backed semantics where writing 0 still creates an entry that
// Snapshot reports.
type memSegment struct {
	page    []int64
	written []bool
	sparse  map[int]int64
}

func (s *memSegment) grow(n int) {
	c := 2 * len(s.page)
	if c < 64 { //sparcs:ignore bitwidth minimum dense-page capacity in words, not a lane-width bound
		c = 64
	}
	if c < n {
		c = n
	}
	if c > densePageCap {
		c = densePageCap
	}
	page := make([]int64, c) //sparcs:ignore hotpath amortized dense-page doubling, paid O(log) times per segment
	copy(page, s.page)
	s.page = page
	written := make([]bool, c) //sparcs:ignore hotpath,bitwidth written-flag vector for the dense page, not a request vector; amortized doubling
	copy(written, s.written)
	s.written = written
}

// Memory is the persistent segment storage shared across temporal
// partitions (physical banks retain data over reconfiguration). Segment
// names are interned to dense integer IDs so the simulator's per-cycle
// accesses are plain slice indexing instead of nested map lookups.
type Memory struct {
	ids  map[string]int
	segs []*memSegment
}

// NewMemory returns empty storage.
func NewMemory() *Memory { return &Memory{ids: map[string]int{}} }

// SegID interns a segment name and returns its dense ID for use with
// ReadID/WriteID. Interning an absent segment creates it empty.
func (m *Memory) SegID(segment string) int {
	if m.ids == nil {
		m.ids = map[string]int{}
	}
	if id, ok := m.ids[segment]; ok {
		return id
	}
	id := len(m.segs)
	m.ids[segment] = id
	m.segs = append(m.segs, &memSegment{})
	return id
}

// Read returns mem[segment][addr] (0 when unwritten).
func (m *Memory) Read(segment string, addr int) int64 {
	id, ok := m.ids[segment]
	if !ok {
		return 0
	}
	return m.ReadID(id, addr)
}

// ReadID is Read by interned segment ID — the simulator's hot path.
func (m *Memory) ReadID(id, addr int) int64 {
	s := m.segs[id]
	if addr >= 0 && addr < len(s.page) {
		return s.page[addr]
	}
	return s.sparse[addr]
}

// Write stores mem[segment][addr] = v.
func (m *Memory) Write(segment string, addr int, v int64) {
	m.WriteID(m.SegID(segment), addr, v)
}

// WriteID is Write by interned segment ID — the simulator's hot path.
func (m *Memory) WriteID(id, addr int, v int64) {
	s := m.segs[id]
	if addr >= 0 && addr < densePageCap {
		if addr >= len(s.page) {
			s.grow(addr + 1)
		}
		s.page[addr] = v
		s.written[addr] = true
		return
	}
	if s.sparse == nil {
		s.sparse = map[int]int64{} //sparcs:ignore hotpath sparse overflow fallback for pathological addresses outside the dense page
	}
	s.sparse[addr] = v //sparcs:ignore hotpath sparse overflow fallback for pathological addresses outside the dense page
}

// Snapshot returns a copied dump of one segment for assertions: every
// written address and its value, dense or sparse.
func (m *Memory) Snapshot(segment string) map[int]int64 {
	out := map[int]int64{}
	id, ok := m.ids[segment]
	if !ok {
		return out
	}
	s := m.segs[id]
	for a, w := range s.written {
		if w {
			out[a] = s.page[a]
		}
	}
	//sparcs:ignore determinism distinct-key writes into a result map; iteration order cannot change the result
	for a, v := range s.sparse {
		out[a] = v
	}
	return out
}
