package core

import (
	"fmt"
	"sort"
	"strings"
)

// DeadlockProneError rejects a contention protocol whose correlated
// sources can reach circular hold-and-wait: the union of their ordered
// acquisition chains contains a cycle, so under any non-preemptive
// policy the sources can interlock and starve the member tasks until
// the watchdog fires. Cycle names the resources in acquisition order,
// with the first resource repeated at the end ("M1 -> M3 -> M1").
//
// The checker runs at build time (Compile) and again when experiments
// compose per-run contention (Simulate); Options.UnsafeProtocols — the
// sparcs.WithUnsafeProtocols run option — restores the historical
// watchdog-only behavior for the deadlock experiments.
type DeadlockProneError struct {
	// Cycle is the offending acquisition cycle, first resource repeated
	// at the end; len >= 2.
	Cycle []string
}

func (e *DeadlockProneError) Error() string {
	return fmt.Sprintf("core: contention protocol is deadlock-prone: acquisition-order cycle %s (fix the acquisition order, or run watchdog-only with WithUnsafeProtocols)",
		strings.Join(e.Cycle, " -> "))
}

// CheckProtocols verifies that the correlated sources' acquisition
// orders embed in one global resource order — the classical
// ordered-acquisition deadlock-avoidance discipline. Each spec holds
// every earlier resource in its Resources list while it waits for the
// next, so the union of the per-spec chains is exactly the protocol's
// hold-and-wait graph; a cycle in it means two sources can block each
// other forever. Returns a *DeadlockProneError naming the first cycle
// (deterministically chosen), or nil for protocols that admit a global
// order. Single-resource contention cannot hold-and-wait and never
// contributes edges.
func CheckProtocols(specs []SharedContentionSpec) error {
	// next[u] collects the resources some source waits for while
	// holding u.
	next := map[string][]string{}
	nodes := map[string]bool{}
	for _, cs := range specs {
		for i := 0; i+1 < len(cs.Resources); i++ {
			u, v := cs.Resources[i], cs.Resources[i+1]
			next[u] = append(next[u], v)
			nodes[u], nodes[v] = true, true
		}
	}
	if len(next) == 0 {
		return nil
	}
	order := make([]string, 0, len(nodes))
	for r := range nodes {
		order = append(order, r)
	}
	sort.Strings(order)
	for _, u := range order {
		sort.Strings(next[u])
	}
	// Iterative-deepening-free DFS with colors; starting nodes and edge
	// fan-out are sorted, so the reported cycle is deterministic.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var stack []string
	var cycle []string
	var visit func(u string) bool
	visit = func(u string) bool {
		color[u] = gray
		stack = append(stack, u)
		for _, v := range next[u] {
			switch color[v] {
			case gray:
				// Found: slice the stack from v's occurrence to u, close it.
				for i, w := range stack {
					if w == v {
						cycle = append(append(cycle, stack[i:]...), v)
						return true
					}
				}
			case white:
				if visit(v) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[u] = black
		return false
	}
	for _, r := range order {
		if color[r] == white && visit(r) {
			return &DeadlockProneError{Cycle: cycle}
		}
	}
	return nil
}
