package arbiter

import (
	"errors"
	"math/rand"
	"testing"
)

// driveTrace runs p for the given cycles under randomized traffic with
// the paper's M=2 release discipline (request persistently, release one
// cycle after two granted cycles) and returns the recorded trace. The
// discipline keeps every line cycling through request/grant/release, so
// the bounded-wait check sees sustained rotation rather than sparse
// luck.
func driveTrace(p Policy, n, cycles int, seed int64) []TraceStep {
	r := rand.New(rand.NewSource(seed))
	steps := make([]TraceStep, 0, cycles)
	req := make([]bool, n)
	held := make([]int, n)
	for c := 0; c < cycles; c++ {
		for i := range req {
			if held[i] >= 2 {
				req[i] = false
				held[i] = 0
			} else if !req[i] {
				req[i] = r.Intn(2) == 0
			}
		}
		g := p.Step(req)
		for i := range g {
			if g[i] {
				held[i]++
			}
		}
		steps = append(steps, TraceStep{
			Req:   append([]bool(nil), req...),
			Grant: append([]bool(nil), g...),
		})
	}
	return steps
}

// TestCheckAllWideN: the fairness-bounded policies keep every check.go
// property — mutual exclusion, grant-implies-request, work
// conservation, and the N-1 grant-episode wait bound — at widths
// straddling the old 16-line cap and both sides of the word boundary.
// The widths 31/33 and 63 sit deliberately off the power-of-two grid
// where a rotate or mask off-by-one would first show.
func TestCheckAllWideN(t *testing.T) {
	hierGroups := map[int]int{31: 1, 32: 4, 33: 3, 63: 7, 64: 8}
	for _, n := range []int{31, 32, 33, 63, 64} {
		specs := []string{"rr", "fifo", "wrr:2", "preemptive:4"}
		for _, spec := range specs {
			p, err := NewPolicy(spec, n)
			if err != nil {
				t.Fatalf("N=%d %s: %v", n, spec, err)
			}
			steps := driveTrace(p, n, 6000, int64(n)*31+int64(len(spec)))
			if err := CheckAll(n, steps); err != nil {
				t.Errorf("N=%d %s: %v", n, spec, err)
			}
		}
		h, err := NewHierarchical(n, hierGroups[n])
		if err != nil {
			t.Fatalf("N=%d hier:%d: %v", n, hierGroups[n], err)
		}
		steps := driveTrace(h, n, 6000, int64(n)*37)
		if err := CheckAll(n, steps); err != nil {
			t.Errorf("N=%d %s: %v", n, h.Name(), err)
		}
	}
}

// TestSafetyWideN: priority and random offer no wait bound, so only the
// safety properties apply at the new widths.
func TestSafetyWideN(t *testing.T) {
	for _, n := range []int{31, 32, 33, 63, 64} {
		for _, spec := range []string{"priority", "random:9"} {
			p, err := NewPolicy(spec, n)
			if err != nil {
				t.Fatalf("N=%d %s: %v", n, spec, err)
			}
			steps := driveTrace(p, n, 4000, int64(n)*41)
			if err := CheckMutualExclusion(steps); err != nil {
				t.Errorf("N=%d %s: %v", n, spec, err)
			}
			if err := CheckGrantImpliesRequest(steps); err != nil {
				t.Errorf("N=%d %s: %v", n, spec, err)
			}
			if err := CheckWorkConserving(steps); err != nil {
				t.Errorf("N=%d %s: %v", n, spec, err)
			}
		}
	}
}

// TestWideNBitBoolSurfacesAgree: at N=64 (full word, where a shift
// overflow would wrap silently) the []bool Step surface and the native
// StepBits surface of two independently constructed instances stay
// cycle-identical.
func TestWideNBitBoolSurfacesAgree(t *testing.T) {
	for _, spec := range []string{"rr", "fifo", "priority", "random:5", "wrr:3", "preemptive:2", "hier:8"} {
		const n = 64
		pBool, err := NewPolicy(spec, n)
		if err != nil {
			t.Fatal(err)
		}
		pBits, err := NewPolicy(spec, n)
		if err != nil {
			t.Fatal(err)
		}
		stepper, ok := pBits.(BitStepper)
		if !ok {
			t.Fatalf("%s does not implement BitStepper natively", spec)
		}
		r := rand.New(rand.NewSource(int64(len(spec)) * 17))
		req := make([]bool, n)
		for c := 0; c < 3000; c++ {
			for i := range req {
				req[i] = r.Intn(3) != 0
			}
			want := PackBools(pBool.Step(req))
			got := stepper.StepBits(PackBools(req))
			if got != want {
				t.Fatalf("%s cycle %d: StepBits %064b, Step %064b", spec, c, got, want)
			}
		}
	}
}

// TestSynthKindsRejectWideN: the synthesized kinds stop at MaxSynthN
// and say so through the ErrOutOfRange sentinel; the behavioral kinds
// accept the full word.
func TestSynthKindsRejectWideN(t *testing.T) {
	for _, spec := range []string{"fsm", "netlist:one-hot", "netlist:gray", "netlist:compact"} {
		for _, n := range []int{MaxSynthN + 1, MaxN} {
			_, err := NewPolicy(spec, n)
			if err == nil {
				t.Errorf("%s at N=%d should be rejected", spec, n)
				continue
			}
			if !errors.Is(err, ErrOutOfRange) {
				t.Errorf("%s at N=%d: error %v does not wrap ErrOutOfRange", spec, n, err)
			}
		}
		if _, err := NewPolicy(spec, MaxSynthN); err != nil {
			t.Errorf("%s at N=%d: %v", spec, MaxSynthN, err)
		}
	}
	for _, spec := range []string{"rr", "fifo", "priority", "random:1", "wrr:2", "preemptive:4", "hier:2"} {
		if _, err := NewPolicy(spec, MaxN); err != nil {
			t.Errorf("%s at N=%d: %v", spec, MaxN, err)
		}
	}
}
