package service

import (
	"sync"
	"sync/atomic"

	"sparcs"
)

// systemCache is the compile-once half of the service: compiled Systems
// keyed by their design hash (sparcs.DesignHash), with singleflight
// semantics — concurrent requests for one uncached design trigger
// exactly one core.Compile, and every later request for the same hash
// skips compilation entirely. Entries are never evicted: a compiled
// System is a few compiled stages, and the design space a server
// instance sees is bounded by its registry.
type systemCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry

	hits     atomic.Int64 // requests that found an existing entry
	misses   atomic.Int64 // requests that created the entry
	compiles atomic.Int64 // actual core.Compile executions (== misses)
}

type cacheEntry struct {
	once sync.Once
	sys  *sparcs.System
	err  error
}

func newSystemCache() *systemCache {
	return &systemCache{entries: map[string]*cacheEntry{}}
}

// get returns the compiled System for hash, compiling at most once per
// hash across all callers. hit reports whether the entry already
// existed — a request arriving while the first compile is still in
// flight counts as a hit: it blocks on the singleflight instead of
// compiling. Compile errors are cached too: the hash covers every
// compile input, so the same inputs fail the same way.
func (c *systemCache) get(hash string, compile func() (*sparcs.System, error)) (sys *sparcs.System, hit bool, err error) {
	c.mu.Lock()
	e, ok := c.entries[hash]
	if !ok {
		e = &cacheEntry{}
		c.entries[hash] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() {
		c.compiles.Add(1)
		e.sys, e.err = compile()
	})
	return e.sys, ok, e.err
}
