// Package netlist provides a gate-level netlist representation and a
// deterministic two-phase cycle simulator.
//
// Netlists are produced by internal/fsm when synthesizing arbiter FSMs and
// consumed by internal/lutmap for technology mapping and by tests that
// co-simulate synthesized arbiters against behavioral references.
//
// The simulator models one clock domain: each Step evaluates all
// combinational logic (levelized), resolves tristate buses, samples the
// primary outputs, and then clocks every DFF. Tristate nets track
// high-impedance and multiple-driver conflicts, which the arbitration tests
// use to prove mutual exclusion on shared lines (paper Figure 4).
package netlist

import (
	"fmt"
	"sort"
)

// NetID identifies a single-bit net within one Netlist.
type NetID int

// Invalid is the zero-value NetID guard; valid nets start at 0, so Invalid
// is deliberately out of range.
const Invalid NetID = -1

// GateKind enumerates the supported combinational gate types.
type GateKind uint8

const (
	And GateKind = iota
	Or
	Not
	Xor
	Nand
	Nor
	Buf
)

func (k GateKind) String() string {
	switch k {
	case And:
		return "AND"
	case Or:
		return "OR"
	case Not:
		return "NOT"
	case Xor:
		return "XOR"
	case Nand:
		return "NAND"
	case Nor:
		return "NOR"
	case Buf:
		return "BUF"
	default:
		return fmt.Sprintf("GateKind(%d)", int(k))
	}
}

// Gate is one combinational gate. Not and Buf take exactly one input;
// all others take one or more.
type Gate struct {
	Kind GateKind
	In   []NetID
	Out  NetID
}

// DFF is a positive-edge D flip-flop with a reset value applied by
// Simulator.Reset.
type DFF struct {
	D    NetID
	Q    NetID
	Init bool
}

// TBuf is a tristate buffer driving Out with In when En is high. Several
// TBufs may share one Out net; the simulator resolves them.
type TBuf struct {
	In  NetID
	En  NetID
	Out NetID
}

// Netlist is a single-clock gate-level design.
type Netlist struct {
	names   []string
	inputs  []NetID
	outputs []NetID
	gates   []Gate
	dffs    []DFF
	tbufs   []TBuf

	const0 NetID
	const1 NetID

	inputIndex  map[string]NetID
	outputIndex map[string]NetID
}

// New returns an empty netlist with constant-0 and constant-1 nets
// pre-allocated.
func New() *Netlist {
	n := &Netlist{
		inputIndex:  map[string]NetID{},
		outputIndex: map[string]NetID{},
	}
	n.const0 = n.AddNet("const0")
	n.const1 = n.AddNet("const1")
	return n
}

// AddNet creates a new net with the given name (for diagnostics only;
// names need not be unique).
func (n *Netlist) AddNet(name string) NetID {
	id := NetID(len(n.names))
	n.names = append(n.names, name)
	return id
}

// NetName returns the diagnostic name of a net.
func (n *Netlist) NetName(id NetID) string {
	if id < 0 || int(id) >= len(n.names) {
		return fmt.Sprintf("net#%d", int(id))
	}
	return n.names[id]
}

// NumNets returns the total net count.
func (n *Netlist) NumNets() int { return len(n.names) }

// Const returns the constant net for the given value.
func (n *Netlist) Const(v bool) NetID {
	if v {
		return n.const1
	}
	return n.const0
}

// AddInput declares a named primary input and returns its net.
func (n *Netlist) AddInput(name string) NetID {
	id := n.AddNet(name)
	n.inputs = append(n.inputs, id)
	n.inputIndex[name] = id
	return id
}

// AddOutput declares net id as the named primary output.
func (n *Netlist) AddOutput(name string, id NetID) {
	n.outputs = append(n.outputs, id)
	n.outputIndex[name] = id
}

// Inputs returns the primary input nets in declaration order.
func (n *Netlist) Inputs() []NetID { return n.inputs }

// Outputs returns the primary output nets in declaration order.
func (n *Netlist) Outputs() []NetID { return n.outputs }

// InputNet looks up a primary input net by name.
func (n *Netlist) InputNet(name string) (NetID, bool) {
	id, ok := n.inputIndex[name]
	return id, ok
}

// OutputNet looks up a primary output net by name.
func (n *Netlist) OutputNet(name string) (NetID, bool) {
	id, ok := n.outputIndex[name]
	return id, ok
}

// AddGate creates a gate driving a fresh net and returns that net.
func (n *Netlist) AddGate(kind GateKind, in ...NetID) NetID {
	if (kind == Not || kind == Buf) && len(in) != 1 {
		panic(fmt.Sprintf("netlist: %v takes exactly 1 input, got %d", kind, len(in)))
	}
	if len(in) == 0 {
		panic("netlist: gate with no inputs")
	}
	out := n.AddNet(fmt.Sprintf("%s#%d", kind, len(n.gates)))
	n.gates = append(n.gates, Gate{Kind: kind, In: append([]NetID(nil), in...), Out: out})
	return out
}

// AddGateOut creates a gate driving an existing net (used when an output
// net was declared ahead of its logic).
func (n *Netlist) AddGateOut(kind GateKind, out NetID, in ...NetID) {
	if (kind == Not || kind == Buf) && len(in) != 1 {
		panic(fmt.Sprintf("netlist: %v takes exactly 1 input, got %d", kind, len(in)))
	}
	n.gates = append(n.gates, Gate{Kind: kind, In: append([]NetID(nil), in...), Out: out})
}

// AddDFF creates a flip-flop with the given D input and initial value,
// returning the Q net.
func (n *Netlist) AddDFF(d NetID, init bool, name string) NetID {
	q := n.AddNet(name)
	n.dffs = append(n.dffs, DFF{D: d, Q: q, Init: init})
	return q
}

// AddTBuf attaches a tristate buffer to the shared net out.
func (n *Netlist) AddTBuf(in, en, out NetID) {
	n.tbufs = append(n.tbufs, TBuf{In: in, En: en, Out: out})
}

// Gates returns the gate list. Callers must not mutate it.
func (n *Netlist) Gates() []Gate { return n.gates }

// DFFs returns the flip-flop list. Callers must not mutate it.
func (n *Netlist) DFFs() []DFF { return n.dffs }

// TBufs returns the tristate buffer list. Callers must not mutate it.
func (n *Netlist) TBufs() []TBuf { return n.tbufs }

// Stats summarizes netlist contents.
type Stats struct {
	Nets    int
	Gates   int
	ByKind  map[GateKind]int
	DFFs    int
	TBufs   int
	Inputs  int
	Outputs int
	Depth   int // combinational gate levels (0 if purely sequential wiring)
}

// Stats computes summary statistics, including combinational depth.
func (n *Netlist) Stats() (Stats, error) {
	order, err := n.Levelize()
	if err != nil {
		return Stats{}, err
	}
	depth := make([]int, n.NumNets())
	maxd := 0
	for _, gi := range order {
		g := n.gates[gi]
		d := 0
		for _, in := range g.In {
			if depth[in] > d {
				d = depth[in]
			}
		}
		depth[g.Out] = d + 1
		if d+1 > maxd {
			maxd = d + 1
		}
	}
	byKind := map[GateKind]int{}
	for _, g := range n.gates {
		byKind[g.Kind]++
	}
	return Stats{
		Nets:    n.NumNets(),
		Gates:   len(n.gates),
		ByKind:  byKind,
		DFFs:    len(n.dffs),
		TBufs:   len(n.tbufs),
		Inputs:  len(n.inputs),
		Outputs: len(n.outputs),
		Depth:   maxd,
	}, nil
}

// Levelize returns gate indices in topological evaluation order, or an
// error if the combinational logic contains a cycle. DFF Q nets, primary
// inputs, constants, and tristate-resolved nets are sources.
func (n *Netlist) Levelize() ([]int, error) {
	producer := make(map[NetID]int, len(n.gates)) // net -> gate index
	for gi, g := range n.gates {
		if prev, dup := producer[g.Out]; dup {
			return nil, fmt.Errorf("netlist: net %q driven by gates %d and %d",
				n.NetName(g.Out), prev, gi)
		}
		producer[g.Out] = gi
	}
	// Tristate outputs are resolved before gate evaluation; a gate must not
	// also drive a tristate net.
	for _, tb := range n.tbufs {
		if gi, dup := producer[tb.Out]; dup {
			return nil, fmt.Errorf("netlist: tristate net %q also driven by gate %d",
				n.NetName(tb.Out), gi)
		}
	}

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, len(n.gates))
	var order []int
	var visit func(gi int) error
	visit = func(gi int) error {
		switch color[gi] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("netlist: combinational cycle through gate %d (%v)", gi, n.gates[gi].Kind)
		}
		color[gi] = gray
		for _, in := range n.gates[gi].In {
			if pg, ok := producer[in]; ok {
				if err := visit(pg); err != nil {
					return err
				}
			}
		}
		color[gi] = black
		order = append(order, gi)
		return nil
	}
	// Visit in stable order for deterministic levelization.
	gis := make([]int, len(n.gates))
	for i := range gis {
		gis[i] = i
	}
	sort.Ints(gis)
	for _, gi := range gis {
		if err := visit(gi); err != nil {
			return nil, err
		}
	}
	return order, nil
}
