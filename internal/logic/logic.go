// Package logic provides two-level boolean logic in sum-of-products form:
// cubes (product terms over a fixed variable set), covers (sets of cubes),
// truth-table evaluation, and Quine-McCluskey minimization for the small
// input counts that arise in arbiter next-state logic.
//
// The synthesis pipeline (internal/fsm, internal/synth) lowers FSM
// transition relations to covers, minimizes them here, and hands the result
// to internal/netlist for gate construction.
package logic

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// LitState is the state of one variable inside a cube.
type LitState uint8

const (
	// DontCare means the variable does not appear in the product term.
	DontCare LitState = iota
	// Pos means the variable appears uncomplemented.
	Pos
	// Neg means the variable appears complemented.
	Neg
)

func (l LitState) String() string {
	switch l {
	case Pos:
		return "1"
	case Neg:
		return "0"
	default:
		return "-"
	}
}

// Cube is a single product term over n variables. The zero-value cube of
// width n (all DontCare) is the universal cube (constant true).
type Cube struct {
	lits []LitState
}

// NewCube returns a universal cube over n variables.
func NewCube(n int) Cube {
	return Cube{lits: make([]LitState, n)}
}

// CubeFromString parses a cube from a PLA-style string, e.g. "1-0" means
// v0 AND NOT v2 over three variables. Characters: '1' positive, '0'
// negative, '-' absent.
func CubeFromString(s string) (Cube, error) {
	c := NewCube(len(s))
	for i, ch := range s {
		switch ch {
		case '1':
			c.lits[i] = Pos
		case '0':
			c.lits[i] = Neg
		case '-':
			c.lits[i] = DontCare
		default:
			return Cube{}, fmt.Errorf("logic: invalid cube char %q in %q", ch, s)
		}
	}
	return c, nil
}

// MustCube is CubeFromString that panics on malformed input; for tests and
// table literals.
func MustCube(s string) Cube {
	c, err := CubeFromString(s)
	if err != nil {
		panic(err)
	}
	return c
}

// Width returns the number of variables the cube ranges over.
func (c Cube) Width() int { return len(c.lits) }

// Lit returns the literal state of variable i.
func (c Cube) Lit(i int) LitState { return c.lits[i] }

// WithLit returns a copy of c with variable i set to state s.
func (c Cube) WithLit(i int, s LitState) Cube {
	out := Cube{lits: make([]LitState, len(c.lits))}
	copy(out.lits, c.lits)
	out.lits[i] = s
	return out
}

// NumLiterals counts variables that actually appear (not DontCare).
func (c Cube) NumLiterals() int {
	n := 0
	for _, l := range c.lits {
		if l != DontCare {
			n++
		}
	}
	return n
}

// String renders the cube in PLA style ("1-0").
func (c Cube) String() string {
	var b strings.Builder
	for _, l := range c.lits {
		b.WriteString(l.String())
	}
	return b.String()
}

// Eval reports whether the cube covers the given input assignment.
// len(in) must equal Width.
func (c Cube) Eval(in []bool) bool {
	for i, l := range c.lits {
		switch l {
		case Pos:
			if !in[i] {
				return false
			}
		case Neg:
			if in[i] {
				return false
			}
		}
	}
	return true
}

// Contains reports whether c covers every minterm that other covers.
func (c Cube) Contains(other Cube) bool {
	if len(c.lits) != len(other.lits) {
		return false
	}
	for i, l := range c.lits {
		if l != DontCare && l != other.lits[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether the two cubes share at least one minterm.
func (c Cube) Intersects(other Cube) bool {
	if len(c.lits) != len(other.lits) {
		return false
	}
	for i, l := range c.lits {
		o := other.lits[i]
		if l != DontCare && o != DontCare && l != o {
			return false
		}
	}
	return true
}

// Equal reports structural equality.
func (c Cube) Equal(other Cube) bool {
	if len(c.lits) != len(other.lits) {
		return false
	}
	for i := range c.lits {
		if c.lits[i] != other.lits[i] {
			return false
		}
	}
	return true
}

// merge attempts the Quine-McCluskey adjacency merge: if the cubes differ in
// exactly one variable where one is Pos and the other Neg (and agree
// elsewhere), the merged cube with that variable dropped is returned.
func (c Cube) merge(other Cube) (Cube, bool) {
	if len(c.lits) != len(other.lits) {
		return Cube{}, false
	}
	diff := -1
	for i := range c.lits {
		a, b := c.lits[i], other.lits[i]
		if a == b {
			continue
		}
		if a == DontCare || b == DontCare {
			return Cube{}, false
		}
		if diff >= 0 {
			return Cube{}, false
		}
		diff = i
	}
	if diff < 0 {
		return Cube{}, false
	}
	return c.WithLit(diff, DontCare), true
}

// Cover is a disjunction of cubes over a shared variable width.
type Cover struct {
	width int
	cubes []Cube
}

// NewCover returns an empty (constant-false) cover over n variables.
func NewCover(n int) *Cover {
	return &Cover{width: n}
}

// CoverFromStrings builds a cover from PLA-style cube strings.
func CoverFromStrings(width int, cubes ...string) (*Cover, error) {
	cv := NewCover(width)
	for _, s := range cubes {
		c, err := CubeFromString(s)
		if err != nil {
			return nil, err
		}
		if c.Width() != width {
			return nil, fmt.Errorf("logic: cube %q width %d != cover width %d", s, c.Width(), width)
		}
		cv.Add(c)
	}
	return cv, nil
}

// MustCover is CoverFromStrings that panics on error.
func MustCover(width int, cubes ...string) *Cover {
	cv, err := CoverFromStrings(width, cubes...)
	if err != nil {
		panic(err)
	}
	return cv
}

// Width returns the variable count.
func (cv *Cover) Width() int { return cv.width }

// Cubes returns the cover's cubes. The slice must not be mutated.
func (cv *Cover) Cubes() []Cube { return cv.cubes }

// Len returns the number of cubes.
func (cv *Cover) Len() int { return len(cv.cubes) }

// NumLiterals returns the total literal count across all cubes, the usual
// two-level cost metric.
func (cv *Cover) NumLiterals() int {
	n := 0
	for _, c := range cv.cubes {
		n += c.NumLiterals()
	}
	return n
}

// Add appends a cube unless an existing cube already contains it.
func (cv *Cover) Add(c Cube) {
	if c.Width() != cv.width {
		panic(fmt.Sprintf("logic: cube width %d != cover width %d", c.Width(), cv.width))
	}
	for _, have := range cv.cubes {
		if have.Contains(c) {
			return
		}
	}
	cv.cubes = append(cv.cubes, c)
}

// Eval evaluates the cover on an input assignment.
func (cv *Cover) Eval(in []bool) bool {
	for _, c := range cv.cubes {
		if c.Eval(in) {
			return true
		}
	}
	return false
}

// Clone returns a deep copy.
func (cv *Cover) Clone() *Cover {
	out := NewCover(cv.width)
	out.cubes = make([]Cube, len(cv.cubes))
	for i, c := range cv.cubes {
		lits := make([]LitState, len(c.lits))
		copy(lits, c.lits)
		out.cubes[i] = Cube{lits: lits}
	}
	return out
}

// String renders one cube per line in PLA style.
func (cv *Cover) String() string {
	ss := make([]string, len(cv.cubes))
	for i, c := range cv.cubes {
		ss[i] = c.String()
	}
	return strings.Join(ss, "\n")
}

// Minterms enumerates the on-set as input indices (LSB = variable 0).
// Only usable for width <= 20.
func (cv *Cover) Minterms() []uint32 {
	if cv.width > 20 {
		panic("logic: Minterms only supported for width <= 20")
	}
	var out []uint32
	in := make([]bool, cv.width)
	for m := uint32(0); m < 1<<uint(cv.width); m++ {
		for i := 0; i < cv.width; i++ {
			in[i] = m&(1<<uint(i)) != 0
		}
		if cv.Eval(in) {
			out = append(out, m)
		}
	}
	return out
}

// Equivalent reports whether two covers denote the same boolean function.
// Exhaustive for width <= 20; callers with wider functions should sample.
func Equivalent(a, b *Cover) bool {
	if a.width != b.width {
		return false
	}
	if a.width > 20 {
		panic("logic: Equivalent only supported for width <= 20")
	}
	in := make([]bool, a.width)
	for m := uint32(0); m < 1<<uint(a.width); m++ {
		for i := 0; i < a.width; i++ {
			in[i] = m&(1<<uint(i)) != 0
		}
		if a.Eval(in) != b.Eval(in) {
			return false
		}
	}
	return true
}

// Minimize returns a minimized equivalent cover using Quine-McCluskey
// prime-implicant generation followed by a greedy essential-prime cover.
// The don't-care set dc (may be nil) is used when generating primes but
// never needs to be covered. Widths above qmMaxWidth fall back to the
// cheaper iterative-merge simplifier.
func Minimize(on *Cover, dc *Cover) *Cover {
	best := simplify(on)
	if on.width <= qmMaxWidth && qmFeasible(on, dc) {
		if qm := qmMinimize(on, dc); betterCover(qm, best) {
			best = qm
		}
	}
	return best
}

// qmFeasible bounds the exact minimizer's working set: beyond ~600
// minterms the level-merging pass dominates runtime for no practical gain
// over the heuristic pass.
func qmFeasible(on, dc *Cover) bool {
	const maxMinterms = 600
	n := len(on.Minterms())
	if dc != nil {
		n += len(dc.Minterms())
	}
	return n <= maxMinterms
}

// Simplify returns an equivalent cover produced by iterative pairwise
// merging and containment removal only — the cheap pass weaker synthesis
// tools settle for. It never grows the cover but is not guaranteed
// minimal, and it ignores don't-cares.
func Simplify(on *Cover) *Cover {
	return simplify(on)
}

// betterCover prefers fewer cubes, then fewer literals.
func betterCover(a, b *Cover) bool {
	if a.Len() != b.Len() {
		return a.Len() < b.Len()
	}
	return a.NumLiterals() < b.NumLiterals()
}

const qmMaxWidth = 12

// bcube is a bitmask product term: care marks bound variables, val their
// polarity (val is zero outside care). Used internally by the minimizer
// because mask operations are far cheaper than []LitState walks.
type bcube struct {
	care uint32
	val  uint32
}

func (b bcube) key() uint64 { return uint64(b.care)<<32 | uint64(b.val) }

func (b bcube) coversMinterm(m uint32) bool { return m&b.care == b.val }

func bcubeFromCube(c Cube) bcube {
	var b bcube
	for i, l := range c.lits {
		switch l {
		case Pos:
			b.care |= 1 << uint(i)
			b.val |= 1 << uint(i)
		case Neg:
			b.care |= 1 << uint(i)
		}
	}
	return b
}

func cubeFromBcube(b bcube, width int) Cube {
	c := NewCube(width)
	for i := 0; i < width; i++ {
		bit := uint32(1) << uint(i)
		if b.care&bit != 0 {
			if b.val&bit != 0 {
				c.lits[i] = Pos
			} else {
				c.lits[i] = Neg
			}
		}
	}
	return c
}

// qmMinimize is classical Quine-McCluskey over the on+dc minterm set.
func qmMinimize(on *Cover, dc *Cover) *Cover {
	onMins := on.Minterms()
	if len(onMins) == 0 {
		return NewCover(on.width)
	}
	seed := map[uint32]bool{}
	for _, m := range onMins {
		seed[m] = true
	}
	all := append([]uint32(nil), onMins...)
	if dc != nil {
		for _, m := range dc.Minterms() {
			if !seed[m] {
				seed[m] = true
				all = append(all, m)
			}
		}
	}
	fullCare := uint32(1)<<uint(on.width) - 1
	current := make([]bcube, 0, len(all))
	for _, m := range all {
		current = append(current, bcube{care: fullCare, val: m})
	}
	var primes []bcube
	for len(current) > 0 {
		merged := map[uint64]bcube{}
		used := make([]bool, len(current))
		for i := 0; i < len(current); i++ {
			for j := i + 1; j < len(current); j++ {
				a, b := current[i], current[j]
				if a.care != b.care {
					continue
				}
				diff := a.val ^ b.val
				if diff == 0 || diff&(diff-1) != 0 {
					continue // zero or more than one differing bit
				}
				m := bcube{care: a.care &^ diff, val: a.val &^ diff}
				merged[m.key()] = m
				used[i] = true
				used[j] = true
			}
		}
		for i, c := range current {
			if !used[i] {
				primes = append(primes, c)
			}
		}
		next := make([]bcube, 0, len(merged))
		for _, c := range merged {
			next = append(next, c)
		}
		sort.Slice(next, func(i, j int) bool { return next[i].key() < next[j].key() })
		current = next
	}
	return coverFromPrimes(on.width, primes, onMins)
}

// coverFromPrimes selects a small subset of primes covering all on-set
// minterms: essential primes first, then greedy by coverage count.
func coverFromPrimes(width int, primes []bcube, onMins []uint32) *Cover {
	covers := make([][]int32, len(onMins)) // minterm index -> prime indices
	for mi, m := range onMins {
		for pi, p := range primes {
			if p.coversMinterm(m) {
				covers[mi] = append(covers[mi], int32(pi))
			}
		}
	}
	chosen := make([]bool, len(primes))
	covered := make([]bool, len(onMins))
	// Essential primes.
	for _, ps := range covers {
		if len(ps) == 1 {
			chosen[ps[0]] = true
		}
	}
	markCovered := func() {
		for mi, ps := range covers {
			if covered[mi] {
				continue
			}
			for _, pi := range ps {
				if chosen[pi] {
					covered[mi] = true
					break
				}
			}
		}
	}
	markCovered()
	// Greedy for the rest.
	litCount := func(p bcube) int { return bits.OnesCount32(p.care) }
	for {
		count := make([]int, len(primes))
		remaining := 0
		for mi, ps := range covers {
			if covered[mi] {
				continue
			}
			remaining++
			for _, pi := range ps {
				if !chosen[pi] {
					count[pi]++
				}
			}
		}
		if remaining == 0 {
			break
		}
		bestPrime, bestCount := -1, 0
		for pi := range primes {
			if chosen[pi] || count[pi] == 0 {
				continue
			}
			if count[pi] > bestCount ||
				(count[pi] == bestCount && litCount(primes[pi]) < litCount(primes[bestPrime])) {
				bestPrime, bestCount = pi, count[pi]
			}
		}
		if bestPrime < 0 {
			break // unreachable if primes cover the on-set
		}
		chosen[bestPrime] = true
		markCovered()
	}
	out := NewCover(width)
	for pi, sel := range chosen {
		if sel {
			out.Add(cubeFromBcube(primes[pi], width))
		}
	}
	return out
}

// simplify performs iterative pairwise merging and containment removal.
// Cheaper than QM and used for wide functions; not guaranteed minimal.
func simplify(cv *Cover) *Cover {
	cubes := append([]Cube(nil), cv.cubes...)
	changed := true
	for changed {
		changed = false
		// Pairwise merge.
		for i := 0; i < len(cubes) && !changed; i++ {
			for j := i + 1; j < len(cubes) && !changed; j++ {
				if m, ok := cubes[i].merge(cubes[j]); ok {
					cubes[i] = m
					cubes = append(cubes[:j], cubes[j+1:]...)
					changed = true
				}
			}
		}
		// Containment removal.
		for i := 0; i < len(cubes); i++ {
			for j := 0; j < len(cubes); j++ {
				if i == j {
					continue
				}
				if cubes[i].Contains(cubes[j]) {
					cubes = append(cubes[:j], cubes[j+1:]...)
					if j < i {
						i--
					}
					changed = true
					j--
				}
			}
		}
	}
	out := NewCover(cv.width)
	for _, c := range cubes {
		out.Add(c)
	}
	return out
}
