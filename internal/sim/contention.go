package sim

import (
	"fmt"

	"sparcs/internal/arbiter"
)

// BitRequester is the optional word-level fast path of Requester: a
// source implementing it is driven directly on arbiter.BitVec words
// (bit i = phantom line i), skipping the []bool pack/unpack entirely.
// It is structurally identical to workload.BitGenerator, so the
// workload generators take the fast path without an import cycle.
// NextBits must advance the same state as Next — the two surfaces are
// interchangeable cycle-by-cycle.
type BitRequester interface {
	// NextBits returns the request word for the coming cycle after
	// observing prevGrant, the grants issued to these lines last cycle.
	// Bits at or above N() are ignored.
	NextBits(prevGrant arbiter.BitVec) arbiter.BitVec
}

// Requester is a closed-loop background traffic source for contention
// injection: each cycle Next observes the grants its lines received
// last cycle and fills the request lines for the coming cycle. It is
// structurally identical to workload.Generator, so any generator from
// internal/workload can be attached to a Config without an import cycle
// (workload already imports sim for its grid fan-out).
//
// Implementations must be deterministic and allocation-free in Next;
// Run passes setup-allocated scratch slices into the callback (or skips
// []bool entirely for BitRequesters), keeping the hot loop
// allocation-free.
type Requester interface {
	// Name identifies the traffic shape ("bursty", "hog", ...).
	Name() string
	// N returns the number of phantom request lines the source claims.
	N() int
	// Next fills req for one cycle after observing prevGrant, the
	// grants issued to these lines last cycle. len(req) and
	// len(prevGrant) equal N.
	Next(req, prevGrant []bool)
	// Reset returns the source to its initial state. Run calls it once
	// at setup so a source replays identically across runs.
	Reset()
}

// StaticallySilent is the optional no-op marker for Requesters: a
// source reporting Silent() == true guarantees it never asserts a
// request, and Run elides it entirely — no phantom lines, no policy
// resizing, no per-cycle sampling — so a Config that differs from an
// uninstrumented one only by silent contention produces byte-identical
// Stats under every policy (including policies like the hierarchical
// tree whose internal structure depends on the total line count).
// workload.NewSilent implements it.
type StaticallySilent interface {
	// Silent reports whether the source is statically request-free.
	Silent() bool
}

// ContentionSource attaches one background phantom requester to the
// arbiter guarding a named resource. The source's N() lines are
// appended after the member tasks' request lines (in Config.Contention
// order when several sources share a resource), the arbitration policy
// is constructed over the widened line count, and the source competes
// for grants exactly like a compiled task — the grants it wins are fed
// back into its closed loop and starve or delay the real tasks.
//
// Sources are stateful: each Config needs its own instances (RunBatch
// runs configs concurrently).
type ContentionSource struct {
	// Resource names the arbitrated bank or physical channel; it must
	// have an arbiter in the Config.
	Resource string
	// Gen produces the phantom request lines.
	Gen Requester
}

// ContentionStats aggregates the background phantom lines' experience
// on one resource over a run, per phantom line in attachment order.
type ContentionStats struct {
	// Grants[i] is the number of cycles phantom line i held the
	// resource. These grants are not counted in Stats.GrantsByRes,
	// which remains member-task grants only.
	Grants []int
	// Waits[i] is the number of cycles phantom line i requested without
	// receiving the grant, including a wait still in progress when the
	// run ends (no censoring: a phantom starved for the whole run
	// reports the full run length).
	Waits []int
}

// contSource is one wired (non-elided) phantom source: its line window
// [off, off+n) in the owning arbInst's request/grant words. Sources
// implementing BitRequester run word-to-word; the rest go through
// setup-allocated []bool scratch.
type contSource struct {
	gen  Requester
	bits BitRequester // non-nil: the word-level fast path
	off  int
	n    int
	mask arbiter.BitVec // low n bits
	// []bool scratch for sources without a word-level path.
	reqBuf, grantBuf []bool
}

// next produces the source's request word for the coming cycle from its
// current request and previous-grant windows.
//
//sparcs:hotpath
func (cs *contSource) next(req, prevGrant arbiter.BitVec) arbiter.BitVec {
	if cs.bits != nil {
		return cs.bits.NextBits(prevGrant)
	}
	req.WriteBools(cs.reqBuf)
	prevGrant.WriteBools(cs.grantBuf)
	cs.gen.Next(cs.reqBuf, cs.grantBuf)
	return arbiter.PackBools(cs.reqBuf)
}

// wireContention validates the configured sources and appends phantom
// lines to the named arbiters. Called before policy construction so
// policies are sized over the widened line counts.
func wireContention(sources []ContentionSource, arbs map[string]*arbInst) error {
	for i, src := range sources {
		if src.Gen == nil {
			return fmt.Errorf("sim: contention source %d on %s has no generator", i, src.Resource)
		}
		// Validate before eliding, so a typo'd resource errors even when
		// the source is silent.
		ai := arbs[src.Resource]
		if ai == nil {
			return fmt.Errorf("sim: contention on %s, but no arbiter guards it", src.Resource)
		}
		n := src.Gen.N()
		if n < 1 {
			return fmt.Errorf("sim: contention source %d on %s claims %d lines", i, src.Resource, n)
		}
		if s, ok := src.Gen.(StaticallySilent); ok && s.Silent() {
			continue // the no-op path: statically silent sources are elided
		}
		if ai.width+n > arbiter.MaxN {
			return fmt.Errorf("sim: contention on %s widens its arbiter to %d request lines; the bitset kernel supports at most %d",
				src.Resource, ai.width+n, arbiter.MaxN)
		}
		src.Gen.Reset()
		cs := contSource{gen: src.Gen, off: ai.width, n: n, mask: arbiter.Mask(n)}
		if b, ok := src.Gen.(BitRequester); ok {
			cs.bits = b
		} else {
			cs.reqBuf = make([]bool, n)
			cs.grantBuf = make([]bool, n)
		}
		ai.sources = append(ai.sources, cs)
		ai.width += n
	}
	return nil
}

// sizePhantoms allocates the per-phantom-line counters once every source
// — single-resource and shared — has widened its arbiters.
func sizePhantoms(arbs map[string]*arbInst) {
	//sparcs:ignore determinism each instance is sized independently; iteration order cannot change the result
	for _, ai := range arbs {
		if phantoms := ai.width - ai.memberN; phantoms > 0 {
			ai.phGrants = make([]int, phantoms)
			ai.phWaits = make([]int, phantoms)
		}
	}
}
