// Package other is outside the cycle-rate packages: bitwidth draws no
// diagnostics here.
package other

func Check(n int, v uint64) bool {
	if n > 64 {
		return false
	}
	return v<<uint(n+1) != 0
}
