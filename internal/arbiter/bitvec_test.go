package arbiter

import (
	"math/rand"
	"testing"
)

// TestMaskEdges pins the valid-lane mask at the word boundaries the
// kernel leans on: Mask(64) must be all-ones (a plain 1<<64-1 would
// shift out), Mask(0) empty.
func TestMaskEdges(t *testing.T) {
	cases := []struct {
		n    int
		want BitVec
	}{
		{0, 0},
		{1, 1},
		{2, 3},
		{16, 0xFFFF},
		{63, ^BitVec(0) >> 1},
		{64, ^BitVec(0)},
		{100, ^BitVec(0)},
	}
	for _, tc := range cases {
		if got := Mask(tc.n); got != tc.want {
			t.Errorf("Mask(%d) = %064b, want %064b", tc.n, got, tc.want)
		}
	}
}

// TestBitVecAccessors: Bit/Count/FirstSet against hand-built words,
// including both word halves and the empty word.
func TestBitVecAccessors(t *testing.T) {
	var v BitVec = 1<<0 | 1<<17 | 1<<63
	for i := 0; i < 64; i++ {
		want := i == 0 || i == 17 || i == 63
		if v.Bit(i) != want {
			t.Errorf("Bit(%d) = %v, want %v", i, v.Bit(i), want)
		}
	}
	if v.Count() != 3 {
		t.Errorf("Count() = %d, want 3", v.Count())
	}
	if v.FirstSet() != 0 {
		t.Errorf("FirstSet() = %d, want 0", v.FirstSet())
	}
	if got := (BitVec(1) << 63).FirstSet(); got != 63 {
		t.Errorf("FirstSet() of bit 63 = %d, want 63", got)
	}
	if got := BitVec(0).FirstSet(); got != -1 {
		t.Errorf("FirstSet() of empty word = %d, want -1", got)
	}
	if BitVec(0).Count() != 0 {
		t.Errorf("Count() of empty word = %d, want 0", BitVec(0).Count())
	}
}

// TestRotr checks the scan rotation against a naive per-bit rotation
// for every (n, s) pair, so the branchless form can't hide an
// off-by-one at the word boundary.
func TestRotr(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for n := 1; n <= 64; n++ {
		v := BitVec(r.Uint64()) & Mask(n)
		for s := 0; s < n; s++ {
			want := BitVec(0)
			for i := 0; i < n; i++ {
				if v.Bit((i + s) % n) {
					want |= 1 << uint(i)
				}
			}
			if got := v.rotr(s, n); got != want {
				t.Fatalf("rotr(s=%d, n=%d) of %064b = %064b, want %064b", s, n, v, got, want)
			}
		}
	}
}

// TestPackWriteRoundTrip: PackBools and WriteBools are inverses at
// every width, including the full 64-lane word.
func TestPackWriteRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 16, 31, 32, 33, 63, 64} {
		b := make([]bool, n)
		for i := range b {
			b[i] = r.Intn(2) == 0
		}
		v := PackBools(b)
		if v&^Mask(n) != 0 {
			t.Fatalf("n=%d: PackBools set bits above the lane mask: %064b", n, v)
		}
		out := make([]bool, n)
		v.WriteBools(out)
		for i := range b {
			if out[i] != b[i] {
				t.Fatalf("n=%d lane %d: round trip %v -> %064b -> %v", n, i, b, v, out)
			}
		}
	}
}

// FuzzBitVecRoundTrip: for any word and width, WriteBools then
// PackBools must reproduce exactly the low-n bits — the invariant every
// []bool adapter in the arbiter, sim, and workload layers rests on.
func FuzzBitVecRoundTrip(f *testing.F) {
	f.Add(uint64(0), 1)
	f.Add(uint64(0xDEADBEEF), 16)
	f.Add(^uint64(0), 64)
	f.Add(uint64(1)<<63, 63)
	f.Fuzz(func(t *testing.T, word uint64, n int) {
		if n < 1 || n > 64 {
			t.Skip()
		}
		v := BitVec(word)
		b := make([]bool, n)
		v.WriteBools(b)
		back := PackBools(b)
		if want := v & Mask(n); back != want {
			t.Fatalf("n=%d: %064b -> bools -> %064b, want %064b", n, v, back, want)
		}
		for i := 0; i < n; i++ {
			if b[i] != v.Bit(i) {
				t.Fatalf("n=%d lane %d: WriteBools %v, Bit %v", n, i, b[i], v.Bit(i))
			}
		}
	})
}
