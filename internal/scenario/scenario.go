// Package scenario is the online dynamic-reconfiguration engine the
// static SPARCS flow cannot express: compiled designs arrive over
// simulated time (workload-generator arrival processes), are placed on
// one shared CLB fabric by a strip-packing allocator with delayed
// compaction (arXiv:1001.4493), pay a per-area reconfiguration latency
// through a single configuration port, and execute their temporal
// partitions through the allocation-free sim hot loop. A hybrid
// prefetch scheduler (static stage order + runtime reorder by earliest
// expected need, after arXiv:0710.4796) overlaps the port with resident
// execution; a no-prefetch mode and an offline full-knowledge oracle
// bound bracket it.
package scenario

import (
	"fmt"
	"math"

	"sparcs/internal/core"
	"sparcs/internal/sim"
)

// Class is one admissible design template. Arrivals cycle round-robin
// over the configured classes, so a two-class scenario interleaves them
// deterministically.
type Class struct {
	// Name labels the class in reports.
	Name string
	// Design is the compiled design every job of this class instantiates.
	Design *core.Design
	// Opts are the run options each stage executes under — the Partition
	// options carry the arbiter area model that prices the class's
	// fabric footprint.
	Opts core.Options
}

// Placement modes for the strip allocator.
const (
	PlaceFirstFit = "firstfit"
	PlaceBestFit  = "bestfit"
)

// Prefetch modes for the configuration port scheduler.
const (
	PrefetchNone   = "none"   // load a stage only once its job is waiting on it
	PrefetchHybrid = "hybrid" // additionally prefetch next stages behind execution
)

// Config describes one online scenario.
type Config struct {
	// Classes are the job templates; at least one.
	Classes []Class
	// Arrivals is the arrival-process spec, "shape[:param][/stride]"
	// over the workload generator grammar ("bernoulli:0.02",
	// "bursty/64", ...). Empty means every job arrives at cycle 0.
	Arrivals string
	// Jobs is the total number of arrivals; at least one. The first job
	// always arrives at cycle 0 (normalizing makespans across arrival
	// seeds); the rest follow the arrival process.
	Jobs int
	// Seed drives the arrival process and any cross-contention streams
	// (0 means 1).
	Seed uint64
	// Placement is PlaceFirstFit (default) or PlaceBestFit.
	Placement string
	// Prefetch is PrefetchNone (default) or PrefetchHybrid.
	Prefetch string
	// ReconfigCyclesPerCLB is the configuration-port cost of one CLB;
	// 0 means 1. Each stage swap-in charges stageArea × this.
	ReconfigCyclesPerCLB int
	// CompactionDelay is the number of cycles a fragmentation-blocked
	// placement waits before the strip is compacted (arXiv:1001.4493's
	// delayed task-movement); negative disables compaction entirely.
	// Moved residents stall for their area × ReconfigCyclesPerCLB.
	CompactionDelay int
	// FabricCols/FabricRows are the CLB fabric dimensions; both 0 means
	// the first class's board FabricDims.
	FabricCols, FabricRows int
	// MaxCycles is the engine watchdog; 0 means 5,000,000.
	MaxCycles int
	// CrossContention, when non-empty, is a workload spec injected as
	// phantom request lines on every arbiter of a running stage, one
	// line per co-resident (capped at MaxCrossLines) — the fabric-bus
	// interference neighbors impose on each other. Empty keeps stage
	// executions bit-identical to a solo System.Run.
	CrossContention string
	// MaxCrossLines caps the phantom lines per arbiter; 0 means 4.
	MaxCrossLines int
	// KeepStats retains each job's per-stage sim.Stats and final memory
	// image in its JobStats (costly under churn; tests use it).
	KeepStats bool
}

func (c *Config) placement() (bestFit bool, err error) {
	switch c.Placement {
	case "", PlaceFirstFit:
		return false, nil
	case PlaceBestFit:
		return true, nil
	}
	return false, fmt.Errorf("scenario: unknown placement %q (want %s or %s)", c.Placement, PlaceFirstFit, PlaceBestFit)
}

func (c *Config) prefetch() (hybrid bool, err error) {
	switch c.Prefetch {
	case "", PrefetchNone:
		return false, nil
	case PrefetchHybrid:
		return true, nil
	}
	return false, fmt.Errorf("scenario: unknown prefetch %q (want %s or %s)", c.Prefetch, PrefetchNone, PrefetchHybrid)
}

func (c *Config) perCLB() int {
	if c.ReconfigCyclesPerCLB <= 0 {
		return 1
	}
	return c.ReconfigCyclesPerCLB
}

func (c *Config) maxCycles() int {
	if c.MaxCycles <= 0 {
		return 5_000_000
	}
	return c.MaxCycles
}

func (c *Config) maxCrossLines() int {
	if c.MaxCrossLines <= 0 {
		return 4
	}
	return c.MaxCrossLines
}

func (c *Config) seed() uint64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// rectFor sizes a footprint of area CLBs as a near-square rectangle
// clamped to the fabric height: h = min(rows, ceil(sqrt(area))),
// w = ceil(area/h).
func rectFor(area, rows int) (w, h int) {
	if area < 1 {
		area = 1
	}
	h = int(math.Ceil(math.Sqrt(float64(area))))
	if h > rows {
		h = rows
	}
	w = (area + h - 1) / h
	return w, h
}

// JobStats is one job's lifecycle record.
type JobStats struct {
	ID    int
	Class string
	// Arrive/Place/Finish are engine cycles; QueueWait = Place−Arrive.
	Arrive, Place, Finish int
	QueueWait             int
	// Exec counts cycles spent executing stages; Stall counts resident
	// cycles lost to reconfiguration waits and compaction moves.
	Exec, Stall int
	// ArbWait sums the job's per-task arbiter wait cycles across stages
	// (the paper's contention metric, here under churn).
	ArbWait int
	// Timeouts counts stages that hit the per-stage cycle watchdog.
	Timeouts int
	// X, Y, W, H is the job's (final) fabric rectangle.
	X, Y, W, H int
	// Stages and Memory are retained only under Config.KeepStats.
	Stages []*sim.Stats `json:"-"`
	Memory *sim.Memory  `json:"-"`
}

// Result aggregates one scenario run.
type Result struct {
	// Makespan is the cycle the last job finished; OracleMakespan is
	// the offline full-knowledge lower bound (max of job critical
	// paths, configuration-port saturation, and fabric area-time).
	Makespan       int
	OracleMakespan int
	// ExecCycles and StallCycles total resident cycles spent executing
	// vs. stalled on reconfiguration (port waits + compaction moves);
	// StallFraction = Stall/(Exec+Stall).
	ExecCycles    int64
	StallCycles   int64
	StallFraction float64
	// LoadCycles is the total configuration-port busy time; PortBusyFraction
	// normalizes it by the makespan.
	LoadCycles       int64
	PortBusyFraction float64
	// QueueWaitP50/P99 bound the admission-wait distribution (log2
	// buckets, workload.Hist semantics); PlaceFails counts cycles the
	// queue head could not be placed; MaxQueue is the deepest backlog;
	// Compactions counts strip repacks and MovedResidents the residents
	// they relocated.
	QueueWaitP50, QueueWaitP99 int
	PlaceFails                 int
	MaxQueue                   int
	Compactions                int
	MovedResidents             int
	// ArbWaitCycles sums arbiter waits across all jobs' stages.
	ArbWaitCycles int64
	Timeouts      int
	Jobs          []JobStats
}

// Run executes the scenario to completion (every job finished) or the
// watchdog, whichever comes first.
func Run(cfg Config) (*Result, error) {
	e, err := newEngine(&cfg)
	if err != nil {
		return nil, err
	}
	return e.run()
}
