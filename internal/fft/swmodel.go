package fft

import "math"

// Software baseline: the paper compared against a software 2-D FFT on a
// 150 MHz Pentium with 48 MB of RAM, reporting 6.8 s for a 512x512 image.
// That machine no longer exists, so the baseline is a calibrated cost
// model: a full-resolution radix-2 2-D FFT (rows + columns) at a fixed
// cycles-per-butterfly rate.
//
// SWCyclesPerButterfly = 430 reproduces the paper's own endpoint
// (2 * 512 * (512/2 * 9) = 2.36M butterflies * 430 / 150 MHz = 6.77 s);
// the constant absorbs the era's double-precision FPU latency and the
// cache misses of column-major strides.
const (
	// PentiumMHz is the baseline CPU clock.
	PentiumMHz = 150.0
	// SWCyclesPerButterfly is the calibrated per-butterfly cost.
	SWCyclesPerButterfly = 430.0
)

// SoftwareSeconds models the Pentium-150 software execution time of a
// full n x n 2-D FFT (n a power of two).
func SoftwareSeconds(n int) float64 {
	logN := math.Log2(float64(n))
	butterflies := 2.0 * float64(n) * (float64(n) / 2.0 * logN)
	return butterflies * SWCyclesPerButterfly / (PentiumMHz * 1e6)
}

// Tiles returns the number of 4x4 tiles in an n x n image.
func Tiles(n int) int { return (n / TileDim) * (n / TileDim) }

// HardwareSeconds extrapolates the hardware execution time of an n x n
// image from the measured steady-state cycles per tile (summed across the
// three temporal partitions) at the 6 MHz system clock.
func HardwareSeconds(cyclesPerTile float64, n int) float64 {
	return cyclesPerTile * float64(Tiles(n)) / (ClockMHz * 1e6)
}
