package workload

// Hist is a standalone log2 histogram with the same bucket layout and
// quantile semantics as Metrics.WaitHist, for callers that track latency
// distributions outside a Drive run (sparcsd's per-class SLO metrics,
// scenario queueing stats). The zero value is ready to use.
type Hist struct {
	Buckets [WaitBuckets]int64
	Count   int64
}

// Observe records one sample. Negative samples clamp to zero (bucket 0).
func (h *Hist) Observe(v int) {
	if v < 0 {
		v = 0
	}
	h.Buckets[histBucket(v)]++
	h.Count++
}

// Percentile returns an upper bound on the q-quantile of observed
// samples, with the same edge conventions as Metrics.PercentileWait.
func (h *Hist) Percentile(q float64) int {
	return percentile(h.Buckets, q)
}
