package sim

import "fmt"

// Requester is a closed-loop background traffic source for contention
// injection: each cycle Next observes the grants its lines received
// last cycle and fills the request lines for the coming cycle. It is
// structurally identical to workload.Generator, so any generator from
// internal/workload can be attached to a Config without an import cycle
// (workload already imports sim for its grid fan-out).
//
// Implementations must be deterministic and allocation-free in Next;
// Run slices its reusable request/grant vectors directly into the
// callback, keeping the hot loop allocation-free.
type Requester interface {
	// Name identifies the traffic shape ("bursty", "hog", ...).
	Name() string
	// N returns the number of phantom request lines the source claims.
	N() int
	// Next fills req for one cycle after observing prevGrant, the
	// grants issued to these lines last cycle. len(req) and
	// len(prevGrant) equal N.
	Next(req, prevGrant []bool)
	// Reset returns the source to its initial state. Run calls it once
	// at setup so a source replays identically across runs.
	Reset()
}

// StaticallySilent is the optional no-op marker for Requesters: a
// source reporting Silent() == true guarantees it never asserts a
// request, and Run elides it entirely — no phantom lines, no policy
// resizing, no per-cycle sampling — so a Config that differs from an
// uninstrumented one only by silent contention produces byte-identical
// Stats under every policy (including policies like the hierarchical
// tree whose internal structure depends on the total line count).
// workload.NewSilent implements it.
type StaticallySilent interface {
	// Silent reports whether the source is statically request-free.
	Silent() bool
}

// ContentionSource attaches one background phantom requester to the
// arbiter guarding a named resource. The source's N() lines are
// appended after the member tasks' request lines (in Config.Contention
// order when several sources share a resource), the arbitration policy
// is constructed over the widened line count, and the source competes
// for grants exactly like a compiled task — the grants it wins are fed
// back into its closed loop and starve or delay the real tasks.
//
// Sources are stateful: each Config needs its own instances (RunBatch
// runs configs concurrently).
type ContentionSource struct {
	// Resource names the arbitrated bank or physical channel; it must
	// have an arbiter in the Config.
	Resource string
	// Gen produces the phantom request lines.
	Gen Requester
}

// ContentionStats aggregates the background phantom lines' experience
// on one resource over a run, per phantom line in attachment order.
type ContentionStats struct {
	// Grants[i] is the number of cycles phantom line i held the
	// resource. These grants are not counted in Stats.GrantsByRes,
	// which remains member-task grants only.
	Grants []int
	// Waits[i] is the number of cycles phantom line i requested without
	// receiving the grant, including a wait still in progress when the
	// run ends (no censoring: a phantom starved for the whole run
	// reports the full run length).
	Waits []int
}

// contSource is one wired (non-elided) phantom source: its line window
// [off, off+n) in the owning arbInst's request/grant vectors.
type contSource struct {
	gen Requester
	off int
	n   int
}

// wireContention validates the configured sources and appends phantom
// lines to the named arbiters. Called before policy construction so
// policies are sized over the widened line counts.
func wireContention(sources []ContentionSource, arbs map[string]*arbInst) error {
	for i, src := range sources {
		if src.Gen == nil {
			return fmt.Errorf("sim: contention source %d on %s has no generator", i, src.Resource)
		}
		// Validate before eliding, so a typo'd resource errors even when
		// the source is silent.
		ai := arbs[src.Resource]
		if ai == nil {
			return fmt.Errorf("sim: contention on %s, but no arbiter guards it", src.Resource)
		}
		n := src.Gen.N()
		if n < 1 {
			return fmt.Errorf("sim: contention source %d on %s claims %d lines", i, src.Resource, n)
		}
		if s, ok := src.Gen.(StaticallySilent); ok && s.Silent() {
			continue // the no-op path: statically silent sources are elided
		}
		src.Gen.Reset()
		ai.sources = append(ai.sources, contSource{gen: src.Gen, off: len(ai.req), n: n})
		ai.req = append(ai.req, make([]bool, n)...)
		ai.grant = append(ai.grant, make([]bool, n)...)
	}
	return nil
}

// sizePhantoms allocates the per-phantom-line counters once every source
// — single-resource and shared — has widened its arbiters.
func sizePhantoms(arbs map[string]*arbInst) {
	for _, ai := range arbs {
		if phantoms := len(ai.req) - ai.memberN; phantoms > 0 {
			ai.phGrants = make([]int, phantoms)
			ai.phWaits = make([]int, phantoms)
		}
	}
}
