package sparcs_test

import (
	"reflect"
	"testing"

	"sparcs"
)

// TestScenarioZeroChurnMatchesRun is the scenario engine's anchor to
// the static flow: one job, no neighbors, no cross-contention must be
// the same experiment as a plain System.Run — identical per-stage
// sim.Stats and an identical final memory image, for a bare run and for
// a composed one (policy + background contention + seed).
func TestScenarioZeroChurnMatchesRun(t *testing.T) {
	sys, err := sparcs.FFTSystem(2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts []sparcs.RunOption
	}{
		{"bare", nil},
		{"composed", []sparcs.RunOption{
			sparcs.WithPolicy("wrr:2"),
			sparcs.WithContention("M1=hog/1"),
			sparcs.WithSeed(7),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := sys.Run(tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			for _, prefetch := range []string{sparcs.PrefetchNone, sparcs.PrefetchHybrid} {
				res, err := sparcs.RunScenario(sparcs.ScenarioConfig{
					Entries:   []sparcs.ScenarioEntry{{System: sys, Options: tc.opts}},
					Jobs:      1,
					Prefetch:  prefetch,
					KeepStats: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Jobs) != 1 {
					t.Fatalf("%d job reports, want 1", len(res.Jobs))
				}
				j := res.Jobs[0]
				if len(j.Stages) != len(ref.Stages) {
					t.Fatalf("prefetch=%s: %d stage stats, want %d", prefetch, len(j.Stages), len(ref.Stages))
				}
				for i := range ref.Stages {
					if !reflect.DeepEqual(ref.Stages[i].Stats, j.Stages[i]) {
						t.Fatalf("prefetch=%s: stage %d stats diverge from System.Run:\nrun:      %+v\nscenario: %+v",
							prefetch, i, ref.Stages[i].Stats, j.Stages[i])
					}
				}
				if !reflect.DeepEqual(ref.Memory, j.Memory) {
					t.Fatalf("prefetch=%s: final memory image diverges from System.Run", prefetch)
				}
				if j.ArbWait == 0 && tc.name == "composed" {
					t.Fatalf("composed run reports zero arbiter wait; contention was dropped")
				}
			}
		})
	}
}

// TestRunScenarioValidation pins the facade's error surface.
func TestRunScenarioValidation(t *testing.T) {
	sys, err := sparcs.FFTSystem(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sparcs.RunScenario(sparcs.ScenarioConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := sparcs.RunScenario(sparcs.ScenarioConfig{
		Entries: []sparcs.ScenarioEntry{{System: sys, Options: []sparcs.RunOption{sparcs.WithMemory(sparcs.NewMemory())}}},
		Jobs:    1,
	}); err == nil {
		t.Fatal("WithMemory accepted: scenario jobs must own their memory images")
	}
	if _, err := sparcs.RunScenario(sparcs.ScenarioConfig{
		Entries:         []sparcs.ScenarioEntry{{System: sys}},
		Jobs:            1,
		CrossContention: "no-such-shape",
	}); err == nil {
		t.Fatal("bad cross-contention spec accepted")
	}
	if _, err := sparcs.RunScenario(sparcs.ScenarioConfig{
		Entries: []sparcs.ScenarioEntry{{System: sys, Options: []sparcs.RunOption{sparcs.WithPolicy("no-such-policy")}}},
		Jobs:    1,
	}); err == nil {
		t.Fatal("bad policy accepted")
	}
}
