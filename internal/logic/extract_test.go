package logic

import (
	"math/rand"
	"testing"
)

func TestLitEncoding(t *testing.T) {
	l := MkLit(3, false)
	if l.Var() != 3 || l.Neg() {
		t.Fatalf("MkLit(3,false) = var %d neg %v", l.Var(), l.Neg())
	}
	l = MkLit(7, true)
	if l.Var() != 7 || !l.Neg() {
		t.Fatalf("MkLit(7,true) = var %d neg %v", l.Var(), l.Neg())
	}
}

func TestExtractPairsFindsChainPrefix(t *testing.T) {
	// Three cubes sharing the prefix !a&!b (arbiter-style scan chain):
	// extraction should introduce a product for it.
	on := MustCover(4, "001-", "00-1", "0011")
	ex := ExtractPairs([]*Cover{on}, 2)
	if len(ex.Products) == 0 {
		t.Fatal("expected at least one extracted product")
	}
	// Function must be preserved.
	in := make([]bool, 4)
	for m := 0; m < 16; m++ {
		for i := 0; i < 4; i++ {
			in[i] = m&(1<<i) != 0
		}
		if ex.EvalCover(0, in) != on.Eval(in) {
			t.Fatalf("extraction changed function at %v", in)
		}
	}
}

func TestExtractSharesAcrossCovers(t *testing.T) {
	// The same pair appears in two covers; it must be extracted once.
	a := MustCover(3, "110")
	b := MustCover(3, "11-")
	ex := ExtractPairs([]*Cover{a, b}, 2)
	if len(ex.Products) != 1 {
		t.Fatalf("products = %d, want exactly 1 shared", len(ex.Products))
	}
	p := ex.Products[0]
	if p.Or {
		t.Fatal("expected AND product")
	}
}

func TestExtractMinOccRespected(t *testing.T) {
	on := MustCover(3, "110")
	ex := ExtractPairs([]*Cover{on}, 5)
	if len(ex.Products) != 0 {
		t.Fatalf("minOcc=5 should extract nothing, got %d products", len(ex.Products))
	}
}

func TestFactorOrMergesSingleVariants(t *testing.T) {
	// (a & c) | (b & c) -> (a|b) & c.
	on := MustCover(3, "1-1", "-11")
	ex := Factor([]*Cover{on}, FactorOptions{MergeOr: true, PairMinOcc: 1 << 30})
	if len(ex.Covers[0]) != 1 {
		t.Fatalf("cubes after merge = %d, want 1", len(ex.Covers[0]))
	}
	foundOr := false
	for _, p := range ex.Products {
		if p.Or {
			foundOr = true
		}
	}
	if !foundOr {
		t.Fatal("expected an OR product")
	}
	in := make([]bool, 3)
	for m := 0; m < 8; m++ {
		for i := 0; i < 3; i++ {
			in[i] = m&(1<<i) != 0
		}
		if ex.EvalCover(0, in) != on.Eval(in) {
			t.Fatalf("OR merge changed function at %v", in)
		}
	}
}

func TestFactorOrCancelsComplementaryPair(t *testing.T) {
	// (a & c) | (!a & c) -> c.
	on := MustCover(2, "11", "01")
	ex := Factor([]*Cover{on}, FactorOptions{MergeOr: true, PairMinOcc: 1 << 30})
	if len(ex.Covers[0]) != 1 {
		t.Fatalf("cubes = %d, want 1", len(ex.Covers[0]))
	}
	if len(ex.Covers[0][0]) != 1 {
		t.Fatalf("merged cube lits = %v, want just c", ex.Covers[0][0])
	}
	if len(ex.Products) != 0 {
		t.Fatal("complementary merge should not create products")
	}
}

func TestFactorOrSharesOrProducts(t *testing.T) {
	// The same (a|b) variant pair in two covers shares one OR product.
	c1 := MustCover(3, "1-1", "-11")
	c2 := MustCover(3, "1-0", "-10")
	ex := Factor([]*Cover{c1, c2}, FactorOptions{MergeOr: true, PairMinOcc: 1 << 30})
	orCount := 0
	for _, p := range ex.Products {
		if p.Or {
			orCount++
		}
	}
	if orCount != 1 {
		t.Fatalf("OR products = %d, want 1 shared", orCount)
	}
}

// Property: Factor preserves every cover's function under random options.
func TestFactorEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 150; trial++ {
		width := 2 + r.Intn(5)
		var covers []*Cover
		for c := 0; c < 1+r.Intn(3); c++ {
			covers = append(covers, randomCover(r, width, 1+r.Intn(6)))
		}
		opts := FactorOptions{
			PairMinOcc: 2 + r.Intn(3),
			MergeOr:    r.Intn(2) == 0,
		}
		ex := Factor(covers, opts)
		in := make([]bool, width)
		for m := 0; m < 1<<uint(width); m++ {
			for i := 0; i < width; i++ {
				in[i] = m&(1<<uint(i)) != 0
			}
			for ci, cv := range covers {
				if ex.EvalCover(ci, in) != cv.Eval(in) {
					t.Fatalf("trial %d cover %d: factored function differs at %v\norig:\n%s",
						trial, ci, in, cv)
				}
			}
		}
	}
}

func TestFactorEmptyCover(t *testing.T) {
	ex := Factor([]*Cover{NewCover(3)}, FactorOptions{MergeOr: true})
	if len(ex.Covers[0]) != 0 {
		t.Fatal("empty cover should stay empty")
	}
	if ex.EvalCover(0, []bool{false, false, false}) {
		t.Fatal("empty cover evaluates false")
	}
}

func TestFactorUniversalCube(t *testing.T) {
	on := NewCover(2)
	on.Add(NewCube(2))
	ex := Factor([]*Cover{on}, FactorOptions{MergeOr: true})
	if !ex.EvalCover(0, []bool{false, false}) {
		t.Fatal("universal cover evaluates true")
	}
}
