package analysis_test

import (
	"testing"

	"sparcs/internal/analysis"
	"sparcs/internal/analysis/vettest"
)

// Each analyzer runs over a seeded-violation testdata tree: wrong code
// must be flagged exactly where the `// want` expectations say, clean
// and out-of-scope code must stay silent.

func TestHotpath(t *testing.T) {
	vettest.Run(t, "testdata/hotpath", analysis.Hotpath, "hot")
}

func TestDeterminism(t *testing.T) {
	vettest.Run(t, "testdata/determinism", analysis.Determinism, "sparcs/internal/sim", "other")
}

func TestBitwidth(t *testing.T) {
	vettest.Run(t, "testdata/bitwidth", analysis.Bitwidth, "sparcs/internal/arbiter", "other")
}

func TestErrSentinel(t *testing.T) {
	vettest.Run(t, "testdata/errsentinel", analysis.ErrSentinel, "errsent")
}

func TestLockorder(t *testing.T) {
	vettest.Run(t, "testdata/lockorder", analysis.Lockorder, "locks")
}

func TestGoroleak(t *testing.T) {
	vettest.Run(t, "testdata/goroleak", analysis.Goroleak, "sparcs/internal/service", "other")
}

// TestBrokenPackage exercises the hardened loader: a type-error package
// and its dependent surface as driver diagnostics at pointed positions,
// while a healthy sibling package is still analyzed.
func TestBrokenPackage(t *testing.T) {
	vettest.Run(t, "testdata/broken", analysis.Hotpath, "brokendep", "uses", "fine")
}

// TestIgnores exercises the //sparcs:ignore machinery end to end:
// trailing and standalone suppression, per-analyzer scoping, and the
// driver's malformed/unused reporting.
func TestIgnores(t *testing.T) {
	vettest.Run(t, "testdata/ignore", analysis.Hotpath, "ign")
}
