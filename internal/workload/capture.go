// Capture → replay: the bridge that closes the trace loop between the
// full-system simulator and the standalone workload engine. Request
// streams measured by sim.Run (recorded in Stats.ArbiterTraces) convert
// into replayable trace generators, so a policy grid can pit the FFT's
// actual arbitration traffic against the synthetic shapes.

package workload

import (
	"fmt"

	"sparcs/internal/arbiter"
)

// Column is one workload column of an evaluation grid: a named
// generator factory. Grids construct one fresh generator per cell
// (cells run concurrently and generators are stateful), so a Column
// carries the recipe, not the instance. SpecColumn wraps the textual
// grammar; TraceColumn and FromArbiterTrace wrap recorded request
// patterns that no spec string can express.
type Column struct {
	// Name labels the column in results and tables.
	Name string
	// New constructs the column's generator for an n-line arbiter.
	// Open-loop replay columns ignore seed.
	New func(n int, seed uint64) (Generator, error)
}

// SpecColumn returns the column for a textual workload spec
// ("bernoulli:0.30", "hog", ...), deferring construction to the grid.
func SpecColumn(spec string) Column {
	return Column{
		Name: spec,
		New:  func(n int, seed uint64) (Generator, error) { return NewGenerator(spec, n, seed) },
	}
}

// TraceColumn returns a column replaying a fixed request pattern
// through NewTrace. Every step must have exactly the same width, which
// becomes the only arbiter size the column accepts.
func TraceColumn(name string, steps [][]bool) Column {
	return Column{
		Name: name,
		New: func(n int, seed uint64) (Generator, error) {
			if len(steps) > 0 && len(steps[0]) != n {
				return nil, fmt.Errorf("workload: trace column %q is %d lines wide, grid wants %d", name, len(steps[0]), n)
			}
			return NewTrace(name, n, steps)
		},
	}
}

// FromArbiterTrace converts a request stream captured by the
// full-system simulator (one resource's sim.Stats.ArbiterTraces entry)
// into a replayable grid column: the per-cycle request vectors are
// copied out of the trace and replayed cyclically through NewTrace,
// open-loop, exactly as measured. The grant half of the trace is
// deliberately dropped — grants were the recording policy's decisions,
// and the point of replay is to let other policies re-decide them.
func FromArbiterTrace(name string, steps []arbiter.TraceStep) (Column, error) {
	if len(steps) == 0 {
		return Column{}, fmt.Errorf("workload: captured trace %q has no steps", name)
	}
	width := len(steps[0].Req)
	if width == 0 {
		return Column{}, fmt.Errorf("workload: captured trace %q has zero-width request vectors", name)
	}
	reqs := make([][]bool, len(steps))
	for c, s := range steps {
		if len(s.Req) != width {
			return Column{}, fmt.Errorf("workload: captured trace %q step %d is %d lines wide, step 0 had %d", name, c, len(s.Req), width)
		}
		reqs[c] = append([]bool(nil), s.Req...)
	}
	return TraceColumn(name, reqs), nil
}
