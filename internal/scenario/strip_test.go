package scenario

import (
	"sort"
	"testing"
)

// checkStrip fails the test on any packing-invariant violation.
func checkStrip(t *testing.T, s *strip, when string) {
	t.Helper()
	if err := s.check(); err != nil {
		t.Fatalf("%s: %v", when, err)
	}
}

func TestStripPlaceRemoveBasics(t *testing.T) {
	s := newStrip(10, 10, false)
	x, y, ok := s.place(0, 4, 3)
	if !ok || x != 0 || y != 0 {
		t.Fatalf("first placement at (%d,%d) ok=%v, want (0,0) true", x, y, ok)
	}
	// Same height rides the same shelf, next gap.
	x, y, ok = s.place(1, 4, 3)
	if !ok || x != 4 || y != 0 {
		t.Fatalf("second placement at (%d,%d) ok=%v, want (4,0) true", x, y, ok)
	}
	// Too wide for the remaining gap: opens a shelf above.
	x, y, ok = s.place(2, 6, 2)
	if !ok || x != 0 || y != 3 {
		t.Fatalf("third placement at (%d,%d) ok=%v, want (0,3) true", x, y, ok)
	}
	checkStrip(t, s, "after three placements")
	if s.free() != 100-12-12-12 {
		t.Fatalf("free = %d, want %d", s.free(), 100-36)
	}
	// Oversize requests fail cleanly.
	if _, _, ok := s.place(9, 11, 1); ok {
		t.Fatal("placement wider than the fabric succeeded")
	}
	if _, _, ok := s.place(9, 1, 11); ok {
		t.Fatal("placement taller than the fabric succeeded")
	}
	// Freeing the middle span reopens its gap for an equal rectangle.
	if !s.remove(1) {
		t.Fatal("remove(1) found nothing")
	}
	x, y, ok = s.place(3, 4, 3)
	if !ok || x != 4 || y != 0 {
		t.Fatalf("gap reuse at (%d,%d) ok=%v, want (4,0) true", x, y, ok)
	}
	checkStrip(t, s, "after gap reuse")
	// Removing the top shelf's only span shrinks the strip back.
	s.remove(2)
	if s.top() != 3 {
		t.Fatalf("top = %d after top shelf emptied, want 3", s.top())
	}
	if s.remove(99) {
		t.Fatal("remove of unknown id reported success")
	}
}

// TestStripBestFitPrefersTightShelf pins the fit modes against each
// other: with a tall half-empty shelf below a snug one, best-fit places
// a short rectangle on the shelf wasting the least height while
// first-fit grabs the bottom shelf.
func TestStripBestFitPrefersTightShelf(t *testing.T) {
	s := newStrip(10, 20, true)
	s.place(0, 4, 8) // shelf 0: height 8, gap from x=4
	s.place(1, 7, 2) // too wide for that gap: opens shelf 1, height 2
	x, y, ok := s.place(2, 3, 2)
	if !ok || y != 8 || x != 7 {
		t.Fatalf("best-fit placed at (%d,%d) ok=%v, want (7,8) on the height-2 shelf", x, y, ok)
	}
	checkStrip(t, s, "best fit")

	f := newStrip(10, 20, false)
	f.place(0, 4, 8)
	f.place(1, 7, 2)
	if _, y, ok := f.place(2, 3, 2); !ok || y != 0 {
		t.Fatalf("first-fit placed at y=%d ok=%v, want y=0", y, ok)
	}
}

func TestStripCompact(t *testing.T) {
	s := newStrip(10, 3, false)
	s.place(0, 3, 3) // x=0
	s.place(1, 2, 3) // x=3
	s.place(2, 3, 3) // x=5
	s.place(3, 2, 3) // x=8
	// Two departures leave two 2-wide gaps: 4 columns free in total,
	// but no contiguous 4-wide hole...
	s.remove(1)
	s.remove(3)
	if _, _, ok := s.place(4, 4, 3); ok {
		t.Fatal("placement should be fragmentation-blocked before compaction")
	}
	// ...until compaction slides the residents left.
	moved := s.compact()
	checkStrip(t, s, "after compact")
	if len(moved) != 1 || moved[0] != 2 {
		t.Fatalf("moved = %v, want [2] (id 2 slides left)", moved)
	}
	if x, _, ok := s.place(4, 4, 3); !ok || x != 6 {
		t.Fatalf("post-compact placement x=%d ok=%v, want x=6 true", x, ok)
	}
	checkStrip(t, s, "after post-compact placement")
}

// splitmix64 is the test's deterministic PRNG (no global rand state).
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TestStripRandomSweep is the CheckAll-style exhaustive exercise: for
// both fit modes, a deterministic random stream of place / remove /
// compact operations with the packing invariants verified after every
// single operation — no overlap, nothing outside the fabric, shelf
// bookkeeping consistent — plus conservation of free area.
func TestStripRandomSweep(t *testing.T) {
	for _, bestFit := range []bool{false, true} {
		mode := "firstfit"
		if bestFit {
			mode = "bestfit"
		}
		t.Run(mode, func(t *testing.T) {
			rng := splitmix64(42)
			s := newStrip(32, 24, bestFit)
			live := map[int]int{} // id -> area
			next := 0
			usedArea := 0
			for op := 0; op < 4000; op++ {
				switch r := rng.next() % 10; {
				case r < 6: // place
					w := int(rng.next()%12) + 1
					h := int(rng.next()%8) + 1
					if _, _, ok := s.place(next, w, h); ok {
						live[next] = w * h
						usedArea += w * h
						next++
					}
				case r < 9: // remove a deterministically chosen live id
					if len(live) == 0 {
						continue
					}
					ids := make([]int, 0, len(live))
					for id := range live {
						ids = append(ids, id)
					}
					sort.Ints(ids)
					id := ids[rng.next()%uint64(len(ids))]
					if !s.remove(id) {
						t.Fatalf("op %d: live id %d not found", op, id)
					}
					usedArea -= live[id]
					delete(live, id)
				default:
					s.compact()
				}
				if err := s.check(); err != nil {
					t.Fatalf("op %d: %v", op, err)
				}
				if got := 32*24 - s.free(); got != usedArea {
					t.Fatalf("op %d: used area %d, want %d", op, got, usedArea)
				}
				for id := range live {
					if _, _, _, _, ok := s.rectOf(id); !ok {
						t.Fatalf("op %d: live id %d lost its rectangle", op, id)
					}
				}
			}
		})
	}
}
