package core

import (
	"errors"
	"reflect"
	"testing"

	"sparcs/internal/arbiter"
	"sparcs/internal/sim"
	"sparcs/internal/workload"
)

// TestDuplicateResourceRejected pins the typed rejection of duplicate
// resources across all three parser front ends — and that the
// compositional cases (single+shared on one resource, repeated shared
// spans) remain accepted: those describe independent background
// processes, not a silently merged one.
func TestDuplicateResourceRejected(t *testing.T) {
	assertDup := func(t *testing.T, err error, resource string) {
		t.Helper()
		var dup *DuplicateResourceError
		if !errors.As(err, &dup) {
			t.Fatalf("want *DuplicateResourceError, got %v", err)
		}
		if dup.Resource != resource {
			t.Fatalf("error names resource %q, want %q", dup.Resource, resource)
		}
	}

	specs, err := ParseContention("M1=hog,M1=bursty")
	if specs != nil {
		t.Fatalf("duplicate list returned partial specs %+v", specs)
	}
	assertDup(t, err, "M1")

	if _, err := ParseContention("M1=hog,M3=bursty"); err != nil {
		t.Fatalf("distinct resources rejected: %v", err)
	}

	shared, err := ParseSharedContention("M1+M3+M1=corr")
	if shared != nil {
		t.Fatalf("duplicate span returned partial specs %+v", shared)
	}
	assertDup(t, err, "M1")

	single, mixed, err := ParseMixedContention("M1=hog,M1=bursty,M2+M3=corr")
	if single != nil || mixed != nil {
		t.Fatalf("duplicate mixed list returned partial specs %+v / %+v", single, mixed)
	}
	assertDup(t, err, "M1")

	// A resource under both independent and correlated load is two
	// distinct background processes — still accepted.
	if _, _, err := ParseMixedContention("M1=hog,M1+M3=corr"); err != nil {
		t.Fatalf("single+shared composition rejected: %v", err)
	}
	// Repeating a shared span across entries adds lanes of another
	// correlated source — still accepted.
	if _, err := ParseSharedContention("M1+M3=corr,M1+M3=corr:0.50"); err != nil {
		t.Fatalf("repeated shared span rejected: %v", err)
	}
}

// policyOpts returns paper options with NewPolicy backed by the given
// spec string, panicking on sizes the spec cannot serve (the tests only
// use specs valid for every arbiter they reach).
func policyOpts(t *testing.T, spec string) Options {
	t.Helper()
	sp, err := arbiter.ParsePolicySpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	opts := paperOpts()
	opts.NewPolicy = func(n int) arbiter.Policy {
		p, err := sp.New(n)
		if err != nil {
			panic(err)
		}
		return p
	}
	opts.NewPolicyWidened = func(members, width int) arbiter.Policy {
		p, err := sp.NewWidened(members, width)
		if err != nil {
			panic(err)
		}
		return p
	}
	return opts
}

// runFFT simulates the FFT case study under opts and returns per-stage
// stats plus the final memory image of every segment.
func runFFT(t *testing.T, opts Options) ([]*sim.Stats, map[string]map[int]int64) {
	t.Helper()
	d, mem, _ := compileFFT(t, 2, opts)
	res, err := Simulate(d, mem, opts)
	if err != nil {
		t.Fatal(err)
	}
	stats := make([]*sim.Stats, len(res.Stages))
	for i, ss := range res.Stages {
		stats[i] = ss.Stats
	}
	segs := map[string]map[int]int64{}
	for _, s := range d.Graph.Segments {
		segs[s.Name] = mem.Snapshot(s.Name)
	}
	return stats, segs
}

// TestZeroRateContentionByteIdentical is the differential guard on the
// tentpole's no-op path: for every policy spec, a full-system FFT run
// with zero-rate ("silent") background generators on both arbitrated
// banks produces Stats — including traces, wait cycles, and finish
// times — and memory images deeply equal to an uninstrumented run.
// Silent sources are statically elided, so this holds for every policy,
// including hier, whose tree shape would change under real widening.
func TestZeroRateContentionByteIdentical(t *testing.T) {
	for _, spec := range workload.DefaultPolicies() {
		t.Run(spec, func(t *testing.T) {
			plain, memPlain := runFFT(t, policyOpts(t, spec))

			opts := policyOpts(t, spec)
			opts.Contention = []ContentionSpec{
				{Resource: "M1", Workload: "silent", Lines: 2},
				{Resource: "M3", Workload: "silent", Lines: 1},
			}
			quiet, memQuiet := runFFT(t, opts)

			if !reflect.DeepEqual(plain, quiet) {
				t.Fatalf("stats diverge under zero-rate contention:\nplain: %+v\nquiet: %+v", plain, quiet)
			}
			if !reflect.DeepEqual(memPlain, memQuiet) {
				t.Fatal("memory images diverge under zero-rate contention")
			}
		})
	}
}

// neutralPolicies are the specs for which appending request lines that
// never assert cannot change the member grant stream: either the grant
// decisions depend only on the requesting subset and its cyclic order,
// or — for hier — the widened constructor (NewPolicyWidened /
// arbiter.NewHierarchicalWidened) keeps the member-line tree layout
// identical to the unwidened arbiter's and parks the appended lanes in
// their own always-idle cluster.
func neutralPolicies() []string {
	return []string{"rr", "fifo", "priority", "random:1", "fsm", "netlist:one-hot", "preemptive:4", "wrr:2", "hier:2"}
}

// TestQuietTracePlumbingDoesNotPerturb drives the stronger differential
// on the wiring itself: a trace-backed generator that happens to never
// request (but is not statically silent, so its phantom lines ARE wired
// and the policy IS widened) must leave every member-visible statistic
// untouched. Traces widen by the phantom lines; projecting them back to
// member width must recover the uninstrumented run exactly.
func TestQuietTracePlumbingDoesNotPerturb(t *testing.T) {
	for _, spec := range neutralPolicies() {
		t.Run(spec, func(t *testing.T) {
			plain, memPlain := runFFT(t, policyOpts(t, spec))

			opts := policyOpts(t, spec)
			d, mem, _ := compileFFT(t, 2, opts)
			res := simulateWithQuietTrace(t, d, mem, opts, "M1", 2)

			contended := make([]*sim.Stats, len(res.Stages))
			for i, ss := range res.Stages {
				contended[i] = ss.Stats
			}
			memQuiet := map[string]map[int]int64{}
			for _, s := range d.Graph.Segments {
				memQuiet[s.Name] = mem.Snapshot(s.Name)
			}

			for i, st := range contended {
				// The quiet phantoms must have won nothing and waited never.
				if cs := st.Contention["M1"]; cs != nil {
					for _, g := range cs.Grants {
						if g != 0 {
							t.Fatalf("stage %d: quiet phantom won %d grants", i, g)
						}
					}
					for _, w := range cs.Waits {
						if w != 0 {
							t.Fatalf("stage %d: quiet phantom waited %d cycles", i, w)
						}
					}
				}
				projectToMembers(st, "M1", 6)
			}
			if !reflect.DeepEqual(plain, contended) {
				t.Fatalf("member-visible stats diverge under quiet-trace contention:\nplain:     %+v\ncontended: %+v", plain, contended)
			}
			if !reflect.DeepEqual(memPlain, memQuiet) {
				t.Fatal("memory images diverge under quiet-trace contention")
			}
		})
	}
}

// simulateWithQuietTrace mirrors Simulate but injects a never-
// requesting trace generator (not statically silent) on one resource.
func simulateWithQuietTrace(t *testing.T, d *Design, mem *sim.Memory, opts Options, res string, lines int) *RunResult {
	t.Helper()
	out := &RunResult{Memory: mem}
	for _, sp := range d.Stages {
		cfg := sim.Config{
			Graph:             d.Graph,
			Tasks:             sp.Stage.Tasks,
			Programs:          sp.Inserted.Programs,
			Arbiters:          sp.Inserted.Arbiters,
			ResourceOfSegment: sp.Inserted.ResourceOfSegment,
			ResourceOfChannel: sp.Inserted.ResourceOfChannel,
			NewPolicy:         opts.NewPolicy,
			NewPolicyWidened:  opts.NewPolicyWidened,
			Memory:            mem,
		}
		for _, a := range sp.Inserted.Arbiters {
			if a.Resource == res {
				quiet, err := workload.NewTrace("quiet", lines, [][]bool{make([]bool, lines)})
				if err != nil {
					t.Fatal(err)
				}
				cfg.Contention = append(cfg.Contention, sim.ContentionSource{Resource: res, Gen: quiet})
			}
		}
		stats, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out.Stages = append(out.Stages, StageStats{Stage: sp, Stats: stats})
		out.TotalCycles += stats.Cycles
	}
	return out
}

// projectToMembers strips the phantom columns from one resource's
// traces and clears the contention stats, recovering the member-width
// view an uninstrumented run would have produced.
func projectToMembers(st *sim.Stats, res string, memberN int) {
	trace := st.ArbiterTraces[res]
	for i, step := range trace {
		trace[i] = arbiter.TraceStep{
			Req:   append([]bool(nil), step.Req[:memberN]...),
			Grant: append([]bool(nil), step.Grant[:memberN]...),
		}
	}
	delete(st.Contention, res)
	if len(st.Contention) == 0 {
		st.Contention = nil
	}
}
