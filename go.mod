module sparcs

go 1.24
