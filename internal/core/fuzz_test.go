package core

import (
	"reflect"
	"strings"
	"testing"
)

// fuzzContentionSeeds is the seed corpus for the single-resource
// grammar: every documented form, the /lines corners, and
// representative junk.
func fuzzContentionSeeds() []string {
	return []string{
		"", " ", "M1=hog", "M1=hog/2", "M1=bernoulli:0.50", "M3=bursty",
		"M1=silent", "M1=hog/1,M3=bernoulli:0.25", " M1=hog , M3=bursty/3 ",
		"M1=hog/0", "M1=hog/-1", "M1=hog/x", "M1=hog/99999999999999999999",
		"=hog", "M1=", "M1", ",", "M1=hog,,M3=bursty", "M1==hog",
		"M1=bogus", "M1=bernoulli", "M1=bernoulli:1.5", "M 1=hog",
		"M1=hog/2/3", "préemptive=hog", "M1=hog\x00",
		"M1=hog,M1=bursty", "M1=hog/2,M1=hog/2", "M2=hog,M1=bursty,M2=silent",
	}
}

// fuzzSharedSeeds is the seed corpus for the correlated grammar.
func fuzzSharedSeeds() []string {
	return []string{
		"", "M1+M3=corr", "M1+M3=corr:0.25", "M1+M3=corr:0.25/2",
		"M1+M2+M3=corr:0.10", "M1+M3=corr,M2+M4=corr:0.50/3",
		"M1+M3=corr/0", "M1+M3=corr/-2", "M1+M3=corr/x",
		"+M1=corr", "M1+=corr", "M1+M3=", "M1+M3", "=corr",
		"M1+M3=bogus", "M1=corr", "M1+M3=corr:2.0", "M1+M1=corr",
		"M1+M3+M1=corr", "M1+M3=corr,M1+M3=corr:0.50",
	}
}

// fuzzMixedSeeds covers the one-flag front end mixing both grammars.
func fuzzMixedSeeds() []string {
	return []string{
		"", "M1=hog,M1+M3=corr:0.25", "M1+M3=corr,M1=hog/2",
		"M1=hog/2,M3=bernoulli:0.30,M1+M3=corr:0.25/2",
		"M1+M3=corr,M2=bursty,", "M1=hog,M1+M3",
		"M1=hog,M1=bursty,M1+M3=corr", "M1+M1=corr,M2=hog",
		"M1=hog,M1+M3=corr,M3=bursty",
	}
}

// canonContention renders the canonical comma-joined form of a parsed
// single-resource spec list.
func canonContention(specs []ContentionSpec) string {
	parts := make([]string, len(specs))
	for i, cs := range specs {
		parts[i] = cs.String()
	}
	return strings.Join(parts, ",")
}

// canonShared renders the canonical comma-joined form of a parsed
// shared spec list.
func canonShared(specs []SharedContentionSpec) string {
	parts := make([]string, len(specs))
	for i, cs := range specs {
		parts[i] = cs.String()
	}
	return strings.Join(parts, ",")
}

// checkContentionRoundTrip is the fuzz property for ParseContention:
// parsing never panics, errors carry the package prefix and come
// without a partial result, and every accepted input canonicalizes
// through String() to a fixed point of parse∘String.
func checkContentionRoundTrip(t *testing.T, s string) {
	t.Helper()
	specs, err := ParseContention(s)
	if err != nil {
		if specs != nil {
			t.Fatalf("ParseContention(%q) returned both specs and error %v", s, err)
		}
		if !strings.Contains(err.Error(), "core:") {
			t.Fatalf("ParseContention(%q) error %q lacks the package prefix", s, err)
		}
		return
	}
	if len(specs) == 0 {
		if strings.TrimSpace(s) != "" {
			t.Fatalf("ParseContention(%q) accepted non-blank input with no specs", s)
		}
		return
	}
	canon := canonContention(specs)
	specs2, err := ParseContention(canon)
	if err != nil {
		t.Fatalf("canonical form %q of %q does not reparse: %v", canon, s, err)
	}
	if !reflect.DeepEqual(specs, specs2) {
		t.Fatalf("round trip diverges for %q: %+v -> %q -> %+v", s, specs, canon, specs2)
	}
	if got := canonContention(specs2); got != canon {
		t.Fatalf("String is not a fixed point for %q: %q -> %q", s, canon, got)
	}
}

// checkSharedRoundTrip is the same property for ParseSharedContention.
func checkSharedRoundTrip(t *testing.T, s string) {
	t.Helper()
	specs, err := ParseSharedContention(s)
	if err != nil {
		if specs != nil {
			t.Fatalf("ParseSharedContention(%q) returned both specs and error %v", s, err)
		}
		if !strings.Contains(err.Error(), "core:") {
			t.Fatalf("ParseSharedContention(%q) error %q lacks the package prefix", s, err)
		}
		return
	}
	if len(specs) == 0 {
		if strings.TrimSpace(s) != "" {
			t.Fatalf("ParseSharedContention(%q) accepted non-blank input with no specs", s)
		}
		return
	}
	canon := canonShared(specs)
	specs2, err := ParseSharedContention(canon)
	if err != nil {
		t.Fatalf("canonical form %q of %q does not reparse: %v", canon, s, err)
	}
	if !reflect.DeepEqual(specs, specs2) {
		t.Fatalf("round trip diverges for %q: %+v -> %q -> %+v", s, specs, canon, specs2)
	}
	if got := canonShared(specs2); got != canon {
		t.Fatalf("String is not a fixed point for %q: %q -> %q", s, canon, got)
	}
}

// checkMixedRoundTrip covers ParseMixedContention: the split into
// single and shared lists must itself round-trip through the joined
// canonical form (singles first, then shared — reclassification is
// stable because only shared entries contain '+' left of '=').
func checkMixedRoundTrip(t *testing.T, s string) {
	t.Helper()
	single, shared, err := ParseMixedContention(s)
	if err != nil {
		if single != nil || shared != nil {
			t.Fatalf("ParseMixedContention(%q) returned specs alongside error %v", s, err)
		}
		if !strings.Contains(err.Error(), "core:") {
			t.Fatalf("ParseMixedContention(%q) error %q lacks the package prefix", s, err)
		}
		return
	}
	if len(single) == 0 && len(shared) == 0 {
		return
	}
	var parts []string
	if c := canonContention(single); c != "" {
		parts = append(parts, c)
	}
	if c := canonShared(shared); c != "" {
		parts = append(parts, c)
	}
	canon := strings.Join(parts, ",")
	single2, shared2, err := ParseMixedContention(canon)
	if err != nil {
		t.Fatalf("canonical form %q of %q does not reparse: %v", canon, s, err)
	}
	if !reflect.DeepEqual(single, single2) || !reflect.DeepEqual(shared, shared2) {
		t.Fatalf("round trip diverges for %q via %q:\n singles %+v -> %+v\n shared  %+v -> %+v",
			s, canon, single, single2, shared, shared2)
	}
}

// FuzzParseContention fuzzes the single-resource contention grammar:
// no input may panic, and every accepted input must round-trip through
// its canonical String() form. CI smokes this with a short -fuzztime.
func FuzzParseContention(f *testing.F) {
	for _, s := range fuzzContentionSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		checkContentionRoundTrip(t, s)
	})
}

// FuzzParseSharedContention fuzzes the correlated grammar under the
// same never-panic/round-trip property.
func FuzzParseSharedContention(f *testing.F) {
	for _, s := range fuzzSharedSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		checkSharedRoundTrip(t, s)
	})
}

// FuzzParseMixedContention fuzzes the mixed front-end grammar; seeds
// include both sub-grammars' corpora so the classifier boundary (a '+'
// left of '=') gets exercised from both sides.
func FuzzParseMixedContention(f *testing.F) {
	for _, s := range fuzzContentionSeeds() {
		f.Add(s)
	}
	for _, s := range fuzzSharedSeeds() {
		f.Add(s)
	}
	for _, s := range fuzzMixedSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		checkMixedRoundTrip(t, s)
	})
}

// TestContentionGrammarSeedCorpus runs the fuzz properties over the
// seed corpora in plain `go test`, so the round-trip invariants are
// enforced on every run, not only when the fuzzer is invoked.
func TestContentionGrammarSeedCorpus(t *testing.T) {
	for _, s := range fuzzContentionSeeds() {
		checkContentionRoundTrip(t, s)
	}
	for _, s := range fuzzSharedSeeds() {
		checkSharedRoundTrip(t, s)
	}
	for _, s := range append(fuzzContentionSeeds(), append(fuzzSharedSeeds(), fuzzMixedSeeds()...)...) {
		checkMixedRoundTrip(t, s)
	}
}
