// Seeded violations for the errsentinel analyzer: every
// wrapping-hostile matching idiom, plus the errors.Is/errors.As forms
// it must accept.
package errsent

import (
	"errors"
	"fmt"
	"strings"
)

// ErrBound is a sentinel in the style of arbiter.ErrOutOfRange.
var ErrBound = errors.New("errsent: out of bounds")

// WidthError is a typed error in the style of SynthRangeError.
type WidthError struct{ N int }

func (e *WidthError) Error() string { return fmt.Sprintf("bad width %d", e.N) }

func Wrap(err error) error {
	return fmt.Errorf("outer: %v", err) // want `error formatted without %w is invisible to errors.Is`
}

func WrapOK(err error) error {
	return fmt.Errorf("outer: %w", err)
}

func Match(err error) bool {
	if err == nil { // nil checks are fine
		return false
	}
	if err == ErrBound { // want `== comparison with ErrBound misses wrapped errors`
		return true
	}
	if err != ErrBound { // want `!= comparison with ErrBound misses wrapped errors`
		return false
	}
	if err.Error() == "errsent: out of bounds" { // want `matching errors by Error\(\) string`
		return true
	}
	if strings.Contains(err.Error(), "bounds") { // want `matching errors by Error\(\) string`
		return true
	}
	if _, ok := err.(*WidthError); ok { // want `type assertion on an error misses wrapped errors; use errors.As`
		return true
	}
	return false
}

func MatchOK(err error) bool {
	var we *WidthError
	return errors.Is(err, ErrBound) || errors.As(err, &we)
}
