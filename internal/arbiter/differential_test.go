package arbiter

import (
	"math/rand"
	"testing"
)

// TestRoundRobinFamilyIdentical pins every round-robin implementation —
// behavioral, symbolic FSM, synthesized netlists, preemptive with an
// unreachable hold bound, and the hierarchical tree at its two
// degenerate shapes — to bit-identical grant sequences over randomized
// traffic. Any divergence means one of the fidelity levels drifted from
// the Figure 5 semantics.
func TestRoundRobinFamilyIdentical(t *testing.T) {
	for _, n := range []int{2, 4, 6} {
		impls := map[string]Policy{}
		impls["behavioral"] = NewRoundRobin(n)
		fsmP, err := NewFSMPolicy(n)
		if err != nil {
			t.Fatal(err)
		}
		impls["fsm"] = fsmP
		for _, enc := range []string{"one-hot", "compact"} {
			p, err := NewPolicy("netlist:"+enc, n)
			if err != nil {
				t.Fatal(err)
			}
			impls["netlist-"+enc] = p
		}
		pre, err := NewPreemptiveRoundRobin(n, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		impls["preemptive-maxhold-inf"] = pre
		for _, groups := range []int{1, n} {
			h, err := NewHierarchical(n, groups)
			if err != nil {
				t.Fatal(err)
			}
			impls["hier-"+h.Name()] = h
		}

		ref := impls["behavioral"]
		r := rand.New(rand.NewSource(int64(n) * 101))
		req := make([]bool, n)
		held := make([]int, n)
		for c := 0; c < 4000; c++ {
			if c < 2000 {
				// Phase 1: fully random traffic, including withdrawals.
				for i := range req {
					req[i] = r.Intn(3) != 0
				}
			} else {
				// Phase 2: the paper's M=2 discipline — request
				// persistently, release one cycle after two granted
				// cycles — which forces sustained rotation.
				for i := range req {
					if held[i] >= 2 {
						req[i] = false
						held[i] = 0
					} else if !req[i] {
						req[i] = r.Intn(2) == 0
					}
				}
			}
			want := append([]bool(nil), ref.Step(req)...)
			for i, g := range want {
				if g {
					held[i]++
				}
			}
			for name, p := range impls {
				if p == ref {
					continue
				}
				got := p.Step(req)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("N=%d cycle %d req=%v: %s grant %v, behavioral %v",
							n, c, req, name, got, want)
					}
				}
			}
		}
	}
}

// TestWRRMatchesPreemptiveUniform: uniform-weight WRR is exactly the
// preemptive round-robin with maxHold equal to the weight.
func TestWRRMatchesPreemptiveUniform(t *testing.T) {
	const n = 5
	for _, k := range []int{1, 3} {
		weights := make([]int, n)
		for i := range weights {
			weights[i] = k
		}
		wrr, err := NewWeightedRoundRobin(n, weights)
		if err != nil {
			t.Fatal(err)
		}
		pre, err := NewPreemptiveRoundRobin(n, k)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(int64(k) * 13))
		req := make([]bool, n)
		for c := 0; c < 3000; c++ {
			for i := range req {
				req[i] = r.Intn(3) != 0
			}
			a, b := wrr.Step(req), pre.Step(req)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("k=%d cycle %d req=%v: wrr %v, preemptive %v", k, c, req, a, b)
				}
			}
		}
	}
}

// TestWRRWeightShares: under saturation (everyone requests forever),
// long-run grant shares are exactly proportional to the weights.
func TestWRRWeightShares(t *testing.T) {
	weights := []int{3, 1, 1, 1}
	p, err := NewWeightedRoundRobin(4, weights)
	if err != nil {
		t.Fatal(err)
	}
	req := []bool{true, true, true, true}
	grants := make([]int, 4)
	const cycles = 6000 // 1000 rotations of the weight-6 period
	for c := 0; c < cycles; c++ {
		for i, g := range p.Step(req) {
			if g {
				grants[i]++
			}
		}
	}
	// Steady rotation serves weight[i] cycles per 6-cycle period.
	for i, w := range weights {
		want := cycles * w / 6
		if diff := grants[i] - want; diff < -6 || diff > 6 {
			t.Errorf("task %d: %d grants, want ~%d (weights %v)", i+1, grants[i], want, weights)
		}
	}
}

// TestHierarchicalRotationOrder: with two clusters {1,2} and {3,4} all
// following a release-after-one-grant discipline, clusters take strict
// turns and members take strict turns within clusters: 1,3,2,4 repeating.
func TestHierarchicalRotationOrder(t *testing.T) {
	h, err := NewHierarchical(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	req := []bool{true, true, true, true}
	want := []int{0, 2, 1, 3}
	for c := 0; c < 40; c++ {
		g := h.Step(req)
		holder := holderOf(g)
		if holder != want[c%4] {
			t.Fatalf("cycle %d: grant to task %d, want %d (sequence %v)", c, holder+1, want[c%4]+1, want)
		}
		for i := range req {
			req[i] = i != holder // holder releases for exactly one cycle
		}
	}
}

// TestHierarchicalConstructorErrors: unbalanced trees are rejected.
func TestHierarchicalConstructorErrors(t *testing.T) {
	for _, tc := range []struct{ n, groups int }{
		{4, 0}, {4, 3}, {4, 5}, {6, 4}, {1, 1}, {MaxN + 1, 2},
	} {
		if _, err := NewHierarchical(tc.n, tc.groups); err == nil {
			t.Errorf("NewHierarchical(%d, %d) should error", tc.n, tc.groups)
		}
	}
	for _, tc := range []struct{ n, groups int }{
		{4, 1}, {4, 2}, {4, 4}, {6, 3}, {8, 2},
	} {
		if _, err := NewHierarchical(tc.n, tc.groups); err != nil {
			t.Errorf("NewHierarchical(%d, %d): %v", tc.n, tc.groups, err)
		}
	}
}

// TestNewPoliciesSafetyAndBoundedWait: the two new policies maintain
// every check.go property — including the N-1 grant-episode bound —
// under randomized traffic with the M=2 release discipline.
func TestNewPoliciesSafetyAndBoundedWait(t *testing.T) {
	for _, spec := range []string{"wrr:1", "wrr:3", "wrr:1,2,3,1,2,3", "hier:2", "hier:3", "hier:6"} {
		for _, n := range []int{6} {
			p, err := NewPolicy(spec, n)
			if err != nil {
				t.Fatal(err)
			}
			r := rand.New(rand.NewSource(int64(len(spec))))
			var steps []TraceStep
			req := make([]bool, n)
			held := make([]int, n)
			for c := 0; c < 4000; c++ {
				for i := range req {
					if held[i] >= 2 {
						req[i] = false
						held[i] = 0
					} else if !req[i] {
						req[i] = r.Intn(2) == 0
					}
				}
				g := p.Step(req)
				for i := range g {
					if g[i] {
						held[i]++
					}
				}
				steps = append(steps, TraceStep{
					Req:   append([]bool(nil), req...),
					Grant: append([]bool(nil), g...),
				})
			}
			if err := CheckAll(n, steps); err != nil {
				t.Errorf("%s N=%d: %v", spec, n, err)
			}
		}
	}
}

// TestFIFOSteadyStateAllocationFree: the satellite bugfix — popping
// with queue = queue[1:] drifted the backing array forward forever, so
// long streaming runs kept reallocating. The head-indexed queue must
// not allocate at all in steady state, and its backing capacity must
// stay at the original 2N.
func TestFIFOSteadyStateAllocationFree(t *testing.T) {
	const n = 4
	f := NewFIFO(n)
	req := make([]bool, n)
	grant := make([]bool, n)
	cycle := 0
	churn := func(cycles int) {
		for c := 0; c < cycles; c++ {
			for i := range req {
				// Staggered toggling: constant arrivals and departures.
				req[i] = (cycle+i*3)%7 < 4
			}
			f.StepInto(req, grant)
			cycle++
		}
	}
	churn(100) // warm up
	allocs := testing.AllocsPerRun(100, func() { churn(100) })
	if allocs != 0 {
		t.Errorf("FIFO steady state allocated %.1f times per 100-cycle run", allocs)
	}
	if cap(f.queue) != 2*n {
		t.Errorf("queue capacity drifted to %d, want the original %d", cap(f.queue), 2*n)
	}
	// Reset restores the original backing slice and the initial state:
	// the reset arbiter must replay a fresh arbiter's grant stream.
	f.Reset()
	if cap(f.queue) != 2*n || len(f.queue) != 0 || f.head != 0 {
		t.Errorf("Reset left queue len=%d head=%d cap=%d, want 0/0/%d", len(f.queue), f.head, cap(f.queue), 2*n)
	}
	fresh := NewFIFO(n)
	r := rand.New(rand.NewSource(99))
	for c := 0; c < 2000; c++ {
		for i := range req {
			req[i] = r.Intn(2) == 0
		}
		a, b := f.Step(req), fresh.Step(req)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("cycle %d: reset FIFO diverged from fresh FIFO", c)
			}
		}
	}
}

// TestFIFOArrivalOrderUnderLongStreams: the head-indexed queue keeps
// exact arrival-order semantics across many compactions.
func TestFIFOArrivalOrderUnderLongStreams(t *testing.T) {
	const n = 6
	f := NewFIFO(n)
	var steps []TraceStep
	req := make([]bool, n)
	held := make([]int, n)
	r := rand.New(rand.NewSource(5))
	for c := 0; c < 20000; c++ {
		for i := range req {
			if held[i] >= 2 {
				req[i] = false
				held[i] = 0
			} else if !req[i] {
				req[i] = r.Intn(3) == 0
			}
		}
		g := f.Step(req)
		for i := range g {
			if g[i] {
				held[i]++
			}
		}
		if cap(f.queue) > 2*n {
			t.Fatalf("cycle %d: queue capacity grew to %d", c, cap(f.queue))
		}
		steps = append(steps, TraceStep{
			Req:   append([]bool(nil), req...),
			Grant: append([]bool(nil), g...),
		})
	}
	if err := CheckMutualExclusion(steps); err != nil {
		t.Error(err)
	}
	if err := CheckGrantImpliesRequest(steps); err != nil {
		t.Error(err)
	}
	if err := CheckWorkConserving(steps); err != nil {
		t.Error(err)
	}
}
