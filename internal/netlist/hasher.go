package netlist

import (
	"fmt"
	"sort"
)

// Hasher builds gates with structural hash-consing: two requests for the
// same gate kind over the same input set return the same net. Commutative
// gates are canonicalized by sorting inputs. This is the structural
// sharing every real synthesis tool performs, and it is what lets the
// arbiter's duplicated scan logic (state Ci and Fi share their entire
// priority chain; next-state and grant covers coincide) collapse.
type Hasher struct {
	n     *Netlist
	cache map[string]NetID
}

// NewHasher returns a Hasher over the netlist.
func NewHasher(n *Netlist) *Hasher {
	return &Hasher{n: n, cache: map[string]NetID{}}
}

// Gate returns a net computing kind over the inputs, reusing an existing
// structurally identical gate when possible.
func (h *Hasher) Gate(kind GateKind, in ...NetID) NetID {
	ins := append([]NetID(nil), in...)
	switch kind {
	case And, Or, Xor, Nand, Nor:
		sort.Slice(ins, func(i, j int) bool { return ins[i] < ins[j] })
	}
	key := fmt.Sprint(int(kind), ins)
	if id, ok := h.cache[key]; ok {
		return id
	}
	id := h.n.AddGate(kind, ins...)
	h.cache[key] = id
	return id
}

// Not returns a shared inverter of in.
func (h *Hasher) Not(in NetID) NetID { return h.Gate(Not, in) }

// Tree builds a balanced tree of 2-input gates of the given kind over the
// inputs, hash-consing every level. A single input passes through; empty
// input lists are rejected.
func (h *Hasher) Tree(kind GateKind, in []NetID) NetID {
	if len(in) == 0 {
		panic("netlist: Hasher.Tree with no inputs")
	}
	cur := append([]NetID(nil), in...)
	// Sort so equal input sets produce identical trees.
	sort.Slice(cur, func(i, j int) bool { return cur[i] < cur[j] })
	for len(cur) > 1 {
		var next []NetID
		for i := 0; i+1 < len(cur); i += 2 {
			next = append(next, h.Gate(kind, cur[i], cur[i+1]))
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	return cur[0]
}
