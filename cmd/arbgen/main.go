// Command arbgen is the paper's arbiter generator tool (Section 4.2): it
// emits synthesizable VHDL for an N-input round-robin arbiter and reports
// its synthesized area and clock speed on the Xilinx XC4000E, for either
// modeled synthesis tool and any FSM encoding.
//
// Usage:
//
//	arbgen -n 6 -encoding one-hot -tool synplify       # characterize one size
//	arbgen -n 4 -vhdl                                   # print the VHDL
//	arbgen -sweep                                       # Figures 6 and 7 tables
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sparcs/internal/arbiter"
	"sparcs/internal/fsm"
	"sparcs/internal/synth"
)

func main() {
	n := flag.Int("n", 4, "number of request inputs (2..16)")
	encoding := flag.String("encoding", "one-hot", "FSM encoding: one-hot, compact, gray")
	tool := flag.String("tool", "synplify", "synthesis tool model: synplify, fpga-express")
	vhdl := flag.Bool("vhdl", false, "print the generated VHDL instead of synthesizing")
	sweep := flag.Bool("sweep", false, "reproduce the paper's Figures 6 and 7 (N in [2,10], all tool/encoding variants)")
	flag.Parse()

	if *sweep {
		runSweep()
		return
	}
	enc, err := fsm.ParseEncoding(*encoding)
	if err != nil {
		log.Fatal(err)
	}
	if *vhdl {
		text, err := arbiter.VHDL(*n, enc, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(text)
		return
	}
	tl, err := synth.ParseTool(*tool)
	if err != nil {
		log.Fatal(err)
	}
	m, err := arbiter.Machine(*n)
	if err != nil {
		log.Fatal(err)
	}
	r, _, err := synth.Run(m, enc, tl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s, N=%d\n", r.Label(), *n)
	fmt.Printf("  area:        %d CLBs (%d 4-LUTs, %d FFs, %d H-folds)\n", r.CLBs, r.LUTs, r.FFs, r.HMerges)
	fmt.Printf("  max clock:   %.1f MHz (critical path %.2f ns, %d LUT levels)\n", r.MaxMHz, r.CriticalNs, r.Depth)
}

func runSweep() {
	sizes := []int{2, 3, 4, 5, 6, 7, 8, 9, 10}
	results, err := synth.Sweep(arbiter.Machine, sizes, synth.Figure67Variants)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 6: N-input arbiter sizes in CLBs")
	fmt.Printf("%-4s", "N")
	for _, series := range results {
		fmt.Printf(" %22s", series[0].Label())
	}
	fmt.Println()
	for i, n := range sizes {
		fmt.Printf("%-4d", n)
		for _, series := range results {
			fmt.Printf(" %22d", series[i].CLBs)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Figure 7: N-input arbiter clock speed in MHz")
	fmt.Printf("%-4s", "N")
	for _, series := range results {
		fmt.Printf(" %22s", series[0].Label())
	}
	fmt.Println()
	for i, n := range sizes {
		fmt.Printf("%-4d", n)
		for _, series := range results {
			fmt.Printf(" %22.1f", series[i].MaxMHz)
		}
		fmt.Println()
	}
	os.Exit(0)
}
