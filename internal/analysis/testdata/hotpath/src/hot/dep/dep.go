// Package dep proves the hotpath walk crosses package boundaries:
// Leaf is only hot because hot.Marked statically calls it.
package dep

var sink []int

// Leaf allocates; the violation is attributed here, at the site.
func Leaf(n int) {
	sink = append(sink, n) // want `append may grow its backing array`
}
