package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"sparcs/internal/sim"
)

func approxEqual(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestFFTMatchesDFT(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		got, err := FFT(x)
		if err != nil {
			t.Fatal(err)
		}
		want := DFT(x)
		if !approxEqual(got, want, 1e-6*float64(n)) {
			t.Fatalf("n=%d: FFT != DFT", n)
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if _, err := FFT(make([]complex128, 3)); err == nil {
		t.Fatal("length 3 should be rejected")
	}
	if _, err := FFT(nil); err == nil {
		t.Fatal("empty input should be rejected")
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	got, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTLinearityQuick(t *testing.T) {
	f := func(seed int64, scale float64) bool {
		if math.IsNaN(scale) || math.IsInf(scale, 0) || math.Abs(scale) > 1e6 {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		n := 16
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		scaled := make([]complex128, n)
		for i := range x {
			scaled[i] = x[i] * complex(scale, 0)
		}
		fx, _ := FFT(x)
		fs, _ := FFT(scaled)
		for i := range fx {
			if cmplx.Abs(fs[i]-fx[i]*complex(scale, 0)) > 1e-6*(1+math.Abs(scale)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFFT2DMatchesSeparableDFT(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	n := 8
	img := make([][]complex128, n)
	for i := range img {
		img[i] = make([]complex128, n)
		for j := range img[i] {
			img[i][j] = complex(r.NormFloat64(), 0)
		}
	}
	got, err := FFT2D(img)
	if err != nil {
		t.Fatal(err)
	}
	// Direct 2-D DFT.
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			var sum complex128
			for x := 0; x < n; x++ {
				for y := 0; y < n; y++ {
					ang := -2 * math.Pi * (float64(u*x)/float64(n) + float64(v*y)/float64(n))
					sum += img[x][y] * cmplx.Exp(complex(0, ang))
				}
			}
			if cmplx.Abs(got[u][v]-sum) > 1e-6 {
				t.Fatalf("bin (%d,%d) = %v, want %v", u, v, got[u][v], sum)
			}
		}
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(re, im int32) bool {
		r, i := Unpack(Pack(re, im))
		return r == re && i == im
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFFT4FixedMatchesFloat(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		in := make([]int64, 4)
		ref := make([]complex128, 4)
		for i := range in {
			re := int32(r.Intn(1<<20) - 1<<19)
			im := int32(r.Intn(1<<20) - 1<<19)
			in[i] = Pack(re, im)
			ref[i] = complex(float64(re), float64(im))
		}
		got := FFT4Fixed(in)
		want := DFT(ref)
		for i := range got {
			re, im := Unpack(got[i])
			// 4-point twiddles are exact in fixed point.
			if math.Abs(float64(re)-real(want[i])) > 0.5 || math.Abs(float64(im)-imag(want[i])) > 0.5 {
				t.Fatalf("trial %d bin %d: got (%d,%d), want (%f,%f)",
					trial, i, re, im, real(want[i]), imag(want[i]))
			}
		}
	}
}

func TestTile2DFixedMatchesFloat2D(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		tile := make([]int64, 16)
		img := make([][]complex128, 4)
		for row := 0; row < 4; row++ {
			img[row] = make([]complex128, 4)
			for c := 0; c < 4; c++ {
				px := r.Intn(256)
				tile[row*4+c] = FromPixel(px)
				img[row][c] = complex(float64(px)*65536, 0)
			}
		}
		got := Tile2DFixed(tile)
		want, err := FFT2D(img)
		if err != nil {
			t.Fatal(err)
		}
		for row := 0; row < 4; row++ {
			for c := 0; c < 4; c++ {
				re, im := Unpack(got[row*4+c])
				if math.Abs(float64(re)-real(want[row][c])) > 0.5 ||
					math.Abs(float64(im)-imag(want[row][c])) > 0.5 {
					t.Fatalf("trial %d (%d,%d): got (%d,%d), want %v",
						trial, row, c, re, im, want[row][c])
				}
			}
		}
	}
}

func TestTaskgraphValid(t *testing.T) {
	g := Taskgraph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Tasks) != 12 {
		t.Fatalf("tasks = %d, want 12 (4 F + 8 g)", len(g.Tasks))
	}
	if len(g.Segments) != 12 {
		t.Fatalf("segments = %d, want 12 (MI, ML, MO x4)", len(g.Segments))
	}
	// Every g task reads all four ML segments (Figure 10).
	for _, k := range []string{"g1r", "g3i"} {
		task := g.TaskByName(k)
		if len(task.Reads()) != 4 {
			t.Fatalf("%s reads %v, want the 4 ML segments", k, task.Reads())
		}
	}
}

func TestPaperStagesCoverAllTasks(t *testing.T) {
	g := Taskgraph()
	seen := map[string]bool{}
	for _, stage := range PaperStages() {
		for _, task := range stage {
			if g.TaskByName(task) == nil {
				t.Fatalf("unknown task %s", task)
			}
			if seen[task] {
				t.Fatalf("task %s in two stages", task)
			}
			seen[task] = true
		}
	}
	if len(seen) != len(g.Tasks) {
		t.Fatalf("stages cover %d of %d tasks", len(seen), len(g.Tasks))
	}
}

func TestSoftwareModelCalibration(t *testing.T) {
	// The calibrated model must land on the paper's 6.8 s +- 5%.
	got := SoftwareSeconds(512)
	if got < 6.8*0.95 || got > 6.8*1.05 {
		t.Fatalf("SW model = %.2f s, want about 6.8 s", got)
	}
}

func TestHardwareSecondsScaling(t *testing.T) {
	// Doubling image edge quadruples tiles and time.
	a := HardwareSeconds(1000, 256)
	b := HardwareSeconds(1000, 512)
	if math.Abs(b/a-4) > 1e-9 {
		t.Fatalf("scaling = %f, want 4x", b/a)
	}
	if Tiles(512) != 128*128 {
		t.Fatalf("Tiles(512) = %d", Tiles(512))
	}
}

func TestLoadInputDeterministic(t *testing.T) {
	m1 := newMem()
	m2 := newMem()
	t1 := LoadInput(m1, 3, 7)
	t2 := LoadInput(m2, 3, 7)
	for i := range t1 {
		for j := range t1[i] {
			if t1[i][j] != t2[i][j] {
				t.Fatal("LoadInput not deterministic")
			}
		}
	}
	t3 := LoadInput(newMem(), 3, 8)
	same := true
	for i := range t1 {
		for j := range t1[i] {
			if t1[i][j] != t3[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func newMem() *sim.Memory { return sim.NewMemory() }
