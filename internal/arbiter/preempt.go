package arbiter

import "fmt"

// PreemptiveRoundRobin implements the extension the paper's conclusion
// proposes as future work: "preemption techniques could be introduced to
// ensure that no task is granted access to a shared resource and never
// relinquishes its request."
//
// It behaves exactly like the round-robin arbiter except that a holder
// that keeps requesting for more than MaxHold consecutive granted cycles
// while another task is waiting has its grant revoked: the scan resumes
// at the next task, and the hog re-enters contention like any requester.
// With no competing requests the holder may keep the resource
// indefinitely (work conservation is preserved).
type PreemptiveRoundRobin struct {
	n       int
	maxHold int
	inner   *RoundRobin
	heldFor int
	grants  []bool
	masked  []bool
}

// NewPreemptiveRoundRobin returns a preempting arbiter; maxHold must be
// at least 1 (grants are revoked after maxHold consecutive cycles).
func NewPreemptiveRoundRobin(n, maxHold int) (*PreemptiveRoundRobin, error) {
	if n < MinN || n > MaxN {
		return nil, RangeError(n)
	}
	if maxHold < 1 {
		return nil, fmt.Errorf("arbiter: maxHold must be >= 1, got %d", maxHold)
	}
	return &PreemptiveRoundRobin{
		n:       n,
		maxHold: maxHold,
		inner:   NewRoundRobin(n),
		grants:  make([]bool, n),
	}, nil
}

// Name implements Policy.
func (p *PreemptiveRoundRobin) Name() string { return "round-robin-preemptive" }

// N implements Policy.
func (p *PreemptiveRoundRobin) N() int { return p.n }

// Reset implements Policy.
func (p *PreemptiveRoundRobin) Reset() {
	p.inner.Reset()
	p.heldFor = 0
}

// Step implements Policy.
func (p *PreemptiveRoundRobin) Step(req []bool) []bool {
	p.StepInto(req, p.grants)
	return p.grants
}

// StepInto implements InPlaceStepper with the same semantics as Step.
func (p *PreemptiveRoundRobin) StepInto(req, grant []bool) {
	if len(req) != p.n || len(grant) != p.n {
		panic(fmt.Sprintf("arbiter: got %d requests / %d grants, want %d", len(req), len(grant), p.n))
	}
	holder := p.inner.holder
	othersWaiting := false
	for t, r := range req {
		if r && t != holder {
			othersWaiting = true
			break
		}
	}
	if holder >= 0 && req[holder] && othersWaiting && p.heldFor >= p.maxHold {
		// Revoke: mask the hog's request for this arbitration step so the
		// scan passes it by; it stays eligible from the next cycle on.
		if p.masked == nil {
			p.masked = make([]bool, p.n)
		}
		copy(p.masked, req)
		p.masked[holder] = false
		p.inner.StepInto(p.masked, grant)
		p.heldFor = currentHold(grant)
		return
	}
	p.inner.StepInto(req, grant)
	if newHolder := p.inner.holder; newHolder == holder && holder >= 0 && grant[holder] {
		p.heldFor++
	} else {
		p.heldFor = currentHold(grant)
	}
}
