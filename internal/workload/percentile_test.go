package workload

import (
	"strings"
	"testing"

	"sparcs/internal/arbiter"
)

// TestPercentileWaitBucketMath pins the bucket→percentile mapping:
// quantile ranks are ceil(q·services); the reported value is the
// containing bucket's inclusive upper edge (0 for the zero-wait bucket,
// 2^k−1 for bucket k), and the open-ended last bucket reports its lower
// edge 2^(WaitBuckets−2).
func TestPercentileWaitBucketMath(t *testing.T) {
	mk := func(counts map[int]int64) *Metrics {
		m := &Metrics{}
		for b, c := range counts {
			m.WaitHist[b] = c
		}
		return m
	}
	cases := []struct {
		name string
		hist map[int]int64
		q    float64
		want int
	}{
		{"no-services", nil, 0.5, 0},
		{"all-zero-wait-p50", map[int]int64{0: 10}, 0.50, 0},
		{"all-zero-wait-p99", map[int]int64{0: 10}, 0.99, 0},
		{"even-split-p50-lands-low", map[int]int64{0: 50, 1: 50}, 0.50, 0},
		{"even-split-p51-crosses", map[int]int64{0: 50, 1: 50}, 0.51, 1},
		{"even-split-p99", map[int]int64{0: 50, 1: 50}, 0.99, 1},
		{"bucket2-upper-edge", map[int]int64{2: 1}, 1.0, 3},
		{"bucket5-upper-edge", map[int]int64{0: 90, 5: 9, 16: 1}, 0.99, 31},
		{"tail-bucket-lower-edge", map[int]int64{0: 90, 5: 9, 16: 1}, 1.0, 1 << (WaitBuckets - 2)},
		{"q-out-of-range-low", map[int]int64{3: 5}, 0, 0},
		{"q-out-of-range-high", map[int]int64{3: 5}, 1.5, 0},
		{"single-service-any-q", map[int]int64{7: 1}, 0.01, 127},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := mk(tc.hist).PercentileWait(tc.q); got != tc.want {
				t.Fatalf("PercentileWait(%g) = %d, want %d", tc.q, got, tc.want)
			}
		})
	}
}

// TestPercentileMatchesHistBucket ties the percentile edges to the
// recording side: a single measured wait w lands in histBucket(w), and
// the q=1 percentile of that one-service histogram must be an upper
// bound on w (except in the open last bucket, where it is the lower
// edge by construction).
func TestPercentileMatchesHistBucket(t *testing.T) {
	for _, w := range []int{0, 1, 2, 3, 4, 7, 8, 100, 1023, 32767, 32768, 65535} {
		m := &Metrics{}
		b := histBucket(w)
		m.WaitHist[b]++
		got := m.PercentileWait(1.0)
		if b < WaitBuckets-1 {
			if got < w {
				t.Errorf("wait %d (bucket %d): percentile %d is below the measured wait", w, b, got)
			}
			if got >= 2*w+2 {
				t.Errorf("wait %d (bucket %d): percentile %d overshoots its bucket edge", w, b, got)
			}
		} else if got != 1<<(WaitBuckets-2) {
			t.Errorf("wait %d in the tail bucket: got %d, want the lower edge %d", w, got, 1<<(WaitBuckets-2))
		}
	}
}

// TestPercentilesInGrid: on a live grid, percentiles are ordered
// (p50 ≤ p99) and the table renders them.
func TestPercentilesInGrid(t *testing.T) {
	cells, err := RunGrid([]string{"rr", "priority"}, []string{"bernoulli:0.30", "hotspot:0.90"}, GridOptions{N: 6, Cycles: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range cells {
		p50, p99 := m.PercentileWait(0.50), m.PercentileWait(0.99)
		if p50 > p99 {
			t.Errorf("%s × %s: p50 %d > p99 %d", m.Policy, m.Workload, p50, p99)
		}
	}
	table := FormatTable(cells)
	for _, col := range []string{"p50", "p99"} {
		if !strings.Contains(table, col) {
			t.Fatalf("table missing %s column:\n%s", col, table)
		}
	}
}

// TestTraceColumnPercentiles closes the loop at the metrics level: a
// captured trace replayed as a column produces a well-formed histogram
// (bucket counts sum to total services).
func TestTraceColumnPercentiles(t *testing.T) {
	steps := []arbiter.TraceStep{
		{Req: []bool{true, false}, Grant: []bool{true, false}},
		{Req: []bool{true, true}, Grant: []bool{true, false}},
		{Req: []bool{false, true}, Grant: []bool{false, true}},
		{Req: []bool{false, false}, Grant: []bool{false, false}},
	}
	col, err := FromArbiterTrace("captured", steps)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := RunGridColumns([]string{"rr"}, []Column{col}, GridOptions{N: 2, Cycles: 4000})
	if err != nil {
		t.Fatal(err)
	}
	m := cells[0]
	var services, hist int64
	for _, tm := range m.Tasks {
		services += tm.Services
	}
	for _, c := range m.WaitHist {
		hist += c
	}
	if services == 0 || services != hist {
		t.Fatalf("histogram holds %d entries for %d services", hist, services)
	}
	if m.Workload != "captured" {
		t.Fatalf("column name %q, want captured", m.Workload)
	}
}
