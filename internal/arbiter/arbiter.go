// Package arbiter implements the paper's core contribution: parameterized
// resource arbiters for reconfigurable computing, centered on the
// round-robin arbiter of Ouaiss & Vemuri (DATE 2000), Figure 5.
//
// A round-robin arbiter for N tasks is a Mealy FSM over 2N states:
//
//	Ci — task i exclusively holds the shared resource;
//	Fi — the resource is free and task i holds the highest priority.
//
// Each cycle the arbiter reads request lines R1..RN and asserts at most one
// grant G1..GN. Requests are scanned cyclically starting at the priority
// holder, so every requester is served after at most N-1 other grants
// (bounded waiting), exactly one grant is issued whenever any request is
// pending (work conservation), and no preemption occurs: a granted task
// keeps the resource while it keeps requesting.
//
// The package provides the symbolic FSM (synthesizable via internal/fsm),
// an independent behavioral reference, the alternative policies the paper
// examined and rejected (FIFO, random, static priority), a VHDL generator
// mirroring the paper's arbiter generator tool, and trace checkers for the
// fairness properties of Section 4.1.
package arbiter

import (
	"errors"
	"fmt"

	"sparcs/internal/fsm"
	"sparcs/internal/logic"
)

// MinN and MaxN bound the behavioral arbiter sizes; MaxSynthN bounds the
// synthesized paths. The paper's generator was exercised for N in [2,10].
// The bitset kernel steps behavioral policies on single uint64 request
// words, so they reach MaxN = 64 — the NoC/multi-tenant sizes. The
// symbolic machine (Machine, VHDL, and the fsm/netlist policies wrapping
// it) keeps the historical 16 cap: the FSM validator exhaustively checks
// every guard over all 2^N input vectors per state, which is intractable
// beyond MaxSynthN.
const (
	MinN      = 2
	MaxN      = 64
	MaxSynthN = 16
)

// ErrOutOfRange is the sentinel wrapped by every size-range rejection in
// this package; test with errors.Is. RangeError carries the offending
// size and renders the canonical message.
var ErrOutOfRange = errors.New("arbiter: N out of range")

type rangeError struct{ n, max int }

func (e *rangeError) Error() string {
	if e.max == MaxSynthN {
		return fmt.Sprintf("arbiter: N must be in [%d,%d] for synthesized (fsm/netlist) arbiters, got %d", MinN, e.max, e.n)
	}
	return fmt.Sprintf("arbiter: N must be in [%d,%d], got %d", MinN, e.max, e.n)
}

func (e *rangeError) Unwrap() error { return ErrOutOfRange }

// RangeError returns the error behavioral constructors report for an
// arbiter size outside [MinN, MaxN]. It wraps ErrOutOfRange.
func RangeError(n int) error { return &rangeError{n: n, max: MaxN} }

// SynthRangeError is the error the synthesized paths (Machine, VHDL,
// and the fsm/netlist policies) report for sizes outside
// [MinN, MaxSynthN]. It wraps ErrOutOfRange like RangeError.
func SynthRangeError(n int) error { return &rangeError{n: n, max: MaxSynthN} }

// Machine builds the Figure 5 round-robin arbiter FSM for n tasks.
//
// State order is the paper's Φ = C1..CN, F1..FN with reset state F1 (no
// holder, task 1 has priority). Inputs are R1..RN, outputs G1..GN.
func Machine(n int) (*fsm.Machine, error) {
	if n < MinN || n > MaxSynthN {
		return nil, SynthRangeError(n)
	}
	m := &fsm.Machine{
		Name:  fmt.Sprintf("rr_arbiter_%d", n),
		Reset: n, // F1
	}
	for i := 1; i <= n; i++ {
		m.Inputs = append(m.Inputs, fmt.Sprintf("R%d", i))
		m.Outputs = append(m.Outputs, fmt.Sprintf("G%d", i))
	}
	for i := 1; i <= n; i++ {
		m.States = append(m.States, fmt.Sprintf("C%d", i))
	}
	for i := 1; i <= n; i++ {
		m.States = append(m.States, fmt.Sprintf("F%d", i))
	}
	cState := func(i int) int { return i % n }       // Ci for 0-based i
	fState := func(i int) int { return n + (i % n) } // Fi for 0-based i
	grant := func(i int) []bool {                    // Gi one-hot
		g := make([]bool, n)
		g[i%n] = true
		return g
	}
	noGrant := make([]bool, n)

	// scanGuards returns the cyclic priority-scan guards starting at task
	// `from` (0-based): for k = 0..n-1, the guard asserting that tasks
	// from..from+k-1 are idle and task from+k requests; plus the all-idle
	// guard. Guards are pairwise disjoint and jointly exhaustive.
	scanGuards := func(from int) ([]logic.Cube, logic.Cube) {
		guards := make([]logic.Cube, n)
		for k := 0; k < n; k++ {
			g := logic.NewCube(n)
			for j := 0; j < k; j++ {
				g = g.WithLit((from+j)%n, logic.Neg)
			}
			g = g.WithLit((from+k)%n, logic.Pos)
			guards[k] = g
		}
		zeroes := logic.NewCube(n)
		for j := 0; j < n; j++ {
			zeroes = zeroes.WithLit(j, logic.Neg)
		}
		return guards, zeroes
	}

	m.Trans = make([][]fsm.Transition, 2*n)
	for i := 0; i < n; i++ {
		guards, zeroes := scanGuards(i)
		// State Ci: task i holds the resource. While Ri stays asserted the
		// grant persists; otherwise scan onward from i+1 via the same
		// guard chain (guards[k] for k >= 1 starts with "not Ri"). With no
		// requests, priority passes to F(i+1).
		var cs []fsm.Transition
		cs = append(cs, fsm.Transition{Guard: zeroes, Next: fState(i + 1), Outputs: noGrant})
		for k := 0; k < n; k++ {
			cs = append(cs, fsm.Transition{Guard: guards[k], Next: cState(i + k), Outputs: grant(i + k)})
		}
		m.Trans[cState(i)] = cs

		// State Fi: resource free, task i has priority. Identical scan,
		// but with no requests the machine stays in Fi.
		var fs []fsm.Transition
		fs = append(fs, fsm.Transition{Guard: zeroes, Next: fState(i), Outputs: noGrant})
		for k := 0; k < n; k++ {
			fs = append(fs, fsm.Transition{Guard: guards[k], Next: cState(i + k), Outputs: grant(i + k)})
		}
		m.Trans[fState(i)] = fs
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("arbiter: generated machine invalid: %w", err)
	}
	return m, nil
}
