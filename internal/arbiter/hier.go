package arbiter

import "fmt"

// Hierarchical arbitrates with a two-level tree of round-robin
// pointers, the structure high-speed parallel round-robin arbiters use
// to shorten the priority-propagation critical path: the N tasks are
// split into `groups` equal clusters, a top-level pointer rotates over
// clusters and a per-cluster pointer rotates over members. Each grant
// advances both the winning cluster's member pointer and the top-level
// cluster pointer, so clusters take strict turns and members take
// strict turns within their cluster.
//
// Like the flat round-robin it is non-preemptive (a holder keeps the
// resource while it keeps requesting) and work conserving. For balanced
// trees (groups divides N, enforced by the constructor) the worst-case
// wait of a continuously requesting task is (N/groups-1) turns of its
// own cluster plus (groups-1) foreign-cluster episodes between
// consecutive turns — exactly the flat arbiter's N-1 grant-episode
// bound. With groups=1 or groups=N the tree degenerates to the flat
// round-robin and produces identical grant sequences.
type Hierarchical struct {
	n      int
	groups int
	size   int // tasks per group
	name   string
	mask   BitVec
	gmask  BitVec // low `size` bits: one cluster's request window
	holder int    // task holding the resource, or -1
	top    int    // next group the cluster scan starts at
	leaf   []int  // per-group member offset the intra-cluster scan starts at
	grants []bool
}

// NewHierarchical returns a tree-of-round-robins arbiter over `groups`
// equal clusters of consecutive tasks; groups must divide n.
func NewHierarchical(n, groups int) (*Hierarchical, error) {
	if n < MinN || n > MaxN {
		return nil, RangeError(n)
	}
	if groups < 1 || groups > n {
		return nil, fmt.Errorf("arbiter: hier group count must be in [1,%d], got %d", n, groups)
	}
	if n%groups != 0 {
		return nil, fmt.Errorf("arbiter: hier needs a balanced tree: %d groups do not divide %d tasks", groups, n)
	}
	return &Hierarchical{
		n:      n,
		groups: groups,
		size:   n / groups,
		name:   fmt.Sprintf("hierarchical-%dx%d", groups, n/groups),
		mask:   Mask(n),
		gmask:  Mask(n / groups),
		holder: -1,
		leaf:   make([]int, groups),
		grants: make([]bool, n),
	}, nil
}

// Name implements Policy ("hierarchical-<groups>x<size>").
func (p *Hierarchical) Name() string { return p.name }

// N implements Policy.
func (p *Hierarchical) N() int { return p.n }

// Reset implements Policy.
func (p *Hierarchical) Reset() {
	p.holder = -1
	p.top = 0
	for g := range p.leaf {
		p.leaf[g] = 0
	}
}

// Step implements Policy.
func (p *Hierarchical) Step(req []bool) []bool {
	p.StepInto(req, p.grants)
	return p.grants
}

// StepInto implements InPlaceStepper with the same semantics as
// StepBits.
//
//sparcs:hotpath
func (p *Hierarchical) StepInto(req, grant []bool) {
	checkLanes(req, grant, p.n)
	p.StepBits(PackBools(req)).WriteBools(grant)
}

// StepBits implements BitStepper: grant a still-requesting holder,
// otherwise scan clusters cyclically from the top pointer — each
// cluster's request window extracted as a size-bit word and scanned
// with the same rotate / isolate-lowest-set kernel as the flat arbiter
// — advancing both pointers past the grantee.
//
//sparcs:hotpath
func (p *Hierarchical) StepBits(req BitVec) BitVec {
	req &= p.mask
	if p.holder >= 0 && req.Bit(p.holder) {
		return 1 << uint(p.holder)
	}
	for gi := 0; gi < p.groups; gi++ {
		g := p.top + gi
		if g >= p.groups {
			g -= p.groups
		}
		base := g * p.size
		w := req >> uint(base) & p.gmask
		if w == 0 {
			continue
		}
		m := p.leaf[g] + w.rotr(p.leaf[g], p.size).FirstSet()
		if m >= p.size {
			m -= p.size
		}
		t := base + m
		p.holder = t
		p.leaf[g] = m + 1
		if p.leaf[g] == p.size {
			p.leaf[g] = 0
		}
		p.top = g + 1
		if p.top == p.groups {
			p.top = 0
		}
		return 1 << uint(t)
	}
	p.holder = -1
	return 0
}
