package arbiter

import (
	"reflect"
	"strings"
	"testing"
)

// fuzzSeedSpecs is the seed corpus: every canonical kind and alias, the
// parameter grammar's corners, and representative junk.
func fuzzSeedSpecs() []string {
	return []string{
		"round-robin", "rr", "fifo", "priority", "fsm",
		"random", "random:1", "random:65535", "random:0", "random:65536",
		"netlist", "netlist:one-hot", "netlist:compact", "netlist:gray", "netlist:bogus",
		"preemptive", "preemptive:1", "preemptive:4", "preemptive:0", "preemptive:-3",
		"wrr", "weighted", "weighted-round-robin", "wrr:3", "wrr:1,2,3", "wrr:2,", "wrr:,", "wrr:0",
		"hier", "tree", "hierarchical", "hier:1", "hier:2", "hier:16", "hier:999",
		"", ":", "::", "rr:", "rr:x", "unknown", "fifo:1", "wrr:1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17",
		"random:99999999999999999999", "hier:-1", "préemptive", "wrr:\x00", "netlist:",
	}
}

// checkSpecRoundTrip is the property the fuzzer drives: parsing never
// panics; a successful parse canonicalizes through String() to a form
// that reparses to the identical spec (String is a fixed point of
// parse∘String); and instantiation at representative sizes either
// builds a policy of the right width or fails cleanly — never panics.
func checkSpecRoundTrip(t *testing.T, s string) {
	t.Helper()
	sp, err := ParsePolicySpec(s)
	if err != nil {
		if sp != nil {
			t.Fatalf("ParsePolicySpec(%q) returned both a spec and error %v", s, err)
		}
		if !strings.Contains(err.Error(), "arbiter:") {
			t.Fatalf("ParsePolicySpec(%q) error %q lacks the package prefix", s, err)
		}
		return
	}
	canon := sp.String()
	sp2, err := ParsePolicySpec(canon)
	if err != nil {
		t.Fatalf("canonical form %q of %q does not reparse: %v", canon, s, err)
	}
	if !reflect.DeepEqual(sp, sp2) {
		t.Fatalf("round trip diverges for %q: %+v -> %q -> %+v", s, sp, canon, sp2)
	}
	if got := sp2.String(); got != canon {
		t.Fatalf("String is not a fixed point for %q: %q -> %q", s, canon, got)
	}
	sizes := []int{MinN, 7} // 7 also exercises wrr/hier size constraints
	if sp.Kind == "netlist" || sp.Kind == "fsm" {
		sizes = sizes[:1] // synthesis-backed kinds: keep the fuzzer fast
	}
	for _, n := range sizes {
		p, err := sp.New(n)
		if err != nil {
			continue // size-dependent constraint; a clean error is fine
		}
		if p.N() != n {
			t.Fatalf("%q at N=%d built a %d-line policy", s, n, p.N())
		}
	}
}

// FuzzParsePolicySpec fuzzes the policy-spec grammar: no input may
// panic the parser, and every accepted input must round-trip through
// its canonical String() form. CI smokes this with a short -fuzztime.
func FuzzParsePolicySpec(f *testing.F) {
	for _, s := range fuzzSeedSpecs() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		checkSpecRoundTrip(t, s)
	})
}

// TestParsePolicySpecSeedCorpus runs the fuzz property over the seed
// corpus in plain `go test`, so the round-trip invariants are enforced
// on every run, not only when the fuzzer is invoked.
func TestParsePolicySpecSeedCorpus(t *testing.T) {
	for _, s := range fuzzSeedSpecs() {
		checkSpecRoundTrip(t, s)
	}
}
