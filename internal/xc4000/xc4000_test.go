package xc4000

import (
	"testing"

	"sparcs/internal/lutmap"
	"sparcs/internal/netlist"
)

// mapOf builds and maps a small netlist for packing tests.
func mapOf(t *testing.T, build func(n *netlist.Netlist)) *lutmap.Mapping {
	t.Helper()
	n := netlist.New()
	build(n)
	m, err := lutmap.Map(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPackSingleLUT(t *testing.T) {
	m := mapOf(t, func(n *netlist.Netlist) {
		a := n.AddInput("a")
		b := n.AddInput("b")
		n.AddOutput("y", n.AddGate(netlist.And, a, b))
	})
	p := Pack(m)
	if p.CLBs != 1 {
		t.Fatalf("CLBs = %d, want 1", p.CLBs)
	}
}

func TestPackPairsTwoLUTsPerCLB(t *testing.T) {
	m := mapOf(t, func(n *netlist.Netlist) {
		for o := 0; o < 4; o++ {
			a := n.AddInput("a")
			b := n.AddInput("b")
			c := n.AddInput("c")
			d := n.AddInput("d")
			n.AddOutput("y", n.AddGate(netlist.Xor, a, b, c, d))
		}
	})
	if m.NumLUTs() != 4 {
		t.Fatalf("LUTs = %d, want 4 independent", m.NumLUTs())
	}
	p := Pack(m)
	if p.CLBs != 2 {
		t.Fatalf("CLBs = %d, want 2 (two 4-LUTs per CLB)", p.CLBs)
	}
}

func TestPackHMerge(t *testing.T) {
	// y = (a&b&c&d) OR (e&f&g&h): two 4-LUTs combined by a 2-input LUT —
	// the classic F/G/H fold, one CLB total.
	m := mapOf(t, func(n *netlist.Netlist) {
		mk := func() netlist.NetID {
			ins := make([]netlist.NetID, 4)
			for i := range ins {
				ins[i] = n.AddInput("i")
			}
			return n.AddGate(netlist.And, ins...)
		}
		n.AddOutput("y", n.AddGate(netlist.Or, mk(), mk()))
	})
	p := Pack(m)
	if p.HMerges != 1 {
		t.Fatalf("HMerges = %d, want 1", p.HMerges)
	}
	if p.CLBs != 1 {
		t.Fatalf("CLBs = %d, want 1 via H fold", p.CLBs)
	}
}

func TestPackFFsRideAlong(t *testing.T) {
	// Two LUTs + two FFs fit one CLB.
	m := mapOf(t, func(n *netlist.Netlist) {
		for i := 0; i < 2; i++ {
			a := n.AddInput("a")
			b := n.AddInput("b")
			y := n.AddGate(netlist.And, a, b)
			q := n.AddDFF(y, false, "q")
			n.AddOutput("q", q)
		}
	})
	p := Pack(m)
	if p.CLBs != 1 || p.LooseFFs != 0 {
		t.Fatalf("pack = %+v, want 1 CLB and no loose FFs", p)
	}
}

func TestPackLooseFFsForceCLBs(t *testing.T) {
	// Pure shift register: 6 FFs, no LUTs -> 3 CLBs of flip-flops.
	n := netlist.New()
	d := n.AddInput("d")
	cur := d
	for i := 0; i < 6; i++ {
		cur = n.AddDFF(cur, false, "q")
	}
	n.AddOutput("q", cur)
	m, err := lutmap.Map(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := Pack(m)
	if p.CLBs != 3 {
		t.Fatalf("CLBs = %d, want 3 for 6 FFs", p.CLBs)
	}
}

func TestTimingMonotoneInDepth(t *testing.T) {
	shallow := mapOf(t, func(n *netlist.Netlist) {
		a := n.AddInput("a")
		b := n.AddInput("b")
		n.AddOutput("y", n.AddGate(netlist.And, a, b))
	})
	deep := mapOf(t, func(n *netlist.Netlist) {
		ins := make([]netlist.NetID, 100)
		for i := range ins {
			ins[i] = n.AddInput("i")
		}
		n.AddOutput("y", n.AddGate(netlist.Xor, ins...))
	})
	ts, td := Timing(shallow), Timing(deep)
	if ts.MaxClockMHz <= td.MaxClockMHz {
		t.Fatalf("shallow %.1f MHz should beat deep %.1f MHz", ts.MaxClockMHz, td.MaxClockMHz)
	}
	if td.LUTLevels <= ts.LUTLevels {
		t.Fatalf("deep levels %d should exceed shallow %d", td.LUTLevels, ts.LUTLevels)
	}
}

func TestTimingEmptyMapping(t *testing.T) {
	tr := Timing(&lutmap.Mapping{})
	if tr.MaxClockMHz != 1000/TClockMin {
		t.Fatalf("empty mapping MHz = %v", tr.MaxClockMHz)
	}
}

func TestTimingFanoutPenalty(t *testing.T) {
	// One driver feeding many LUTs is slower than feeding one.
	lowFan := mapOf(t, func(n *netlist.Netlist) {
		a := n.AddInput("a")
		b := n.AddInput("b")
		x := n.AddGate(netlist.And, a, b)
		n.AddOutput("y", n.AddGate(netlist.Or, x, a))
	})
	highFan := mapOf(t, func(n *netlist.Netlist) {
		a := n.AddInput("a")
		b := n.AddInput("b")
		x := n.AddGate(netlist.And, a, b)
		for i := 0; i < 40; i++ {
			c := n.AddInput("c")
			n.AddOutput("y", n.AddGate(netlist.Or, x, c))
		}
	})
	if Timing(lowFan).MaxClockMHz <= Timing(highFan).MaxClockMHz {
		t.Fatal("high-fanout design should be slower")
	}
}

func TestFitsDevice(t *testing.T) {
	p := PackResult{CLBs: 100}
	ok, u := Fits(p, XC4013E)
	if !ok || u <= 0 || u >= 1 {
		t.Fatalf("Fits = %v, %v", ok, u)
	}
	p = PackResult{CLBs: 1000}
	if ok, _ := Fits(p, XC4013E); ok {
		t.Fatal("1000 CLBs should not fit XC4013E")
	}
}

func TestUtilizationString(t *testing.T) {
	s := Utilization(PackResult{CLBs: 288}, XC4013E)
	if s != "288/576 CLBs (50.0%)" {
		t.Fatalf("Utilization = %q", s)
	}
}
