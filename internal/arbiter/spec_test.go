package arbiter

import (
	"strings"
	"testing"
)

func TestParsePolicySpecCanonical(t *testing.T) {
	cases := map[string]string{
		"round-robin":            "round-robin",
		"rr":                     "round-robin",
		"fifo":                   "fifo",
		"priority":               "priority",
		"random":                 "random:1",
		"random:77":              "random:77",
		"fsm":                    "fsm",
		"netlist":                "netlist:one-hot",
		"netlist:gray":           "netlist:gray",
		"netlist:compact":        "netlist:compact",
		"preemptive":             "preemptive:4",
		"preemptive:16":          "preemptive:16",
		"wrr":                    "wrr:1",
		"wrr:3":                  "wrr:3",
		"wrr:1,2,3":              "wrr:1,2,3",
		"weighted:2":             "wrr:2",
		"weighted-round-robin:2": "wrr:2",
		"hier":                   "hier:2",
		"hier:3":                 "hier:3",
		"tree:3":                 "hier:3",
		"hierarchical:2":         "hier:2",
	}
	for in, want := range cases {
		sp, err := ParsePolicySpec(in)
		if err != nil {
			t.Errorf("ParsePolicySpec(%q): %v", in, err)
			continue
		}
		if got := sp.String(); got != want {
			t.Errorf("ParsePolicySpec(%q).String() = %q, want %q", in, got, want)
		}
	}
}

func TestParsePolicySpecErrors(t *testing.T) {
	for _, in := range []string{
		"", "lottery", "rr:1", "fifo:2", "priority:x", "fsm:gray",
		"random:0", "random:70000", "random:x",
		"netlist:johnson",
		"preemptive:0", "preemptive:-1", "preemptive:x",
		"wrr:0", "wrr:x", "wrr:1,0,2", "wrr:1,,2",
		"hier:0", "hier:-2", "hier:x",
	} {
		if _, err := ParsePolicySpec(in); err == nil {
			t.Errorf("ParsePolicySpec(%q) should error", in)
		}
	}
}

// TestNewPolicyReachesEveryImplementation: the satellite bugfix — every
// policy implementation in the package must be constructible by name,
// including FSMPolicy, NetlistPolicy, and PreemptiveRoundRobin, which
// the old constructor could not reach.
func TestNewPolicyReachesEveryImplementation(t *testing.T) {
	const n = 6
	specs := []string{
		"round-robin", "fifo", "priority", "random:7",
		"fsm", "netlist:one-hot", "preemptive:3", "wrr:2", "wrr:1,2,3,1,2,3", "hier:3",
	}
	seen := map[string]bool{}
	req := make([]bool, n)
	req[1] = true
	for _, spec := range specs {
		p, err := NewPolicy(spec, n)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", spec, err)
		}
		if p.N() != n {
			t.Fatalf("NewPolicy(%q).N() = %d, want %d", spec, p.N(), n)
		}
		g := p.Step(req)
		if !g[1] {
			t.Fatalf("NewPolicy(%q): sole requester not granted: %v", spec, g)
		}
		seen[p.Name()] = true
	}
	if len(seen) < 9 {
		t.Fatalf("only %d distinct policy implementations reachable: %v", len(seen), seen)
	}
}

// TestNewPolicySizeConstraints: size-dependent parameters fail cleanly.
func TestNewPolicySizeConstraints(t *testing.T) {
	if _, err := NewPolicy("wrr:1,2", 6); err == nil || !strings.Contains(err.Error(), "weights") {
		t.Errorf("wrr with 2 weights at N=6 should error about weights, got %v", err)
	}
	if _, err := NewPolicy("hier:4", 6); err == nil || !strings.Contains(err.Error(), "divide") {
		t.Errorf("hier:4 at N=6 should error about divisibility, got %v", err)
	}
	if _, err := NewPolicy("hier:3", 6); err != nil {
		t.Errorf("hier:3 at N=6: %v", err)
	}
	if _, err := NewPolicy("hier:7", 6); err == nil {
		t.Error("hier:7 at N=6 should error (more groups than tasks)")
	}
	if _, err := NewPolicy("rr", 1); err == nil {
		t.Error("N=1 should error")
	}
}

// TestRandomSeedVariesTraffic: the satellite bugfix — "random:<seed>"
// must actually change the grant stream, so sweeps stop silently
// replaying seed 1, while equal seeds stay reproducible.
func TestRandomSeedVariesTraffic(t *testing.T) {
	const n = 5
	step := func(spec string) []int {
		p, err := NewPolicy(spec, n)
		if err != nil {
			t.Fatal(err)
		}
		req := make([]bool, n)
		picks := make([]int, 0, 64)
		for c := 0; c < 64; c++ {
			for i := range req {
				req[i] = true
			}
			if len(picks) > 0 && picks[len(picks)-1] >= 0 {
				// The previous holder releases, forcing re-arbitration.
				req[picks[len(picks)-1]] = false
			}
			picks = append(picks, holderOf(p.Step(req)))
		}
		return picks
	}
	a, b, c := step("random:2"), step("random:2"), step("random:3")
	if !equalInts(a, b) {
		t.Error("random:2 must be reproducible")
	}
	if equalInts(a, c) {
		t.Error("random:2 and random:3 produced identical grant streams")
	}
	// The bare name keeps its historical meaning: seed 1.
	if !equalInts(step("random"), step("random:1")) {
		t.Error(`"random" must equal "random:1"`)
	}
}

func holderOf(g []bool) int {
	for i, v := range g {
		if v {
			return i
		}
	}
	return -1
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
