package fft

// Fixed-point complex arithmetic for the hardware data path: Q16.16
// real/imaginary parts packed into one int64 word, matching the 32-bit
// memory banks of the Wildforce (one complex value spans two physical
// words; the simulator's word granularity carries the pair for
// convenience).

// Pack builds a packed complex word from Q16.16 real and imaginary parts.
func Pack(re, im int32) int64 {
	return int64(uint64(uint32(re))<<32 | uint64(uint32(im)))
}

// Unpack splits a packed complex word.
func Unpack(v int64) (re, im int32) {
	return int32(uint32(uint64(v) >> 32)), int32(uint32(uint64(v)))
}

// FromPixel converts an integer pixel value to a packed complex word with
// zero imaginary part.
func FromPixel(p int) int64 { return Pack(int32(p)<<16, 0) }

// FFT4Fixed computes the 4-point FFT of four packed complex values.
// Every 4-point twiddle factor is 1, -1, j, or -j, so the transform is
// exact in fixed point (adds, subtracts, and real/imaginary swaps only) —
// which is why the 4x4 tile size suited mid-90s FPGAs.
//
// Output order is natural (X0..X3).
func FFT4Fixed(in []int64) []int64 {
	if len(in) != 4 {
		panic("fft: FFT4Fixed needs exactly 4 values")
	}
	r := make([]int32, 4)
	m := make([]int32, 4)
	for i, v := range in {
		r[i], m[i] = Unpack(v)
	}
	// Stage 1 (decimation in time, pairs (0,2) and (1,3)).
	a0r, a0i := r[0]+r[2], m[0]+m[2]
	a1r, a1i := r[0]-r[2], m[0]-m[2]
	a2r, a2i := r[1]+r[3], m[1]+m[3]
	a3r, a3i := r[1]-r[3], m[1]-m[3]
	// Stage 2: X0 = a0 + a2; X2 = a0 - a2;
	// X1 = a1 + (-j)·a3; X3 = a1 - (-j)·a3. (-j)·(x+jy) = y - jx.
	x0r, x0i := a0r+a2r, a0i+a2i
	x2r, x2i := a0r-a2r, a0i-a2i
	x1r, x1i := a1r+a3i, a1i-a3r
	x3r, x3i := a1r-a3i, a1i+a3r
	return []int64{Pack(x0r, x0i), Pack(x1r, x1i), Pack(x2r, x2i), Pack(x3r, x3i)}
}

// RealParts extracts the Q16.16 real parts of packed values.
func RealParts(in []int64) []int64 {
	out := make([]int64, len(in))
	for i, v := range in {
		re, _ := Unpack(v)
		out[i] = int64(re)
	}
	return out
}

// ImagParts extracts the Q16.16 imaginary parts of packed values.
func ImagParts(in []int64) []int64 {
	out := make([]int64, len(in))
	for i, v := range in {
		_, im := Unpack(v)
		out[i] = int64(im)
	}
	return out
}

// Tile2DFixed computes the full 4x4 two-dimensional fixed-point FFT of a
// tile given in row-major packed form: the reference the hardware
// simulation's memory contents are checked against. Rows first, then
// columns.
func Tile2DFixed(tile []int64) []int64 {
	if len(tile) != 16 {
		panic("fft: Tile2DFixed needs a 4x4 tile")
	}
	mid := make([]int64, 16)
	for row := 0; row < 4; row++ {
		copy(mid[row*4:], FFT4Fixed(tile[row*4:row*4+4]))
	}
	out := make([]int64, 16)
	col := make([]int64, 4)
	for c := 0; c < 4; c++ {
		for rIdx := 0; rIdx < 4; rIdx++ {
			col[rIdx] = mid[rIdx*4+c]
		}
		f := FFT4Fixed(col)
		for rIdx := 0; rIdx < 4; rIdx++ {
			out[rIdx*4+c] = f[rIdx]
		}
	}
	return out
}
