package arbiter

import (
	"fmt"
	"strconv"
	"strings"

	"sparcs/internal/fsm"
)

// PolicySpec is a parsed policy name with its parameters. The textual
// grammar is "kind" or "kind:param":
//
//	round-robin | rr          behavioral round-robin (Figure 5 semantics)
//	fifo                      arrival-order queue
//	priority                  static priority (task 1 highest)
//	random[:seed]             LFSR-random; seed in [1,65535], default 1
//	fsm                       the symbolic Figure 5 machine, interpreted
//	netlist[:encoding]        the synthesized gate-level arbiter
//	                          (one-hot, compact, gray; default one-hot)
//	preemptive[:maxHold]      round-robin revoking a hog after maxHold
//	                          cycles (default 4) while others wait
//	wrr[:w | :w1,w2,...,wN]   weighted round-robin; uniform weight w or
//	                          one weight per task (default weight 1)
//	hier[:groups] | tree      hierarchical tree-of-round-robins over
//	                          `groups` equal clusters (default 2)
//
// A PolicySpec is parsed once (so name errors surface before any
// compilation or simulation starts) and instantiated per arbiter size
// with New.
type PolicySpec struct {
	// Kind is the canonical policy kind: "round-robin", "fifo",
	// "priority", "random", "fsm", "netlist", "preemptive", "wrr", or
	// "hier".
	Kind string
	// Seed is the LFSR seed for "random".
	Seed uint16
	// MaxHold is the revocation threshold for "preemptive".
	MaxHold int
	// Weight is the uniform service quantum for "wrr" when Weights is
	// nil.
	Weight int
	// Weights are per-task service quanta for "wrr"; len must equal the
	// arbiter size at New time.
	Weights []int
	// Groups is the cluster count for "hier"; it must divide the arbiter
	// size at New time.
	Groups int
	// Encoding selects the synthesis state encoding for "netlist".
	Encoding fsm.Encoding
}

// ParsePolicySpec parses a policy name of the grammar documented on
// PolicySpec. Parameters are validated here; size-dependent constraints
// (per-task weight counts, group divisibility) are checked by New.
func ParsePolicySpec(s string) (*PolicySpec, error) {
	kind, param := s, ""
	if i := strings.IndexByte(s, ':'); i >= 0 {
		kind, param = s[:i], s[i+1:]
	}
	noParam := func(canonical string) (*PolicySpec, error) {
		if param != "" {
			return nil, fmt.Errorf("arbiter: policy %q takes no parameter (got %q)", canonical, param)
		}
		return &PolicySpec{Kind: canonical}, nil
	}
	switch kind {
	case "round-robin", "rr":
		return noParam("round-robin")
	case "fifo":
		return noParam("fifo")
	case "priority":
		return noParam("priority")
	case "fsm":
		return noParam("fsm")
	case "random":
		seed := uint16(1)
		if param != "" {
			v, err := strconv.ParseUint(param, 10, 16)
			if err != nil || v == 0 {
				return nil, fmt.Errorf("arbiter: random seed must be in [1,65535], got %q", param)
			}
			seed = uint16(v)
		}
		return &PolicySpec{Kind: "random", Seed: seed}, nil
	case "netlist":
		enc := fsm.OneHot
		if param != "" {
			e, err := fsm.ParseEncoding(param)
			if err != nil {
				return nil, fmt.Errorf("arbiter: netlist policy: %w", err)
			}
			enc = e
		}
		return &PolicySpec{Kind: "netlist", Encoding: enc}, nil
	case "preemptive":
		maxHold := 4
		if param != "" {
			v, err := strconv.Atoi(param)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("arbiter: preemptive maxHold must be a positive integer, got %q", param)
			}
			maxHold = v
		}
		return &PolicySpec{Kind: "preemptive", MaxHold: maxHold}, nil
	case "wrr", "weighted", "weighted-round-robin":
		sp := &PolicySpec{Kind: "wrr", Weight: 1}
		if param == "" {
			return sp, nil
		}
		if !strings.Contains(param, ",") {
			v, err := strconv.Atoi(param)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("arbiter: wrr weight must be a positive integer, got %q", param)
			}
			sp.Weight = v
			return sp, nil
		}
		for _, f := range strings.Split(param, ",") {
			v, err := strconv.Atoi(f)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("arbiter: wrr weight list must be positive integers, got %q", param)
			}
			sp.Weights = append(sp.Weights, v)
		}
		return sp, nil
	case "hier", "tree", "hierarchical":
		groups := 2
		if param != "" {
			v, err := strconv.Atoi(param)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("arbiter: hier group count must be a positive integer, got %q", param)
			}
			groups = v
		}
		return &PolicySpec{Kind: "hier", Groups: groups}, nil
	}
	return nil, fmt.Errorf("arbiter: unknown policy %q (see ParsePolicySpec for the grammar)", s)
}

// String renders the canonical textual form of the spec.
func (sp *PolicySpec) String() string {
	switch sp.Kind {
	case "random":
		return fmt.Sprintf("random:%d", sp.Seed)
	case "netlist":
		return fmt.Sprintf("netlist:%s", sp.Encoding)
	case "preemptive":
		return fmt.Sprintf("preemptive:%d", sp.MaxHold)
	case "wrr":
		if sp.Weights != nil {
			parts := make([]string, len(sp.Weights))
			for i, w := range sp.Weights {
				parts[i] = strconv.Itoa(w)
			}
			return "wrr:" + strings.Join(parts, ",")
		}
		return fmt.Sprintf("wrr:%d", sp.Weight)
	case "hier":
		return fmt.Sprintf("hier:%d", sp.Groups)
	}
	return sp.Kind
}

// MaxN reports the largest arbiter width the spec's kind supports:
// MaxSynthN for the synthesized kinds ("fsm", "netlist"), whose state
// machines enumerate 2^N input combinations, and MaxN — the bitset
// kernel's word width — for every behavioral kind.
func (sp *PolicySpec) MaxN() int {
	if sp.Kind == "fsm" || sp.Kind == "netlist" {
		return MaxSynthN
	}
	return MaxN
}

// NewWidened instantiates the spec for an arbiter widened from
// `members` real request lines to `width` total lines by appended
// background (phantom/correlated) lanes. For every kind whose grant
// decisions depend only on the requesting subset and its cyclic order
// this is simply New(width); for "hier" — whose tree layout would
// otherwise rebalance the members when the total line count grows — the
// member lines keep the layout of New(members) and the appended lanes
// form one extra cluster (NewHierarchicalWidened), so quiet background
// lanes leave the members' grant stream byte-identical. Size-dependent
// constraints (group divisibility, per-task weight counts) are checked
// against the member count for "hier" and the total width otherwise.
func (sp *PolicySpec) NewWidened(members, width int) (Policy, error) {
	if sp.Kind == "hier" && width != members {
		if max := sp.MaxN(); width < MinN || width > max {
			return nil, RangeError(width)
		}
		return NewHierarchicalWidened(members, width, sp.Groups)
	}
	return sp.New(width)
}

// New instantiates the spec for an n-line arbiter, enforcing the
// size-dependent constraints (per-kind width bounds, weight counts,
// group divisibility).
func (sp *PolicySpec) New(n int) (Policy, error) {
	if max := sp.MaxN(); n < MinN || n > max {
		if max == MaxSynthN {
			return nil, SynthRangeError(n)
		}
		return nil, RangeError(n)
	}
	switch sp.Kind {
	case "round-robin":
		return NewRoundRobin(n), nil
	case "fifo":
		return NewFIFO(n), nil
	case "priority":
		return NewPriority(n), nil
	case "random":
		return NewRandom(n, sp.Seed), nil
	case "fsm":
		return NewFSMPolicy(n)
	case "netlist":
		return NewNetlistPolicy(n, sp.Encoding)
	case "preemptive":
		return NewPreemptiveRoundRobin(n, sp.MaxHold)
	case "wrr":
		weights := sp.Weights
		if weights == nil {
			weights = make([]int, n)
			for i := range weights {
				weights[i] = sp.Weight
			}
		}
		return NewWeightedRoundRobin(n, weights)
	case "hier":
		return NewHierarchical(n, sp.Groups)
	}
	return nil, fmt.Errorf("arbiter: unknown policy kind %q", sp.Kind)
}
