// Package other is outside the deterministic core: the same constructs
// draw no diagnostics here.
package other

import "time"

func Clock(m map[string]int) int64 {
	total := int64(0)
	for _, v := range m {
		total += int64(v)
	}
	go func() {}()
	return total + time.Now().UnixNano()
}
