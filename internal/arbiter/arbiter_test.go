package arbiter

import (
	"math/rand"
	"testing"

	"sparcs/internal/fsm"
)

func TestMachineBounds(t *testing.T) {
	if _, err := Machine(1); err == nil {
		t.Error("N=1 should be rejected")
	}
	if _, err := Machine(MaxN + 1); err == nil {
		t.Error("N>MaxN should be rejected")
	}
}

func TestMachineShape(t *testing.T) {
	for n := MinN; n <= 6; n++ {
		m, err := Machine(n)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.NumStates(); got != 2*n {
			t.Fatalf("N=%d: states = %d, want %d", n, got, 2*n)
		}
		if len(m.Inputs) != n || len(m.Outputs) != n {
			t.Fatalf("N=%d: I/O = %d/%d", n, len(m.Inputs), len(m.Outputs))
		}
		if m.States[m.Reset] != "F1" {
			t.Fatalf("N=%d: reset state = %s, want F1", n, m.States[m.Reset])
		}
	}
}

// TestMachineMatchesBehavioral cross-checks the Figure 5 FSM against the
// independent behavioral round-robin implementation, including the
// symbolic state trajectory.
func TestMachineMatchesBehavioral(t *testing.T) {
	for n := MinN; n <= 8; n++ {
		m, err := Machine(n)
		if err != nil {
			t.Fatal(err)
		}
		ref := fsm.NewReference(m)
		beh := NewRoundRobin(n)
		r := rand.New(rand.NewSource(int64(n)))
		req := make([]bool, n)
		for c := 0; c < 2000; c++ {
			for i := range req {
				req[i] = r.Intn(3) != 0 // bias toward contention
			}
			fsmOut, err := ref.Step(req)
			if err != nil {
				t.Fatal(err)
			}
			behOut := beh.Step(req)
			for i := range fsmOut {
				if fsmOut[i] != behOut[i] {
					t.Fatalf("N=%d cycle %d req=%v: FSM grant[%d]=%v, behavioral %v",
						n, c, req, i, fsmOut[i], behOut[i])
				}
			}
			if ref.StateName() != beh.State() {
				t.Fatalf("N=%d cycle %d: FSM state %s, behavioral %s",
					n, c, ref.StateName(), beh.State())
			}
		}
	}
}

func TestRoundRobinBasicRotation(t *testing.T) {
	a := NewRoundRobin(3)
	// All three request: grants must rotate 1, 2, 3 as each releases.
	g := a.Step([]bool{true, true, true})
	if !g[0] {
		t.Fatalf("first grant should go to task 1, got %v", g)
	}
	g = a.Step([]bool{false, true, true}) // task 1 releases
	if !g[1] {
		t.Fatalf("second grant should go to task 2, got %v", g)
	}
	g = a.Step([]bool{true, false, true}) // task 2 releases, task 1 re-requests
	if !g[2] {
		t.Fatalf("third grant should go to task 3 (cyclic), got %v", g)
	}
	g = a.Step([]bool{true, false, false})
	if !g[0] {
		t.Fatalf("fourth grant wraps to task 1, got %v", g)
	}
}

func TestRoundRobinHolderNotPreempted(t *testing.T) {
	a := NewRoundRobin(4)
	a.Step([]bool{false, false, true, false})
	for c := 0; c < 5; c++ {
		g := a.Step([]bool{true, true, true, true})
		if !g[2] {
			t.Fatalf("cycle %d: holder task 3 preempted: %v", c, g)
		}
	}
}

func TestRoundRobinPriorityPassesOnIdle(t *testing.T) {
	a := NewRoundRobin(3)
	a.Step([]bool{true, false, false})  // C1
	a.Step([]bool{false, false, false}) // zeroes: priority passes to F2
	if a.State() != "F2" {
		t.Fatalf("state = %s, want F2", a.State())
	}
	g := a.Step([]bool{true, true, false})
	if !g[1] {
		t.Fatalf("task 2 has priority in F2, got %v", g)
	}
}

func TestNewPolicyNames(t *testing.T) {
	for _, name := range []string{"round-robin", "rr", "fifo", "priority", "random"} {
		p, err := NewPolicy(name, 4)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		if p.N() != 4 {
			t.Fatalf("N = %d", p.N())
		}
	}
	if _, err := NewPolicy("lottery", 4); err == nil {
		t.Error("unknown policy should error")
	}
	if _, err := NewPolicy("rr", 1); err == nil {
		t.Error("N=1 should error")
	}
}

// TestAllPoliciesSafety: every policy maintains mutual exclusion and never
// grants idle tasks, under random traffic.
func TestAllPoliciesSafety(t *testing.T) {
	for _, name := range []string{"round-robin", "fifo", "priority", "random"} {
		for n := MinN; n <= 8; n += 2 {
			p, err := NewPolicy(name, n)
			if err != nil {
				t.Fatal(err)
			}
			r := rand.New(rand.NewSource(int64(n) * 31))
			var steps []TraceStep
			req := make([]bool, n)
			for c := 0; c < 1000; c++ {
				for i := range req {
					req[i] = r.Intn(2) == 0
				}
				g := p.Step(req)
				steps = append(steps, TraceStep{
					Req:   append([]bool(nil), req...),
					Grant: append([]bool(nil), g...),
				})
			}
			if err := CheckMutualExclusion(steps); err != nil {
				t.Errorf("%s N=%d: %v", name, n, err)
			}
			if err := CheckGrantImpliesRequest(steps); err != nil {
				t.Errorf("%s N=%d: %v", name, n, err)
			}
		}
	}
}

// TestRoundRobinBoundedWaitProperty: under adversarial all-request
// traffic with single-cycle holds, no task waits more than N-1 episodes.
func TestRoundRobinBoundedWaitProperty(t *testing.T) {
	for n := MinN; n <= 10; n++ {
		a := NewRoundRobin(n)
		r := rand.New(rand.NewSource(int64(n) * 7))
		var steps []TraceStep
		req := make([]bool, n)
		held := make([]int, n) // cycles the current holder has held
		for c := 0; c < 3000; c++ {
			for i := range req {
				// Tasks request persistently; a granted task releases
				// after at most 2 cycles (the paper's M=2 protocol).
				if held[i] >= 2 {
					req[i] = false
					held[i] = 0
				} else if !req[i] {
					req[i] = r.Intn(2) == 0
				}
			}
			g := a.Step(req)
			for i := range g {
				if g[i] {
					held[i]++
				}
			}
			steps = append(steps, TraceStep{
				Req:   append([]bool(nil), req...),
				Grant: append([]bool(nil), g...),
			})
		}
		if err := CheckAll(n, steps); err != nil {
			t.Errorf("N=%d: %v", n, err)
		}
	}
}

// TestPriorityStarves demonstrates why the paper rejects static priority:
// under sustained pressure from higher-priority tasks that release and
// re-request (the M=2 access protocol), the lowest-priority task starves.
func TestPriorityStarves(t *testing.T) {
	n := 4
	p := NewPriority(n)
	var steps []TraceStep
	req := []bool{true, true, true, true}
	held := make([]int, n)
	for c := 0; c < 200; c++ {
		g := p.Step(req)
		steps = append(steps, TraceStep{Req: append([]bool(nil), req...), Grant: append([]bool(nil), g...)})
		if g[n-1] {
			t.Fatalf("cycle %d: task N granted despite higher-priority pressure", c)
		}
		// Tasks 1..3 follow the access protocol: hold two cycles, release
		// one cycle, re-request. Task 4 requests forever.
		for i := 0; i < n-1; i++ {
			if g[i] {
				held[i]++
			}
			switch {
			case held[i] >= 2:
				req[i] = false
				held[i] = 0
			default:
				req[i] = true
			}
		}
	}
	if err := CheckBoundedWait(n, steps); err == nil {
		t.Fatal("static priority should violate the N-1 wait bound")
	}
	// The same workload under round-robin stays within the bound.
	rr := NewRoundRobin(n)
	steps = steps[:0]
	req = []bool{true, true, true, true}
	held = make([]int, n)
	for c := 0; c < 200; c++ {
		g := rr.Step(req)
		steps = append(steps, TraceStep{Req: append([]bool(nil), req...), Grant: append([]bool(nil), g...)})
		for i := 0; i < n; i++ {
			if g[i] {
				held[i]++
			}
			switch {
			case held[i] >= 2:
				req[i] = false
				held[i] = 0
			default:
				req[i] = true
			}
		}
	}
	if err := CheckBoundedWait(n, steps); err != nil {
		t.Fatalf("round-robin on the same workload: %v", err)
	}
}

// TestFIFOServesInArrivalOrder: staggered arrivals are served in order.
func TestFIFOServesInArrivalOrder(t *testing.T) {
	f := NewFIFO(3)
	// Task 3 arrives first, then task 1, then task 2.
	g := f.Step([]bool{false, false, true})
	if !g[2] {
		t.Fatalf("task 3 arrived first, got %v", g)
	}
	g = f.Step([]bool{true, false, true})
	if !g[2] {
		t.Fatalf("task 3 still holds, got %v", g)
	}
	g = f.Step([]bool{true, true, false}) // task 3 releases
	if !g[0] {
		t.Fatalf("task 1 queued before task 2, got %v", g)
	}
	g = f.Step([]bool{false, true, false})
	if !g[1] {
		t.Fatalf("task 2 served last, got %v", g)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a := NewRandom(5, 77)
	b := NewRandom(5, 77)
	r := rand.New(rand.NewSource(5))
	req := make([]bool, 5)
	for c := 0; c < 500; c++ {
		for i := range req {
			req[i] = r.Intn(2) == 0
		}
		ga := a.Step(req)
		gb := b.Step(req)
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("cycle %d: same seed diverged", c)
			}
		}
	}
}

func TestCheckersCatchViolations(t *testing.T) {
	bad := []TraceStep{{Req: []bool{true, true}, Grant: []bool{true, true}}}
	if err := CheckMutualExclusion(bad); err == nil {
		t.Error("double grant should fail mutual exclusion")
	}
	bad = []TraceStep{{Req: []bool{false, true}, Grant: []bool{true, false}}}
	if err := CheckGrantImpliesRequest(bad); err == nil {
		t.Error("grant to idle task should fail")
	}
	bad = []TraceStep{{Req: []bool{true, false}, Grant: []bool{false, false}}}
	if err := CheckWorkConserving(bad); err == nil {
		t.Error("ungrant with pending request should fail work conservation")
	}
}

func TestMaxWaitEpisodesCounts(t *testing.T) {
	// Task 2 requests from cycle 0; tasks 1 and 3 are each served once
	// before it: 2 episodes.
	steps := []TraceStep{
		{Req: []bool{true, true, true}, Grant: []bool{true, false, false}},
		{Req: []bool{false, true, true}, Grant: []bool{false, false, true}},
		{Req: []bool{false, true, false}, Grant: []bool{false, true, false}},
	}
	w := MaxWaitEpisodes(3, steps)
	if w[1] != 1 {
		// Episode count: task 3's grant is 1 new episode after task 2
		// started waiting (task 1's grant began in the same cycle task 2
		// started requesting — it still counts).
		t.Logf("wait episodes: %v", w)
	}
	if w[1] > 2 {
		t.Fatalf("task 2 waited %d episodes, want <= 2", w[1])
	}
}

func TestRoundRobinResetRestoresF1(t *testing.T) {
	a := NewRoundRobin(3)
	a.Step([]bool{false, false, true})
	a.Reset()
	if a.State() != "F1" {
		t.Fatalf("state after reset = %s, want F1", a.State())
	}
	g := a.Step([]bool{false, true, true})
	if !g[1] {
		t.Fatalf("after reset task 2 beats task 3 from F1, got %v", g)
	}
}

// TestStepIntoMatchesStep drives every policy with a deterministic
// request pattern through both the allocating Step and the in-place
// StepInto paths (on twin instances) and requires identical grant
// streams — the contract the simulator's allocation-free hot loop
// depends on.
func TestStepIntoMatchesStep(t *testing.T) {
	const n = 5
	mk := func() map[string]func() Policy {
		return map[string]func() Policy{
			"round-robin": func() Policy { return NewRoundRobin(n) },
			"fifo":        func() Policy { return NewFIFO(n) },
			"priority":    func() Policy { return NewPriority(n) },
			"random":      func() Policy { return NewRandom(n, 7) },
			"preemptive": func() Policy {
				p, err := NewPreemptiveRoundRobin(n, 3)
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			"fsm": func() Policy {
				p, err := NewFSMPolicy(n)
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
		}
	}
	for name, ctor := range mk() {
		t.Run(name, func(t *testing.T) {
			plain := ctor()
			inPlace := ctor()
			grant := make([]bool, n)
			req := make([]bool, n)
			lfsr := uint32(0xACE1)
			for c := 0; c < 500; c++ {
				for i := range req {
					lfsr = lfsr*1664525 + 1013904223
					req[i] = lfsr&0x30000 != 0 // requests ~75% of the time
				}
				want := plain.Step(req)
				StepInto(inPlace, req, grant)
				for i := range grant {
					if grant[i] != want[i] {
						t.Fatalf("cycle %d: StepInto %v, Step %v", c, grant, want)
					}
				}
			}
		})
	}
}

// TestStepIntoFallback exercises the adapter path for a policy that only
// implements Step.
func TestStepIntoFallback(t *testing.T) {
	p := stepOnlyPolicy{inner: NewRoundRobin(3)}
	grant := make([]bool, 3)
	StepInto(p, []bool{false, true, true}, grant)
	if !grant[1] || grant[0] || grant[2] {
		t.Fatalf("fallback grant = %v, want task 2", grant)
	}
}

// stepOnlyPolicy hides the in-place fast path, modeling an external
// Policy implementation.
type stepOnlyPolicy struct{ inner *RoundRobin }

func (p stepOnlyPolicy) Name() string           { return "step-only" }
func (p stepOnlyPolicy) N() int                 { return p.inner.N() }
func (p stepOnlyPolicy) Reset()                 { p.inner.Reset() }
func (p stepOnlyPolicy) Step(req []bool) []bool { return p.inner.Step(req) }
