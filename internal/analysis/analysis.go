// Package analysis is sparcsvet's static-analysis framework: the
// Analyzer/Pass/Diagnostic surface of golang.org/x/tools/go/analysis,
// re-implemented on the standard library alone because this module
// deliberately carries no external dependencies. The analyzers in this
// package mechanically enforce the invariants every differential proof
// in the repo rests on:
//
//	hotpath      — //sparcs:hotpath code (and every module-local function
//	               it can reach through the call graph, devirtualized
//	               interface calls included) must not allocate
//	determinism  — cycle-rate packages must not read wall clocks, the
//	               environment, CPU counts, global rand, unordered map
//	               iteration, or spawn goroutines outside sim.ParallelFor
//	bitwidth     — BitVec shifts must stay below the 64-bit word, []bool
//	               request vectors must not be built on the cycle path,
//	               and the 16/64 size bounds must be spelled
//	               MaxSynthN/MaxN
//	errsentinel  — sentinel errors are wrapped with %w and tested with
//	               errors.Is/errors.As, never string-matched
//	lockorder    — the module-wide lock acquisition graph must be
//	               acyclic, and no code may block while holding a lock
//	goroleak     — service goroutines must select on ctx.Done() or block
//	               only on buffered channel sends; slot acquires pair
//	               with deferred releases
//
// The analyzers share a module-wide call graph (see callgraph.go) that
// resolves static calls exactly and devirtualizes interface calls over
// the module's type index, so interprocedural walks survive dynamic
// dispatch.
//
// Findings are suppressed per site with
//
//	//sparcs:ignore <analyzer>[,<analyzer>] <reason>
//
// on the offending line or the line above it; the suite itself parses
// these and reports malformed or unused ones. cmd/sparcsvet is the
// multichecker driver (standalone or via go vet -vettool).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis pass and how to run it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore comments.
	Name string
	// Doc is the one-paragraph description printed by sparcsvet -list.
	Doc string
	// Run performs the analysis over one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer with one package to analyze and a sink
// for its diagnostics, mirroring golang.org/x/tools/go/analysis.Pass.
// Module gives cross-package context (the hotpath analyzer follows
// static calls into other module packages); it holds at least the
// current package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Package   *Package
	Module    *Module

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, attributed to the analyzer that produced
// it (or to "sparcsvet" itself for malformed/unused ignore comments).
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Package is one source-loaded, type-checked package.
type Package struct {
	Path string
	Dir  string
	// Root marks packages named by the load patterns; analyzers run on
	// roots, while dependency packages provide cross-package context.
	Root bool
	// Broken marks a package whose load failed (parse or type-check
	// errors, or a broken local dependency). Its failure is recorded in
	// Module.Errors; analyzers skip it, but whatever parsed survives for
	// comment-level processing. Pkg/Info may be nil or partial.
	Broken bool
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
	// Src maps each file name (as registered in the FileSet) to its
	// source bytes, for line-level comment classification.
	Src map[string][]byte
	// Funcs indexes every function and method declaration by its
	// types object, the hotpath analyzer's call-following table.
	Funcs map[*types.Func]*ast.FuncDecl

	fset  *token.FileSet
	marks []ast.Node // lazily computed //sparcs:hotpath roots
}

// A Module is the full source-loaded view one sparcsvet run analyzes:
// every module-local package, sharing one FileSet.
type Module struct {
	// Path is the module path ("sparcs"); empty in GOPATH-style testdata
	// loads, where any loaded package counts as module-local.
	Path string
	Fset *token.FileSet
	Pkgs map[string]*Package
	// Errors are load-time failures — parse errors, type-check errors,
	// packages skipped because a dependency is broken — surfaced as
	// driver diagnostics so a broken package fails the run loudly
	// instead of silently dropping out of analysis. They are not
	// ignorable.
	Errors []Diagnostic

	cg        *CallGraph            // lazily built by CallGraph()
	named     []types.Type          // lazily collected by namedTypes()
	implCache map[any][]*types.Func // devirtualization cache
	locks     *lockReport           // lazily computed by lockorder
}

// Local returns the source-loaded package for pkg, if any — the
// module-locality test the hotpath analyzer keys on.
func (m *Module) Local(pkg *types.Package) (*Package, bool) {
	if pkg == nil {
		return nil, false
	}
	p, ok := m.Pkgs[pkg.Path()]
	return p, ok
}

// Decl returns the declaration of fn and its owning package when fn's
// package was loaded from source; (nil, nil) otherwise.
func (m *Module) Decl(fn *types.Func) (*Package, *ast.FuncDecl) {
	p, ok := m.Local(fn.Pkg())
	if !ok {
		return nil, nil
	}
	return p, p.Funcs[fn]
}

// Roots returns the packages analyzers run on, sorted by import path.
// Broken packages are excluded: their failure is already reported
// through Module.Errors, and analyzers need sound type information.
func (m *Module) Roots() []*Package {
	var roots []*Package
	for _, p := range m.Pkgs {
		if p.Root && !p.Broken {
			roots = append(roots, p)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Path < roots[j].Path })
	return roots
}

// The annotation markers the suite parses. hotpathMarker marks a
// function declaration (in its doc comment or on the line above) or a
// for/range statement (on the line above) as cycle-rate code;
// ignoreMarker suppresses named analyzers on one line.
const (
	hotpathMarker = "sparcs:hotpath"
	ignoreMarker  = "sparcs:ignore"
)

// HotMarks returns the package's //sparcs:hotpath roots: marked
// function declarations and marked for/range statements.
func (p *Package) HotMarks() []ast.Node {
	if p.marks != nil {
		return p.marks
	}
	p.marks = []ast.Node{}
	for _, f := range p.Files {
		// Lines carrying a standalone marker comment: a decl or statement
		// starting on the following line is marked.
		markerLines := map[int]bool{}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if text := strings.TrimPrefix(c.Text, "//"); strings.HasPrefix(strings.TrimSpace(text), hotpathMarker) {
					markerLines[p.fset.Position(c.Pos()).Line] = true
				}
			}
		}
		if len(markerLines) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				start := n.Pos() // excludes Doc
				if markerLines[p.fset.Position(start).Line-1] || docHasMarker(n.Doc) {
					p.marks = append(p.marks, n)
				}
			case *ast.ForStmt, *ast.RangeStmt:
				if markerLines[p.fset.Position(n.Pos()).Line-1] {
					p.marks = append(p.marks, n)
				}
			}
			return true
		})
	}
	return p.marks
}

func docHasMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), hotpathMarker) {
			return true
		}
	}
	return false
}

// An ignore is one parsed //sparcs:ignore comment.
type ignore struct {
	pos       token.Pos
	file      string
	line      int // the line it suppresses
	analyzers []string
	reason    string
	malformed string // non-empty: why the comment does not parse
	used      bool
}

// parseIgnores extracts every //sparcs:ignore comment in the package.
// A trailing comment suppresses its own line; a standalone comment
// suppresses the line below it. known is the set of valid analyzer
// names.
func parseIgnores(p *Package, known map[string]bool) []*ignore {
	var out []*ignore
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, ignoreMarker) {
					continue
				}
				pos := p.fset.Position(c.Pos())
				ig := &ignore{pos: c.Pos(), file: pos.Filename, line: pos.Line}
				if standalone(p.Src[pos.Filename], pos) {
					ig.line++
				}
				rest := strings.TrimPrefix(text, ignoreMarker)
				// A nested "//" starts a new comment (testdata pairs ignores
				// with "// want" expectations this way); the reason ends there.
				if j := strings.Index(rest, "//"); j >= 0 {
					rest = strings.TrimRight(rest[:j], " \t")
				}
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					ig.malformed = fmt.Sprintf("malformed %q comment: want //%s <analyzer>[,<analyzer>] <reason>", ignoreMarker, ignoreMarker)
					out = append(out, ig)
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					ig.malformed = fmt.Sprintf("%q needs an analyzer name and a reason: //%s <analyzer>[,<analyzer>] <reason>", ignoreMarker, ignoreMarker)
					out = append(out, ig)
					continue
				}
				ig.analyzers = strings.Split(fields[0], ",")
				ig.reason = strings.Join(fields[1:], " ")
				for _, name := range ig.analyzers {
					if !known[name] {
						ig.malformed = fmt.Sprintf("%q names unknown analyzer %q", ignoreMarker, name)
						break
					}
				}
				out = append(out, ig)
			}
		}
	}
	return out
}

// standalone reports whether only whitespace precedes the comment on
// its line, i.e. the comment is not trailing code.
func standalone(src []byte, pos token.Position) bool {
	if src == nil {
		return false
	}
	// Walk back from the comment's byte offset to the preceding newline.
	for i := pos.Offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
			continue
		default:
			return false
		}
	}
	return true // first line of the file
}

// RunAnalyzers runs the analyzers over every root package of m and
// returns the deduplicated raw findings (before ignore suppression),
// sorted by position.
func RunAnalyzers(m *Module, analyzers []*Analyzer) []Diagnostic {
	seen := map[string]bool{}
	var out []Diagnostic
	for _, p := range m.Roots() {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      m.Fset,
				Files:     nonTestFiles(m.Fset, p.Files),
				Pkg:       p.Pkg,
				TypesInfo: p.Info,
				Package:   p,
				Module:    m,
				report: func(d Diagnostic) {
					// A cross-package hotpath walk can reach one site from
					// several roots; keep one copy.
					key := fmt.Sprintf("%v|%s|%s", d.Pos, d.Analyzer, d.Message)
					if !seen[key] {
						seen[key] = true
						out = append(out, d)
					}
				},
			}
			a.Run(pass)
		}
	}
	sortDiagnostics(m.Fset, out)
	return out
}

// nonTestFiles drops _test.go files from an analysis pass. The
// analyzers enforce invariants on the simulator surface; go vet's
// test-package units would otherwise drag test internals under the
// same rules.
func nonTestFiles(fset *token.FileSet, files []*ast.File) []*ast.File {
	out := files[:0:0]
	for _, f := range files {
		if !strings.HasSuffix(fset.Position(f.Package).Filename, "_test.go") {
			out = append(out, f)
		}
	}
	return out
}

// ApplyIgnores filters diags through the module's //sparcs:ignore
// comments and appends the suite's own findings about those comments:
// malformed ones always, unused ones when reportUnused is set (the
// full-module driver sets it; single-unit vet mode cannot see every
// root, so it does not). Only ignores naming an active analyzer
// participate; an ignore is unused when every analyzer it names is
// active yet it suppressed nothing.
func ApplyIgnores(m *Module, active []*Analyzer, diags []Diagnostic, reportUnused bool) []Diagnostic {
	activeNames := map[string]bool{}
	for _, a := range active {
		activeNames[a.Name] = true
	}
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	known[Driver] = true

	type lineKey struct {
		file string
		line int
	}
	byLine := map[lineKey][]*ignore{}
	var all []*ignore
	for _, p := range m.Pkgs {
		for _, ig := range parseIgnores(p, known) {
			all = append(all, ig)
			if ig.malformed == "" {
				byLine[lineKey{ig.file, ig.line}] = append(byLine[lineKey{ig.file, ig.line}], ig)
			}
		}
	}

	var kept []Diagnostic
	for _, d := range diags {
		pos := m.Fset.Position(d.Pos)
		suppressed := false
		for _, ig := range byLine[lineKey{pos.Filename, pos.Line}] {
			for _, name := range ig.analyzers {
				if name == d.Analyzer {
					ig.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	// Load failures pass through unsuppressed: a broken package must
	// fail the run, not hide behind an ignore comment.
	kept = append(kept, m.Errors...)
	for _, ig := range all {
		switch {
		case ig.malformed != "":
			kept = append(kept, Diagnostic{Pos: ig.pos, Analyzer: Driver, Message: ig.malformed})
		case reportUnused && !ig.used && allActive(ig.analyzers, activeNames):
			kept = append(kept, Diagnostic{Pos: ig.pos, Analyzer: Driver,
				Message: fmt.Sprintf("unused //%s for %s (nothing to suppress on this line; delete it)", ignoreMarker, strings.Join(ig.analyzers, ","))})
		}
	}
	sortDiagnostics(m.Fset, kept)
	return kept
}

// Driver is the pseudo-analyzer name under which the suite reports
// problems with the annotation comments themselves.
const Driver = "sparcsvet"

func allActive(names []string, active map[string]bool) bool {
	for _, n := range names {
		if !active[n] {
			return false
		}
	}
	return true
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
}

// All returns the sparcsvet analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{Hotpath, Determinism, Bitwidth, ErrSentinel, Lockorder, Goroleak}
}

// typesInfo returns a fully populated types.Info for one package check.
func typesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
