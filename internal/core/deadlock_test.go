package core

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"sparcs/internal/fft"
	"sparcs/internal/rc"
	"sparcs/internal/sim"
)

func mustShared(t *testing.T, spec string) []SharedContentionSpec {
	t.Helper()
	_, shared, err := ParseMixedContention(spec)
	if err != nil {
		t.Fatal(err)
	}
	return shared
}

// TestCheckProtocols pins the acquisition-order checker: protocols that
// embed in one global order pass, every cyclic-order shape is rejected
// with a deterministic cycle naming.
func TestCheckProtocols(t *testing.T) {
	cases := []struct {
		name  string
		spec  string
		cycle []string // nil = protocol is safe
	}{
		{"empty", "", nil},
		{"single source", "M1+M3=corr:0.25", nil},
		{"consistent order", "M1+M3=corr:0.25,M1+M3=corr:0.50/2", nil},
		{"chained order", "M1+M2=corr:0.25,M2+M3=corr:0.25,M1+M3=corr:0.25", nil},
		{"single-resource only", "M1=hog/2,M3=bursty", nil},
		{"opposite pair", "M1+M3=corr:0.90:64/1,M3+M1=corr:0.90:64/1",
			[]string{"M1", "M3", "M1"}},
		{"three-way ring", "M1+M2=corr:0.25,M2+M3=corr:0.25,M3+M1=corr:0.25",
			[]string{"M1", "M2", "M3", "M1"}},
		{"cycle within one source", "M1+M3+M2+M1... invalid", nil}, // parsed below
	}
	for _, tc := range cases {
		if tc.name == "cycle within one source" {
			// The grammar itself rejects a repeated resource inside one
			// spec (DuplicateResourceError), so a one-source cycle cannot
			// even be expressed; nothing for CheckProtocols to do.
			if _, _, err := ParseMixedContention("M1+M3+M1=corr:0.25"); err == nil {
				t.Error("duplicate resource inside one spec should not parse")
			}
			continue
		}
		err := CheckProtocols(mustShared(t, tc.spec))
		if tc.cycle == nil {
			if err != nil {
				t.Errorf("%s: unexpected rejection: %v", tc.name, err)
			}
			continue
		}
		var dp *DeadlockProneError
		if !errors.As(err, &dp) {
			t.Errorf("%s: want *DeadlockProneError, got %v", tc.name, err)
			continue
		}
		if !reflect.DeepEqual(dp.Cycle, tc.cycle) {
			t.Errorf("%s: cycle = %v, want %v", tc.name, dp.Cycle, tc.cycle)
		}
	}
}

// TestCompileRejectsDeadlockProneProtocol: the PR 5 circular
// hold-and-wait repro must no longer reach simulation — Compile refuses
// it with the typed error naming the cycle, and UnsafeProtocols restores
// the watchdog-only path (TestSharedContentionDeadlockAdjacent proves
// the watchdog still fires there).
func TestCompileRejectsDeadlockProneProtocol(t *testing.T) {
	opts := paperOpts()
	opts.Shared = mustShared(t, "M1+M3=corr:0.90:64/1,M3+M1=corr:0.90:64/1")
	opts.Partition.ExpectedContention = map[string]int{}
	_, err := Compile(fft.Taskgraph(), rc.Wildforce(), fft.Programs(2), opts)
	var dp *DeadlockProneError
	if !errors.As(err, &dp) {
		t.Fatalf("Compile = %v, want *DeadlockProneError", err)
	}
	if want := []string{"M1", "M3", "M1"}; !reflect.DeepEqual(dp.Cycle, want) {
		t.Fatalf("cycle = %v, want %v", dp.Cycle, want)
	}
	if !strings.Contains(err.Error(), "M1 -> M3 -> M1") {
		t.Fatalf("error does not name the cycle: %v", err)
	}

	opts.UnsafeProtocols = true
	if _, err := Compile(fft.Taskgraph(), rc.Wildforce(), fft.Programs(2), opts); err != nil {
		t.Fatalf("UnsafeProtocols Compile failed: %v", err)
	}
}

// TestSimulateRejectsDeadlockProneProtocol covers the per-run
// composition path (the System API compiles once with no contention and
// injects it at Run time): a clean build plus a cyclic run protocol must
// fail in Simulate, before any cycles execute.
func TestSimulateRejectsDeadlockProneProtocol(t *testing.T) {
	d, mem, _ := compileFFT(t, 2, paperOpts())
	opts := paperOpts()
	opts.Shared = mustShared(t, "M1+M3=corr:0.90:64/1,M3+M1=corr:0.90:64/1")
	opts.MaxCyclesPerStage = 20_000
	_, err := Simulate(d, mem, opts)
	var dp *DeadlockProneError
	if !errors.As(err, &dp) {
		t.Fatalf("Simulate = %v, want *DeadlockProneError", err)
	}
}

// TestSafeSharedProtocolUnaffected: a consistent-order correlated
// protocol compiles and runs identically with and without the checker in
// the path — the gate only ever rejects, it never perturbs.
func TestSafeSharedProtocolUnaffected(t *testing.T) {
	mk := func(unsafe bool) *sim.Stats {
		opts := paperOpts()
		opts.Shared = mustShared(t, "M1+M3=corr:0.25/1")
		opts.ContentionSeed = 3
		opts.UnsafeProtocols = unsafe
		d, mem, _ := compileFFT(t, 2, opts)
		res, err := Simulate(d, mem, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stages[0].Stats
	}
	if !reflect.DeepEqual(mk(false), mk(true)) {
		t.Fatal("the acquisition-order gate perturbed a safe run")
	}
}
