package partition

import (
	"fmt"
	"sort"

	"sparcs/internal/rc"
	"sparcs/internal/taskgraph"
)

// PhysChannel is one physical inter-PE connection carrying one or more
// logical channels (paper Section 2.2, Figure 3). Every logical channel
// terminates in a register at its receiving end, so sharing never loses
// data; an arbiter is required when the merged channels have multiple
// unordered source tasks.
type PhysChannel struct {
	Name     string
	A, B     int // PE endpoints
	Pins     int // data width of the shared channel (max logical width)
	Logical  []string
	Arbiter  *ArbiterSpec // nil when a single source (or ordered sources)
	ViaXbar  bool
	SrcTasks []string
}

// RouteChannels merges the stage's logical channels onto physical
// channels: all logical channels between one PE pair share a single
// physical channel sized to the widest logical channel. Channels between
// tasks on the same PE need no physical resources.
func RouteChannels(g *taskgraph.Graph, board *rc.Board, st *Stage) ([]PhysChannel, error) {
	inStage := map[string]bool{}
	for _, t := range st.Tasks {
		inStage[t] = true
	}
	group := map[[2]int][]*taskgraph.Channel{}
	for _, c := range g.Channels {
		if !inStage[c.From] || !inStage[c.To] {
			continue
		}
		pa, pb := st.TaskPE[c.From], st.TaskPE[c.To]
		if pa == pb {
			continue // on-chip connection
		}
		key := [2]int{min(pa, pb), max(pa, pb)}
		group[key] = append(group[key], c)
	}
	keys := make([][2]int, 0, len(group))
	for k := range group {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return keys[i][0] < keys[j][0] || (keys[i][0] == keys[j][0] && keys[i][1] < keys[j][1])
	})
	var out []PhysChannel
	for _, key := range keys {
		chans := group[key]
		width := 0
		var logical, sources []string
		srcSeen := map[string]bool{}
		for _, c := range chans {
			if c.WidthBits > width {
				width = c.WidthBits
			}
			logical = append(logical, c.Name)
			if !srcSeen[c.From] {
				srcSeen[c.From] = true
				sources = append(sources, c.From)
			}
		}
		pc := PhysChannel{
			Name:     fmt.Sprintf("chan_%d_%d", key[0]+1, key[1]+1),
			A:        key[0],
			B:        key[1],
			Pins:     width,
			Logical:  logical,
			SrcTasks: sources,
		}
		if _, ok := board.LinkBetween(key[0], key[1]); !ok {
			pc.ViaXbar = true
		}
		// Arbitration is needed when distinct unordered source tasks
		// share the physical channel (paper Section 4.3: "an arbiter is
		// required when different sources of the shared channels belong
		// to different tasks").
		members := g.UnorderedMembers(sources)
		if len(members) >= 2 {
			var elided []string
			memberSet := map[string]bool{}
			for _, m := range members {
				memberSet[m] = true
			}
			for _, s := range sources {
				if !memberSet[s] {
					elided = append(elided, s)
				}
			}
			pc.Arbiter = &ArbiterSpec{Resource: pc.Name, Members: members, Elided: elided}
		}
		out = append(out, pc)
	}
	return out, nil
}
