package arbiter

import (
	"errors"
	"strings"
	"testing"
)

// lcg is a tiny deterministic generator for request patterns.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 16)
}

// TestHierarchicalWidenedQuietLanesByteIdentical is the layout-stability
// contract: a widened tree whose appended lanes never request must
// produce exactly the grant stream of the unwidened balanced tree over
// the member lanes, cycle by cycle — the property the simulator's
// quiet-contention differential (core.TestQuietTracePlumbingDoesNotPerturb)
// relies on for hier.
func TestHierarchicalWidenedQuietLanesByteIdentical(t *testing.T) {
	cases := []struct{ members, groups, extra int }{
		{6, 2, 1}, {6, 2, 2}, {6, 3, 4}, {6, 1, 2}, {6, 6, 3},
		{8, 4, 1}, {12, 3, 7}, {4, 2, 60}, {32, 8, 16},
	}
	for _, tc := range cases {
		plain, err := NewHierarchical(tc.members, tc.groups)
		if err != nil {
			t.Fatalf("members=%d groups=%d: %v", tc.members, tc.groups, err)
		}
		wide, err := NewHierarchicalWidened(tc.members, tc.members+tc.extra, tc.groups)
		if err != nil {
			t.Fatalf("members=%d groups=%d extra=%d: %v", tc.members, tc.groups, tc.extra, err)
		}
		rng := lcg(uint64(tc.members*64 + tc.extra))
		memberMask := Mask(tc.members)
		for cycle := 0; cycle < 4096; cycle++ {
			req := BitVec(rng.next()) & memberMask
			gp := plain.StepBits(req)
			gw := wide.StepBits(req) // appended lanes idle
			if gp != gw {
				t.Fatalf("members=%d groups=%d extra=%d cycle %d: req=%b plain grants %b, widened grants %b",
					tc.members, tc.groups, tc.extra, cycle, req, gp, gw)
			}
		}
	}
}

// TestHierarchicalWidenedActiveLanes exercises the appended cluster
// with live background traffic: the invariants (one grant, grants
// imply requests, work conservation) must hold, appended lanes must
// actually win grants, and members must keep their intra-cluster order.
func TestHierarchicalWidenedActiveLanes(t *testing.T) {
	p, err := NewHierarchicalWidened(6, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Name(), "hierarchical-3x2+3"; got != want {
		t.Fatalf("Name() = %q, want %q", got, want)
	}
	if p.N() != 9 {
		t.Fatalf("N() = %d, want 9", p.N())
	}
	rng := lcg(7)
	phantomWins := 0
	memberWins := 0
	for cycle := 0; cycle < 8192; cycle++ {
		req := BitVec(rng.next()) & Mask(9)
		g := p.StepBits(req)
		if g.Count() > 1 {
			t.Fatalf("cycle %d: %d simultaneous grants", cycle, g.Count())
		}
		if g&^req != 0 {
			t.Fatalf("cycle %d: grant %b without request %b", cycle, g, req)
		}
		if req != 0 && g == 0 {
			t.Fatalf("cycle %d: not work conserving (req=%b)", cycle, req)
		}
		if g&^Mask(6) != 0 {
			phantomWins++
		} else if g != 0 {
			memberWins++
		}
	}
	if phantomWins == 0 {
		t.Fatal("appended lanes never won a grant")
	}
	if memberWins == 0 {
		t.Fatal("member lanes never won a grant")
	}
}

// TestNewHierarchicalWidenedErrors pins the constructor's validation:
// divisibility binds to the member count, not the widened total.
func TestNewHierarchicalWidenedErrors(t *testing.T) {
	if _, err := NewHierarchicalWidened(6, 7, 4); err == nil || !strings.Contains(err.Error(), "divide") {
		t.Errorf("4 groups over 6 members should fail divisibility, got %v", err)
	}
	if _, err := NewHierarchicalWidened(6, 7, 3); err != nil {
		t.Errorf("3 groups over 6 members widened to 7 should work, got %v", err)
	}
	if _, err := NewHierarchicalWidened(6, 5, 2); err == nil {
		t.Error("members > total width should fail")
	}
	if _, err := NewHierarchicalWidened(1, 4, 1); err == nil {
		t.Error("members below MinN should fail")
	}
	if _, err := NewHierarchicalWidened(6, MaxN+1, 2); err == nil || !errors.Is(err, ErrOutOfRange) {
		t.Errorf("width past MaxN should wrap ErrOutOfRange, got %v", err)
	}
	if _, err := NewHierarchicalWidened(6, 9, 7); err == nil {
		t.Error("more groups than members should fail")
	}
}

// TestPolicySpecNewWidened pins the spec-level dispatch: hier anchors
// divisibility to the member count under widening, every other kind
// (and the unwidened case) delegates to New(width).
func TestPolicySpecNewWidened(t *testing.T) {
	sp, err := ParsePolicySpec("hier:3")
	if err != nil {
		t.Fatal(err)
	}
	// 3 groups over 6 members + 1 phantom lane: impossible for the old
	// balanced constructor (3 does not divide 7), valid now.
	p, err := sp.NewWidened(6, 7)
	if err != nil {
		t.Fatalf("hier:3 widened 6->7: %v", err)
	}
	if got, want := p.Name(), "hierarchical-3x2+1"; got != want {
		t.Fatalf("widened name %q, want %q", got, want)
	}
	// Unwidened: identical to New.
	p, err = sp.NewWidened(6, 6)
	if err != nil || p.Name() != "hierarchical-3x2" {
		t.Fatalf("unwidened hier:3 at 6 = (%v, %v), want balanced tree", p, err)
	}
	// Divisibility still binds to members.
	if _, err := sp.NewWidened(7, 9); err == nil || !strings.Contains(err.Error(), "divide") {
		t.Errorf("hier:3 with 7 members should fail divisibility, got %v", err)
	}
	// Width bound checked at the total.
	if _, err := sp.NewWidened(6, MaxN+2); err == nil || !errors.Is(err, ErrOutOfRange) {
		t.Errorf("widened width past MaxN should wrap ErrOutOfRange, got %v", err)
	}
	// Non-hier kinds ignore the member count entirely.
	rr, err := ParsePolicySpec("rr")
	if err != nil {
		t.Fatal(err)
	}
	p, err = rr.NewWidened(6, 8)
	if err != nil || p.N() != 8 {
		t.Fatalf("rr widened 6->8 = (%v, %v), want plain 8-line round-robin", p, err)
	}
	// wrr with per-task weights still requires one weight per TOTAL lane:
	// widening is not layout-sensitive for it, so New's check applies.
	wrr, err := ParsePolicySpec("wrr:1,2,3,4,5,6")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wrr.NewWidened(6, 8); err == nil {
		t.Error("wrr with 6 explicit weights at width 8 should fail")
	}
}
