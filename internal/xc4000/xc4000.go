// Package xc4000 models the Xilinx XC4000E CLB architecture: packing of
// mapped 4-LUT networks into CLBs and a -3 speed-grade static timing
// estimate, reproducing the units of the paper's Figures 6 (CLBs) and 7
// (MHz).
//
// An XC4000E CLB contains two 4-input function generators (F and G), a
// third 3-input function generator (H) that can combine F and G with one
// extra input, and two D flip-flops. The packer fills CLBs with LUT pairs,
// opportunistically folds F/G-combining LUTs into the H generator, and
// co-locates flip-flops with the LUTs that drive them.
//
// Delay constants follow the XC4000E -3 speed grade data book values;
// routing is estimated from fanout, which in the XC4000 era dominated
// wire delay. Absolute MHz figures are therefore estimates — exactly like
// the paper's, which also used the vendor's static timing tool.
package xc4000

import (
	"fmt"
	"math"

	"sparcs/internal/lutmap"
	"sparcs/internal/netlist"
)

// Device describes one member of the XC4000E family.
type Device struct {
	Name string
	CLBs int // total CLB capacity
	Pins int // usable user I/O
}

// XC4013E is the Wildforce processing element: 24x24 CLB array.
var XC4013E = Device{Name: "XC4013E", CLBs: 576, Pins: 192}

// XC4010E is a smaller family member used in portability tests.
var XC4010E = Device{Name: "XC4010E", CLBs: 400, Pins: 160}

// Dim is the edge of the device's square CLB array (the XC4000E family
// is square: XC4013E = 24x24, XC4010E = 20x20). For a hypothetical
// non-square capacity it rounds up, so Dim()² >= CLBs.
func (d Device) Dim() int {
	n := int(math.Sqrt(float64(d.CLBs)))
	for n*n < d.CLBs {
		n++
	}
	return n
}

// Timing constants for the -3 speed grade, in nanoseconds.
const (
	TCko      = 2.8  // flip-flop clock-to-out
	TIlo      = 1.6  // F/G function generator delay
	THlo      = 0.9  // additional delay through the H generator
	TSetup    = 2.0  // function-generator-to-FF setup
	TNetBase  = 1.4  // base routing delay per net segment
	TNetFan   = 0.35 // incremental routing delay per additional fanout
	TClockMin = 11.5 // floor: clock distribution, pad, and pulse-width limits
)

// PackResult reports CLB packing of a mapped network.
type PackResult struct {
	CLBs      int
	HMerges   int // LUT triples folded via the H generator
	PackedFFs int // flip-flops co-located with their driving LUT
	LooseFFs  int // flip-flops placed in FF-only CLB slots
}

// Pack packs a LUT mapping into XC4000E CLBs.
//
// Strategy: (1) fold eligible (F,G,H) triples — an H candidate is a LUT
// with <= 3 inputs, at least two of which are other LUT outputs; (2) pair
// the remaining LUTs two per CLB; (3) place flip-flops, preferring the CLB
// whose LUT drives them, two per CLB overall.
func Pack(m *lutmap.Mapping) PackResult {
	lutByOut := make(map[netlist.NetID]int, len(m.LUTs))
	for i, l := range m.LUTs {
		lutByOut[l.Out] = i
	}
	used := make([]bool, len(m.LUTs))

	var res PackResult
	clbLUTSlots := 0 // free F/G slots in partially filled CLBs

	// Phase 1: H-generator folds.
	for i, l := range m.LUTs {
		if used[i] || len(l.Inputs) > 3 {
			continue
		}
		var feeders []int
		ok := true
		external := 0
		for _, in := range l.Inputs {
			if fi, isLUT := lutByOut[in]; isLUT && !used[fi] && fi != i {
				feeders = append(feeders, fi)
			} else {
				external++
			}
		}
		ok = len(feeders) >= 2 && external <= 1
		if !ok {
			continue
		}
		// Fold this LUT (H) plus two feeders (F, G) into one CLB.
		used[i] = true
		used[feeders[0]] = true
		used[feeders[1]] = true
		res.CLBs++
		res.HMerges++
	}

	// Phase 2: pair remaining LUTs.
	remaining := 0
	for i := range m.LUTs {
		if !used[i] {
			remaining++
		}
	}
	res.CLBs += (remaining + 1) / 2
	if remaining%2 == 1 {
		clbLUTSlots = 1
	}

	// Phase 3: flip-flops. Two FF slots exist per CLB; FFs driven by a
	// packed LUT ride along free. Model: every CLB allocated so far offers
	// 2 FF slots; surplus FFs force additional CLBs.
	ffSlots := 2 * res.CLBs
	if m.NumFFs <= ffSlots {
		res.PackedFFs = m.NumFFs
	} else {
		res.PackedFFs = ffSlots
		res.LooseFFs = m.NumFFs - ffSlots
		res.CLBs += (res.LooseFFs + 1) / 2
	}
	_ = clbLUTSlots
	return res
}

// TimingResult reports the static timing estimate.
type TimingResult struct {
	CriticalPathNs float64
	MaxClockMHz    float64
	LUTLevels      int
}

// Timing estimates the maximum clock frequency of a mapped sequential
// network: register clock-to-out, then per LUT level a function-generator
// delay plus fanout-dependent routing, then setup.
func Timing(m *lutmap.Mapping) TimingResult {
	if len(m.LUTs) == 0 {
		return TimingResult{CriticalPathNs: TClockMin, MaxClockMHz: 1000 / TClockMin}
	}
	// Fanout per net: LUT inputs referencing it.
	fanout := map[netlist.NetID]int{}
	for _, l := range m.LUTs {
		for _, in := range l.Inputs {
			fanout[in]++
		}
	}
	// arrival[net] = worst arrival time at a LUT output.
	arrival := map[netlist.NetID]float64{}
	worst := 0.0
	levels := 0
	for _, l := range m.LUTs { // leaves-before-roots order
		at := 0.0
		for _, in := range l.Inputs {
			a, ok := arrival[in]
			if !ok {
				a = TCko // source: register output (conservative for PIs)
			}
			a += TNetBase + TNetFan*float64(maxInt(fanout[in]-1, 0))
			if a > at {
				at = a
			}
		}
		at += TIlo
		arrival[l.Out] = at
		if at > worst {
			worst = at
		}
		if l.Level > levels {
			levels = l.Level
		}
	}
	period := worst + TSetup
	if period < TClockMin {
		period = TClockMin
	}
	return TimingResult{
		CriticalPathNs: round2(period),
		MaxClockMHz:    round2(1000 / period),
		LUTLevels:      levels,
	}
}

// Fits reports whether a packed design fits the device, with a utilization
// fraction.
func Fits(p PackResult, d Device) (bool, float64) {
	u := float64(p.CLBs) / float64(d.CLBs)
	return p.CLBs <= d.CLBs, u
}

// Utilization formats a utilization report line.
func Utilization(p PackResult, d Device) string {
	_, u := Fits(p, d)
	return fmt.Sprintf("%d/%d CLBs (%.1f%%)", p.CLBs, d.CLBs, 100*u)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func round2(v float64) float64 {
	return math.Round(v*100) / 100
}
