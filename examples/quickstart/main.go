// Quickstart: build a 4-input round-robin arbiter, watch it arbitrate a
// burst of conflicting requests, generate its VHDL, and characterize its
// cost on the XC4000E — the core loop of the paper in ~60 lines.
package main

import (
	"fmt"
	"log"
	"strings"

	"sparcs"
)

func main() {
	const n = 4
	arb, err := sparcs.NewArbiter(n)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== cycle-by-cycle arbitration (R = request, G = grant) ==")
	// Tasks 1..4 all request; each holds for two accesses then releases
	// (the paper's M=2 protocol), then re-requests.
	req := []bool{true, true, true, true}
	held := make([]int, n)
	for cycle := 0; cycle < 12; cycle++ {
		grants := arb.Step(req)
		fmt.Printf("cycle %2d  R=%s  G=%s  state=%s\n",
			cycle, bits(req), bits(grants), arb.State())
		for i := range req {
			if grants[i] {
				held[i]++
			}
			if held[i] >= 2 {
				req[i] = false
				held[i] = 0
			} else {
				req[i] = true
			}
		}
	}

	fmt.Println("\n== generated VHDL (first lines) ==")
	vhdl, err := sparcs.ArbiterVHDL(n, "one-hot")
	if err != nil {
		log.Fatal(err)
	}
	lines := strings.SplitN(vhdl, "\n", 12)
	fmt.Println(strings.Join(lines[:11], "\n"))
	fmt.Println("  ...")

	fmt.Println("\n== XC4000E characterization ==")
	for _, tool := range []string{"synplify", "fpga-express"} {
		r, err := sparcs.CharacterizeArbiter(n, tool, "one-hot")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %3d CLBs  %5.1f MHz\n", r.Label(), r.CLBs, r.MaxMHz)
	}
}

func bits(v []bool) string {
	var b strings.Builder
	for _, x := range v {
		if x {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}
