// Package other is outside the goroleak scope: the same leaky spawn is
// not reported here.
package other

func Spawn(ch chan int) {
	go func() {
		<-ch
	}()
}
