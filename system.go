// The composable experiment API: Build compiles a design ONCE into a
// System, and the System then runs MANY independent experiments, each
// composed from per-run functional options — the compile-once /
// experiment-many shape of the paper's flow, without threading one
// ever-growing options struct through every call.
//
//	sys, err := sparcs.FFTSystem(8)
//	base, err := sys.Run()                                   // paper setup
//	slow, err := sys.Run(sparcs.WithPolicy("priority"),
//	                     sparcs.WithContention("M1=hog/1"))  // same silicon, hostile load
//	corr, err := sys.Run(sparcs.WithContention("M1+M3=corr:0.25/1"))
//
// Runs are independent: each constructs fresh policies, fresh background
// generators, and (unless WithMemory supplies one) a fresh memory image,
// so a System is safe to Run from several goroutines at once.

package sparcs

import (
	"fmt"

	"sparcs/internal/arbiter"
	"sparcs/internal/core"
	"sparcs/internal/fft"
	"sparcs/internal/rc"
	"sparcs/internal/sim"
	"sparcs/internal/taskgraph"
	"sparcs/internal/workload"
)

// Memory aliases the simulator's memory image; NewMemory returns a blank
// one ready for input loading.
type Memory = sim.Memory

// NewMemory returns a blank memory image.
func NewMemory() *Memory { return sim.NewMemory() }

// System is a compiled design plus everything needed to run experiments
// against it. Build it once; Run it many times with per-run options.
type System struct {
	graph    *taskgraph.Graph
	board    *rc.Board
	programs map[string]Program
	design   *core.Design
	build    core.Options // the Partition/Insert knobs fixed at Build time
}

// buildConfig collects Build-time options: everything that changes the
// compiled design (partitioning, insertion, area models). Per-experiment
// knobs (policy, contention, capture, seed) are RunOptions instead.
type buildConfig struct {
	opts core.Options
}

// BuildOption configures Build.
type BuildOption func(*buildConfig) error

// WithStages fixes the temporal partitioning to an explicit stage list
// instead of the automatic partitioner (the paper's user-constraint
// path; FFTSystem uses it for the Section 5 three-stage split).
func WithStages(stages [][]string) BuildOption {
	return func(c *buildConfig) error {
		c.opts.Partition.FixedStages = stages
		return nil
	}
}

// WithAccessesPerGrant sets M, the accesses a task performs per grant
// before releasing its request line (Figure 8 protocol; default 2).
func WithAccessesPerGrant(m int) BuildOption {
	return func(c *buildConfig) error {
		if m < 1 {
			return fmt.Errorf("sparcs: accesses per grant must be positive, got %d", m)
		}
		c.opts.Insert.M = m
		return nil
	}
}

// WithConservativeArbitration disables dependency-based arbiter elision:
// every accessor of a shared resource gets a request line, matching the
// paper's conservative baseline.
func WithConservativeArbitration() BuildOption {
	return func(c *buildConfig) error {
		c.opts.Insert.Conservative = true
		return nil
	}
}

// WithArbiterArea overrides the partitioner's arbiter CLB-area model
// (default: the pre-characterization table from the synthesis sweep).
func WithArbiterArea(area func(n int) int) BuildOption {
	return func(c *buildConfig) error {
		c.opts.Partition.ArbArea = area
		return nil
	}
}

// WithExpectedContention tells the partitioner's area model what
// background load later runs will inject, in the WithContention grammar
// ("M1=hog/2,M1+M3=corr:0.25"): each arbiter is priced at its simulated
// width instead of its member width, so a design that fits at Build time
// still fits once contention widens its arbiters. An empty spec ""
// explicitly opts out of the bump (price member widths only).
//
// The declared protocol is vetted like a run's: correlated specs whose
// acquisition orders form a cycle are rejected here with a
// *core.DeadlockProneError — there is no point sizing silicon for a
// protocol no safe run may inject. (Deadlock experiments skip the
// pricing bump, as the watchdog tests do, and opt in per run with
// WithUnsafeProtocols.)
func WithExpectedContention(spec string) BuildOption {
	return func(c *buildConfig) error {
		single, shared, err := core.ParseMixedContention(spec)
		if err != nil {
			return err
		}
		if err := core.CheckProtocols(shared); err != nil {
			return err
		}
		extra := core.PhantomLines(single)
		for r, n := range core.SharedLines(shared) {
			extra[r] += n
		}
		c.opts.Partition.ExpectedContention = extra
		return nil
	}
}

// Build compiles a taskgraph onto a board — temporal/spatial
// partitioning, arbitration-aware memory mapping, channel routing, and
// automatic arbiter insertion — and returns the System handle that runs
// experiments against the compiled design.
func Build(g *taskgraph.Graph, board *rc.Board, programs map[string]Program, opts ...BuildOption) (*System, error) {
	var c buildConfig
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&c); err != nil {
			return nil, err
		}
	}
	d, err := core.Compile(g, board, programs, c.opts)
	if err != nil {
		return nil, err
	}
	return &System{graph: g, board: board, programs: programs, design: d, build: c.opts}, nil
}

// FFTSystem builds the Section 5 case study — the 4x4 2-D FFT on the
// Annapolis Wildforce board with the paper's three-stage temporal
// partitioning — ready for experiments. tiles <= 0 defaults to 6.
func FFTSystem(tiles int, opts ...BuildOption) (*System, error) {
	if tiles <= 0 {
		tiles = 6
	}
	return Build(fft.Taskgraph(), rc.Wildforce(),
		fft.Programs(tiles),
		append([]BuildOption{WithStages(fft.PaperStages())}, opts...)...)
}

// LoadFFTInput fills a memory image with the FFT case study's input
// tiles (deterministic for a seed) and returns them for CheckFFTOutput.
func LoadFFTInput(mem *Memory, tiles int, seed int64) [][]int64 {
	return fft.LoadInput(mem, tiles, seed)
}

// CheckFFTOutput verifies a run's memory image against the fixed-point
// 2-D FFT reference of the loaded input tiles.
func CheckFFTOutput(mem *Memory, in [][]int64) error {
	return fft.CheckOutput(mem, in)
}

// FFTHardwareSeconds extrapolates an n×n-image hardware time from a
// measured cycles-per-tile at the paper's 6 MHz clock.
func FFTHardwareSeconds(cyclesPerTile float64, n int) float64 {
	return fft.HardwareSeconds(cyclesPerTile, n)
}

// FFTSoftwareSeconds models the paper's Pentium-150 software baseline
// for an n×n image.
func FFTSoftwareSeconds(n int) float64 {
	return fft.SoftwareSeconds(n)
}

// Design exposes the compiled design (stages, memory maps, inserted
// arbiters, routed channels) for reports and structural assertions.
func (s *System) Design() *core.Design { return s.design }

// Report renders the human-readable compilation summary.
func (s *System) Report() string { return s.design.Report() }

// runConfig collects one experiment's composition.
type runConfig struct {
	opts       core.Options
	policy     *arbiter.PolicySpec
	mem        *Memory
	capture    []string // resources to tap; nil without captureAll = no traces
	captureAll bool
}

// RunOption configures one System.Run experiment.
type RunOption func(*runConfig) error

// WithPolicy selects the arbitration policy for every arbiter in the
// run, by spec ("rr", "fifo", "priority", "random:7", "fsm",
// "netlist:one-hot", "preemptive:4", "wrr:2", "hier:2"). The spec is
// validated against every arbiter's simulated width — including phantom
// and correlated contention lines — before the run starts. Default:
// behavioral round-robin.
func WithPolicy(spec string) RunOption {
	return func(c *runConfig) error {
		sp, err := arbiter.ParsePolicySpec(spec)
		if err != nil {
			return err
		}
		c.policy = sp
		return nil
	}
}

// WithContention injects background load alongside the compiled tasks.
// The spec is a comma-separated list mixing both contention grammars:
//
//	resource=workload[/lines]        one arbiter  ("M1=hog/2")
//	res1+res2[+..]=workload[/lanes]  correlated   ("M1+M3=corr:0.25/1")
//
// Single-resource sources attach a closed-loop workload generator to one
// arbiter. Correlated sources drive several arbiters from ONE generator
// with hold-A-while-waiting-on-B acquisition in listed order — the
// deadlock-adjacent multi-resource pattern — and report cross-resource
// overlap/wait statistics (Result.SharedStats). Repeating the option
// appends sources.
func WithContention(spec string) RunOption {
	return func(c *runConfig) error {
		single, shared, err := core.ParseMixedContention(spec)
		if err != nil {
			return err
		}
		c.opts.Contention = append(c.opts.Contention, single...)
		c.opts.Shared = append(c.opts.Shared, shared...)
		return nil
	}
}

// WithUnsafeProtocols disables the acquisition-order deadlock check for
// this run. By default Run refuses contention protocols whose correlated
// sources acquire resources in cyclically inconsistent orders — the
// circular hold-and-wait — with a *core.DeadlockProneError naming the
// cycle, because such a protocol can interlock and only ever terminates
// through the WithMaxCycles watchdog. The deadlock experiments study
// exactly that interlock, so this option restores the watchdog-only
// behavior for them.
func WithUnsafeProtocols() RunOption {
	return func(c *runConfig) error {
		c.opts.UnsafeProtocols = true
		return nil
	}
}

// WithSeed seeds the run's background contention generators (0 means 1).
// Runs are deterministic for a given seed.
func WithSeed(n uint64) RunOption {
	return func(c *runConfig) error {
		c.opts.ContentionSeed = n
		return nil
	}
}

// WithMaxCycles bounds each stage simulation (deadlock watchdog);
// 0 means the 10-million default.
func WithMaxCycles(n int) RunOption {
	return func(c *runConfig) error {
		if n < 0 {
			return fmt.Errorf("sparcs: max cycles must be non-negative, got %d", n)
		}
		c.opts.MaxCyclesPerStage = n
		return nil
	}
}

// WithCapture turns on per-cycle request/grant trace recording — the
// tap that feeds Result.Column and capture→replay experiments. With no
// arguments every arbiter records; with resource names only those do
// (the rest skip recording entirely). Runs without WithCapture record
// nothing: traces are the one simulation cost that grows with cycle
// count, so experiments opt in per run.
func WithCapture(resources ...string) RunOption {
	return func(c *runConfig) error {
		if len(resources) == 0 {
			c.captureAll = true
			return nil
		}
		c.capture = append(c.capture, resources...)
		return nil
	}
}

// WithMemory runs the experiment over a caller-prepared memory image
// (e.g. LoadFFTInput) instead of a blank one. The run mutates it; runs
// sharing one image must not execute concurrently.
func WithMemory(mem *Memory) RunOption {
	return func(c *runConfig) error {
		if mem == nil {
			return fmt.Errorf("sparcs: WithMemory needs a non-nil memory")
		}
		c.mem = mem
		return nil
	}
}

// Result is the outcome of one System.Run experiment: the simulation
// outcome of every stage plus capture/stat accessors over it.
type Result struct {
	*core.RunResult
	system *System
}

// Run executes one experiment against the compiled design: it composes
// the options (policy, background contention, capture taps, seed),
// validates them against the design, simulates every stage in order, and
// returns the Result. Each call builds fresh policy and generator state,
// so concurrent Runs are safe as long as they don't share a WithMemory
// image.
func (s *System) Run(opts ...RunOption) (*Result, error) {
	c, err := s.composeRun(opts)
	if err != nil {
		return nil, err
	}
	mem := c.mem
	if mem == nil {
		mem = NewMemory()
	}
	res, err := core.Simulate(s.design, mem, c.opts)
	if err != nil {
		return nil, err
	}
	return &Result{RunResult: res, system: s}, nil
}

// composeRun applies the RunOptions and validates the composition
// against the compiled design, producing the core.Options a run (or a
// scenario job, which executes stages one at a time) simulates under.
func (s *System) composeRun(opts []RunOption) (runConfig, error) {
	c := runConfig{opts: core.Options{
		Partition:     s.build.Partition,
		Insert:        s.build.Insert,
		DisableTraces: true, // capture is per-run opt-in
	}}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&c); err != nil {
			return c, err
		}
	}
	// Compose the capture taps: an argument-less WithCapture() records
	// every arbiter (CaptureOnly nil); named taps record just those.
	if c.captureAll {
		c.opts.DisableTraces = false
		c.opts.CaptureOnly = nil
	} else if len(c.capture) > 0 {
		if err := s.validateCapture(c.capture); err != nil {
			return c, err
		}
		c.opts.DisableTraces = false
		c.opts.CaptureOnly = c.capture
	}
	if c.policy != nil {
		// Validate size-dependent policies against every arbiter's
		// simulated width (members + phantoms + correlated lanes) so the
		// run fails cleanly up front instead of panicking mid-stage.
		// Widened arbiters validate through NewWidened, which keeps
		// layout-sensitive policies (hier) anchored to the member count.
		widths := core.StageWidths(s.design, c.opts)
		for si, sp := range s.design.Stages {
			for _, a := range sp.Inserted.Arbiters {
				w := widths[si][a.Resource]
				if _, err := c.policy.NewWidened(a.N(), w); err != nil {
					return c, fmt.Errorf("sparcs: policy %s unusable for the %d-line arbiter on %s in stage %d (%d members + %d background): %w",
						c.policy, w, a.Resource, si, a.N(), w-a.N(), err)
				}
			}
		}
		spec := c.policy
		c.opts.NewPolicy = func(n int) arbiter.Policy {
			p, err := spec.New(n)
			if err != nil {
				panic(fmt.Sprintf("policy %s at N=%d: %v", spec, n, err)) // unreachable: widths validated above
			}
			return p
		}
		c.opts.NewPolicyWidened = func(members, width int) arbiter.Policy {
			p, err := spec.NewWidened(members, width)
			if err != nil {
				panic(fmt.Sprintf("policy %s at %d members widened to %d: %v", spec, members, width, err)) // unreachable: widths validated above
			}
			return p
		}
	}
	return c, nil
}

// FootprintCLBs is the compiled design's peak per-stage CLB footprint
// under the Build-time area model — tasks plus contention-widened
// arbiters. It is the fabric rectangle a dynamic scheduler reserves for
// the System (RunScenario) and the weight sparcsd's LRU cache charges a
// cached compilation.
func (s *System) FootprintCLBs() int {
	return s.design.FootprintCLBs(s.build.Partition)
}

// SweepError reports a failing experiment inside a System.Sweep. The
// sweep still runs (and returns) every sibling experiment — a bad
// option set must not discard the rest of the fan-out — so callers get
// the completed results alongside the typed failure. Index is the
// input-order position of the first failing experiment; Err is its Run
// error (errors.Is/As see through Unwrap).
type SweepError struct {
	Index int
	Err   error
}

func (e *SweepError) Error() string {
	return fmt.Sprintf("sparcs: sweep experiment %d: %v", e.Index, e.Err)
}

// Unwrap exposes the failing experiment's underlying Run error.
func (e *SweepError) Unwrap() error { return e.Err }

// Sweep runs one experiment per option set concurrently across
// GOMAXPROCS workers — the compile-once fan-out behind the paper-table
// sweeps. Each experiment is an independent Run composed from its own
// RunOption slice (nil means the baseline run), so option sets must not
// share stateful values like a WithMemory image. Results come back in
// input order. Every experiment always runs to completion (no worker
// goroutines are abandoned mid-sweep); if any fail, the completed
// siblings' results are still returned — failed slots are nil — along
// with a *SweepError carrying the first failing experiment's index (by
// input order) and error.
func (s *System) Sweep(experiments ...[]RunOption) ([]*Result, error) {
	out := make([]*Result, len(experiments))
	errs := make([]error, len(experiments))
	sim.ParallelFor(len(experiments), func(i int) {
		out[i], errs[i] = s.Run(experiments[i]...)
	})
	for i, err := range errs {
		if err != nil {
			return out, &SweepError{Index: i, Err: err}
		}
	}
	return out, nil
}

// validateCapture rejects capture taps naming resources no stage
// arbitrates — the same typo guard contention specs get.
func (s *System) validateCapture(resources []string) error {
	if len(resources) == 0 {
		return nil
	}
	arbitrated := map[string]bool{}
	for _, sp := range s.design.Stages {
		for _, a := range sp.Inserted.Arbiters {
			arbitrated[a.Resource] = true
		}
	}
	for _, r := range resources {
		if !arbitrated[r] {
			return fmt.Errorf("sparcs: capture resource %s is not arbitrated in any stage", r)
		}
	}
	return nil
}

// Column converts the named resource's captured request stream (the
// first stage where it recorded a non-empty trace) into a replayable
// grid column named "<graph>:<resource>" for EvaluatePolicyColumns. The
// run must have enabled WithCapture for the resource.
func (r *Result) Column(resource string) (WorkloadColumn, error) {
	for _, ss := range r.Stages {
		if trace := ss.Stats.ArbiterTraces[resource]; len(trace) > 0 {
			return workload.FromArbiterTrace(fmt.Sprintf("%s:%s", r.system.graph.Name, resource), trace)
		}
	}
	return WorkloadColumn{}, fmt.Errorf("sparcs: no captured trace for resource %s (did the run use WithCapture?)", resource)
}

// ColumnByWidth returns a replayable column for the first arbiter (in
// stage then insertion order) whose captured request stream is n lines
// wide, under the given column name — how the FFT case study selects the
// paper's contended 6-line bank without naming it.
func (r *Result) ColumnByWidth(name string, n int) (WorkloadColumn, error) {
	var widths []int
	for si, ss := range r.Stages {
		for _, a := range r.system.design.Stages[si].Inserted.Arbiters {
			trace := ss.Stats.ArbiterTraces[a.Resource]
			if len(trace) == 0 {
				continue
			}
			if w := len(trace[0].Req); w == n {
				return workload.FromArbiterTrace(fmt.Sprintf("%s:%s", name, a.Resource), trace)
			} else {
				widths = append(widths, w)
			}
		}
	}
	return WorkloadColumn{}, fmt.Errorf("sparcs: no captured %d-line request stream (available widths: %v)", n, widths)
}

// SharedStats flattens every stage's correlated-source statistics in
// stage order: per source, the cross-resource hold-and-wait overlap,
// all-held cycles, and per-resource grant/wait totals.
func (r *Result) SharedStats() []*sim.SharedStats {
	var out []*sim.SharedStats
	for _, ss := range r.Stages {
		out = append(out, ss.Stats.Shared...)
	}
	return out
}
