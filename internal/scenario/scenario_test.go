package scenario

import (
	"bytes"
	"encoding/json"
	"testing"

	"sparcs/internal/core"
	"sparcs/internal/fft"
	"sparcs/internal/partition"
	"sparcs/internal/rc"
)

// fftClass compiles the Section 5 FFT case study as a scenario class,
// mirroring the root System's run composition (paper stages, traces
// disabled).
func fftClass(t testing.TB, tiles int, name string) Class {
	t.Helper()
	opts := core.Options{
		Partition:     partition.Options{FixedStages: fft.PaperStages()},
		DisableTraces: true,
	}
	d, err := core.Compile(fft.Taskgraph(), rc.Wildforce(), fft.Programs(tiles), opts)
	if err != nil {
		t.Fatal(err)
	}
	return Class{Name: name, Design: d, Opts: opts}
}

// churnConfig is a scenario small enough for tests but busy enough to
// exercise queueing, placement failure, and compaction: a fabric
// holding two residents, six staggered arrivals.
func churnConfig(t testing.TB) Config {
	return Config{
		Classes:         []Class{fftClass(t, 2, "fft2"), fftClass(t, 3, "fft3")},
		Arrivals:        "bursty/256",
		Jobs:            6,
		Seed:            1,
		FabricCols:      192,
		FabricRows:      24,
		CompactionDelay: 64,
	}
}

// TestScenarioDeterminism: the engine is a pure function of its config
// — two runs with the same seed produce byte-identical reports, across
// every placement x prefetch mode and with cross-contention active.
func TestScenarioDeterminism(t *testing.T) {
	for _, placement := range []string{PlaceFirstFit, PlaceBestFit} {
		for _, prefetch := range []string{PrefetchNone, PrefetchHybrid} {
			cfg := churnConfig(t)
			cfg.Placement = placement
			cfg.Prefetch = prefetch
			cfg.CrossContention = "bernoulli:0.30"
			var prev []byte
			for pass := 0; pass < 2; pass++ {
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s/%s pass %d: %v", placement, prefetch, pass, err)
				}
				b, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				if pass > 0 && !bytes.Equal(prev, b) {
					t.Fatalf("%s/%s: runs with one seed diverged:\nfirst:  %s\nsecond: %s",
						placement, prefetch, prev, b)
				}
				prev = b
			}
		}
	}
}

// TestScenarioOracleBound: the offline full-knowledge bound never
// exceeds any online schedule, and hybrid prefetch never loses to
// no-prefetch on stall cycles under identical arrivals.
func TestScenarioOracleBound(t *testing.T) {
	for _, arrivals := range []string{"", "bursty/256", "markov/256"} {
		var stalls = map[string]int64{}
		for _, placement := range []string{PlaceFirstFit, PlaceBestFit} {
			for _, prefetch := range []string{PrefetchNone, PrefetchHybrid} {
				cfg := churnConfig(t)
				cfg.Arrivals = arrivals
				cfg.Placement = placement
				cfg.Prefetch = prefetch
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("%q %s/%s: %v", arrivals, placement, prefetch, err)
				}
				if res.OracleMakespan <= 0 || res.Makespan < res.OracleMakespan {
					t.Fatalf("%q %s/%s: makespan %d below oracle bound %d",
						arrivals, placement, prefetch, res.Makespan, res.OracleMakespan)
				}
				if len(res.Jobs) != cfg.Jobs {
					t.Fatalf("%q %s/%s: %d job reports, want %d", arrivals, placement, prefetch, len(res.Jobs), cfg.Jobs)
				}
				for _, j := range res.Jobs {
					if j.Finish <= j.Arrive || j.Place < j.Arrive {
						t.Fatalf("%q %s/%s: job %d lifecycle out of order: arrive=%d place=%d finish=%d",
							arrivals, placement, prefetch, j.ID, j.Arrive, j.Place, j.Finish)
					}
				}
				stalls[placement+prefetch] = res.StallCycles
			}
		}
		for _, placement := range []string{PlaceFirstFit, PlaceBestFit} {
			if h, n := stalls[placement+PrefetchHybrid], stalls[placement+PrefetchNone]; h > n {
				t.Errorf("%q %s: hybrid prefetch stalls more than no-prefetch (%d > %d)",
					arrivals, placement, h, n)
			}
		}
	}
}

// startEngine builds an engine and replays run()'s prologue: the forced
// cycle-0 arrival (all arrivals, with no arrival process) and the first
// event dispatch.
func startEngine(t *testing.T, cfg Config) *engine {
	t.Helper()
	e, err := newEngine(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.admit()
	if e.arr == nil {
		for e.arrived < e.cfg.Jobs {
			e.admit()
		}
	}
	e.arrivalsLeft = e.cfg.Jobs - e.arrived
	if err := e.handle(evArrival); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestScenarioStripInvariants drives the engine event loop by hand and
// verifies the strip-packing invariants (no overlap, nothing outside
// the fabric, consistent shelf bookkeeping) after every handled event,
// under the churniest configuration the suite has.
func TestScenarioStripInvariants(t *testing.T) {
	for _, placement := range []string{PlaceFirstFit, PlaceBestFit} {
		cfg := churnConfig(t)
		cfg.Placement = placement
		cfg.Arrivals = ""   // all six jobs at cycle 0...
		cfg.FabricCols = 96 // ...through a one-resident fabric: deep queue
		cfg.CompactionDelay = 8
		e := startEngine(t, cfg)
		events := 0
		for e.completed < e.cfg.Jobs {
			if e.clock >= cfg.maxCycles() {
				t.Fatalf("%s: watchdog: %d/%d jobs after %d cycles", placement, e.completed, cfg.Jobs, e.clock)
			}
			ev := e.stepCycle()
			if ev == 0 {
				continue
			}
			if err := e.handle(ev); err != nil {
				t.Fatal(err)
			}
			events++
			if err := e.strip.check(); err != nil {
				t.Fatalf("%s: cycle %d: %v", placement, e.clock, err)
			}
			for _, id := range e.residents {
				if _, _, _, _, ok := e.strip.rectOf(id); !ok {
					t.Fatalf("%s: cycle %d: resident %d has no rectangle", placement, e.clock, id)
				}
			}
		}
		if events == 0 {
			t.Fatalf("%s: no events handled", placement)
		}
		if e.placeFails == 0 {
			t.Fatalf("%s: fabric never filled; the invariant sweep did not cover queueing", placement)
		}
	}
}

// TestScenarioCompactionRelocation manufactures the fragmented layout
// the sweep above cannot reach deterministically (real FFT footprints
// are full-height and symmetric) and verifies the whole relocation
// path: the blocked queue head arms the delayed compaction, the repack
// preserves the strip invariants, moved residents pay their area's
// reconfiguration stall, an in-flight port load into a moved region is
// invalidated, and the head finally places.
func TestScenarioCompactionRelocation(t *testing.T) {
	cfg := churnConfig(t)
	cfg.Jobs = 4
	cfg.Arrivals = ""
	e, err := newEngine(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink to a synthetic geometry: class 0 is 5x3, class 1 is 6x3,
	// on a 16x3 fabric.
	e.cols, e.rows = 16, 3
	e.strip = newStrip(16, 3, false)
	e.classes[0].w, e.classes[0].h = 5, 3
	e.classes[1].w, e.classes[1].h = 6, 3
	for _, id := range []int{0, 1, 2} {
		if _, _, ok := e.strip.place(id, 5, 3); !ok {
			t.Fatalf("seed placement %d failed", id)
		}
		e.jobs[id] = job{id: id, class: 0, state: stateLoading}
		e.residents = append(e.residents, id)
	}
	// The middle resident departs: two gaps (5 wide at x=5, 1 at x=15),
	// 18 CLBs free in total but nothing contiguous for a 6x3 head.
	e.strip.remove(1)
	e.residents = []int{0, 2}
	e.jobs[3] = job{id: 3, class: 1, state: stateQueued}
	e.queue = append(e.queue, 3)
	e.portJob, e.portRemain = 2, 7 // port mid-load into the region about to move

	e.tryPlace()
	if e.placeFails != 1 {
		t.Fatalf("placeFails = %d, want 1", e.placeFails)
	}
	if e.compactAt != e.clock+cfg.CompactionDelay {
		t.Fatalf("compactAt = %d, want armed at clock+%d", e.compactAt, cfg.CompactionDelay)
	}

	e.doCompact()
	checkStrip(t, e.strip, "after doCompact")
	if e.compactions != 1 || e.movedResidents != 1 {
		t.Fatalf("compactions=%d moved=%d, want 1 and 1", e.compactions, e.movedResidents)
	}
	if got := e.jobs[2].moveRemain; got != 5*3*e.perCLB {
		t.Fatalf("moved resident's stall = %d cycles, want area 15 x perCLB %d", got, e.perCLB)
	}
	if e.portJob != -1 || e.portRemain != 0 {
		t.Fatalf("port still targets job %d (remain %d) after its region moved", e.portJob, e.portRemain)
	}
	e.tryPlace()
	if e.jobs[3].state != stateLoading {
		t.Fatal("queue head still blocked after compaction")
	}
	if x, _, _, _, ok := e.strip.rectOf(3); !ok || x != 10 {
		t.Fatalf("head placed at x=%d ok=%v, want x=10 after residents slid left", x, ok)
	}
}

// TestScenarioStepAllocs pins the hot per-cycle loop at zero
// allocations: once the engine reaches a steady state (residents
// executing, port loading, arrivals ticking, jobs queued), stepCycle
// must not allocate.
func TestScenarioStepAllocs(t *testing.T) {
	cfg := churnConfig(t)
	e := startEngine(t, cfg)
	// Advance until at least one resident is executing.
	running := func() bool {
		for _, id := range e.residents {
			if e.jobs[id].state == stateRunning {
				return true
			}
		}
		return false
	}
	for !running() {
		if e.clock > 1<<20 {
			t.Fatal("engine never reached a running resident")
		}
		if ev := e.stepCycle(); ev != 0 {
			if err := e.handle(ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Freeze the countdowns so the measured window stays event-free in
	// the dimensions that would leave the hot path.
	for i := range e.jobs {
		if e.jobs[i].remain > 0 {
			e.jobs[i].remain += 1 << 30
		}
	}
	if e.portRemain > 0 {
		e.portRemain += 1 << 30
	}
	e.compactAt = -1
	if allocs := testing.AllocsPerRun(2000, func() { e.stepCycle() }); allocs != 0 {
		t.Fatalf("stepCycle allocates %v times per cycle, want 0", allocs)
	}
}

// TestScenarioConfigValidation pins the error surface: bad modes, bad
// arrival specs, missing classes, oversized designs.
func TestScenarioConfigValidation(t *testing.T) {
	base := func() Config { return churnConfig(t) }
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no classes", func(c *Config) { c.Classes = nil }},
		{"zero jobs", func(c *Config) { c.Jobs = 0 }},
		{"bad placement", func(c *Config) { c.Placement = "tetris" }},
		{"bad prefetch", func(c *Config) { c.Prefetch = "psychic" }},
		{"bad arrivals", func(c *Config) { c.Arrivals = "markov:0.4" }},
		{"nil design", func(c *Config) { c.Classes[0].Design = nil }},
		{"fabric too small", func(c *Config) { c.FabricCols, c.FabricRows = 4, 4 }},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: Run accepted an invalid config", tc.name)
		}
	}
}
