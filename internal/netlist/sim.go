package netlist

import (
	"fmt"
	"sort"
)

// Conflict records a cycle in which two or more tristate drivers were
// simultaneously enabled on one net — a violation of mutual exclusion on a
// shared resource line.
type Conflict struct {
	Cycle   int
	Net     NetID
	Drivers int
}

func (c Conflict) String() string {
	return fmt.Sprintf("cycle %d: net %d driven by %d enabled tristates", c.Cycle, int(c.Net), c.Drivers)
}

// simNode is one evaluation step: either a gate or a resolved tristate net.
type simNode struct {
	gate    int   // gate index, or -1
	tnet    NetID // tristate net, valid when gate < 0
	tbufs   []int // tbuf indices driving tnet
	inputs  []NetID
	outputs []NetID
}

// Simulator evaluates a Netlist cycle by cycle.
//
// Each Step: primary inputs are applied, DFF Q nets present their held
// state, combinational nodes evaluate in topological order, outputs are
// sampled, and finally every DFF captures its D input (positive edge).
type Simulator struct {
	n     *Netlist
	val   []bool
	hiZ   []bool
	state []bool

	order     []simNode
	cycle     int
	conflicts []Conflict
}

// NewSimulator levelizes the netlist (including tristate resolution order)
// and returns a simulator in the reset state. It fails on combinational
// cycles or nets with contradictory structural drivers.
func NewSimulator(n *Netlist) (*Simulator, error) {
	nodes, err := buildNodes(n)
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		n:     n,
		val:   make([]bool, n.NumNets()),
		hiZ:   make([]bool, n.NumNets()),
		state: make([]bool, len(n.DFFs())),
		order: nodes,
	}
	s.Reset()
	return s, nil
}

func buildNodes(n *Netlist) ([]simNode, error) {
	gates := n.Gates()
	tbufs := n.TBufs()

	// Group tristate buffers by output net.
	tgroup := map[NetID][]int{}
	for ti, tb := range tbufs {
		tgroup[tb.Out] = append(tgroup[tb.Out], ti)
	}

	var nodes []simNode
	for gi, g := range gates {
		nodes = append(nodes, simNode{gate: gi, inputs: g.In, outputs: []NetID{g.Out}})
	}
	tnets := make([]NetID, 0, len(tgroup))
	for net := range tgroup {
		tnets = append(tnets, net)
	}
	sort.Slice(tnets, func(i, j int) bool { return tnets[i] < tnets[j] })
	for _, net := range tnets {
		var ins []NetID
		for _, ti := range tgroup[net] {
			ins = append(ins, tbufs[ti].In, tbufs[ti].En)
		}
		nodes = append(nodes, simNode{gate: -1, tnet: net, tbufs: tgroup[net], inputs: ins, outputs: []NetID{net}})
	}

	producer := map[NetID]int{} // net -> node index
	for ni, nd := range nodes {
		for _, out := range nd.outputs {
			if prev, dup := producer[out]; dup {
				return nil, fmt.Errorf("netlist: net %q driven by nodes %d and %d", n.NetName(out), prev, ni)
			}
			producer[out] = ni
		}
	}

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, len(nodes))
	var order []simNode
	var visit func(ni int) error
	visit = func(ni int) error {
		switch color[ni] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("netlist: combinational cycle through node %d", ni)
		}
		color[ni] = gray
		for _, in := range nodes[ni].inputs {
			if p, ok := producer[in]; ok {
				if err := visit(p); err != nil {
					return err
				}
			}
		}
		color[ni] = black
		order = append(order, nodes[ni])
		return nil
	}
	for ni := range nodes {
		if err := visit(ni); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Reset restores every DFF to its initial value and clears statistics.
func (s *Simulator) Reset() {
	for i, d := range s.n.DFFs() {
		s.state[i] = d.Init
	}
	s.cycle = 0
	s.conflicts = nil
}

// Cycle returns the number of completed Steps since Reset.
func (s *Simulator) Cycle() int { return s.cycle }

// Conflicts returns tristate double-driver events observed since Reset.
func (s *Simulator) Conflicts() []Conflict { return s.conflicts }

// Step applies the primary inputs (in declaration order), evaluates one
// clock cycle, and returns the sampled primary outputs (in declaration
// order). The output slice is freshly allocated each call; use StepInto
// on hot paths.
func (s *Simulator) Step(inputs []bool) ([]bool, error) {
	result := make([]bool, len(s.n.Outputs()))
	if err := s.StepInto(inputs, result); err != nil {
		return nil, err
	}
	return result, nil
}

// StepInto is Step writing the sampled outputs into the caller's slice
// (len(out) must equal the output count), avoiding the per-cycle result
// allocation.
func (s *Simulator) StepInto(inputs, out []bool) error {
	ins := s.n.Inputs()
	if len(inputs) != len(ins) {
		//sparcs:ignore hotpath cold error path on a width mismatch
		return fmt.Errorf("netlist: got %d inputs, want %d", len(inputs), len(ins))
	}
	if len(out) != len(s.n.Outputs()) {
		//sparcs:ignore hotpath cold error path on a width mismatch
		return fmt.Errorf("netlist: got %d output slots, want %d", len(out), len(s.n.Outputs()))
	}
	// Drive sources: constants, primary inputs, DFF Q values.
	s.val[s.n.Const(false)] = false
	s.val[s.n.Const(true)] = true
	for i, id := range ins {
		s.val[id] = inputs[i]
	}
	for i, d := range s.n.DFFs() {
		s.val[d.Q] = s.state[i]
	}
	for i := range s.hiZ {
		s.hiZ[i] = false
	}

	// Combinational evaluation.
	tbufs := s.n.TBufs()
	gates := s.n.Gates()
	for _, nd := range s.order {
		if nd.gate >= 0 {
			g := gates[nd.gate]
			s.val[g.Out] = evalGate(g, s.val)
			continue
		}
		enabled := 0
		v := false
		for _, ti := range nd.tbufs {
			tb := tbufs[ti]
			if s.val[tb.En] {
				enabled++
				v = s.val[tb.In]
			}
		}
		switch {
		case enabled == 0:
			s.hiZ[nd.tnet] = true
			s.val[nd.tnet] = false
		case enabled == 1:
			s.val[nd.tnet] = v
		default:
			//sparcs:ignore hotpath drive conflicts are exceptional diagnostics, not steady-state work
			s.conflicts = append(s.conflicts, Conflict{Cycle: s.cycle, Net: nd.tnet, Drivers: enabled})
			s.val[nd.tnet] = v
		}
	}

	// Sample outputs.
	for i, id := range s.n.Outputs() {
		out[i] = s.val[id]
	}

	// Positive clock edge.
	for i, d := range s.n.DFFs() {
		s.state[i] = s.val[d.D]
	}
	s.cycle++
	return nil
}

// Value returns the most recently computed value of a net and whether it
// was high-impedance this cycle.
func (s *Simulator) Value(id NetID) (v bool, hiZ bool) {
	return s.val[id], s.hiZ[id]
}

// StepNamed is Step with named input/output maps, for readability in tests
// and examples. Missing inputs default to false.
func (s *Simulator) StepNamed(inputs map[string]bool) (map[string]bool, error) {
	ins := s.n.Inputs()
	vec := make([]bool, len(ins))
	for i, id := range ins {
		vec[i] = inputs[s.n.NetName(id)]
	}
	outVec, err := s.Step(vec)
	if err != nil {
		return nil, err
	}
	outs := s.n.Outputs()
	result := make(map[string]bool, len(outs))
	for i := range outs {
		// Output names live in the output index; recover them.
		result[s.outputName(i)] = outVec[i]
	}
	return result, nil
}

func (s *Simulator) outputName(i int) string {
	// Outputs were registered by name in declaration order; reverse-map.
	id := s.n.Outputs()[i]
	for name, oid := range s.n.outputIndex {
		if oid == id {
			return name
		}
	}
	return s.n.NetName(id)
}

func evalGate(g Gate, val []bool) bool {
	switch g.Kind {
	case And, Nand:
		v := true
		for _, in := range g.In {
			v = v && val[in]
		}
		if g.Kind == Nand {
			return !v
		}
		return v
	case Or, Nor:
		v := false
		for _, in := range g.In {
			v = v || val[in]
		}
		if g.Kind == Nor {
			return !v
		}
		return v
	case Xor:
		v := false
		for _, in := range g.In {
			v = v != val[in]
		}
		return v
	case Not:
		return !val[g.In[0]]
	case Buf:
		return val[g.In[0]]
	default:
		//sparcs:ignore hotpath cold panic path; gate kinds are validated at build time
		panic(fmt.Sprintf("netlist: unknown gate kind %v", g.Kind))
	}
}
