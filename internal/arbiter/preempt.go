package arbiter

import "fmt"

// PreemptiveRoundRobin implements the extension the paper's conclusion
// proposes as future work: "preemption techniques could be introduced to
// ensure that no task is granted access to a shared resource and never
// relinquishes its request."
//
// It behaves exactly like the round-robin arbiter except that a holder
// that keeps requesting for more than MaxHold consecutive granted cycles
// while another task is waiting has its grant revoked: the scan resumes
// at the next task, and the hog re-enters contention like any requester.
// With no competing requests the holder may keep the resource
// indefinitely (work conservation is preserved).
type PreemptiveRoundRobin struct {
	n       int
	maxHold int
	inner   *RoundRobin
	heldFor int
	grants  []bool
}

// NewPreemptiveRoundRobin returns a preempting arbiter; maxHold must be
// at least 1 (grants are revoked after maxHold consecutive cycles).
func NewPreemptiveRoundRobin(n, maxHold int) (*PreemptiveRoundRobin, error) {
	if n < MinN || n > MaxN {
		return nil, RangeError(n)
	}
	if maxHold < 1 {
		return nil, fmt.Errorf("arbiter: maxHold must be >= 1, got %d", maxHold)
	}
	return &PreemptiveRoundRobin{
		n:       n,
		maxHold: maxHold,
		inner:   NewRoundRobin(n),
		grants:  make([]bool, n),
	}, nil
}

// Name implements Policy.
func (p *PreemptiveRoundRobin) Name() string { return "round-robin-preemptive" }

// N implements Policy.
func (p *PreemptiveRoundRobin) N() int { return p.n }

// Reset implements Policy.
func (p *PreemptiveRoundRobin) Reset() {
	p.inner.Reset()
	p.heldFor = 0
}

// Step implements Policy.
func (p *PreemptiveRoundRobin) Step(req []bool) []bool {
	p.StepInto(req, p.grants)
	return p.grants
}

// StepInto implements InPlaceStepper with the same semantics as Step.
//
//sparcs:hotpath
func (p *PreemptiveRoundRobin) StepInto(req, grant []bool) {
	checkLanes(req, grant, p.n)
	p.StepBits(PackBools(req)).WriteBools(grant)
}

// StepBits implements BitStepper: the inner round-robin scan, with the
// hog's request bit masked out for one step once it has held for
// maxHold granted cycles while another task waits.
//
//sparcs:hotpath
func (p *PreemptiveRoundRobin) StepBits(req BitVec) BitVec {
	req &= p.inner.mask
	holder := p.inner.holder
	var holderBit BitVec
	if holder >= 0 {
		holderBit = 1 << uint(holder)
	}
	if holder >= 0 && req&holderBit != 0 && req&^holderBit != 0 && p.heldFor >= p.maxHold {
		// Revoke: mask the hog's request for this arbitration step so the
		// scan passes it by; it stays eligible from the next cycle on.
		g := p.inner.StepBits(req &^ holderBit)
		p.heldFor = grantHold(g)
		return g
	}
	g := p.inner.StepBits(req)
	if p.inner.holder == holder && holder >= 0 && g&holderBit != 0 {
		p.heldFor++
	} else {
		p.heldFor = grantHold(g)
	}
	return g
}
