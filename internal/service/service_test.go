package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sparcs"
)

// post drives the handler in-process — no TCP, no fd limits — which is
// what lets the concurrency tests run a thousand simultaneous requests
// under -race.
func post(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func newServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestServerMatchesOfflineRun is the service's correctness contract:
// for every request shape, the served body is byte-identical to
// OfflineResult — and hence to EncodeResult over a plain System.Run
// with the same options. Headers carry the metadata; the body never
// differs between a cache hit and a miss.
func TestServerMatchesOfflineRun(t *testing.T) {
	s := newServer(t, Config{})
	requests := []ExperimentRequest{
		{Design: "fft", Tiles: 2},
		{Design: "fft", Tiles: 2, Run: RunSpec{Policy: "wrr:2", Contention: "M1=hog/1", Seed: 7}},
		{Design: "fft", Tiles: 2, Run: RunSpec{Policy: "hier:2", Contention: "M1=bernoulli:0.30/2,M1+M3=corr:0.25", Seed: 3}},
		{Design: "fft", Tiles: 3, Run: RunSpec{Policy: "priority", MaxCycles: 500000}, Class: "batch"},
	}
	for i, req := range requests {
		offline, hash, err := OfflineResult(req)
		if err != nil {
			t.Fatalf("request %d: offline: %v", i, err)
		}
		// Serve the same request twice: a miss (or singleflight) first,
		// then a guaranteed cache hit. Both must serve the same bytes.
		for pass, want := range []string{"", "hit"} {
			rec := post(t, s.Handler(), "/v1/experiments", req)
			if rec.Code != http.StatusOK {
				t.Fatalf("request %d pass %d: status %d: %s", i, pass, rec.Code, rec.Body.String())
			}
			if !bytes.Equal(rec.Body.Bytes(), offline) {
				t.Fatalf("request %d pass %d: served body differs from offline run:\nserved:  %s\noffline: %s",
					i, pass, rec.Body.String(), offline)
			}
			if got := rec.Header().Get("X-Sparcsd-Design-Hash"); got != hash {
				t.Fatalf("request %d pass %d: hash header %q, want %q", i, pass, got, hash)
			}
			if got := rec.Header().Get("X-Sparcsd-Cache"); want != "" && got != want {
				t.Fatalf("request %d pass %d: cache header %q, want %q", i, pass, got, want)
			}
		}
	}
}

// TestDesignHashIdentity pins the cache key's semantics: same inputs
// hash alike across independent constructions, different build inputs
// hash apart.
func TestDesignHashIdentity(t *testing.T) {
	hash := func(tiles int, b BuildSpec) string {
		g, board, programs, bopts, err := designInputs("fft", tiles, b)
		if err != nil {
			t.Fatal(err)
		}
		h, err := sparcs.DesignHash(g, board, programs, bopts...)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	if h1, h2 := hash(2, BuildSpec{}), hash(2, BuildSpec{}); h1 != h2 {
		t.Fatalf("same design hashed differently: %s vs %s", h1, h2)
	}
	if h1, h2 := hash(2, BuildSpec{}), hash(3, BuildSpec{}); h1 == h2 {
		t.Fatalf("different tile counts share hash %s", h1)
	}
	if h1, h2 := hash(2, BuildSpec{}), hash(2, BuildSpec{Conservative: true}); h1 == h2 {
		t.Fatalf("different build options share hash %s", h1)
	}
	if !strings.HasPrefix(hash(2, BuildSpec{}), "sha256:") {
		t.Fatal("hash lacks the sha256: scheme prefix")
	}
}

// TestConcurrentRequests hammers one server with 1000 simultaneous
// in-process requests mixing cache hits, cache misses (two distinct
// designs), invalid designs, and both admission classes — the -race
// exercise behind the service's "concurrent by construction" claim.
// Every 200 body must be byte-equal to its design's offline run, every
// outcome must be accounted for, and the two designs must compile
// exactly once each no matter how many requests raced on a cold cache.
// A second phase holds every execution slot and floods the bounded
// queues, making the 429 backpressure path deterministic (scheduling on
// a single-CPU host can otherwise drain arrivals as fast as they
// queue).
func TestConcurrentRequests(t *testing.T) {
	s := newServer(t, Config{Workers: 2, QueueDepth: 4})

	off2, _, err := OfflineResult(ExperimentRequest{Design: "fft", Tiles: 2})
	if err != nil {
		t.Fatal(err)
	}
	off3, _, err := OfflineResult(ExperimentRequest{Design: "fft", Tiles: 3})
	if err != nil {
		t.Fatal(err)
	}

	const total = 1000
	var ok2, ok3, rejected, badDesign, other atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			req := ExperimentRequest{Design: "fft", Tiles: 2}
			if i%2 == 1 {
				req.Class = "batch"
			}
			switch {
			case i%10 == 9:
				req.Design = "no-such-design"
			case i%3 == 0:
				req.Tiles = 3
			}
			rec := post(t, s.Handler(), "/v1/experiments", req)
			switch rec.Code {
			case http.StatusOK:
				want := off2
				counter := &ok2
				if req.Tiles == 3 {
					want = off3
					counter = &ok3
				}
				if !bytes.Equal(rec.Body.Bytes(), want) {
					t.Errorf("request %d: served body differs from offline run", i)
				}
				counter.Add(1)
			case http.StatusTooManyRequests:
				var e ErrorJSON
				if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Kind != "queue-full" {
					t.Errorf("request %d: 429 body %q lacks queue-full kind", i, rec.Body.String())
				}
				rejected.Add(1)
			case http.StatusBadRequest:
				if req.Design == "no-such-design" {
					badDesign.Add(1)
				} else {
					t.Errorf("request %d: unexpected 400: %s", i, rec.Body.String())
				}
			default:
				other.Add(1)
				t.Errorf("request %d: unexpected status %d: %s", i, rec.Code, rec.Body.String())
			}
		}(i)
	}
	close(start)
	wg.Wait()

	if got := ok2.Load() + ok3.Load() + rejected.Load() + badDesign.Load() + other.Load(); got != total {
		t.Fatalf("accounted for %d of %d requests", got, total)
	}
	if ok2.Load() == 0 || ok3.Load() == 0 {
		t.Fatalf("both designs should serve successfully (tiles2=%d tiles3=%d)", ok2.Load(), ok3.Load())
	}

	// Phase 2: hold both execution slots, then flood both classes. With
	// no slot free, arrivals can only queue (4 per class) or reject:
	// exactly 8 of the 50 requests block until the slots free up, the
	// other 42 must come back as typed 429s.
	for i := 0; i < 2; i++ {
		if err := s.adm.acquire(context.Background(), "interactive"); err != nil {
			t.Fatal(err)
		}
	}
	const flood = 50
	var floodOK, floodRejected atomic.Int64
	var floodWG sync.WaitGroup
	for i := 0; i < flood; i++ {
		floodWG.Add(1)
		go func(i int) {
			defer floodWG.Done()
			req := ExperimentRequest{Design: "fft", Tiles: 2}
			if i%2 == 1 {
				req.Class = "batch"
			}
			rec := post(t, s.Handler(), "/v1/experiments", req)
			switch rec.Code {
			case http.StatusOK:
				if !bytes.Equal(rec.Body.Bytes(), off2) {
					t.Errorf("flood request %d: served body differs from offline run", i)
				}
				floodOK.Add(1)
			case http.StatusTooManyRequests:
				var e ErrorJSON
				if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Kind != "queue-full" {
					t.Errorf("flood request %d: 429 body %q lacks queue-full kind", i, rec.Body.String())
				}
				rejected.Add(1)
				floodRejected.Add(1)
			default:
				t.Errorf("flood request %d: unexpected status %d: %s", i, rec.Code, rec.Body.String())
			}
		}(i)
	}
	// Every flood request must resolve — 8 queued, 42 rejected — before
	// the slots free up, or a late arrival could slip into a queue slot
	// vacated by dispatch and skew the counts.
	deadline := time.Now().Add(30 * time.Second)
	for floodRejected.Load() != flood-8 {
		if time.Now().After(deadline) {
			_, queued, _ := s.adm.snapshot()
			t.Fatalf("flood never settled: %d rejected, queues %v", floodRejected.Load(), queued)
		}
		time.Sleep(time.Millisecond)
	}
	s.adm.release()
	s.adm.release()
	floodWG.Wait()
	if floodOK.Load() != 8 {
		t.Fatalf("flood served %d requests, want exactly the 8 queued ones", floodOK.Load())
	}

	st := statsOf(t, s)
	if st.Compiles != 2 {
		t.Fatalf("compiles = %d, want exactly 2 (one per distinct design hash)", st.Compiles)
	}
	if st.CacheMisses != 2 {
		t.Fatalf("cache misses = %d, want 2", st.CacheMisses)
	}
	if wantHits := ok2.Load() + ok3.Load() + floodOK.Load() - 2; st.CacheHits != wantHits {
		t.Fatalf("cache hits = %d, want %d (every served request after the first per design)", st.CacheHits, wantHits)
	}
	if st.RejectedFull != rejected.Load() || st.RejectedFull < flood-8 {
		t.Fatalf("stats rejectedFull = %d, client saw %d (want >= %d)", st.RejectedFull, rejected.Load(), flood-8)
	}
}

func statsOf(t *testing.T, s *Server) Stats {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestSweepEndpoint pins the sweep fan-out and its partial-failure
// contract: completed siblings come back in order (byte-identical to
// their offline equivalents), the failed slot is null, and the typed
// error names the failing index — System.Sweep's SweepError surfaced
// over the wire.
func TestSweepEndpoint(t *testing.T) {
	s := newServer(t, Config{})
	req := SweepRequest{
		Design: "fft", Tiles: 2,
		Experiments: []RunSpec{
			{},
			{Policy: "no-such-policy"},
			{Policy: "priority", Seed: 5},
		},
	}
	rec := post(t, s.Handler(), "/v1/sweeps", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp SweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	if resp.Error == nil || resp.Error.Index != 1 {
		t.Fatalf("sweep error = %+v, want index 1", resp.Error)
	}
	if !strings.Contains(resp.Error.Message, "unknown policy") {
		t.Fatalf("sweep error message %q does not name the cause", resp.Error.Message)
	}
	if string(resp.Results[1]) != "null" {
		t.Fatalf("failed slot = %s, want null", resp.Results[1])
	}
	for _, i := range []int{0, 2} {
		offline, _, err := OfflineResult(ExperimentRequest{Design: "fft", Tiles: 2, Run: req.Experiments[i]})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resp.Results[i], bytes.TrimSuffix(offline, []byte("\n"))) {
			t.Fatalf("sweep result %d differs from offline run", i)
		}
	}
}

// TestDrainRejectsNewWork covers the graceful-shutdown half of
// admission: after Drain, new experiments get the typed 503 and the
// stats report draining.
func TestDrainRejectsNewWork(t *testing.T) {
	s := newServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain of an idle server: %v", err)
	}
	rec := post(t, s.Handler(), "/v1/experiments", ExperimentRequest{Design: "fft", Tiles: 2})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status %d, want 503", rec.Code)
	}
	var e ErrorJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Kind != "draining" {
		t.Fatalf("post-drain body %q lacks draining kind", rec.Body.String())
	}
	if st := statsOf(t, s); !st.Draining || st.RejectedDraining != 1 {
		t.Fatalf("stats after drain = %+v", st)
	}
}

// TestDrainWaitsForInflight proves drain is graceful, not abrupt: an
// experiment admitted before Drain completes, and Drain returns only
// after it has.
func TestDrainWaitsForInflight(t *testing.T) {
	s := newServer(t, Config{Workers: 1})
	if err := s.adm.acquire(context.Background(), "interactive"); err != nil {
		t.Fatal(err)
	}
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	select {
	case err := <-drained:
		t.Fatalf("drain returned with work in flight: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	s.adm.release()
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain never completed after the in-flight experiment finished")
	}
}

// TestAdmissionWeightedOrder pins the QoS knob: with one execution slot
// and queued work in both classes, the wrr quanta decide the dispatch
// ratio. The dispatch chain is sequential (each grantee releases before
// the next grant), so the observed order is deterministic.
func TestAdmissionWeightedOrder(t *testing.T) {
	adm, err := newAdmission([]Class{{Name: "fast", Weight: 2}, {Name: "slow", Weight: 1}}, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the only slot so every subsequent acquire queues.
	if err := adm.acquire(context.Background(), "fast"); err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 6)
	var wg sync.WaitGroup
	enqueue := func(class string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := adm.acquire(context.Background(), class); err != nil {
				t.Errorf("acquire %s: %v", class, err)
				return
			}
			order <- class
			adm.release()
		}()
		// Wait until this waiter is actually queued so queue order is
		// deterministic.
		deadline := time.Now().Add(5 * time.Second)
		for {
			_, queued, _ := adm.snapshot()
			if queued[class] >= 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("waiter for %s never queued", class)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// Interleave so each class's FIFO holds 3 waiters: f f f s s s by
	// queue, dispatched under wrr 2:1.
	for i := 0; i < 3; i++ {
		enqueue("fast")
	}
	for i := 0; i < 3; i++ {
		enqueue("slow")
	}
	adm.release() // free the slot; the dispatch chain drains both queues
	wg.Wait()
	close(order)
	var got []string
	for c := range order {
		got = append(got, c)
	}
	want := []string{"fast", "fast", "slow", "fast", "slow", "slow"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("dispatch order %v, want %v (wrr 2:1)", got, want)
	}
}

// TestAdmissionTypedErrors pins the error taxonomy callers branch on.
func TestAdmissionTypedErrors(t *testing.T) {
	adm, err := newAdmission([]Class{{Name: "a", Weight: 1}, {Name: "b", Weight: 1}}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var unknown *UnknownClassError
	if err := adm.acquire(context.Background(), "nope"); !errors.As(err, &unknown) || unknown.Class != "nope" {
		t.Fatalf("unknown class error = %v", err)
	}
	if err := adm.acquire(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	// Slot held; one waiter fits the depth-1 queue, the next is typed
	// queue-full.
	ctx, cancel := context.WithCancel(context.Background())
	waiting := make(chan error, 1)
	go func() { waiting <- adm.acquire(ctx, "a") }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, queued, _ := adm.snapshot()
		if queued["a"] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	var full *QueueFullError
	if err := adm.acquire(context.Background(), "a"); !errors.As(err, &full) || full.Class != "a" {
		t.Fatalf("queue-full error = %v", err)
	}
	// Cancelling the queued waiter surfaces ctx.Err and leaves the
	// queue clean.
	cancel()
	if err := <-waiting; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v", err)
	}
	if _, queued, _ := adm.snapshot(); queued["a"] != 0 {
		t.Fatalf("cancelled waiter still queued: %v", queued)
	}
	adm.release()
}

// TestLoadTestHarness exercises the loadtest client against a real
// HTTP listener end to end: all requests resolve, the cache serves
// every repeat, and the report's accounting is consistent.
func TestLoadTestHarness(t *testing.T) {
	s := newServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	rep, err := LoadTest(LoadTestOptions{URL: ts.URL, Requests: 60, Concurrency: 8, Tiles: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.OK + rep.RejectedFull + rep.RejectedDraining + rep.Failed; got != rep.Requests {
		t.Fatalf("report accounts for %d of %d requests", got, rep.Requests)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d requests failed outright", rep.Failed)
	}
	if rep.Compiles != 1 {
		t.Fatalf("compiles = %d, want 1 (one design, compiled once)", rep.Compiles)
	}
	if rep.OK > 0 && (rep.P50 <= 0 || rep.P99 < rep.P50) {
		t.Fatalf("implausible latency percentiles: p50=%v p99=%v", rep.P50, rep.P99)
	}
	if rep.CacheHits+rep.CacheMisses != int64(rep.OK) {
		t.Fatalf("cache hits+misses = %d, want %d (every served request consults the cache)",
			rep.CacheHits+rep.CacheMisses, rep.OK)
	}
}
