package sparcs_test

import (
	"strings"
	"testing"

	"sparcs"
	"sparcs/internal/core"
	"sparcs/internal/fft"
	"sparcs/internal/partition"
	"sparcs/internal/sim"
)

func TestNewArbiterPublicAPI(t *testing.T) {
	arb, err := sparcs.NewArbiter(3)
	if err != nil {
		t.Fatal(err)
	}
	g := arb.Step([]bool{false, true, true})
	if !g[1] {
		t.Fatalf("grant = %v, want task 2 first", g)
	}
	if _, err := sparcs.NewArbiter(1); err == nil {
		t.Fatal("N=1 should be rejected")
	}
}

func TestNewPolicyPublicAPI(t *testing.T) {
	for _, name := range []string{"round-robin", "fifo", "priority", "random"} {
		p, err := sparcs.NewPolicy(name, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.N() != 4 {
			t.Fatalf("%s: N = %d", name, p.N())
		}
	}
}

func TestArbiterVHDLPublicAPI(t *testing.T) {
	text, err := sparcs.ArbiterVHDL(5, "compact")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "entity rr_arbiter_5") {
		t.Fatal("VHDL missing entity")
	}
	if _, err := sparcs.ArbiterVHDL(5, "johnson"); err == nil {
		t.Fatal("bad encoding should error")
	}
}

func TestCharacterizeArbiterPublicAPI(t *testing.T) {
	r, err := sparcs.CharacterizeArbiter(4, "synplify", "one-hot")
	if err != nil {
		t.Fatal(err)
	}
	if r.CLBs <= 0 || r.MaxMHz <= 0 {
		t.Fatalf("degenerate result %+v", r)
	}
	if _, err := sparcs.CharacterizeArbiter(4, "xst", "one-hot"); err == nil {
		t.Fatal("bad tool should error")
	}
}

func TestWildforcePublicAPI(t *testing.T) {
	b := sparcs.Wildforce()
	if len(b.PEs) != 4 {
		t.Fatalf("PEs = %d", len(b.PEs))
	}
}

// TestRunFFTCaseStudyPublicAPI is the headline integration test through
// the public facade: structure, correctness, and timing shape all at once.
func TestRunFFTCaseStudyPublicAPI(t *testing.T) {
	cs, err := sparcs.RunFFTCaseStudy(4)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.OutputOK {
		t.Fatal("output check failed")
	}
	if len(cs.Design.Stages) != 3 {
		t.Fatalf("stages = %d, want 3", len(cs.Design.Stages))
	}
	if cs.Speedup <= 1 {
		t.Fatalf("speedup = %.2f, hardware should win", cs.Speedup)
	}
	if !strings.Contains(cs.Report, "Arb6") {
		t.Fatal("report missing the 6-input arbiter")
	}
}

// TestNewArbiterRange sweeps both out-of-range sides of the public
// constructor.
func TestNewArbiterRange(t *testing.T) {
	for _, n := range []int{-1, 0, 1, 65, 100} {
		if _, err := sparcs.NewArbiter(n); err == nil {
			t.Fatalf("N=%d should be rejected", n)
		}
	}
	for _, n := range []int{2, 16, 17, 64} {
		if _, err := sparcs.NewArbiter(n); err != nil {
			t.Fatalf("N=%d should be accepted: %v", n, err)
		}
	}
}

// TestNewPolicyErrors covers unknown names and out-of-range sizes.
func TestNewPolicyErrors(t *testing.T) {
	if _, err := sparcs.NewPolicy("lottery", 4); err == nil {
		t.Fatal("unknown policy name should error")
	}
	if _, err := sparcs.NewPolicy("round-robin", 1); err == nil {
		t.Fatal("N=1 should be rejected")
	}
	if _, err := sparcs.NewPolicy("round-robin", 65); err == nil {
		t.Fatal("N=65 should be rejected")
	}
	// Synthesized kinds keep the 2^N state-machine cap even though the
	// behavioral kinds now run to 64.
	if _, err := sparcs.NewPolicy("fsm", 17); err == nil {
		t.Fatal("fsm at N=17 should be rejected")
	}
	if _, err := sparcs.NewPolicy("netlist:one-hot", 17); err == nil {
		t.Fatal("netlist at N=17 should be rejected")
	}
}

// TestArbiterVHDLErrors covers bad encodings and bad sizes.
func TestArbiterVHDLErrors(t *testing.T) {
	for _, enc := range []string{"johnson", "", "onehot?"} {
		if _, err := sparcs.ArbiterVHDL(4, enc); err == nil {
			t.Fatalf("encoding %q should be rejected", enc)
		}
	}
	if _, err := sparcs.ArbiterVHDL(1, "one-hot"); err == nil {
		t.Fatal("N=1 should be rejected")
	}
}

// TestRunFFTCaseStudyGolden pins the case study's externally observable
// numbers: OutputOK, zero violations, the paper's three-stage structure,
// and the exact arbiter set — so any simulator change that perturbs
// scheduling shows up as a diff here.
func TestRunFFTCaseStudyGolden(t *testing.T) {
	cs, err := sparcs.RunFFTCaseStudy(2)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.OutputOK {
		t.Fatal("hardware memory image must match the fixed-point FFT reference")
	}
	if v := cs.Result.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	arbs := cs.Design.Arbiters()
	want := []string{"0:M1:6", "0:M3:2", "1:M3:4"}
	if len(arbs) != len(want) {
		t.Fatalf("arbiters = %v, want %v", arbs, want)
	}
	for i := range want {
		if arbs[i] != want[i] {
			t.Fatalf("arbiters = %v, want %v", arbs, want)
		}
	}
	if cs.CyclesPerTile <= 0 || cs.HWSeconds <= 0 || cs.SWSeconds <= 0 {
		t.Fatalf("degenerate timings: %+v", cs)
	}
}

// TestSimulateSweepPublicAPI runs a multi-point sweep of the compiled
// FFT design through the facade and checks each point agrees with the
// case study's own simulation.
func TestSimulateSweepPublicAPI(t *testing.T) {
	cs, err := sparcs.RunFFTCaseStudy(2)
	if err != nil {
		t.Fatal(err)
	}
	var points []sparcs.SweepPoint
	for p := 0; p < 4; p++ {
		mem := sim.NewMemory()
		fft.LoadInput(mem, 2, 42)
		points = append(points, sparcs.SweepPoint{Design: cs.Design, Memory: mem})
	}
	results, err := sparcs.SimulateSweep(points)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if len(r.Violations()) != 0 {
			t.Fatalf("point %d: violations %v", i, r.Violations())
		}
		if r.TotalCycles != cs.Result.TotalCycles {
			t.Fatalf("point %d: %d cycles, case study ran %d", i, r.TotalCycles, cs.Result.TotalCycles)
		}
	}
}

func TestNewPolicyPublicAPIGrammar(t *testing.T) {
	// The facade reaches every implementation, with parameters.
	for _, spec := range []string{
		"rr", "fifo", "priority", "random:9",
		"fsm", "netlist:gray", "preemptive:8", "wrr:1,2,3,4", "hier:2",
	} {
		p, err := sparcs.NewPolicy(spec, 4)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if p.N() != 4 {
			t.Fatalf("%s: N = %d", spec, p.N())
		}
	}
	if _, err := sparcs.NewPolicy("hier:3", 4); err == nil {
		t.Fatal("hier:3 at N=4 should be rejected (unbalanced tree)")
	}
}

func TestEvaluatePoliciesPublicAPI(t *testing.T) {
	policies := []string{"rr", "preemptive:4"}
	workloads := []string{"hog", "bernoulli:0.30"}
	cells, err := sparcs.EvaluatePolicies(policies, workloads, sparcs.EvaluateOptions{N: 4, Cycles: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	for _, m := range cells {
		if m.Violation != "" {
			t.Errorf("%s × %s: %s", m.Policy, m.Workload, m.Violation)
		}
	}
	// The hog monopolizes plain round-robin but not the preemptive
	// arbiter — the paper's future-work claim, visible from the facade.
	rrHog, preHog := cells[0], cells[2]
	if rrHog.Jain() > 0.3 {
		t.Errorf("round-robin under hog: Jain %.3f, expected monopoly", rrHog.Jain())
	}
	if preHog.Jain() < 0.7 {
		t.Errorf("preemptive under hog: Jain %.3f, expected bounded hold", preHog.Jain())
	}
	table := sparcs.FormatPolicyTable(cells)
	if !strings.Contains(table, "jain") || !strings.Contains(table, "round-robin") {
		t.Errorf("table malformed:\n%s", table)
	}
	if _, err := sparcs.EvaluatePolicies([]string{"lottery"}, workloads, sparcs.EvaluateOptions{}); err == nil {
		t.Fatal("unknown policy should error")
	}
}

// TestFFTMeasuredColumnRoundTrip is the acceptance test for the
// capture→replay loop: the FFT case study's measured bank-M1 request
// stream converts into a workload column (backed by workload.NewTrace)
// and evaluates in the same grid as synthetic shapes, under policies
// the capture never ran.
func TestFFTMeasuredColumnRoundTrip(t *testing.T) {
	col, err := sparcs.FFTMeasuredColumn(2, 6, "round-robin")
	if err != nil {
		t.Fatal(err)
	}
	if col.Name != "fft:M1" {
		t.Fatalf("column name %q, want fft:M1 (the Arb6 bank)", col.Name)
	}
	cells, err := sparcs.EvaluatePolicyColumns(
		[]string{"rr", "fifo", "preemptive:4"},
		[]sparcs.WorkloadColumn{col, sparcs.SpecWorkloadColumn("bernoulli:0.30")},
		sparcs.EvaluateOptions{N: 6, Cycles: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(cells))
	}
	for i, m := range cells {
		if m.Violation != "" {
			t.Errorf("cell %d (%s × %s): %s", i, m.Policy, m.Workload, m.Violation)
		}
	}
	// The measured stream carries real demand: every policy's fft:M1
	// cell must show traffic, and being replayed open-loop under the
	// same N, demand is identical across policies in the column.
	fftDemand := cells[0].Demand()
	if fftDemand <= 0 {
		t.Fatal("measured FFT column shows no demand")
	}
	for i := 0; i < len(cells); i += 2 {
		if cells[i].Workload != "fft:M1" {
			t.Fatalf("cell %d workload %q, want fft:M1", i, cells[i].Workload)
		}
		if cells[i].Demand() != fftDemand {
			t.Errorf("fft:M1 demand differs across policies: %g vs %g", cells[i].Demand(), fftDemand)
		}
	}
	table := sparcs.FormatPolicyTable(cells)
	for _, want := range []string{"fft:M1", "p50", "p99"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	// A width mismatch is a clean error, not a silent truncation.
	if _, err := sparcs.FFTMeasuredColumn(2, 16, "rr"); err == nil {
		t.Fatal("no 16-line arbiter exists; expected an error")
	}
}

// TestContentionPublicAPI drives background contention through the
// facade: the FFT under bursty phantoms still verifies its output, the
// run reports phantom stats, and the grammar round-trips.
func TestContentionPublicAPI(t *testing.T) {
	specs, err := sparcs.ParseContention("M1=bursty/2")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Resource != "M1" || specs[0].Workload != "bursty" || specs[0].Lines != 2 {
		t.Fatalf("parsed %+v", specs)
	}
	g := fft.Taskgraph()
	opts := core.Options{
		Partition:  partition.Options{FixedStages: fft.PaperStages()},
		Contention: specs,
	}
	// Contention-aware partitioning prices M1's arbiter at its simulated
	// width (6 members + 2 phantoms): Arb8 costs 37 CLBs and PE1
	// genuinely overflows, which Compile must now report.
	if _, err := sparcs.Compile(g, sparcs.Wildforce(), fft.Programs(2), opts); err == nil {
		t.Fatal("phantom-widened Arb8 should overflow PE1's CLB capacity")
	} else if !strings.Contains(err.Error(), "over capacity") {
		t.Fatalf("want an over-capacity error, got: %v", err)
	}
	// An explicit (empty) estimate opts out of the derived width bump —
	// the escape hatch for phantom-only experiments on a full board.
	opts.Partition.ExpectedContention = map[string]int{}
	d, err := sparcs.Compile(g, sparcs.Wildforce(), fft.Programs(2), opts)
	if err != nil {
		t.Fatal(err)
	}
	mem := sim.NewMemory()
	in := fft.LoadInput(mem, 2, 42)
	res, err := sparcs.Simulate(d, mem, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := fft.CheckOutput(mem, in); err != nil {
		t.Fatalf("FFT output corrupted by background contention: %v", err)
	}
	found := false
	for _, ss := range res.Stages {
		if cs := ss.Stats.Contention["M1"]; cs != nil {
			found = true
			if len(cs.Grants) != 2 {
				t.Fatalf("phantom lines %d, want 2", len(cs.Grants))
			}
		}
	}
	if !found {
		t.Fatal("no stage reported contention stats for M1")
	}
	if _, err := sparcs.ParseContention("M1=notashape"); err == nil {
		t.Fatal("bad workload shape should error")
	}
	if _, err := sparcs.ParseContention("M1"); err == nil {
		t.Fatal("missing '=' should error")
	}
}
