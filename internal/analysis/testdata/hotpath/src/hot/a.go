// Seeded violations for the hotpath analyzer: every allocating
// construct it must catch, plus clean and unmarked code it must not
// flag.
package hot

import (
	"fmt"

	"hot/dep"
)

var sink []int
var sunk uint64
var table = map[string]int{}
var counts = map[int]int{}

type pair struct{ a, b int }

type rec struct{ vals []int }

func (r *rec) add(v int) {
	r.vals = append(r.vals, v) // want `append may grow its backing array`
}

func takeAny(v any) { _ = v }

func release() {}

func spin() {}

// Marked is the per-cycle kernel under test.
//
//sparcs:hotpath
func Marked(n int, buf []byte) int {
	sink = append(sink, n) // want `append may grow its backing array`
	b := make([]int, n)    // want `make allocates`
	p := new(int)          // want `new allocates`
	fmt.Println(n)         // want `fmt.Println allocates`
	table["k"] = n         // want `map write may allocate`
	counts[n]++            // want `map write may allocate`
	delete(counts, n)      // want `map delete touches a map`
	s := string(buf)       // want `string\(\[\]byte\) conversion allocates`
	bs := []byte(s)        // want `\[\]byte\(string\) conversion allocates`
	s2 := s + "x"          // want `string concatenation allocates`
	xs := []int{1, 2}      // want `slice literal allocates`
	mm := map[int]int{}    // want `map literal allocates`
	pp := &pair{1, n}      // want `&composite literal escapes to the heap`
	_ = any(n)             // want `conversion to interface boxes the value`
	takeAny(n)             // want `passing int to interface parameter boxes the value`
	_ = func() { _ = n }   // want `function literal allocates a closure`
	defer release()        // want `defer allocates`
	go spin()              // want `goroutine spawn allocates`
	var r rec
	r.add(n)
	helper(n)
	dep.Leaf(n)
	_, _, _, _, _, _ = b, p, bs, s2, xs, mm
	return pp.a
}

// helper is unmarked but statically reachable from Marked, so its body
// is hot too.
func helper(n int) {
	sink = append(sink, n+1) // want `append may grow its backing array`
}

// Clean is marked and allocation-free: no diagnostics.
//
//sparcs:hotpath
func Clean(x uint64) uint64 {
	x |= x >> 1
	x |= x >> 2
	sunk = x
	return x
}

// Cold is unmarked and unreachable from any mark: allocation is fine.
func Cold(n int) []int {
	return make([]int, n)
}

// LoopOnly marks just its inner loop: setup above the mark may
// allocate, the loop body may not.
func LoopOnly(n int) {
	xs := make([]int, 0, n)
	//sparcs:hotpath
	for i := 0; i < n; i++ {
		xs = append(xs, i) // want `append may grow its backing array`
	}
	sink = xs
}

type stepper interface{ Step(int) int }

// An interface call is devirtualized: the walk fans out to every
// module-local implementation, so the allocating one is caught even
// though only dynamic dispatch reaches it.
//
//sparcs:hotpath
func Dyn(s stepper, n int) int {
	return s.Step(n)
}

type allocStepper struct{ buf []int }

func (a *allocStepper) Step(n int) int {
	a.buf = append(a.buf, n) // want `append may grow its backing array`
	return len(a.buf)
}

type cleanStepper struct{ last int }

func (c *cleanStepper) Step(n int) int {
	c.last = n
	return n
}

// A call through a plain function value has no callee set: it is
// reported as unprovable instead of silently skipped.
//
//sparcs:hotpath
func DynFunc(f func(int) int, n int) int {
	return f(n) // want `dynamic call through a function value cannot be proven allocation-free`
}
