// Policy ablation (paper Section 4): round-robin vs FIFO vs static
// priority vs random under sustained contention, on the evaluation-grid
// API. Round-robin is the only policy that both bounds worst-case
// waiting at N-1 grant episodes (the worst_ep column) and stays
// trivially cheap in hardware — the paper's selection argument.
package main

import (
	"fmt"
	"log"

	"sparcs"
)

func main() {
	const n = 6

	// Saturated load (every task always requesting, the hog shape adds an
	// adversarial never-releasing task) exposes each policy's fairness:
	// jain collapses and max_wait explodes for priority/random, while
	// round-robin's worst_ep stays at the N-1 bound.
	cells, err := sparcs.EvaluatePolicies(
		[]string{"round-robin", "fifo", "priority", "random:1"},
		[]string{"bernoulli:0.90", "hog"},
		sparcs.EvaluateOptions{N: n, Cycles: 50_000, Seed: 1},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sparcs.FormatPolicyTable(cells))

	fmt.Println("\nround-robin bound: worst wait <= N-1 =", n-1, "episodes (Section 4.1)")
	fmt.Println("hardware cost (Synplify one-hot):")
	for _, size := range []int{2, 6, 10} {
		r, err := sparcs.CharacterizeArbiter(size, "synplify", "one-hot")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  N=%-2d  %3d CLBs  %5.1f MHz\n", size, r.CLBs, r.MaxMHz)
	}
}
