package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath enforces that //sparcs:hotpath code is allocation-free. A
// marked function declaration (or for/range statement), plus every
// module-local function it can reach through the call graph, must not
// contain: growing append, make, new, escaping composite literals, fmt
// calls, map writes, allocating string conversions, string
// concatenation, or interface boxing. The walk is interprocedural and
// devirtualizing: a call through a module-local interface
// (arbiter.BitStepper, workload.BitGenerator, ...) fans out to every
// implementation's method body, so allocation hiding behind dynamic
// dispatch is caught instead of silently skipped. Calls through plain
// function values cannot be resolved and are reported as unprovable —
// keep cycle-rate dispatch static, or devirtualized behind a checked
// entry point as arbiter.AsBitStepper does.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "report allocating constructs in //sparcs:hotpath code and everything it can reach through the module call graph, interface dispatch included",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) error {
	marks := pass.Package.HotMarks()
	if len(marks) == 0 {
		return nil
	}
	w := &hotWalker{pass: pass, visited: map[*types.Func]bool{}}
	for _, mark := range marks {
		switch n := mark.(type) {
		case *ast.FuncDecl:
			if fn, ok := pass.Package.Info.Defs[n.Name].(*types.Func); ok {
				w.walkFunc(pass.Package, fn, n)
			}
		default: // a marked for/range statement
			w.walk(pass.Package, n)
		}
	}
	return nil
}

type hotWalker struct {
	pass    *Pass
	visited map[*types.Func]bool
}

func (w *hotWalker) walkFunc(pkg *Package, fn *types.Func, decl *ast.FuncDecl) {
	if w.visited[fn] {
		return
	}
	w.visited[fn] = true
	if decl == nil || decl.Body == nil {
		return
	}
	w.walk(pkg, decl.Body)
}

// walk inspects one hot region, reporting allocating constructs and
// recursing into statically called module-local functions. All type
// lookups go through the owning package's Info, so cross-package walks
// stay sound.
func (w *hotWalker) walk(pkg *Package, region ast.Node) {
	info := pkg.Info
	ast.Inspect(region, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure built in a hot region is itself an allocation;
			// its body runs only if called, which would be a dynamic call.
			w.pass.Reportf(n.Pos(), "function literal allocates a closure in a hot path")
			return false
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				w.pass.Reportf(n.Pos(), "slice literal allocates in a hot path")
			case *types.Map:
				w.pass.Reportf(n.Pos(), "map literal allocates in a hot path")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					switch info.TypeOf(cl).Underlying().(type) {
					case *types.Slice, *types.Map:
						// already reported as the literal itself
					default:
						w.pass.Reportf(n.Pos(), "&composite literal escapes to the heap in a hot path")
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n)) && info.Types[n].Value == nil {
				w.pass.Reportf(n.Pos(), "string concatenation allocates in a hot path")
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				w.checkMapWrite(pkg, lhs)
			}
		case *ast.IncDecStmt:
			w.checkMapWrite(pkg, n.X)
		case *ast.GoStmt:
			w.pass.Reportf(n.Pos(), "goroutine spawn allocates in a hot path")
		case *ast.DeferStmt:
			w.pass.Reportf(n.Pos(), "defer allocates in a hot path")
		case *ast.CallExpr:
			w.checkCall(pkg, n)
		}
		return true
	})
}

func (w *hotWalker) checkMapWrite(pkg *Package, lhs ast.Expr) {
	if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
		if _, isMap := pkg.Info.TypeOf(ix.X).Underlying().(*types.Map); isMap {
			w.pass.Reportf(lhs.Pos(), "map write may allocate in a hot path")
		}
	}
}

func (w *hotWalker) checkCall(pkg *Package, call *ast.CallExpr) {
	info := pkg.Info

	// Conversions: string<->[]byte/[]rune allocate; conversion to an
	// interface type boxes.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := info.TypeOf(call.Args[0])
		switch {
		case isString(to) && isByteOrRuneSlice(from):
			w.pass.Reportf(call.Pos(), "string(%s) conversion allocates in a hot path", sliceName(from))
		case isByteOrRuneSlice(to) && isString(from):
			w.pass.Reportf(call.Pos(), "%s(string) conversion allocates in a hot path", sliceName(to))
		case types.IsInterface(to) && from != nil && !types.IsInterface(from) && !isUntypedNil(from):
			w.pass.Reportf(call.Pos(), "conversion to interface boxes the value in a hot path")
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				w.pass.Reportf(call.Pos(), "append may grow its backing array in a hot path")
			case "make":
				w.pass.Reportf(call.Pos(), "make allocates in a hot path")
			case "new":
				w.pass.Reportf(call.Pos(), "new allocates in a hot path")
			case "delete":
				w.pass.Reportf(call.Pos(), "map delete touches a map in a hot path")
			}
			return
		}
	}

	site := w.pass.Module.resolveCall(pkg, call)
	switch site.Kind {
	case CallDynamic:
		// A function value could run anything; without a callee set the
		// region cannot be proven allocation-free.
		w.pass.Reportf(call.Pos(), "dynamic call through a function value cannot be proven allocation-free in a hot path")
		w.checkArgBoxing(pkg, call)
		return
	case CallStatic:
		fn := site.Callees[0]
		if p := fn.Pkg(); p != nil {
			switch p.Path() {
			case "fmt":
				w.pass.Reportf(call.Pos(), "fmt.%s allocates in a hot path", fn.Name())
				return
			case "log":
				w.pass.Reportf(call.Pos(), "log.%s allocates in a hot path", fn.Name())
				return
			}
		}
	}
	w.checkArgBoxing(pkg, call)

	// Follow every possible callee into module-local code: the one
	// static target, or all devirtualized implementations of an
	// interface method.
	for _, fn := range site.Callees {
		if calleePkg, decl := w.pass.Module.Decl(fn); decl != nil {
			w.walkFunc(calleePkg, fn, decl)
		}
	}
}

// checkArgBoxing flags non-interface arguments passed to interface
// parameters — each such pass boxes the value.
func (w *hotWalker) checkArgBoxing(pkg *Package, call *ast.CallExpr) {
	info := pkg.Info
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(at) {
			continue
		}
		w.pass.Reportf(arg.Pos(), "passing %s to interface parameter boxes the value in a hot path", at)
	}
}

// staticCallee resolves call to a statically known function or method,
// or nil for dynamic dispatch (interface methods, function values).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return nil
		}
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				return nil // dynamic dispatch
			}
		}
		return fn
	}
	return nil
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

func sliceName(t types.Type) string {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return t.String()
	}
	b, _ := sl.Elem().Underlying().(*types.Basic)
	if b != nil && b.Kind() == types.Rune {
		return "[]rune"
	}
	return "[]byte"
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
