// The paper's Section 5 case study end to end: the 4x4-pixel 2-D FFT
// taskgraph partitioned onto the Wildforce board, arbiters inserted
// automatically, all three temporal partitions simulated cycle-accurately,
// the hardware memory image verified against the fixed-point FFT
// reference, and the 512x512-image timing compared with the Pentium-150
// software baseline.
package main

import (
	"fmt"
	"log"

	"sparcs"
)

func main() {
	cs, err := sparcs.RunFFTCaseStudy(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cs.Report)

	fmt.Println("== simulation ==")
	for si, ss := range cs.Result.Stages {
		fmt.Printf("temporal partition #%d: %d cycles, %d grants, violations: %d\n",
			si, ss.Stats.Cycles, totalGrants(ss.Stats.GrantsByRes), len(ss.Stats.Violations))
	}
	if cs.OutputOK {
		fmt.Println("output check: PASS — hardware memory image equals the 2-D FFT reference")
	} else {
		fmt.Println("output check: FAIL")
	}

	fmt.Println("\n== 512x512 image timing (paper: HW 4.4 s, SW 6.8 s) ==")
	fmt.Printf("cycles/tile (3 partitions):  %8.1f\n", cs.CyclesPerTile)
	fmt.Printf("hardware @ 6 MHz:            %8.2f s\n", cs.HWSeconds)
	fmt.Printf("software (Pentium-150 model):%8.2f s\n", cs.SWSeconds)
	fmt.Printf("hardware speedup:            %8.2fx\n", cs.Speedup)
}

func totalGrants(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
