package sim

// This file preserves the pre-optimization simulator verbatim as a
// test-only golden reference: referenceRun is the map-based interpreter
// the allocation-free Run replaced. The equivalence tests drive both on
// the same scenarios and require reflect.DeepEqual Stats, proving the
// hot-loop rewrite changed performance and nothing else.

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"sparcs/internal/arbiter"
	"sparcs/internal/behav"
	"sparcs/internal/partition"
	"sparcs/internal/taskgraph"
)

type refTaskState struct {
	name    string
	prog    behav.Program
	iter    int
	pc      int
	wait    int
	buf     []int64
	done    bool
	finish  int
	started bool
}

func refCurrent(ts *refTaskState) (behav.Instr, bool) {
	if len(ts.prog.Body) == 0 || ts.iter >= ts.prog.Iterations() {
		return behav.Instr{}, false
	}
	return ts.prog.Body[ts.pc], true
}

func refAdvance(ts *refTaskState) {
	ts.pc++
	if ts.pc >= len(ts.prog.Body) {
		ts.pc = 0
		ts.iter++
	}
}

// referenceRun is the seed implementation of Run, kept byte-for-byte in
// behavior (it predates interning, so it uses the string Memory API).
func referenceRun(cfg Config) (*Stats, error) {
	maxCycles := cfg.MaxCycles
	if maxCycles <= 0 {
		maxCycles = 10_000_000
	}
	mem := cfg.Memory
	if mem == nil {
		mem = NewMemory()
	}
	newPolicy := cfg.NewPolicy
	if newPolicy == nil {
		newPolicy = func(n int) arbiter.Policy { return arbiter.NewRoundRobin(n) }
	}

	type arbInst struct {
		spec    partition.ArbiterSpec
		policy  arbiter.Policy
		index   map[string]int
		req     []bool
		granted map[string]bool
		trace   []arbiter.TraceStep
	}
	arbs := map[string]*arbInst{}
	for _, spec := range cfg.Arbiters {
		pol := newPolicy(spec.N())
		ai := &arbInst{
			spec:    spec,
			policy:  pol,
			index:   map[string]int{},
			req:     make([]bool, spec.N()),
			granted: map[string]bool{},
		}
		for i, t := range spec.Members {
			ai.index[t] = i
		}
		arbs[spec.Resource] = ai
	}

	tasks := make([]*refTaskState, 0, len(cfg.Tasks))
	byName := map[string]*refTaskState{}
	for _, name := range cfg.Tasks {
		prog, ok := cfg.Programs[name]
		if !ok {
			return nil, fmt.Errorf("sim: no program for task %s", name)
		}
		ts := &refTaskState{name: name, prog: prog}
		tasks = append(tasks, ts)
		byName[name] = ts
	}

	depsDone := func(ts *refTaskState, cycle int) bool {
		for _, d := range cfg.Graph.TaskByName(ts.name).Deps {
			if dep, inStage := byName[d]; inStage && (!dep.done || dep.finish >= cycle) {
				return false
			}
		}
		return true
	}

	chans := map[string]*chanReg{}
	for _, c := range cfg.Graph.Channels {
		chans[c.Name] = &chanReg{}
	}

	stats := &Stats{
		TaskFinish:      map[string]int{},
		WaitCycles:      map[string]int{},
		GrantsByRes:     map[string]int{},
		ArbiterTraces:   map[string][]arbiter.TraceStep{},
		PerTaskOverhead: map[string]int{},
	}

	type refPendingSend struct {
		channel string
		value   int64
	}

	cycle := 0
	for ; cycle < maxCycles; cycle++ {
		allDone := true
		for _, ts := range tasks {
			if !ts.done {
				allDone = false
				break
			}
		}
		if allDone {
			stats.Done = true
			break
		}

		resNames := make([]string, 0, len(arbs))
		for r := range arbs {
			resNames = append(resNames, r)
		}
		sort.Strings(resNames)
		for _, r := range resNames {
			ai := arbs[r]
			grants := ai.policy.Step(ai.req)
			for t := range ai.granted {
				delete(ai.granted, t)
			}
			for i, gr := range grants {
				if gr {
					ai.granted[ai.spec.Members[i]] = true
					stats.GrantsByRes[r]++
				}
			}
			ai.trace = append(ai.trace, arbiter.TraceStep{
				Req:   append([]bool(nil), ai.req...),
				Grant: append([]bool(nil), grants...),
			})
		}

		bankAccess := map[string][]string{}
		var sends []refPendingSend
		for _, ts := range tasks {
			if ts.done {
				continue
			}
			if !ts.started {
				if !depsDone(ts, cycle) {
					continue
				}
				ts.started = true
			}
			for {
				in, ok := refCurrent(ts)
				if !ok {
					ts.done = true
					ts.finish = cycle
					stats.TaskFinish[ts.name] = cycle
					break
				}
				if in.Op == behav.OpWaitGrant {
					ai := arbs[in.Res]
					if ai != nil && ai.granted[ts.name] {
						refAdvance(ts)
						continue
					}
					if ai == nil {
						refAdvance(ts)
						continue
					}
					stats.WaitCycles[ts.name]++
					break
				}
				break
			}
			if ts.done {
				continue
			}
			in, ok := refCurrent(ts)
			if !ok || in.Op == behav.OpWaitGrant {
				continue
			}

			switch in.Op {
			case behav.OpCompute:
				if ts.wait == 0 {
					ts.wait = in.N
				}
				ts.wait--
				if ts.wait == 0 {
					refAdvance(ts)
				}
			case behav.OpTransform:
				if ts.wait == 0 {
					ts.wait = in.Cycles
					if ts.wait == 0 {
						ts.wait = 1
					}
				}
				ts.wait--
				if ts.wait == 0 {
					n := in.N
					if n > len(ts.buf) {
						n = len(ts.buf)
					}
					args := append([]int64(nil), ts.buf[:n]...)
					ts.buf = append([]int64(nil), ts.buf[n:]...)
					if in.Fn != nil {
						ts.buf = append(ts.buf, in.Fn(args)...)
					}
					refAdvance(ts)
				}
			case behav.OpRead, behav.OpWrite:
				res := cfg.ResourceOfSegment[in.Res]
				if res != "" {
					bankAccess[res] = append(bankAccess[res], ts.name)
					if ai := arbs[res]; ai != nil {
						if _, isMember := ai.index[ts.name]; isMember && !ai.granted[ts.name] {
							stats.Violations = append(stats.Violations, Violation{
								Cycle: cycle, Resource: res, Tasks: []string{ts.name}, Kind: "no-grant",
							})
						}
					}
				}
				if in.Op == behav.OpRead {
					ts.buf = append(ts.buf, mem.Read(in.Res, in.EffAddr(ts.iter)))
					stats.MemReads++
				} else {
					v := in.Val
					if len(ts.buf) > 0 {
						v = ts.buf[0]
						ts.buf = append([]int64(nil), ts.buf[1:]...)
					}
					mem.Write(in.Res, in.EffAddr(ts.iter), v)
					stats.MemWrites++
				}
				refAdvance(ts)
			case behav.OpSend:
				res := cfg.ResourceOfChannel[in.Res]
				if res != "" {
					bankAccess[res] = append(bankAccess[res], ts.name)
					if ai := arbs[res]; ai != nil {
						if _, isMember := ai.index[ts.name]; isMember && !ai.granted[ts.name] {
							stats.Violations = append(stats.Violations, Violation{
								Cycle: cycle, Resource: res, Tasks: []string{ts.name}, Kind: "no-grant",
							})
						}
					}
				}
				v := in.Val
				if len(ts.buf) > 0 {
					v = ts.buf[0]
					ts.buf = append([]int64(nil), ts.buf[1:]...)
				}
				sends = append(sends, refPendingSend{channel: in.Res, value: v})
				stats.ChannelSends++
				refAdvance(ts)
			case behav.OpRecv:
				reg := chans[in.Res]
				if reg == nil {
					return nil, fmt.Errorf("sim: task %s receives on unknown channel %s", ts.name, in.Res)
				}
				if reg.valid {
					ts.buf = append(ts.buf, reg.value)
					refAdvance(ts)
				}
			case behav.OpReq:
				if ai := arbs[in.Res]; ai != nil {
					if idx, isMember := ai.index[ts.name]; isMember {
						ai.req[idx] = true
					}
				}
				refAdvance(ts)
			case behav.OpRelease:
				if ai := arbs[in.Res]; ai != nil {
					if idx, isMember := ai.index[ts.name]; isMember {
						ai.req[idx] = false
					}
				}
				refAdvance(ts)
			default:
				return nil, fmt.Errorf("sim: task %s: unsupported op %v", ts.name, in.Op)
			}
			if _, stillRunning := refCurrent(ts); !stillRunning {
				ts.done = true
				ts.finish = cycle
				stats.TaskFinish[ts.name] = cycle
			}
		}

		for res, users := range bankAccess {
			if len(users) > 1 {
				stats.Violations = append(stats.Violations, Violation{
					Cycle: cycle, Resource: res, Tasks: users, Kind: "port-conflict",
				})
			}
		}
		for _, s := range sends {
			reg := chans[s.channel]
			reg.valid = true
			reg.value = s.value
		}
	}
	stats.Cycles = cycle
	for r, ai := range arbs {
		stats.ArbiterTraces[r] = ai.trace
	}
	if !stats.Done {
		stats.Violations = append(stats.Violations, Violation{
			Cycle: cycle, Resource: "", Kind: "deadlock-or-timeout",
		})
	}
	return stats, nil
}

// equivScenario is one Config generator; both simulators get fresh
// memory and fresh configs so neither perturbs the other.
type equivScenario struct {
	name string
	cfg  func() (Config, *Memory)
}

func equivScenarios(t *testing.T) []equivScenario {
	t.Helper()
	contended := func(policy string) func() (Config, *Memory) {
		return func() (Config, *Memory) {
			g := simpleGraph()
			prog := func(base int) behav.Program {
				return behav.Program{Body: []behav.Instr{
					behav.Req("bankS"), behav.WaitGrant("bankS"),
					behav.WriteImm("S", base, int64(base)), behav.Read("S", base),
					behav.Write("S", base+1),
					behav.Release("bankS"),
					behav.Compute(2),
				}, Repeat: 25}
			}
			mem := NewMemory()
			var newPol func(n int) arbiter.Policy
			if policy != "" {
				newPol = func(n int) arbiter.Policy {
					p, err := arbiter.NewPolicy(policy, n)
					if err != nil {
						panic(err)
					}
					return p
				}
			}
			return Config{
				Graph:             g,
				Tasks:             []string{"A", "B"},
				Programs:          map[string]behav.Program{"A": prog(0), "B": prog(100)},
				Arbiters:          []partition.ArbiterSpec{arbSpec("bankS", "A", "B")},
				ResourceOfSegment: map[string]string{"S": "bankS"},
				NewPolicy:         newPol,
				Memory:            mem,
			}, mem
		}
	}
	return []equivScenario{
		{"contended-round-robin", contended("")},
		{"contended-fifo", contended("fifo")},
		{"contended-priority", contended("priority")},
		{"contended-random", contended("random")},
		{"buffer-compaction", func() (Config, *Memory) {
			// Two reads per write: the task buffer keeps a growing
			// residual and never fully drains, driving the deque's
			// shift-down compaction path (head >= 32) while the
			// reference's copy-per-pop semantics stay authoritative.
			g := simpleGraph()
			mem := NewMemory()
			for i := 0; i < 256; i++ {
				mem.Write("S", i, int64(i+1000))
			}
			return Config{
				Graph: g,
				Tasks: []string{"A"},
				Programs: map[string]behav.Program{
					"A": {Body: []behav.Instr{
						behav.ReadStride("S", 0, 2),
						behav.ReadStride("S", 1, 2),
						behav.WriteStride("S", 512, 1),
					}, Repeat: 100},
				},
				Memory: mem,
			}, mem
		}},
		{"no-grant-violations", func() (Config, *Memory) {
			g := simpleGraph()
			prog := func(base int) behav.Program {
				return behav.Program{Body: []behav.Instr{behav.WriteImm("S", base, 1)}, Repeat: 10}
			}
			mem := NewMemory()
			return Config{
				Graph:             g,
				Tasks:             []string{"A", "B"},
				Programs:          map[string]behav.Program{"A": prog(0), "B": prog(100)},
				Arbiters:          []partition.ArbiterSpec{arbSpec("bankS", "A", "B")},
				ResourceOfSegment: map[string]string{"S": "bankS"},
				Memory:            mem,
			}, mem
		}},
		{"channels-and-deps", func() (Config, *Memory) {
			g := &taskgraph.Graph{
				Name:     "chain",
				Segments: []*taskgraph.Segment{{Name: "S", SizeBytes: 64, WidthBits: 32}},
				Channels: []*taskgraph.Channel{{Name: "c", From: "P", To: "C", WidthBits: 8}},
				Tasks: []*taskgraph.Task{
					{Name: "P", AreaCLBs: 1, Accesses: []taskgraph.Access{{Segment: "S", Kind: taskgraph.Write}}},
					{Name: "C", AreaCLBs: 1, Deps: []string{"P"}, Accesses: []taskgraph.Access{{Segment: "S", Kind: taskgraph.Read}}},
				},
			}
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			mem := NewMemory()
			return Config{
				Graph: g,
				Tasks: []string{"P", "C"},
				Programs: map[string]behav.Program{
					"P": {Body: []behav.Instr{behav.Compute(7), behav.WriteImm("S", 0, 9), behav.SendImm("c", 5)}},
					"C": {Body: []behav.Instr{behav.Read("S", 0), behav.Write("S", 1)}},
				},
				Memory: mem,
			}, mem
		}},
		{"deadlock-watchdog", func() (Config, *Memory) {
			g := &taskgraph.Graph{
				Name:     "dead",
				Segments: []*taskgraph.Segment{{Name: "S", SizeBytes: 64, WidthBits: 32}},
				Channels: []*taskgraph.Channel{{Name: "c", From: "A", To: "B", WidthBits: 8}},
				Tasks:    []*taskgraph.Task{{Name: "A", AreaCLBs: 1}, {Name: "B", AreaCLBs: 1}},
			}
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			mem := NewMemory()
			return Config{
				Graph:     g,
				Tasks:     []string{"B"},
				Programs:  map[string]behav.Program{"B": {Body: []behav.Instr{behav.Recv("c")}}},
				MaxCycles: 200,
				Memory:    mem,
			}, mem
		}},
	}
}

// TestRunMatchesReference requires the optimized Run to produce Stats
// deeply equal to the seed interpreter on every scenario, including
// traces, violations, per-task finish cycles, and memory images.
func TestRunMatchesReference(t *testing.T) {
	for _, sc := range equivScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			cfgNew, memNew := sc.cfg()
			cfgRef, memRef := sc.cfg()
			got, errNew := Run(cfgNew)
			want, errRef := referenceRun(cfgRef)
			if (errNew == nil) != (errRef == nil) {
				t.Fatalf("error mismatch: new=%v ref=%v", errNew, errRef)
			}
			if errNew != nil {
				return
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("stats diverge:\n new: %+v\n ref: %+v", got, want)
			}
			if !reflect.DeepEqual(memNew.Snapshot("S"), memRef.Snapshot("S")) {
				t.Fatalf("memory images diverge: %v vs %v", memNew.Snapshot("S"), memRef.Snapshot("S"))
			}
		})
	}
}

// TestRunBatchMatchesSequential fans a mixed bag of scenarios through
// RunBatch and requires each result to deep-equal the sequential Run of
// the same config.
func TestRunBatchMatchesSequential(t *testing.T) {
	scenarios := equivScenarios(t)
	var batch []Config
	var want []*Stats
	for _, sc := range scenarios {
		cfgSeq, _ := sc.cfg()
		s, err := Run(cfgSeq)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, s)
		cfgPar, _ := sc.cfg()
		batch = append(batch, cfgPar)
	}
	got, err := RunBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("batch entry %d (%s) diverges from sequential run", i, scenarios[i].name)
		}
	}
}

// TestRunBatchError surfaces the first failing entry by index while
// still returning stats for clean siblings.
func TestRunBatchError(t *testing.T) {
	good, _ := equivScenarios(t)[0].cfg()
	bad := good
	bad.Tasks = []string{"A", "Z"} // Z has no program
	stats, err := RunBatch([]Config{good, bad})
	if err == nil {
		t.Fatal("expected error for missing program")
	}
	if stats[0] == nil {
		t.Fatal("clean entry should still carry stats")
	}
}

// TestRunBatchEmpty: a zero-length batch is a no-op, not a hang.
func TestRunBatchEmpty(t *testing.T) {
	stats, err := RunBatch(nil)
	if err != nil || len(stats) != 0 {
		t.Fatalf("stats=%v err=%v", stats, err)
	}
}

// TestDisableTraces keeps every statistic except the traces.
func TestDisableTraces(t *testing.T) {
	cfgFull, _ := equivScenarios(t)[0].cfg()
	cfgBare, _ := equivScenarios(t)[0].cfg()
	cfgBare.DisableTraces = true
	full, err := Run(cfgFull)
	if err != nil {
		t.Fatal(err)
	}
	bare, err := Run(cfgBare)
	if err != nil {
		t.Fatal(err)
	}
	if bare.ArbiterTraces["bankS"] != nil {
		t.Fatal("traces should be nil when disabled")
	}
	full.ArbiterTraces = nil
	bare.ArbiterTraces = nil
	if !reflect.DeepEqual(full, bare) {
		t.Fatalf("non-trace stats diverge:\n full: %+v\n bare: %+v", full, bare)
	}
}

// TestRunMatchesReferenceStreaming drives a three-task streaming
// pipeline — strided reads, OpTransform, channel hand-off, two arbiters
// stepped in sorted order — through both interpreters. This is the shape
// of the FFT case-study stages the hot-loop rewrite optimizes (the FFT
// package itself imports sim, so the case study proper is equivalence-
// checked at the facade layer).
func TestRunMatchesReferenceStreaming(t *testing.T) {
	g := &taskgraph.Graph{
		Name: "stream",
		Segments: []*taskgraph.Segment{
			{Name: "IN", SizeBytes: 4096, WidthBits: 32},
			{Name: "OUT", SizeBytes: 4096, WidthBits: 32},
		},
		Channels: []*taskgraph.Channel{{Name: "c", From: "Load", To: "Store", WidthBits: 32}},
		Tasks: []*taskgraph.Task{
			{Name: "Load", AreaCLBs: 1, Accesses: []taskgraph.Access{{Segment: "IN", Kind: taskgraph.Read}}},
			{Name: "Twiddle", AreaCLBs: 1, Accesses: []taskgraph.Access{{Segment: "IN", Kind: taskgraph.Read}}},
			{Name: "Store", AreaCLBs: 1, Accesses: []taskgraph.Access{{Segment: "OUT", Kind: taskgraph.Write}}},
		},
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	double := func(in []int64) []int64 {
		out := make([]int64, len(in))
		for i, v := range in {
			out[i] = 2 * v
		}
		return out
	}
	mk := func() (Config, *Memory) {
		mem := NewMemory()
		for i := 0; i < 32; i++ {
			mem.Write("IN", i, int64(i*3+1))
		}
		return Config{
			Graph: g,
			Tasks: []string{"Load", "Twiddle", "Store"},
			Programs: map[string]behav.Program{
				"Load": {Body: []behav.Instr{
					behav.Req("bankIN"), behav.WaitGrant("bankIN"),
					behav.ReadStride("IN", 0, 2), behav.ReadStride("IN", 1, 2),
					behav.Release("bankIN"),
					{Op: behav.OpTransform, N: 2, Cycles: 2, Fn: double},
					behav.Send("c"), behav.Send("c"),
				}, Repeat: 16},
				"Twiddle": {Body: []behav.Instr{
					behav.Compute(1),
					behav.Req("bankIN"), behav.WaitGrant("bankIN"),
					behav.ReadStride("IN", 0, 1),
					behav.Release("bankIN"),
					behav.Compute(2),
				}, Repeat: 16},
				"Store": {Body: []behav.Instr{
					behav.Recv("c"),
					behav.Req("bankOUT"), behav.WaitGrant("bankOUT"),
					behav.WriteStride("OUT", 0, 2), behav.WriteStride("OUT", 1, 2),
					behav.Release("bankOUT"),
				}, Repeat: 16},
			},
			Arbiters: []partition.ArbiterSpec{
				arbSpec("bankIN", "Load", "Twiddle"),
				arbSpec("bankOUT", "Store", "Load"),
			},
			ResourceOfSegment: map[string]string{"IN": "bankIN", "OUT": "bankOUT"},
			ResourceOfChannel: map[string]string{"c": ""},
			Memory:            mem,
		}, mem
	}
	cfgNew, memNew := mk()
	cfgRef, memRef := mk()
	got, err := Run(cfgNew)
	if err != nil {
		t.Fatal(err)
	}
	want, err := referenceRun(cfgRef)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stats diverge:\n new: %+v\n ref: %+v", got, want)
	}
	for _, seg := range []string{"IN", "OUT"} {
		if !reflect.DeepEqual(memNew.Snapshot(seg), memRef.Snapshot(seg)) {
			t.Fatalf("segment %s diverges", seg)
		}
	}
}
