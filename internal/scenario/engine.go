package scenario

import (
	"fmt"

	"sparcs/internal/core"
	"sparcs/internal/sim"
	"sparcs/internal/workload"
)

// Job lifecycle states.
const (
	stateQueued  = iota // arrived, waiting for fabric space
	stateLoading        // placed, waiting for its next stage's configuration
	stateRunning        // executing its current stage
	stateDone
)

// Engine events, raised by the hot per-cycle loop and disposed of by the
// cold handler. Splitting this way keeps stepCycle allocation-free: it
// only decrements counters and sets bits; every state transition that
// touches slices, maps, or the simulator happens in handle.
const (
	evArrival = 1 << iota
	evLoadDone
	evStageDone
	evMoveDone
	evCompact
)

type job struct {
	id, class int
	state     int8
	// stage is the temporal partition currently executing (or awaited);
	// loaded counts stage configurations already on the fabric, so the
	// next stage the port can load is index loaded.
	stage, loaded int
	// remain counts down the current stage's execution; moveRemain
	// counts down a compaction relocation (pausing the job).
	remain, moveRemain int
	arrive, placed     int
	finish             int
	queueWait          int
	exec, stall        int
	arbWait            int
	timeouts           int
	x, y               int
	stats              []*sim.Stats
	mem                *sim.Memory
}

// classInfo is the per-class precomputation: footprint rectangle, per
// stage configuration-load costs, and baseline (contention-free) stage
// execution times that seed the oracle bound.
type classInfo struct {
	name       string
	design     *core.Design
	opts       core.Options
	w, h       int
	stageAreas []int
	loadCost   []int
	baseExec   []int
	totalExec  int
}

type engine struct {
	cfg     *Config
	hybrid  bool
	perCLB  int
	classes []classInfo

	arr          *workload.Arrivals
	arrivalsLeft int

	strip      *strip
	cols, rows int

	clock     int
	jobs      []job
	queue     []int // FIFO of queued job ids
	residents []int // placed jobs, ascending id
	arrived   int
	completed int

	portJob    int // -1 when the configuration port is idle
	portRemain int
	compactAt  int // cycle a delayed compaction fires; -1 unarmed

	execTotal, stallTotal, loadTotal         int64
	placeFails, maxQueue                     int
	compactions, movedResidents, timeoutsSum int
	queueHist                                workload.Hist
}

func newEngine(cfg *Config) (*engine, error) {
	bestFit, err := cfg.placement()
	if err != nil {
		return nil, err
	}
	hybrid, err := cfg.prefetch()
	if err != nil {
		return nil, err
	}
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("scenario: no classes configured")
	}
	if cfg.Jobs < 1 {
		return nil, fmt.Errorf("scenario: Jobs must be at least 1, got %d", cfg.Jobs)
	}
	for i, c := range cfg.Classes {
		if c.Design == nil {
			return nil, fmt.Errorf("scenario: class %d (%s) has no compiled design", i, c.Name)
		}
	}
	cols, rows := cfg.FabricCols, cfg.FabricRows
	if cols == 0 && rows == 0 {
		cols, rows = cfg.Classes[0].Design.Board.FabricDims()
	}
	if cols < 1 || rows < 1 {
		return nil, fmt.Errorf("scenario: fabric %dx%d is empty", cols, rows)
	}
	e := &engine{
		cfg:       cfg,
		hybrid:    hybrid,
		perCLB:    cfg.perCLB(),
		strip:     newStrip(cols, rows, bestFit),
		cols:      cols,
		rows:      rows,
		jobs:      make([]job, cfg.Jobs),
		queue:     make([]int, 0, cfg.Jobs),
		residents: make([]int, 0, cfg.Jobs),
		portJob:   -1,
		compactAt: -1,
	}
	for i, c := range cfg.Classes {
		ci, err := newClassInfo(c, e.perCLB, cols, rows)
		if err != nil {
			return nil, fmt.Errorf("scenario: class %d (%s): %w", i, c.Name, err)
		}
		e.classes = append(e.classes, ci)
	}
	if cfg.Arrivals != "" {
		arr, err := workload.NewArrivals(cfg.Arrivals, cfg.seed())
		if err != nil {
			return nil, err
		}
		e.arr = arr
	}
	return e, nil
}

func newClassInfo(c Class, perCLB, cols, rows int) (classInfo, error) {
	ci := classInfo{name: c.Name, design: c.Design, opts: c.Opts}
	ci.stageAreas = c.Design.StageAreas(c.Opts.Partition)
	if len(ci.stageAreas) == 0 {
		return ci, fmt.Errorf("design has no stages")
	}
	footprint := 0
	for _, a := range ci.stageAreas {
		cost := a * perCLB
		if cost < 1 {
			cost = 1
		}
		ci.loadCost = append(ci.loadCost, cost)
		if a > footprint {
			footprint = a
		}
	}
	ci.w, ci.h = rectFor(footprint, rows)
	if ci.w > cols || ci.h > rows {
		return ci, fmt.Errorf("footprint %d CLBs (%dx%d) exceeds the %dx%d fabric",
			footprint, ci.w, ci.h, cols, rows)
	}
	// Baseline run: contention-free stage execution times over a carried
	// memory image — exactly a solo System.Run. These seed the oracle's
	// critical-path and area-time bounds (lower bounds even when
	// cross-contention stretches the online run) and validate the
	// class's options before the clock starts.
	mem := sim.NewMemory()
	for s := range ci.stageAreas {
		stats, err := core.SimulateStage(c.Design, s, mem, c.Opts)
		if err != nil {
			return ci, err
		}
		dur := stats.Cycles
		if dur < 1 {
			dur = 1
		}
		ci.baseExec = append(ci.baseExec, dur)
		ci.totalExec += dur
	}
	return ci, nil
}

func (e *engine) run() (*Result, error) {
	// The first job arrives at cycle 0 unconditionally (normalizing
	// makespans across arrival seeds); with no arrival process, every
	// job does.
	e.admit()
	if e.arr == nil {
		for e.arrived < e.cfg.Jobs {
			e.admit()
		}
	}
	e.arrivalsLeft = e.cfg.Jobs - e.arrived
	if err := e.handle(evArrival); err != nil {
		return nil, err
	}
	maxC := e.cfg.maxCycles()
	for e.completed < e.cfg.Jobs {
		if e.clock >= maxC {
			return nil, fmt.Errorf("scenario: watchdog at %d cycles with %d/%d jobs finished (arrivals %q may be too sparse)",
				e.clock, e.completed, e.cfg.Jobs, e.cfg.Arrivals)
		}
		ev := e.stepCycle()
		if ev != 0 {
			if err := e.handle(ev); err != nil {
				return nil, err
			}
		}
	}
	return e.result(), nil
}

// stepCycle advances simulated time by one cycle: the arrival process
// ticks, the configuration port transfers one cycle's worth of
// bitstream, compaction moves progress, residents execute or stall, and
// queued jobs age. It returns the event mask for the cold handler.
//
//sparcs:hotpath
func (e *engine) stepCycle() uint32 {
	var ev uint32
	if e.arrivalsLeft > 0 && e.arr.Tick() {
		ev |= evArrival
	}
	if e.portRemain > 0 {
		e.portRemain--
		if e.portRemain == 0 {
			ev |= evLoadDone
		}
	}
	if e.compactAt >= 0 && e.clock == e.compactAt {
		ev |= evCompact
	}
	for _, id := range e.residents {
		j := &e.jobs[id]
		switch {
		case j.moveRemain > 0:
			j.moveRemain--
			j.stall++
			e.stallTotal++
			if j.moveRemain == 0 {
				ev |= evMoveDone
			}
		case j.state == stateRunning:
			j.remain--
			j.exec++
			e.execTotal++
			if j.remain == 0 {
				ev |= evStageDone
			}
		default: // stateLoading: stalled on the configuration port
			j.stall++
			e.stallTotal++
		}
	}
	for _, id := range e.queue {
		e.jobs[id].queueWait++
	}
	e.clock++
	return ev
}

// handle disposes of the cycle's events in a fixed order: finished
// stages free fabric first, the port completes its transfer, arrivals
// join the queue, a due compaction repacks, then the queue head is
// placed, ready residents start their next stage, and the port is
// re-targeted.
func (e *engine) handle(ev uint32) error {
	if ev&evStageDone != 0 {
		e.finishStages()
	}
	if ev&evLoadDone != 0 && e.portJob >= 0 {
		e.jobs[e.portJob].loaded++
		e.portJob = -1
	}
	if ev&evArrival != 0 {
		e.admit()
		e.arrivalsLeft = e.cfg.Jobs - e.arrived
	}
	if ev&evCompact != 0 {
		e.doCompact()
	}
	e.tryPlace()
	if err := e.maybeStart(); err != nil {
		return err
	}
	e.scheduleLoad()
	return nil
}

func (e *engine) admit() {
	if e.arrived >= e.cfg.Jobs {
		return
	}
	id := e.arrived
	e.arrived++
	e.jobs[id] = job{
		id:     id,
		class:  id % len(e.classes),
		state:  stateQueued,
		arrive: e.clock,
	}
	e.queue = append(e.queue, id)
	if len(e.queue) > e.maxQueue {
		e.maxQueue = len(e.queue)
	}
}

// finishStages advances every resident whose stage just completed; a
// job past its last stage departs, freeing its rectangle.
func (e *engine) finishStages() {
	for i := 0; i < len(e.residents); {
		id := e.residents[i]
		j := &e.jobs[id]
		if j.state != stateRunning || j.remain != 0 || j.moveRemain != 0 {
			i++
			continue
		}
		j.stage++
		if j.stage < len(e.classes[j.class].loadCost) {
			j.state = stateLoading
			i++
			continue
		}
		j.state = stateDone
		j.finish = e.clock
		e.completed++
		e.timeoutsSum += j.timeouts
		e.strip.remove(id)
		if e.portJob == id {
			e.portJob, e.portRemain = -1, 0
		}
		e.residents = append(e.residents[:i], e.residents[i+1:]...)
	}
}

// tryPlace places queued jobs strictly FIFO: only the head may be
// placed, so a large job is never starved by smaller later arrivals.
// A fragmentation-blocked head (total free area would fit it) arms the
// delayed compaction timer.
func (e *engine) tryPlace() {
	for len(e.queue) > 0 {
		id := e.queue[0]
		j := &e.jobs[id]
		ci := &e.classes[j.class]
		x, y, ok := e.strip.place(id, ci.w, ci.h)
		if !ok {
			e.placeFails++
			if e.cfg.CompactionDelay >= 0 && e.compactAt < 0 && len(e.residents) > 0 &&
				e.strip.free() >= ci.w*ci.h {
				e.compactAt = e.clock + e.cfg.CompactionDelay
			}
			return
		}
		j.x, j.y = x, y
		j.placed = e.clock
		j.queueWait = e.clock - j.arrive
		e.queueHist.Observe(j.queueWait)
		j.state = stateLoading
		j.mem = sim.NewMemory()
		e.queue = e.queue[1:]
		e.residents = append(e.residents, id)
	}
}

// doCompact repacks the strip (FFDH) if the queue is still blocked.
// Every relocated resident pauses for its area's reconfiguration cost —
// the price of task movement arXiv:1001.4493 delays compaction to
// amortize — and a relocation invalidates any in-flight configuration
// load into the moved region.
func (e *engine) doCompact() {
	e.compactAt = -1
	if len(e.queue) == 0 {
		return
	}
	moved := e.strip.compact()
	if len(moved) == 0 {
		return
	}
	e.compactions++
	e.movedResidents += len(moved)
	for _, id := range moved {
		j := &e.jobs[id]
		if x, y, _, _, ok := e.strip.rectOf(id); ok {
			j.x, j.y = x, y
		}
		ci := &e.classes[j.class]
		j.moveRemain += ci.w * ci.h * e.perCLB
		if e.portJob == id {
			e.portJob, e.portRemain = -1, 0
		}
	}
}

// maybeStart starts the next stage of every resident whose
// configuration is loaded. The stage executes through the full sim hot
// loop up front — its cycle count then counts down in stepCycle, so the
// engine's clock and the stage's internal clock advance one-to-one.
func (e *engine) maybeStart() error {
	for _, id := range e.residents {
		j := &e.jobs[id]
		if j.state == stateLoading && j.moveRemain == 0 && j.loaded > j.stage {
			if err := e.startStage(j); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *engine) startStage(j *job) error {
	ci := &e.classes[j.class]
	opts := ci.opts
	if e.cfg.CrossContention != "" {
		if co := len(e.residents) - 1; co > 0 {
			lines := co
			if m := e.cfg.maxCrossLines(); lines > m {
				lines = m
			}
			var specs []core.ContentionSpec
			for _, arb := range ci.design.Stages[j.stage].Inserted.Arbiters {
				specs = append(specs, core.ContentionSpec{
					Resource: arb.Resource,
					Workload: e.cfg.CrossContention,
					Lines:    lines,
				})
			}
			if len(specs) > 0 {
				opts.Contention = specs
				opts.ContentionSeed = e.cfg.seed() +
					uint64(j.id+1)*0x9e3779b97f4a7c15 +
					uint64(j.stage+1)*0x632be59bd9b4e019
			}
		}
	}
	stats, err := core.SimulateStage(ci.design, j.stage, j.mem, opts)
	if err != nil {
		return fmt.Errorf("scenario: job %d stage %d: %w", j.id, j.stage, err)
	}
	dur := stats.Cycles
	if dur < 1 {
		dur = 1
	}
	j.remain = dur
	j.state = stateRunning
	for _, w := range stats.WaitCycles {
		j.arbWait += w
	}
	if !stats.Done {
		j.timeouts++
	}
	if e.cfg.KeepStats {
		j.stats = append(j.stats, stats)
	}
	return nil
}

// scheduleLoad points the idle configuration port at the most urgent
// pending stage: a resident blocked on its current stage (need 0)
// always wins; in hybrid mode the port otherwise prefetches the next
// stage of the running resident that will need it soonest (smallest
// remaining execution — the runtime-reorder heuristic of
// arXiv:0710.4796). Ties break to the lowest job id.
func (e *engine) scheduleLoad() {
	if e.portJob >= 0 {
		return
	}
	best, bestNeed := -1, 0
	for _, id := range e.residents {
		j := &e.jobs[id]
		if j.moveRemain > 0 {
			continue
		}
		ci := &e.classes[j.class]
		if j.loaded >= len(ci.loadCost) {
			continue
		}
		var need int
		switch {
		case j.state == stateLoading && j.loaded == j.stage:
			need = 0
		case e.hybrid && j.state == stateRunning && j.loaded == j.stage+1:
			need = j.remain
		default:
			continue
		}
		if best < 0 || need < bestNeed {
			best, bestNeed = id, need
		}
	}
	if best < 0 {
		return
	}
	j := &e.jobs[best]
	cost := e.classes[j.class].loadCost[j.loaded]
	e.portJob = best
	e.portRemain = cost
	e.loadTotal += int64(cost)
}

// oracle is the offline full-knowledge makespan lower bound: the max of
// (a) each job's critical path — arrival, first configuration load,
// then all stages executed back-to-back; (b) configuration-port
// saturation — every load serialized through the single port, followed
// by at least the shortest stage's execution; (c) fabric area-time —
// total footprint×execution demand over fabric capacity. Each is a
// bound on every feasible schedule, so max stays below the optimum.
func (e *engine) oracle() int {
	best := 0
	var portSum, areaTime int64
	minExec := -1
	fabric := int64(e.cols) * int64(e.rows)
	for i := range e.jobs {
		ci := &e.classes[e.jobs[i].class]
		if jb := e.jobs[i].arrive + ci.loadCost[0] + ci.totalExec; jb > best {
			best = jb
		}
		for _, c := range ci.loadCost {
			portSum += int64(c)
		}
		for _, x := range ci.baseExec {
			if minExec < 0 || x < minExec {
				minExec = x
			}
		}
		areaTime += int64(ci.w) * int64(ci.h) * int64(ci.totalExec)
	}
	if pb := int(portSum) + minExec; pb > best {
		best = pb
	}
	if ab := int((areaTime + fabric - 1) / fabric); ab > best {
		best = ab
	}
	return best
}

func (e *engine) result() *Result {
	r := &Result{
		Makespan:       e.clock,
		OracleMakespan: e.oracle(),
		ExecCycles:     e.execTotal,
		StallCycles:    e.stallTotal,
		LoadCycles:     e.loadTotal,
		QueueWaitP50:   e.queueHist.Percentile(0.50),
		QueueWaitP99:   e.queueHist.Percentile(0.99),
		PlaceFails:     e.placeFails,
		MaxQueue:       e.maxQueue,
		Compactions:    e.compactions,
		MovedResidents: e.movedResidents,
		Timeouts:       e.timeoutsSum,
	}
	if tot := e.execTotal + e.stallTotal; tot > 0 {
		r.StallFraction = float64(e.stallTotal) / float64(tot)
	}
	if e.clock > 0 {
		r.PortBusyFraction = float64(e.loadTotal) / float64(e.clock)
	}
	makespan := 0
	for i := range e.jobs {
		j := &e.jobs[i]
		ci := &e.classes[j.class]
		r.ArbWaitCycles += int64(j.arbWait)
		if j.finish > makespan {
			makespan = j.finish
		}
		r.Jobs = append(r.Jobs, JobStats{
			ID:        j.id,
			Class:     ci.name,
			Arrive:    j.arrive,
			Place:     j.placed,
			Finish:    j.finish,
			QueueWait: j.queueWait,
			Exec:      j.exec,
			Stall:     j.stall,
			ArbWait:   j.arbWait,
			Timeouts:  j.timeouts,
			X:         j.x,
			Y:         j.y,
			W:         ci.w,
			H:         ci.h,
			Stages:    j.stats,
			Memory:    j.mem,
		})
	}
	r.Makespan = makespan
	return r
}
