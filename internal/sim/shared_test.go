package sim

import (
	"reflect"
	"testing"

	"sparcs/internal/arbiter"
	"sparcs/internal/behav"
	"sparcs/internal/partition"
	"sparcs/internal/taskgraph"
)

// twoBankConfig builds a stage with two independently arbitrated banks:
// A/B contend on bankS, C/D on bankT — the minimal host for a source
// spanning two resources.
func twoBankConfig() Config {
	g := &taskgraph.Graph{
		Name: "twobank",
		Segments: []*taskgraph.Segment{
			{Name: "S", SizeBytes: 1024, WidthBits: 32},
			{Name: "T", SizeBytes: 1024, WidthBits: 32},
		},
		Tasks: []*taskgraph.Task{
			{Name: "A", AreaCLBs: 10, Accesses: []taskgraph.Access{{Segment: "S", Kind: taskgraph.Write}}},
			{Name: "B", AreaCLBs: 10, Accesses: []taskgraph.Access{{Segment: "S", Kind: taskgraph.Write}}},
			{Name: "C", AreaCLBs: 10, Accesses: []taskgraph.Access{{Segment: "T", Kind: taskgraph.Write}}},
			{Name: "D", AreaCLBs: 10, Accesses: []taskgraph.Access{{Segment: "T", Kind: taskgraph.Write}}},
		},
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	prog := func(res, seg string, base int) behav.Program {
		return behav.Program{Body: []behav.Instr{
			behav.Req(res), behav.WaitGrant(res),
			behav.WriteImm(seg, base, int64(base)),
			behav.Release(res),
			behav.Compute(2),
		}, Repeat: 30}
	}
	return Config{
		Graph: g,
		Tasks: []string{"A", "B", "C", "D"},
		Programs: map[string]behav.Program{
			"A": prog("bankS", "S", 0), "B": prog("bankS", "S", 10),
			"C": prog("bankT", "T", 0), "D": prog("bankT", "T", 10),
		},
		Arbiters: []partition.ArbiterSpec{
			arbSpec("bankS", "A", "B"),
			arbSpec("bankT", "C", "D"),
		},
		ResourceOfSegment: map[string]string{"S": "bankS", "T": "bankT"},
		Memory:            NewMemory(),
	}
}

// orderedAcquirer is a deterministic hold-and-wait source: each lane
// idles `gap` cycles, acquires the resources in order (holding earlier
// grants), holds everything for `hold` all-held cycles, releases, and
// repeats. No randomness, so assertions can be exact.
type orderedAcquirer struct {
	resources []string
	lanes     int
	gap, hold int
	idleLeft  []int
	stage     []int
	heldFor   []int
}

func newOrderedAcquirer(resources []string, lanes, gap, hold int) *orderedAcquirer {
	o := &orderedAcquirer{resources: resources, lanes: lanes, gap: gap, hold: hold}
	o.Reset()
	return o
}

func (o *orderedAcquirer) Name() string        { return "ordered" }
func (o *orderedAcquirer) Resources() []string { return o.resources }
func (o *orderedAcquirer) Lanes() int          { return o.lanes }

func (o *orderedAcquirer) Reset() {
	o.idleLeft = make([]int, o.lanes)
	o.stage = make([]int, o.lanes)
	o.heldFor = make([]int, o.lanes)
	for j := range o.stage {
		o.idleLeft[j] = o.gap
		o.stage[j] = -1
	}
}

func (o *orderedAcquirer) Next(req, prevGrant [][]bool) {
	k := len(o.resources)
	for j := 0; j < o.lanes; j++ {
		switch {
		case o.stage[j] < 0:
			if o.idleLeft[j] > 0 {
				o.idleLeft[j]--
			} else {
				o.stage[j] = 0
			}
		case o.stage[j] < k:
			if prevGrant[o.stage[j]][j] {
				o.stage[j]++
			}
		}
		if o.stage[j] == k {
			all := true
			for r := 0; r < k; r++ {
				all = all && prevGrant[r][j]
			}
			if all {
				o.heldFor[j]++
			}
			if o.heldFor[j] >= o.hold {
				o.stage[j] = -1
				o.heldFor[j] = 0
				o.idleLeft[j] = o.gap
			}
		}
		for r := 0; r < k; r++ {
			req[r][j] = o.stage[j] >= 0 && r <= o.stage[j]
		}
	}
}

// greedyShared requests every line on every resource every cycle — the
// multi-resource hog, for stats-accounting invariants.
type greedyShared struct {
	resources []string
	lanes     int
}

func (gr *greedyShared) Name() string        { return "greedy" }
func (gr *greedyShared) Resources() []string { return gr.resources }
func (gr *greedyShared) Lanes() int          { return gr.lanes }
func (gr *greedyShared) Reset()              {}
func (gr *greedyShared) Next(req, _ [][]bool) {
	for r := range req {
		for j := range req[r] {
			req[r][j] = true
		}
	}
}

// silentShared never requests and is statically silent: Run must elide
// it entirely.
type silentShared struct{ greedyShared }

func (s *silentShared) Silent() bool { return true }
func (s *silentShared) Next(req, _ [][]bool) {
	for r := range req {
		clearBools(req[r])
	}
}

func TestSharedWiringErrors(t *testing.T) {
	cases := []struct {
		name string
		gen  SharedRequester
	}{
		{"nil generator", nil},
		{"one resource", newOrderedAcquirer([]string{"bankS"}, 1, 1, 1)},
		{"duplicate resource", newOrderedAcquirer([]string{"bankS", "bankS"}, 1, 1, 1)},
		{"unknown resource", newOrderedAcquirer([]string{"bankS", "bankX"}, 1, 1, 1)},
		{"zero lanes", newOrderedAcquirer([]string{"bankS", "bankT"}, 0, 1, 1)},
	}
	for _, c := range cases {
		cfg := twoBankConfig()
		cfg.Shared = []SharedSource{{Gen: c.gen}}
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: Run should error", c.name)
		}
	}
}

// TestSharedWidensPolicies: lanes append to every spanned arbiter after
// member lines, policies size over the widened counts, traces record
// the widened width, and per-line phantom stats land in
// Stats.Contention for both resources.
func TestSharedWidensPolicies(t *testing.T) {
	cfg := twoBankConfig()
	cfg.Shared = []SharedSource{{Gen: newOrderedAcquirer([]string{"bankS", "bankT"}, 2, 1, 2)}}
	sizes := map[int]int{}
	cfg.NewPolicy = func(n int) arbiter.Policy { sizes[n]++; return arbiter.NewRoundRobin(n) }
	stats, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both arbiters: 2 members + 2 lanes = 4 lines.
	if sizes[4] != 2 || len(sizes) != 1 {
		t.Fatalf("policy sizes = %v, want {4:2}", sizes)
	}
	for _, res := range []string{"bankS", "bankT"} {
		tr := stats.ArbiterTraces[res]
		if len(tr) == 0 || len(tr[0].Req) != 4 {
			t.Fatalf("%s trace width = %d, want 4", res, len(tr[0].Req))
		}
		cs := stats.Contention[res]
		if cs == nil || len(cs.Grants) != 2 || len(cs.Waits) != 2 {
			t.Fatalf("%s contention stats = %+v", res, cs)
		}
	}
	if len(stats.Shared) != 1 {
		t.Fatalf("shared stats = %d entries", len(stats.Shared))
	}
	sh := stats.Shared[0]
	if sh.Name != "ordered" || !reflect.DeepEqual(sh.Resources, []string{"bankS", "bankT"}) {
		t.Fatalf("shared header = %+v", sh)
	}
	if sh.AllHeld == 0 {
		t.Fatal("the ordered acquirer never completed a critical section")
	}
	// The shared per-resource totals equal the per-line phantom counts.
	for i, res := range sh.Resources {
		cs := stats.Contention[res]
		if g := cs.Grants[0] + cs.Grants[1]; g != sh.Grants[i] {
			t.Fatalf("%s grants: contention %d vs shared %d", res, g, sh.Grants[i])
		}
		if w := cs.Waits[0] + cs.Waits[1]; w != sh.Waits[i] {
			t.Fatalf("%s waits: contention %d vs shared %d", res, w, sh.Waits[i])
		}
	}
}

// TestSharedStatsInvariants drives the greedy multi-resource hog and
// checks the accounting identities: every lane-cycle on a resource is
// either a grant or a wait, and the overlap counters are bounded.
func TestSharedStatsInvariants(t *testing.T) {
	cfg := twoBankConfig()
	cfg.Shared = []SharedSource{{Gen: &greedyShared{resources: []string{"bankS", "bankT"}, lanes: 2}}}
	// The greedy hog never releases, so the members starve; bound the
	// watchdog instead of simulating ten million stuck cycles.
	cfg.MaxCycles = 5_000
	stats, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh := stats.Shared[0]
	laneCycles := 2 * stats.Cycles
	for i := range sh.Resources {
		if got := sh.Grants[i] + sh.Waits[i]; got != laneCycles {
			t.Fatalf("resource %d: grants+waits = %d, want %d (always requesting)", i, got, laneCycles)
		}
	}
	if sh.AllHeld > sh.Grants[0] || sh.AllHeld > sh.Grants[1] {
		t.Fatalf("AllHeld %d exceeds a grant count %v", sh.AllHeld, sh.Grants)
	}
	if sh.HoldWait+sh.AllHeld > laneCycles {
		t.Fatalf("HoldWait %d + AllHeld %d exceeds lane-cycles %d", sh.HoldWait, sh.AllHeld, laneCycles)
	}
	if sh.AllHeld == 0 {
		t.Fatal("a non-preemptive arbiter lets the first greedy lane keep both banks: AllHeld must accumulate")
	}
}

// TestSharedCircularHoldWait wires two sources over the same banks in
// opposite acquisition orders with a hold longer than the run: each
// deterministically acquires its first bank on cycle 0, then waits
// forever for the other's — the circular hold-and-wait the overlap
// counter exists to expose. The watchdog reports the starved members.
func TestSharedCircularHoldWait(t *testing.T) {
	cfg := twoBankConfig()
	cfg.Shared = []SharedSource{
		{Gen: newOrderedAcquirer([]string{"bankS", "bankT"}, 1, 0, 1_000_000)},
		{Gen: newOrderedAcquirer([]string{"bankT", "bankS"}, 1, 0, 1_000_000)},
	}
	cfg.MaxCycles = 2_000
	stats, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Done {
		t.Fatal("the circular hold-and-wait should deadlock the stage")
	}
	timeout := false
	for _, v := range stats.Violations {
		timeout = timeout || v.Kind == "deadlock-or-timeout"
	}
	if !timeout {
		t.Fatalf("no deadlock-or-timeout violation: %v", stats.Violations)
	}
	if len(stats.Shared) != 2 {
		t.Fatalf("shared stats = %d entries", len(stats.Shared))
	}
	for i, sh := range stats.Shared {
		// Each source holds its first bank from cycle 1 on and waits on
		// the other for essentially the whole run.
		if sh.HoldWait < stats.Cycles-10 {
			t.Fatalf("source %d: HoldWait = %d over %d cycles; expected near-total overlap", i, sh.HoldWait, stats.Cycles)
		}
		if sh.AllHeld != 0 {
			t.Fatalf("source %d: AllHeld = %d; the interlock must prevent any critical section", i, sh.AllHeld)
		}
	}
}

// TestSharedSilentElision: a statically silent shared source is a
// byte-identical no-op, exactly like silent single-resource sources.
func TestSharedSilentElision(t *testing.T) {
	base, err := Run(twoBankConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := twoBankConfig()
	cfg.Shared = []SharedSource{{Gen: &silentShared{greedyShared{resources: []string{"bankS", "bankT"}, lanes: 3}}}}
	quiet, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, quiet) {
		t.Fatal("silent shared source perturbed the run")
	}
	// But a typo'd resource still errors even when silent.
	cfg = twoBankConfig()
	cfg.Shared = []SharedSource{{Gen: &silentShared{greedyShared{resources: []string{"bankS", "bankX"}, lanes: 1}}}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("silent source with unknown resource should still error")
	}
}

// TestCaptureOnly: per-resource trace taps record exactly the named
// resources, and the recorded stream matches a full-capture run.
func TestCaptureOnly(t *testing.T) {
	full, err := Run(twoBankConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := twoBankConfig()
	cfg.CaptureOnly = []string{"bankT"}
	tapped, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr := tapped.ArbiterTraces["bankS"]; tr != nil {
		t.Fatalf("bankS should not record under CaptureOnly bankT; got %d steps", len(tr))
	}
	if !reflect.DeepEqual(tapped.ArbiterTraces["bankT"], full.ArbiterTraces["bankT"]) {
		t.Fatal("bankT trace under CaptureOnly differs from full capture")
	}
	// Everything except the traces is unchanged.
	tapped.ArbiterTraces, full.ArbiterTraces = nil, nil
	if !reflect.DeepEqual(tapped, full) {
		t.Fatal("CaptureOnly perturbed non-trace stats")
	}
}
