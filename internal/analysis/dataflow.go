package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the forward dataflow pass under lockorder and goroleak:
// it walks function bodies in execution order tracking which mutexes
// are held at each point, classifies the synchronization operations it
// meets (acquire, release, condition wait, channel ops, blocking std
// calls), and hands each event — with the current held-set — to
// analyzer callbacks. Locks are abstracted type-level: every instance
// of a struct field or package-level variable is one lock, which is the
// granularity acquisition-order invariants live at.

// lockOpKind classifies one synchronization-relevant call.
type lockOpKind int

const (
	opNone lockOpKind = iota
	opAcquire
	opRelease
	opCondWait // releases and re-acquires its own lock while waiting
	opBlocking // blocks without touching locks (WaitGroup.Wait, time.Sleep)
)

// lockFacts is the module-wide lock environment: stable names for lock
// variables and the Cond -> lock associations recovered from
// sync.NewCond call sites.
type lockFacts struct {
	mod      *Module
	condLock map[*types.Var]*types.Var // cond var -> the lock it wraps
	names    map[*types.Var]string
}

func newLockFacts(m *Module) *lockFacts {
	lf := &lockFacts{mod: m, condLock: map[*types.Var]*types.Var{}, names: map[*types.Var]string{}}
	// Recover cond associations: any `x = sync.NewCond(&l)` binds cond
	// variable x to lock l, wherever the assignment lives.
	for _, p := range m.Pkgs {
		if p.Broken {
			continue
		}
		for _, f := range nonTestFiles(m.Fset, p.Files) {
			ast.Inspect(f, func(n ast.Node) bool {
				asg, ok := n.(*ast.AssignStmt)
				if !ok || len(asg.Lhs) != len(asg.Rhs) {
					return true
				}
				for i, rhs := range asg.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || len(call.Args) != 1 || staticCalleePath(p.Info, call) != "sync.NewCond" {
						continue
					}
					cv := lf.refVar(p, asg.Lhs[i])
					un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
					if cv == nil || !ok || un.Op != token.AND {
						continue
					}
					if lk := lf.refVar(p, un.X); lk != nil {
						lf.condLock[cv] = lk
					}
				}
				return true
			})
		}
	}
	return lf
}

// staticCalleePath returns "pkgpath.Name" for a statically resolved
// call, or "".
func staticCalleePath(info *types.Info, call *ast.CallExpr) string {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// refVar resolves an lvalue-ish expression to the variable that
// identifies it for locking purposes: a struct field (type-level: all
// instances unify) or a plain variable. Returns nil for anything more
// dynamic (map/slice elements, results of calls).
func (lf *lockFacts) refVar(p *Package, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := p.Info.Uses[e].(*types.Var); ok {
			lf.nameVar(p, v, "")
			return v
		}
		if v, ok := p.Info.Defs[e].(*types.Var); ok {
			lf.nameVar(p, v, "")
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			v := sel.Obj().(*types.Var)
			lf.nameVar(p, v, ownerTypeName(sel.Recv()))
			return v
		}
		// Qualified package-level var (pkg.Mu).
		if v, ok := p.Info.Uses[e.Sel].(*types.Var); ok && !v.IsField() {
			lf.nameVar(p, v, "")
			return v
		}
	}
	return nil
}

func ownerTypeName(recv types.Type) string {
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	if named, ok := recv.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// nameVar records a stable display name for a lock/cond variable.
func (lf *lockFacts) nameVar(p *Package, v *types.Var, owner string) {
	if _, ok := lf.names[v]; ok {
		return
	}
	pkg := ""
	if v.Pkg() != nil {
		pkg = v.Pkg().Name() + "."
	}
	if owner != "" {
		lf.names[v] = pkg + owner + "." + v.Name()
	} else {
		lf.names[v] = pkg + v.Name()
	}
}

// name returns the display name of a lock variable.
func (lf *lockFacts) name(v *types.Var) string {
	if n, ok := lf.names[v]; ok {
		return n
	}
	return v.Name()
}

// classifyLockCall classifies call as a synchronization operation. For
// opAcquire/opRelease/opCondWait, lock is the abstract variable (nil if
// the operand is too dynamic to resolve). desc describes opBlocking.
func (lf *lockFacts) classifyLockCall(p *Package, call *ast.CallExpr) (kind lockOpKind, lock *types.Var, desc string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		if staticCalleePath(p.Info, call) == "time.Sleep" {
			return opBlocking, nil, "time.Sleep"
		}
		return opNone, nil, ""
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return opNone, nil, ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Sleep" {
			return opBlocking, nil, "time.Sleep"
		}
		return opNone, nil, ""
	case "sync":
		// fallthrough to the receiver-type switch below
	default:
		return opNone, nil, ""
	}
	recv := ownerTypeName(recvType(p.Info, sel))
	switch recv {
	case "Mutex", "RWMutex":
		switch fn.Name() {
		case "Lock", "RLock", "TryLock", "TryRLock":
			return opAcquire, lf.refVar(p, sel.X), ""
		case "Unlock", "RUnlock":
			return opRelease, lf.refVar(p, sel.X), ""
		}
	case "Cond":
		if fn.Name() == "Wait" {
			if cv := lf.refVar(p, sel.X); cv != nil {
				return opCondWait, lf.condLock[cv], ""
			}
			return opCondWait, nil, ""
		}
	case "WaitGroup":
		if fn.Name() == "Wait" {
			return opBlocking, nil, "sync.WaitGroup.Wait"
		}
	}
	return opNone, nil, ""
}

func recvType(info *types.Info, sel *ast.SelectorExpr) types.Type {
	if s, ok := info.Selections[sel]; ok {
		return s.Recv()
	}
	return info.TypeOf(sel.X)
}

// heldSet is the dataflow fact: the locks held at a program point.
type heldSet map[*types.Var]bool

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k := range h {
		c[k] = true
	}
	return c
}

// sorted returns the held locks ordered by display name, for
// deterministic reporting.
func (lf *lockFacts) sorted(h heldSet) []*types.Var {
	out := make([]*types.Var, 0, len(h))
	for v := range h {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return lf.name(out[i]) < lf.name(out[j]) })
	return out
}

// flowHooks are the analyzer callbacks the walker drives. Any hook may
// be nil.
type flowHooks struct {
	// acquire fires when a lock is taken; held excludes the new lock.
	acquire func(held heldSet, lock *types.Var, pos token.Pos)
	// blocking fires at a potentially forever-blocking operation:
	// channel send/receive, select without default, range over channel,
	// WaitGroup.Wait, time.Sleep. For cond waits, condLock names the
	// lock Wait releases while sleeping (nil if unknown).
	blocking func(held heldSet, desc string, condLock *types.Var, pos token.Pos)
	// call fires at every resolved or dynamic call site.
	call func(held heldSet, site CallSite, pos token.Pos)
	// funcLit fires for each function literal; its body is NOT walked
	// inline (it runs at some other time, with its own lock context) —
	// the analyzer decides what to do with it.
	funcLit func(lit *ast.FuncLit)
	// goStmt fires for each goroutine spawn; the spawned call is not
	// walked inline.
	goStmt func(held heldSet, g *ast.GoStmt)
}

// lockFlow walks one function body in execution order, tracking held.
type lockFlow struct {
	facts *lockFacts
	pkg   *Package
	hooks flowHooks
}

// walk runs the dataflow over body with an initially empty held-set and
// returns the held-set at fall-through exit.
func (w *lockFlow) walk(body *ast.BlockStmt) heldSet {
	held, _ := w.stmts(body.List, heldSet{})
	return held
}

// stmts folds the walker over a statement list. terminated reports that
// every path through the list returns, so the fall-through held-set is
// meaningless to merge.
func (w *lockFlow) stmts(list []ast.Stmt, held heldSet) (heldSet, bool) {
	terminated := false
	for _, s := range list {
		held, terminated = w.stmt(s, held)
		if terminated {
			break
		}
	}
	return held, terminated
}

func (w *lockFlow) stmt(s ast.Stmt, held heldSet) (heldSet, bool) {
	switch s := s.(type) {
	case nil:
		return held, false
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.ExprStmt:
		w.expr(s.X, held)
		return held, false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
		return held, false
	case *ast.IncDecStmt:
		w.expr(s.X, held)
		return held, false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held)
					}
				}
			}
		}
		return held, false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto end this path as far as the linear walk is
		// concerned; the loop-level merge keeps the approximation sound
		// enough for ordering facts.
		return held, true
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the remainder of the
		// body, which is exactly how the walker models "held until
		// return" — so a deferred release needs no state change. Other
		// deferred calls run after the body; walk them with the current
		// held-set as an approximation of "whatever is still held".
		if kind, _, _ := w.facts.classifyLockCall(w.pkg, s.Call); kind == opRelease {
			return held, false
		}
		w.expr(s.Call, held)
		return held, false
	case *ast.GoStmt:
		if w.hooks.goStmt != nil {
			w.hooks.goStmt(held, s)
		}
		for _, arg := range s.Call.Args {
			w.expr(arg, held)
		}
		return held, false
	case *ast.IfStmt:
		held, _ = w.stmt(s.Init, held)
		w.expr(s.Cond, held)
		thenHeld, thenTerm := w.stmts(s.Body.List, held.clone())
		elseHeld, elseTerm := held, false
		if s.Else != nil {
			elseHeld, elseTerm = w.stmt(s.Else, held.clone())
		}
		return mergeBranches(thenHeld, thenTerm, elseHeld, elseTerm, held)
	case *ast.ForStmt:
		held, _ = w.stmt(s.Init, held)
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		bodyHeld, _ := w.stmts(s.Body.List, held.clone())
		w.stmt(s.Post, bodyHeld)
		return union(held, bodyHeld), false
	case *ast.RangeStmt:
		w.expr(s.X, held)
		if _, isChan := w.pkg.Info.TypeOf(s.X).Underlying().(*types.Chan); isChan {
			w.block(held, "channel receive (range)", nil, s.Pos())
		}
		bodyHeld, _ := w.stmts(s.Body.List, held.clone())
		return union(held, bodyHeld), false
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
		w.block(held, "channel send", nil, s.Pos())
		return held, false
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.block(held, "select with no default case", nil, s.Pos())
		}
		// The select itself is the blocking point; walk each clause body
		// from the common held-set, without re-reporting the comm ops.
		var outs []heldSet
		allTerm := true
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			ch := held.clone()
			if asg, ok := cc.Comm.(*ast.AssignStmt); ok {
				for _, e := range asg.Rhs {
					w.commExpr(e, ch)
				}
			}
			ch, term := w.stmts(cc.Body, ch)
			if !term {
				outs = append(outs, ch)
				allTerm = false
			}
		}
		merged := held
		for _, o := range outs {
			merged = union(merged, o)
		}
		return merged, allTerm && len(s.Body.List) > 0
	case *ast.SwitchStmt:
		held, _ = w.stmt(s.Init, held)
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		return w.caseBodies(s.Body, held)
	case *ast.TypeSwitchStmt:
		held, _ = w.stmt(s.Init, held)
		w.stmt(s.Assign, held)
		return w.caseBodies(s.Body, held)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	default:
		return held, false
	}
}

// caseBodies merges the arms of a switch.
func (w *lockFlow) caseBodies(body *ast.BlockStmt, held heldSet) (heldSet, bool) {
	merged := held
	sawCase := false
	allTerm := true
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		sawCase = true
		for _, e := range cc.List {
			w.expr(e, held)
		}
		out, term := w.stmts(cc.Body, held.clone())
		if !term {
			merged = union(merged, out)
			allTerm = false
		}
	}
	return merged, sawCase && allTerm && hasDefaultCase(body)
}

func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func mergeBranches(aHeld heldSet, aTerm bool, bHeld heldSet, bTerm bool, fallback heldSet) (heldSet, bool) {
	switch {
	case aTerm && bTerm:
		return fallback, true
	case aTerm:
		return bHeld, false
	case bTerm:
		return aHeld, false
	default:
		return union(aHeld, bHeld), false
	}
}

func union(a, b heldSet) heldSet {
	out := a.clone()
	for k := range b {
		out[k] = true
	}
	return out
}

// commExpr walks a select clause's communication expression without
// reporting its channel op (the select was already reported).
func (w *lockFlow) commExpr(e ast.Expr, held heldSet) {
	if un, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && un.Op == token.ARROW {
		w.expr(un.X, held)
		return
	}
	w.expr(e, held)
}

// block routes one blocking event through the hook.
func (w *lockFlow) block(held heldSet, desc string, condLock *types.Var, pos token.Pos) {
	if w.hooks.blocking != nil {
		w.hooks.blocking(held, desc, condLock, pos)
	}
}

// expr walks one expression in evaluation order, firing hooks for lock
// operations, channel receives, calls, and function literals. Function
// literal bodies are not descended into: they execute elsewhere.
func (w *lockFlow) expr(e ast.Expr, held heldSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if w.hooks.funcLit != nil {
				w.hooks.funcLit(n)
			}
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.block(held, "channel receive", nil, n.Pos())
			}
		case *ast.CallExpr:
			w.call(n, held)
			// The call's arguments were classified by w.call; don't
			// double-visit the Fun selector, but do visit arguments.
			for _, arg := range n.Args {
				w.expr(arg, held)
			}
			return false
		}
		return true
	})
}

// call classifies one call site, updates held for lock operations, and
// fires the analyzer hooks.
func (w *lockFlow) call(call *ast.CallExpr, held heldSet) {
	kind, lock, desc := w.facts.classifyLockCall(w.pkg, call)
	switch kind {
	case opAcquire:
		if lock != nil {
			if w.hooks.acquire != nil {
				w.hooks.acquire(held, lock, call.Pos())
			}
			held[lock] = true
		}
		return
	case opRelease:
		if lock != nil {
			delete(held, lock)
		}
		return
	case opCondWait:
		w.block(held, "sync.Cond.Wait", lock, call.Pos())
		return
	case opBlocking:
		w.block(held, desc, nil, call.Pos())
		return
	}
	if w.hooks.call != nil {
		w.hooks.call(held, w.facts.mod.resolveCall(w.pkg, call), call.Pos())
	}
}
