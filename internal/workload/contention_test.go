package workload

import (
	"reflect"
	"strings"
	"testing"

	"sparcs/internal/arbiter"
	"sparcs/internal/behav"
	"sparcs/internal/partition"
	"sparcs/internal/sim"
	"sparcs/internal/taskgraph"
)

// contentionScenario builds a two-task bankS contention Config; the
// background generator is attached by each test.
func contentionScenario(t *testing.T) sim.Config {
	t.Helper()
	g := &taskgraph.Graph{
		Name:     "contend",
		Segments: []*taskgraph.Segment{{Name: "S", SizeBytes: 1024, WidthBits: 32}},
		Tasks: []*taskgraph.Task{
			{Name: "A", AreaCLBs: 1, Accesses: []taskgraph.Access{{Segment: "S", Kind: taskgraph.Write}}},
			{Name: "B", AreaCLBs: 1, Accesses: []taskgraph.Access{{Segment: "S", Kind: taskgraph.Write}}},
		},
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	prog := func(base int) behav.Program {
		return behav.Program{Body: []behav.Instr{
			behav.Req("bankS"), behav.WaitGrant("bankS"),
			behav.WriteImm("S", base, int64(base)), behav.Read("S", base),
			behav.Release("bankS"),
			behav.Compute(3),
		}, Repeat: 40}
	}
	return sim.Config{
		Graph:             g,
		Tasks:             []string{"A", "B"},
		Programs:          map[string]behav.Program{"A": prog(0), "B": prog(100)},
		Arbiters:          []partition.ArbiterSpec{{Resource: "bankS", Members: []string{"A", "B"}}},
		ResourceOfSegment: map[string]string{"S": "bankS"},
		Memory:            sim.NewMemory(),
		MaxCycles:         3000,
	}
}

// TestContentionSafetyAllPolicies drives the full-system simulator with
// bursty and hog background traffic under every policy implementation
// and verifies the arbiter safety invariants on the widened traces:
// mutual exclusion, grant-implies-request, and work conservation hold
// no matter how adversarial the background load, and the real tasks
// never access the bank without a grant. (Completion is NOT asserted:
// a hog legitimately starves non-preemptive policies; the watchdog
// bounds the run and safety must still hold.)
func TestContentionSafetyAllPolicies(t *testing.T) {
	for _, pspec := range DefaultPolicies() {
		for _, wspec := range []string{"bursty", "hog"} {
			t.Run(pspec+"×"+wspec, func(t *testing.T) {
				cfg := contentionScenario(t)
				// 2 members + 2 phantom lines = 4 total; every default
				// policy (including hier:2) is valid at 4.
				gen, err := NewGenerator(wspec, 2, 7)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Contention = []sim.ContentionSource{{Resource: "bankS", Gen: gen}}
				sp, err := arbiter.ParsePolicySpec(pspec)
				if err != nil {
					t.Fatal(err)
				}
				cfg.NewPolicy = func(n int) arbiter.Policy {
					p, err := sp.New(n)
					if err != nil {
						t.Fatalf("policy %s at widened N=%d: %v", pspec, n, err)
					}
					return p
				}
				stats, err := sim.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				trace := stats.ArbiterTraces["bankS"]
				if len(trace) == 0 {
					t.Fatal("no trace recorded")
				}
				if w := len(trace[0].Req); w != 4 {
					t.Fatalf("trace width %d, want 4 (2 members + 2 phantoms)", w)
				}
				if err := arbiter.CheckMutualExclusion(trace); err != nil {
					t.Error(err)
				}
				if err := arbiter.CheckGrantImpliesRequest(trace); err != nil {
					t.Error(err)
				}
				if err := arbiter.CheckWorkConserving(trace); err != nil {
					t.Error(err)
				}
				for _, v := range stats.Violations {
					if v.Kind == "no-grant" || v.Kind == "port-conflict" {
						t.Errorf("real task violated the protocol under background load: %v", v)
					}
				}
				// Accounting: each phantom line's grants+waits fit in the run,
				// and the trace's phantom columns agree with the stats.
				cs := stats.Contention["bankS"]
				if cs == nil {
					t.Fatal("no contention stats")
				}
				for i := range cs.Grants {
					if cs.Grants[i]+cs.Waits[i] > stats.Cycles {
						t.Errorf("phantom %d: grants %d + waits %d exceed %d cycles", i, cs.Grants[i], cs.Waits[i], stats.Cycles)
					}
					inTrace := 0
					for _, step := range trace {
						if step.Grant[2+i] {
							inTrace++
						}
					}
					if inTrace != cs.Grants[i] {
						t.Errorf("phantom %d: trace shows %d grants, stats %d", i, inTrace, cs.Grants[i])
					}
				}
			})
		}
	}
}

// TestSilentGeneratorElidedThroughSim proves the cross-package seam:
// workload's silent generator satisfies sim.StaticallySilent
// structurally, so attaching it through the public Config is a
// byte-identical no-op.
func TestSilentGeneratorElidedThroughSim(t *testing.T) {
	plain, err := sim.Run(contentionScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg := contentionScenario(t)
	gen, err := NewGenerator("silent", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Contention = []sim.ContentionSource{{Resource: "bankS", Gen: gen}}
	quiet, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, quiet) {
		t.Fatal("silent workload generator was not elided")
	}
	if quiet.Contention != nil {
		t.Fatal("elided contention still produced stats")
	}
}

// TestCensoredWaitFlushing pins the censoring semantics under
// starvation: a static-priority arbiter facing a pinned hog grants the
// hog forever, so every other arriving task waits to the end of the
// run — Drive must flush those in-progress waits into MaxWait instead
// of reporting no wait at all.
func TestCensoredWaitFlushing(t *testing.T) {
	const n, cycles = 4, 10_000
	p := arbiter.NewPriority(n)
	g, err := NewGenerator("hog", n, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Drive(p, g, cycles)
	if err != nil {
		t.Fatal(err)
	}
	if m.Violation != "" {
		t.Fatalf("unexpected safety violation: %s", m.Violation)
	}
	if g := m.Tasks[0].Grants; g < cycles-1 {
		t.Fatalf("hog held %d of %d cycles; priority should never revoke it", g, cycles)
	}
	starved := 0
	for i := 1; i < n; i++ {
		tm := m.Tasks[i]
		if tm.Services != 0 {
			t.Fatalf("task %d was served %d times under a pinned hog + priority", i, tm.Services)
		}
		// Flushed censored wait: the task has been waiting since its
		// first arrival, which at rate 0.25 lands early in the run.
		if tm.MaxWait > cycles/2 {
			starved++
		}
	}
	if starved != n-1 {
		t.Fatalf("only %d of %d starved tasks report flushed censored waits", starved, n-1)
	}
	if m.MaxWait() < cycles/2 {
		t.Fatalf("run-wide MaxWait %d does not reflect censored starvation", m.MaxWait())
	}
}

// TestCensoredWaitFlushingUnderBursty: censored flushing is monotone —
// truncating a run can only shorten the reported MaxWait, never lose a
// wait in progress. Compares a prefix run against a longer run under
// identical bursty traffic and a fair policy.
func TestCensoredWaitFlushingUnderBursty(t *testing.T) {
	const n = 6
	for _, cycles := range []int{500, 5_000} {
		p := arbiter.NewRoundRobin(n)
		g, err := NewGenerator("bursty", n, 9)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Drive(p, g, cycles)
		if err != nil {
			t.Fatal(err)
		}
		if m.Violation != "" {
			t.Fatalf("cycles=%d: %s", cycles, m.Violation)
		}
		for i, tm := range m.Tasks {
			if tm.MaxWait > cycles {
				t.Fatalf("cycles=%d task %d: MaxWait %d exceeds run length", cycles, i, tm.MaxWait)
			}
			if tm.MaxWait < 0 || tm.TotalWait < 0 {
				t.Fatalf("cycles=%d task %d: negative wait", cycles, i)
			}
		}
	}
}

// TestContentionMetricsInGrantsByRes documents the split accounting:
// the silent column in a table renders all-zero instead of polluting
// aggregate columns (regression for the silent generator's metrics).
func TestSilentColumnMetrics(t *testing.T) {
	cells, err := RunGrid([]string{"rr"}, []string{"silent"}, GridOptions{N: 4, Cycles: 1000})
	if err != nil {
		t.Fatal(err)
	}
	m := cells[0]
	if m.Utilization() != 0 || m.Demand() != 0 || m.Jain() != 1 {
		t.Fatalf("silent column: util=%g demand=%g jain=%g, want 0/0/1", m.Utilization(), m.Demand(), m.Jain())
	}
	if !strings.Contains(FormatTable(cells), "silent") {
		t.Fatal("table missing the silent column")
	}
}
