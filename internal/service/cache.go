package service

import (
	"container/list"
	"sync"
	"sync/atomic"

	"sparcs"
)

// systemCache is the compile-once half of the service: compiled Systems
// keyed by their design hash (sparcs.DesignHash), with singleflight
// semantics — concurrent requests for one uncached design trigger
// exactly one core.Compile, and every later request for the same hash
// skips compilation entirely. Residency is bounded by compiled CLB
// footprint (System.FootprintCLBs — the same weight the scenario
// engine's fabric charges): when the budget is exceeded the
// least-recently-used entries are evicted, and a later request for an
// evicted hash recompiles exactly once under a fresh singleflight.
type systemCache struct {
	mu       sync.Mutex
	budget   int // resident CLB budget; <= 0 means unbounded
	resident int // total weight of weighed-in entries
	entries  map[string]*cacheEntry
	lru      *list.List // front = most recently used; values are *cacheEntry

	hits      atomic.Int64 // requests that found an existing entry
	misses    atomic.Int64 // requests that created the entry
	compiles  atomic.Int64 // actual core.Compile executions (== misses)
	evictions atomic.Int64 // entries dropped to stay under budget
}

type cacheEntry struct {
	hash string
	once sync.Once
	sys  *sparcs.System
	err  error

	// weight is the entry's CLB footprint, set under the cache lock
	// after compilation (0 while the compile is in flight — such an
	// entry is not yet accounted and never evicted). gone marks an
	// entry evicted from the map; a gone entry still serves the callers
	// already holding it but no longer counts against the budget.
	weight int
	gone   bool
	elem   *list.Element
}

func newSystemCache(budgetCLBs int) *systemCache {
	return &systemCache{
		budget:  budgetCLBs,
		entries: map[string]*cacheEntry{},
		lru:     list.New(),
	}
}

// get returns the compiled System for hash, compiling at most once per
// resident entry across all callers. hit reports whether the entry
// already existed — a request arriving while the first compile is still
// in flight counts as a hit: it blocks on the singleflight instead of
// compiling. Compile errors are cached too (at weight 1): the hash
// covers every compile input, so the same inputs fail the same way.
func (c *systemCache) get(hash string, compile func() (*sparcs.System, error)) (sys *sparcs.System, hit bool, err error) {
	c.mu.Lock()
	e, ok := c.entries[hash]
	if ok {
		c.lru.MoveToFront(e.elem)
	} else {
		e = &cacheEntry{hash: hash}
		e.elem = c.lru.PushFront(e)
		c.entries[hash] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() {
		c.compiles.Add(1)
		e.sys, e.err = compile()
		// Weigh the entry in only now: the footprint is a property of
		// the compiled design, unknown when the entry was created.
		w := 1
		if e.err == nil {
			if f := e.sys.FootprintCLBs(); f > 0 {
				w = f
			}
		}
		c.mu.Lock()
		if !e.gone {
			e.weight = w
			c.resident += w
			c.evictLocked(e)
		}
		c.mu.Unlock()
	})
	return e.sys, ok, e.err
}

// evictLocked drops least-recently-used entries until the resident
// weight fits the budget, never evicting keep (the entry that just
// weighed in — the cache always serves the design it just compiled, so
// the effective bound is max(budget, largest single footprint)) or
// entries still compiling (weight 0).
func (c *systemCache) evictLocked(keep *cacheEntry) {
	if c.budget <= 0 {
		return
	}
	for c.resident > c.budget {
		victim := (*cacheEntry)(nil)
		for el := c.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*cacheEntry)
			if e == keep || e.weight == 0 {
				continue
			}
			victim = e
			break
		}
		if victim == nil {
			return
		}
		victim.gone = true
		c.resident -= victim.weight
		c.lru.Remove(victim.elem)
		delete(c.entries, victim.hash)
		c.evictions.Add(1)
	}
}

// snapshot reports the resident weight and entry count for /v1/stats.
func (c *systemCache) snapshot() (residentCLBs, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resident, len(c.entries)
}
