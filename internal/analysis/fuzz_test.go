package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// ignoreSeeds are the parser's grammar corners: every shape the fuzzer
// starts from and the plain test locks down.
var ignoreSeeds = []string{
	"//sparcs:ignore hotpath reason here",
	"//sparcs:ignore hotpath,determinism two analyzers",
	"//sparcs:ignore hotpath reason // want `nested comment`",
	"//sparcs:ignore",
	"//sparcs:ignore hotpath",
	"//sparcs:ignore unknown-analyzer some reason",
	"//sparcs:ignorebogus glued suffix",
	"//sparcs:ignore\thotpath\ttab separated",
	"//sparcs:ignore  hotpath   extra   spaces",
	"//sparcs:ignore , empty analyzer list",
	"//sparcs:ignore hotpath, trailing comma reason",
	"// sparcs:ignore hotpath leading space is not the marker",
	"//sparcs:ignore sparcsvet driver pseudo-analyzer",
	"//sparcs:ignore hotpath \x00 control bytes",
	"//sparcs:ignore hotpath 🎛 multibyte reason",
}

// ignorePackage builds a one-file package whose only comment is text,
// or nil when text does not survive as a comment (embedded newlines,
// carriage returns, or anything the parser rejects).
func ignorePackage(text string) *Package {
	fset := token.NewFileSet()
	src := "package fz\n\nvar x int " + text + "\n"
	file, err := parser.ParseFile(fset, "fz.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil || file == nil {
		return nil
	}
	return &Package{
		Path:  "fz",
		Files: []*ast.File{file},
		Src:   map[string][]byte{"fz.go": []byte(src)},
		fset:  fset,
	}
}

// FuzzParseIgnores asserts the //sparcs:ignore parser's safety
// properties on arbitrary comment text: it never panics, every comment
// carrying the marker yields exactly one parsed entry, and that entry
// is either well-formed (analyzers plus a reason) or explicitly
// malformed — malformed input is always reported, never dropped.
func FuzzParseIgnores(f *testing.F) {
	for _, s := range ignoreSeeds {
		f.Add(s)
	}
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	known[Driver] = true
	f.Fuzz(func(t *testing.T, text string) {
		p := ignorePackage(text)
		if p == nil {
			return
		}
		igs := parseIgnores(p, known)
		markers := 0
		for _, file := range p.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), ignoreMarker) {
						markers++
					}
				}
			}
		}
		if len(igs) != markers {
			t.Fatalf("parseIgnores(%q): %d entries for %d marker comments; malformed input must still be reported", text, len(igs), markers)
		}
		for _, ig := range igs {
			if ig.malformed != "" {
				continue
			}
			if len(ig.analyzers) == 0 || ig.reason == "" {
				t.Fatalf("parseIgnores(%q): entry neither malformed nor complete: analyzers=%q reason=%q", text, ig.analyzers, ig.reason)
			}
			for _, name := range ig.analyzers {
				if !known[name] {
					t.Fatalf("parseIgnores(%q): unknown analyzer %q accepted as well-formed", text, name)
				}
			}
		}
	})
}

// TestParseIgnoresSeeds runs every fuzz seed through the same
// properties, so the corpus is exercised on plain `go test` runs where
// the fuzz engine is not invoked.
func TestParseIgnoresSeeds(t *testing.T) {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	known[Driver] = true
	for _, s := range ignoreSeeds {
		p := ignorePackage(s)
		if p == nil {
			continue
		}
		igs := parseIgnores(p, known)
		for _, ig := range igs {
			if ig.malformed == "" && (len(ig.analyzers) == 0 || ig.reason == "") {
				t.Errorf("seed %q: entry neither malformed nor complete", s)
			}
		}
	}
}
