package service

import (
	"encoding/json"

	"sparcs"
)

// ResultJSON is the canonical wire form of one experiment result. It
// carries the statistics a remote experimenter steers on — cycle
// counts, per-task finish/wait times, per-resource grant totals,
// memory/channel traffic, violation count — and nothing
// machine-dependent, so the encoding of a run is byte-identical
// wherever it executes. Per-cycle traces stay server-side: they are the
// one simulation output whose size grows with cycle count.
type ResultJSON struct {
	TotalCycles int         `json:"totalCycles"`
	Stages      []StageJSON `json:"stages"`
}

// StageJSON is one stage's statistics in ResultJSON.
type StageJSON struct {
	Cycles       int            `json:"cycles"`
	Done         bool           `json:"done"`
	TaskFinish   map[string]int `json:"taskFinish,omitempty"`
	WaitCycles   map[string]int `json:"waitCycles,omitempty"`
	GrantsByRes  map[string]int `json:"grantsByRes,omitempty"`
	MemReads     int            `json:"memReads"`
	MemWrites    int            `json:"memWrites"`
	ChannelSends int            `json:"channelSends"`
	Violations   int            `json:"violations"`
}

// EncodeResult renders the canonical newline-terminated JSON encoding
// of a run result. The encoding is deterministic — encoding/json emits
// map keys in sorted order — so two byte-equal encodings mean two
// experiments produced identical statistics; the differential tests and
// the CI smoke diff the server's response body against this function
// applied to an offline System.Run.
func EncodeResult(res *sparcs.Result) ([]byte, error) {
	out := ResultJSON{TotalCycles: res.TotalCycles}
	for _, ss := range res.Stages {
		st := ss.Stats
		out.Stages = append(out.Stages, StageJSON{
			Cycles:       st.Cycles,
			Done:         st.Done,
			TaskFinish:   st.TaskFinish,
			WaitCycles:   st.WaitCycles,
			GrantsByRes:  st.GrantsByRes,
			MemReads:     st.MemReads,
			MemWrites:    st.MemWrites,
			ChannelSends: st.ChannelSends,
			Violations:   len(st.Violations),
		})
	}
	b, err := json.Marshal(out)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
