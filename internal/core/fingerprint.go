package core

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sort"

	"sparcs/internal/behav"
	"sparcs/internal/rc"
	"sparcs/internal/taskgraph"
)

// ErrUnhashable marks build inputs the design fingerprint cannot cover:
// function-valued knobs (a custom Partition.ArbArea model) have no
// canonical serialization, so two Options carrying different functions
// would collide under any hash. Callers that need fingerprinting must
// stick to the declarative knobs.
var ErrUnhashable = errors.New("core: build options contain a function value, which the design fingerprint cannot cover")

// Fingerprint returns a stable content hash ("sha256:<hex>") over
// everything Compile consumes that shapes the compiled design: the
// taskgraph, the board, the task programs, and the declarative build
// options (Partition and Insert knobs). Two calls agree exactly when
// Compile would produce structurally identical designs, which is what
// lets a compile cache (cmd/sparcsd) key on the fingerprint and skip
// Compile entirely on repeat designs.
//
// Run-time options (NewPolicy, contention, seeds, capture) are
// deliberately outside the hash — they parameterize experiments, not
// the compiled design. One caveat: behav.Instr.Fn transform functions
// contribute only their presence, not their behavior; programs that
// differ solely in the pure function behind an identical instruction
// structure hash alike (the simulator's cycle structure is identical —
// only data values diverge).
func Fingerprint(g *taskgraph.Graph, board *rc.Board, programs map[string]behav.Program, opts Options) (string, error) {
	if opts.Partition.ArbArea != nil {
		return "", fmt.Errorf("core: Partition.ArbArea is a custom area function: %w", ErrUnhashable)
	}
	h := sha256.New()
	// Version tag: bump when the serialization changes so stale cache
	// keys can never alias across encodings.
	fmt.Fprintf(h, "sparcs-design/1\n")
	writeGraph(h, g)
	writeBoard(h, board)
	writePrograms(h, programs)
	writeBuildOptions(h, opts)
	return fmt.Sprintf("sha256:%x", h.Sum(nil)), nil
}

func writeGraph(w io.Writer, g *taskgraph.Graph) {
	fmt.Fprintf(w, "graph %q tasks=%d segs=%d chans=%d\n", g.Name, len(g.Tasks), len(g.Segments), len(g.Channels))
	for _, t := range g.Tasks {
		fmt.Fprintf(w, "task %q area=%d deps=%d accesses=%d\n", t.Name, t.AreaCLBs, len(t.Deps), len(t.Accesses))
		for _, d := range t.Deps {
			fmt.Fprintf(w, " dep %q\n", d)
		}
		for _, a := range t.Accesses {
			fmt.Fprintf(w, " access %q %d\n", a.Segment, a.Kind)
		}
	}
	for _, s := range g.Segments {
		fmt.Fprintf(w, "segment %q size=%d width=%d cohort=%q\n", s.Name, s.SizeBytes, s.WidthBits, s.Cohort)
	}
	for _, c := range g.Channels {
		fmt.Fprintf(w, "channel %q %q->%q width=%d\n", c.Name, c.From, c.To, c.WidthBits)
	}
}

func writeBoard(w io.Writer, b *rc.Board) {
	fmt.Fprintf(w, "board %q xbar=%d\n", b.Name, b.XbarPins)
	for _, pe := range b.PEs {
		fmt.Fprintf(w, "pe %q device=%q clbs=%d pins=%d\n", pe.Name, pe.Device.Name, pe.Device.CLBs, pe.Device.Pins)
	}
	for _, bk := range b.Banks {
		fmt.Fprintf(w, "bank %q pe=%d size=%d width=%d\n", bk.Name, bk.PE, bk.SizeBytes, bk.WidthBits)
	}
	for _, l := range b.Links {
		fmt.Fprintf(w, "link %d-%d pins=%d\n", l.A, l.B, l.Pins)
	}
}

func writePrograms(w io.Writer, programs map[string]behav.Program) {
	names := make([]string, 0, len(programs))
	for name := range programs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := programs[name]
		fmt.Fprintf(w, "program %q repeat=%d body=%d\n", name, p.Repeat, len(p.Body))
		for _, in := range p.Body {
			fn := "-"
			if in.Fn != nil {
				fn = "fn"
			}
			fmt.Fprintf(w, " %d %q addr=%d stride=%d n=%d cycles=%d val=%d %s\n",
				in.Op, in.Res, in.Addr, in.Stride, in.N, in.Cycles, in.Val, fn)
		}
	}
}

func writeBuildOptions(w io.Writer, opts Options) {
	fmt.Fprintf(w, "partition buspins=%d\n", opts.Partition.BusPins)
	for _, stage := range opts.Partition.FixedStages {
		fmt.Fprintf(w, "stage %d\n", len(stage))
		for _, task := range stage {
			fmt.Fprintf(w, " %q\n", task)
		}
	}
	if ec := opts.Partition.ExpectedContention; len(ec) > 0 {
		res := make([]string, 0, len(ec))
		for r := range ec {
			res = append(res, r)
		}
		sort.Strings(res)
		for _, r := range res {
			fmt.Fprintf(w, "expected %q %d\n", r, ec[r])
		}
	}
	fmt.Fprintf(w, "insert m=%d conservative=%t holdthrough=%d\n",
		opts.Insert.M, opts.Insert.Conservative, opts.Insert.HoldThrough)
}
