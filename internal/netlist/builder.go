package netlist

import (
	"fmt"

	"sparcs/internal/logic"
)

// AddCover instantiates a sum-of-products cover as AND-OR logic over the
// given input nets (one net per cover variable, in order) and returns the
// net computing the cover. Inverters are shared across cubes.
//
// An empty cover yields constant 0; a cover containing the universal cube
// yields constant 1.
func (n *Netlist) AddCover(cv *logic.Cover, in []NetID) NetID {
	if len(in) != cv.Width() {
		panic(fmt.Sprintf("netlist: cover width %d != %d input nets", cv.Width(), len(in)))
	}
	if cv.Len() == 0 {
		return n.Const(false)
	}
	inv := make(map[NetID]NetID) // shared inverters
	invOf := func(id NetID) NetID {
		if v, ok := inv[id]; ok {
			return v
		}
		v := n.AddGate(Not, id)
		inv[id] = v
		return v
	}
	var terms []NetID
	for _, cube := range cv.Cubes() {
		var lits []NetID
		for v := 0; v < cube.Width(); v++ {
			switch cube.Lit(v) {
			case logic.Pos:
				lits = append(lits, in[v])
			case logic.Neg:
				lits = append(lits, invOf(in[v]))
			}
		}
		switch len(lits) {
		case 0:
			return n.Const(true) // universal cube dominates
		case 1:
			terms = append(terms, lits[0])
		default:
			terms = append(terms, n.AddGate(And, lits...))
		}
	}
	if len(terms) == 1 {
		return terms[0]
	}
	return n.AddGate(Or, terms...)
}
