package fft

import (
	"fmt"

	"sparcs/internal/behav"
	"sparcs/internal/sim"
	"sparcs/internal/taskgraph"
)

// Case-study constants. Areas are per-task CLB estimates (a behavioral
// 4-point complex FFT datapath plus controller on an XC4013E); compute
// latencies are per-tile cycle counts of the HLS-produced datapaths,
// calibrated so the full-image hardware time lands at the paper's
// reported 4.4 s for a 512x512 image at the 6 MHz system clock.
const (
	// FTaskArea is the CLB estimate for a first-dimension (row) task.
	FTaskArea = 410
	// GTaskArea is the CLB estimate for a second-dimension (column) task.
	GTaskArea = 130
	// RowComputeCycles is the row-FFT datapath latency per tile.
	RowComputeCycles = 255
	// ColComputeCycles is the column-FFT datapath latency per tile.
	ColComputeCycles = 255
	// SegmentBytes is each logical segment's streaming window.
	SegmentBytes = 8 * 1024
	// ClockMHz is the achieved system clock of the synthesized design
	// (paper Section 5: "the design clocked at about 6MHz").
	ClockMHz = 6.0
	// TileDim is the FFT tile edge (4x4-pixel 2-D FFT).
	TileDim = 4
)

// Taskgraph builds the paper's Figure 10 taskgraph: four first-dimension
// tasks F1..F4 (row FFTs of a 4x4 tile), eight second-dimension tasks
// g1r..g4r and g1i..g4i (column FFTs producing real and imaginary output
// planes), input segments MI1..MI4, intermediate segments ML1..ML4, and
// output segments MO1..MO4.
//
// Control dependencies: every g task waits for all F tasks (the second
// dimension consumes the complete first-dimension output), and each
// imaginary-plane task waits for its column's real-plane task (the
// designer's serialization the paper alludes to when noting g-task
// accesses are "implicitly arbitrated").
func Taskgraph() *taskgraph.Graph {
	g := &taskgraph.Graph{Name: "fft4x4"}
	var fNames []string
	for i := 1; i <= 4; i++ {
		g.Segments = append(g.Segments,
			&taskgraph.Segment{Name: fmt.Sprintf("MI%d", i), SizeBytes: SegmentBytes, WidthBits: 32},
			// The ML intermediates form one host-DMA block ("ML" cohort),
			// so they must live in a single physical bank — the grouping
			// behind the paper's 6-input arbiter.
			&taskgraph.Segment{Name: fmt.Sprintf("ML%d", i), SizeBytes: SegmentBytes, WidthBits: 32, Cohort: "ML"},
			&taskgraph.Segment{Name: fmt.Sprintf("MO%d", i), SizeBytes: SegmentBytes, WidthBits: 32},
		)
		fNames = append(fNames, fmt.Sprintf("F%d", i))
	}
	for i := 1; i <= 4; i++ {
		g.Tasks = append(g.Tasks, &taskgraph.Task{
			Name:     fmt.Sprintf("F%d", i),
			AreaCLBs: FTaskArea,
			Accesses: []taskgraph.Access{
				{Segment: fmt.Sprintf("MI%d", i), Kind: taskgraph.Read},
				{Segment: fmt.Sprintf("ML%d", i), Kind: taskgraph.Write},
			},
		})
	}
	mlReads := func() []taskgraph.Access {
		var acc []taskgraph.Access
		for i := 1; i <= 4; i++ {
			acc = append(acc, taskgraph.Access{Segment: fmt.Sprintf("ML%d", i), Kind: taskgraph.Read})
		}
		return acc
	}
	for k := 1; k <= 4; k++ {
		r := &taskgraph.Task{
			Name:     fmt.Sprintf("g%dr", k),
			AreaCLBs: GTaskArea,
			Deps:     append([]string(nil), fNames...),
			Accesses: append(mlReads(), taskgraph.Access{Segment: fmt.Sprintf("MO%d", k), Kind: taskgraph.Write}),
		}
		i := &taskgraph.Task{
			Name:     fmt.Sprintf("g%di", k),
			AreaCLBs: GTaskArea,
			Deps:     append(append([]string(nil), fNames...), r.Name),
			Accesses: append(mlReads(), taskgraph.Access{Segment: fmt.Sprintf("MO%d", k), Kind: taskgraph.Write}),
		}
		g.Tasks = append(g.Tasks, r, i)
	}
	return g
}

// PaperStages is the paper's three-way temporal partitioning of the FFT
// design (temporal partition #0 shown in Figure 11). The split itself
// came from SPARCS' temporal partitioning ILP, which is outside this
// paper; we take it as a given stage constraint.
func PaperStages() [][]string {
	return [][]string{
		{"F1", "F2", "F3", "F4", "g1r", "g2r"},
		{"g1i", "g2i", "g3r", "g3i"},
		{"g4r", "g4i"},
	}
}

// Programs builds the per-task behavioral programs for the given number
// of tiles per stage run. Addresses stride per tile: MI/ML hold 4 words
// per tile per segment; MO holds 8 words per tile (real plane rows 0..3,
// imaginary plane rows 4..7).
func Programs(tiles int) map[string]behav.Program {
	progs := map[string]behav.Program{}
	for i := 1; i <= 4; i++ {
		mi := fmt.Sprintf("MI%d", i)
		ml := fmt.Sprintf("ML%d", i)
		var body []behav.Instr
		for c := 0; c < TileDim; c++ {
			body = append(body, behav.ReadStride(mi, c, 4))
		}
		body = append(body, behav.Instr{Op: behav.OpTransform, N: 4, Cycles: RowComputeCycles, Fn: FFT4Fixed})
		for c := 0; c < TileDim; c++ {
			body = append(body, behav.WriteStride(ml, c, 4))
		}
		progs[fmt.Sprintf("F%d", i)] = behav.Program{Body: body, Repeat: tiles}
	}
	for k := 1; k <= 4; k++ {
		col := k - 1
		mo := fmt.Sprintf("MO%d", k)
		colReads := func() []behav.Instr {
			var ins []behav.Instr
			for row := 1; row <= 4; row++ {
				ins = append(ins, behav.ReadStride(fmt.Sprintf("ML%d", row), col, 4))
			}
			return ins
		}
		// Real-plane task: column FFT, keep real parts, rows 0..3.
		rBody := colReads()
		rBody = append(rBody, behav.Instr{Op: behav.OpTransform, N: 4, Cycles: ColComputeCycles,
			Fn: func(in []int64) []int64 { return RealParts(FFT4Fixed(in)) }})
		for row := 0; row < TileDim; row++ {
			rBody = append(rBody, behav.WriteStride(mo, row, 8))
		}
		progs[fmt.Sprintf("g%dr", k)] = behav.Program{Body: rBody, Repeat: tiles}
		// Imaginary-plane task: same column, imaginary parts, rows 4..7.
		iBody := colReads()
		iBody = append(iBody, behav.Instr{Op: behav.OpTransform, N: 4, Cycles: ColComputeCycles,
			Fn: func(in []int64) []int64 { return ImagParts(FFT4Fixed(in)) }})
		for row := 0; row < TileDim; row++ {
			iBody = append(iBody, behav.WriteStride(mo, 4+row, 8))
		}
		progs[fmt.Sprintf("g%di", k)] = behav.Program{Body: iBody, Repeat: tiles}
	}
	return progs
}

// LoadInput fills the MI segments with deterministic pseudo-random pixel
// tiles and returns the raw tiles (row-major packed words) for checking.
func LoadInput(mem *sim.Memory, tiles int, seed int64) [][]int64 {
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func() int {
		state = state*2862933555777941757 + 3037000493
		return int(state>>40) % 256
	}
	all := make([][]int64, tiles)
	for t := 0; t < tiles; t++ {
		tile := make([]int64, 16)
		for row := 0; row < 4; row++ {
			for c := 0; c < 4; c++ {
				v := FromPixel(next())
				tile[row*4+c] = v
				mem.Write(fmt.Sprintf("MI%d", row+1), t*4+c, v)
			}
		}
		all[t] = tile
	}
	return all
}

// CheckOutput verifies that the MO segments hold exactly the 2-D
// fixed-point FFT of every input tile: real plane at words 0..3, imaginary
// plane at words 4..7 per tile, with MOk holding column k-1. Any
// arbitration or routing fault shows up here as a value mismatch.
func CheckOutput(mem *sim.Memory, tiles [][]int64) error {
	for t, tile := range tiles {
		want := Tile2DFixed(tile)
		for k := 1; k <= 4; k++ {
			col := k - 1
			for row := 0; row < 4; row++ {
				re, im := Unpack(want[row*4+col])
				gotRe := mem.Read(fmt.Sprintf("MO%d", k), t*8+row)
				gotIm := mem.Read(fmt.Sprintf("MO%d", k), t*8+4+row)
				if gotRe != int64(re) {
					return fmt.Errorf("fft: tile %d MO%d row %d real = %d, want %d", t, k, row, gotRe, re)
				}
				if gotIm != int64(im) {
					return fmt.Errorf("fft: tile %d MO%d row %d imag = %d, want %d", t, k, row, gotIm, im)
				}
			}
		}
	}
	return nil
}
